// Command analyzer is the offline counterpart of the paper's delay
// analyzer module: it reads a CSV of (generation_time, arrival_time) pairs
// — one data point per line, timestamps in milliseconds — profiles the
// delays, and recommends the write policy (π_c or π_s with a C_seq
// capacity) that minimizes predicted write amplification for a given
// memory budget.
//
// Usage:
//
//	analyzer -n 512 < delays.csv
//	datagen -dataset M3 -points 100000 | analyzer -n 512
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 512, "memory budget (points buffered in memory)")
		file   = flag.String("f", "", "input CSV path (default stdin)")
		sweep  = flag.Bool("sweep", false, "also print the full r_s(n_seq) sweep")
		hist   = flag.Bool("hist", false, "print a delay histogram")
		fit    = flag.Bool("fit", false, "fit parametric delay distributions and rank them")
		header = flag.Bool("header", false, "skip the first input line")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("open: %v", err)
		}
		defer f.Close()
		in = f
	}
	if *header {
		in = skipFirstLine(in)
	}

	points, err := workload.ReadCSV(in)
	if err != nil {
		fatal("read: %v", err)
	}
	if len(points) < 32 {
		fatal("need at least 32 points, got %d", len(points))
	}

	col := analyzer.NewCollector(8192, 1)
	for _, p := range points {
		col.Observe(p)
	}
	rec, ok := analyzer.Recommend(col, *n)
	if !ok {
		fatal("not enough data to profile")
	}

	delays := make([]float64, len(points))
	for i, p := range points {
		delays[i] = float64(p.Delay())
	}
	fmt.Printf("points:              %d\n", len(points))
	fmt.Printf("generation interval: %.2f ms (span-based estimate)\n", rec.Dt)
	fmt.Printf("delay mean/p50/p99:  %.1f / %.1f / %.1f ms\n",
		metrics.Mean(delays), metrics.Quantile(delays, 0.5), metrics.Quantile(delays, 0.99))
	fmt.Printf("profile sample size: %d\n", rec.SampleSize)
	fmt.Println()
	fmt.Printf("predicted WA pi_c:          %.3f\n", rec.Decision.Rc)
	fmt.Printf("predicted min WA pi_s:      %.3f at n_seq=%d\n", rec.Decision.Rs, rec.Decision.NSeq)
	if rec.Decision.Policy == core.PolicySeparation {
		fmt.Printf("recommendation:             pi_s with C_seq=%d, C_nonseq=%d\n",
			rec.Decision.NSeq, *n-rec.Decision.NSeq)
	} else {
		fmt.Printf("recommendation:             pi_c (no separation)\n")
	}

	if *fit {
		results, err := dist.FitBest(delays)
		if err != nil {
			fatal("fit: %v", err)
		}
		fmt.Println("\nparametric fits (KS distance to the empirical CDF, best first):")
		for _, r := range results[:len(results)-1] {
			fmt.Printf("  %-34s KS=%.4f\n", r.Dist.Name(), r.KS)
		}
	}

	if *hist {
		h := metrics.NewHistogram(0, metrics.Quantile(delays, 0.999)+1, 20)
		for _, d := range delays {
			h.Observe(d)
		}
		fmt.Println("\ndelay histogram (ms):")
		fmt.Print(h.Render(48))
	}

	if *sweep {
		prof, _ := col.Profile()
		fmt.Println("\nn_seq sweep:")
		fmt.Printf("%8s %10s\n", "n_seq", "r_s")
		step := *n / 16
		if step < 1 {
			step = 1
		}
		for x := step; x < *n; x += step {
			est := core.WASeparation(prof, rec.Dt, *n, x)
			fmt.Printf("%8d %10.3f\n", x, est.WA)
		}
	}
}

// skipFirstLine consumes the first line of r (a non-comment CSV header).
func skipFirstLine(r io.Reader) io.Reader {
	br := bufio.NewReader(r)
	if _, err := br.ReadString('\n'); err != nil {
		return br
	}
	return br
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "analyzer: "+format+"\n", args...)
	os.Exit(1)
}
