// Command lsmd is the network daemon over the tsdb layer: it serves the
// internal/server HTTP API (batched line-protocol/JSON writes with
// backpressure, scan/aggregate/series/stats reads, Prometheus /metrics,
// /healthz) on top of a durable or in-memory multi-series store.
//
// Usage:
//
//	lsmd -addr :8086 -dir ./db                 # durable, adaptive policy
//	lsmd -addr :8086 -policy pi_s -seqcap 256  # in-memory, fixed policy
//	lsmd -addr :8086 -pprof localhost:6060     # + net/http/pprof side listener
//
// Write some points and read them back:
//
//	curl -X POST --data-binary $'root.v1.temp 1 - 21.5\nroot.v1.temp 2 - 21.6\n' localhost:8086/write
//	curl 'localhost:8086/scan?series=root.v1.temp'
//	curl localhost:8086/metrics
//
// SIGINT/SIGTERM triggers a graceful shutdown: stop accepting, drain the
// ingest queues, flush every series, close the database.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/lsm"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

func main() {
	var (
		addr     = flag.String("addr", ":8086", "listen address")
		dir      = flag.String("dir", "", "database directory (empty: in-memory, no WAL)")
		budget   = flag.Int("n", 512, "memory budget per series (points)")
		policy   = flag.String("policy", "auto", "write policy: auto (adaptive), pi_c, pi_s")
		seqcap   = flag.Int("seqcap", 0, "n_seq for pi_s (0: n/2)")
		levels   = flag.Int("levels", 1, "on-disk levels k per series (1: the paper's single-run layout; >1: partial level compactions)")
		growth   = flag.Int("growth-factor", 0, "per-level size ratio T, level Li targets sstable-points x T^i (0: default 10)")
		cpolicy  = flag.String("compaction-policy", "leveling", "level compaction policy: leveling, tiering, lazy-leveling")
		rollupW  = flag.Int64("rollup-window", 0, "compaction-time rollup bucket width in t_g units: every persisted SSTable carries downsampled count/min/max/sum/first/last buckets, and /aggregate widths that are a multiple of it are served from them (0: disabled)")
		shards   = flag.Int("shards", 0, "ingest worker shards (0: GOMAXPROCS, max 16)")
		queue    = flag.Int("queue", 0, "per-shard ingest queue length in batches (0: 128)")
		wal      = flag.Bool("wal", true, "write-ahead logging (durable mode only)")
		async    = flag.Bool("async", true, "background compaction: flush memtables to an L0 queue drained by the compaction scheduler")
		cworkers = flag.Int("compact-workers", 0, "shared compaction worker pool size (0: half of GOMAXPROCS, min 1; negative: legacy per-series compactor goroutines)")
		cacheMB  = flag.Int("cache-mb", 0, "shared SSTable block cache capacity in MiB (durable mode; 0: 32 MiB default, negative: disabled)")
		walSh    = flag.Int("wal-shards", 0, "group-commit WAL shards / fsync streams (durable mode; 0: default 4, negative: legacy per-series WAL objects)")
		commitW  = flag.Duration("commit-window", 0, "group-commit WAL batching window (0: commit immediately; appends still coalesce behind in-flight commits)")
		qworkers = flag.Int("query-workers", 0, "shared fan-out pool size for matcher queries (/query); tasks are I/O-bound range reads (0: 4x GOMAXPROCS, clamped to [4,32])")
		memMB    = flag.Int("mem-budget-mb", 0, "DB-wide memory budget in MiB split between memtables and block cache by the arbiter; engines evict under pressure (durable mode; 0: disabled, all engines stay resident)")
		drainFor = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")

		pprofAddr = flag.String("pprof", "", "profiling listen address (e.g. localhost:6060): serves net/http/pprof on a side listener")
		blockRate = flag.Int("pprof-block-rate", 0, "runtime.SetBlockProfileRate argument: one blocking event sampled per N ns blocked (0: off)")
		mutexFrac = flag.Int("pprof-mutex-frac", 0, "runtime.SetMutexProfileFraction argument: 1/N mutex contention events sampled (0: off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// The profiler gets its own listener so profiling traffic can be
		// firewalled separately from the data plane and a saturated ingest
		// port can still be profiled.
		runtime.SetBlockProfileRate(*blockRate)
		runtime.SetMutexProfileFraction(*mutexFrac)
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers via its
			// blank import.
			log.Printf("lsmd: pprof on http://%s/debug/pprof/ (block rate %d, mutex fraction %d)",
				*pprofAddr, *blockRate, *mutexFrac)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("lsmd: pprof listener: %v", err)
			}
		}()
	}

	cpol, err := lsm.CompactionPolicyByName(*cpolicy)
	if err != nil {
		log.Fatalf("lsmd: -compaction-policy: %v", err)
	}
	cfg := tsdb.Config{
		Engine: lsm.Config{
			MemBudget:       *budget,
			AsyncCompaction: *async,
			Levels:          *levels,
			GrowthFactor:    *growth,
			Compaction:      cpol,
		},
		AutoCreate:     true,
		CompactWorkers: *cworkers,
		QueryWorkers:   *qworkers,
		RollupWindow:   *rollupW,
	}
	if *rollupW < 0 {
		log.Fatalf("lsmd: -rollup-window must be >= 0")
	}
	switch *policy {
	case "auto":
		cfg.Adaptive = true
	case "pi_c":
		cfg.Engine.Policy = lsm.Conventional
	case "pi_s":
		cfg.Engine.Policy = lsm.Separation
		cfg.Engine.SeqCapacity = *seqcap
	default:
		log.Fatalf("lsmd: unknown -policy %q (want auto, pi_c, pi_s)", *policy)
	}
	if *dir != "" {
		backend, err := storage.NewDiskBackend(*dir)
		if err != nil {
			log.Fatalf("lsmd: open -dir %s: %v", *dir, err)
		}
		cfg.Backend = backend
		cfg.Engine.WAL = *wal
		if *cacheMB < 0 {
			cfg.BlockCacheBytes = -1
		} else {
			cfg.BlockCacheBytes = int64(*cacheMB) << 20
		}
		cfg.WALShards = *walSh
		cfg.CommitWindow = *commitW
		cfg.MemBudgetBytes = int64(*memMB) << 20
	}

	db, err := tsdb.Open(cfg)
	if err != nil {
		log.Fatalf("lsmd: open db: %v", err)
	}

	srv, err := server.New(server.Config{
		DB:       db,
		Shards:   *shards,
		QueueLen: *queue,
		CloseDB:  true,
	})
	if err != nil {
		log.Fatalf("lsmd: %v", err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("lsmd: listen %s: %v", *addr, err)
	}
	mode := "in-memory"
	if *dir != "" {
		mode = fmt.Sprintf("dir=%s wal=%v", *dir, *wal)
		rec := db.RecoveryInfo()
		log.Printf("lsmd: recovery: catalog=%v (v%d), %d series (%d WAL-only), %d WAL points replayed, %d torn WALs, %d orphan tables removed",
			rec.CatalogFound, rec.CatalogVersion, rec.SeriesRecovered,
			rec.WALOnlySeries, rec.WALPointsReplayed, rec.TornWALs, rec.OrphanTablesRemoved)
		if len(rec.MigratedSeries) > 0 {
			log.Printf("lsmd: recovery: migrated pre-catalog series into catalog: %v", rec.MigratedSeries)
		}
		if len(rec.OrphanSeriesRemoved) > 0 {
			log.Printf("lsmd: recovery: completed interrupted drops: %v", rec.OrphanSeriesRemoved)
		}
	}
	compaction := "sync"
	if *async {
		if pool := db.Compactions(); pool != nil {
			st := pool.Stats()
			compaction = fmt.Sprintf("pool=%d (backpressure at %d queued tables)",
				st.Workers, st.BackpressureDepth)
		} else {
			compaction = "per-series goroutines"
		}
	}
	if ws, ok := db.WALStats(); ok {
		log.Printf("lsmd: wal: group-commit, %d shards, commit window %s, %d pending points replayable",
			ws.Shards, *commitW, ws.PendingPoints)
	} else if *dir != "" && *wal {
		log.Printf("lsmd: wal: legacy per-series objects")
	}
	if as, ok := db.ArbiterStats(); ok {
		log.Printf("lsmd: memory arbiter: budget %d MiB (memtables %d / cache %d), %d resident + %d cold series",
			as.BudgetBytes>>20, as.MemtableTargetBytes, as.CacheTargetBytes, as.ResidentSeries, as.ColdSeries)
	}
	log.Printf("lsmd: serving on %s (%s, policy=%s, n=%d, compaction=%s, %d series recovered)",
		bound, mode, *policy, *budget, compaction, len(db.Series()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("lsmd: %v: draining (budget %s)", got, *drainFor)

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		log.Fatalf("lsmd: shutdown: %v", err)
	}
	log.Printf("lsmd: clean shutdown")
}
