// Command datagen emits the paper's datasets as CSV (t_g,t_a,value per
// line, sorted by arrival) for use with the analyzer CLI or external
// tools.
//
// Usage:
//
//	datagen -dataset M3 -points 1000000 > m3.csv
//	datagen -dataset S9 > s9.csv
//	datagen -dataset H -points 200000 > h.csv
//	datagen -dataset dynamic -points 500000 > dyn.csv
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/series"
	"repro/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "M1", "dataset: M1..M12, S9, H, dynamic")
		points  = flag.Int("points", 100_000, "number of points (M* and dynamic; S9/H have native sizes scaled to this)")
		seed    = flag.Int64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list datasets and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.TableII() {
			fmt.Println(s.String())
		}
		fmt.Println("S9: simulated mobile-to-server dataset (skewed delays, ~7% out-of-order)")
		fmt.Println("H: simulated vehicle IIoT dataset (systematic ~5e4 ms re-sends)")
		fmt.Println("dynamic: sigma drifting 2 -> 1 in five segments (mu=5, dt=50)")
		return
	}

	var ps []series.Point
	switch *dataset {
	case "S9", "s9":
		cfg := workload.DefaultS9()
		cfg.N = *points
		cfg.Seed = *seed
		ps = workload.S9Like(cfg)
	case "H", "h":
		cfg := workload.DefaultH()
		cfg.N = *points
		cfg.Seed = *seed
		ps = workload.HLike(cfg)
	case "dynamic":
		ps = workload.DriftingSigma(*points, 50, 5, []float64{2, 1.75, 1.5, 1.25, 1}, *seed)
	default:
		spec, ok := workload.ByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (see -list)\n", *dataset)
			os.Exit(1)
		}
		ps = spec.Generate(*points, *seed)
	}

	if err := workload.WriteCSV(os.Stdout, ps); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: write: %v\n", err)
		os.Exit(1)
	}
}
