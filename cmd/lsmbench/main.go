// Command lsmbench regenerates the paper's tables and figures, and doubles
// as a load generator for the lsmd network server.
//
// Usage:
//
//	lsmbench -list
//	lsmbench -exp fig9 -scale 0.05
//	lsmbench -exp all -scale 0.02 -csv results/
//	lsmbench -load http://localhost:8086 -writers 8 -lseries 4 -lpoints 20000
//
// Each experiment prints a paper-style table; -csv additionally writes one
// CSV file per experiment. Scale 1.0 corresponds to the paper's dataset
// sizes (10M points per synthetic dataset) — expect long runtimes there.
// With -load, lsmbench instead drives concurrent batched writers against a
// running server (honoring 429 backpressure) and reports throughput.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale = flag.Float64("scale", 0.05, "dataset size multiplier (1.0 = paper scale)")
		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		csv   = flag.String("csv", "", "directory to write per-experiment CSV files")
		list  = flag.Bool("list", false, "list experiment ids and exit")

		load    = flag.String("load", "", "load-generator mode: base URL of a running lsmd server")
		writers = flag.Int("writers", 8, "load mode: concurrent writer goroutines")
		lseries = flag.Int("lseries", 4, "load mode: number of target series")
		lpoints = flag.Int("lpoints", 20000, "load mode: points per writer")
		lbatch  = flag.Int("lbatch", 500, "load mode: points per write request")
		ldt     = flag.Int64("ldt", 50, "load mode: generation interval (time units)")
		lmu     = flag.Float64("lmu", 5, "load mode: lognormal delay mu")
		lsigma  = flag.Float64("lsigma", 2, "load mode: lognormal delay sigma")
		lverify = flag.Bool("lverify", true, "load mode: scan every series afterwards and verify counts")

		cachebench = flag.Bool("cachebench", false, "cache mode: cold-vs-warm block cache scan benchmark on a durable engine")
		cscans     = flag.Int("cscans", 64, "cache mode: number of scan windows")
		cachemb    = flag.Int64("cachemb", 32, "cache mode: shared block cache capacity in MiB")

		schedbench = flag.Bool("schedbench", false, "scheduler mode: shared compaction pool vs per-series goroutines benchmark")
		sseries    = flag.Int("sseries", 64, "scheduler mode: number of series")
		spoints    = flag.Int("spoints", 20000, "scheduler mode: points per series")
		sworkers   = flag.Int("sworkers", 0, "scheduler mode: pool workers (0: scheduler default)")
		sbatch     = flag.Int("sbatch", 500, "scheduler mode: points per PutBatch")

		walbench = flag.Bool("walbench", false, "wal mode: per-series WAL vs sharded group-commit log benchmark")
		wseries  = flag.String("wseries", "64,1000,10000", "wal mode: comma-separated series counts to sweep")
		wpoints  = flag.Int("wpoints", 100, "wal mode: points per series")
		wbatch   = flag.Int("wbatch", 5, "wal mode: points per PutBatch (small on purpose: the fsync-bound regime)")
		wwriters = flag.Int("wwriters", 0, "wal mode: concurrent writer goroutines (0: one per series, the IoT fleet model)")
		wshards  = flag.Int("wshards", 0, "wal mode: group-commit shards (0: groupwal default)")
		wfsync   = flag.Duration("wfsync", 500*time.Microsecond, "wal mode: simulated fsync latency charged to every backend append")

		levelbench  = flag.Bool("levelbench", false, "level mode: single-run vs multi-level (k=1..4) write-amp benchmark on backfill-heavy workloads")
		lvlseries   = flag.Int("lvlseries", 4, "level mode: number of series per level count")
		lvlpoints   = flag.Int("lvlpoints", 20000, "level mode: points per series")
		lvlbatch    = flag.Int("lvlbatch", 200, "level mode: points per PutBatch")
		lvlbackfill = flag.Int("lvlbackfill", 40, "level mode: percent of points rewritten as uniform-random backfill")
		lvlks       = flag.String("lvlks", "1,2,3,4", "level mode: comma-separated level counts k to sweep")
		lvlsst      = flag.Int("lvlsst", 256, "level mode: SSTable size in points (also the memtable budget)")
		lvlgrowth   = flag.Int("lvlgrowth", 4, "level mode: per-level growth factor T")
		lvlpolicy   = flag.String("lvlpolicy", "leveling", "level mode: compaction policy (leveling, tiering, lazy-leveling)")
		lvlspec     = flag.String("lvlspec", "M3", "level mode: Table II dataset for the in-order leg")

		mixed    = flag.Bool("mixed", false, "mixed mode: concurrent read/write benchmark on an in-process engine")
		readers  = flag.Int("readers", 4, "mixed mode: concurrent scan goroutines")
		mpoints  = flag.Int("mpoints", 200000, "mixed mode: points to ingest")
		mbatch   = flag.Int("mbatch", 500, "mixed mode: points per PutBatch")
		mevery   = flag.Duration("scanevery", 100*time.Millisecond, "mixed mode: pacing between scans per reader (0 = full tilt)")
		benchout = flag.String("benchout", "", "mixed mode: write a machine-readable JSON report to this path")

		querybench = flag.Bool("querybench", false, "query mode: parallel fan-out vs sequential matcher-query benchmark")
		qbseries   = flag.Int("qbseries", 64, "query mode: matched fleet size")
		qbpoints   = flag.Int("qbpoints", 2000, "query mode: points per series")
		qbbatch    = flag.Int("qbbatch", 500, "query mode: points per PutBatch during setup")
		qbworkers  = flag.Int("qbworkers", 0, "query mode: fan-out workers (0: query.DefaultWorkers)")
		qbreadlat  = flag.Duration("qbreadlat", 200*time.Microsecond, "query mode: simulated latency per ranged block read")
		qbiters    = flag.Int("qbiters", 3, "query mode: timed repetitions per leg (best is reported)")

		rollupbench = flag.Bool("rollupbench", false, "rollup mode: dashboard-over-history aggregate benchmark, rollup-served vs raw")
		rbseries    = flag.Int("rbseries", 8, "rollup mode: fleet size")
		rbpoints    = flag.Int("rbpoints", 40000, "rollup mode: points per series")
		rbbatch     = flag.Int("rbbatch", 500, "rollup mode: points per PutBatch during setup")
		rbwindow    = flag.Int64("rbwindow", 320, "rollup mode: rollup bucket width in t_g units")
		rbqueries   = flag.Int("rbqueries", 400, "rollup mode: historical aggregates per leg")
		rbiters     = flag.Int("rbiters", 3, "rollup mode: timed repetitions per leg (best is reported)")

		verifyreport = flag.String("verifyreport", "", "verify mode: strictly parse a bench JSON report against its schema-stable struct and exit")

		scenario  = flag.String("scenario", "", "scenario mode: 'all', 'smoke', or comma-separated scenario names (see internal/benchmark)")
		sscale    = flag.Float64("sscale", 1.0, "scenario mode: point-count multiplier (smoke overrides)")
		benchbase = flag.String("benchbase", "", "scenario mode: prior -benchout report to compare against as baseline")
		baselabel = flag.String("baselabel", "", "scenario mode: label recorded for the baseline (default: the -benchbase path)")
	)
	flag.Parse()

	if *verifyreport != "" {
		runVerifyReport(*verifyreport)
		return
	}

	if *scenario != "" {
		runScenarios(scenarioConfig{
			names: *scenario,
			scale: *sscale,
			seed:  *seed,
			base:  *benchbase,
			label: *baselabel,
			out:   *benchout,
		})
		return
	}

	if *rollupbench {
		runRollupBench(rollupBenchConfig{
			series:  *rbseries,
			points:  *rbpoints,
			batch:   *rbbatch,
			window:  *rbwindow,
			queries: *rbqueries,
			iters:   *rbiters,
			seed:    *seed,
			out:     *benchout, // "" defaults to BENCH_10.json
		})
		return
	}

	if *querybench {
		runQueryBench(queryBenchConfig{
			series:  *qbseries,
			points:  *qbpoints,
			batch:   *qbbatch,
			workers: *qbworkers,
			readLat: *qbreadlat,
			iters:   *qbiters,
			out:     *benchout, // "" defaults to BENCH_9.json
		})
		return
	}

	if *cachebench {
		runCacheBench(cacheBenchConfig{
			points:     *mpoints,
			batch:      *mbatch,
			dt:         *ldt,
			mu:         *lmu,
			sigma:      *lsigma,
			seed:       *seed,
			scans:      *cscans,
			cacheBytes: *cachemb << 20,
			out:        *benchout,
		})
		return
	}

	if *schedbench {
		runSchedBench(schedConfig{
			series:  *sseries,
			points:  *spoints,
			batch:   *sbatch,
			workers: *sworkers,
			dt:      *ldt,
			mu:      *lmu,
			sigma:   *lsigma,
			seed:    *seed,
			out:     *benchout,
		})
		return
	}

	if *walbench {
		runWALBench(walBenchConfig{
			seriesCounts: parseSeriesCounts(*wseries),
			points:       *wpoints,
			batch:        *wbatch,
			writers:      *wwriters,
			shards:       *wshards,
			fsync:        *wfsync,
			out:          *benchout,
		})
		return
	}

	if *levelbench {
		runLevelBench(levelConfig{
			series:   *lvlseries,
			points:   *lvlpoints,
			batch:    *lvlbatch,
			backfill: *lvlbackfill,
			ks:       parseSeriesCounts(*lvlks),
			sst:      *lvlsst,
			growth:   *lvlgrowth,
			policy:   *lvlpolicy,
			spec:     *lvlspec,
			seed:     *seed,
			out:      *benchout,
		})
		return
	}

	if *mixed {
		runMixed(mixedConfig{
			readers:  *readers,
			points:   *mpoints,
			batch:    *mbatch,
			dt:       *ldt,
			mu:       *lmu,
			sigma:    *lsigma,
			seed:     *seed,
			interval: *mevery,
			out:      *benchout,
		})
		return
	}

	if *load != "" {
		runLoad(loadConfig{
			base:    *load,
			writers: *writers,
			series:  *lseries,
			points:  *lpoints,
			batch:   *lbatch,
			dt:      *ldt,
			mu:      *lmu,
			sigma:   *lsigma,
			seed:    *seed,
			verify:  *lverify,
		})
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			desc, _ := experiments.Describe(id)
			fmt.Printf("%-22s %s\n", id, desc)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	} else if strings.Contains(*exp, ",") {
		ids = strings.Split(*exp, ",")
	}

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fatal("create csv dir: %v", err)
		}
	}

	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fatal("%s: %v", id, err)
		}
		rep.AddNote("completed in %s", time.Since(start).Round(time.Millisecond))
		rep.Render(os.Stdout)
		if *csv != "" {
			path := filepath.Join(*csv, rep.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal("create %s: %v", path, err)
			}
			if err := rep.WriteCSV(f); err != nil {
				f.Close()
				fatal("write %s: %v", path, err)
			}
			f.Close()
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lsmbench: "+format+"\n", args...)
	os.Exit(1)
}
