package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Cold-vs-warm block cache benchmark: measures what the lazy block-addressed
// read path costs on first touch and what the shared LRU cache buys on
// re-read. It ingests an out-of-order workload into a durable engine, closes
// it so nothing is resident, reopens it, and runs the same set of range
// scans three ways: cold (empty cache, every block decoded from storage),
// warm (immediately re-scanned, every block served from the cache), and
// uncached (cache disabled, every scan decodes every block every time).

type cacheBenchConfig struct {
	points     int
	batch      int
	dt         int64
	mu         float64
	sigma      float64
	seed       int64
	scans      int   // number of distinct scan windows
	cacheBytes int64 // shared cache capacity
	out        string
}

// cacheBenchReport is the machine-readable result (BENCH_4.json).
type cacheBenchReport struct {
	Name            string  `json:"name"`
	Points          int     `json:"points"`
	Scans           int     `json:"scans"`
	CacheBytes      int64   `json:"cache_bytes"`
	ColdSeconds     float64 `json:"cold_seconds"`
	ColdBlocksRead  int64   `json:"cold_blocks_read"`
	ColdBlocksHit   int64   `json:"cold_blocks_cached"`
	WarmSeconds     float64 `json:"warm_seconds"`
	WarmBlocksRead  int64   `json:"warm_blocks_read"`
	WarmBlocksHit   int64   `json:"warm_blocks_cached"`
	UncachedSeconds float64 `json:"uncached_seconds"`
	WarmHitRate     float64 `json:"warm_hit_rate"`
	WarmSpeedup     float64 `json:"warm_speedup"` // cold_seconds / warm_seconds
	ResultPoints    int64   `json:"result_points"`
}

// scanWindows derives the deterministic scan set from the workload span.
func scanWindows(rng *rand.Rand, maxTG int64, n int) [][2]int64 {
	out := make([][2]int64, n)
	for i := range out {
		span := maxTG/8 + 1
		lo := rng.Int63n(maxTG + 1)
		out[i] = [2]int64{lo, lo + rng.Int63n(span)}
	}
	return out
}

// runScanSet scans every window once, returning wall seconds, summed block
// counters, and total result points.
func runScanSet(e *lsm.Engine, windows [][2]int64) (float64, int64, int64, int64) {
	var blocksRead, blocksHit, results int64
	start := time.Now()
	for _, w := range windows {
		pts, st, err := e.Scan(w[0], w[1])
		if err != nil {
			fatal("cachebench scan: %v", err)
		}
		blocksRead += st.BlocksRead
		blocksHit += st.BlocksCached
		results += int64(len(pts))
	}
	return time.Since(start).Seconds(), blocksRead, blocksHit, results
}

func runCacheBench(cfg cacheBenchConfig) {
	dir, err := os.MkdirTemp("", "lsmbench-cache-")
	if err != nil {
		fatal("cachebench: %v", err)
	}
	defer os.RemoveAll(dir)
	backend, err := storage.NewDiskBackend(dir)
	if err != nil {
		fatal("cachebench: %v", err)
	}

	pts := workload.Synthetic(cfg.points, cfg.dt, dist.NewLognormal(cfg.mu, cfg.sigma), cfg.seed)
	engineCfg := lsm.Config{
		Policy:        lsm.Conventional,
		MemBudget:     4096,
		SSTablePoints: 4096,
		Backend:       backend,
	}
	loadEngine(engineCfg, pts, cfg.batch)

	var maxTG int64
	for _, p := range pts {
		if p.TG > maxTG {
			maxTG = p.TG
		}
	}
	windows := scanWindows(rand.New(rand.NewSource(cfg.seed)), maxTG, cfg.scans)

	rep := cacheBenchReport{
		Name:       "cache_cold_warm",
		Points:     cfg.points,
		Scans:      cfg.scans,
		CacheBytes: cfg.cacheBytes,
	}

	// Cold + warm: reopen with an empty shared cache; the first pass over
	// the windows decodes from storage, the second re-reads the same blocks.
	cachedCfg := engineCfg
	cachedCfg.BlockCache = cache.New(cfg.cacheBytes)
	e, err := lsm.Open(cachedCfg)
	if err != nil {
		fatal("cachebench reopen: %v", err)
	}
	rep.ColdSeconds, rep.ColdBlocksRead, rep.ColdBlocksHit, rep.ResultPoints = runScanSet(e, windows)
	var warmResults int64
	rep.WarmSeconds, rep.WarmBlocksRead, rep.WarmBlocksHit, warmResults = runScanSet(e, windows)
	if warmResults != rep.ResultPoints {
		fatal("cachebench: warm pass returned %d points, cold returned %d", warmResults, rep.ResultPoints)
	}
	if err := e.Close(); err != nil {
		fatal("cachebench close: %v", err)
	}

	// Uncached reference: same windows, no cache at all.
	e, err = lsm.Open(engineCfg)
	if err != nil {
		fatal("cachebench reopen uncached: %v", err)
	}
	rep.UncachedSeconds, _, _, _ = runScanSet(e, windows)
	if err := e.Close(); err != nil {
		fatal("cachebench close: %v", err)
	}

	if total := rep.WarmBlocksRead + rep.WarmBlocksHit; total > 0 {
		rep.WarmHitRate = float64(rep.WarmBlocksHit) / float64(total)
	}
	if rep.WarmSeconds > 0 {
		rep.WarmSpeedup = rep.ColdSeconds / rep.WarmSeconds
	}

	fmt.Printf("cache cold/warm benchmark: %d points, %d windows, cache %d bytes\n",
		rep.Points, rep.Scans, rep.CacheBytes)
	fmt.Printf("  cold:     %.3fs (%d blocks read, %d cached)\n", rep.ColdSeconds, rep.ColdBlocksRead, rep.ColdBlocksHit)
	fmt.Printf("  warm:     %.3fs (%d blocks read, %d cached, hit rate %.1f%%)\n",
		rep.WarmSeconds, rep.WarmBlocksRead, rep.WarmBlocksHit, 100*rep.WarmHitRate)
	fmt.Printf("  uncached: %.3fs\n", rep.UncachedSeconds)
	fmt.Printf("  warm speedup over cold: %.2fx\n", rep.WarmSpeedup)

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("cachebench: marshal report: %v", err)
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			fatal("cachebench: write report: %v", err)
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
}

// loadEngine ingests pts in batches and closes the engine, leaving the data
// durable in the backend.
func loadEngine(cfg lsm.Config, pts []series.Point, batch int) {
	e, err := lsm.Open(cfg)
	if err != nil {
		fatal("cachebench open: %v", err)
	}
	for i := 0; i < len(pts); i += batch {
		j := i + batch
		if j > len(pts) {
			j = len(pts)
		}
		if err := e.PutBatch(pts[i:j]); err != nil {
			fatal("cachebench PutBatch: %v", err)
		}
	}
	if err := e.FlushAll(); err != nil {
		fatal("cachebench FlushAll: %v", err)
	}
	if err := e.Close(); err != nil {
		fatal("cachebench close: %v", err)
	}
}
