package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

// Rollup benchmark: the dashboard-over-history workload — wide historical
// aggregates whose bucket width is a multiple of the store's rollup
// window — answered twice from identically ingested stores: once with
// compaction-time rollups enabled (eligible table ranges served from
// precomputed buckets) and once raw (every aggregate folds every point in
// range). The two legs' answers are compared bucket-for-bucket; a read
// reduction that changed the numbers would be worthless.
//
// Two figures of merit: the read reduction (blocks fetched and points
// decoded per aggregate, the quantity a dashboard's latency is made of)
// and the ingest ratio (rollup maintenance happens at flush/compaction,
// so its cost shows up as write throughput — the ratio guards it).

type rollupBenchConfig struct {
	series  int   // fleet size
	points  int   // per series
	batch   int   // points per PutBatch
	window  int64 // rollup bucket width in t_g units
	queries int   // historical aggregates per leg
	iters   int   // timed repetitions per leg; best is reported
	seed    int64
	out     string // JSON report path ("" = BENCH_10.json)
}

// rollupRun is one leg's measurement.
type rollupRun struct {
	Mode               string  `json:"mode"` // "rollup" or "raw"
	IngestSeconds      float64 `json:"ingest_seconds"`
	IngestPointsPerSec float64 `json:"ingest_points_per_sec"`
	QuerySeconds       float64 `json:"query_seconds"`
	QueriesPerSec      float64 `json:"queries_per_sec"`
	BucketsReturned    int64   `json:"buckets_returned"`
	RollupBuckets      int64   `json:"rollup_buckets_used"`
	BlocksRead         int64   `json:"blocks_read"`
	PointsDecoded      int64   `json:"points_decoded"` // raw points folded into answers
}

// rollupReport is the machine-readable result (BENCH_10.json).
type rollupReport struct {
	Name            string    `json:"name"` // "rollup_dashboard_over_history"
	Series          int       `json:"series"`
	PointsPerSeries int       `json:"points_per_series"`
	Window          int64     `json:"rollup_window"`
	Queries         int       `json:"queries"`
	Rollup          rollupRun `json:"rollup"`
	Raw             rollupRun `json:"raw"`
	// BlocksReadReductionX is raw/rollup blocks fetched (>1: rollups read less).
	BlocksReadReductionX float64 `json:"blocks_read_reduction_x"`
	// PointsDecodedReductionX is raw/rollup points folded (>1: rollups fold less).
	PointsDecodedReductionX float64 `json:"points_decoded_reduction_x"`
	// IngestRatio is rollup/raw ingest throughput (1.0: rollup maintenance free).
	IngestRatio  float64 `json:"ingest_ratio"`
	ResultsEqual bool    `json:"results_equal"`
}

func runRollupBench(cfg rollupBenchConfig) {
	if cfg.out == "" {
		cfg.out = "BENCH_10.json"
	}
	fmt.Printf("rollup dashboard-over-history benchmark (%d series x %d points, window %d, %d aggregates)\n",
		cfg.series, cfg.points, cfg.window, cfg.queries)

	legs := map[string]int64{"rollup": cfg.window, "raw": 0}
	runs := make(map[string]*rollupRun, 2)
	answers := make(map[string][][]query.Bucket, 2)
	// Both legs repeat iters times and keep the best timings: the ingest
	// phase is short enough that a single GC pause dominates one run. The
	// read counters are deterministic and asserted identical across
	// repetitions. Raw runs first, so whatever process warmup is worth
	// goes to the leg the rollup leg is judged against.
	if cfg.iters < 1 {
		cfg.iters = 1
	}
	for _, mode := range []string{"raw", "rollup"} {
		for i := 0; i < cfg.iters; i++ {
			run, ans := runRollupLeg(cfg, mode, legs[mode])
			best := runs[mode]
			if best == nil {
				runs[mode], answers[mode] = run, ans
				continue
			}
			if run.BlocksRead != best.BlocksRead || run.PointsDecoded != best.PointsDecoded {
				fatal("%s leg read counters vary across repetitions", mode)
			}
			if run.IngestPointsPerSec > best.IngestPointsPerSec {
				best.IngestSeconds, best.IngestPointsPerSec = run.IngestSeconds, run.IngestPointsPerSec
			}
			if run.QuerySeconds < best.QuerySeconds {
				best.QuerySeconds, best.QueriesPerSec = run.QuerySeconds, run.QueriesPerSec
			}
		}
	}

	rep := rollupReport{
		Name:            "rollup_dashboard_over_history",
		Series:          cfg.series,
		PointsPerSeries: cfg.points,
		Window:          cfg.window,
		Queries:         cfg.queries,
		Rollup:          *runs["rollup"],
		Raw:             *runs["raw"],
		ResultsEqual:    bucketAnswersEqual(answers["rollup"], answers["raw"]),
	}
	if rep.Rollup.BlocksRead > 0 {
		rep.BlocksReadReductionX = float64(rep.Raw.BlocksRead) / float64(rep.Rollup.BlocksRead)
	}
	if rep.Rollup.PointsDecoded > 0 {
		rep.PointsDecodedReductionX = float64(rep.Raw.PointsDecoded) / float64(rep.Rollup.PointsDecoded)
	}
	if rep.Raw.IngestPointsPerSec > 0 {
		rep.IngestRatio = rep.Rollup.IngestPointsPerSec / rep.Raw.IngestPointsPerSec
	}

	for _, mode := range []string{"rollup", "raw"} {
		r := runs[mode]
		fmt.Printf("  %-6s: ingest %8.0f pt/s  queries %8.1f/s  %9d blocks  %11d points folded  %9d rollup buckets\n",
			r.Mode, r.IngestPointsPerSec, r.QueriesPerSec, r.BlocksRead, r.PointsDecoded, r.RollupBuckets)
	}
	fmt.Printf("  reduction: %.1fx blocks read, %.1fx points decoded; ingest ratio %.3f; results equal: %v\n",
		rep.BlocksReadReductionX, rep.PointsDecodedReductionX, rep.IngestRatio, rep.ResultsEqual)
	if !rep.ResultsEqual {
		fatal("rollup and raw aggregates disagree")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal report: %v", err)
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		fatal("write %s: %v", cfg.out, err)
	}
	fmt.Printf("  report: %s\n", cfg.out)
}

// runRollupLeg ingests the identical seeded workload into a fresh durable
// in-memory store (rollup window per mode), flushes, then times the
// historical aggregate storm. The same seed drives both legs' query
// sequence, so the per-query answers line up index-for-index.
func runRollupLeg(cfg rollupBenchConfig, mode string, window int64) (*rollupRun, [][]query.Bucket) {
	db, err := tsdb.Open(tsdb.Config{
		Engine: lsm.Config{
			Policy:        lsm.Conventional,
			MemBudget:     2048,
			SSTablePoints: 1024,
			// The paper's single-run layout: level tables stay pairwise
			// disjoint, so historical table ranges are uncontested and
			// rollup-eligible. Deeper level counts trade some eligibility
			// near the write frontier for lower write amplification.
			Levels: 1,
			Seed:   cfg.seed,
		},
		Backend:      storage.NewMemBackend(),
		AutoCreate:   true,
		RollupWindow: window,
	})
	if err != nil {
		fatal("open %s db: %v", mode, err)
	}
	defer db.Close()

	run := &rollupRun{Mode: mode}

	// Ingest: in-order per series with a small out-of-order tail, the
	// near-in-order shape sensors produce. Identical bytes in both legs.
	// The GC drains setup garbage so the timed phase pays only for its
	// own allocations.
	runtime.GC()
	rng := rand.New(rand.NewSource(cfg.seed))
	buf := make([]series.Point, 0, cfg.batch)
	start := time.Now()
	for s := 0; s < cfg.series; s++ {
		name := fmt.Sprintf("root.rb.dev%03d", s)
		for i := 0; i < cfg.points; i++ {
			tg := int64(i) * 5
			if rng.Float64() < 0.02 && i > 64 { // straggler: short backward hop
				tg -= int64(1 + rng.Intn(60))
			}
			buf = append(buf, series.Point{TG: tg, TA: int64(i) * 5, V: float64(tg%4096) * 0.25})
			if len(buf) == cfg.batch || i == cfg.points-1 {
				if err := db.PutBatch(name, buf); err != nil {
					fatal("%s ingest %s: %v", mode, name, err)
				}
				buf = buf[:0]
			}
		}
	}
	run.IngestSeconds = time.Since(start).Seconds()
	run.IngestPointsPerSec = float64(cfg.series*cfg.points) / run.IngestSeconds

	// Everything to SSTables: the dashboard reads history, not the
	// write buffer.
	if err := db.FlushAll(); err != nil {
		fatal("%s flush: %v", mode, err)
	}

	// Query storm: wide historical ranges with unaligned edges, widths a
	// small multiple of the window.
	qrng := rand.New(rand.NewSource(cfg.seed ^ 0xd0b))
	maxTG := int64(cfg.points) * 5
	answers := make([][]query.Bucket, 0, cfg.queries)
	start = time.Now()
	for q := 0; q < cfg.queries; q++ {
		name := fmt.Sprintf("root.rb.dev%03d", qrng.Intn(cfg.series))
		lo := qrng.Int63n(maxTG / 2)
		hi := lo + maxTG/2 + qrng.Int63n(maxTG/4)
		width := cfg.window * (1 + qrng.Int63n(3))
		bks, st, err := db.AggregateSeries(name, lo, hi, width)
		if err != nil {
			fatal("%s aggregate: %v", mode, err)
		}
		run.BucketsReturned += int64(len(bks))
		run.RollupBuckets += int64(st.RollupBuckets)
		run.BlocksRead += st.BlocksRead
		// ResultPoints for an aggregate counts the raw points folded into
		// the answer — for the rollup leg, only range edges and sources
		// without an eligible rollup. That is the decode work a dashboard's
		// latency is made of; TablePoints would instead charge the paper's
		// whole-table HDD model, overstating a one-block edge touch.
		run.PointsDecoded += int64(st.ResultPoints)
		answers = append(answers, bks)
	}
	run.QuerySeconds = time.Since(start).Seconds()
	if run.QuerySeconds > 0 {
		run.QueriesPerSec = float64(cfg.queries) / run.QuerySeconds
	}
	return run, answers
}

// bucketAnswersEqual compares the two legs' per-query answers
// bucket-for-bucket. Values are dyadic, so equality is exact, not
// tolerance-based.
func bucketAnswersEqual(a, b [][]query.Bucket) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
