package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/series"
	"repro/internal/workload"
)

// Mixed read/write benchmark: measures what snapshot reads cost the write
// path. It ingests the same out-of-order workload twice into an async
// engine — once alone (baseline) and once while N reader goroutines scan
// full-tilt — and reports ingest throughput for both plus the readers' scan
// latency distribution. With lock-free snapshot reads the two ingest rates
// should be close (the acceptance bar is within ~20%); before this change,
// every scan held the engine lock for its whole merge and readers collapsed
// ingest throughput.

type mixedConfig struct {
	readers  int
	points   int
	batch    int
	dt       int64
	mu       float64
	sigma    float64
	seed     int64
	interval time.Duration // pacing between scans per reader (0 = full tilt)
	out      string        // JSON report path ("" = none)
}

// mixedReport is the machine-readable result (BENCH_3.json).
type mixedReport struct {
	Name            string  `json:"name"`
	Readers         int     `json:"readers"`
	Points          int     `json:"points"`
	Batch           int     `json:"batch"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	BaselinePPS     float64 `json:"baseline_points_per_second"`
	MixedSeconds    float64 `json:"mixed_seconds"`
	MixedPPS        float64 `json:"mixed_points_per_second"`
	IngestRatio     float64 `json:"ingest_ratio"` // mixed / baseline
	Scans           int64   `json:"scans"`
	ScannedPoints   int64   `json:"scanned_points"`
	ScanP50Millis   float64 `json:"scan_p50_ms"`
	ScanP99Millis   float64 `json:"scan_p99_ms"`
	ScanMeanMillis  float64 `json:"scan_mean_ms"`
}

func runMixed(cfg mixedConfig) {
	pts := workload.Synthetic(cfg.points, cfg.dt, dist.NewLognormal(cfg.mu, cfg.sigma), cfg.seed)
	engineCfg := lsm.Config{
		Policy:          lsm.Conventional,
		MemBudget:       4096,
		SSTablePoints:   4096,
		AsyncCompaction: true,
	}

	rep := mixedReport{
		Name:    "mixed_read_write",
		Readers: cfg.readers,
		Points:  cfg.points,
		Batch:   cfg.batch,
	}

	// Baseline: ingest alone.
	rep.BaselineSeconds = ingestAll(engineCfg, pts, cfg.batch, 0, 0, nil, nil, nil)
	rep.BaselinePPS = float64(cfg.points) / rep.BaselineSeconds

	// Mixed: same ingest with cfg.readers concurrent scanners.
	var scans, scanned atomic.Int64
	var latMu sync.Mutex
	var lats []float64 // seconds
	rep.MixedSeconds = ingestAll(engineCfg, pts, cfg.batch, cfg.readers, cfg.interval, &scans, &scanned, func(d time.Duration) {
		latMu.Lock()
		lats = append(lats, d.Seconds())
		latMu.Unlock()
	})
	rep.MixedPPS = float64(cfg.points) / rep.MixedSeconds
	rep.IngestRatio = rep.MixedPPS / rep.BaselinePPS
	rep.Scans = scans.Load()
	rep.ScannedPoints = scanned.Load()
	if len(lats) > 0 {
		rep.ScanP50Millis = metrics.Quantile(lats, 0.5) * 1000
		rep.ScanP99Millis = metrics.Quantile(lats, 0.99) * 1000
		rep.ScanMeanMillis = metrics.Mean(lats) * 1000
	}

	fmt.Printf("mixed read/write benchmark (%d points, batch %d, %d readers)\n",
		cfg.points, cfg.batch, cfg.readers)
	fmt.Printf("  ingest baseline : %10.0f pts/s  (%.2fs)\n", rep.BaselinePPS, rep.BaselineSeconds)
	fmt.Printf("  ingest w/readers: %10.0f pts/s  (%.2fs, ratio %.2f)\n", rep.MixedPPS, rep.MixedSeconds, rep.IngestRatio)
	fmt.Printf("  scans           : %d (%d points streamed)\n", rep.Scans, rep.ScannedPoints)
	fmt.Printf("  scan latency    : p50 %.3fms  p99 %.3fms  mean %.3fms\n",
		rep.ScanP50Millis, rep.ScanP99Millis, rep.ScanMeanMillis)

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal report: %v", err)
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", cfg.out, err)
		}
		fmt.Printf("  report          : %s\n", cfg.out)
	}
}

// ingestAll opens a fresh engine, ingests pts in batches, and returns the
// ingest wall time. When readers > 0 it runs that many scanner goroutines
// for the whole ingest, each pacing one scan per interval (the dashboard
// polling pattern; interval 0 scans full-tilt). Scans are mostly random
// recent windows with an occasional full-history pass, streamed off an
// iterator so reader memory stays O(1).
func ingestAll(engineCfg lsm.Config, pts []series.Point, batch, readers int,
	interval time.Duration, scans, scanned *atomic.Int64, observe func(time.Duration)) float64 {

	e, err := lsm.Open(engineCfg)
	if err != nil {
		fatal("open engine: %v", err)
	}
	defer e.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				lo, hi := int64(math.MinInt64+1), int64(math.MaxInt64)
				if rng.Intn(8) != 0 {
					// Recent window covering up to 10% of history.
					if max, ok := e.MaxTG(); ok {
						span := rng.Int63n(max/10 + 1)
						lo, hi = max-span, max
					}
				}
				start := time.Now()
				it := e.NewIterator(lo, hi)
				n := 0
				for it.Next() {
					n++
				}
				observe(time.Since(start))
				scans.Add(1)
				scanned.Add(int64(n))
				if d := interval - time.Since(start); d > 0 {
					time.Sleep(d)
				}
			}
		}(int64(1000 + r))
	}

	start := time.Now()
	for i := 0; i < len(pts); i += batch {
		j := i + batch
		if j > len(pts) {
			j = len(pts)
		}
		if err := e.PutBatch(pts[i:j]); err != nil {
			fatal("PutBatch: %v", err)
		}
	}
	elapsed := time.Since(start).Seconds()
	stop.Store(true)
	wg.Wait()
	return elapsed
}
