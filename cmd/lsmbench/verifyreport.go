package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/benchmark"
)

// Report verification: `lsmbench -verifyreport <path>` strictly decodes a
// scenario-suite JSON artifact against the schema-stable benchmark.Report
// struct and fails on unknown fields, missing scenarios, or nonsense
// measurements. CI runs it on the bench smoke output so a schema drift
// (renamed field, repurposed unit) breaks loudly instead of silently
// producing reports that later refuse to compare against old baselines.

// verifyScenarioReport checks that path holds a well-formed scenario-suite
// report. The decode is strict: a field the struct does not know about
// means the writer and the schema have diverged.
func verifyScenarioReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep benchmark.Report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: strict decode: %w", path, err)
	}
	if rep.Bench != "scenario-suite" {
		return fmt.Errorf("%s: bench = %q, want \"scenario-suite\"", path, rep.Bench)
	}
	if len(rep.Scenarios) == 0 {
		return fmt.Errorf("%s: no scenario results", path)
	}
	for _, r := range rep.Scenarios {
		if r.Scenario == "" {
			return fmt.Errorf("%s: scenario result without a name", path)
		}
		if r.Points <= 0 || r.IngestPointsPerSec <= 0 {
			return fmt.Errorf("%s: %s: empty measurement (points=%d, ingest=%f)",
				path, r.Scenario, r.Points, r.IngestPointsPerSec)
		}
	}
	return nil
}

// verifyQueryReport checks a querybench artifact (BENCH_9.json): strict
// schema, a real fleet, and the two legs agreeing on the answer.
func verifyQueryReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep queryReport
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: strict decode: %w", path, err)
	}
	if rep.Name != "query_fanout_vs_sequential" {
		return fmt.Errorf("%s: name = %q", path, rep.Name)
	}
	if rep.Series <= 0 || rep.PointsPerSeries <= 0 {
		return fmt.Errorf("%s: empty workload (%d series x %d points)", path, rep.Series, rep.PointsPerSeries)
	}
	if !rep.ResultsEqual {
		return fmt.Errorf("%s: sequential and parallel legs disagreed", path)
	}
	if rep.Sequential.Points != rep.Parallel.Points || rep.Sequential.Points <= 0 {
		return fmt.Errorf("%s: point counts %d vs %d", path, rep.Sequential.Points, rep.Parallel.Points)
	}
	if rep.SpeedupX <= 0 {
		return fmt.Errorf("%s: speedup %f", path, rep.SpeedupX)
	}
	return nil
}

// verifyRollupReport checks a rollupbench artifact (BENCH_10.json):
// strict schema, a real workload, bit-identical legs, and the read
// reduction the rollup path exists to deliver — at least 5x fewer raw
// points folded per dashboard-over-history aggregate.
func verifyRollupReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep rollupReport
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: strict decode: %w", path, err)
	}
	if rep.Name != "rollup_dashboard_over_history" {
		return fmt.Errorf("%s: name = %q", path, rep.Name)
	}
	if rep.Series <= 0 || rep.PointsPerSeries <= 0 || rep.Window <= 0 || rep.Queries <= 0 {
		return fmt.Errorf("%s: empty workload (%d series x %d points, window %d, %d queries)",
			path, rep.Series, rep.PointsPerSeries, rep.Window, rep.Queries)
	}
	if !rep.ResultsEqual {
		return fmt.Errorf("%s: rollup and raw legs disagreed", path)
	}
	if rep.Rollup.BucketsReturned != rep.Raw.BucketsReturned || rep.Rollup.BucketsReturned <= 0 {
		return fmt.Errorf("%s: bucket counts %d vs %d", path, rep.Rollup.BucketsReturned, rep.Raw.BucketsReturned)
	}
	if rep.Rollup.RollupBuckets <= 0 {
		return fmt.Errorf("%s: rollup leg never served from rollups", path)
	}
	if rep.Raw.RollupBuckets != 0 {
		return fmt.Errorf("%s: raw leg served %d rollup buckets", path, rep.Raw.RollupBuckets)
	}
	if rep.PointsDecodedReductionX < 5 {
		return fmt.Errorf("%s: points-decoded reduction %.2fx, want >= 5x", path, rep.PointsDecodedReductionX)
	}
	if rep.IngestRatio <= 0 {
		return fmt.Errorf("%s: ingest ratio %f", path, rep.IngestRatio)
	}
	return nil
}

// runVerifyReport dispatches on the report's self-identification so CI can
// point one flag at either artifact kind.
func runVerifyReport(path string) {
	var head struct {
		Bench string `json:"bench"`
		Name  string `json:"name"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("verifyreport: %v", err)
	}
	if err := json.Unmarshal(data, &head); err != nil {
		fatal("verifyreport: %s: %v", path, err)
	}
	switch {
	case head.Bench == "scenario-suite":
		err = verifyScenarioReport(path)
	case head.Name == "query_fanout_vs_sequential":
		err = verifyQueryReport(path)
	case head.Name == "rollup_dashboard_over_history":
		err = verifyRollupReport(path)
	default:
		fatal("verifyreport: %s: unrecognized report (bench=%q name=%q)", path, head.Bench, head.Name)
	}
	if err != nil {
		fatal("verifyreport: %v", err)
	}
	fmt.Printf("%s: ok\n", path)
}
