package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/workload"
)

// Multi-level benchmark: ingests the same backfill-heavy workload into a
// set of series for each level count k and reports mean write amplification
// and p99 per-batch Put latency. With k = 1 (the paper's single-run layout)
// every compaction rewrites the whole run, so WA grows without bound as the
// run does; with k > 1 a merge only touches the overlapping slice of the
// next level, so WA is bounded by the level geometry. The acceptance bar
// for the multi-level path is k = 3 strictly below the single run on mean
// WA with no p99 ingest-stall regression.

type levelConfig struct {
	series   int
	points   int // per series
	batch    int
	backfill int // percent of points with uniform-random t_g (extreme OOO)
	ks       []int
	sst      int
	growth   int
	policy   string
	spec     string // Table II dataset for the in-order leg
	seed     int64
	out      string // JSON report path ("" = none)
}

// levelRun is one level-count's measurement.
type levelRun struct {
	Levels      int     `json:"levels"`
	MeanWA      float64 `json:"mean_wa"`
	P99PutSecs  float64 `json:"p99_put_batch_seconds"`
	MeanPutSecs float64 `json:"mean_put_batch_seconds"`
	Seconds     float64 `json:"seconds"`
	Tables      int     `json:"tables"`
	Compactions int64   `json:"compactions"`
}

// levelReport is the machine-readable result (BENCH_7.json).
type levelReport struct {
	Name            string     `json:"name"`
	Series          int        `json:"series"`
	PointsPerSeries int        `json:"points_per_series"`
	Batch           int        `json:"batch"`
	BackfillPct     int        `json:"backfill_pct"`
	SSTablePoints   int        `json:"sstable_points"`
	GrowthFactor    int        `json:"growth_factor"`
	Policy          string     `json:"policy"`
	Dataset         string     `json:"dataset"`
	Runs            []levelRun `json:"runs"`
	// WARatioK3 is mean WA at k=3 over k=1; < 1 means the multi-level
	// layout beats the single run on this workload.
	WARatioK3 float64 `json:"wa_ratio_k3_over_k1,omitempty"`
}

func runLevelBench(cfg levelConfig) {
	spec, ok := workload.ByName(cfg.spec)
	if !ok {
		fatal("unknown dataset %q (want a Table II name like M3)", cfg.spec)
	}
	pol, err := lsm.CompactionPolicyByName(cfg.policy)
	if err != nil {
		fatal("-lvlpolicy: %v", err)
	}

	// One stream per series: the spec's lognormal-delay arrival stream with
	// a slice of points rewritten as uniform-random backfill over the whole
	// generation domain. Backfill t_g values land anywhere in history, the
	// worst case for a single sorted run.
	data := make([][]series.Point, cfg.series)
	for s := range data {
		pts := spec.Generate(cfg.points, cfg.seed+int64(s))
		rng := rand.New(rand.NewSource(cfg.seed + 1000 + int64(s)))
		domain := int64(cfg.points) * spec.Dt
		for i := range pts {
			if rng.Intn(100) < cfg.backfill {
				pts[i].TG = 1 + rng.Int63n(domain)
			}
		}
		data[s] = pts
	}

	rep := levelReport{
		Name:            "multilevel_vs_single_run",
		Series:          cfg.series,
		PointsPerSeries: cfg.points,
		Batch:           cfg.batch,
		BackfillPct:     cfg.backfill,
		SSTablePoints:   cfg.sst,
		GrowthFactor:    cfg.growth,
		Policy:          pol.Name(),
		Dataset:         cfg.spec,
	}
	for _, k := range cfg.ks {
		rep.Runs = append(rep.Runs, levelIngest(cfg, pol, data, k))
	}
	var k1, k3 float64
	for _, r := range rep.Runs {
		switch r.Levels {
		case 1:
			k1 = r.MeanWA
		case 3:
			k3 = r.MeanWA
		}
	}
	if k1 > 0 && k3 > 0 {
		rep.WARatioK3 = k3 / k1
	}

	fmt.Printf("multi-level benchmark (%d series x %d points, %d%% uniform backfill, dataset %s, sst=%d, T=%d, %s)\n",
		cfg.series, cfg.points, cfg.backfill, cfg.spec, cfg.sst, cfg.growth, pol.Name())
	for _, r := range rep.Runs {
		fmt.Printf("  k=%d: mean WA %6.2f   p99 put %8.2fus   (%.2fs, %d tables, %d compactions)\n",
			r.Levels, r.MeanWA, r.P99PutSecs*1e6, r.Seconds, r.Tables, r.Compactions)
	}
	if rep.WARatioK3 > 0 {
		fmt.Printf("  WA ratio k=3/k=1  : %.3f\n", rep.WARatioK3)
	}

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal report: %v", err)
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", cfg.out, err)
		}
		fmt.Printf("  report            : %s\n", cfg.out)
	}
}

// levelIngest ingests every series synchronously at level count k and
// aggregates WA and per-batch latency. Synchronous compaction keeps the
// merge cost inside the Put call, so the latency tail is the ingest stall
// the paper worries about rather than a queueing artifact.
func levelIngest(cfg levelConfig, pol lsm.CompactionPolicy, data [][]series.Point, k int) levelRun {
	run := levelRun{Levels: k}
	var lats []float64
	var waSum float64
	start := time.Now()
	for s := range data {
		e, err := lsm.Open(lsm.Config{
			Policy:        lsm.Conventional,
			MemBudget:     cfg.sst,
			SSTablePoints: cfg.sst,
			Levels:        k,
			GrowthFactor:  cfg.growth,
			Compaction:    pol,
		})
		if err != nil {
			fatal("open engine (k=%d): %v", k, err)
		}
		pts := data[s]
		for base := 0; base < len(pts); base += cfg.batch {
			end := base + cfg.batch
			if end > len(pts) {
				end = len(pts)
			}
			t0 := time.Now()
			if err := e.PutBatch(pts[base:end]); err != nil {
				fatal("PutBatch (k=%d): %v", k, err)
			}
			lats = append(lats, time.Since(t0).Seconds())
		}
		if err := e.FlushAll(); err != nil {
			fatal("FlushAll (k=%d): %v", k, err)
		}
		st := e.Stats()
		waSum += st.WriteAmplification()
		run.Compactions += st.Compactions
		tables, _ := e.RunTables()
		run.Tables += tables
		if err := e.Close(); err != nil {
			fatal("close engine (k=%d): %v", k, err)
		}
	}
	run.Seconds = time.Since(start).Seconds()
	run.MeanWA = waSum / float64(len(data))
	sort.Float64s(lats)
	if n := len(lats); n > 0 {
		run.P99PutSecs = lats[(n*99)/100%n]
		var sum float64
		for _, l := range lats {
			sum += l
		}
		run.MeanPutSecs = sum / float64(n)
	}
	return run
}
