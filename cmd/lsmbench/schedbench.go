package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/lsm/scheduler"
	"repro/internal/series"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

// Compaction-scheduler benchmark: ingests the same out-of-order workload
// into many series twice — once with the legacy one-compactor-goroutine-
// per-series model, once with the shared bounded worker pool — and reports
// ingest+drain throughput and peak goroutine count for both. The pool must
// hold throughput (the acceptance bar is parity) while collapsing the
// background goroutine count from O(series) to O(workers).

type schedConfig struct {
	series  int
	points  int // per series
	batch   int
	workers int // pool size (0 = scheduler default)
	dt      int64
	mu      float64
	sigma   float64
	seed    int64
	out     string // JSON report path ("" = none)
}

// schedRun is one mode's measurement.
type schedRun struct {
	Mode           string  `json:"mode"`
	Seconds        float64 `json:"seconds"`
	PPS            float64 `json:"points_per_second"`
	PeakGoroutines int     `json:"peak_goroutines"`
	Merges         int64   `json:"merges"`
}

// schedReport is the machine-readable result (BENCH_5.json).
type schedReport struct {
	Name            string   `json:"name"`
	Series          int      `json:"series"`
	PointsPerSeries int      `json:"points_per_series"`
	Batch           int      `json:"batch"`
	Workers         int      `json:"workers"`
	PerSeries       schedRun `json:"per_series"`
	Pool            schedRun `json:"pool"`
	ThroughputRatio float64  `json:"throughput_ratio"` // pool / per-series
}

func runSchedBench(cfg schedConfig) {
	if cfg.workers == 0 {
		cfg.workers = scheduler.DefaultWorkers()
	}
	data := make([][]series.Point, cfg.series)
	for s := range data {
		data[s] = workload.Synthetic(cfg.points, cfg.dt,
			dist.NewLognormal(cfg.mu, cfg.sigma), cfg.seed+int64(s))
	}

	rep := schedReport{
		Name:            "sched_pool_vs_per_series",
		Series:          cfg.series,
		PointsPerSeries: cfg.points,
		Batch:           cfg.batch,
		Workers:         cfg.workers,
	}
	rep.PerSeries = schedIngest(cfg, data, -1)
	rep.Pool = schedIngest(cfg, data, cfg.workers)
	rep.ThroughputRatio = rep.Pool.PPS / rep.PerSeries.PPS

	total := cfg.series * cfg.points
	fmt.Printf("compaction scheduler benchmark (%d series x %d points, batch %d, %d workers)\n",
		cfg.series, cfg.points, cfg.batch, cfg.workers)
	for _, r := range []schedRun{rep.PerSeries, rep.Pool} {
		fmt.Printf("  %-18s: %10.0f pts/s  (%.2fs, peak %d goroutines, %d merges)\n",
			r.Mode, r.PPS, r.Seconds, r.PeakGoroutines, r.Merges)
	}
	fmt.Printf("  throughput ratio  : %.2f (pool / per-series, %d points each)\n",
		rep.ThroughputRatio, total)

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal report: %v", err)
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", cfg.out, err)
		}
		fmt.Printf("  report            : %s\n", cfg.out)
	}
}

// schedIngest runs one full ingest+drain: compactWorkers < 0 selects the
// legacy per-series compactor goroutines, otherwise a shared pool of that
// size. Timing covers ingest AND the drain to quiescence (FlushAll), so a
// scheduler that merely defers merge work cannot look faster than it is.
func schedIngest(cfg schedConfig, data [][]series.Point, compactWorkers int) schedRun {
	db, err := tsdb.Open(tsdb.Config{
		Engine: lsm.Config{
			Policy:          lsm.Conventional,
			MemBudget:       1024,
			SSTablePoints:   1024,
			AsyncCompaction: true,
		},
		AutoCreate:     true,
		CompactWorkers: compactWorkers,
		CompactBacklog: -1, // measure raw scheduling, not admission control
	})
	if err != nil {
		fatal("open db: %v", err)
	}

	names := make([]string, cfg.series)
	for s := range names {
		names[s] = fmt.Sprintf("root.bench%04d.v", s)
	}

	// Peak-goroutine sampler: the pool's headline claim is O(workers)
	// background goroutines instead of O(series).
	var stopSampler atomic.Bool
	peak := runtime.NumGoroutine()
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for !stopSampler.Load() {
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	writers := 8
	if writers > cfg.series {
		writers = cfg.series
	}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for base := 0; base < cfg.points; base += cfg.batch {
				end := base + cfg.batch
				if end > cfg.points {
					end = cfg.points
				}
				for s := w; s < cfg.series; s += writers {
					if err := db.PutBatch(names[s], data[s][base:end]); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		fatal("PutBatch: %v", err)
	default:
	}
	if err := db.FlushAll(); err != nil {
		fatal("FlushAll: %v", err)
	}
	elapsed := time.Since(start).Seconds()

	stopSampler.Store(true)
	samplerWG.Wait()

	run := schedRun{Seconds: elapsed, PeakGoroutines: peak}
	run.PPS = float64(cfg.series*cfg.points) / elapsed
	if pool := db.Compactions(); pool != nil {
		run.Mode = fmt.Sprintf("pool(%d)", compactWorkers)
		run.Merges = pool.Stats().Completed
	} else {
		run.Mode = "per-series"
		for _, s := range db.Stats() {
			run.Merges += s.Stats.Compactions + s.Stats.Flushes
		}
	}
	if err := db.Close(); err != nil {
		fatal("close db: %v", err)
	}
	return run
}
