package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

// WAL wiring benchmark: ingests the same concurrent multi-series workload
// twice — once with one WAL object (and thus one fsync stream) per series,
// once through the sharded group-commit log — and reports throughput and,
// the headline number, backend append calls. On a disk backend every append
// is one fsync, so the per-series wiring pays O(appends) = O(series ×
// batches) while the group log pays O(shards × commit windows): the gap is
// the whole point of the subsystem, and it must WIDEN as the series count
// grows (64 → 1k → 10k).

type walBenchConfig struct {
	seriesCounts []int
	points       int // per series
	batch        int
	writers      int // 0: one writer per series (the IoT fleet model)
	shards       int
	fsync        time.Duration // simulated per-append fsync latency
	out          string        // JSON report path ("" = none)
}

// walRun is one mode's measurement at one series count.
type walRun struct {
	Mode         string  `json:"mode"`
	Seconds      float64 `json:"seconds"`
	PPS          float64 `json:"points_per_second"`
	Appends      int64   `json:"backend_appends"` // fsyncs on a disk backend
	PointsPerOp  float64 `json:"points_per_append"`
	GroupCommits int64   `json:"group_commits,omitempty"`
}

// walCase compares the two wirings at one series count.
type walCase struct {
	Series      int     `json:"series"`
	PerSeries   walRun  `json:"per_series"`
	Group       walRun  `json:"group"`
	FsyncRatio  float64 `json:"fsync_ratio"`  // per-series appends / group appends
	ThroughputX float64 `json:"throughput_x"` // group PPS / per-series PPS
}

// walReport is the machine-readable result (BENCH_6.json).
type walReport struct {
	Name            string    `json:"name"`
	PointsPerSeries int       `json:"points_per_series"`
	Batch           int       `json:"batch"`
	Writers         int       `json:"writers"` // 0: one per series
	Shards          int       `json:"shards"`
	FsyncLatencyUS  int64     `json:"fsync_latency_us"`
	Cases           []walCase `json:"cases"`
}

// countingBackend counts Append calls — the disk backend issues exactly one
// fsync per Append, so this is the portable fsync proxy — and charges each
// one a simulated fsync latency, serialized across callers the way flushes
// to a single device queue are. The latency is what makes the comparison
// honest: group commit wins precisely because appends enqueued while a
// commit's fsync is in flight coalesce into the next one, and an instant
// (or infinitely parallel) in-memory append would erase that effect.
type countingBackend struct {
	storage.Backend
	fsync   time.Duration
	mu      sync.Mutex // one fsync in flight at a time, like one disk
	appends atomic.Int64
}

func (c *countingBackend) Append(name string, data []byte) error {
	c.appends.Add(1)
	if c.fsync > 0 {
		c.mu.Lock()
		time.Sleep(c.fsync)
		c.mu.Unlock()
	}
	return c.Backend.Append(name, data)
}

func runWALBench(cfg walBenchConfig) {
	rep := walReport{
		Name:            "wal_group_commit_vs_per_series",
		PointsPerSeries: cfg.points,
		Batch:           cfg.batch,
		Writers:         cfg.writers,
		Shards:          cfg.shards,
		FsyncLatencyUS:  cfg.fsync.Microseconds(),
	}
	writers := "one per series"
	if cfg.writers > 0 {
		writers = fmt.Sprintf("%d writers", cfg.writers)
	}
	fmt.Printf("WAL wiring benchmark (%d points/series, batch %d, %s, %d shards, %s simulated fsync)\n",
		cfg.points, cfg.batch, writers, cfg.shards, cfg.fsync)
	for _, n := range cfg.seriesCounts {
		c := walCase{Series: n}
		c.PerSeries = walIngest(cfg, n, -1)
		c.Group = walIngest(cfg, n, cfg.shards)
		if c.Group.Appends > 0 {
			c.FsyncRatio = float64(c.PerSeries.Appends) / float64(c.Group.Appends)
		}
		if c.PerSeries.PPS > 0 {
			c.ThroughputX = c.Group.PPS / c.PerSeries.PPS
		}
		rep.Cases = append(rep.Cases, c)
		fmt.Printf("  %6d series:\n", n)
		for _, r := range []walRun{c.PerSeries, c.Group} {
			fmt.Printf("    %-10s: %10.0f pts/s  %8d appends (%6.1f pts/append)\n",
				r.Mode, r.PPS, r.Appends, r.PointsPerOp)
		}
		fmt.Printf("    fsync ratio: %.1fx fewer appends via group commit\n", c.FsyncRatio)
	}

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal report: %v", err)
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", cfg.out, err)
		}
		fmt.Printf("  report: %s\n", cfg.out)
	}
}

// walIngest runs one full ingest: walShards < 0 selects the legacy
// one-object-per-series WAL, otherwise the shared group-commit log with
// that many shards (0 = groupwal default). Writers interleave small
// batches across their series, the pattern that makes per-series fsync
// streams pathological.
func walIngest(cfg walBenchConfig, nSeries, walShards int) walRun {
	cb := &countingBackend{Backend: storage.NewMemBackend(), fsync: cfg.fsync}
	db, err := tsdb.Open(tsdb.Config{
		Engine: lsm.Config{
			Policy:    lsm.Conventional,
			MemBudget: 1 << 20, // never flush: isolate the WAL write path
			WAL:       true,
		},
		Backend:         cb,
		AutoCreate:      true,
		BlockCacheBytes: -1,
		WALShards:       walShards,
	})
	if err != nil {
		fatal("open db: %v", err)
	}

	names := make([]string, nSeries)
	for s := range names {
		names[s] = fmt.Sprintf("root.wal%05d.v", s)
	}
	// Pre-create so the catalog writes do not skew the first batches.
	for _, name := range names {
		if err := db.CreateSeries(name); err != nil {
			fatal("create %s: %v", name, err)
		}
	}
	preAppends := cb.appends.Load()

	writers := cfg.writers
	if writers <= 0 || writers > nSeries {
		writers = nSeries
	}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]series.Point, cfg.batch)
			for base := 0; base < cfg.points; base += cfg.batch {
				for s := w; s < nSeries; s += writers {
					m := 0
					for i := base; i < base+cfg.batch && i < cfg.points; i++ {
						buf[m] = series.Point{TG: int64(i), TA: int64(i), V: float64(i)}
						m++
					}
					if err := db.PutBatch(names[s], buf[:m]); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		fatal("PutBatch: %v", err)
	default:
	}
	elapsed := time.Since(start).Seconds()

	run := walRun{Seconds: elapsed, Appends: cb.appends.Load() - preAppends}
	total := nSeries * cfg.points
	run.PPS = float64(total) / elapsed
	if run.Appends > 0 {
		run.PointsPerOp = float64(total) / float64(run.Appends)
	}
	if ws, ok := db.WALStats(); ok {
		run.Mode = fmt.Sprintf("group(%d)", ws.Shards)
		run.GroupCommits = ws.Commits
	} else {
		run.Mode = "per-series"
	}
	if err := db.Close(); err != nil {
		fatal("close db: %v", err)
	}
	return run
}

// parseSeriesCounts parses a comma-separated -wseries list.
func parseSeriesCounts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fatal("bad -wseries entry %q", f)
		}
		out = append(out, n)
	}
	return out
}
