package main

// Load-generator mode: drive a running lsmd server with concurrent batched
// writers over the Go client, honoring 429 backpressure with the server's
// Retry-After hint, then verify and report. This is the network-path
// analogue of the Table III throughput experiment: the workload is the
// same synthetic generator (constant generation interval, lognormal
// delays), but points travel through HTTP, the sharded ingest queues, and
// the per-series engines.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/server/api"
	"repro/internal/server/client"
	"repro/internal/workload"
)

type loadConfig struct {
	base    string
	writers int
	series  int
	points  int
	batch   int
	dt      int64
	mu      float64
	sigma   float64
	seed    int64
	verify  bool
}

func runLoad(cfg loadConfig) {
	if cfg.writers < 1 || cfg.series < 1 || cfg.points < 1 || cfg.batch < 1 {
		fatal("load mode: -writers, -lseries, -lpoints, -lbatch must be >= 1")
	}
	cl := client.New(cfg.base)
	ctx := context.Background()
	if err := cl.Health(ctx); err != nil {
		fatal("load mode: server not healthy: %v", err)
	}

	var (
		wg       sync.WaitGroup
		sent     atomic.Int64
		retries  atomic.Int64
		failures atomic.Int64
	)
	start := time.Now()
	for g := 0; g < cfg.writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("root.load.s%d", g%cfg.series)
			// Disjoint generation-time segment per writer so writers
			// sharing a series never upsert each other's points.
			base := int64(g) * int64(cfg.points+1) * cfg.dt * 4
			pts := workload.Synthetic(cfg.points, cfg.dt, dist.NewLognormal(cfg.mu, cfg.sigma), cfg.seed+int64(g))
			for off := 0; off < len(pts); off += cfg.batch {
				end := off + cfg.batch
				if end > len(pts) {
					end = len(pts)
				}
				batch := make([]api.Point, 0, end-off)
				for _, p := range pts[off:end] {
					batch = append(batch, api.Point{Series: name, TG: base + p.TG, TA: base + p.TA, V: p.V})
				}
				for {
					_, err := cl.Write(ctx, batch)
					if err == nil {
						sent.Add(int64(len(batch)))
						break
					}
					var bp *client.BackpressureError
					if errors.As(err, &bp) {
						retries.Add(1)
						time.Sleep(bp.RetryAfter)
						continue
					}
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "lsmbench: writer %d: %v\n", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := sent.Load()
	fmt.Printf("load: %d writers x %d points -> %d series via %s\n",
		cfg.writers, cfg.points, cfg.series, cfg.base)
	fmt.Printf("load: %d points in %s (%.0f points/sec), %d backpressure retries, %d failed writers\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), retries.Load(), failures.Load())

	stats, err := cl.Stats(ctx)
	if err != nil {
		fatal("load mode: stats: %v", err)
	}
	var ingested int64
	for _, st := range stats.Series {
		ingested += st.PointsIngested
		fmt.Printf("load: %-24s policy=%-4s ingested=%-10d WA=%.3f\n",
			st.Name, st.Policy, st.PointsIngested, st.WriteAmplification)
	}
	fmt.Printf("load: server-wide WA %.3f (%d points ingested this process lifetime)\n", stats.TotalWA, ingested)

	if cfg.verify {
		for s := 0; s < cfg.series; s++ {
			name := fmt.Sprintf("root.load.s%d", s)
			pts, _, err := cl.Scan(ctx, name, -1<<60, 1<<60)
			if err != nil {
				fatal("load mode: verify scan %s: %v", name, err)
			}
			want := 0
			for g := 0; g < cfg.writers; g++ {
				if g%cfg.series == s {
					want += cfg.points
				}
			}
			mark := "ok"
			if len(pts) < want {
				mark = "MISSING POINTS (series may hold pre-run data if the server was not fresh)"
			}
			fmt.Printf("load: verify %-24s scanned=%-10d expected>=%-10d %s\n", name, len(pts), want, mark)
		}
	}
	if failures.Load() > 0 {
		fatal("load mode: %d writers failed", failures.Load())
	}
}
