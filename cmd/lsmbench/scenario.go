package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/benchmark"
)

// scenarioConfig parameterizes scenario mode (-scenario): the unified
// end-to-end benchmark matrix of internal/benchmark.
type scenarioConfig struct {
	names string // "all", "smoke", or comma-separated scenario names
	scale float64
	seed  int64
	base  string // path of a prior report to compare against
	label string // label recorded for the baseline block
	out   string // JSON report path
}

// smokeScale is the trimmed scale the CI smoke run uses; small enough to
// finish in seconds, large enough that every scenario still flushes and
// compacts.
const smokeScale = 0.02

// runScenarios executes the requested scenario matrix, prints the
// paper-style tables, and optionally writes the machine-readable report
// (BENCH_8.json) with a baseline comparison.
func runScenarios(cfg scenarioConfig) {
	names := benchmark.Names()
	scale := cfg.scale
	switch cfg.names {
	case "all", "":
	case "smoke":
		scale = smokeScale
	default:
		names = strings.Split(cfg.names, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	bc := benchmark.Config{Scale: scale, Seed: cfg.seed}
	fmt.Printf("scenario suite: %s (scale %g, seed %d)\n\n", strings.Join(names, ", "), scale, cfg.seed)
	results, err := benchmark.RunAll(names, bc)
	if err != nil {
		fatal("scenario: %v", err)
	}
	fmt.Print(benchmark.Table(results))

	var base *benchmark.Baseline
	if cfg.base != "" {
		prior, err := benchmark.ReadReport(cfg.base)
		if err != nil {
			fatal("scenario: read baseline: %v", err)
		}
		label := cfg.label
		if label == "" {
			label = cfg.base
		}
		base = &benchmark.Baseline{Label: label, Scenarios: prior.Scenarios}
	}
	rep := benchmark.NewReport(bc, results, base, time.Now().UTC().Format(time.RFC3339))
	if len(rep.Compare) > 0 {
		fmt.Printf("\nvs baseline %s:\n%s", base.Label, benchmark.CompareTable(rep.Compare))
	}
	if cfg.out != "" {
		if err := rep.WriteJSON(cfg.out); err != nil {
			fatal("scenario: write report: %v", err)
		}
		fmt.Printf("\nwrote %s\n", cfg.out)
	}
}
