package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

// Query fan-out benchmark: registers a labeled fleet, flushes it to
// SSTables behind a backend that charges a simulated device latency to
// every ranged block read, then answers the same matcher query twice —
// once sequentially (Workers: 1), once through the fan-out pool — and
// reports the speedup. The two answers are compared point-for-point:
// a speedup with different results would be worthless.
//
// The latency injection is what makes the number honest on any machine:
// fan-out reads are I/O-bound, so the win comes from overlapping storage
// waits, not from burning more cores. Unlike walbench's fsync model
// (serialized, one device queue), block reads sleep concurrently — random
// reads parallelize on SSDs and networked object stores, which is the
// premise the fan-out pool is built on.

type queryBenchConfig struct {
	series  int           // matched fleet size
	points  int           // per series
	batch   int           // points per PutBatch
	workers int           // fan-out pool size (0: query.DefaultWorkers)
	readLat time.Duration // simulated latency per ranged block read
	iters   int           // timed repetitions; best run is reported
	out     string        // JSON report path ("" = BENCH_9.json)
}

// queryRun is one execution mode's measurement.
type queryRun struct {
	Mode          string  `json:"mode"`
	Workers       int     `json:"workers"`
	Seconds       float64 `json:"seconds"` // best of iters
	SeriesPerSec  float64 `json:"series_per_sec"`
	Points        int     `json:"points_returned"`
	TablesTouched int     `json:"tables_touched"`
	BlocksRead    int64   `json:"blocks_read"`
}

// queryReport is the machine-readable result (BENCH_9.json).
type queryReport struct {
	Name            string   `json:"name"`
	Series          int      `json:"series"`
	PointsPerSeries int      `json:"points_per_series"`
	ReadLatencyUS   int64    `json:"read_latency_us"`
	Iterations      int      `json:"iterations"`
	Matchers        string   `json:"matchers"`
	Sequential      queryRun `json:"sequential"`
	Parallel        queryRun `json:"parallel"`
	SpeedupX        float64  `json:"speedup_x"` // sequential / parallel seconds
	ResultsEqual    bool     `json:"results_equal"`
}

// slowBackend charges a fixed latency to every ranged block read, the
// portable stand-in for a storage device. Writes pass through untouched:
// ingest is setup, not the measured phase.
type slowBackend struct {
	storage.Backend
	lat   time.Duration
	reads atomic.Int64
}

func (s *slowBackend) OpenRange(name string) (storage.RangeReader, error) {
	rr, err := s.Backend.OpenRange(name)
	if err != nil {
		return nil, err
	}
	return &slowRangeReader{RangeReader: rr, b: s}, nil
}

type slowRangeReader struct {
	storage.RangeReader
	b *slowBackend
}

func (r *slowRangeReader) ReadAt(p []byte, off int64) (int, error) {
	r.b.reads.Add(1)
	if r.b.lat > 0 {
		time.Sleep(r.b.lat)
	}
	return r.RangeReader.ReadAt(p, off)
}

func runQueryBench(cfg queryBenchConfig) {
	if cfg.out == "" {
		cfg.out = "BENCH_9.json"
	}
	sb := &slowBackend{Backend: storage.NewMemBackend(), lat: cfg.readLat}
	db, err := tsdb.Open(tsdb.Config{
		Engine: lsm.Config{
			Policy:        lsm.Conventional,
			MemBudget:     512,
			SSTablePoints: 512,
		},
		Backend: sb,
		// No cache: every block read pays the device latency, so the
		// sequential and parallel legs read the same number of slow blocks
		// and the comparison isolates overlap, not cache warmth.
		BlockCacheBytes: -1,
		QueryWorkers:    cfg.workers,
	})
	if err != nil {
		fatal("open db: %v", err)
	}
	defer db.Close()

	fmt.Printf("query fan-out benchmark (%d series x %d points, %s per block read)\n",
		cfg.series, cfg.points, cfg.readLat)

	for s := 0; s < cfg.series; s++ {
		ls := series.MustLabels(map[string]string{
			"fleet":  "qb",
			"device": fmt.Sprintf("d%04d", s),
			"rack":   fmt.Sprintf("r%d", s%8),
		})
		id, err := db.CreateSeriesLabeled(ls)
		if err != nil {
			fatal("create series %d: %v", s, err)
		}
		buf := make([]series.Point, 0, cfg.batch)
		for i := 0; i < cfg.points; i++ {
			buf = append(buf, series.Point{TG: int64(i), TA: int64(i), V: float64(s*cfg.points + i)})
			if len(buf) == cfg.batch || i == cfg.points-1 {
				if err := db.PutBatch(id, buf); err != nil {
					fatal("ingest series %d: %v", s, err)
				}
				buf = buf[:0]
			}
		}
	}
	// Everything to SSTables: the measured reads must hit the (slow)
	// backend, not the memtables.
	if err := db.FlushAll(); err != nil {
		fatal("flush: %v", err)
	}

	matchExpr := "fleet=qb,device=~d[0-9]+"
	ms, err := index.ParseMatchers(matchExpr)
	if err != nil {
		fatal("parse matchers: %v", err)
	}
	opts := tsdb.QueryOptions{Lo: 0, Hi: int64(cfg.points)}

	seqRes, seq := timeQuery(db, ms, opts, 1, cfg.iters)
	parRes, par := timeQuery(db, ms, opts, 0, cfg.iters)

	rep := queryReport{
		Name:            "query_fanout_vs_sequential",
		Series:          cfg.series,
		PointsPerSeries: cfg.points,
		ReadLatencyUS:   cfg.readLat.Microseconds(),
		Iterations:      cfg.iters,
		Matchers:        matchExpr,
		Sequential:      seq,
		Parallel:        par,
		ResultsEqual:    resultsEqual(seqRes, parRes),
	}
	if par.Seconds > 0 {
		rep.SpeedupX = seq.Seconds / par.Seconds
	}

	for _, r := range []queryRun{seq, par} {
		fmt.Printf("  %-10s: %8.3fs  %8.0f series/s  %9d points  %6d tables  %8d blocks (%d workers)\n",
			r.Mode, r.Seconds, r.SeriesPerSec, r.Points, r.TablesTouched, r.BlocksRead, r.Workers)
	}
	fmt.Printf("  speedup: %.2fx, results equal: %v\n", rep.SpeedupX, rep.ResultsEqual)
	if !rep.ResultsEqual {
		fatal("sequential and parallel queries disagree")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal report: %v", err)
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		fatal("write %s: %v", cfg.out, err)
	}
	fmt.Printf("  report: %s\n", cfg.out)
}

// timeQuery runs the query iters times at the given worker pin (1 =
// sequential baseline, 0 = the DB's shared fan-out pool) and keeps the
// best wall time; the last run's results are returned for the equality
// check.
func timeQuery(db *tsdb.DB, ms []index.Matcher, opts tsdb.QueryOptions, workers, iters int) ([]tsdb.SeriesResult, queryRun) {
	opts.Workers = workers
	var (
		res  []tsdb.SeriesResult
		qs   tsdb.QueryStats
		best time.Duration
	)
	for i := 0; i < iters; i++ {
		start := time.Now()
		r, s, err := db.QueryMatch(ms, opts)
		if err != nil {
			fatal("QueryMatch: %v", err)
		}
		if s.SeriesFailed > 0 {
			fatal("%d series failed", s.SeriesFailed)
		}
		elapsed := time.Since(start)
		if best == 0 || elapsed < best {
			best = elapsed
		}
		res, qs = r, s
	}
	run := queryRun{
		Seconds:       best.Seconds(),
		Workers:       qs.Workers,
		Points:        qs.PointsReturned,
		TablesTouched: qs.TablesTouched,
		BlocksRead:    qs.BlocksRead,
	}
	if run.Seconds > 0 {
		run.SeriesPerSec = float64(qs.SeriesQueried) / run.Seconds
	}
	if workers == 1 {
		run.Mode = "sequential"
	} else {
		run.Mode = "parallel"
	}
	return res, run
}

// resultsEqual compares two query answers row-for-row, point-for-point.
func resultsEqual(a, b []tsdb.SeriesResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Err != nil || b[i].Err != nil ||
			len(a[i].Points) != len(b[i].Points) {
			return false
		}
		for j := range a[i].Points {
			if a[i].Points[j] != b[i].Points[j] {
				return false
			}
		}
	}
	return true
}
