package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The bench JSON artifacts are committed at the repo root precisely so a
// later commit can use them as baselines — a report that no longer parses
// against its schema-stable struct is a silently broken baseline. These
// tests pin the committed files to the structs.

// TestCommittedQueryReportParses guards BENCH_9.json: strict schema, both
// legs answered identically, and the fan-out win the report was committed
// to demonstrate (>= 64 matched series, >= 2x over sequential) is still
// recorded.
func TestCommittedQueryReportParses(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_9.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("BENCH_9.json must be committed at the repo root: %v", err)
	}
	if err := verifyQueryReport(path); err != nil {
		t.Fatal(err)
	}
	rep := mustReadQueryReport(t, path)
	if rep.Series < 64 {
		t.Errorf("committed run matched %d series, want >= 64", rep.Series)
	}
	if rep.SpeedupX < 2 {
		t.Errorf("committed run speedup %.2fx, want >= 2x", rep.SpeedupX)
	}
	if rep.Parallel.Workers < 2 {
		t.Errorf("parallel leg used %d workers", rep.Parallel.Workers)
	}
}

// TestCommittedScenarioReportParses guards BENCH_8.json, the scenario
// suite's committed artifact, with the same strict decode CI applies to
// the smoke output.
func TestCommittedScenarioReportParses(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_8.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("BENCH_8.json must be committed at the repo root: %v", err)
	}
	if err := verifyScenarioReport(path); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyReportRejectsDrift: a report with an unknown field (schema
// drift between writer and struct) must fail verification, not pass by
// being ignored.
func TestVerifyReportRejectsDrift(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"unknown_field.json": `{"name":"query_fanout_vs_sequential","series":64,"points_per_series":10,
			"read_latency_us":1,"iterations":1,"matchers":"a=b",
			"sequential":{"mode":"sequential","workers":1,"seconds":1,"series_per_sec":1,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"parallel":{"mode":"parallel","workers":4,"seconds":0.5,"series_per_sec":2,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"speedup_x":2,"results_equal":true,"surprise":1}`,
		"legs_disagree.json": `{"name":"query_fanout_vs_sequential","series":64,"points_per_series":10,
			"read_latency_us":1,"iterations":1,"matchers":"a=b",
			"sequential":{"mode":"sequential","workers":1,"seconds":1,"series_per_sec":1,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"parallel":{"mode":"parallel","workers":4,"seconds":0.5,"series_per_sec":2,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"speedup_x":2,"results_equal":false}`,
		"empty_workload.json": `{"name":"query_fanout_vs_sequential","series":0,"points_per_series":0,
			"read_latency_us":1,"iterations":1,"matchers":"a=b",
			"sequential":{"mode":"sequential","workers":1,"seconds":1,"series_per_sec":1,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"parallel":{"mode":"parallel","workers":4,"seconds":0.5,"series_per_sec":2,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"speedup_x":2,"results_equal":true}`,
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := verifyQueryReport(p); err == nil {
			t.Errorf("%s: verification passed, want failure", name)
		}
	}
	if err := verifyScenarioReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing scenario report passed verification")
	}
}

func mustReadQueryReport(t *testing.T, path string) queryReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep queryReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}
