package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The bench JSON artifacts are committed at the repo root precisely so a
// later commit can use them as baselines — a report that no longer parses
// against its schema-stable struct is a silently broken baseline. These
// tests pin the committed files to the structs.

// TestCommittedQueryReportParses guards BENCH_9.json: strict schema, both
// legs answered identically, and the fan-out win the report was committed
// to demonstrate (>= 64 matched series, >= 2x over sequential) is still
// recorded.
func TestCommittedQueryReportParses(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_9.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("BENCH_9.json must be committed at the repo root: %v", err)
	}
	if err := verifyQueryReport(path); err != nil {
		t.Fatal(err)
	}
	rep := mustReadQueryReport(t, path)
	if rep.Series < 64 {
		t.Errorf("committed run matched %d series, want >= 64", rep.Series)
	}
	if rep.SpeedupX < 2 {
		t.Errorf("committed run speedup %.2fx, want >= 2x", rep.SpeedupX)
	}
	if rep.Parallel.Workers < 2 {
		t.Errorf("parallel leg used %d workers", rep.Parallel.Workers)
	}
}

// TestCommittedScenarioReportParses guards BENCH_8.json, the scenario
// suite's committed artifact, with the same strict decode CI applies to
// the smoke output.
func TestCommittedScenarioReportParses(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_8.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("BENCH_8.json must be committed at the repo root: %v", err)
	}
	if err := verifyScenarioReport(path); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedRollupReportParses guards BENCH_10.json: strict schema,
// bit-identical legs, and the read reduction the rollup path was committed
// to demonstrate (>= 5x fewer raw points folded) is still recorded.
func TestCommittedRollupReportParses(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_10.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("BENCH_10.json must be committed at the repo root: %v", err)
	}
	if err := verifyRollupReport(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep rollupReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.PointsDecodedReductionX < 5 {
		t.Errorf("committed reduction %.1fx, want >= 5x", rep.PointsDecodedReductionX)
	}
	if rep.IngestRatio < 0.8 {
		t.Errorf("committed ingest ratio %.3f: rollup maintenance cost regressed", rep.IngestRatio)
	}
}

// TestVerifyRollupReportRejectsBadRuns: the rollup verifier must reject a
// report whose legs disagree or whose reduction fell below the bar.
func TestVerifyRollupReportRejectsBadRuns(t *testing.T) {
	dir := t.TempDir()
	leg := `{"mode":"%s","ingest_seconds":1,"ingest_points_per_sec":100,"query_seconds":1,
		"queries_per_sec":10,"buckets_returned":50,"rollup_buckets_used":%d,"blocks_read":10,"points_decoded":%d}`
	mk := func(equal bool, rollupBuckets, rollupPts int, reduction float64) string {
		return `{"name":"rollup_dashboard_over_history","series":4,"points_per_series":100,"rollup_window":10,"queries":5,` +
			`"rollup":` + fmt.Sprintf(leg, "rollup", rollupBuckets, rollupPts) + `,` +
			`"raw":` + fmt.Sprintf(leg, "raw", 0, 1000) + `,` +
			fmt.Sprintf(`"blocks_read_reduction_x":1,"points_decoded_reduction_x":%g,"ingest_ratio":1,"results_equal":%v}`,
				reduction, equal)
	}
	cases := map[string]string{
		"legs_disagree.json": mk(false, 40, 100, 10),
		"low_reduction.json": mk(true, 40, 500, 2),
		"never_served.json":  mk(true, 0, 100, 10),
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := verifyRollupReport(p); err == nil {
			t.Errorf("%s: verification passed, want failure", name)
		}
	}
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(mk(true, 40, 100, 10)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verifyRollupReport(good); err != nil {
		t.Errorf("well-formed report rejected: %v", err)
	}
}

// TestVerifyReportRejectsDrift: a report with an unknown field (schema
// drift between writer and struct) must fail verification, not pass by
// being ignored.
func TestVerifyReportRejectsDrift(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"unknown_field.json": `{"name":"query_fanout_vs_sequential","series":64,"points_per_series":10,
			"read_latency_us":1,"iterations":1,"matchers":"a=b",
			"sequential":{"mode":"sequential","workers":1,"seconds":1,"series_per_sec":1,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"parallel":{"mode":"parallel","workers":4,"seconds":0.5,"series_per_sec":2,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"speedup_x":2,"results_equal":true,"surprise":1}`,
		"legs_disagree.json": `{"name":"query_fanout_vs_sequential","series":64,"points_per_series":10,
			"read_latency_us":1,"iterations":1,"matchers":"a=b",
			"sequential":{"mode":"sequential","workers":1,"seconds":1,"series_per_sec":1,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"parallel":{"mode":"parallel","workers":4,"seconds":0.5,"series_per_sec":2,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"speedup_x":2,"results_equal":false}`,
		"empty_workload.json": `{"name":"query_fanout_vs_sequential","series":0,"points_per_series":0,
			"read_latency_us":1,"iterations":1,"matchers":"a=b",
			"sequential":{"mode":"sequential","workers":1,"seconds":1,"series_per_sec":1,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"parallel":{"mode":"parallel","workers":4,"seconds":0.5,"series_per_sec":2,"points_returned":5,"tables_touched":1,"blocks_read":1},
			"speedup_x":2,"results_equal":true}`,
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := verifyQueryReport(p); err == nil {
			t.Errorf("%s: verification passed, want failure", name)
		}
	}
	if err := verifyScenarioReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing scenario report passed verification")
	}
}

func mustReadQueryReport(t *testing.T, path string) queryReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep queryReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}
