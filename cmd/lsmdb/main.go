// Command lsmdb is a small durable multi-series store CLI over the tsdb
// layer: ingest CSV points, scan ranges, downsample, inspect per-series
// policy and write amplification, and apply retention — all against a
// database directory that persists between invocations.
//
// Usage:
//
//	lsmdb -dir ./db ingest root.v1.temp < points.csv   # t_g,t_a[,value]
//	lsmdb -dir ./db scan root.v1.temp 0 1000000
//	lsmdb -dir ./db agg root.v1.temp 0 1000000 60000
//	lsmdb -dir ./db stats
//	lsmdb -dir ./db retain 500000
//	lsmdb -dir ./db series
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flag"

	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

func main() {
	var (
		dir      = flag.String("dir", "lsmdb-data", "database directory")
		budget   = flag.Int("n", 512, "memory budget per series (points)")
		adaptive = flag.Bool("adaptive", true, "enable per-series adaptive policy tuning")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	backend, err := storage.NewDiskBackend(*dir)
	if err != nil {
		fatal("open dir: %v", err)
	}
	db, err := tsdb.Open(tsdb.Config{
		Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: *budget, WAL: true},
		Backend:    backend,
		AutoCreate: true,
		Adaptive:   *adaptive,
	})
	if err != nil {
		fatal("open db: %v", err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			fatal("close: %v", err)
		}
	}()

	switch args[0] {
	case "ingest":
		requireArgs(args, 2, "ingest <series>")
		cmdIngest(db, args[1])
	case "scan":
		requireArgs(args, 4, "scan <series> <lo> <hi>")
		cmdScan(db, args[1], parseI64(args[2]), parseI64(args[3]))
	case "agg":
		requireArgs(args, 5, "agg <series> <lo> <hi> <bucket>")
		cmdAgg(db, args[1], parseI64(args[2]), parseI64(args[3]), parseI64(args[4]))
	case "stats":
		cmdStats(db)
	case "series":
		for _, name := range db.Series() {
			fmt.Println(name)
		}
	case "retain":
		requireArgs(args, 2, "retain <cutoff>")
		removed, err := db.DropBefore(parseI64(args[1]))
		if err != nil {
			fatal("retain: %v", err)
		}
		fmt.Printf("removed %d points below %s\n", removed, args[1])
	default:
		usage()
	}
}

func cmdIngest(db *tsdb.DB, name string) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var count int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := workload.ParseCSVLine(line)
		if err != nil {
			fatal("bad line %q: %v", line, err)
		}
		if err := db.Put(name, p); err != nil {
			fatal("put: %v", err)
		}
		count++
	}
	if err := sc.Err(); err != nil {
		fatal("read: %v", err)
	}
	fmt.Printf("ingested %d points into %s\n", count, name)
}

func cmdScan(db *tsdb.DB, name string, lo, hi int64) {
	pts, st, err := db.Scan(name, lo, hi)
	if err != nil {
		fatal("scan: %v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%d,%.6f\n", p.TG, p.TA, p.V)
	}
	fmt.Fprintf(os.Stderr, "%d points, %d sstables touched, read amplification %.2f\n",
		len(pts), st.TablesTouched, st.ReadAmplification())
}

func cmdAgg(db *tsdb.DB, name string, lo, hi, bucket int64) {
	pts, _, err := db.Scan(name, lo, hi)
	if err != nil {
		fatal("scan: %v", err)
	}
	buckets := query.AggregatePoints(pts, bucket)
	fmt.Println("start,count,min,max,mean,first,last")
	for _, b := range buckets {
		fmt.Printf("%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			b.Start, b.Count, b.Min, b.Max, b.Mean(), b.First, b.Last)
	}
}

func cmdStats(db *tsdb.DB) {
	stats := db.Stats()
	if len(stats) == 0 {
		fmt.Println("empty database")
		return
	}
	fmt.Printf("%-32s %-6s %-8s %-10s %-10s %-10s %-10s\n",
		"series", "policy", "seq_cap", "points", "ingested", "written", "WA")
	for _, s := range stats {
		// Stored points survive restarts; the ingest/write counters are
		// per-process (they reset when the CLI exits).
		pts, _, _ := db.Scan(s.Name, -1<<62, 1<<62)
		fmt.Printf("%-32s %-6v %-8d %-10d %-10d %-10d %-10.3f\n",
			s.Name, s.Policy, s.SeqCap, len(pts), s.Stats.PointsIngested,
			s.Stats.PointsWritten, s.Stats.WriteAmplification())
	}
	fmt.Printf("database-wide WA: %.3f\n", db.TotalWA())
}

func requireArgs(args []string, n int, usageStr string) {
	if len(args) < n {
		fatal("usage: lsmdb %s", usageStr)
	}
}

func parseI64(s string) int64 {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		fatal("bad integer %q", s)
	}
	return v
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lsmdb [-dir DIR] [-n BUDGET] [-adaptive] <command>
commands:
  ingest <series>                read t_g,t_a[,value] CSV from stdin
  scan <series> <lo> <hi>        print points in the generation-time range
  agg <series> <lo> <hi> <w>     downsample the range into buckets of width w
  stats                          per-series policy and write amplification
  series                         list series
  retain <cutoff>                drop points with t_g below cutoff`)
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lsmdb: "+format+"\n", args...)
	os.Exit(1)
}
