package main

import (
	"math"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

// TestEndToEnd exercises the full stack the way a deployment would: a
// durable multi-series database with adaptive per-series tuning ingests
// two workloads with opposite disorder characteristics, serves range and
// aggregation queries, survives a process restart, and applies retention.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test is slow")
	}
	dir := t.TempDir()
	backend, err := storage.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tsdb.Config{
		Engine:             lsm.Config{Policy: lsm.Conventional, MemBudget: 128, WAL: true},
		Backend:            backend,
		AutoCreate:         true,
		Adaptive:           true,
		AdaptiveCheckEvery: 4000,
	}
	db, err := tsdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const n = 30_000
	ordered := workload.Synthetic(n, 1000, dist.NewUniform(0, 50), 1)
	disordered := workload.Synthetic(n, 1000, dist.NewLognormal(9, 1.5), 2)
	for i := 0; i < n; i++ {
		if err := db.Put("fleet.v1.velocity", ordered[i]); err != nil {
			t.Fatal(err)
		}
		if err := db.Put("fleet.v1.engine_temp", disordered[i]); err != nil {
			t.Fatal(err)
		}
	}

	// The analyzer must have diverged the two series' policies.
	var velPolicy, tempPolicy lsm.PolicyKind
	for _, s := range db.Stats() {
		switch s.Name {
		case "fleet.v1.velocity":
			velPolicy = s.Policy
		case "fleet.v1.engine_temp":
			tempPolicy = s.Policy
			if s.Decision == nil || s.Decision.Policy != core.PolicySeparation {
				t.Errorf("engine_temp decision: %+v", s.Decision)
			}
		}
	}
	if velPolicy != lsm.Conventional {
		t.Errorf("ordered series ended on %v", velPolicy)
	}
	if tempPolicy != lsm.Separation {
		t.Errorf("disordered series ended on %v", tempPolicy)
	}

	// Range + aggregation queries.
	pts, st, err := db.Scan("fleet.v1.engine_temp", 0, math.MaxInt64)
	if err != nil || len(pts) != n {
		t.Fatalf("scan: %d points, %v", len(pts), err)
	}
	if !series.IsSortedByTG(pts) {
		t.Fatal("scan unsorted")
	}
	if st.ReadAmplification() < 1 {
		t.Errorf("read amplification %v", st.ReadAmplification())
	}
	buckets := query.AggregatePoints(pts, 60_000)
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total != int64(n) {
		t.Errorf("aggregation lost points: %d", total)
	}

	// Restart: everything must come back, including WAL-only tails.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	backend2, err := storage.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = backend2
	db2, err := tsdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Series(); len(got) != 2 {
		t.Fatalf("recovered series: %v", got)
	}
	for _, name := range []string{"fleet.v1.velocity", "fleet.v1.engine_temp"} {
		pts, _, err := db2.Scan(name, 0, math.MaxInt64)
		if err != nil || len(pts) != n {
			t.Fatalf("%s after restart: %d points, %v", name, len(pts), err)
		}
	}

	// Retention drops the first half of generation time from every series.
	cutoff := int64(n/2) * 1000
	removed, err := db2.DropBefore(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("retention removed nothing")
	}
	for _, name := range []string{"fleet.v1.velocity", "fleet.v1.engine_temp"} {
		pts, _, _ := db2.Scan(name, 0, math.MaxInt64)
		if len(pts) == 0 || pts[0].TG < cutoff {
			t.Fatalf("%s after retention: first TG %d", name, pts[0].TG)
		}
	}

	// The offline analyzer agrees with the live decision for the
	// disordered series.
	col := analyzer.NewCollector(8192, 3)
	for _, p := range disordered {
		col.Observe(p)
	}
	rec, ok := analyzer.Recommend(col, 128)
	if !ok || rec.Decision.Policy != core.PolicySeparation {
		t.Errorf("offline recommendation: %+v, %v", rec, ok)
	}
}
