// Benchmarks regenerating each of the paper's tables and figures at a
// reduced scale (Config.Quick). Run the full-scale versions with
// cmd/lsmbench. One benchmark per experiment, plus micro-benchmarks of the
// hot paths (ingestion under both policies, the ζ model, Algorithm 1).
package main

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

// benchConfig is a small but non-trivial configuration.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.004, Seed: 1, Quick: true}
}

// runExperiment is the shared driver for per-figure benchmarks.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, benchConfig())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { runExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { runExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { runExperiment(b, "fig20") }

// BenchmarkIngestConventional measures raw write throughput under π_c
// (per-point cost including compaction work).
func BenchmarkIngestConventional(b *testing.B) {
	ps := workload.Synthetic(200_000, 50, dist.NewLognormal(4, 1.5), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: 512})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.PutBatch(ps); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
	b.ReportMetric(float64(200_000*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkIngestSeparation measures raw write throughput under π_s.
func BenchmarkIngestSeparation(b *testing.B) {
	ps := workload.Synthetic(200_000, 50, dist.NewLognormal(4, 1.5), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := lsm.Open(lsm.Config{Policy: lsm.Separation, MemBudget: 512, SeqCapacity: 256})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.PutBatch(ps); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
	b.ReportMetric(float64(200_000*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkZeta measures one ζ(512) model evaluation (the analyzer's
// dominant cost).
func BenchmarkZeta(b *testing.B) {
	d := dist.NewLognormal(4, 1.5)
	for i := 0; i < b.N; i++ {
		core.Zeta(d, 50, 512)
	}
}

// BenchmarkTune measures one full Algorithm 1 run (coarse-to-fine search)
// at n = 128.
func BenchmarkTune(b *testing.B) {
	d := dist.NewLognormal(4, 1.5)
	for i := 0; i < b.N; i++ {
		core.Tune(d, 50, 128)
	}
}

// BenchmarkScan measures range scans against a loaded engine.
func BenchmarkScan(b *testing.B) {
	e, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ps := workload.Synthetic(200_000, 50, dist.NewLognormal(4, 1.5), 1)
	if err := e.PutBatch(ps); err != nil {
		b.Fatal(err)
	}
	span := int64(200_000 * 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (int64(i) * 7919 * 50) % (span - 100_000)
		pts, _, _ := e.Scan(lo, lo+100_000)
		if len(pts) == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkTSDBIngest measures the multi-series layer's per-point overhead
// across 16 series.
func BenchmarkTSDBIngest(b *testing.B) {
	db, err := tsdb.Open(tsdb.Config{
		Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 512},
		AutoCreate: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("s%02d", i)
	}
	ps := workload.Synthetic(1<<16, 50, dist.NewLognormal(4, 1.5), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		if err := db.Put(names[i%len(names)], p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregate measures downsampling a loaded range into buckets.
func BenchmarkAggregate(b *testing.B) {
	e, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ps := workload.Synthetic(100_000, 50, dist.NewLognormal(4, 1.5), 1)
	if err := e.PutBatch(ps); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets, _, err := query.Aggregate(e, 0, 100_000*50, 10_000)
		if err != nil || len(buckets) == 0 {
			b.Fatalf("aggregate: %d buckets, %v", len(buckets), err)
		}
	}
}
