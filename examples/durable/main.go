// Durable: run the engine on a real directory with SSTable persistence
// and a write-ahead log, crash in the middle (simulated by abandoning the
// engine without closing), and recover everything on reopen.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "lsm-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("database directory: %s\n", dir)

	backend, err := storage.NewDiskBackend(dir)
	if err != nil {
		log.Fatal(err)
	}

	stream := workload.Synthetic(20_000, 50, dist.NewLognormal(4, 1.5), 99)
	cfg := lsm.Config{
		Policy:      lsm.Separation,
		MemBudget:   512,
		SeqCapacity: 256,
		Backend:     backend,
		WAL:         true,
	}

	// First incarnation: write most of the stream, then "crash" — no
	// Close, so the tail of the data lives only in the WAL.
	engine, err := lsm.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.PutBatch(stream[:15_000]); err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("before crash: %d points ingested, %d WAL records appended\n",
		st.PointsIngested, st.WALRecords)
	// Abandon the engine without Close: simulated crash.

	// Second incarnation: recover from manifest + SSTables + WAL.
	backend2, err := storage.NewDiskBackend(dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Backend = backend2
	engine2, err := lsm.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer engine2.Close()

	points, _, _ := engine2.Scan(0, int64(1)<<60)
	fmt.Printf("after recovery: %d points visible (want 15000)\n", len(points))

	// Keep writing on the recovered engine.
	if err := engine2.PutBatch(stream[15_000:]); err != nil {
		log.Fatal(err)
	}
	points, scanStats, _ := engine2.Scan(0, int64(1)<<60)
	files, _ := backend2.List()
	fmt.Printf("after resume: %d points in %d sstables (%d files on disk), WA %.3f\n",
		len(points), scanStats.TablesTouched, len(files), engine2.Stats().WriteAmplification())

	if len(points) != len(stream) {
		log.Fatalf("lost data: %d != %d", len(points), len(stream))
	}
	fmt.Println("all points durable across the crash")
}
