// Vehicle: the paper's Section VI use case — an industrial-vehicle vendor
// stores ~1 Hz telemetry in the engine; devices buffer points during
// network outages and re-send them in periodic batches (dataset H). The
// analyzer profiles the delays, predicts WA for both policies, and — on
// this workload — correctly keeps the conventional policy. The example
// also runs the monitoring dashboard's query patterns.
package main

import (
	"fmt"
	"log"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	const memBudget = 512

	// Simulated dataset H: mostly-immediate delivery, occasional outages,
	// backlog re-sent every ~50 s.
	cfg := workload.DefaultH()
	cfg.N = 200_000
	stream := workload.HLike(cfg)

	// 1. Profile the delays the way the deployed analyzer does.
	col := analyzer.NewCollector(8192, 1)
	for _, p := range stream {
		col.Observe(p)
	}
	rec, ok := analyzer.Recommend(col, memBudget)
	if !ok {
		log.Fatal("not enough data to profile")
	}
	delays := workload.Delays(stream)
	fmt.Printf("fleet telemetry: %d points, generation interval %.0f ms\n", len(stream), rec.Dt)
	fmt.Printf("delays: mean %.0f ms, p99.9 %.0f ms (systematic re-send mode near %v ms)\n",
		metrics.Mean(delays), metrics.Quantile(delays, 0.999), cfg.ResendPeriodMs)
	fmt.Printf("analyzer prediction: WA pi_c %.3f vs min WA pi_s %.3f (n_seq=%d)\n",
		rec.Decision.Rc, rec.Decision.Rs, rec.Decision.NSeq)
	fmt.Printf("analyzer recommends: %v\n\n", rec.Decision.Policy)

	// 2. Ingest under the recommended policy and verify against the
	// alternative.
	for _, pol := range []struct {
		kind   lsm.PolicyKind
		seqCap int
	}{{lsm.Conventional, 0}, {lsm.Separation, memBudget / 2}} {
		e, err := lsm.Open(lsm.Config{Policy: pol.kind, MemBudget: memBudget, SeqCapacity: pol.seqCap})
		if err != nil {
			log.Fatal(err)
		}
		if err := e.PutBatch(stream); err != nil {
			log.Fatal(err)
		}
		st := e.Stats()
		fmt.Printf("measured WA under %-5v: %.3f (%d out-of-order points)\n",
			pol.kind, st.WriteAmplification(), st.OutOfOrderPoints)
		e.Close()
	}
	if rec.Decision.Policy != core.PolicyConventional {
		fmt.Println("note: expected pi_c on this workload")
	}

	// 3. Dashboard queries: "last 20 s of telemetry" while writing, and
	// historical investigations afterwards.
	e, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: memBudget})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	cm := query.DefaultHDD()
	recent, err := query.RunRecent(e, stream, []int64{5_000, 20_000}, len(stream)/50, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecent-data dashboard queries:")
	for _, r := range recent {
		fmt.Printf("  window %5d ms: %.0f points avg, latency %.2f ms (model), RA %.2f\n",
			r.Window, r.AvgResult, r.AvgModelNs/1e6, r.AvgReadAmp)
	}
	hist := query.RunHistorical(e, []int64{60_000}, 40, 3, cm)
	fmt.Printf("historical queries (60 s window): latency %.2f ms (model), %d sstables avg\n",
		hist[0].AvgModelNs/1e6, int(hist[0].AvgTables))
}
