// Fleet: a multi-series deployment like the paper's industrial partner —
// each vehicle reports many series with different delay behaviour (direct
// cellular telemetry vs gateway-buffered sensors). The tsdb layer gives
// every series its own engine, and in adaptive mode the analyzer tunes
// separation-or-not per series: the clean series keep π_c while the
// buffered, out-of-order ones switch to π_s.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

func main() {
	db, err := tsdb.Open(tsdb.Config{
		Engine:             lsm.Config{Policy: lsm.Conventional, MemBudget: 256},
		AutoCreate:         true,
		Adaptive:           true,
		AdaptiveCheckEvery: 8_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const pointsPerSeries = 60_000
	// Velocity: direct link, tiny delays — in order, π_c territory.
	velocity := workload.Synthetic(pointsPerSeries, 1000, dist.NewUniform(0, 50), 1)
	// Engine temperature: goes through a store-and-forward gateway with
	// heavy-tailed delays — strongly out of order, π_s territory.
	engineTemp := workload.Synthetic(pointsPerSeries, 1000, dist.NewLognormal(9, 1.5), 2)

	// Interleave the two streams as one ingestion feed.
	for i := 0; i < pointsPerSeries; i++ {
		if err := db.Put("root.v42.velocity", velocity[i]); err != nil {
			log.Fatal(err)
		}
		if err := db.Put("root.v42.engine_temp", engineTemp[i]); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("per-series state after ingestion:")
	for _, s := range db.Stats() {
		fmt.Printf("  %-22s policy=%-5v WA=%.3f in-order=%d out-of-order=%d",
			s.Name, s.Policy, s.Stats.WriteAmplification(),
			s.Stats.InOrderPoints, s.Stats.OutOfOrderPoints)
		if s.Decision != nil {
			fmt.Printf("  (analyzer: %v, predicted rc=%.2f rs=%.2f)",
				s.Decision.Policy, s.Decision.Rc, s.Decision.Rs)
		}
		fmt.Println()
	}
	fmt.Printf("database-wide WA: %.3f\n\n", db.TotalWA())

	// Downsampled dashboard query: 1-minute buckets of engine temperature
	// over the last ~3 hours of generation time.
	pts, _, err := db.Scan("root.v42.engine_temp", 0, int64(pointsPerSeries)*1000)
	if err != nil {
		log.Fatal(err)
	}
	hi := pts[len(pts)-1].TG
	lo := hi - 3*60*60*1000
	window, _, err := db.Scan("root.v42.engine_temp", lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	buckets := query.AggregatePoints(window, 60_000)
	fmt.Printf("engine_temp downsampled to 1-minute buckets: %d buckets over last 3 h\n", len(buckets))
	for _, b := range buckets[:min(3, len(buckets))] {
		fmt.Printf("  t=%d  n=%-3d mean=%.3f min=%.3f max=%.3f\n",
			b.Start, b.Count, b.Mean(), b.Min, b.Max)
	}

	// Verify both series are complete.
	check := func(name string, want int) {
		got, _, err := db.Scan(name, 0, int64(1)<<60)
		if err != nil || len(got) != want {
			log.Fatalf("%s: %d points (%v), want %d", name, len(got), err, want)
		}
	}
	check("root.v42.velocity", pointsPerSeries)
	check("root.v42.engine_temp", pointsPerSeries)
	fmt.Println("\nall series complete and queryable")
}
