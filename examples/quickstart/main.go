// Quickstart: open an LSM engine, ingest a partially out-of-order
// time-series, query it, and inspect write amplification under both
// policies.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/workload"
)

func main() {
	// A sensor emits one point every 50 ms; network delays follow a
	// lognormal, so some points arrive out of order.
	stream := workload.Synthetic(100_000, 50, dist.NewLognormal(4, 1.5), 42)

	for _, policy := range []struct {
		name string
		cfg  lsm.Config
	}{
		{"conventional pi_c", lsm.Config{Policy: lsm.Conventional, MemBudget: 512}},
		{"separation pi_s", lsm.Config{Policy: lsm.Separation, MemBudget: 512, SeqCapacity: 256}},
	} {
		engine, err := lsm.Open(policy.cfg)
		if err != nil {
			log.Fatal(err)
		}

		// Ingest in arrival order.
		if err := engine.PutBatch(stream); err != nil {
			log.Fatal(err)
		}

		// Point lookup by generation timestamp.
		if p, ok, _ := engine.Get(50 * 1000); ok {
			fmt.Printf("[%s] point at t_g=50000: value %.3f (arrived %d ms late)\n",
				policy.name, p.V, p.Delay())
		}

		// Range scan over generation time, with read-cost accounting.
		points, stats, _ := engine.Scan(1_000_000, 1_250_000)
		fmt.Printf("[%s] scan [1.0M, 1.25M]: %d points from %d sstables, read amplification %.2f\n",
			policy.name, len(points), stats.TablesTouched, stats.ReadAmplification())

		// Write-path accounting: the paper's WA metric.
		st := engine.Stats()
		fmt.Printf("[%s] ingested %d, written %d, WA %.3f (%d flushes, %d compactions)\n\n",
			policy.name, st.PointsIngested, st.PointsWritten, st.WriteAmplification(),
			st.Flushes, st.Compactions)

		if err := engine.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
