// Adaptive: the delay distribution of the workload drifts over time; the
// analyzer (π_adaptive) detects each regime change, re-runs the tuning
// algorithm, and switches the live engine between π_c and π_s — the
// scenario of the paper's Fig. 10 and Fig. 17.
package main

import (
	"fmt"
	"log"

	"repro/internal/analyzer"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/workload"
)

func main() {
	const memBudget = 256

	// Three regimes: heavy disorder, moderate, then nearly ordered.
	stream := workload.Dynamic(50, 7,
		workload.Segment{Points: 60_000, Dist: dist.NewLognormal(5, 2)},
		workload.Segment{Points: 60_000, Dist: dist.NewLognormal(4, 1.5)},
		workload.Segment{Points: 60_000, Dist: dist.NewUniform(0, 10)},
	)

	engine, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: memBudget})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	ctl, err := analyzer.NewAdaptiveController(engine, analyzer.AdaptiveConfig{
		MemBudget:  memBudget,
		CheckEvery: 5_000,
		MinSample:  4_000,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range stream {
		if err := ctl.Put(p); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("policy decisions made by the analyzer:")
	for _, sw := range ctl.Switches() {
		fmt.Printf("  after %6d points: %-6s", sw.AtPoint, sw.Decision.Policy)
		if sw.Decision.Policy.String() == "pi_s" {
			fmt.Printf(" (C_seq=%d)", sw.Decision.NSeq)
		}
		fmt.Printf("  predicted WA: pi_c %.2f vs pi_s %.2f", sw.Decision.Rc, sw.Decision.Rs)
		if sw.KS > 0 {
			fmt.Printf("  (drift KS=%.3f)", sw.KS)
		}
		fmt.Println()
	}

	st := engine.Stats()
	fmt.Printf("\noverall: %d points, WA %.3f, %d compactions\n",
		st.PointsIngested, st.WriteAmplification(), st.Compactions)
}
