// Package core implements the paper's statistical models:
//
//   - ζ(n), the expected number of subsequent data points on disk when n
//     points are buffered in memory (Eq. 2), which drives both WA models;
//   - g(x), the arrival-rate-ratio model for out-of-order points (Eq. 1);
//   - r_c, the write amplification of the conventional policy π_c (Eq. 3);
//   - r_s(n_seq), the write amplification of the separation policy π_s
//     (Eq. 4–5);
//   - Algorithm 1, the separation-policy tuning algorithm that picks the
//     policy (and C_seq capacity) with the lower predicted WA.
//
// Models take the delay distribution (PDF f, CDF F) and the generation
// interval Δt. They work equally with parametric distributions and the
// Empirical distribution the analyzer fits from observed delays.
package core

import (
	"math"

	"repro/internal/dist"
	"repro/internal/numeric"
)

// ZetaOpts tunes the ζ evaluation. The zero value selects sensible
// defaults.
type ZetaOpts struct {
	// SwitchEps is the per-term probability below which the outer sum
	// switches from exact evaluation to the analytic tail estimate.
	// Default 3e-3 (the tail estimate is accurate to O(SwitchEps²) per
	// term, so the default keeps total error well under 1%).
	SwitchEps float64
	// MaxTerms caps the exact outer-sum terms. Default 2_000_000.
	MaxTerms int
}

func (o ZetaOpts) withDefaults() ZetaOpts {
	if o.SwitchEps <= 0 {
		o.SwitchEps = 3e-3
	}
	if o.MaxTerms <= 0 {
		o.MaxTerms = 2_000_000
	}
	return o
}

// Zeta evaluates ζ(n) (Eq. 2): the expected number of on-disk subsequent
// data points when n points are buffered in memory, for delays with
// distribution d and generation interval dt.
//
//	ζ(n) = Σ_{i≥0} [ 1 − ∫₀^∞ f(x) Π_{j=1}^{n} F((i+j)·Δt + x) dx ]
//
// following the paper's reduction E[F(t̃_m + x)] ≈ F(m·Δt + x). The x
// integral is evaluated on fixed Gauss–Legendre nodes spanning the delay
// distribution's quantiles; the length-n product is maintained
// incrementally in log space across outer terms, and the far tail of the
// outer sum — where every factor is near 1 — is closed with the analytic
// estimate Σ_i P_i ≈ (1/Δt)·Σ_j T(window_j), T(y) = ∫_y^∞ (1−F(u)) du.
func Zeta(d dist.Distribution, dt float64, n int) float64 {
	return ZetaWithOpts(d, dt, n, ZetaOpts{})
}

// ZetaWithOpts is Zeta with explicit evaluation options.
func ZetaWithOpts(d dist.Distribution, dt float64, n int, opts ZetaOpts) float64 {
	if n <= 0 || dt <= 0 {
		return 0
	}
	opts = opts.withDefaults()

	xs, ws := numeric.GaussLegendreNodesSegments10(dist.IntegrationBoundaries(d))
	// Fold the density into the weights and normalize so that Σ W_q = 1
	// exactly; any quadrature bias then cancels instead of accumulating
	// across thousands of outer terms.
	W := make([]float64, 0, len(xs))
	X := make([]float64, 0, len(xs))
	var norm float64
	for q := range xs {
		w := ws[q] * d.PDF(xs[q])
		if w > 0 {
			W = append(W, w)
			X = append(X, xs[q])
			norm += w
		}
	}
	if norm < 1e-9 {
		// No usable density mass (e.g. a degenerate constant delay):
		// constant delays keep the stream ordered, so no subsequent points.
		return 0
	}
	for q := range W {
		W[q] /= norm
	}

	// Factors with F(y) ≥ 1−1e-10 contribute |ln F| ≤ 1e-10 and are
	// treated as exactly 1; yCut is the threshold argument. This turns the
	// O(n)-per-node window initialization into O(reach of the delays) —
	// crucial when the separation model evaluates ζ over phase windows of
	// millions of points.
	yCut := d.Quantile(1 - 1e-10)
	if math.IsNaN(yCut) || math.IsInf(yCut, 0) {
		yCut = math.MaxFloat64
	}

	// Sliding log-product state per node: logSum = Σ ln F over the window's
	// sub-unity nonzero factors, zeros = number of zero factors.
	logSum := make([]float64, len(X))
	zeros := make([]int, len(X))
	for q := range X {
		jMax := n
		if lim := (yCut - X[q]) / dt; float64(jMax) > lim {
			jMax = int(lim) + 1
			if jMax > n {
				jMax = n
			}
		}
		for j := 1; j <= jMax; j++ {
			addFactor(d, float64(j)*dt+X[q], yCut, &logSum[q], &zeros[q])
		}
	}

	var acc numeric.KahanSum
	i := 0
	for ; i < opts.MaxTerms; i++ {
		// P_i = 1 − Σ_q W_q · Π_window F.
		var inner numeric.KahanSum
		for q := range X {
			if zeros[q] == 0 && logSum[q] > -45 {
				inner.Add(W[q] * math.Exp(logSum[q]))
			}
		}
		p := 1 - inner.Value()
		if p < 0 {
			p = 0
		}
		acc.Add(p)
		if p < opts.SwitchEps {
			i++
			break
		}
		// Slide the window: drop factor at (i+1)Δt + x, add factor at
		// (i+1+n)Δt + x.
		for q := range X {
			removeFactor(d, float64(i+1)*dt+X[q], yCut, &logSum[q], &zeros[q])
			addFactor(d, float64(i+1+n)*dt+X[q], yCut, &logSum[q], &zeros[q])
		}
	}

	// Analytic tail: for the remaining terms every factor is close to 1,
	// so 1 − ΠF ≈ Σ (1−F), and summing over i telescopes into survival
	// integrals across the first window position.
	acc.Add(zetaTail(d, dt, n, i, X, W))
	return acc.Value()
}

// addFactor folds F(y) into the sliding product state. Arguments at or
// beyond yCut are treated as F == 1 (consistently with removeFactor, so the
// sliding window stays balanced).
func addFactor(d dist.Distribution, y, yCut float64, logSum *float64, zeros *int) {
	if y >= yCut {
		return
	}
	f := d.CDF(y)
	if f <= 0 {
		*zeros++
		return
	}
	if f >= 1 {
		return // ln 1 == 0
	}
	*logSum += math.Log(f)
}

// removeFactor removes F(y) from the sliding product state.
func removeFactor(d dist.Distribution, y, yCut float64, logSum *float64, zeros *int) {
	if y >= yCut {
		return
	}
	f := d.CDF(y)
	if f <= 0 {
		*zeros--
		return
	}
	if f >= 1 {
		return
	}
	*logSum -= math.Log(f)
}

// zetaTail estimates Σ_{i≥start} P_i using the union-bound linearization:
//
//	Σ_{i≥start} Σ_{j=1}^{n} (1−F((i+j)Δt+x)) ≈ (1/Δt)·Σ_{j=1}^{n} T((start+j)Δt+x)
//
// with T(y) = ∫_y^∞ (1−F(u)) du, itself approximated by the trapezoid of T
// at the window's ends (T is convex and decreasing). The result is averaged
// over the density nodes.
func zetaTail(d dist.Distribution, dt float64, n, start int, X, W []float64) float64 {
	var tail float64
	for q := range X {
		tLo := survivalIntegral(d, float64(start+1)*dt+X[q])
		tHi := survivalIntegral(d, float64(start+n)*dt+X[q])
		tail += W[q] * float64(n) * (tLo + tHi) / 2 / dt
	}
	return tail
}

// survivalIntegral computes T(y) = ∫_y^∞ (1−F(u)) du = E[(D−y)⁺] by
// quadrature up to the 1−1e-12 quantile.
func survivalIntegral(d dist.Distribution, y float64) float64 {
	hi := d.Quantile(1 - 1e-12)
	if math.IsInf(hi, 1) || math.IsNaN(hi) || hi <= y {
		return 0
	}
	// Log-spaced boundaries resolve heavy tails.
	bounds := []float64{y}
	span := hi - y
	for _, frac := range []float64{1e-4, 1e-3, 1e-2, 0.1, 0.3, 1} {
		b := y + frac*span
		if b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return numeric.GaussLegendreSegments(func(u float64) float64 {
		return 1 - d.CDF(u)
	}, bounds)
}
