package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
)

// Example runs Algorithm 1 on two workloads: a nearly ordered one (tiny
// uniform delays) where the conventional policy wins, and a heavily
// disordered one (wide lognormal delays) where separation wins.
func Example() {
	const dt, n = 50.0, 128

	ordered := dist.NewUniform(0, 5)
	dec := core.Tune(ordered, dt, n)
	fmt.Printf("tiny delays   -> %s\n", dec.Policy)

	disordered := dist.NewLognormal(5, 2)
	dec = core.Tune(disordered, dt, n)
	fmt.Printf("heavy delays  -> %s (C_seq in range: %v)\n",
		dec.Policy, dec.NSeq > 8 && dec.NSeq < 120)
	// Output:
	// tiny delays   -> pi_c
	// heavy delays  -> pi_s (C_seq in range: true)
}

// ExampleZeta evaluates the subsequent-data-point model: with constant
// delays nothing is ever reordered, so ζ is zero; heavy-tailed delays
// leave many on-disk points newer than the buffered minimum.
func ExampleZeta() {
	fmt.Printf("constant delays: zeta = %.0f\n", core.Zeta(dist.Degenerate{V: 100}, 50, 64))
	z := core.Zeta(dist.NewLognormal(4, 1.5), 50, 64)
	fmt.Printf("lognormal delays: zeta in (20, 30): %v\n", z > 20 && z < 30)
	// Output:
	// constant delays: zeta = 0
	// lognormal delays: zeta in (20, 30): true
}

// ExampleG quantifies disorder: how many out-of-order points arrive while
// C_seq collects 100 in-order ones.
func ExampleG() {
	g := core.G(dist.NewExponential(1.0/200), 50, 100)
	fmt.Printf("g(100) within (3.5, 4.5): %v\n", g > 3.5 && g < 4.5)
	// Output:
	// g(100) within (3.5, 4.5): true
}
