package core

import (
	"math"

	"repro/internal/dist"
)

// Policy identifies the outcome of the tuning algorithm.
type Policy int

const (
	// PolicyConventional is π_c.
	PolicyConventional Policy = iota
	// PolicySeparation is π_s(n̂*_seq).
	PolicySeparation
)

// String returns the paper's notation.
func (p Policy) String() string {
	if p == PolicySeparation {
		return "pi_s"
	}
	return "pi_c"
}

// Decision is the output of the Separation Policy Tuning Algorithm
// (Algorithm 1): the chosen policy and, for π_s, the recommended C_seq
// capacity, together with the predicted write amplifications that drove
// the choice.
type Decision struct {
	Policy Policy
	// NSeq is n̂*_seq, the recommended C_seq capacity (meaningful when
	// Policy == PolicySeparation, but always reports the best found).
	NSeq int
	// Rc is the predicted WA of π_c (Eq. 3).
	Rc float64
	// Rs is min over n_seq of the predicted WA of π_s (Eq. 5).
	Rs float64
	// Evaluations counts r_s model evaluations performed.
	Evaluations int
}

// TuneOpts controls the search over n_seq.
type TuneOpts struct {
	// Exhaustive sweeps every n_seq in 1..n−1 with the given Step
	// (Algorithm 1 verbatim when Step == 1). When false, a coarse-to-fine
	// search exploits the U shape of r_s(n_seq), costing ~30 model
	// evaluations instead of n−1.
	Exhaustive bool
	// Step is the sweep stride for the exhaustive search. Default 1.
	Step int
	// Zeta forwards evaluation options to the ζ model.
	Zeta ZetaOpts
	// TablePoints is the SSTable size used for the whole-table granularity
	// correction; zero selects n (the paper's configuration).
	TablePoints int
}

// Tune runs Algorithm 1: given the memory budget n, the delay distribution
// d, and the generation interval dt, it compares r_c(n) against
// min_{n_seq} r_s(n_seq) and returns the policy with the lower predicted
// write amplification.
func Tune(d dist.Distribution, dt float64, n int) Decision {
	return TuneWithOpts(d, dt, n, TuneOpts{})
}

// TuneWithOpts is Tune with explicit search options.
func TuneWithOpts(d dist.Distribution, dt float64, n int, opts TuneOpts) Decision {
	dec := Decision{NSeq: -1, Rs: math.Inf(1)}
	if opts.TablePoints <= 0 {
		opts.TablePoints = n
	}
	dec.Rc = WAConventionalTable(d, dt, n, opts.TablePoints)
	if n < 2 {
		dec.Policy = PolicyConventional
		return dec
	}

	eval := func(nseq int) float64 {
		dec.Evaluations++
		return WASeparationTable(d, dt, n, nseq, opts.TablePoints, opts.Zeta).WA
	}
	consider := func(nseq int, wa float64) {
		if wa < dec.Rs {
			dec.Rs = wa
			dec.NSeq = nseq
		}
	}

	if opts.Exhaustive {
		step := opts.Step
		if step < 1 {
			step = 1
		}
		for x := 1; x <= n-1; x += step {
			consider(x, eval(x))
		}
	} else {
		// Coarse pass over ~17 points, then two refinement passes around
		// the best coarse point. r_s(n_seq) is U-shaped (the paper's
		// Fig. 7/9), so local refinement finds the global basin.
		coarse := 16
		step := (n - 2) / coarse
		if step < 1 {
			step = 1
		}
		cache := map[int]float64{}
		evalC := func(x int) float64 {
			if v, ok := cache[x]; ok {
				return v
			}
			v := eval(x)
			cache[x] = v
			consider(x, v)
			return v
		}
		for x := 1; x <= n-1; x += step {
			evalC(x)
		}
		evalC(n - 1)
		for pass := 0; pass < 2 && step > 1; pass++ {
			center := dec.NSeq
			lo, hi := center-step, center+step
			if lo < 1 {
				lo = 1
			}
			if hi > n-1 {
				hi = n - 1
			}
			step = (hi - lo) / 8
			if step < 1 {
				step = 1
			}
			for x := lo; x <= hi; x += step {
				evalC(x)
			}
		}
	}

	if dec.Rs < dec.Rc {
		dec.Policy = PolicySeparation
	} else {
		dec.Policy = PolicyConventional
	}
	return dec
}
