package core

import (
	"math"

	"repro/internal/dist"
)

// G evaluates the arrival-rate-ratio model (Eq. 1): the expected number of
// out-of-order points that arrive while nseq in-order points accumulate.
//
// The probability that the i-th arrival after a C_seq flush is in-order is
// F(ι_i) with ι_i ≈ i·Δt (its delay must not exceed its arrival offset from
// LAST(R)). G finds the real α with Σ_{i=1}^{α} F(i·Δt) = nseq and returns
// g = α − nseq.
func G(d dist.Distribution, dt float64, nseq float64) float64 {
	if nseq <= 0 || dt <= 0 {
		return 0
	}
	const maxIter = 50_000_000
	sum := 0.0
	for i := 1; i <= maxIter; i++ {
		f := d.CDF(float64(i) * dt)
		next := sum + f
		if next >= nseq {
			// Linear interpolation within the final step.
			var frac float64
			if f > 0 {
				frac = (nseq - sum) / f
			}
			alpha := float64(i-1) + frac
			g := alpha - nseq
			if g < 0 {
				g = 0
			}
			return g
		}
		sum = next
	}
	// Delays vastly exceed Δt·maxIter: fall back to the asymptotic
	// g ≈ E[D]/Δt (the expected backlog of late points), clamped to the
	// mean when it exists.
	mean := d.Mean()
	if math.IsInf(mean, 1) || math.IsNaN(mean) {
		return float64(maxIter)
	}
	return mean / dt
}

// WAConventional evaluates r_c (Eq. 3), the predicted write amplification
// of the conventional policy with MemTable capacity n and SSTables of n
// points (the paper's configuration).
func WAConventional(d dist.Distribution, dt float64, n int) float64 {
	return WAConventionalTable(d, dt, n, n)
}

// WAConventionalTable is WAConventional with an explicit SSTable size.
// Compaction rewrites whole SSTables, so each merge rewrites on average
// about tablePoints/2 points beyond the subsequent-point count (the table
// containing the memtable's minimum is cut mid-table); the paper notes
// this as the model's systematic underestimate with "difference ... less
// than 1" — the correction +S/(2n) sits inside that band and tightens the
// fit on mildly disordered workloads (M1–M4 in Fig. 9).
func WAConventionalTable(d dist.Distribution, dt float64, n, tablePoints int) float64 {
	if n <= 0 {
		return math.NaN()
	}
	z := Zeta(d, dt, n)
	return (z+granularityCorrection(z, tablePoints))/float64(n) + 1
}

// granularityCorrection estimates the extra points each merge rewrites
// because whole SSTables are consumed: about half a table per compaction,
// scaled by the probability that a flush needs to merge at all (≈1−e^{−ζ};
// with no subsequent points there is no compaction and no correction).
func granularityCorrection(zeta float64, tablePoints int) float64 {
	if tablePoints <= 0 || zeta <= 0 {
		return 0
	}
	return float64(tablePoints) / 2 * (1 - math.Exp(-zeta))
}

// SeparationEstimate carries the intermediate quantities of the r_s model,
// useful for reports and ablations.
type SeparationEstimate struct {
	NSeq     int     // capacity of C_seq
	NNonseq  int     // capacity of C_nonseq (n − n_seq)
	G        float64 // g(n_seq): expected out-of-order arrivals per C_seq fill
	NArrive  float64 // points arriving per phase (Eq. 4)
	NSeqLast float64 // n′_seq: points in the phase's last flushed SSTable
	ZetaN    float64 // ζ(N_arrive): pre-phase subsequent points
	WA       float64 // r_s(n_seq)
}

// WASeparation evaluates r_s(n_seq) (Eq. 4–5), the predicted write
// amplification of the separation policy with total memory budget n and
// C_seq capacity nseq.
//
// Derivation (consistent with the paper's N_cur definition and its Fig. 2
// motivation): per phase, N = N_arrive points are written once; ζ(N)
// pre-phase points are rewritten by the C_nonseq merge; and the phase's
// own flushed in-order SSTables below max(C_nonseq) are rewritten. When
// the out-of-order points are only mildly late, max(C_nonseq) reaches the
// last-but-one flushed SSTable and the in-phase rewrite is
// N − n_nonseq − n′_seq (so r_s → 2 as disorder vanishes — the paper's
// Fig. 2 limit; note the printed Eq. 5 is inconsistent with its own N_cur
// definition there). When the out-of-order points are severely delayed
// (skewed workloads like S-9), max(C_nonseq) sits E[D|OOO]/Δt generations
// behind the frontier and the in-phase rewrite shrinks accordingly:
//
//	inPhase = clamp(N − n_nonseq − E[D|OOO]/Δt, 0, N − n_nonseq − n′_seq)
//	r_s     = 1 + (ζ(N) + inPhase) / N.
//
// Our simulator confirms both regimes (see EXPERIMENTS.md).
func WASeparation(d dist.Distribution, dt float64, n, nseq int) SeparationEstimate {
	return WASeparationOpts(d, dt, n, nseq, ZetaOpts{})
}

// WASeparationOpts is WASeparation with explicit ζ evaluation options and
// SSTables of n points.
func WASeparationOpts(d dist.Distribution, dt float64, n, nseq int, opts ZetaOpts) SeparationEstimate {
	return WASeparationTable(d, dt, n, nseq, n, opts)
}

// WASeparationTable is the full-parameter r_s model with an explicit
// SSTable size; the per-phase whole-table granularity correction
// (+tablePoints/2, see WAConventionalTable) matters most when phases are
// short — i.e. when n_seq approaches n and C_nonseq merges frequently.
func WASeparationTable(d dist.Distribution, dt float64, n, nseq, tablePoints int, opts ZetaOpts) SeparationEstimate {
	est := SeparationEstimate{NSeq: nseq, NNonseq: n - nseq}
	if nseq < 1 || nseq >= n {
		est.WA = math.NaN()
		return est
	}
	nNonseq := float64(n - nseq)
	g := G(d, dt, float64(nseq))
	est.G = g
	if g <= 1e-12 {
		// No out-of-order points ever: C_nonseq never fills, the phase is
		// unbounded, and every point is written exactly once.
		est.NArrive = math.Inf(1)
		est.WA = 1
		return est
	}
	fills := nNonseq / g // times C_seq fills per phase
	est.NArrive = float64(nseq)*fills + nNonseq
	x := fills
	est.NSeqLast = (1 + x - math.Floor(x)) * float64(nseq)

	// ζ of a (possibly huge) phase: cap the effective window for
	// tractability; beyond the cap ζ(N)/N is far below the other terms.
	zn := int(math.Min(est.NArrive, 4_000_000))
	est.ZetaN = ZetaWithOpts(d, dt, zn, opts)

	inPhase := est.NArrive - nNonseq - est.NSeqLast
	if cap := est.NArrive - nNonseq - MeanOOODelay(d, dt, float64(nseq)+g)/dt; cap < inPhase {
		inPhase = cap
	}
	if inPhase < 0 {
		inPhase = 0
	}
	est.WA = 1 + (est.ZetaN+inPhase+granularityCorrection(est.ZetaN, tablePoints))/est.NArrive
	if est.WA < 1 {
		est.WA = 1
	}
	return est
}

// GWithOffset is the g model with ι_i = i·Δt + offset: the offset models
// the generation-time gap between LAST(R) and the flush instant (LAST(R)
// was itself delayed by roughly the typical delay of a near-frontier
// point). The default G uses offset 0; the ablation experiment compares
// the two calibrations against simulation.
func GWithOffset(d dist.Distribution, dt, nseq, offset float64) float64 {
	if nseq <= 0 || dt <= 0 {
		return 0
	}
	const maxIter = 50_000_000
	sum := 0.0
	for i := 1; i <= maxIter; i++ {
		f := d.CDF(float64(i)*dt + offset)
		next := sum + f
		if next >= nseq {
			var frac float64
			if f > 0 {
				frac = (nseq - sum) / f
			}
			alpha := float64(i-1) + frac
			g := alpha - nseq
			if g < 0 {
				g = 0
			}
			return g
		}
		sum = next
	}
	mean := d.Mean()
	if math.IsInf(mean, 1) || math.IsNaN(mean) {
		return float64(maxIter)
	}
	return mean / dt
}

// MeanOOODelay returns the expected delay of an out-of-order point: the
// average of E[D | D > ι_i] over one C_seq fill cycle of α arrivals
// (ι_i = i·Δt), weighted by the probability of being out-of-order at each
// offset. It locates how far behind the frontier max(C_nonseq) sits.
func MeanOOODelay(d dist.Distribution, dt, alpha float64) float64 {
	if alpha < 1 {
		alpha = 1
	}
	m := int(math.Ceil(alpha))
	if m > 100_000 {
		m = 100_000
	}
	var pSum, dSum float64
	for i := 1; i <= m; i++ {
		y := float64(i) * dt
		p := 1 - d.CDF(y)
		if p < 1e-12 {
			// 1−F(iΔt) is nonincreasing in i: nothing further contributes.
			break
		}
		// E[D · 1(D > y)] = y·(1−F(y)) + ∫_y^∞ (1−F(u)) du.
		dSum += y*p + survivalIntegral(d, y)
		pSum += p
	}
	if pSum == 0 {
		return 0
	}
	return dSum / pSum
}
