package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/numeric"
)

func TestZetaDegenerateInputs(t *testing.T) {
	d := dist.NewExponential(0.1)
	if got := Zeta(d, 50, 0); got != 0 {
		t.Errorf("Zeta(n=0) = %v", got)
	}
	if got := Zeta(d, 0, 10); got != 0 {
		t.Errorf("Zeta(dt=0) = %v", got)
	}
}

func TestZetaConstantDelayIsZero(t *testing.T) {
	// Constant delays keep arrivals in generation order: no subsequent
	// points ever.
	if got := Zeta(dist.Degenerate{V: 100}, 50, 64); got != 0 {
		t.Errorf("Zeta(degenerate) = %v, want 0", got)
	}
}

func TestZetaTinyDelaysNearZero(t *testing.T) {
	// Delays far below Δt almost never reorder points.
	d := dist.NewUniform(0, 1) // delays < 1, Δt = 50
	if got := Zeta(d, 50, 64); got > 0.01 {
		t.Errorf("Zeta(tiny delays) = %v, want ≈0", got)
	}
}

func TestZetaMonotoneInN(t *testing.T) {
	d := dist.NewLognormal(4, 1.5)
	prev := -1.0
	for _, n := range []int{8, 16, 32, 64, 128, 256, 512} {
		z := Zeta(d, 50, n)
		if z < prev {
			t.Errorf("Zeta not monotone: Zeta(%d) = %v < %v", n, z, prev)
		}
		prev = z
	}
}

func TestZetaIncreasesWithSigma(t *testing.T) {
	z1 := Zeta(dist.NewLognormal(4, 1.5), 50, 128)
	z2 := Zeta(dist.NewLognormal(4, 1.75), 50, 128)
	z3 := Zeta(dist.NewLognormal(4, 2), 50, 128)
	if !(z1 < z2 && z2 < z3) {
		t.Errorf("Zeta should grow with sigma: %v, %v, %v", z1, z2, z3)
	}
}

func TestZetaDecreasesWithDt(t *testing.T) {
	d := dist.NewLognormal(4, 1.5)
	z10 := Zeta(d, 10, 128)
	z50 := Zeta(d, 50, 128)
	if !(z10 > z50) {
		t.Errorf("Zeta should shrink with larger dt: dt=10 %v, dt=50 %v", z10, z50)
	}
}

// zetaAgainstMC cross-checks the analytic model against the Monte Carlo
// oracle under the same assumptions.
func zetaAgainstMC(t *testing.T, d dist.Distribution, dt float64, n int, relTol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	model := Zeta(d, dt, n)
	// k must dwarf the reach of the delays so the "infinite disk" holds.
	reach := int(d.Quantile(1-1e-4)/dt) + n
	mc := ZetaMC(d, dt, n, reach*2+1000, 300, rng)
	if mc == 0 && model < 0.05 {
		return
	}
	if math.Abs(model-mc) > relTol*math.Max(mc, 1) {
		t.Errorf("%s dt=%v n=%d: model %v vs MC %v", d.Name(), dt, n, model, mc)
	}
}

func TestZetaMatchesMonteCarloExponential(t *testing.T) {
	zetaAgainstMC(t, dist.NewExponential(1.0/200), 50, 32, 0.1)
	zetaAgainstMC(t, dist.NewExponential(1.0/200), 50, 128, 0.1)
}

func TestZetaMatchesMonteCarloUniform(t *testing.T) {
	zetaAgainstMC(t, dist.NewUniform(0, 500), 50, 32, 0.1)
	zetaAgainstMC(t, dist.NewUniform(0, 500), 50, 128, 0.1)
}

func TestZetaMatchesMonteCarloLognormal(t *testing.T) {
	if testing.Short() {
		t.Skip("MC cross-check is slow")
	}
	// Heavy-tailed delays expose the paper's own approximation gap
	// (E[F(t̃+x)] ≈ F(E[t̃]+x) plus the independence assumption between a
	// point's delay and its arrival rank), so the tolerance is looser here
	// than for light tails; Section V of the paper reports the same
	// phenomenon ("the differences ... could be relatively large").
	zetaAgainstMC(t, dist.NewLognormal(4, 1.0), 50, 64, 0.2)
	zetaAgainstMC(t, dist.NewLognormal(4, 1.5), 50, 64, 0.3)
}

// bruteZeta evaluates Eq. 2 directly — adaptive quadrature per outer term,
// recomputing the n-factor product at every integrand evaluation — as an
// implementation oracle for the optimized Zeta. O(terms · evals · n); only
// usable for small n.
func bruteZeta(d dist.Distribution, dt float64, n int) float64 {
	bounds := dist.IntegrationBoundaries(d)
	total := 0.0
	for i := 0; ; i++ {
		integrand := func(x float64) float64 {
			prod := d.PDF(x)
			for j := 1; j <= n; j++ {
				prod *= d.CDF(float64(i+j)*dt + x)
			}
			return prod
		}
		v, _ := numericIntegrate(integrand, bounds)
		p := 1 - v
		if p < 0 {
			p = 0
		}
		total += p
		if p < 1e-6 || i > 200000 {
			break
		}
	}
	return total
}

func numericIntegrate(f func(float64) float64, bounds []float64) (float64, error) {
	return numeric.IntegrateSegments(f, bounds, 1e-8)
}

func TestZetaMatchesBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force oracle is slow")
	}
	// The optimized incremental/log-space evaluation must agree with the
	// direct evaluation of the same formula.
	cases := []struct {
		d  dist.Distribution
		dt float64
		n  int
	}{
		{dist.NewExponential(1.0 / 120), 50, 8},
		{dist.NewExponential(1.0 / 120), 50, 24},
		{dist.NewUniform(0, 400), 50, 16},
		{dist.NewLognormal(4, 1.2), 50, 16},
		{dist.NewLognormal(4, 1.5), 10, 12},
	}
	for _, tc := range cases {
		fast := ZetaWithOpts(tc.d, tc.dt, tc.n, ZetaOpts{SwitchEps: 1e-6})
		slow := bruteZeta(tc.d, tc.dt, tc.n)
		if math.Abs(fast-slow) > 0.02*math.Max(slow, 0.5) {
			t.Errorf("%s dt=%v n=%d: fast %v vs brute %v", tc.d.Name(), tc.dt, tc.n, fast, slow)
		}
	}
}

func TestZetaTailSwitchConsistency(t *testing.T) {
	// A stricter switch threshold must not change the result materially.
	d := dist.NewLognormal(4, 1.5)
	loose := ZetaWithOpts(d, 50, 128, ZetaOpts{SwitchEps: 1e-2})
	tight := ZetaWithOpts(d, 50, 128, ZetaOpts{SwitchEps: 1e-5})
	if math.Abs(loose-tight) > 0.02*math.Max(tight, 1) {
		t.Errorf("tail estimate unstable: eps=1e-2 -> %v, eps=1e-5 -> %v", loose, tight)
	}
}

func TestZetaEmpiricalDistribution(t *testing.T) {
	// ζ must work on an analyzer-fitted empirical distribution and land
	// near the parametric source's value.
	src := dist.NewLognormal(4, 1.2)
	rng := rand.New(rand.NewSource(21))
	samples := make([]float64, 30000)
	for i := range samples {
		samples[i] = src.Sample(rng)
	}
	emp := dist.NewEmpirical(samples)
	zSrc := Zeta(src, 50, 64)
	zEmp := Zeta(emp, 50, 64)
	if math.Abs(zSrc-zEmp) > 0.2*math.Max(zSrc, 1) {
		t.Errorf("empirical zeta %v vs source %v", zEmp, zSrc)
	}
}

func TestSurvivalIntegralExponential(t *testing.T) {
	// For Exp(λ): ∫_y^∞ (1−F) = e^{−λy}/λ.
	d := dist.NewExponential(0.01)
	for _, y := range []float64{0, 50, 200, 1000} {
		want := math.Exp(-0.01*y) / 0.01
		got := survivalIntegral(d, y)
		if math.Abs(got-want) > 1e-3*want {
			t.Errorf("survivalIntegral(%v) = %v, want %v", y, got, want)
		}
	}
}
