package core

import (
	"math/rand"
	"sort"

	"repro/internal/dist"
)

// ZetaMC estimates ζ(n) by Monte Carlo simulation under exactly the model's
// assumptions: generation times on a Δt grid, i.i.d. delays from d, points
// ordered by arrival; the first k arrivals are "on disk", the next n are
// "in memory", and later arrivals are still in transit (the database has
// not seen them, so they are ignored — truncating the generated population
// at k+n would bias the memory window toward old late points). A disk
// point is subsequent when its generation time exceeds the minimum
// generation time in memory. It is the test oracle for Zeta.
func ZetaMC(d dist.Distribution, dt float64, n, k, trials int, rng *rand.Rand) float64 {
	if n <= 0 || k <= 0 || trials <= 0 {
		return 0
	}
	// Generate enough extra points that the (k+n)-th arrival is never
	// starved: beyond the delay distribution's practical reach the arrival
	// index tracks the generation index.
	transit := int(d.Quantile(1-1e-6)/dt) + n + 16
	m := k + n + transit
	total := 0.0
	type pt struct{ tg, ta float64 }
	pts := make([]pt, m)
	for trial := 0; trial < trials; trial++ {
		for i := range pts {
			tg := float64(i+1) * dt
			pts[i] = pt{tg: tg, ta: tg + d.Sample(rng)}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].ta < pts[j].ta })
		minMem := pts[k].tg
		for i := k + 1; i < k+n; i++ {
			if pts[i].tg < minMem {
				minMem = pts[i].tg
			}
		}
		count := 0
		for i := 0; i < k; i++ {
			if pts[i].tg > minMem {
				count++
			}
		}
		total += float64(count)
	}
	return total / float64(trials)
}
