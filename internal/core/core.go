package core
