package core

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestGNoDisorder(t *testing.T) {
	// Delays far smaller than Δt: every point is in order, g ≈ 0.
	g := G(dist.NewUniform(0, 1), 50, 100)
	if g > 0.01 {
		t.Errorf("g = %v, want ≈0", g)
	}
}

func TestGDegenerateInputs(t *testing.T) {
	d := dist.NewExponential(0.01)
	if g := G(d, 50, 0); g != 0 {
		t.Errorf("G(nseq=0) = %v", g)
	}
	if g := G(d, 0, 10); g != 0 {
		t.Errorf("G(dt=0) = %v", g)
	}
}

func TestGIncreasesWithDelayScale(t *testing.T) {
	g1 := G(dist.NewExponential(1.0/50), 50, 100)
	g2 := G(dist.NewExponential(1.0/200), 50, 100)
	g3 := G(dist.NewExponential(1.0/1000), 50, 100)
	if !(g1 < g2 && g2 < g3) {
		t.Errorf("g should grow with delay scale: %v %v %v", g1, g2, g3)
	}
}

func TestGMonotoneInNSeq(t *testing.T) {
	d := dist.NewLognormal(4, 1.5)
	prev := -1.0
	for _, nseq := range []float64{8, 32, 128, 512} {
		g := G(d, 50, nseq)
		if g < prev-1e-9 {
			t.Errorf("g(%v) = %v < g(prev) = %v", nseq, g, prev)
		}
		prev = g
	}
}

func TestGExponentialClosedForm(t *testing.T) {
	// For Exp(λ) with Σ F(iΔt) = Σ (1−e^{−λiΔt}): the total shortfall
	// Σ_{i≥1} e^{−λiΔt} = 1/(e^{λΔt}−1), so g(nseq) for large nseq
	// approaches that constant.
	lambda, dt := 1.0/200.0, 50.0
	want := 1 / (math.Exp(lambda*dt) - 1)
	got := G(dist.NewExponential(lambda), dt, 5000)
	if math.Abs(got-want) > 0.01*want {
		t.Errorf("asymptotic g = %v, want %v", got, want)
	}
}

func TestWAConventionalBounds(t *testing.T) {
	d := dist.NewLognormal(4, 1.5)
	rc := WAConventional(d, 50, 512)
	if rc < 1 {
		t.Errorf("r_c = %v < 1", rc)
	}
	if math.IsNaN(WAConventional(d, 50, 0)) == false {
		t.Error("r_c with n=0 should be NaN")
	}
}

func TestWAConventionalOrderedStreamIsOne(t *testing.T) {
	rc := WAConventional(dist.NewUniform(0, 1), 50, 512)
	if math.Abs(rc-1) > 1e-6 {
		t.Errorf("r_c for ordered stream = %v, want 1", rc)
	}
}

func TestWAConventionalGrowsWithDisorder(t *testing.T) {
	rc1 := WAConventional(dist.NewLognormal(4, 1.5), 50, 256)
	rc2 := WAConventional(dist.NewLognormal(4, 2), 50, 256)
	rc3 := WAConventional(dist.NewLognormal(5, 2), 50, 256)
	if !(rc1 < rc2 && rc2 < rc3) {
		t.Errorf("r_c ordering wrong: %v %v %v", rc1, rc2, rc3)
	}
}

func TestWASeparationInvalidNSeq(t *testing.T) {
	d := dist.NewLognormal(4, 1.5)
	if est := WASeparation(d, 50, 512, 0); !math.IsNaN(est.WA) {
		t.Errorf("nseq=0: WA = %v, want NaN", est.WA)
	}
	if est := WASeparation(d, 50, 512, 512); !math.IsNaN(est.WA) {
		t.Errorf("nseq=n: WA = %v, want NaN", est.WA)
	}
}

func TestWASeparationOrderedStreamIsOne(t *testing.T) {
	est := WASeparation(dist.NewUniform(0, 1), 50, 512, 256)
	if est.WA != 1 {
		t.Errorf("r_s for ordered stream = %v, want 1", est.WA)
	}
	if !math.IsInf(est.NArrive, 1) {
		t.Errorf("phase length should be infinite, got %v", est.NArrive)
	}
}

func TestWASeparationAtLeastOne(t *testing.T) {
	d := dist.NewLognormal(5, 2)
	for _, nseq := range []int{32, 128, 256, 448} {
		est := WASeparation(d, 50, 512, nseq)
		if est.WA < 1 || math.IsNaN(est.WA) {
			t.Errorf("r_s(%d) = %v", nseq, est.WA)
		}
	}
}

func TestWASeparationMostlyOrderedApproachesTwo(t *testing.T) {
	// Fig. 2's scenario: few out-of-order points make π_s rewrite nearly
	// every phase point once — r_s near 2 while r_c stays near 1.
	d := dist.NewExponential(1.0 / 20) // delays ~20 vs Δt 50: rare disorder
	est := WASeparation(d, 50, 512, 256)
	rc := WAConventional(d, 50, 512)
	if est.WA < 1.5 {
		t.Errorf("r_s = %v, want near 2 for mostly-ordered stream", est.WA)
	}
	if rc > 1.2 {
		t.Errorf("r_c = %v, want near 1 for mostly-ordered stream", rc)
	}
	if est.WA <= rc {
		t.Error("π_s should lose when data are mostly in order (Fig. 2)")
	}
}

func TestWASeparationEstimateInternals(t *testing.T) {
	d := dist.NewLognormal(5, 2)
	est := WASeparation(d, 50, 512, 256)
	if est.NSeq != 256 || est.NNonseq != 256 {
		t.Errorf("capacities: %+v", est)
	}
	if est.G <= 0 {
		t.Errorf("g = %v, want > 0 for heavy disorder", est.G)
	}
	wantN := 256*256/est.G + 256
	if math.Abs(est.NArrive-wantN) > 1e-6*wantN {
		t.Errorf("NArrive = %v, want %v", est.NArrive, wantN)
	}
	x := 256 / est.G
	wantLast := (1 + x - math.Floor(x)) * 256
	if math.Abs(est.NSeqLast-wantLast) > 1e-6*wantLast {
		t.Errorf("NSeqLast = %v, want %v", est.NSeqLast, wantLast)
	}
}

func TestTuneChoosesConventionalForOrderedData(t *testing.T) {
	dec := Tune(dist.NewExponential(1.0/10), 50, 128)
	if dec.Policy != PolicyConventional {
		t.Errorf("ordered data: chose %v (rc=%v rs=%v nseq=%d)", dec.Policy, dec.Rc, dec.Rs, dec.NSeq)
	}
	if dec.Rc > 1.1 {
		t.Errorf("rc = %v, want ≈1", dec.Rc)
	}
}

func TestTuneChoosesSeparationForHeavyDisorder(t *testing.T) {
	// Heavy skewed delays: π_s accumulates out-of-order points and avoids
	// repeated rewrites, as in the paper's S-9 result (Fig. 11).
	dec := Tune(dist.NewLognormal(5, 2), 50, 128)
	if dec.Policy != PolicySeparation {
		t.Errorf("heavy disorder: chose %v (rc=%v rs=%v nseq=%d)", dec.Policy, dec.Rc, dec.Rs, dec.NSeq)
	}
	if dec.NSeq < 1 || dec.NSeq > 127 {
		t.Errorf("recommended nseq out of range: %d", dec.NSeq)
	}
}

func TestTuneCoarseMatchesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep is slow")
	}
	d := dist.NewLognormal(5, 1.75)
	coarse := TuneWithOpts(d, 50, 128, TuneOpts{})
	exact := TuneWithOpts(d, 50, 128, TuneOpts{Exhaustive: true, Step: 1})
	if coarse.Policy != exact.Policy {
		t.Errorf("policies differ: coarse %v vs exhaustive %v", coarse.Policy, exact.Policy)
	}
	// Coarse minimum should be within 2% of the true minimum.
	if coarse.Rs > exact.Rs*1.02 {
		t.Errorf("coarse Rs %v misses exhaustive %v", coarse.Rs, exact.Rs)
	}
	if coarse.Evaluations >= exact.Evaluations {
		t.Errorf("coarse used %d evals vs exhaustive %d", coarse.Evaluations, exact.Evaluations)
	}
}

func TestTuneSmallBudget(t *testing.T) {
	dec := Tune(dist.NewLognormal(4, 1.5), 50, 1)
	if dec.Policy != PolicyConventional {
		t.Errorf("n=1 must fall back to pi_c, got %v", dec.Policy)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyConventional.String() != "pi_c" || PolicySeparation.String() != "pi_s" {
		t.Error("policy names wrong")
	}
}

func TestGWithOffsetReducesG(t *testing.T) {
	// A positive offset makes each arrival more likely to be in-order, so
	// g must not increase; offset 0 must equal the default G.
	d := dist.NewLognormal(4, 1.75)
	g0 := G(d, 50, 200)
	gSame := GWithOffset(d, 50, 200, 0)
	if math.Abs(g0-gSame) > 1e-12 {
		t.Errorf("offset 0: %v vs %v", gSame, g0)
	}
	gOff := GWithOffset(d, 50, 200, d.Quantile(0.5))
	if gOff > g0 {
		t.Errorf("positive offset increased g: %v > %v", gOff, g0)
	}
	if gOff <= 0 {
		t.Errorf("gOff = %v, want > 0 for heavy disorder", gOff)
	}
}

func TestMeanOOODelayProperties(t *testing.T) {
	d := dist.NewLognormal(4, 1.5)
	m := MeanOOODelay(d, 50, 256)
	if m <= 0 {
		t.Fatalf("MeanOOODelay = %v", m)
	}
	// Conditional-on-late mean must exceed the unconditional mean.
	if m <= d.Mean() {
		t.Errorf("E[D|OOO] = %v should exceed E[D] = %v", m, d.Mean())
	}
	// Ordered workload: no out-of-order points, zero conditional mass.
	if got := MeanOOODelay(dist.NewUniform(0, 1), 50, 256); got != 0 {
		t.Errorf("ordered workload: %v", got)
	}
}

func TestGranularityCorrectionBounds(t *testing.T) {
	if got := granularityCorrection(0, 512); got != 0 {
		t.Errorf("zeta=0: %v", got)
	}
	if got := granularityCorrection(-1, 512); got != 0 {
		t.Errorf("zeta<0: %v", got)
	}
	if got := granularityCorrection(100, 0); got != 0 {
		t.Errorf("no tables: %v", got)
	}
	if got := granularityCorrection(100, 512); math.Abs(got-256) > 1e-6 {
		t.Errorf("saturated: %v, want ~256", got)
	}
	if got := granularityCorrection(0.1, 512); got <= 0 || got >= 256 {
		t.Errorf("partial: %v", got)
	}
}
