package query

import (
	"errors"
	"math"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/sstable"
)

// Aggregation support: monitoring dashboards rarely plot raw points — they
// downsample a generation-time range into fixed buckets (GROUP BY time
// windows in IoTDB/InfluxDB SQL dialects). Aggregate scans the engine once
// and folds points into per-bucket statistics, or — when the engine
// maintains compaction-time rollups — serves fully-covered table ranges
// from precomputed buckets (see rollup.go).

// ErrBadBucket is returned for non-positive bucket widths.
var ErrBadBucket = errors.New("query: bucket width must be positive")

// Bucket is one downsampled time window.
type Bucket struct {
	// Start is the bucket's inclusive lower generation-time bound; the
	// bucket covers [Start, Start+Width). Starts are epoch-aligned:
	// always an integer multiple of the width (floored toward −∞), so
	// identical data yields identical bucket boundaries regardless of the
	// query range — and query-time buckets line up with compaction-time
	// rollup windows.
	Start int64
	Count int64
	Min   float64
	Max   float64
	Sum   float64
	// First and Last are the values at the earliest and latest generation
	// times inside the bucket.
	First, Last float64
}

// Mean returns the bucket average (NaN for empty buckets, which are not
// emitted by Aggregate).
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return math.NaN()
	}
	return b.Sum / float64(b.Count)
}

// Aggregate downsamples [lo, hi] into epoch-aligned buckets of the given
// width. Empty buckets are omitted. Points are folded straight off a
// streaming snapshot iterator — the raw range is never materialized, so
// aggregating an arbitrarily large window costs O(buckets) memory and
// holds no engine lock — and tables whose clipped range no other source
// covers are answered from their precomputed rollup buckets when the
// width is a multiple of the rollup window (see AggregateSnapshot). The
// scan statistics of the underlying read are returned for cost
// accounting.
func Aggregate(e *lsm.Engine, lo, hi, width int64) ([]Bucket, lsm.ScanStats, error) {
	if width <= 0 {
		return nil, lsm.ScanStats{}, ErrBadBucket
	}
	return AggregateSnapshot(e.Snapshot(), lo, hi, width)
}

// PointIter is the streaming point source AggregateIter folds: satisfied
// by *lsm.MergeIterator.
type PointIter interface {
	Next() bool
	Point() series.Point
}

// AggregateIter folds an iterator's points (ascending generation time)
// into epoch-aligned buckets of the given width — each point lands in the
// bucket starting at floor(TG/width)*width — one pass, nothing
// materialized.
func AggregateIter(it PointIter, width int64) []Bucket {
	if width <= 0 {
		return nil
	}
	var out []Bucket
	var cur *Bucket
	for it.Next() {
		p := it.Point()
		start := sstable.BucketStart(p.TG, width)
		if cur == nil || cur.Start != start {
			out = append(out, Bucket{
				Start: start,
				Min:   p.V,
				Max:   p.V,
				First: p.V,
			})
			cur = &out[len(out)-1]
		}
		cur.Count++
		cur.Sum += p.V
		if p.V < cur.Min {
			cur.Min = p.V
		}
		if p.V > cur.Max {
			cur.Max = p.V
		}
		cur.Last = p.V
	}
	return out
}

// AggregatePoints folds already-fetched points (sorted by generation
// time) into epoch-aligned buckets of the given width.
func AggregatePoints(pts []series.Point, width int64) []Bucket {
	if len(pts) == 0 {
		return nil
	}
	return AggregateIter(&sliceIter{pts: pts}, width)
}

// sliceIter adapts a point slice to PointIter.
type sliceIter struct {
	pts []series.Point
	pos int
}

func (s *sliceIter) Next() bool {
	if s.pos >= len(s.pts) {
		return false
	}
	s.pos++
	return true
}

func (s *sliceIter) Point() series.Point { return s.pts[s.pos-1] }
