package query

import (
	"errors"
	"math"

	"repro/internal/lsm"
	"repro/internal/series"
)

// Aggregation support: monitoring dashboards rarely plot raw points — they
// downsample a generation-time range into fixed buckets (GROUP BY time
// windows in IoTDB/InfluxDB SQL dialects). Aggregate scans the engine once
// and folds points into per-bucket statistics.

// ErrBadBucket is returned for non-positive bucket widths.
var ErrBadBucket = errors.New("query: bucket width must be positive")

// Bucket is one downsampled time window.
type Bucket struct {
	// Start is the bucket's inclusive lower generation-time bound; the
	// bucket covers [Start, Start+Width).
	Start int64
	Count int64
	Min   float64
	Max   float64
	Sum   float64
	// First and Last are the values at the earliest and latest generation
	// times inside the bucket.
	First, Last float64
}

// Mean returns the bucket average (NaN for empty buckets, which are not
// emitted by Aggregate).
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return math.NaN()
	}
	return b.Sum / float64(b.Count)
}

// Aggregate downsamples [lo, hi] into buckets of the given width. Empty
// buckets are omitted. The scan statistics of the underlying engine scan
// are returned for cost accounting.
func Aggregate(e *lsm.Engine, lo, hi, width int64) ([]Bucket, lsm.ScanStats, error) {
	if width <= 0 {
		return nil, lsm.ScanStats{}, ErrBadBucket
	}
	pts, st := e.Scan(lo, hi)
	return AggregatePoints(pts, lo, width), st, nil
}

// AggregatePoints folds already-fetched points (sorted by generation time)
// into buckets anchored at origin with the given width.
func AggregatePoints(pts []series.Point, origin, width int64) []Bucket {
	if width <= 0 || len(pts) == 0 {
		return nil
	}
	var out []Bucket
	var cur *Bucket
	for _, p := range pts {
		start := origin + (p.TG-origin)/width*width
		if p.TG < origin {
			// Floor division toward -inf for points before the origin.
			start = origin + ((p.TG-origin-width+1)/width)*width
		}
		if cur == nil || cur.Start != start {
			out = append(out, Bucket{
				Start: start,
				Min:   p.V,
				Max:   p.V,
				First: p.V,
			})
			cur = &out[len(out)-1]
		}
		cur.Count++
		cur.Sum += p.V
		if p.V < cur.Min {
			cur.Min = p.V
		}
		if p.V > cur.Max {
			cur.Max = p.V
		}
		cur.Last = p.V
	}
	return out
}
