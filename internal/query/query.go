// Package query implements the evaluation's two query workloads and their
// cost accounting (Section V-D):
//
//   - the recent-data workload, issued while writing: every few points a
//     range query asks for the latest "window" of generation time
//     (SELECT * FROM TS WHERE time > max_time − window);
//   - the historical workload, with a uniformly random lower bound
//     (SELECT * WHERE time > rand AND time < rand + window).
//
// Latency is reported two ways: measured wall time of the in-memory scan,
// and a deterministic HDD cost model — per-file seek cost plus per-point
// read cost — which reproduces the paper's testbed trade-off: π_s reads
// fewer points (lower read amplification) but touches more, smaller
// SSTables (more seeks), which can make recent-data queries slower than
// under π_c (Fig. 12/13/14).
package query

import (
	"math/rand"
	"time"

	"repro/internal/lsm"
	"repro/internal/series"
)

// CostModel converts scan statistics into a modeled latency in
// nanoseconds.
type CostModel struct {
	// SeekNs is charged per SSTable touched (HDD head movement).
	SeekNs float64
	// PointNs is charged per point read from disk (whole touched tables).
	PointNs float64
	// BaseNs is the fixed per-query overhead.
	BaseNs float64
}

// DefaultHDD is a 7200 rpm HDD-flavoured cost model: ~5 ms per seek and
// ~1 µs per point (small rows, sequential within a table).
func DefaultHDD() CostModel {
	return CostModel{SeekNs: 5e6, PointNs: 1e3, BaseNs: 1e5}
}

// Latency returns the modeled latency for one scan.
func (m CostModel) Latency(st lsm.ScanStats) float64 {
	return m.BaseNs + m.SeekNs*float64(st.TablesTouched) + m.PointNs*float64(st.TablePoints)
}

// Result aggregates one workload's measurements for a single window
// length.
type Result struct {
	Window int64 // query window (generation-time units)
	// Queries is the number of queries issued.
	Queries int
	// AvgReadAmp is the mean read amplification (points read / points
	// returned) over queries that returned data.
	AvgReadAmp float64
	// AvgModelNs is the mean cost-model latency.
	AvgModelNs float64
	// AvgWallNs is the mean measured wall-clock latency of the scan.
	AvgWallNs float64
	// AvgTables is the mean number of SSTables touched.
	AvgTables float64
	// AvgResult is the mean number of points returned.
	AvgResult float64
}

// accumulator builds a Result incrementally.
type accumulator struct {
	window  int64
	queries int
	raSum   float64
	raN     int
	modelNs float64
	wallNs  float64
	tables  float64
	result  float64
}

func (a *accumulator) observe(st lsm.ScanStats, wall time.Duration, m CostModel) {
	a.queries++
	if st.ResultPoints > 0 {
		a.raSum += st.ReadAmplification()
		a.raN++
	}
	a.modelNs += m.Latency(st)
	a.wallNs += float64(wall.Nanoseconds())
	a.tables += float64(st.TablesTouched)
	a.result += float64(st.ResultPoints)
}

func (a *accumulator) result_() Result {
	r := Result{Window: a.window, Queries: a.queries}
	if a.raN > 0 {
		r.AvgReadAmp = a.raSum / float64(a.raN)
	}
	if a.queries > 0 {
		q := float64(a.queries)
		r.AvgModelNs = a.modelNs / q
		r.AvgWallNs = a.wallNs / q
		r.AvgTables = a.tables / q
		r.AvgResult = a.result / q
	}
	return r
}

// RunRecent ingests ps into e and, every queryEvery points, issues one
// recent-data query per window length: Scan(maxWritten − window,
// maxWritten], where maxWritten is the largest generation time the client
// has written so far (the paper's client records exactly this). It returns
// one Result per window.
func RunRecent(e *lsm.Engine, ps []series.Point, windows []int64, queryEvery int, m CostModel) ([]Result, error) {
	if queryEvery < 1 {
		queryEvery = 1
	}
	accs := make([]accumulator, len(windows))
	for i, w := range windows {
		accs[i].window = w
	}
	var maxWritten int64
	haveMax := false
	for i, p := range ps {
		if err := e.Put(p); err != nil {
			return nil, err
		}
		if !haveMax || p.TG > maxWritten {
			maxWritten = p.TG
			haveMax = true
		}
		if (i+1)%queryEvery != 0 {
			continue
		}
		for wi, w := range windows {
			start := time.Now()
			_, st, err := e.Scan(maxWritten-w, maxWritten)
			if err != nil {
				return nil, err
			}
			accs[wi].observe(st, time.Since(start), m)
		}
	}
	out := make([]Result, len(accs))
	for i := range accs {
		out[i] = accs[i].result_()
	}
	return out, nil
}

// RunHistorical issues queries random ranges against an already-loaded
// engine: for each window length, queries uniformly random lower bounds
// with upper bound lo + window, never exceeding the engine's maximum
// generation time (matching Section V-D2). It returns one Result per
// window.
func RunHistorical(e *lsm.Engine, windows []int64, queries int, seed int64, m CostModel) []Result {
	rng := rand.New(rand.NewSource(seed))
	maxTG, ok := e.MaxTG()
	out := make([]Result, len(windows))
	for wi, w := range windows {
		acc := accumulator{window: w}
		if ok {
			span := maxTG - w
			if span < 1 {
				span = 1
			}
			for q := 0; q < queries; q++ {
				lo := rng.Int63n(span)
				start := time.Now()
				_, st, err := e.Scan(lo, lo+w)
				if err != nil {
					// A benchmark engine is memory-backed; a read fault here
					// means the workload is invalid, so count nothing.
					continue
				}
				acc.observe(st, time.Since(start), m)
			}
		}
		out[wi] = acc.result_()
	}
	return out
}
