package query

import (
	"math"
	"testing"

	"repro/internal/lsm"
	"repro/internal/series"
)

func TestAggregatePointsBasic(t *testing.T) {
	pts := []series.Point{
		{TG: 0, V: 1}, {TG: 5, V: 3}, {TG: 9, V: 2}, // bucket [0,10)
		{TG: 10, V: 10},                 // bucket [10,20)
		{TG: 25, V: -1}, {TG: 29, V: 4}, // bucket [20,30)
	}
	bs := AggregatePoints(pts, 10)
	if len(bs) != 3 {
		t.Fatalf("%d buckets", len(bs))
	}
	b0 := bs[0]
	if b0.Start != 0 || b0.Count != 3 || b0.Min != 1 || b0.Max != 3 || b0.Sum != 6 {
		t.Errorf("bucket 0: %+v", b0)
	}
	if b0.First != 1 || b0.Last != 2 {
		t.Errorf("bucket 0 first/last: %+v", b0)
	}
	if got := b0.Mean(); got != 2 {
		t.Errorf("bucket 0 mean: %v", got)
	}
	if bs[1].Start != 10 || bs[1].Count != 1 {
		t.Errorf("bucket 1: %+v", bs[1])
	}
	if bs[2].Start != 20 || bs[2].Min != -1 || bs[2].Max != 4 {
		t.Errorf("bucket 2: %+v", bs[2])
	}
}

func TestAggregatePointsEmptyAndBadWidth(t *testing.T) {
	if got := AggregatePoints(nil, 10); got != nil {
		t.Errorf("empty input: %v", got)
	}
	if got := AggregatePoints([]series.Point{{TG: 1}}, 0); got != nil {
		t.Errorf("zero width: %v", got)
	}
}

func TestAggregatePointsSkipsEmptyBuckets(t *testing.T) {
	pts := []series.Point{{TG: 0, V: 1}, {TG: 100, V: 2}}
	bs := AggregatePoints(pts, 10)
	if len(bs) != 2 {
		t.Fatalf("%d buckets, want 2 (gaps skipped)", len(bs))
	}
	if bs[1].Start != 100 {
		t.Errorf("second bucket start %d", bs[1].Start)
	}
}

func TestAggregatePointsNegativeTGFloor(t *testing.T) {
	pts := []series.Point{{TG: -15, V: 1}, {TG: -5, V: 2}, {TG: 5, V: 3}}
	bs := AggregatePoints(pts, 10)
	if len(bs) != 3 {
		t.Fatalf("%d buckets: %+v", len(bs), bs)
	}
	if bs[0].Start != -20 || bs[1].Start != -10 || bs[2].Start != 0 {
		t.Errorf("starts: %d %d %d", bs[0].Start, bs[1].Start, bs[2].Start)
	}
}

// TestAggregateEpochAlignedAnchoring is the regression test for the
// lo-anchored bucket bug: buckets used to be anchored at the request's
// lo, so the same data produced different bucket boundaries for
// different query ranges. Starts must be epoch-aligned multiples of the
// width, independent of lo.
func TestAggregateEpochAlignedAnchoring(t *testing.T) {
	e, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for tg := int64(100); tg <= 160; tg += 10 {
		if err := e.Put(series.Point{TG: tg, V: float64(tg)}); err != nil {
			t.Fatal(err)
		}
	}
	aligned, _, err := Aggregate(e, 0, 1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	// A query range starting mid-bucket must produce the same bucket
	// boundaries for the points it covers.
	offset, _, err := Aggregate(e, 95, 1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range [][]Bucket{aligned, offset} {
		for _, b := range bs {
			if b.Start%50 != 0 {
				t.Fatalf("bucket start %d not aligned to width 50 (buckets %+v)", b.Start, bs)
			}
		}
	}
	if len(aligned) != len(offset) {
		t.Fatalf("aligned %d buckets vs offset %d", len(aligned), len(offset))
	}
	for i := range aligned {
		if aligned[i] != offset[i] {
			t.Fatalf("bucket %d differs across query ranges: %+v vs %+v", i, aligned[i], offset[i])
		}
	}
	if aligned[0].Start != 100 || aligned[len(aligned)-1].Start != 150 {
		t.Fatalf("unexpected bucket starts: %+v", aligned)
	}
}

func TestBucketMeanEmpty(t *testing.T) {
	if !math.IsNaN((Bucket{}).Mean()) {
		t.Error("empty bucket mean should be NaN")
	}
}

func TestAggregateAgainstEngine(t *testing.T) {
	e, err := lsm.Open(lsm.Config{Policy: lsm.Separation, MemBudget: 64, SeqCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// 1000 points, value = TG; buckets of 100 TG units with 10 points each.
	for i := int64(0); i < 1000; i++ {
		tg := i * 10
		if err := e.Put(series.Point{TG: tg, TA: tg, V: float64(tg)}); err != nil {
			t.Fatal(err)
		}
	}
	bs, st, err := Aggregate(e, 0, 9990, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 100 {
		t.Fatalf("%d buckets, want 100", len(bs))
	}
	for i, b := range bs {
		wantStart := int64(i) * 100
		if b.Start != wantStart || b.Count != 10 {
			t.Fatalf("bucket %d: %+v", i, b)
		}
		if b.Min != float64(wantStart) || b.Max != float64(wantStart+90) {
			t.Fatalf("bucket %d min/max: %+v", i, b)
		}
		if b.Mean() != float64(wantStart)+45 {
			t.Fatalf("bucket %d mean: %v", i, b.Mean())
		}
	}
	if st.ResultPoints != 1000 {
		t.Errorf("scan stats: %+v", st)
	}
	if _, _, err := Aggregate(e, 0, 100, 0); err != ErrBadBucket {
		t.Errorf("bad width: %v", err)
	}
}
