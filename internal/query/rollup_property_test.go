package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
)

// rawFold is the ground truth: the plain streaming fold over every
// source, no rollup involvement.
func rawFold(t *testing.T, e *lsm.Engine, lo, hi, width int64) []Bucket {
	t.Helper()
	it := e.Snapshot().NewIterator(lo, hi)
	bks := AggregateIter(it, width)
	if err := it.Err(); err != nil {
		t.Fatalf("raw fold: %v", err)
	}
	return bks
}

func sameBuckets(a, b []Bucket) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRollupAggregateMatchesRawFold is the parity property test: for
// randomized out-of-order ingest across compaction policies, rollup
// windows, and query ranges — including unaligned range edges and
// crash/reopen — the rollup-served aggregate must be bit-identical to
// the raw fold. Values are dyadic (multiples of 0.25) so float sums
// reassociate exactly; any divergence is a planner bug, not float noise.
func TestRollupAggregateMatchesRawFold(t *testing.T) {
	policies := []string{"leveling", "tiering", "lazy-leveling"}
	for _, polName := range policies {
		for _, window := range []int64{10, 25, 100} {
			polName, window := polName, window
			t.Run(fmt.Sprintf("%s/w%d", polName, window), func(t *testing.T) {
				cpol, err := lsm.CompactionPolicyByName(polName)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(window*1000 + int64(len(polName))))
				backend := storage.NewMemBackend()
				cfg := lsm.Config{
					Policy:        lsm.Conventional,
					MemBudget:     48,
					SSTablePoints: 64,
					Levels:        3,
					GrowthFactor:  4,
					Compaction:    cpol,
					Backend:       backend,
					RollupWindow:  window,
					Seed:          window,
				}
				e, err := lsm.Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer func() { e.Close() }()

				// Out-of-order ingest: a shuffled permutation of distinct
				// generation times, values dyadic.
				const n = 1200
				tgs := rng.Perm(n)
				for _, i := range tgs {
					tg := int64(i) * 3
					v := float64(tg%17) * 0.25
					if err := e.Put(series.Point{TG: tg, TA: tg, V: v}); err != nil {
						t.Fatal(err)
					}
				}

				maxTG := int64(n-1) * 3
				queries := func(label string) {
					t.Helper()
					for q := 0; q < 40; q++ {
						width := window * (1 + int64(rng.Intn(4)))
						if q%5 == 4 {
							width = window + 1 // not a multiple: raw path
						}
						lo := int64(rng.Intn(n*3)) - 10
						hi := lo + int64(rng.Intn(n*2)) + 1
						got, st, err := Aggregate(e, lo, hi, width)
						if err != nil {
							t.Fatalf("%s: Aggregate(%d, %d, %d): %v", label, lo, hi, width, err)
						}
						want := rawFold(t, e, lo, hi, width)
						if !sameBuckets(got, want) {
							t.Fatalf("%s: Aggregate(%d, %d, %d) diverges from raw fold:\n got %+v\nwant %+v",
								label, lo, hi, width, got, want)
						}
						if st.RollupBuckets > 0 && width%window != 0 {
							t.Fatalf("%s: rollup served non-multiple width %d (window %d)", label, width, window)
						}
					}
					// Whole-range query: any uncontested table is fully
					// inside the range, so candidates must translate into
					// rollup-served buckets (the planner may not silently
					// drop them). Tiering/lazy-leveling can legitimately
					// have zero candidates — every range contested across
					// levels — in which case the aggregate must be all-raw.
					s := e.Snapshot()
					nCand := len(s.RollupCandidates(-100, maxTG+100))
					got, st, err := Aggregate(e, -100, maxTG+100, window)
					if err != nil {
						t.Fatal(err)
					}
					want := rawFold(t, e, -100, maxTG+100, window)
					if !sameBuckets(got, want) {
						t.Fatalf("%s: whole-range aggregate diverges", label)
					}
					if nCand > 0 && st.RollupBuckets == 0 {
						t.Errorf("%s: %d rollup candidates but the planner served none", label, nCand)
					}
					if nCand == 0 && st.RollupBuckets > 0 {
						t.Errorf("%s: no candidates yet %d rollup buckets served", label, st.RollupBuckets)
					}
				}

				// Phase 1: memtables still hold points; rollups may or may
				// not engage (contested ranges stay raw) but parity must hold.
				queries("pre-flush")

				if err := e.FlushAll(); err != nil {
					t.Fatal(err)
				}
				queries("post-flush")

				// Crash/reopen: recover from the backend (manifest +
				// sidecars) and re-verify parity and rollup engagement.
				if err := e.Close(); err != nil {
					t.Fatal(err)
				}
				e, err = lsm.Open(cfg)
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				queries("reopened")
			})
		}
	}
}

// TestRollupAggregateMemoryOnly pins the SetRollup path: a backend-less
// engine still computes rollups at flush and serves aggregates from them.
func TestRollupAggregateMemoryOnly(t *testing.T) {
	e, err := lsm.Open(lsm.Config{
		Policy:       lsm.Conventional,
		MemBudget:    32,
		RollupWindow: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for tg := int64(0); tg < 500; tg++ {
		if err := e.Put(series.Point{TG: tg, TA: tg, V: float64(tg % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got, st, err := Aggregate(e, 0, 499, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := rawFold(t, e, 0, 499, 20)
	if !sameBuckets(got, want) {
		t.Fatalf("memory-only rollup aggregate diverges:\n got %+v\nwant %+v", got, want)
	}
	if st.RollupBuckets == 0 {
		t.Error("memory-only engine never served from rollups")
	}
}
