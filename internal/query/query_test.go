package query

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/workload"
)

func newEngine(t *testing.T, pol lsm.PolicyKind, seqCap int) *lsm.Engine {
	t.Helper()
	e, err := lsm.Open(lsm.Config{Policy: pol, MemBudget: 64, SeqCapacity: seqCap, SSTablePoints: 64})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCostModelLatency(t *testing.T) {
	m := CostModel{SeekNs: 100, PointNs: 1, BaseNs: 10}
	st := lsm.ScanStats{TablesTouched: 3, TablePoints: 50}
	if got := m.Latency(st); got != 10+300+50 {
		t.Errorf("Latency = %v", got)
	}
	if d := DefaultHDD(); d.SeekNs <= d.PointNs {
		t.Error("HDD model must be seek-dominated")
	}
}

func TestRunRecentBasics(t *testing.T) {
	e := newEngine(t, lsm.Conventional, 0)
	defer e.Close()
	ps := workload.Synthetic(5000, 50, dist.NewLognormal(4, 1.5), 1)
	windows := []int64{500, 1000, 5000}
	res, err := RunRecent(e, ps, windows, 100, DefaultHDD())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for i, r := range res {
		if r.Window != windows[i] {
			t.Errorf("result %d window %d", i, r.Window)
		}
		if r.Queries != 50 {
			t.Errorf("window %d: %d queries, want 50", r.Window, r.Queries)
		}
		if r.AvgModelNs <= 0 {
			t.Errorf("window %d: no model latency", r.Window)
		}
	}
	// Longer window ⇒ more points returned and higher latency (paper's
	// phenomenon (1) in Fig. 13).
	if !(res[0].AvgResult < res[1].AvgResult && res[1].AvgResult < res[2].AvgResult) {
		t.Errorf("result sizes not increasing: %+v", res)
	}
	if !(res[0].AvgModelNs <= res[1].AvgModelNs && res[1].AvgModelNs <= res[2].AvgModelNs) {
		t.Errorf("latency not increasing with window: %v %v %v",
			res[0].AvgModelNs, res[1].AvgModelNs, res[2].AvgModelNs)
	}
	// Longer window ⇒ lower read amplification (phenomenon (2) in
	// Fig. 12).
	if !(res[2].AvgReadAmp <= res[0].AvgReadAmp) {
		t.Errorf("RA should fall with window: %v -> %v", res[0].AvgReadAmp, res[2].AvgReadAmp)
	}
}

func TestRecentSeparationLowerRAMoreFiles(t *testing.T) {
	// The paper's Fig. 12: π_s has lower read amplification; its smaller
	// SSTables mean more files touched.
	ps := workload.Synthetic(20000, 50, dist.NewLognormal(5, 1.75), 2)
	ec := newEngine(t, lsm.Conventional, 0)
	es := newEngine(t, lsm.Separation, 16) // small Cseq -> small flushed tables
	defer ec.Close()
	defer es.Close()
	w := []int64{5000}
	rc, err := RunRecent(ec, ps, w, 200, DefaultHDD())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunRecent(es, ps, w, 200, DefaultHDD())
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].AvgReadAmp >= rc[0].AvgReadAmp {
		t.Errorf("pi_s RA %v should undercut pi_c %v", rs[0].AvgReadAmp, rc[0].AvgReadAmp)
	}
	if rs[0].AvgTables <= rc[0].AvgTables {
		t.Errorf("pi_s tables %v should exceed pi_c %v", rs[0].AvgTables, rc[0].AvgTables)
	}
}

func TestRunHistoricalBasics(t *testing.T) {
	e := newEngine(t, lsm.Separation, 32)
	defer e.Close()
	ps := workload.Synthetic(10000, 50, dist.NewLognormal(4, 1.75), 3)
	for _, p := range ps {
		if err := e.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	res := RunHistorical(e, []int64{1000, 10000}, 50, 4, DefaultHDD())
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.Queries != 50 {
			t.Errorf("window %d: %d queries", r.Window, r.Queries)
		}
	}
	if res[1].AvgResult <= res[0].AvgResult {
		t.Errorf("longer window should return more: %v vs %v", res[1].AvgResult, res[0].AvgResult)
	}
}

func TestRunHistoricalEmptyEngine(t *testing.T) {
	e := newEngine(t, lsm.Conventional, 0)
	defer e.Close()
	res := RunHistorical(e, []int64{100}, 10, 5, DefaultHDD())
	if len(res) != 1 || res[0].Queries != 0 {
		t.Errorf("empty engine: %+v", res)
	}
}

func TestRunRecentQueryEveryClamp(t *testing.T) {
	e := newEngine(t, lsm.Conventional, 0)
	defer e.Close()
	ps := workload.Synthetic(100, 50, dist.NewUniform(0, 10), 6)
	res, err := RunRecent(e, ps, []int64{100}, 0, DefaultHDD()) // clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Queries != 100 {
		t.Errorf("queries = %d, want one per point", res[0].Queries)
	}
}
