package query

import (
	"runtime"
	"sync"
)

// Fan-out support for multi-series queries: a matcher query resolves to a
// set of series, and each series' range read is an independent unit of
// work dominated by backend I/O (ranged block reads, possibly remote).
// Pool bounds how many of those reads run at once — concurrency is a
// DB-wide knob, not O(matched series) goroutines — while still
// overlapping their I/O waits.

// DefaultWorkers sizes a fan-out pool when the caller does not: four
// workers per scheduler thread, clamped to [4, 32]. Fan-out tasks spend
// most of their time blocked on backend reads, so oversubscribing the
// CPUs is the point — on a one-core box a pool of four still overlaps
// four in-flight reads.
func DefaultWorkers() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 32 {
		n = 32
	}
	return n
}

// Pool is a bounded worker pool for query fan-out. Tasks submitted with
// Run execute on one of a fixed set of workers; after Close, Run degrades
// to executing the task inline in the caller, so submitters never block
// on a pool that is shutting down.
type Pool struct {
	workers int
	tasks   chan func()
	done    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
}

// NewPool starts a pool with the given worker count (0 or negative
// selects DefaultWorkers).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func()),
		done:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case fn := <-p.tasks:
					fn()
				case <-p.done:
					return
				}
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn on a pool worker, blocking until a worker accepts it.
// If the pool has been closed, fn runs inline in the caller instead —
// submitters always make progress.
func (p *Pool) Run(fn func()) {
	select {
	case p.tasks <- fn:
	case <-p.done:
		fn()
	}
}

// Close stops the workers and waits for in-flight tasks to finish.
// Idempotent.
func (p *Pool) Close() {
	p.once.Do(func() {
		close(p.done)
		p.wg.Wait()
	})
}
