package query

import (
	"math"
	"sort"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/sstable"
)

// Rollup-served aggregation. A table whose clipped query range no other
// snapshot source covers (lsm.Snapshot.RollupCandidates) owns every
// generation time in that range, so its compaction-time rollup buckets
// are exact over it. AggregateSnapshot serves such tables from their
// rollups — O(buckets) work instead of O(points) block decodes — and
// folds everything else raw:
//
//   - rollup windows that lie fully inside the query range (or whose
//     straddling side the table does not reach past) are merged as
//     precomputed partial buckets;
//   - the candidate's leftover edges — partial windows at the query
//     boundaries — are raw-scanned from just that table's blocks;
//   - all non-candidate sources (memtables, L0, contested or
//     rollup-less tables) stream through the usual merge iterator.
//
// Partial buckets from different sources may meet in one query bucket
// (a rollup window at a table boundary, the neighbouring table's window
// for the same epoch, raw edge points). The merge is exact because the
// sources are time-disjoint and each partial carries its edge times:
// Count/Min/Max are order-independent, Sum reassociates (bit-exact
// whenever the values sum exactly, e.g. integral/dyadic samples), and
// First/Last resolve by comparing FirstTG/LastTG. The property test in
// rollup_property_test.go pins parity with the raw fold.

// partialBucket accumulates one query bucket from time-disjoint partial
// contributions (raw points and rollup buckets).
type partialBucket struct {
	count           int64
	min, max, sum   float64
	first, last     float64
	firstTG, lastTG int64
}

func (pb *partialBucket) add(count int64, min, max, sum, first, last float64, firstTG, lastTG int64) {
	if pb.count == 0 {
		*pb = partialBucket{count: count, min: min, max: max, sum: sum,
			first: first, last: last, firstTG: firstTG, lastTG: lastTG}
		return
	}
	pb.count += count
	pb.sum += sum
	if min < pb.min {
		pb.min = min
	}
	if max > pb.max {
		pb.max = max
	}
	if firstTG < pb.firstTG {
		pb.first, pb.firstTG = first, firstTG
	}
	if lastTG > pb.lastTG {
		pb.last, pb.lastTG = last, lastTG
	}
}

// bucketAccum keys partial buckets by epoch-aligned query bucket start.
type bucketAccum struct {
	width   int64
	buckets map[int64]*partialBucket
}

func newBucketAccum(width int64) *bucketAccum {
	return &bucketAccum{width: width, buckets: make(map[int64]*partialBucket)}
}

func (a *bucketAccum) at(start int64) *partialBucket {
	pb := a.buckets[start]
	if pb == nil {
		pb = &partialBucket{}
		a.buckets[start] = pb
	}
	return pb
}

func (a *bucketAccum) addPoint(p series.Point) {
	a.at(sstable.BucketStart(p.TG, a.width)).add(1, p.V, p.V, p.V, p.V, p.V, p.TG, p.TG)
}

// addRollup folds one rollup bucket. Because the rollup window divides
// the query width and both are epoch-aligned, the whole window lies in a
// single query bucket — the one containing its start.
func (a *bucketAccum) addRollup(rb sstable.RollupBucket) {
	a.at(sstable.BucketStart(rb.Start, a.width)).
		add(rb.Count, rb.Min, rb.Max, rb.Sum, rb.First, rb.Last, rb.FirstTG, rb.LastTG)
}

func (a *bucketAccum) result() []Bucket {
	starts := make([]int64, 0, len(a.buckets))
	for s := range a.buckets {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]Bucket, 0, len(starts))
	for _, s := range starts {
		pb := a.buckets[s]
		out = append(out, Bucket{Start: s, Count: pb.count, Min: pb.min,
			Max: pb.max, Sum: pb.sum, First: pb.first, Last: pb.last})
	}
	return out
}

// rollupPlan is one accepted candidate: the rollup buckets to merge and
// the edge sub-ranges to raw-scan from the candidate's own blocks.
type rollupPlan struct {
	cand    lsm.RollupCandidate
	buckets []sstable.RollupBucket // the usable, pre-aggregated windows
	raw     [][2]int64             // leftover [lo, hi] edge ranges, possibly empty
}

// planCandidate decides how much of a candidate's clipped range
// [c.Lo, c.Hi] its rollup can answer for a query over [lo, hi]. A rollup
// window is usable unless it straddles a query boundary the table
// extends past (then the window bakes in out-of-range points); leftover
// edges fall back to a raw scan of the candidate. Returns ok=false when
// no window is usable — the caller leaves the whole table on the raw
// path.
func planCandidate(c lsm.RollupCandidate, ru *sstable.Rollup, lo, hi int64) (rollupPlan, bool) {
	w := ru.Window
	// bLo is the lowest usable window start. With table points below lo,
	// windows before the first fully-in-range one are tainted.
	bLo := int64(math.MinInt64)
	if c.Table.MinTG() < lo {
		bLo = sstable.BucketStart(lo, w)
		if bLo < lo {
			if bLo > math.MaxInt64-w {
				return rollupPlan{}, false
			}
			bLo += w
		}
	}
	// bHi is the highest usable window start: windows must end by hi when
	// the table extends past it.
	bHi := int64(math.MaxInt64)
	if c.Table.MaxTG() > hi {
		if hi < math.MinInt64+w {
			return rollupPlan{}, false
		}
		bHi = sstable.BucketStart(hi-w+1, w)
	}
	bks := ru.Buckets
	si := sort.Search(len(bks), func(i int) bool { return bks[i].Start >= bLo })
	sj := sort.Search(len(bks), func(i int) bool { return bks[i].Start > bHi })
	if sj <= si {
		return rollupPlan{}, false
	}
	p := rollupPlan{cand: c, buckets: bks[si:sj]}
	if c.Table.MinTG() < lo && bLo > c.Lo {
		edgeHi := bLo - 1
		if edgeHi > c.Hi {
			edgeHi = c.Hi
		}
		p.raw = append(p.raw, [2]int64{c.Lo, edgeHi})
	}
	if c.Table.MaxTG() > hi && bHi <= math.MaxInt64-w && bHi+w <= c.Hi {
		edgeLo := bHi + w
		if edgeLo < c.Lo {
			edgeLo = c.Lo
		}
		p.raw = append(p.raw, [2]int64{edgeLo, c.Hi})
	}
	return p, true
}

// AggregateSnapshot downsamples [lo, hi] of one snapshot into
// epoch-aligned buckets of the given width, serving uncontested tables
// from their rollups when the width is a multiple of the table's rollup
// window, and folding everything else (range edges, memtables, L0,
// contested tables) raw. The returned stats account the rollup buckets
// used (RollupBuckets) and the residual raw work (ResultPoints counts
// raw points folded). A rollup sidecar that fails to load silently falls
// back to raw blocks for that table: availability over optimization.
func AggregateSnapshot(s *lsm.Snapshot, lo, hi, width int64) ([]Bucket, lsm.ScanStats, error) {
	if width <= 0 {
		return nil, lsm.ScanStats{}, ErrBadBucket
	}
	var plans []rollupPlan
	for _, c := range s.RollupCandidates(lo, hi) {
		if width%c.Window != 0 {
			continue
		}
		ru, err := c.Rollup.Rollup()
		if err != nil || ru == nil {
			continue
		}
		if p, ok := planCandidate(c, ru, lo, hi); ok {
			plans = append(plans, p)
		}
	}
	if len(plans) == 0 {
		// Pure raw fold: identical work — and identical floating-point
		// operation order — to the pre-rollup path.
		it := s.NewIterator(lo, hi)
		buckets := AggregateIter(it, width)
		return buckets, it.Stats(), it.Err()
	}

	exclude := make(map[uint64]bool, len(plans))
	for _, p := range plans {
		exclude[p.cand.Table.ID()] = true
	}
	acc := newBucketAccum(width)

	// Residual: every source that is not a planned candidate.
	it := s.NewIteratorExcluding(lo, hi, exclude)
	for it.Next() {
		acc.addPoint(it.Point())
	}
	st := it.Stats()
	if err := it.Err(); err != nil {
		return nil, st, err
	}

	// Candidate edges (raw) and bodies (rollup buckets).
	var blocks sstable.BlockStats
	for _, p := range plans {
		for _, r := range p.raw {
			edge := p.cand.Table.Iter(r[0], r[1], &blocks)
			for edge.Next() {
				acc.addPoint(edge.Point())
				st.ResultPoints++
			}
			if err := edge.Err(); err != nil {
				return nil, st, err
			}
		}
		if len(p.raw) > 0 {
			// The edge scan touched the table after all; account it like
			// any other seek so read-amplification stays honest.
			st.TablesTouched++
			st.TablePoints += p.cand.Table.Len()
			if p.cand.Level < len(st.LevelTablesTouched) {
				st.LevelTablesTouched[p.cand.Level]++
			}
		}
		for _, rb := range p.buckets {
			acc.addRollup(rb)
		}
		st.RollupBuckets += len(p.buckets)
	}
	st.BlocksRead += blocks.BlocksRead
	st.BlocksCached += blocks.BlocksCached
	return acc.result(), st, nil
}
