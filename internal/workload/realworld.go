package workload

import (
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/series"
)

// S9Config parameterizes the simulated S-9 dataset (Weiss et al.: sensor
// data sent from Samsung Galaxy Tab 2 tablets to a Windows PC). The real
// dataset has 30k points, non-constant generation intervals, skewed delays
// with a long tail, and 7.05 % out-of-order points at a memory budget of 8.
type S9Config struct {
	N int // number of points; the real S-9 has 30_000
	// BaseIntervalMs is the nominal generation interval; the real S-9 has
	// strongly varying intervals, reproduced here with multiplicative
	// jitter.
	BaseIntervalMs float64
	// JitterSigma is the lognormal σ of the interval jitter.
	JitterSigma float64
	// BodyMu, BodySigma shape the bulk of delays (short transmissions).
	BodyMu, BodySigma float64
	// TailWeight is the fraction of points delayed by the heavy tail
	// (retransmissions after radio stalls).
	TailWeight float64
	// TailMu, TailSigma shape the heavy tail.
	TailMu, TailSigma float64
	Seed              int64
}

// DefaultS9 returns the calibrated configuration: ≈7 % of points
// out-of-order at memory budget 8 (Definition 3), matching the statistic
// reported for the real dataset.
func DefaultS9() S9Config {
	return S9Config{
		N:              30_000,
		BaseIntervalMs: 100,
		JitterSigma:    0.6,
		BodyMu:         3.0, // median ≈ 20 ms
		BodySigma:      0.8,
		TailWeight:     0.05,
		TailMu:         7.5, // median ≈ 1.8 s stalls
		TailSigma:      1.0,
		Seed:           9,
	}
}

// DelayDist returns the marginal delay distribution of the config, used by
// the models when treating S-9 parametrically.
func (c S9Config) DelayDist() dist.Distribution {
	return dist.NewMixture(
		dist.Component{Weight: 1 - c.TailWeight, Dist: dist.NewLognormal(c.BodyMu, c.BodySigma)},
		dist.Component{Weight: c.TailWeight, Dist: dist.NewLognormal(c.TailMu, c.TailSigma)},
	)
}

// S9Like generates the simulated S-9 stream: variable generation
// intervals (lognormal multiplicative jitter around the base interval) and
// mixture delays, sorted by arrival.
func S9Like(c S9Config) []series.Point {
	rng := rand.New(rand.NewSource(c.Seed))
	jitter := dist.NewLognormal(0, c.JitterSigma)
	delays := c.DelayDist()
	ps := make([]series.Point, c.N)
	var tg float64
	for i := range ps {
		tg += c.BaseIntervalMs * jitter.Sample(rng)
		delay := delays.Sample(rng)
		if delay < 0 {
			delay = 0
		}
		ps[i] = series.Point{TG: int64(tg), TA: int64(tg + delay), V: rng.Float64()}
	}
	// Integer truncation of jittered intervals can collide generation
	// timestamps; nudge duplicates forward (timestamps identify points).
	series.SortByTG(ps)
	for i := 1; i < len(ps); i++ {
		if ps[i].TG <= ps[i-1].TG {
			ps[i].TG = ps[i-1].TG + 1
			if ps[i].TA < ps[i].TG {
				ps[i].TA = ps[i].TG
			}
		}
	}
	series.SortByTA(ps)
	return ps
}

// HConfig parameterizes the simulated dataset H (Section VI: industrial
// vehicles reporting ~1 Hz telemetry to the vendor's data center). The
// real dataset has 1M points, Δt = 1 s, only 0.0375 % out-of-order points
// whose mean delay is ≈2.49 s, and a systematic re-send pattern: when the
// network stalls the device buffers points locally and re-transmits the
// batch roughly every 5×10⁴ ms, making consecutive delays strongly
// autocorrelated.
type HConfig struct {
	N    int   // number of points; the real H has 1_000_000
	DtMs int64 // generation interval (1000 ms)
	// BaseDelayMs is the typical immediate-transmission delay.
	BaseDelayMs float64
	// OutageRate is the per-point probability that a network outage
	// starts.
	OutageRate float64
	// OutageMeanMs is the mean outage duration (exponential).
	OutageMeanMs float64
	// ResendPeriodMs is the systematic re-send timer (~5×10⁴ ms).
	ResendPeriodMs float64
	Seed           int64
}

// DefaultH returns the calibrated configuration (≈0.04 % out-of-order at
// the experiment's memory budget, delays clustered below the ~5×10⁴ ms
// re-send period, mean out-of-order delay of a few seconds).
func DefaultH() HConfig {
	return HConfig{
		N:              1_000_000,
		DtMs:           1000,
		BaseDelayMs:    120,
		OutageRate:     1.0 / 25_000,
		OutageMeanMs:   10_000,
		ResendPeriodMs: 50_000,
		Seed:           6,
	}
}

// HLike generates the simulated H stream. Most points are delivered
// immediately with a small jittered delay. When an outage starts, points
// generated during it are buffered on the device; after the network
// recovers, fresh points flow immediately while the buffered backlog waits
// for the next periodic re-send tick (every ResendPeriodMs). The backlog
// then arrives in one burst behind newer points — those buffered points
// are the out-of-order ones, they share nearly identical arrival times
// (strongly autocorrelated delays), and their delays cluster at the
// systematic ≈5×10⁴ ms mode of Fig. 19.
func HLike(c HConfig) []series.Point {
	rng := rand.New(rand.NewSource(c.Seed))
	ps := make([]series.Point, c.N)
	i := 0
	for i < c.N {
		tg := int64(i+1) * c.DtMs
		if rng.Float64() < c.OutageRate {
			// Outage of exponential duration: buffer the points generated
			// while the network is down.
			dur := c.OutageMeanMs * rng.ExpFloat64()
			recovery := float64(tg) + dur
			// The device's periodic re-send timer fires at multiples of
			// ResendPeriodMs (offset by a random phase per outage); the
			// backlog leaves at the first tick after recovery.
			phase := rng.Float64() * c.ResendPeriodMs
			tick := (math.Floor((recovery-phase)/c.ResendPeriodMs) + 1) * c.ResendPeriodMs
			flushAt := tick + phase
			for i < c.N {
				tg = int64(i+1) * c.DtMs
				if float64(tg) >= recovery {
					break
				}
				ta := int64(flushAt) + int64(rng.Float64()*50)
				ps[i] = series.Point{TG: tg, TA: ta, V: rng.Float64()}
				i++
			}
			continue
		}
		delay := c.BaseDelayMs * (0.5 + rng.Float64())
		ps[i] = series.Point{TG: tg, TA: tg + int64(delay), V: rng.Float64()}
		i++
	}
	series.SortByTA(ps)
	return ps
}

// Delays extracts the delay of every point, in arrival order — the input
// to the analyzer and to delay-profile figures (Fig. 8, 19).
func Delays(ps []series.Point) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = float64(p.Delay())
	}
	return out
}
