package workload

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/series"
)

func TestSyntheticBasics(t *testing.T) {
	ps := Synthetic(1000, 50, dist.NewLognormal(4, 1.5), 1)
	if len(ps) != 1000 {
		t.Fatalf("len = %d", len(ps))
	}
	// Sorted by arrival.
	for i := 1; i < len(ps); i++ {
		if ps[i].TA < ps[i-1].TA {
			t.Fatal("not sorted by arrival")
		}
	}
	// Generation times are the arithmetic progression 50, 100, ...
	seen := make(map[int64]bool)
	for _, p := range ps {
		if p.TG%50 != 0 || p.TG < 50 || p.TG > 50*1000 {
			t.Fatalf("bad TG %d", p.TG)
		}
		if seen[p.TG] {
			t.Fatalf("duplicate TG %d", p.TG)
		}
		seen[p.TG] = true
		if p.TA < p.TG {
			t.Fatalf("negative delay: %v", p)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(100, 50, dist.NewLognormal(4, 1.5), 42)
	b := Synthetic(100, 50, dist.NewLognormal(4, 1.5), 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := Synthetic(100, 50, dist.NewLognormal(4, 1.5), 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTableIISpecs(t *testing.T) {
	specs := TableII()
	if len(specs) != 12 {
		t.Fatalf("Table II has %d specs", len(specs))
	}
	// M1–M6: dt 50; M7–M12: dt 10.
	for i, s := range specs {
		wantDt := int64(50)
		if i >= 6 {
			wantDt = 10
		}
		if s.Dt != wantDt {
			t.Errorf("%s: dt = %d, want %d", s.Name, s.Dt, wantDt)
		}
	}
	// M1 vs M4: same σ, μ 4 vs 5. M1→M3: σ 1.5, 1.75, 2.
	if specs[0].Mu != 4 || specs[3].Mu != 5 || specs[0].Sigma != specs[3].Sigma {
		t.Errorf("M1/M4 mismatch: %+v %+v", specs[0], specs[3])
	}
	if specs[0].Sigma != 1.5 || specs[1].Sigma != 1.75 || specs[2].Sigma != 2 {
		t.Errorf("M1-M3 sigma progression wrong")
	}
	if specs[0].Name != "M1" || specs[11].Name != "M12" {
		t.Errorf("names wrong: %s %s", specs[0].Name, specs[11].Name)
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("M7")
	if !ok || s.Dt != 10 || s.Mu != 4 || s.Sigma != 1.5 {
		t.Errorf("ByName(M7) = %+v, %v", s, ok)
	}
	if _, ok := ByName("M13"); ok {
		t.Error("ByName(M13) should miss")
	}
}

func TestSpecStringAndGenerate(t *testing.T) {
	s, _ := ByName("M1")
	if s.String() == "" {
		t.Error("empty String()")
	}
	ps := s.Generate(500, 7)
	if len(ps) != 500 {
		t.Errorf("Generate: %d points", len(ps))
	}
}

func TestDynamicContinuousTimeline(t *testing.T) {
	ps := Dynamic(50, 3,
		Segment{Points: 100, Dist: dist.NewLognormal(4, 2)},
		Segment{Points: 100, Dist: dist.NewLognormal(4, 1)},
	)
	if len(ps) != 200 {
		t.Fatalf("len = %d", len(ps))
	}
	// Generation times must cover 50..10000 without duplicates.
	seen := make(map[int64]bool)
	for _, p := range ps {
		if seen[p.TG] {
			t.Fatalf("duplicate TG %d across segments", p.TG)
		}
		seen[p.TG] = true
	}
	if !seen[50] || !seen[100*50] || !seen[200*50] {
		t.Error("generation timeline not continuous across segments")
	}
}

func TestDriftingSigma(t *testing.T) {
	ps := DriftingSigma(500, 50, 5, []float64{2, 1.75, 1.5, 1.25, 1}, 11)
	if len(ps) != 500 {
		t.Fatalf("len = %d", len(ps))
	}
	// Later segments have smaller σ ⇒ disorder should decline: compare
	// inversion counts of first and last fifth.
	inv := func(ps []series.Point) int {
		n := 0
		maxTG := int64(math.MinInt64)
		for _, p := range ps {
			if p.TG < maxTG {
				n++
			}
			if p.TG > maxTG {
				maxTG = p.TG
			}
		}
		return n
	}
	if a, b := inv(ps[:100]), inv(ps[400:]); a <= b {
		t.Errorf("disorder should decline: first fifth %d inversions, last fifth %d", a, b)
	}
}

func TestS9LikeCalibration(t *testing.T) {
	cfg := DefaultS9()
	cfg.N = 30_000
	ps := S9Like(cfg)
	if len(ps) != cfg.N {
		t.Fatalf("len = %d", len(ps))
	}
	// Unique generation timestamps, sorted by arrival.
	seen := make(map[int64]bool, len(ps))
	for _, p := range ps {
		if seen[p.TG] {
			t.Fatal("duplicate TG")
		}
		seen[p.TG] = true
		if p.TA < p.TG {
			t.Fatalf("negative delay %v", p)
		}
	}
	// Out-of-order fraction at memory budget 8 must be near the real
	// dataset's 7.05%.
	ooo := series.CountOutOfOrder(ps, 8, math.MinInt64)
	frac := float64(ooo) / float64(len(ps))
	if frac < 0.04 || frac > 0.11 {
		t.Errorf("S-9 out-of-order fraction = %.4f, want ≈0.07", frac)
	}
}

func TestS9VariableIntervals(t *testing.T) {
	ps := S9Like(DefaultS9())
	series.SortByTG(ps)
	// Intervals must vary substantially (the real S-9 has no fixed Δt).
	var min, max int64 = math.MaxInt64, 0
	for i := 1; i < 1000; i++ {
		iv := ps[i].TG - ps[i-1].TG
		if iv < min {
			min = iv
		}
		if iv > max {
			max = iv
		}
	}
	if max < 2*min {
		t.Errorf("intervals too regular: min %d max %d", min, max)
	}
}

func TestHLikeCalibration(t *testing.T) {
	cfg := DefaultH()
	cfg.N = 200_000
	ps := HLike(cfg)
	if len(ps) != cfg.N {
		t.Fatalf("len = %d", len(ps))
	}
	// Counted with a small buffer (as for S-9): real H reports 0.0375%.
	// Accept the right order of magnitude.
	ooo := series.CountOutOfOrder(ps, 8, math.MinInt64)
	frac := float64(ooo) / float64(len(ps))
	if frac < 0.0001 || frac > 0.005 {
		t.Errorf("H out-of-order fraction = %.5f, want ≈0.0004", frac)
	}
	// Delays must cluster below the resend period with a mode near it.
	var over int
	for _, d := range Delays(ps) {
		if d > cfg.ResendPeriodMs+1000 {
			over++
		}
	}
	if over > cfg.N/1000 {
		t.Errorf("%d delays exceed the resend period; the systematic cap is broken", over)
	}
}

func TestHLikeAutocorrelatedDelays(t *testing.T) {
	cfg := DefaultH()
	cfg.N = 200_000
	cfg.OutageRate = 1.0 / 10_000 // more outages for a clearer signal
	ps := HLike(cfg)
	d := Delays(ps)
	// Lag-1 autocorrelation must be clearly positive (batched re-sends
	// give neighbouring points nearly identical delays).
	var mean float64
	for _, v := range d {
		mean += v
	}
	mean /= float64(len(d))
	var num, den float64
	for i := 1; i < len(d); i++ {
		num += (d[i] - mean) * (d[i-1] - mean)
	}
	for _, v := range d {
		den += (v - mean) * (v - mean)
	}
	if r := num / den; r < 0.3 {
		t.Errorf("lag-1 autocorrelation = %v, want strongly positive", r)
	}
}

func TestDelays(t *testing.T) {
	ps := []series.Point{{TG: 10, TA: 15}, {TG: 20, TA: 20}}
	d := Delays(ps)
	if len(d) != 2 || d[0] != 5 || d[1] != 0 {
		t.Errorf("Delays = %v", d)
	}
}
