package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/series"
)

// ReadCSV parses a point stream in the repository's interchange format:
// one point per line as "t_g,t_a[,value]", with blank lines and #-comment
// lines skipped. It is the inverse of cmd/datagen's output and the input
// format of cmd/analyzer and cmd/lsmdb.
func ReadCSV(r io.Reader) ([]series.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []series.Point
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p, err := ParseCSVLine(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseCSVLine parses one "t_g,t_a[,value]" record.
func ParseCSVLine(text string) (series.Point, error) {
	var p series.Point
	parts := strings.Split(text, ",")
	if len(parts) < 2 {
		return p, fmt.Errorf("want t_g,t_a[,value], got %q", text)
	}
	tg, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return p, fmt.Errorf("t_g: %w", err)
	}
	ta, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return p, fmt.Errorf("t_a: %w", err)
	}
	p.TG, p.TA = tg, ta
	if len(parts) >= 3 {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return p, fmt.Errorf("value: %w", err)
		}
		p.V = v
	}
	return p, nil
}

// WriteCSV emits points in the interchange format, with a header comment.
func WriteCSV(w io.Writer, ps []series.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# t_g,t_a,value"); err != nil {
		return err
	}
	for _, p := range ps {
		if _, err := fmt.Fprintf(bw, "%d,%d,%.6f\n", p.TG, p.TA, p.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}
