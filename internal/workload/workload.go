// Package workload generates the ingestion streams of the paper's
// evaluation: the twelve synthetic datasets of Table II (lognormal delays
// over a fixed generation interval), the dynamic stream whose delay
// distribution drifts over time (Fig. 10/17), and simulated stand-ins for
// the two real-world datasets, S-9 (mobile-to-server transmission; Fig. 8,
// 11, 18) and H (vehicle IIoT with systematic batch re-sends; Fig. 16, 19,
// 20) — see DESIGN.md §3 for the substitution rationale.
//
// All generators are deterministic given a seed and return points sorted
// by arrival time, which is the order the database ingests them.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/series"
)

// Synthetic generates n points with generation times i·Δt (i = 1..n) and
// i.i.d. delays drawn from d (negative samples clamp to 0), sorted by
// arrival. This is the recipe of Section V-A.
func Synthetic(n int, dt int64, d dist.Distribution, seed int64) []series.Point {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]series.Point, n)
	for i := range ps {
		tg := int64(i+1) * dt
		delay := int64(d.Sample(rng))
		if delay < 0 {
			delay = 0
		}
		ps[i] = series.Point{TG: tg, TA: tg + delay, V: rng.Float64()}
	}
	series.SortByTA(ps)
	return ps
}

// Spec describes one synthetic dataset of Table II.
type Spec struct {
	Name  string
	Dt    int64   // generation interval Δt
	Mu    float64 // lognormal μ
	Sigma float64 // lognormal σ
}

// Dist returns the delay distribution of the spec.
func (s Spec) Dist() dist.Lognormal { return dist.NewLognormal(s.Mu, s.Sigma) }

// Generate materializes n points of the dataset.
func (s Spec) Generate(n int, seed int64) []series.Point {
	return Synthetic(n, s.Dt, s.Dist(), seed)
}

// String formats the spec like the paper's Table II rows.
func (s Spec) String() string {
	return fmt.Sprintf("%s: dt=%d lognormal(mu=%g, sigma=%g)", s.Name, s.Dt, s.Mu, s.Sigma)
}

// TableII returns the twelve synthetic dataset specs M1–M12: Δt = 50 for
// M1–M6 and Δt = 10 for M7–M12, μ ∈ {4, 5}, σ ∈ {1.5, 1.75, 2}
// (reconstructed from the comparisons drawn in Section V-B: M1 vs M4 vary
// μ, M1→M3 vary σ, and the Δt = 10 group is M7–M12).
func TableII() []Spec {
	sigmas := []float64{1.5, 1.75, 2}
	mus := []float64{4, 5}
	var specs []Spec
	i := 1
	for _, dt := range []int64{50, 10} {
		for _, mu := range mus {
			for _, sigma := range sigmas {
				specs = append(specs, Spec{
					Name:  fmt.Sprintf("M%d", i),
					Dt:    dt,
					Mu:    mu,
					Sigma: sigma,
				})
				i++
			}
		}
	}
	return specs
}

// ByName returns the Table II spec with the given name (e.g. "M7").
func ByName(name string) (Spec, bool) {
	for _, s := range TableII() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Segment is one leg of a dynamic workload: Points arrivals drawn with
// delays from Dist.
type Segment struct {
	Points int
	Dist   dist.Distribution
}

// Dynamic concatenates segments into one stream with a continuous
// generation timeline (Fig. 10: σ drifting 2 → 1.75 → 1.5 → 1.25 → 1 every
// fifth of the stream). Sorting by arrival happens per segment, mirroring
// the paper's construction where each distribution regime is written
// through before the next begins.
func Dynamic(dt int64, seed int64, segments ...Segment) []series.Point {
	rng := rand.New(rand.NewSource(seed))
	var out []series.Point
	var base int64
	for _, seg := range segments {
		ps := make([]series.Point, seg.Points)
		for i := range ps {
			tg := base + int64(i+1)*dt
			delay := int64(seg.Dist.Sample(rng))
			if delay < 0 {
				delay = 0
			}
			ps[i] = series.Point{TG: tg, TA: tg + delay, V: rng.Float64()}
		}
		base += int64(seg.Points) * dt
		series.SortByTA(ps)
		out = append(out, ps...)
	}
	return out
}

// DriftingSigma builds the Fig. 10 stream: total points split evenly
// across the given σ values with fixed μ and Δt.
func DriftingSigma(total int, dt int64, mu float64, sigmas []float64, seed int64) []series.Point {
	per := total / len(sigmas)
	segs := make([]Segment, len(sigmas))
	for i, s := range sigmas {
		segs[i] = Segment{Points: per, Dist: dist.NewLognormal(mu, s)}
	}
	return Dynamic(dt, seed, segs...)
}
