package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/series"
)

func TestReadCSVBasic(t *testing.T) {
	in := `# header comment
100,105,1.5

200,201
300,333,-2.25
`
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []series.Point{
		{TG: 100, TA: 105, V: 1.5},
		{TG: 200, TA: 201, V: 0},
		{TG: 300, TA: 333, V: -2.25},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"justone",
		"a,b",
		"1,notanint",
		"1,2,notafloat",
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", bad)
		}
	}
}

func TestReadCSVWhitespaceTolerant(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("  10 , 20 , 3.5  \n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("%v, %v", got, err)
	}
	if got[0] != (series.Point{TG: 10, TA: 20, V: 3.5}) {
		t.Errorf("got %v", got[0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ps := S9Like(S9Config{
		N: 500, BaseIntervalMs: 100, JitterSigma: 0.5,
		BodyMu: 3, BodySigma: 0.8, TailWeight: 0.05, TailMu: 7, TailSigma: 1, Seed: 3,
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("round trip lost points: %d vs %d", len(got), len(ps))
	}
	for i := range ps {
		if got[i].TG != ps[i].TG || got[i].TA != ps[i].TA {
			t.Fatalf("point %d timestamps: %v vs %v", i, got[i], ps[i])
		}
		// Values round-trip at 6 decimal places.
		if diff := got[i].V - ps[i].V; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("point %d value: %v vs %v", i, got[i].V, ps[i].V)
		}
	}
}
