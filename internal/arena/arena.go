// Package arena provides sync.Pool-backed, size-classed buffer arenas for
// the per-point hot paths: SSTable block read buffers, encode/decode
// scratch space, and ingest/compaction point slices. Pooling these cuts
// the allocation churn that dominates block-granular reads and
// compaction-heavy (backfill) ingest — every block load used to allocate a
// raw byte buffer plus three decode scratch slices, all dead microseconds
// later.
//
// Ownership rules (see DESIGN.md §7.8):
//
//   - A Get hands the caller exclusive ownership of a slice whose contents
//     are undefined; the caller must fully overwrite what it reads.
//   - Put transfers ownership back. The caller must not retain any alias
//     into the slice past the Put — in particular, a slice must NEVER be
//     Put while a longer-lived structure (the block cache, an iterator, a
//     resident table) can still reach it.
//   - Dropping a Get slice without a Put is always safe: the GC reclaims
//     it and the pool merely misses a reuse.
//
// Buffers are pooled in power-of-two capacity classes. Only slices whose
// capacity is exactly a pooled class are accepted back, so append-grown
// buffers with odd capacities fall out naturally instead of polluting a
// class with undersized storage.
package arena

import (
	"math/bits"
	"sync"

	"repro/internal/series"
)

const (
	// minClassBits is the smallest pooled capacity class (1<<6 = 64
	// elements): below that the allocation is too cheap to be worth a
	// pool round-trip.
	minClassBits = 6
	// maxClassBits is the largest pooled capacity class (1<<22 elements);
	// larger one-off buffers go straight to the GC.
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1
)

// pool is a set of sync.Pools, one per power-of-two capacity class, for
// slices of one element type. Slice headers ride in pooled *[]T holders so
// a steady-state Get/Put cycle allocates nothing at all.
type pool[T any] struct {
	classes [numClasses]sync.Pool
	headers sync.Pool // spare *[]T holders, recycled between Get and Put
}

// classFor returns the class index whose capacity (1<<(class+minClassBits))
// is the smallest one holding n elements, or -1 when n is out of pooled
// range.
func classFor(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1))
	if b < minClassBits {
		b = minClassBits
	}
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// capClass returns the class index a slice of capacity c belongs to, or -1
// when c is not exactly a pooled class capacity.
func capClass(c int) int {
	if c <= 0 || c&(c-1) != 0 {
		return -1
	}
	b := bits.Len(uint(c)) - 1
	if b < minClassBits || b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// get returns a slice of length n with undefined contents, drawn from the
// pool when a buffer of the right class is available.
func (p *pool[T]) get(n int) []T {
	c := classFor(n)
	if c < 0 {
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		h := v.(*[]T)
		s := (*h)[:n]
		*h = nil
		p.headers.Put(h)
		return s
	}
	return make([]T, n, 1<<(c+minClassBits))
}

// put returns a slice to its capacity class. Slices whose capacity is not
// exactly a pooled class are dropped.
func (p *pool[T]) put(s []T) {
	c := capClass(cap(s))
	if c < 0 {
		return
	}
	var h *[]T
	if v := p.headers.Get(); v != nil {
		h = v.(*[]T)
	} else {
		h = new([]T)
	}
	*h = s[:0]
	p.classes[c].Put(h)
}

var (
	bytePool   pool[byte]
	pointPool  pool[series.Point]
	int64Pool  pool[int64]
	floatPool  pool[float64]
)

// GetBytes returns a byte slice of length n with undefined contents.
func GetBytes(n int) []byte { return bytePool.get(n) }

// PutBytes returns a byte slice to the arena. See the package ownership
// rules.
func PutBytes(b []byte) { bytePool.put(b) }

// GetPoints returns a point slice of length n with undefined contents.
// Callers that append pass the expected capacity and re-slice to [:0].
func GetPoints(n int) []series.Point { return pointPool.get(n) }

// PutPoints returns a point slice to the arena. Never Put a slice the
// block cache, a snapshot, or a live iterator may still reference.
func PutPoints(ps []series.Point) { pointPool.put(ps) }

// GetInt64s returns an int64 scratch slice of length n, undefined contents.
func GetInt64s(n int) []int64 { return int64Pool.get(n) }

// PutInt64s returns an int64 scratch slice to the arena.
func PutInt64s(v []int64) { int64Pool.put(v) }

// GetFloat64s returns a float64 scratch slice of length n, undefined
// contents.
func GetFloat64s(n int) []float64 { return floatPool.get(n) }

// PutFloat64s returns a float64 scratch slice to the arena.
func PutFloat64s(v []float64) { floatPool.put(v) }
