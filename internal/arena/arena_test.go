package arena

import (
	"testing"

	"repro/internal/series"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, -1},
		{-1, -1},
		{1, 0},
		{64, 0},
		{65, 1},
		{128, 1},
		{129, 2},
		{1 << 22, maxClassBits - minClassBits},
		{1<<22 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCapClass(t *testing.T) {
	cases := []struct {
		c, want int
	}{
		{0, -1},
		{63, -1},   // not a power of two
		{64, 0},    // smallest pooled class
		{96, -1},   // not a power of two
		{128, 1},
		{32, -1},   // below range
		{1 << 22, maxClassBits - minClassBits},
		{1 << 23, -1}, // above range
	}
	for _, c := range cases {
		if got := capClass(c.c); got != c.want {
			t.Errorf("capClass(%d) = %d, want %d", c.c, got, c.want)
		}
	}
}

// TestRoundTripReuse pins the pooling contract: a Put buffer of a pooled
// class comes back from the next same-class Get with the same backing
// array.
func TestRoundTripReuse(t *testing.T) {
	b := GetBytes(100) // class cap 128
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("GetBytes(100): len %d cap %d, want 100/128", len(b), cap(b))
	}
	b[0] = 0xAB
	// sync.Pool may legitimately drop a Put item (GC, per-P caches — the
	// race detector makes this more likely), so require reuse within a few
	// attempts rather than on the first.
	reused := false
	for i := 0; i < 16 && !reused; i++ {
		PutBytes(b)
		b2 := GetBytes(70) // same class
		if cap(b2) != 128 {
			t.Fatalf("GetBytes(70) after Put: cap %d, want 128", cap(b2))
		}
		reused = &b2[0] == &b[0]
		b = b2
	}
	if !reused {
		t.Error("GetBytes never reused the pooled buffer")
	}
}

func TestOddCapacityDropped(t *testing.T) {
	odd := make([]byte, 10, 100) // 100 is not a pooled class
	PutBytes(odd)                // must not panic, must not be handed out
	got := GetBytes(100)
	if cap(got) == 100 {
		t.Error("arena handed out a buffer with a non-class capacity")
	}
}

func TestTypedPools(t *testing.T) {
	ps := GetPoints(50)
	if len(ps) != 50 {
		t.Fatalf("GetPoints(50): len %d", len(ps))
	}
	ps[0] = series.Point{TG: 1, TA: 2, V: 3}
	PutPoints(ps)

	is := GetInt64s(200)
	if len(is) != 200 || cap(is) != 256 {
		t.Fatalf("GetInt64s(200): len %d cap %d", len(is), cap(is))
	}
	PutInt64s(is)

	fs := GetFloat64s(3) // below min class: plain allocation
	if len(fs) != 3 {
		t.Fatalf("GetFloat64s(3): len %d", len(fs))
	}
	PutFloat64s(fs) // dropped silently
}

// TestSteadyStateAllocs pins that a warmed-up Get/Put cycle allocates
// nothing: the headers pool recycles the *[]T holders.
func TestSteadyStateAllocs(t *testing.T) {
	// Warm up the class and header pools.
	PutBytes(GetBytes(4096))
	allocs := testing.AllocsPerRun(100, func() {
		b := GetBytes(4096)
		PutBytes(b)
	})
	if allocs > 0 {
		t.Errorf("steady-state GetBytes/PutBytes allocates %v per op, want 0", allocs)
	}
}

func BenchmarkGetPutBytes(b *testing.B) {
	PutBytes(GetBytes(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBytes(4096)
		PutBytes(buf)
	}
}
