package dist

import (
	"errors"
	"math"
)

// Parametric fitting: the paper's analyzer "will collect time-series data
// delays and generate the statistical profile of the delays, e.g., the
// probability distribution function (PDF) and cumulative distribution
// function (CDF)". The Empirical distribution is the non-parametric
// profile; the fitters here produce parametric candidates, whose smooth
// tails extrapolate beyond the observed sample — useful when the WA model
// must integrate past the largest delay seen so far.

// ErrFitInsufficient is returned when a sample cannot support a fit.
var ErrFitInsufficient = errors.New("dist: not enough usable samples to fit")

// FitLognormal returns the maximum-likelihood lognormal for the positive
// samples: μ̂ = mean(ln x), σ̂ = stddev(ln x). Non-positive samples are
// ignored (a delay of zero carries no lognormal likelihood); at least two
// distinct positive samples are required.
func FitLognormal(samples []float64) (Lognormal, error) {
	var n int
	var sum float64
	for _, x := range samples {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n < 2 {
		return Lognormal{}, ErrFitInsufficient
	}
	mu := sum / float64(n)
	var ss float64
	for _, x := range samples {
		if x > 0 {
			d := math.Log(x) - mu
			ss += d * d
		}
	}
	sigma := math.Sqrt(ss / float64(n-1))
	if sigma <= 0 {
		return Lognormal{}, ErrFitInsufficient
	}
	return NewLognormal(mu, sigma), nil
}

// FitExponential returns the maximum-likelihood exponential for the
// non-negative samples: λ̂ = 1/mean.
func FitExponential(samples []float64) (Exponential, error) {
	var n int
	var sum float64
	for _, x := range samples {
		if x >= 0 {
			sum += x
			n++
		}
	}
	if n < 2 || sum <= 0 {
		return Exponential{}, ErrFitInsufficient
	}
	return NewExponential(float64(n) / sum), nil
}

// FitUniform returns the uniform distribution over [min, max] of the
// samples, slightly widened so every sample has positive density.
func FitUniform(samples []float64) (Uniform, error) {
	if len(samples) < 2 {
		return Uniform{}, ErrFitInsufficient
	}
	lo, hi := samples[0], samples[0]
	for _, x := range samples {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi <= lo {
		return Uniform{}, ErrFitInsufficient
	}
	pad := (hi - lo) / float64(len(samples))
	return NewUniform(lo, hi+pad), nil
}

// FitResult is one candidate from FitBest.
type FitResult struct {
	Dist Distribution
	// KS is the one-sample Kolmogorov–Smirnov distance between the fitted
	// distribution and the sample's empirical CDF (lower is better).
	KS float64
}

// FitBest fits every parametric family to the samples, scores each with
// the KS distance against the empirical CDF, and returns them sorted best
// first. The Empirical distribution itself is appended last as the
// non-parametric fallback (its in-sample KS is ~0 by construction, so it
// is excluded from the ranking). At least 16 samples are required.
func FitBest(samples []float64) ([]FitResult, error) {
	if len(samples) < 16 {
		return nil, ErrFitInsufficient
	}
	emp := NewEmpirical(samples)
	var results []FitResult
	if d, err := FitLognormal(samples); err == nil {
		results = append(results, FitResult{Dist: d, KS: emp.KSDistanceTo(d)})
	}
	if d, err := FitExponential(samples); err == nil {
		results = append(results, FitResult{Dist: d, KS: emp.KSDistanceTo(d)})
	}
	if d, err := FitUniform(samples); err == nil {
		results = append(results, FitResult{Dist: d, KS: emp.KSDistanceTo(d)})
	}
	// Insertion sort by KS (tiny slice).
	for i := 1; i < len(results); i++ {
		for j := i; j > 0 && results[j].KS < results[j-1].KS; j-- {
			results[j], results[j-1] = results[j-1], results[j]
		}
	}
	results = append(results, FitResult{Dist: emp, KS: 0})
	return results, nil
}
