package dist

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
)

// Lognormal is the lognormal distribution LN(mu, sigma): ln X ~ N(mu, sigma²).
// It is the paper's primary delay model (all synthetic datasets M1–M12 draw
// delays from lognormals with μ ∈ {4, 5}, σ ∈ {1.5, 1.75, 2}).
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// NewLognormal returns LN(mu, sigma). sigma must be positive.
func NewLognormal(mu, sigma float64) Lognormal {
	if sigma <= 0 {
		panic("dist: lognormal sigma must be positive")
	}
	return Lognormal{Mu: mu, Sigma: sigma}
}

// PDF implements Distribution.
func (l Lognormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Distribution.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return numeric.NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile implements Distribution.
func (l Lognormal) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*numeric.InvNormalCDF(p))
}

// Mean implements Distribution.
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Sample implements Distribution.
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Name implements Distribution.
func (l Lognormal) Name() string {
	return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", l.Mu, l.Sigma)
}

// Exponential is the exponential distribution with rate lambda.
type Exponential struct {
	Lambda float64
}

// NewExponential returns Exp(lambda). lambda must be positive.
func NewExponential(lambda float64) Exponential {
	if lambda <= 0 {
		panic("dist: exponential lambda must be positive")
	}
	return Exponential{Lambda: lambda}
}

// PDF implements Distribution.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Lambda * math.Exp(-e.Lambda*x)
}

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Lambda
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Sample implements Distribution.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Lambda
}

// Name implements Distribution.
func (e Exponential) Name() string {
	return fmt.Sprintf("exponential(lambda=%g)", e.Lambda)
}

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct {
	A, B float64
}

// NewUniform returns U(a, b) with a < b.
func NewUniform(a, b float64) Uniform {
	if b <= a {
		panic("dist: uniform requires a < b")
	}
	return Uniform{A: a, B: b}
}

// PDF implements Distribution.
func (u Uniform) PDF(x float64) float64 {
	if x < u.A || x > u.B {
		return 0
	}
	return 1 / (u.B - u.A)
}

// CDF implements Distribution.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	}
	return (x - u.A) / (u.B - u.A)
}

// Quantile implements Distribution.
func (u Uniform) Quantile(p float64) float64 {
	p = numeric.Clamp(p, 0, 1)
	return u.A + p*(u.B-u.A)
}

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.A + rng.Float64()*(u.B-u.A)
}

// Name implements Distribution.
func (u Uniform) Name() string {
	return fmt.Sprintf("uniform(%g,%g)", u.A, u.B)
}

// Normal is the normal distribution N(mu, sigma²). Delays cannot be
// negative in the workload generators, which truncate samples at 0; the
// analytic PDF/CDF remain those of the untruncated normal (the mass below
// zero is negligible for the parameterizations used).
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns N(mu, sigma²). sigma must be positive.
func NewNormal(mu, sigma float64) Normal {
	if sigma <= 0 {
		panic("dist: normal sigma must be positive")
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// PDF implements Distribution.
func (n Normal) PDF(x float64) float64 {
	return numeric.NormalPDF((x-n.Mu)/n.Sigma) / n.Sigma
}

// CDF implements Distribution.
func (n Normal) CDF(x float64) float64 {
	return numeric.NormalCDF((x - n.Mu) / n.Sigma)
}

// Quantile implements Distribution.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*numeric.InvNormalCDF(numeric.Clamp(p, 0, 1))
}

// Mean implements Distribution.
func (n Normal) Mean() float64 { return n.Mu }

// Sample implements Distribution.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// Name implements Distribution.
func (n Normal) Name() string {
	return fmt.Sprintf("normal(mu=%g,sigma=%g)", n.Mu, n.Sigma)
}

// Pareto is the Pareto (type I) distribution with scale xm and shape alpha.
// It models extreme heavy-tailed delays such as recovery-after-outage
// backlogs.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// NewPareto returns Pareto(xm, alpha); both must be positive.
func NewPareto(xm, alpha float64) Pareto {
	if xm <= 0 || alpha <= 0 {
		panic("dist: pareto requires positive xm and alpha")
	}
	return Pareto{Xm: xm, Alpha: alpha}
}

// PDF implements Distribution.
func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

// CDF implements Distribution.
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile implements Distribution.
func (p Pareto) Quantile(q float64) float64 {
	switch {
	case q <= 0:
		return p.Xm
	case q >= 1:
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Mean implements Distribution. It is +Inf for alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Sample implements Distribution.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	return p.Quantile(rng.Float64())
}

// Name implements Distribution.
func (p Pareto) Name() string {
	return fmt.Sprintf("pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha)
}

// Weibull is the Weibull distribution with scale lambda and shape k.
type Weibull struct {
	LambdaScale float64
	K           float64
}

// NewWeibull returns Weibull(lambda, k); both must be positive.
func NewWeibull(lambda, k float64) Weibull {
	if lambda <= 0 || k <= 0 {
		panic("dist: weibull requires positive lambda and k")
	}
	return Weibull{LambdaScale: lambda, K: k}
}

// PDF implements Distribution.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if w.K < 1 {
			return math.Inf(1)
		}
		if w.K == 1 {
			return 1 / w.LambdaScale
		}
		return 0
	}
	z := x / w.LambdaScale
	return (w.K / w.LambdaScale) * math.Pow(z, w.K-1) * math.Exp(-math.Pow(z, w.K))
}

// CDF implements Distribution.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.LambdaScale, w.K))
}

// Quantile implements Distribution.
func (w Weibull) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return w.LambdaScale * math.Pow(-math.Log1p(-p), 1/w.K)
}

// Mean implements Distribution.
func (w Weibull) Mean() float64 {
	return w.LambdaScale * math.Gamma(1+1/w.K)
}

// Sample implements Distribution.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	return w.Quantile(rng.Float64())
}

// Name implements Distribution.
func (w Weibull) Name() string {
	return fmt.Sprintf("weibull(lambda=%g,k=%g)", w.LambdaScale, w.K)
}

// Degenerate is a point mass at V: every delay equals V exactly. It models
// a perfectly regular network and is useful in tests (all data in order
// when V is constant across points).
type Degenerate struct {
	V float64
}

// PDF implements Distribution. The density is a Dirac delta; PDF returns 0
// everywhere (callers integrate via CDF or use Sample/Mean).
func (d Degenerate) PDF(x float64) float64 { return 0 }

// CDF implements Distribution.
func (d Degenerate) CDF(x float64) float64 {
	if x < d.V {
		return 0
	}
	return 1
}

// Quantile implements Distribution.
func (d Degenerate) Quantile(p float64) float64 { return d.V }

// Mean implements Distribution.
func (d Degenerate) Mean() float64 { return d.V }

// Sample implements Distribution.
func (d Degenerate) Sample(rng *rand.Rand) float64 { return d.V }

// Name implements Distribution.
func (d Degenerate) Name() string {
	return fmt.Sprintf("degenerate(%g)", d.V)
}
