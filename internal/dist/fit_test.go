package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func samplesFrom(d Distribution, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func TestFitLognormalRecoversParameters(t *testing.T) {
	src := NewLognormal(4, 1.5)
	got, err := FitLognormal(samplesFrom(src, 50000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-4) > 0.05 {
		t.Errorf("mu = %v", got.Mu)
	}
	if math.Abs(got.Sigma-1.5) > 0.05 {
		t.Errorf("sigma = %v", got.Sigma)
	}
}

func TestFitLognormalIgnoresNonPositive(t *testing.T) {
	samples := append(samplesFrom(NewLognormal(2, 1), 1000, 2), 0, -5, -1)
	if _, err := FitLognormal(samples); err != nil {
		t.Errorf("fit with some non-positive samples: %v", err)
	}
	if _, err := FitLognormal([]float64{0, -1, -2}); !errors.Is(err, ErrFitInsufficient) {
		t.Errorf("all non-positive: %v", err)
	}
	if _, err := FitLognormal([]float64{5, 5, 5}); !errors.Is(err, ErrFitInsufficient) {
		t.Errorf("zero variance: %v", err)
	}
}

func TestFitExponentialRecoversRate(t *testing.T) {
	src := NewExponential(0.02)
	got, err := FitExponential(samplesFrom(src, 50000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Lambda-0.02) > 0.001 {
		t.Errorf("lambda = %v", got.Lambda)
	}
	if _, err := FitExponential([]float64{0}); !errors.Is(err, ErrFitInsufficient) {
		t.Errorf("single zero sample: %v", err)
	}
}

func TestFitUniformCoversSamples(t *testing.T) {
	src := NewUniform(10, 90)
	got, err := FitUniform(samplesFrom(src, 10000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got.A < 9 || got.A > 12 || got.B < 88 || got.B > 92 {
		t.Errorf("fitted [%v, %v]", got.A, got.B)
	}
	if _, err := FitUniform([]float64{5, 5}); !errors.Is(err, ErrFitInsufficient) {
		t.Errorf("degenerate sample: %v", err)
	}
}

func TestFitBestPicksTheRightFamily(t *testing.T) {
	cases := []struct {
		src      Distribution
		wantName string
	}{
		{NewLognormal(4, 1.5), "lognormal"},
		{NewExponential(0.01), "exponential"},
		{NewUniform(0, 500), "uniform"},
	}
	for _, tc := range cases {
		results, err := FitBest(samplesFrom(tc.src, 20000, 5))
		if err != nil {
			t.Fatal(err)
		}
		bestName := results[0].Dist.Name()
		if len(bestName) < len(tc.wantName) || bestName[:len(tc.wantName)] != tc.wantName {
			t.Errorf("source %s: best fit %s (KS=%v)", tc.src.Name(), bestName, results[0].KS)
		}
		if results[0].KS > 0.02 {
			t.Errorf("source %s: best KS %v too large", tc.src.Name(), results[0].KS)
		}
		// Empirical fallback always present at the end.
		if _, ok := results[len(results)-1].Dist.(*Empirical); !ok {
			t.Error("empirical fallback missing")
		}
	}
}

func TestFitBestRequiresSamples(t *testing.T) {
	if _, err := FitBest(make([]float64, 5)); !errors.Is(err, ErrFitInsufficient) {
		t.Errorf("tiny sample: %v", err)
	}
}

func TestFittedDistributionUsableByModels(t *testing.T) {
	// The fitted lognormal must expose working PDF/CDF/Quantile for the
	// WA models' quadrature.
	src := NewLognormal(5, 2)
	fit, err := FitLognormal(samplesFrom(src, 20000, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		x := fit.Quantile(p)
		if math.Abs(fit.CDF(x)-p) > 1e-9 {
			t.Errorf("fitted quantile/CDF inconsistent at %v", p)
		}
		// Close to the source's quantiles.
		if sx := src.Quantile(p); math.Abs(math.Log(x)-math.Log(sx)) > 0.15 {
			t.Errorf("fitted q%v = %v, source %v", p, x, sx)
		}
	}
}
