// Package dist provides the delay distributions used by the
// write-amplification models and the workload generators.
//
// The paper assumes transmission delays are i.i.d. draws from a known
// distribution with density f(x) and CDF F(x); the analyzer module fits an
// Empirical distribution to observed delays instead. All distributions here
// are over delay durations, so supports are effectively [0, ∞) — CDFs return
// 0 for negative arguments where the support demands it.
package dist

import (
	"math"
	"math/rand"

	"repro/internal/numeric"
)

// Distribution is a univariate continuous probability distribution. It is
// the f(x)/F(x) pair consumed by the models plus sampling for the workload
// generators.
type Distribution interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile, inverting CDF. p must be in [0, 1].
	Quantile(p float64) float64
	// Mean returns the expectation E[X].
	Mean() float64
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) float64
	// Name returns a short human-readable identifier for reports.
	Name() string
}

// quantileByInversion computes the p-quantile of d by numerically inverting
// its CDF; hi0 seeds the bracket expansion. Distributions with closed-form
// quantiles should not use this.
func quantileByInversion(d Distribution, p, lo, hi0 float64) float64 {
	if p <= 0 {
		return lo
	}
	if p >= 1 {
		return math.Inf(1)
	}
	x, err := numeric.SolveMonotone(d.CDF, p, lo, hi0, 1e-10)
	if err != nil {
		return math.NaN()
	}
	return x
}

// supportBoundaries returns integration break points for ∫ f(x)·g(x) dx over
// the support of d: the quantiles listed in qs. Models pass these to the
// segment integrators so heavy-tailed densities are resolved.
var defaultQuantiles = []float64{0, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 0.99999}

// IntegrationBoundaries returns ascending break points covering essentially
// all of d's mass, suitable for numeric.IntegrateSegments. The first
// boundary is max(0, q_0.000...) and the last reaches the 1-1e-9 quantile.
func IntegrationBoundaries(d Distribution) []float64 {
	bs := make([]float64, 0, len(defaultQuantiles)+1)
	prev := math.Inf(-1)
	for _, q := range defaultQuantiles {
		x := d.Quantile(q)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x > prev {
			bs = append(bs, x)
			prev = x
		}
	}
	tail := d.Quantile(1 - 1e-9)
	if !math.IsNaN(tail) && !math.IsInf(tail, 0) && tail > prev {
		bs = append(bs, tail)
	}
	if len(bs) < 2 {
		bs = []float64{0, 1}
	}
	return bs
}

// ExpectationOf returns E[g(X)] for X ~ d computed by quadrature over the
// integration boundaries of d.
func ExpectationOf(d Distribution, g func(float64) float64) float64 {
	f := func(x float64) float64 { return d.PDF(x) * g(x) }
	return numeric.GaussLegendreSegments(f, IntegrationBoundaries(d))
}
