package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpiricalBasics(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2, 5, 4})
	if e.N() != 5 {
		t.Errorf("N = %d", e.N())
	}
	if e.Min() != 1 || e.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", e.Min(), e.Max())
	}
	if got := e.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if got := e.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := e.CDF(5); got != 1 {
		t.Errorf("CDF(5) = %v", got)
	}
	if got := e.CDF(6); got != 1 {
		t.Errorf("CDF(6) = %v", got)
	}
}

func TestEmpiricalCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = rng.NormFloat64()*10 + 50
	}
	e := NewEmpirical(samples)
	prev := -1.0
	for x := 0.0; x <= 100; x += 0.5 {
		c := e.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %v: %v", x, c)
		}
		prev = c
	}
}

func TestEmpiricalQuantileOrderStatistics(t *testing.T) {
	e := NewEmpirical([]float64{10, 20, 30, 40, 50})
	if got := e.Quantile(0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := e.Quantile(1); got != 50 {
		t.Errorf("q1 = %v", got)
	}
	if got := e.Quantile(0.5); got != 30 {
		t.Errorf("median = %v", got)
	}
	if got := e.Quantile(0.25); got != 20 {
		t.Errorf("q25 = %v (type-7 on 5 points)", got)
	}
}

func TestEmpiricalMatchesSource(t *testing.T) {
	// Fit to lognormal samples; CDF should approximate the source CDF.
	src := NewLognormal(4, 1.5)
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = src.Sample(rng)
	}
	e := NewEmpirical(samples)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		x := src.Quantile(p)
		if got := e.CDF(x); math.Abs(got-p) > 0.02 {
			t.Errorf("empirical CDF at source q%.1f = %v", p, got)
		}
	}
	if d := e.KSDistanceTo(src); d > 0.02 {
		t.Errorf("KS distance to source = %v", d)
	}
}

func TestEmpiricalPDFIntegrates(t *testing.T) {
	src := NewExponential(0.1)
	rng := rand.New(rand.NewSource(13))
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = src.Sample(rng)
	}
	e := NewEmpirical(samples)
	// Riemann sum of the histogram density over its support ≈ 1.
	lo, hi := e.Min(), e.Max()
	const steps = 20000
	h := (hi - lo) / steps
	var sum float64
	for i := 0; i < steps; i++ {
		sum += e.PDF(lo+(float64(i)+0.5)*h) * h
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("∫PDF = %v", sum)
	}
}

func TestEmpiricalDuplicates(t *testing.T) {
	e := NewEmpirical([]float64{5, 5, 5, 5})
	if got := e.CDF(5); got != 1 {
		t.Errorf("CDF(5) with all-equal samples = %v", got)
	}
	if got := e.CDF(4.9); got != 0 {
		t.Errorf("CDF(4.9) = %v", got)
	}
	if got := e.Quantile(0.5); got != 5 {
		t.Errorf("median = %v", got)
	}
	if got := e.PDF(5); got != 0 {
		// Degenerate sample has no histogram; PDF is 0 by construction.
		t.Errorf("PDF(5) = %v", got)
	}
}

func TestEmpiricalSingleSample(t *testing.T) {
	e := NewEmpirical([]float64{7})
	if e.CDF(7) != 1 || e.CDF(6.999) != 0 {
		t.Error("single-sample CDF wrong")
	}
	if e.Mean() != 7 {
		t.Error("single-sample mean wrong")
	}
}

func TestEmpiricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty sample")
		}
	}()
	NewEmpirical(nil)
}

func TestKSDistanceSelfIsZero(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 3, 4, 5, 6})
	if d := e.KSDistance(e); d != 0 {
		t.Errorf("KS(self) = %v", d)
	}
}

func TestKSDistanceSeparatedSamples(t *testing.T) {
	a := NewEmpirical([]float64{1, 2, 3})
	b := NewEmpirical([]float64{101, 102, 103})
	if d := a.KSDistance(b); d < 0.99 {
		t.Errorf("KS(disjoint) = %v, want ≈1", d)
	}
}

func TestKSDistanceDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mk := func(mu float64) *Empirical {
		s := make([]float64, 3000)
		for i := range s {
			s[i] = rng.NormFloat64() + mu
		}
		return NewEmpirical(s)
	}
	same := mk(0).KSDistance(mk(0))
	shifted := mk(0).KSDistance(mk(1))
	if same > 0.06 {
		t.Errorf("KS same-dist = %v, want small", same)
	}
	if shifted < 0.3 {
		t.Errorf("KS shifted = %v, want large", shifted)
	}
}

func TestEmpiricalSampleDoesNotLeaveSupport(t *testing.T) {
	e := NewEmpirical([]float64{10, 20, 30})
	rng := rand.New(rand.NewSource(23))
	prop := func(seed int64) bool {
		v := e.Sample(rng)
		return v >= 10 && v <= 30
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewEmpirical(in)
	if !sort.Float64sAreSorted(in) {
		// Input should be untouched (still 3,1,2 — i.e. NOT sorted).
		if in[0] != 3 || in[1] != 1 || in[2] != 2 {
			t.Error("NewEmpirical mutated its input")
		}
	} else {
		t.Error("NewEmpirical sorted the caller's slice")
	}
}
