package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Component is one weighted member of a Mixture.
type Component struct {
	Weight float64
	Dist   Distribution
}

// Mixture is a finite mixture of distributions. It models multi-modal delay
// behaviour such as "mostly immediate, occasionally buffered and re-sent in
// a batch" (the systematic ~5×10⁴ ms resend pattern of dataset H).
type Mixture struct {
	components []Component
}

// NewMixture builds a mixture from components. Weights must be positive;
// they are normalized to sum to 1. At least one component is required.
func NewMixture(components ...Component) *Mixture {
	if len(components) == 0 {
		panic("dist: mixture requires at least one component")
	}
	var total float64
	for _, c := range components {
		if c.Weight <= 0 {
			panic("dist: mixture weights must be positive")
		}
		if c.Dist == nil {
			panic("dist: mixture component distribution is nil")
		}
		total += c.Weight
	}
	norm := make([]Component, len(components))
	for i, c := range components {
		norm[i] = Component{Weight: c.Weight / total, Dist: c.Dist}
	}
	return &Mixture{components: norm}
}

// Components returns the normalized components.
func (m *Mixture) Components() []Component { return m.components }

// PDF implements Distribution.
func (m *Mixture) PDF(x float64) float64 {
	var sum float64
	for _, c := range m.components {
		sum += c.Weight * c.Dist.PDF(x)
	}
	return sum
}

// CDF implements Distribution.
func (m *Mixture) CDF(x float64) float64 {
	var sum float64
	for _, c := range m.components {
		sum += c.Weight * c.Dist.CDF(x)
	}
	return sum
}

// Quantile implements Distribution by numeric inversion of the mixture CDF.
func (m *Mixture) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		lo := math.Inf(1)
		for _, c := range m.components {
			lo = math.Min(lo, c.Dist.Quantile(0))
		}
		return lo
	case p >= 1:
		return math.Inf(1)
	}
	hi := 1.0
	for _, c := range m.components {
		q := c.Dist.Quantile(math.Min(0.999999, p))
		if !math.IsInf(q, 0) && q > hi {
			hi = q
		}
	}
	return quantileByInversion(m, p, 0, hi)
}

// Mean implements Distribution.
func (m *Mixture) Mean() float64 {
	var sum float64
	for _, c := range m.components {
		sum += c.Weight * c.Dist.Mean()
	}
	return sum
}

// Sample implements Distribution.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	var acc float64
	for _, c := range m.components {
		acc += c.Weight
		if u <= acc {
			return c.Dist.Sample(rng)
		}
	}
	return m.components[len(m.components)-1].Dist.Sample(rng)
}

// Name implements Distribution.
func (m *Mixture) Name() string {
	parts := make([]string, len(m.components))
	for i, c := range m.components {
		parts[i] = fmt.Sprintf("%.2f*%s", c.Weight, c.Dist.Name())
	}
	return "mixture(" + strings.Join(parts, "+") + ")"
}

// Shifted adds a constant Offset to a base distribution: X' = X + Offset.
// It models fixed processing or propagation latency on top of a random
// component.
type Shifted struct {
	Base   Distribution
	Offset float64
}

// PDF implements Distribution.
func (s Shifted) PDF(x float64) float64 { return s.Base.PDF(x - s.Offset) }

// CDF implements Distribution.
func (s Shifted) CDF(x float64) float64 { return s.Base.CDF(x - s.Offset) }

// Quantile implements Distribution.
func (s Shifted) Quantile(p float64) float64 { return s.Base.Quantile(p) + s.Offset }

// Mean implements Distribution.
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.Offset }

// Sample implements Distribution.
func (s Shifted) Sample(rng *rand.Rand) float64 { return s.Base.Sample(rng) + s.Offset }

// Name implements Distribution.
func (s Shifted) Name() string {
	return fmt.Sprintf("shift(%s,+%g)", s.Base.Name(), s.Offset)
}
