package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// allDistributions returns one instance of every parametric distribution
// for shared-invariant tests.
func allDistributions() []Distribution {
	return []Distribution{
		NewLognormal(4, 1.5),
		NewLognormal(5, 2),
		NewExponential(0.02),
		NewUniform(0, 100),
		NewNormal(50, 10),
		NewPareto(1, 2.5),
		NewWeibull(30, 1.5),
		NewMixture(
			Component{Weight: 0.9, Dist: NewExponential(0.1)},
			Component{Weight: 0.1, Dist: NewLognormal(6, 0.5)},
		),
		Shifted{Base: NewExponential(0.05), Offset: 10},
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for _, d := range allDistributions() {
		prev := -1.0
		for _, p := range []float64{0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999} {
			x := d.Quantile(p)
			c := d.CDF(x)
			if c < 0 || c > 1 {
				t.Errorf("%s: CDF(%v) = %v out of [0,1]", d.Name(), x, c)
			}
			if c < prev-1e-9 {
				t.Errorf("%s: CDF not monotone at %v: %v < %v", d.Name(), x, c, prev)
			}
			prev = c
		}
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	for _, d := range allDistributions() {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			got := d.CDF(x)
			if math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", d.Name(), p, got)
			}
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	for _, d := range allDistributions() {
		bounds := IntegrationBoundaries(d)
		total := numeric.GaussLegendreSegments(d.PDF, bounds)
		if math.Abs(total-1) > 5e-3 {
			t.Errorf("%s: ∫PDF = %v, want ≈1", d.Name(), total)
		}
	}
}

func TestPDFIntegralMatchesCDF(t *testing.T) {
	for _, d := range allDistributions() {
		lo := d.Quantile(1e-6)
		for _, p := range []float64{0.3, 0.6, 0.9} {
			x := d.Quantile(p)
			got, err := numeric.AdaptiveSimpson(d.PDF, lo, x, 1e-10)
			if err != nil {
				t.Fatalf("%s: integrate: %v", d.Name(), err)
			}
			want := d.CDF(x) - d.CDF(lo)
			if math.Abs(got-want) > 1e-4 {
				t.Errorf("%s: ∫PDF to q%.1f = %v, want %v", d.Name(), p, got, want)
			}
		}
	}
}

func TestSampleMeanMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range allDistributions() {
		mean := d.Mean()
		if math.IsInf(mean, 0) {
			continue
		}
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(rng)
		}
		got := sum / n
		// Lognormal(5,2) has enormous variance; use a loose relative bound.
		relTol := 0.05
		if _, ok := d.(Lognormal); ok {
			relTol = 0.35
		}
		if math.Abs(got-mean) > relTol*math.Max(1, mean) {
			t.Errorf("%s: sample mean %v, analytic mean %v", d.Name(), got, mean)
		}
	}
}

func TestSampleCDFAgreement(t *testing.T) {
	// Property: empirical CDF of samples matches analytic CDF (a KS-style
	// check at fixed quantiles).
	rng := rand.New(rand.NewSource(7))
	for _, d := range allDistributions() {
		const n = 50000
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = d.Sample(rng)
		}
		e := NewEmpirical(samples)
		for _, p := range []float64{0.1, 0.5, 0.9} {
			x := d.Quantile(p)
			if got := e.CDF(x); math.Abs(got-p) > 0.02 {
				t.Errorf("%s: empirical CDF at q%.1f = %v", d.Name(), p, got)
			}
		}
	}
}

func TestLognormalKnownValues(t *testing.T) {
	l := NewLognormal(0, 1)
	// Median of LN(0,1) is e^0 = 1.
	if got := l.Quantile(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("median = %v, want 1", got)
	}
	if got := l.Mean(); math.Abs(got-math.Exp(0.5)) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, math.Exp(0.5))
	}
	if got := l.CDF(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(1) = %v, want 0.5", got)
	}
	if got := l.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v, want 0", got)
	}
	if got := l.PDF(-1); got != 0 {
		t.Errorf("PDF(-1) = %v, want 0", got)
	}
}

func TestExponentialKnownValues(t *testing.T) {
	e := NewExponential(0.5)
	if got := e.Mean(); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
	if got := e.CDF(2); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("CDF(2) = %v", got)
	}
	if got := e.Quantile(1 - math.Exp(-1)); math.Abs(got-2) > 1e-9 {
		t.Errorf("Quantile = %v, want 2", got)
	}
}

func TestUniformKnownValues(t *testing.T) {
	u := NewUniform(10, 30)
	if got := u.Mean(); got != 20 {
		t.Errorf("mean = %v", got)
	}
	if got := u.CDF(15); got != 0.25 {
		t.Errorf("CDF(15) = %v", got)
	}
	if got := u.PDF(20); got != 0.05 {
		t.Errorf("PDF(20) = %v", got)
	}
	if got := u.PDF(31); got != 0 {
		t.Errorf("PDF(31) = %v", got)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := NewPareto(1, 0.9)
	if !math.IsInf(p.Mean(), 1) {
		t.Errorf("Pareto alpha<=1 mean should be +Inf, got %v", p.Mean())
	}
}

func TestDegenerate(t *testing.T) {
	d := Degenerate{V: 5}
	if d.CDF(4.999) != 0 || d.CDF(5) != 1 {
		t.Error("degenerate CDF step wrong")
	}
	if d.Mean() != 5 || d.Quantile(0.3) != 5 {
		t.Error("degenerate mean/quantile wrong")
	}
	rng := rand.New(rand.NewSource(1))
	if d.Sample(rng) != 5 {
		t.Error("degenerate sample wrong")
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		Component{Weight: 2, Dist: NewUniform(0, 1)},
		Component{Weight: 2, Dist: NewUniform(10, 11)},
	)
	// Weights normalize to 0.5/0.5; CDF(5) should be exactly 0.5.
	if got := m.CDF(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mixture CDF(5) = %v, want 0.5", got)
	}
	if got := m.Mean(); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("mixture mean = %v, want 5.5", got)
	}
}

func TestMixturePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMixture() },
		func() { NewMixture(Component{Weight: 0, Dist: NewUniform(0, 1)}) },
		func() { NewMixture(Component{Weight: 1, Dist: nil}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"lognormal":   func() { NewLognormal(0, 0) },
		"exponential": func() { NewExponential(-1) },
		"uniform":     func() { NewUniform(1, 1) },
		"normal":      func() { NewNormal(0, -2) },
		"pareto":      func() { NewPareto(0, 1) },
		"weibull":     func() { NewWeibull(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestShifted(t *testing.T) {
	s := Shifted{Base: NewUniform(0, 10), Offset: 100}
	if got := s.Quantile(0.5); got != 105 {
		t.Errorf("shifted quantile = %v", got)
	}
	if got := s.CDF(105); got != 0.5 {
		t.Errorf("shifted CDF = %v", got)
	}
	if got := s.Mean(); got != 105 {
		t.Errorf("shifted mean = %v", got)
	}
}

func TestExpectationOf(t *testing.T) {
	// E[X] via ExpectationOf should match Mean for a smooth distribution.
	d := NewLognormal(2, 0.5)
	got := ExpectationOf(d, func(x float64) float64 { return x })
	if math.Abs(got-d.Mean()) > 1e-3*d.Mean() {
		t.Errorf("E[X] = %v, want %v", got, d.Mean())
	}
	// E[1] = 1.
	got = ExpectationOf(d, func(x float64) float64 { return 1 })
	if math.Abs(got-1) > 1e-3 {
		t.Errorf("E[1] = %v", got)
	}
}

func TestQuantileProperty(t *testing.T) {
	d := NewLognormal(4, 1.5)
	prop := func(u uint16) bool {
		p := (float64(u) + 0.5) / (math.MaxUint16 + 1)
		x := d.Quantile(p)
		return math.Abs(d.CDF(x)-p) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
