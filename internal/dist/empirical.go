package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Empirical is a distribution fitted from observed samples. The analyzer
// module builds one from collected delays and feeds it to the WA models, so
// the models must be able to run on it exactly like on a parametric
// distribution.
//
// The CDF is the piecewise-linear interpolation of the empirical CDF
// (a smoothed ECDF); the PDF is the corresponding histogram density. Linear
// interpolation keeps the CDF continuous and strictly increasing between
// distinct sample values, which the quadrature in the models relies on.
type Empirical struct {
	sorted []float64 // ascending observed values
	// binEdges/binDensity cache a fixed-width histogram used by PDF.
	binEdges   []float64
	binDensity []float64
	mean       float64
}

// NewEmpirical fits an empirical distribution to samples. It copies and
// sorts the data. At least two distinct samples are required for a usable
// density; with fewer, the distribution degenerates gracefully (PDF 0,
// step CDF).
func NewEmpirical(samples []float64) *Empirical {
	if len(samples) == 0 {
		panic("dist: empirical requires at least one sample")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	e := &Empirical{sorted: s, mean: sum / float64(len(s))}
	e.buildHistogram()
	return e
}

// buildHistogram computes a Freedman–Diaconis-ish fixed-width histogram
// used as the density estimate.
func (e *Empirical) buildHistogram() {
	n := len(e.sorted)
	lo, hi := e.sorted[0], e.sorted[n-1]
	if hi <= lo {
		return
	}
	bins := int(math.Ceil(math.Sqrt(float64(n))))
	if bins < 4 {
		bins = 4
	}
	if bins > 512 {
		bins = 512
	}
	width := (hi - lo) / float64(bins)
	e.binEdges = make([]float64, bins+1)
	for i := range e.binEdges {
		e.binEdges[i] = lo + float64(i)*width
	}
	counts := make([]int, bins)
	for _, v := range e.sorted {
		idx := int((v - lo) / width)
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	e.binDensity = make([]float64, bins)
	for i, c := range counts {
		e.binDensity[i] = float64(c) / (float64(n) * width)
	}
}

// N returns the number of fitted samples.
func (e *Empirical) N() int { return len(e.sorted) }

// Min returns the smallest observed value.
func (e *Empirical) Min() float64 { return e.sorted[0] }

// Max returns the largest observed value.
func (e *Empirical) Max() float64 { return e.sorted[len(e.sorted)-1] }

// PDF implements Distribution using the histogram density.
func (e *Empirical) PDF(x float64) float64 {
	if len(e.binDensity) == 0 {
		return 0
	}
	lo := e.binEdges[0]
	hi := e.binEdges[len(e.binEdges)-1]
	if x < lo || x > hi {
		return 0
	}
	width := (hi - lo) / float64(len(e.binDensity))
	idx := int((x - lo) / width)
	if idx >= len(e.binDensity) {
		idx = len(e.binDensity) - 1
	}
	return e.binDensity[idx]
}

// CDF implements Distribution using linear interpolation between order
// statistics (the "interpolated ECDF").
func (e *Empirical) CDF(x float64) float64 {
	n := len(e.sorted)
	if x < e.sorted[0] {
		return 0
	}
	if x >= e.sorted[n-1] {
		return 1
	}
	// Position in the sorted sample: index of first element > x.
	i := sort.SearchFloat64s(e.sorted, x)
	// e.sorted[i-1] <= x (if i>0); interpolate within the step.
	if i < n && e.sorted[i] == x {
		// Advance past duplicates so CDF at a repeated value counts them all.
		j := i
		for j < n && e.sorted[j] == x {
			j++
		}
		return float64(j) / float64(n)
	}
	if i == 0 {
		return 0
	}
	x0 := e.sorted[i-1]
	x1 := e.sorted[i]
	f0 := float64(i) / float64(n)
	f1 := float64(i+1) / float64(n)
	if x1 == x0 {
		return f0
	}
	return f0 + (f1-f0)*(x-x0)/(x1-x0)
}

// Quantile implements Distribution with the inverse of the interpolated
// ECDF (type-7-style interpolation).
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	switch {
	case p <= 0:
		return e.sorted[0]
	case p >= 1:
		return e.sorted[n-1]
	}
	h := p*float64(n-1) + 0 // type 7: h = p(n-1)
	i := int(math.Floor(h))
	frac := h - float64(i)
	if i >= n-1 {
		return e.sorted[n-1]
	}
	return e.sorted[i] + frac*(e.sorted[i+1]-e.sorted[i])
}

// Mean implements Distribution.
func (e *Empirical) Mean() float64 { return e.mean }

// Sample implements Distribution by drawing a uniform quantile (smoothed
// bootstrap via the interpolated inverse ECDF).
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.Quantile(rng.Float64())
}

// Name implements Distribution.
func (e *Empirical) Name() string {
	return fmt.Sprintf("empirical(n=%d)", len(e.sorted))
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic between
// this empirical distribution and another: sup_x |F1(x) − F2(x)| evaluated
// at all observed points of both samples. The analyzer's drift detector
// uses it to decide whether the delay distribution has changed.
func (e *Empirical) KSDistance(other *Empirical) float64 {
	var d float64
	for _, x := range e.sorted {
		if v := math.Abs(e.CDF(x) - other.CDF(x)); v > d {
			d = v
		}
	}
	for _, x := range other.sorted {
		if v := math.Abs(e.CDF(x) - other.CDF(x)); v > d {
			d = v
		}
	}
	return d
}

// KSDistanceTo returns sup over this sample's points of |F_emp(x) − F(x)|
// against an arbitrary reference distribution (one-sample KS statistic,
// evaluated on both sides of each step).
func (e *Empirical) KSDistanceTo(ref Distribution) float64 {
	n := float64(len(e.sorted))
	var d float64
	for i, x := range e.sorted {
		fx := ref.CDF(x)
		hi := math.Abs(float64(i+1)/n - fx)
		lo := math.Abs(float64(i)/n - fx)
		if hi > d {
			d = hi
		}
		if lo > d {
			d = lo
		}
	}
	return d
}
