package lsm

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/series"
	"repro/internal/storage"
)

func TestPersistenceRoundTrip(t *testing.T) {
	b := storage.NewMemBackend()
	ps := genWorkload(2000, 50, dist.NewLognormal(4, 1.5), 20)

	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, Backend: b, WAL: true})
	ingest(t, e, ps)
	beforeClose := scanAll(e)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen from the same backend: everything must come back.
	e2 := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, Backend: b, WAL: true})
	defer e2.Close()
	got := scanAll(e2)
	if len(got) != len(beforeClose) {
		t.Fatalf("recovered %d points, want %d", len(got), len(beforeClose))
	}
	for i := range got {
		if got[i] != beforeClose[i] {
			t.Fatalf("recovered point %d = %v, want %v", i, got[i], beforeClose[i])
		}
	}
}

func TestWALRecoversUnflushedPoints(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 1000, SeqCapacity: 500, Backend: b, WAL: true})
	// Far fewer points than the memtable capacity: nothing flushes.
	var want []series.Point
	for i := int64(0); i < 50; i++ {
		p := series.Point{TG: i * 10, TA: i * 10, V: float64(i)}
		want = append(want, p)
		if err := e.Put(p); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Simulate a crash: do NOT close (Close would flush).
	// Points must be recoverable purely from the WAL.
	e2 := mustOpen(t, Config{Policy: Separation, MemBudget: 1000, SeqCapacity: 500, Backend: b, WAL: true})
	defer e2.Close()
	got := scanAll(e2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d points from WAL, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWALTruncatedAfterFlush(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, Backend: b, WAL: true})
	defer e.Close()
	for i := int64(0); i < 25; i++ {
		e.Put(series.Point{TG: i, TA: i})
	}
	// 2 flushes happened (at 10 and 20 points); WAL should hold only the 5
	// still-buffered points.
	sz, err := b.Size("WAL")
	if err != nil {
		t.Fatalf("WAL size: %v", err)
	}
	// Each record is ~20 bytes; 5 records is well under 200.
	if sz == 0 || sz > 200 {
		t.Errorf("WAL size after flush = %d bytes; expected just the buffered tail", sz)
	}
}

func TestRecoveryOnDiskBackend(t *testing.T) {
	dir := t.TempDir()
	d, err := storage.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	ps := genWorkload(1500, 50, dist.NewLognormal(5, 1.5), 21)
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 64, SeqCapacity: 32, Backend: d, WAL: true})
	ingest(t, e, ps)
	want := scanAll(e)
	e.Close()

	d2, err := storage.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := mustOpen(t, Config{Policy: Separation, MemBudget: 64, SeqCapacity: 32, Backend: d2, WAL: true})
	defer e2.Close()
	got := scanAll(e2)
	if len(got) != len(want) {
		t.Fatalf("disk recovery: %d points, want %d", len(got), len(want))
	}
}

func TestRecoveredEngineStillIngests(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 32, Backend: b, WAL: true})
	ps := genWorkload(500, 50, dist.NewLognormal(4, 1.5), 22)
	ingest(t, e, ps[:250])
	e.Close()

	e2 := mustOpen(t, Config{Policy: Conventional, MemBudget: 32, Backend: b, WAL: true})
	defer e2.Close()
	ingest(t, e2, ps[250:])
	if got := scanAll(e2); len(got) != 500 {
		t.Fatalf("after recovery + more writes: %d points", len(got))
	}
	e2.mu.Lock()
	ok := e2.checkLevelInvariantsLocked()
	e2.mu.Unlock()
	if !ok {
		t.Error("run invariant violated after recovery")
	}
}

// TestAsyncCrashRecoversL0Points covers the L0 durability hole: in async
// mode a full memtable becomes an in-memory L0 table and the WAL is
// rewritten. The rewrite must keep covering the L0 queue — if it dropped
// those points, a crash before the background merge would lose
// acknowledged writes.
func TestAsyncCrashRecoversL0Points(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 8, Backend: b, WAL: true, AsyncCompaction: true})
	var want []series.Point
	for i := int64(0); i < 100; i++ {
		p := series.Point{TG: i, TA: i, V: float64(i)}
		want = append(want, p)
		if err := e.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without Close or FlushAll: some points may sit in L0 tables
	// that the compactor has not merged yet. To make the race irrelevant,
	// only check the invariant that matters: everything acknowledged is in
	// manifest-committed SSTables or the WAL.
	e2 := mustOpen(t, Config{Policy: Conventional, MemBudget: 8, Backend: b, WAL: true, AsyncCompaction: true})
	if err := e2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got, _, _ := e2.Scan(0, 1<<40)
	if len(got) != len(want) {
		t.Fatalf("recovered %d points after async crash, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	// The goroutine from the abandoned first engine is still parked on its
	// cond var; close it too so the test leaves nothing behind.
	e.Close()
}

// TestWALRewriteIsAtomic pins down invariant 3: a WAL rewrite that fails
// must leave the previous log intact — the historical Truncate-then-append
// sequence left an empty WAL if the process died in between, silently
// dropping buffered out-of-order points.
func TestWALRewriteIsAtomic(t *testing.T) {
	inner := storage.NewMemBackend()
	fb := storage.NewFaultBackend(inner)
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 8, SeqCapacity: 4, Backend: fb, WAL: true})
	// Fill Cnonseq with out-of-order points (never flushed) and Cseq close
	// to capacity.
	acked := []series.Point{
		{TG: 100, TA: 1}, {TG: 101, TA: 2}, {TG: 102, TA: 3}, // in-order
		{TG: 5, TA: 4}, {TG: 6, TA: 5}, // will be OOO after first flush
	}
	for _, p := range acked[:3] {
		if err := e.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	// Fourth in-order point fills Cseq -> flush -> rewriteWAL; now write
	// the OOO points, then kill the backend so the NEXT flush's rewrite
	// fails mid-protocol at every op.
	if err := e.Put(series.Point{TG: 103, TA: 9}); err != nil {
		t.Fatal(err)
	}
	for _, p := range acked[3:] {
		if err := e.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	fb.SetBudget(0)
	// Trigger a flush attempt that will fail somewhere inside the persist/
	// manifest/WAL-rewrite protocol.
	e.Put(series.Point{TG: 104, TA: 10})
	e.Put(series.Point{TG: 105, TA: 11})
	e.Put(series.Point{TG: 106, TA: 12})
	// Crash. Reopen from the surviving inner state: every acknowledged
	// point must be recovered (the failed rewrite must not have emptied
	// the WAL).
	e2 := mustOpen(t, Config{Policy: Separation, MemBudget: 8, SeqCapacity: 4, Backend: inner, WAL: true})
	defer e2.Close()
	for _, p := range append(append([]series.Point{}, acked...), series.Point{TG: 103, TA: 9}) {
		got, ok, _ := e2.Get(p.TG)
		if !ok || got != p {
			t.Errorf("acknowledged point %v lost after failed WAL rewrite (got %v, ok=%v)", p, got, ok)
		}
	}
}

// TestRecoveryRemovesOrphanTables: table objects not referenced by the
// committed manifest (outputs of an interrupted compaction) are removed
// and counted at recovery instead of lingering silently.
func TestRecoveryRemovesOrphanTables(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 8, Backend: b, WAL: true})
	for i := int64(0); i < 32; i++ {
		if err := e.Put(series.Point{TG: i, TA: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between persisting compaction outputs and the
	// manifest commit: drop two unreferenced table objects in the backend.
	b.Write("sst-00000000deadbeef.tbl", []byte("garbage"))
	b.Write("sst-00000000cafebabe.tbl", []byte("garbage"))

	e2 := mustOpen(t, Config{Policy: Conventional, MemBudget: 8, Backend: b, WAL: true})
	defer e2.Close()
	rec := e2.RecoveryInfo()
	if rec.OrphanTablesRemoved != 2 {
		t.Errorf("OrphanTablesRemoved = %d, want 2", rec.OrphanTablesRemoved)
	}
	if !rec.ManifestFound {
		t.Error("ManifestFound = false")
	}
	names, _ := b.List()
	for _, n := range names {
		if n == "sst-00000000deadbeef.tbl" || n == "sst-00000000cafebabe.tbl" {
			t.Errorf("orphan %s still present after recovery", n)
		}
	}
	if got, _, _ := e2.Scan(0, 1<<40); len(got) != 32 {
		t.Errorf("recovered %d points, want 32", len(got))
	}
}

// TestRecoveryReportsTornWAL: a WAL ending mid-record (crash during
// append) is detected and reported, and the intact prefix still replays.
func TestRecoveryReportsTornWAL(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, Backend: b, WAL: true})
	for i := int64(0); i < 10; i++ {
		if err := e.Put(series.Point{TG: i, TA: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-append: chop the last 3 bytes off the WAL object.
	data, err := b.Read("WAL")
	if err != nil {
		t.Fatal(err)
	}
	b.Write("WAL", data[:len(data)-3])

	e2 := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, Backend: b, WAL: true})
	defer e2.Close()
	rec := e2.RecoveryInfo()
	if !rec.WALTorn || rec.WALTornBytes == 0 {
		t.Errorf("torn WAL not reported: %+v", rec)
	}
	if rec.WALPointsReplayed != 9 {
		t.Errorf("WALPointsReplayed = %d, want 9", rec.WALPointsReplayed)
	}
	if got, _, _ := e2.Scan(0, 1<<40); len(got) != 9 {
		t.Errorf("recovered %d points, want the 9 intact records", len(got))
	}
}

func TestRecoveryRejectsCorruptManifest(t *testing.T) {
	b := storage.NewMemBackend()
	b.Write("MANIFEST", []byte("{not json"))
	if _, err := Open(Config{Policy: Conventional, MemBudget: 8, Backend: b}); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

func TestRecoveryRejectsMissingTable(t *testing.T) {
	b := storage.NewMemBackend()
	b.Write("MANIFEST", []byte(`{"tables":["sst-0000000000000001.tbl"],"next_id":2}`))
	if _, err := Open(Config{Policy: Conventional, MemBudget: 8, Backend: b}); err == nil {
		t.Error("manifest referencing missing table accepted")
	}
}
