package lsm

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/series"
	"repro/internal/storage"
)

func TestPersistenceRoundTrip(t *testing.T) {
	b := storage.NewMemBackend()
	ps := genWorkload(2000, 50, dist.NewLognormal(4, 1.5), 20)

	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, Backend: b, WAL: true})
	ingest(t, e, ps)
	beforeClose := scanAll(e)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen from the same backend: everything must come back.
	e2 := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, Backend: b, WAL: true})
	defer e2.Close()
	got := scanAll(e2)
	if len(got) != len(beforeClose) {
		t.Fatalf("recovered %d points, want %d", len(got), len(beforeClose))
	}
	for i := range got {
		if got[i] != beforeClose[i] {
			t.Fatalf("recovered point %d = %v, want %v", i, got[i], beforeClose[i])
		}
	}
}

func TestWALRecoversUnflushedPoints(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 1000, SeqCapacity: 500, Backend: b, WAL: true})
	// Far fewer points than the memtable capacity: nothing flushes.
	var want []series.Point
	for i := int64(0); i < 50; i++ {
		p := series.Point{TG: i * 10, TA: i * 10, V: float64(i)}
		want = append(want, p)
		if err := e.Put(p); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Simulate a crash: do NOT close (Close would flush).
	// Points must be recoverable purely from the WAL.
	e2 := mustOpen(t, Config{Policy: Separation, MemBudget: 1000, SeqCapacity: 500, Backend: b, WAL: true})
	defer e2.Close()
	got := scanAll(e2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d points from WAL, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWALTruncatedAfterFlush(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, Backend: b, WAL: true})
	defer e.Close()
	for i := int64(0); i < 25; i++ {
		e.Put(series.Point{TG: i, TA: i})
	}
	// 2 flushes happened (at 10 and 20 points); WAL should hold only the 5
	// still-buffered points.
	sz, err := b.Size("WAL")
	if err != nil {
		t.Fatalf("WAL size: %v", err)
	}
	// Each record is ~20 bytes; 5 records is well under 200.
	if sz == 0 || sz > 200 {
		t.Errorf("WAL size after flush = %d bytes; expected just the buffered tail", sz)
	}
}

func TestRecoveryOnDiskBackend(t *testing.T) {
	dir := t.TempDir()
	d, err := storage.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	ps := genWorkload(1500, 50, dist.NewLognormal(5, 1.5), 21)
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 64, SeqCapacity: 32, Backend: d, WAL: true})
	ingest(t, e, ps)
	want := scanAll(e)
	e.Close()

	d2, err := storage.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := mustOpen(t, Config{Policy: Separation, MemBudget: 64, SeqCapacity: 32, Backend: d2, WAL: true})
	defer e2.Close()
	got := scanAll(e2)
	if len(got) != len(want) {
		t.Fatalf("disk recovery: %d points, want %d", len(got), len(want))
	}
}

func TestRecoveredEngineStillIngests(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 32, Backend: b, WAL: true})
	ps := genWorkload(500, 50, dist.NewLognormal(4, 1.5), 22)
	ingest(t, e, ps[:250])
	e.Close()

	e2 := mustOpen(t, Config{Policy: Conventional, MemBudget: 32, Backend: b, WAL: true})
	defer e2.Close()
	ingest(t, e2, ps[250:])
	if got := scanAll(e2); len(got) != 500 {
		t.Fatalf("after recovery + more writes: %d points", len(got))
	}
	e2.mu.Lock()
	ok := e2.run.checkInvariant()
	e2.mu.Unlock()
	if !ok {
		t.Error("run invariant violated after recovery")
	}
}

func TestRecoveryRejectsCorruptManifest(t *testing.T) {
	b := storage.NewMemBackend()
	b.Write("MANIFEST", []byte("{not json"))
	if _, err := Open(Config{Policy: Conventional, MemBudget: 8, Backend: b}); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

func TestRecoveryRejectsMissingTable(t *testing.T) {
	b := storage.NewMemBackend()
	b.Write("MANIFEST", []byte(`{"tables":["sst-0000000000000001.tbl"],"next_id":2}`))
	if _, err := Open(Config{Policy: Conventional, MemBudget: 8, Backend: b}); err == nil {
		t.Error("manifest referencing missing table accepted")
	}
}
