package lsm

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/series"
	"repro/internal/sstable"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Object names used in the storage backend.
const (
	manifestName = "MANIFEST"
	walName      = "WAL"
)

// manifest is the durable record of run membership. It is rewritten
// atomically after every change to the run, so a recovered engine sees a
// consistent table set even if table files from an interrupted compaction
// linger.
type manifest struct {
	// Tables lists SSTable object names in run order (ascending MinTG).
	Tables []string `json:"tables"`
	// NextID is the next SSTable identifier to allocate.
	NextID uint64 `json:"next_id"`
}

// tableObjectName returns the storage object name for a table id.
func tableObjectName(id uint64) string {
	return fmt.Sprintf("sst-%016x.tbl", id)
}

// persistReplace is called after the run has been updated in memory. It
// writes newTables to the backend, commits a manifest reflecting the
// current run, and removes the replaced tables' objects. With no backend it
// is a no-op.
func (e *Engine) persistReplace(old, newTables []*sstable.Table) error {
	if e.cfg.Backend == nil {
		return nil
	}
	for _, t := range newTables {
		img := t.Encode(0)
		if err := e.cfg.Backend.Write(tableObjectName(t.ID()), img); err != nil {
			return fmt.Errorf("lsm: persist sstable: %w", err)
		}
	}
	m := manifest{NextID: e.nextID, Tables: make([]string, 0, len(e.run.tables))}
	for _, t := range e.run.tables {
		m.Tables = append(m.Tables, tableObjectName(t.ID()))
	}
	if err := e.writeManifest(m); err != nil {
		return err
	}
	for _, t := range old {
		if err := e.cfg.Backend.Remove(tableObjectName(t.ID())); err != nil {
			return fmt.Errorf("lsm: remove old sstable: %w", err)
		}
	}
	return nil
}

// writeManifest commits the manifest atomically.
func (e *Engine) writeManifest(m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lsm: marshal manifest: %w", err)
	}
	if err := e.cfg.Backend.Write(manifestName, data); err != nil {
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	return nil
}

// rewriteWAL rewrites the log to contain exactly the points still buffered
// in memtables (called after a flush made some of them durable).
func (e *Engine) rewriteWAL() error {
	if e.log == nil {
		return nil
	}
	if err := e.log.Truncate(); err != nil {
		return fmt.Errorf("lsm: truncate wal: %w", err)
	}
	var remaining []series.Point
	remaining = append(remaining, e.c0.Points()...)
	remaining = append(remaining, e.cseq.Points()...)
	remaining = append(remaining, e.cnonseq.Points()...)
	if len(remaining) == 0 {
		return nil
	}
	if err := e.log.AppendBatch(remaining); err != nil {
		return fmt.Errorf("lsm: rewrite wal: %w", err)
	}
	return nil
}

// recover loads the manifest, SSTables, and WAL from the backend.
func (e *Engine) recover() error {
	data, err := e.cfg.Backend.Read(manifestName)
	switch {
	case errors.Is(err, storage.ErrNotFound):
		// Fresh database.
	case err != nil:
		return fmt.Errorf("lsm: read manifest: %w", err)
	default:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("lsm: parse manifest: %w", err)
		}
		for _, name := range m.Tables {
			img, err := e.cfg.Backend.Read(name)
			if err != nil {
				return fmt.Errorf("lsm: read sstable %s: %w", name, err)
			}
			t, err := sstable.Decode(img)
			if err != nil {
				return fmt.Errorf("lsm: decode sstable %s: %w", name, err)
			}
			e.run.tables = append(e.run.tables, t)
		}
		if !e.run.checkInvariant() {
			return errors.New("lsm: recovered run violates non-overlap invariant")
		}
		e.nextID = m.NextID
	}

	if e.cfg.WAL {
		pts, err := wal.Replay(e.cfg.Backend, walName)
		if err != nil {
			return fmt.Errorf("lsm: replay wal: %w", err)
		}
		e.log = wal.Open(e.cfg.Backend, walName)
		for _, p := range pts {
			// Replayed points re-enter through the normal classification
			// path but are not re-logged (they are already in the WAL).
			// They count as ingested in this incarnation's stats: the
			// previous instance's counters died with it.
			if err := e.putLocked(p, false); err != nil {
				return fmt.Errorf("lsm: replay put: %w", err)
			}
		}
	}
	return nil
}
