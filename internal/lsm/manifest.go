package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/series"
	"repro/internal/sstable"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Object names used in the storage backend.
const (
	manifestName = "MANIFEST"
	walName      = "WAL"
)

// Crash-ordering invariants (see DESIGN.md "Durability & crash recovery"):
//
//  1. WAL append happens before a Put is acknowledged; the WAL is the only
//     durable copy of buffered points (memtables AND, in async mode, the
//     pending L0 queue — L0 tables become durable only when the compactor
//     merges them into the run and commits a manifest).
//  2. A compaction persists new SSTable objects first, then commits the
//     manifest (the commit point), then removes retired objects. A crash
//     leaves either the old or the new manifest; table objects not
//     referenced by the committed manifest are orphans, removed and
//     counted at recovery.
//  3. The WAL is rewritten only after the manifest commit that made its
//     points durable, and the rewrite is one atomic object Write — there
//     is never a moment where logged points exist in neither SSTables nor
//     the WAL.
//  4. WAL replay is idempotent: points are upserts keyed by t_g, so a
//     crash between manifest commit and WAL rewrite only replays points
//     that are already durable; Scan surfaces no duplicates.

// RecoveryStats describes what Engine.Open reconstructed from its backend,
// making crash artifacts (torn WAL tails, orphaned SSTables) observable
// instead of silent.
type RecoveryStats struct {
	// ManifestFound is true when a previous instance's manifest existed.
	ManifestFound bool
	// TablesLoaded is the number of SSTables referenced by the manifest
	// and loaded into the run.
	TablesLoaded int
	// OrphanTablesRemoved counts sst-*.tbl table objects and sst-*.rlp
	// rollup sidecars present in the backend but absent from the committed
	// manifest — leftovers of a crash between persisting compaction
	// outputs and committing the manifest (or between commit and retiring
	// old tables). They are deleted.
	OrphanTablesRemoved int
	// ManifestMigrated is true when Open found a version-1 single-run
	// manifest and folded its run into L1 of the multi-level layout. The
	// next commit persists the version-2 format.
	ManifestMigrated bool
	// WALPointsReplayed is the number of intact WAL records re-ingested.
	WALPointsReplayed int
	// WALTorn is true when the WAL ended in a torn or corrupt record —
	// expected after a crash mid-append, a red flag otherwise.
	WALTorn bool
	// WALTornBytes is the number of trailing WAL bytes discarded.
	WALTornBytes int
}

// manifestVersion is the current manifest format: version 3 records one
// table list per level plus, for tables that carry a rollup sidecar, the
// sidecar's bucket window. Version-2 manifests (per-level lists, no
// rollups) and version-1 manifests (no version field, a single "tables"
// list, folded into L1) are accepted on read — older formats simply have
// no rollup entries, and the next commit persists version 3.
const manifestVersion = 3

// manifest is the durable record of level membership. It is rewritten
// atomically after every change to any level, so a recovered engine sees a
// consistent table set even if table files from an interrupted compaction
// linger.
type manifest struct {
	// Version is manifestVersion for newly written manifests; absent (0)
	// in legacy single-run manifests.
	Version int `json:"version,omitempty"`
	// Tables lists SSTable object names in run order (ascending MinTG) —
	// the legacy version-1 field, read but no longer written.
	Tables []string `json:"tables,omitempty"`
	// Levels lists object names per level, L1 first, each in run order.
	Levels [][]string `json:"levels,omitempty"`
	// Rollups maps a table object name to the bucket window of its rollup
	// sidecar (see rollupObjectName). Tables written before rollups were
	// enabled — or with a different window than the current config — keep
	// their own entries; absence means no sidecar. Added in version 3.
	Rollups map[string]int64 `json:"rollups,omitempty"`
	// NextID is the next SSTable identifier to allocate.
	NextID uint64 `json:"next_id"`
}

// tableObjectName returns the storage object name for a table id.
func tableObjectName(id uint64) string {
	return fmt.Sprintf("sst-%016x.tbl", id)
}

// rollupObjectName returns the storage object name of a table's rollup
// sidecar.
func rollupObjectName(id uint64) string {
	return fmt.Sprintf("sst-%016x.rlp", id)
}

// rollupSidecarFor maps a table object name to its sidecar's name.
func rollupSidecarFor(tableName string) string {
	return strings.TrimSuffix(tableName, ".tbl") + ".rlp"
}

// persistTable writes one freshly built table's object to the backend —
// the "persist" step of invariant 2 — and returns the handle to install in
// the run: a lazy block-addressed reader over the persisted object when a
// backend is present (the resident points are then dropped with t), or t
// itself for a memory-only engine. It touches no mutable engine state, so
// the async compactor calls it WITHOUT the engine lock: until the manifest
// commit, nothing references the object, and a crash merely leaves an
// orphan that recovery deletes.
func (e *Engine) persistTable(t *sstable.Table) (sstable.TableHandle, error) {
	// The rollup is computed from the table's own (sorted, unique) points,
	// so a table's summary is always freshly derived from exactly what the
	// table holds — a retention rewrite that truncates a straddling table
	// regenerates its buckets here, never inheriting stale ones.
	var rollup *sstable.Rollup
	if w := e.cfg.RollupWindow; w > 0 {
		rollup = sstable.BuildRollup(t.Points(), w)
	}
	if e.cfg.Backend == nil {
		t.SetRollup(rollup)
		return t, nil
	}
	name := tableObjectName(t.ID())
	if err := e.cfg.Backend.Write(name, t.Encode(0)); err != nil {
		return nil, fmt.Errorf("lsm: persist sstable: %w", err)
	}
	if rollup != nil {
		if err := e.cfg.Backend.Write(rollupObjectName(t.ID()), sstable.EncodeRollup(rollup)); err != nil {
			return nil, fmt.Errorf("lsm: persist rollup sidecar: %w", err)
		}
	}
	r, err := sstable.OpenReader(e.cfg.Backend, name, e.cfg.BlockCache)
	if err != nil {
		return nil, fmt.Errorf("lsm: reopen persisted sstable: %w", err)
	}
	if rollup != nil {
		r.AttachRollup(e.cfg.Backend, rollupObjectName(t.ID()), rollup.Window)
	}
	return r, nil
}

// levelEdit is one level's part of an atomic multi-level change: replace
// tables[i:j] of 0-based level `level` with newTables (which may be empty —
// a pure removal, as when a push-down takes tables out of its source
// level).
type levelEdit struct {
	level     int
	i, j      int
	newTables []sstable.TableHandle
}

// replaceAndCommit swaps L1's tables[i:j] for newTables and commits the
// manifest — the single-level fast form of commitEdits, used by memtable
// flushes and L0 merges (which always land in L1).
func (e *Engine) replaceAndCommit(i, j int, newTables []sstable.TableHandle) (committed bool, err error) {
	return e.commitEdits([]levelEdit{{level: 0, i: i, j: j, newTables: newTables}})
}

// commitEdits applies a set of per-level replaces and commits one manifest
// recording the new state of every level — the commit point of invariant 2.
// A level push-down edits two levels (remove from source, install in
// target) and must expose either both edits or neither; a single manifest
// write is that atomicity. Caller holds the lock: the manifest must be a
// snapshot of e.levels and e.nextID that is atomic with the in-memory
// replaces, and the subsequent rewriteWAL (invariant 3) must observe the
// same state — these are the backend writes that genuinely cannot leave
// the critical section. (See DESIGN.md §7.3 for why the synchronous path
// also runs its persists under the lock: the caller is Put/PutBatch, which
// owns the lock for the whole insert anyway.)
//
// The in-memory replaces and the durable commit succeed or fail together:
// if the manifest write fails, every level's old slice is reinstated
// before the lock is released, so no reader — and no restarted instance —
// ever observes a level the manifest does not record. committed reports
// whether the commit point was reached; when it is true a non-nil err
// comes only from post-commit cleanup (removing retired objects), which
// must NOT be rolled back — the durable state already moved on, and the
// stale objects are orphans the next Open deletes. Removing a retired
// object does not disturb snapshot readers: their lazy readers hold the
// object open with snapshot-at-open semantics. Replaces install fresh
// slices (copy-on-write), so snapshots taken before the commit keep their
// consistent view.
func (e *Engine) commitEdits(edits []levelEdit) (committed bool, err error) {
	var retired []sstable.TableHandle
	var installed []sstable.TableHandle
	prev := make(map[int][]sstable.TableHandle, len(edits))
	for _, ed := range edits {
		lvl := &e.levels[ed.level]
		if _, seen := prev[ed.level]; !seen {
			prev[ed.level] = lvl.tables
		}
		retired = append(retired, lvl.tables[ed.i:ed.j]...)
		installed = append(installed, ed.newTables...)
		lvl.replace(ed.i, ed.j, ed.newTables)
	}
	if err := e.commitRun(); err != nil {
		for d, tables := range prev {
			e.levels[d].tables = tables
		}
		retireHandles(installed)
		return false, err
	}
	retireHandles(retired)
	return true, e.removeRetired(retired)
}

// commitRun writes a manifest recording every level — the commit point of
// invariant 2. Caller holds the lock.
func (e *Engine) commitRun() error {
	if e.cfg.Backend == nil {
		return nil
	}
	m := manifest{Version: manifestVersion, NextID: e.nextID, Levels: make([][]string, len(e.levels))}
	for d := range e.levels {
		names := make([]string, 0, len(e.levels[d].tables))
		for _, t := range e.levels[d].tables {
			name := tableObjectName(t.ID())
			names = append(names, name)
			// Record each table's rollup window so recovery re-attaches the
			// sidecar; tables predating rollups (or written under a different
			// window) carry their own entries.
			if rp, ok := t.(sstable.RollupProvider); ok {
				if w := rp.RollupWindow(); w > 0 {
					if m.Rollups == nil {
						m.Rollups = make(map[string]int64)
					}
					m.Rollups[name] = w
				}
			}
		}
		m.Levels[d] = names
	}
	return e.writeManifest(m)
}

// removeRetired deletes the objects of tables a committed manifest no
// longer references — and their rollup sidecars, in the same batch, so a
// retired table's stale buckets can never outlive its raw points. A
// failure here leaves orphans that the next Open removes; the committed
// state is already consistent.
func (e *Engine) removeRetired(old []sstable.TableHandle) error {
	if e.cfg.Backend == nil {
		return nil
	}
	for _, t := range old {
		if err := e.cfg.Backend.Remove(tableObjectName(t.ID())); err != nil {
			return fmt.Errorf("lsm: remove old sstable: %w", err)
		}
		if rp, ok := t.(sstable.RollupProvider); ok && rp.RollupWindow() > 0 {
			if err := e.cfg.Backend.Remove(rollupObjectName(t.ID())); err != nil && !errors.Is(err, storage.ErrNotFound) {
				return fmt.Errorf("lsm: remove old rollup sidecar: %w", err)
			}
		}
	}
	return nil
}

// writeManifest commits the manifest atomically.
func (e *Engine) writeManifest(m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lsm: marshal manifest: %w", err)
	}
	if err := e.cfg.Backend.Write(manifestName, data); err != nil {
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	return nil
}

// rewriteWAL rewrites the log to contain exactly the points whose only
// durable copy is the WAL (called after a flush or compaction made some of
// them durable). That is the pending L0 queue (flushed earliest, replayed
// first), the memtables, and the uninserted tail of an in-flight PutBatch.
// The rewrite is a single atomic object Write (invariant 3): a crash
// anywhere leaves either the old or the new log, never an empty one.
func (e *Engine) rewriteWAL() error {
	if e.log == nil {
		return nil
	}
	n := e.c0.Len() + e.cseq.Len() + e.cnonseq.Len() + len(e.pendingWAL)
	for _, t := range e.l0 {
		n += t.Len()
	}
	remaining := make([]series.Point, 0, n)
	for _, t := range e.l0 {
		remaining = append(remaining, t.Points()...)
	}
	remaining = e.c0.AppendRange(remaining, math.MinInt64, math.MaxInt64)
	remaining = e.cseq.AppendRange(remaining, math.MinInt64, math.MaxInt64)
	remaining = e.cnonseq.AppendRange(remaining, math.MinInt64, math.MaxInt64)
	remaining = append(remaining, e.pendingWAL...)
	if err := e.log.Rewrite(remaining); err != nil {
		return fmt.Errorf("lsm: rewrite wal: %w", err)
	}
	return nil
}

// recover loads the manifest, SSTables, and WAL from the backend, removing
// crash artifacts (orphaned table objects) and recording what it found in
// e.recovery.
func (e *Engine) recover() error {
	referenced := make(map[string]bool)
	data, err := e.cfg.Backend.Read(manifestName)
	switch {
	case errors.Is(err, storage.ErrNotFound):
		// Fresh database.
	case err != nil:
		return fmt.Errorf("lsm: read manifest: %w", err)
	default:
		e.recovery.ManifestFound = true
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("lsm: parse manifest: %w", err)
		}
		// A version-1 manifest records a single run: fold it into L1 — the
		// one-time migration to the multi-level layout. The fold is purely
		// in-memory; the durable manifest moves to version 2 at the next
		// commit, and until then a crash just re-migrates (idempotent).
		perLevel := m.Levels
		if perLevel == nil {
			perLevel = [][]string{m.Tables}
			if len(m.Tables) > 0 {
				e.recovery.ManifestMigrated = true
			}
		}
		// An engine reopened with fewer configured levels than the manifest
		// records keeps the persisted depth: deeper levels cannot be folded
		// upward without breaking per-level non-overlap. More configured
		// levels extend with empty ones.
		for len(e.levels) < len(perLevel) {
			e.levels = append(e.levels, run{})
			e.levelCounters = append(e.levelCounters, levelCounterSet{})
		}
		e.cfg.Levels = len(e.levels)
		for d, names := range perLevel {
			for _, name := range names {
				// Open lazily: only the header (block index + Bloom filter)
				// is read and validated here. Point blocks stay on disk until
				// a query touches them, so recovering a large manifest costs
				// one small ranged read per table, not a full decode.
				t, err := sstable.OpenReader(e.cfg.Backend, name, e.cfg.BlockCache)
				if err != nil {
					return fmt.Errorf("lsm: open sstable %s: %w", name, err)
				}
				// Re-attach the rollup sidecar the manifest records; the
				// sidecar image itself is read lazily on first use.
				if w := m.Rollups[name]; w > 0 {
					sidecar := rollupSidecarFor(name)
					t.AttachRollup(e.cfg.Backend, sidecar, w)
					referenced[sidecar] = true
				}
				e.levels[d].tables = append(e.levels[d].tables, t)
				referenced[name] = true
				e.recovery.TablesLoaded++
			}
		}
		if !e.checkLevelInvariantsLocked() {
			return errors.New("lsm: recovered level violates non-overlap invariant")
		}
		e.nextID = m.NextID
	}

	// The manifest is the commit point (invariant 2): any table object —
	// or rollup sidecar — it does not reference is a leftover of an
	// interrupted compaction: outputs persisted before a commit that never
	// happened, or retired inputs whose removal was cut short. Delete them
	// so they cannot be mistaken for data and do not leak space.
	names, err := e.cfg.Backend.List()
	if err != nil {
		return fmt.Errorf("lsm: list backend: %w", err)
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "sst-") || referenced[name] ||
			!(strings.HasSuffix(name, ".tbl") || strings.HasSuffix(name, ".rlp")) {
			continue
		}
		if err := e.cfg.Backend.Remove(name); err != nil {
			return fmt.Errorf("lsm: remove orphan sstable %s: %w", name, err)
		}
		e.recovery.OrphanTablesRemoved++
	}

	if e.cfg.WAL {
		if e.cfg.Log != nil {
			e.log = e.cfg.Log
		} else {
			e.log = wal.Open(e.cfg.Backend, walName)
		}
		// With a shared log configured, a leftover private WAL object means
		// this series was last written by a per-series-WAL instance: adopt
		// its points FIRST (they are older than anything the shared log
		// pends), then migrate below.
		var privatePts []series.Point
		migrate := false
		if e.cfg.Log != nil {
			var rep wal.ReplayReport
			var err error
			privatePts, rep, err = wal.ReplayWithReport(e.cfg.Backend, walName)
			if err != nil {
				return fmt.Errorf("lsm: replay legacy wal: %w", err)
			}
			migrate = rep.Points > 0 || rep.TornBytes > 0
			e.recovery.WALPointsReplayed += rep.Points
		}
		pts, rep, err := e.log.Replay()
		if err != nil {
			return fmt.Errorf("lsm: replay wal: %w", err)
		}
		e.recovery.WALPointsReplayed += rep.Points
		e.recovery.WALTorn = rep.Torn
		e.recovery.WALTornBytes = rep.TornBytes
		for _, p := range append(privatePts, pts...) {
			// Replayed points re-enter through the normal classification
			// path but are not re-logged (they are already in the WAL).
			// They count as ingested in this incarnation's stats: the
			// previous instance's counters died with it. Replay is
			// idempotent (invariant 4): a point that already reached an
			// SSTable is an upsert by t_g and surfaces once.
			if err := e.putLocked(p, false); err != nil {
				return fmt.Errorf("lsm: replay put: %w", err)
			}
		}
		if migrate {
			// Move the volatile set into the shared log, then retire the
			// private object. Ordering is crash-safe: until the Remove, a
			// restart replays the private WAL again — idempotent upserts —
			// and after it, the shared checkpoint carries everything.
			if err := e.rewriteWAL(); err != nil {
				return fmt.Errorf("lsm: migrate legacy wal: %w", err)
			}
			if err := e.cfg.Backend.Remove(walName); err != nil {
				return fmt.Errorf("lsm: remove legacy wal: %w", err)
			}
		}
	}
	return nil
}
