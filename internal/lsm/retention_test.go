package lsm

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/series"
	"repro/internal/storage"
)

func TestDropBeforeWholeTables(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, SSTablePoints: 10})
	defer e.Close()
	for i := int64(0); i < 100; i++ {
		e.Put(series.Point{TG: i, TA: i, V: float64(i)})
	}
	// Tables cover [0,9], [10,19], ... drop everything below 50.
	removed, err := e.DropBefore(50)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 50 {
		t.Errorf("removed %d, want 50", removed)
	}
	got := scanAll(e)
	if len(got) != 50 || got[0].TG != 50 {
		t.Errorf("after drop: %d points, first %v", len(got), got[0])
	}
}

func TestDropBeforeStraddlingTable(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, SSTablePoints: 10})
	defer e.Close()
	for i := int64(0); i < 40; i++ {
		e.Put(series.Point{TG: i, TA: i})
	}
	// Cutoff 15 cuts the [10,19] table in half.
	removed, err := e.DropBefore(15)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 15 {
		t.Errorf("removed %d, want 15", removed)
	}
	got := scanAll(e)
	if len(got) != 25 || got[0].TG != 15 {
		t.Errorf("after drop: %d points, first TG %d", len(got), got[0].TG)
	}
	e.mu.Lock()
	ok := e.checkLevelInvariantsLocked()
	e.mu.Unlock()
	if !ok {
		t.Error("run invariant violated after straddling drop")
	}
}

func TestDropBeforePurgesMemtables(t *testing.T) {
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 1000, SeqCapacity: 500})
	defer e.Close()
	for i := int64(0); i < 50; i++ {
		e.Put(series.Point{TG: i, TA: i}) // all buffered, nothing flushed
	}
	removed, err := e.DropBefore(30)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 30 {
		t.Errorf("removed %d, want 30", removed)
	}
	got := scanAll(e)
	if len(got) != 20 || got[0].TG != 30 {
		t.Errorf("after drop: %d points", len(got))
	}
}

func TestDropBeforeKeepsFrontier(t *testing.T) {
	// Retention must not move LAST(R) backwards and reclassify arrivals.
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 10, SeqCapacity: 5})
	defer e.Close()
	for i := int64(0); i < 20; i++ {
		e.Put(series.Point{TG: i, TA: i})
	}
	// Everything dropped; the run may become empty.
	if _, err := e.DropBefore(1000); err != nil {
		t.Fatal(err)
	}
	st0 := e.Stats()
	// A point older than the dropped frontier: with an empty run it is
	// in-order per Definition 3 (nothing on disk is newer) — acceptable;
	// what matters is no crash and consistent counting.
	e.Put(series.Point{TG: 5, TA: 100})
	d := e.Stats().Sub(st0)
	if d.PointsIngested != 1 {
		t.Errorf("ingest after full drop: %+v", d)
	}
	if got := scanAll(e); len(got) != 1 {
		t.Errorf("after full drop + put: %v", got)
	}
}

func TestDropBeforePersists(t *testing.T) {
	b := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, SSTablePoints: 10, Backend: b, WAL: true})
	for i := int64(0); i < 60; i++ {
		e.Put(series.Point{TG: i, TA: i})
	}
	if _, err := e.DropBefore(25); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2 := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, SSTablePoints: 10, Backend: b, WAL: true})
	defer e2.Close()
	got := scanAll(e2)
	if len(got) != 35 || got[0].TG != 25 {
		t.Errorf("recovered after retention: %d points, first %d", len(got), got[0].TG)
	}
}

func TestDropBeforeNoOp(t *testing.T) {
	ps := genWorkload(1000, 50, dist.NewLognormal(4, 1.5), 40)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64})
	defer e.Close()
	ingest(t, e, ps)
	before := len(scanAll(e))
	removed, err := e.DropBefore(math.MinInt64 + 1)
	if err != nil || removed != 0 {
		t.Errorf("no-op drop: %d, %v", removed, err)
	}
	if got := len(scanAll(e)); got != before {
		t.Errorf("no-op drop changed content: %d vs %d", got, before)
	}
}

func TestDropBeforeAsync(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, AsyncCompaction: true})
	for i := int64(0); i < 100; i++ {
		e.Put(series.Point{TG: i, TA: i})
	}
	removed, err := e.DropBefore(40)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 40 {
		t.Errorf("removed %d, want 40", removed)
	}
	got := scanAll(e)
	if len(got) != 60 || got[0].TG != 40 {
		t.Errorf("async retention: %d points", len(got))
	}
	e.Close()
}

func TestDropBeforeClosed(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 8})
	e.Close()
	if _, err := e.DropBefore(0); err != ErrClosed {
		t.Errorf("DropBefore on closed: %v", err)
	}
}
