package lsm

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

// TestEngineAgainstReferenceModel drives random operation sequences
// against both the engine and a trivially correct reference (a map), and
// checks full agreement on every read. Operations include puts (with
// overwrites and out-of-order keys), scans, gets, policy switches, flushes
// — and with a backend, full close/reopen cycles.
func TestEngineAgainstReferenceModel(t *testing.T) {
	for _, withBackend := range []bool{false, true} {
		name := "mem-only"
		if withBackend {
			name = "persistent"
		}
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				runModelTrial(t, int64(trial), withBackend)
			}
		})
	}
}

func runModelTrial(t *testing.T, seed int64, withBackend bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{
		Policy:        Conventional,
		MemBudget:     8 + rng.Intn(64),
		SSTablePoints: 8 + rng.Intn(128),
		Levels:        1 + rng.Intn(3),
		GrowthFactor:  2 + rng.Intn(3),
		Seed:          seed,
	}
	if rng.Intn(2) == 1 {
		cfg.Policy = Separation
		cfg.SeqCapacity = 1 + rng.Intn(cfg.MemBudget-1)
	}
	switch rng.Intn(3) {
	case 0:
		cfg.Compaction = NewLevelingPolicy()
	case 1:
		cfg.Compaction = NewTieringPolicy()
	case 2:
		cfg.Compaction = NewLazyLevelingPolicy()
	}
	var backend *storage.MemBackend
	if withBackend {
		backend = storage.NewMemBackend()
		cfg.Backend = backend
		cfg.WAL = true
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatalf("seed %d: Open: %v", seed, err)
	}
	defer func() { e.Close() }()

	ref := make(map[int64]float64)
	var arrival int64

	checkScan := func(lo, hi int64) {
		got, st, _ := e.Scan(lo, hi)
		var wantKeys []int64
		for k := range ref {
			if k >= lo && k <= hi {
				wantKeys = append(wantKeys, k)
			}
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		if len(got) != len(wantKeys) {
			t.Fatalf("seed %d: Scan(%d,%d) = %d points, want %d", seed, lo, hi, len(got), len(wantKeys))
		}
		for i, k := range wantKeys {
			if got[i].TG != k || got[i].V != ref[k] {
				t.Fatalf("seed %d: Scan[%d] = %+v, want TG=%d V=%v", seed, i, got[i], k, ref[k])
			}
		}
		if st.ResultPoints != len(got) {
			t.Fatalf("seed %d: stats.ResultPoints=%d len=%d", seed, st.ResultPoints, len(got))
		}
	}

	const ops = 3000
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(100); {
		case r < 80: // put (possibly duplicate key)
			tg := rng.Int63n(2000)
			arrival++
			v := rng.Float64()
			if err := e.Put(series.Point{TG: tg, TA: arrival, V: v}); err != nil {
				t.Fatalf("seed %d: Put: %v", seed, err)
			}
			ref[tg] = v
		case r < 88: // get
			tg := rng.Int63n(2000)
			got, ok, _ := e.Get(tg)
			wantV, wantOk := ref[tg]
			if ok != wantOk || (ok && got.V != wantV) {
				t.Fatalf("seed %d: Get(%d) = %v,%v want %v,%v", seed, tg, got.V, ok, wantV, wantOk)
			}
		case r < 94: // scan
			lo := rng.Int63n(2000) - 100
			hi := lo + rng.Int63n(800)
			checkScan(lo, hi)
		case r < 96: // flush
			if err := e.FlushAll(); err != nil {
				t.Fatalf("seed %d: FlushAll: %v", seed, err)
			}
		case r < 98: // policy switch
			if rng.Intn(2) == 0 {
				err = e.SetPolicy(Conventional, 0)
			} else {
				err = e.SetPolicy(Separation, 1+rng.Intn(cfg.MemBudget-1))
			}
			if err != nil {
				t.Fatalf("seed %d: SetPolicy: %v", seed, err)
			}
		default: // crash/reopen (persistent mode only)
			if backend == nil {
				continue
			}
			// Simulated crash: abandon without Close; WAL must recover.
			e2cfg := e.Config()
			e2cfg.Backend = backend
			e2, err := Open(e2cfg)
			if err != nil {
				t.Fatalf("seed %d: reopen: %v", seed, err)
			}
			e = e2
		}
	}
	checkScan(math.MinInt64+1, math.MaxInt64)
	e.mu.Lock()
	ok := e.checkLevelInvariantsLocked()
	e.mu.Unlock()
	if !ok {
		t.Fatalf("seed %d: run invariant violated at end", seed)
	}
}
