package lsm

import (
	"sort"

	"repro/internal/series"
	"repro/internal/sstable"
)

// Snapshot is an immutable, point-in-time view of everything readable in
// the engine: the sorted run, the pending L0 queue (async mode), and frozen
// images of the three memtables. Taking one is an O(1) critical section —
// the table slices are published copy-on-write by the write path (see
// run.replace / run.appendTable / enqueueL0), and the memtable images are
// cached frozen slices that are only rebuilt after a mutation — so all
// merging, scanning, and aggregation happens with no engine lock held.
// A long Scan therefore never blocks Put/PutBatch, and a backend-bound
// compaction never blocks readers.
//
// A Snapshot observes exactly the engine state at the moment it was taken:
// writes that land afterwards are invisible, and because Put/PutBatch hold
// the engine lock for the whole call, a snapshot can never observe half of
// an acknowledged batch. Run tables may be lazy readers; a compaction that
// retires one mid-iteration cannot invalidate the snapshot, because each
// reader keeps its storage object open (snapshot-at-open semantics of
// storage.OpenRange) — the retired table merely stops populating the
// shared block cache.
type Snapshot struct {
	levels [][]sstable.TableHandle // L1..Lk; per level ascending MinTG, non-overlapping; shallower shadows deeper
	l0     []*sstable.Table        // pending L0 tables, FIFO (newer shadows older; all shadow the levels)
	mems   [][]series.Point        // frozen c0, cseq, cnonseq images (later shadows earlier)
}

// Snapshot captures the engine's current readable state under a short
// critical section. The result is safe for concurrent use by any number of
// goroutines and stays valid (and consistent) forever.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

// snapshotLocked builds a Snapshot; caller holds the lock. Only slice
// headers and cached frozen images are copied — O(levels) unless a
// memtable was written since its last snapshot (then that memtable is
// copied once).
func (e *Engine) snapshotLocked() *Snapshot {
	levels := make([][]sstable.TableHandle, len(e.levels))
	for d := range e.levels {
		levels[d] = e.levels[d].tables
	}
	return &Snapshot{
		levels: levels,
		l0:     e.l0,
		mems: [][]series.Point{
			e.c0.Snapshot(),
			e.cseq.Snapshot(),
			e.cnonseq.Snapshot(),
		},
	}
}

// overlapTables returns the half-open index interval [i, j) of tables whose
// generation-time ranges intersect [lo, hi]. tables must be sorted by MinTG
// with non-overlapping ranges (the run invariant).
func overlapTables(tables []sstable.TableHandle, lo, hi int64) (int, int) {
	i := sort.Search(len(tables), func(i int) bool { return tables[i].MaxTG() >= lo })
	j := sort.Search(len(tables), func(j int) bool { return tables[j].MinTG() > hi })
	if i > j {
		i = j
	}
	return i, j
}

// rangeSlice returns the sub-slice of pts (sorted by TG) with generation
// time in [lo, hi], without copying.
func rangeSlice(pts []series.Point, lo, hi int64) []series.Point {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].TG >= lo })
	j := sort.Search(len(pts), func(j int) bool { return pts[j].TG > hi })
	if j < i {
		j = i
	}
	return pts[i:j]
}

// Scan returns all points with generation time in [lo, hi], merged across
// the snapshot's sources (memtables shadow L0 shadow the run), sorted by
// generation time, with the read-cost accounting of ScanStats. It holds no
// lock. A failed block read (backend fault, corrupt block) surfaces as an
// error along with the stats accumulated so far.
func (s *Snapshot) Scan(lo, hi int64) ([]series.Point, ScanStats, error) {
	it := s.NewIterator(lo, hi)
	out := make([]series.Point, 0, it.capacityHint())
	for it.Next() {
		out = append(out, it.Point())
	}
	if err := it.Err(); err != nil {
		return nil, it.Stats(), err
	}
	return out, it.Stats(), nil
}

// Get returns the point with generation time tg, looking in the memtable
// images first (in engine order), then newest-first in L0, then level by
// level L1..Lk (a shallower level holds the newer version of a duplicated
// generation time).
func (s *Snapshot) Get(tg int64) (series.Point, bool, error) {
	for _, mem := range s.mems {
		i := sort.Search(len(mem), func(i int) bool { return mem[i].TG >= tg })
		if i < len(mem) && mem[i].TG == tg {
			return mem[i], true, nil
		}
	}
	// Newest L0 tables shadow older ones and every level.
	for k := len(s.l0) - 1; k >= 0; k-- {
		if t := s.l0[k]; t.Overlaps(tg, tg) {
			if p, ok, err := t.Get(tg); err != nil {
				return series.Point{}, false, err
			} else if ok {
				return p, true, nil
			}
		}
	}
	for _, tables := range s.levels {
		i, j := overlapTables(tables, tg, tg)
		for _, t := range tables[i:j] {
			p, ok, err := t.Get(tg)
			if err != nil {
				return series.Point{}, false, err
			}
			if ok {
				return p, true, nil
			}
		}
	}
	return series.Point{}, false, nil
}

// RollupCandidate is one level table whose clipped query range is
// covered by no other snapshot source, so an aggregate may serve it from
// its precomputed rollup buckets instead of raw blocks. Lo and Hi are
// the table's range clipped to the query range.
type RollupCandidate struct {
	Table  sstable.TableHandle
	Rollup sstable.RollupProvider // the same handle, as its rollup view
	Window int64                  // the rollup's bucket width
	Level  int                    // 0-based level index (0 = L1)
	Lo, Hi int64
}

// RollupCandidates returns the level tables overlapping [lo, hi] that
// carry a rollup and whose clipped range [max(MinTG,lo), min(MaxTG,hi)]
// intersects no other source — no table in another level, no pending L0
// table, no in-range memtable point. Such a table is the unique owner of
// every generation time in its clipped range, so its rollup buckets are
// exact over that range; everything else must be folded raw. Tables in
// the candidate's own level never disqualify it: within one level the
// run invariant keeps tables strictly disjoint.
func (s *Snapshot) RollupCandidates(lo, hi int64) []RollupCandidate {
	if lo > hi {
		return nil
	}
	var out []RollupCandidate
	for d, tables := range s.levels {
		i, j := overlapTables(tables, lo, hi)
		for _, t := range tables[i:j] {
			rp, ok := t.(sstable.RollupProvider)
			if !ok {
				continue
			}
			w := rp.RollupWindow()
			if w <= 0 {
				continue
			}
			clo, chi := t.MinTG(), t.MaxTG()
			if clo < lo {
				clo = lo
			}
			if chi > hi {
				chi = hi
			}
			if s.contested(d, clo, chi) {
				continue
			}
			out = append(out, RollupCandidate{Table: t, Rollup: rp, Window: w, Level: d, Lo: clo, Hi: chi})
		}
	}
	return out
}

// contested reports whether any snapshot source outside level d holds
// (or may hold) points with generation time in [clo, chi]. Table and
// memtable checks are by range overlap, which can only over-report —
// a conservative answer merely keeps a table on the raw path.
func (s *Snapshot) contested(d int, clo, chi int64) bool {
	for d2, tables := range s.levels {
		if d2 == d {
			continue
		}
		if i, j := overlapTables(tables, clo, chi); j > i {
			return true
		}
	}
	for _, t := range s.l0 {
		if t.Overlaps(clo, chi) {
			return true
		}
	}
	for _, mem := range s.mems {
		if len(rangeSlice(mem, clo, chi)) > 0 {
			return true
		}
	}
	return false
}

// NewIterator returns a streaming k-way merge iterator over the snapshot's
// points with generation time in [lo, hi]. Table sources stream block by
// block — at most one decoded block per table is held outside the shared
// cache — so arbitrarily large ranges run in O(#sources) memory.
func (s *Snapshot) NewIterator(lo, hi int64) *MergeIterator {
	return s.newIterator(lo, hi, nil)
}

// NewIteratorExcluding is NewIterator minus the level tables whose IDs
// are in exclude — the residual raw scan of a rollup-served aggregate.
// Excluding a table is only sound when its points are not needed for
// shadowing decisions, which is exactly the RollupCandidates contract:
// a candidate shares no generation time with any other source.
func (s *Snapshot) NewIteratorExcluding(lo, hi int64, exclude map[uint64]bool) *MergeIterator {
	return s.newIterator(lo, hi, exclude)
}

func (s *Snapshot) newIterator(lo, hi int64, exclude map[uint64]bool) *MergeIterator {
	it := &MergeIterator{}
	k := len(s.levels)
	// Level tables: within one level, non-overlapping tables share a
	// priority; across levels, shallower (newer) levels get the higher
	// priority so L1 shadows L2 shadows ... Lk on duplicated generation
	// times. Their iterators report block reads into the merge iterator's
	// shared collector. LevelTablesTouched records the per-level seek
	// count for the level-aware read analyses.
	if k > 0 {
		it.stats.LevelTablesTouched = make([]int, k)
	}
	for d, tables := range s.levels {
		i, j := overlapTables(tables, lo, hi)
		for _, t := range tables[i:j] {
			if exclude[t.ID()] {
				continue
			}
			it.stats.TablesTouched++
			it.stats.TablePoints += t.Len()
			it.stats.LevelTablesTouched[d]++
			it.addSource(t.Iter(lo, hi, &it.blocks), k-1-d)
		}
	}
	// Pending L0 tables (async mode): newer tables shadow older ones and
	// every level. Accounting matches the HDD read model: a touched table
	// is charged whole.
	for n, t := range s.l0 {
		if !t.Overlaps(lo, hi) {
			continue
		}
		it.stats.TablesTouched++
		it.stats.TablePoints += t.Len()
		it.addSource(t.Iter(lo, hi, &it.blocks), k+n)
	}
	// Memtable images shadow everything on disk; among themselves, later
	// (cnonseq over cseq over c0) wins, matching the engine's merge order.
	base := k + len(s.l0)
	for n, mem := range s.mems {
		sub := rangeSlice(mem, lo, hi)
		it.stats.MemPoints += len(sub)
		it.addSource(sstable.IterPoints(sub), base+n)
	}
	it.init()
	return it
}
