package lsm_test

// Snapshot-isolation stress: readers (Scan, Get, Aggregate) run full-tilt
// against a writer doing PutBatch on an engine with the async compactor
// enabled, under -race. Because Put/PutBatch hold the engine lock for the
// whole call and readers work on O(1) snapshots, every scan must observe
// exactly the union of some acknowledged prefix of batches — never a torn
// batch, never a point from an unacknowledged batch, never a missing point
// from an acknowledged one.

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/series"
)

func TestConcurrentReadsSeeAcknowledgedPrefix(t *testing.T) {
	const (
		batchSize = 50
		nBatches  = 120
	)
	nPoints := batchSize * nBatches

	// Globally shuffled generation times 0..nPoints-1, chunked into batches:
	// every batch is a random subset, so batches interleave heavily in TG
	// space and exercise memtable/L0/run shadowing. V encodes TG for value
	// verification; prefix sums of V let Aggregate verify completeness.
	rng := rand.New(rand.NewSource(7))
	tgs := rng.Perm(nPoints)
	batches := make([][]series.Point, nBatches)
	batchOf := make(map[int64]int, nPoints) // TG → batch index
	prefixSum := make([]float64, nBatches+1)
	for b := range batches {
		pts := make([]series.Point, batchSize)
		for i := range pts {
			tg := int64(tgs[b*batchSize+i])
			pts[i] = series.Point{TG: tg, TA: int64(b*batchSize + i), V: float64(tg)}
			batchOf[tg] = b
			prefixSum[b+1] += float64(tg)
		}
		prefixSum[b+1] += prefixSum[b]
		batches[b] = pts
	}

	e, err := lsm.Open(lsm.Config{
		Policy:          lsm.Conventional,
		MemBudget:       256,
		SSTablePoints:   128,
		AsyncCompaction: true,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()

	var acked atomic.Int64 // batches acknowledged by PutBatch so far
	var done atomic.Bool
	var wg sync.WaitGroup

	// checkPrefix verifies that a scan observed exactly the first m batches
	// for some m in [before, after].
	checkPrefix := func(kind string, count int, before, after int64, tgOK func(m int) bool) {
		if count%batchSize != 0 {
			t.Errorf("%s: saw %d points, not a whole number of batches — torn batch", kind, count)
			return
		}
		m := count / batchSize
		if int64(m) < before || int64(m) > after {
			t.Errorf("%s: saw %d batches, acknowledged window was [%d, %d]", kind, m, before, after)
			return
		}
		if !tgOK(m) {
			t.Errorf("%s: observed state is not exactly the first %d batches", kind, m)
		}
	}

	// Scan readers: full-range scans, set-exact prefix check.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				before := acked.Load()
				pts, st, _ := e.Scan(math.MinInt64+1, math.MaxInt64)
				after := acked.Load()
				if !series.IsSortedByTG(pts) {
					t.Error("scan: result not sorted by TG")
					return
				}
				if st.ResultPoints != len(pts) {
					t.Errorf("scan: ResultPoints = %d, len = %d", st.ResultPoints, len(pts))
					return
				}
				checkPrefix("scan", len(pts), before, after, func(m int) bool {
					for _, p := range pts {
						if b, ok := batchOf[p.TG]; !ok || b >= m || p.V != float64(p.TG) {
							return false
						}
					}
					return true
				})
			}
		}()
	}

	// Get readers: any point from an already-acknowledged batch must be
	// found with its value.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !done.Load() {
				a := acked.Load()
				if a == 0 {
					continue
				}
				b := rng.Int63n(a)
				want := batches[b][rng.Intn(batchSize)]
				got, ok, _ := e.Get(want.TG)
				if !ok || got.V != want.V {
					t.Errorf("get(%d): got (%+v, %v), want value %g from acked batch %d", want.TG, got, ok, want.V, b)
					return
				}
			}
		}(int64(100 + r))
	}

	// Aggregate readers: the bucket fold streams off the same snapshot
	// iterator; total count and exact value sum must match a prefix.
	// (All values are small integers, so float sums are exact regardless
	// of association order.)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				before := acked.Load()
				buckets, st, err := query.Aggregate(e, 0, int64(nPoints), 1000)
				after := acked.Load()
				if err != nil {
					t.Errorf("aggregate: %v", err)
					return
				}
				var count int
				var sum float64
				for _, b := range buckets {
					count += int(b.Count)
					sum += b.Sum
				}
				if st.ResultPoints != count {
					t.Errorf("aggregate: ResultPoints = %d, bucket count sum = %d", st.ResultPoints, count)
					return
				}
				checkPrefix("aggregate", count, before, after, func(m int) bool {
					return sum == prefixSum[m]
				})
			}
		}()
	}

	for b, pts := range batches {
		if err := e.PutBatch(pts); err != nil {
			t.Fatalf("PutBatch %d: %v", b, err)
		}
		acked.Store(int64(b + 1))
	}
	done.Store(true)
	wg.Wait()

	// Everything settled: the final state must be the full prefix.
	if err := e.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	pts, _, _ := e.Scan(math.MinInt64+1, math.MaxInt64)
	if len(pts) != nPoints {
		t.Fatalf("final scan: %d points, want %d", len(pts), nPoints)
	}
}
