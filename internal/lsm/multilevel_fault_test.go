package lsm

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

// runLevelNames returns the live levels' object names, one slice per level.
func runLevelNames(e *Engine) [][]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]string, len(e.levels))
	for d := range e.levels {
		for _, h := range e.levels[d].tables {
			out[d] = append(out[d], tableObjectName(h.ID()))
		}
	}
	return out
}

// manifestLevelNames decodes the durable manifest's per-level table lists
// (a legacy v1 manifest reads as one level).
func manifestLevelNames(t *testing.T, b storage.Backend) [][]string {
	t.Helper()
	data, err := b.Read(manifestName)
	if errors.Is(err, storage.ErrNotFound) {
		return nil
	}
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	if m.Levels == nil {
		return [][]string{m.Tables}
	}
	return m.Levels
}

func sameLevelNames(a, b [][]string) bool {
	// Trailing empty levels are equal to absent ones (a shallower durable
	// manifest vs. a deeper configured engine before any deep commit).
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	for d := 0; d < maxLen; d++ {
		var la, lb []string
		if d < len(a) {
			la = a[d]
		}
		if d < len(b) {
			lb = b[d]
		}
		if !sameNames(la, lb) {
			return false
		}
	}
	return true
}

// TestMultiLevelCompactionFaultKeepsLevelsAndManifestInAgreement sweeps a
// crash into every backend write of the multi-level compaction pipeline —
// L0-head merges into L1 and policy-picked push-downs between deeper
// levels, each with its own multi-level manifest commit (commitEdits) — and
// asserts after every failure point that (a) every live level agrees with
// the durable manifest's corresponding level and (b) a restart recovers
// exactly the acknowledged points. This mirrors the single-run
// replaceAndCommit sweep above for the commitEdits path: a commit that
// edits two levels at once must roll back both or neither.
func TestMultiLevelCompactionFaultKeepsLevelsAndManifestInAgreement(t *testing.T) {
	for budget := int64(0); ; budget++ {
		if budget > 1024 {
			t.Fatal("multi-level drain never succeeded within the budget sweep")
		}
		fb := storage.NewFaultBackend(storage.NewMemBackend())
		e, err := Open(Config{
			Policy: Conventional, MemBudget: 4, SSTablePoints: 4,
			Levels: 3, GrowthFactor: 2,
			Backend: fb, WAL: true,
			AsyncCompaction: true, Scheduler: nopScheduler{},
		})
		if err != nil {
			t.Fatalf("budget %d: open: %v", budget, err)
		}

		acked := make(map[int64]float64)
		put := func(tg int64, v float64) {
			t.Helper()
			if err := e.Put(series.Point{TG: tg, TA: int64(len(acked)) + tg, V: v}); err != nil {
				t.Fatalf("budget %d: put %d: %v", budget, tg, err)
			}
			acked[tg] = v
		}

		// Fault-free build: enough in-order data to overflow L1 (target
		// 4×2=8 points) and L2 (target 16) so push-downs are part of the
		// faulted drain below.
		for i := int64(0); i < 32; i++ {
			put(i, float64(i))
		}
		// Backfill overwrites so L0 merges genuinely rewrite L1 slices.
		for i := int64(0); i < 16; i++ {
			put((i*5)%32, -float64((i * 5) % 32))
		}

		// Faulted drain: every CompactOnce unit — L0 merge or level
		// push-down — runs until the injected crash (or completion).
		fb.SetBudget(budget)
		var ferr error
		for {
			remaining, cerr := e.CompactOnce()
			if cerr != nil {
				ferr = cerr
				break
			}
			if remaining == 0 {
				break
			}
		}
		fb.SetBudget(-1)

		if ferr != nil && !errors.Is(ferr, storage.ErrInjected) {
			t.Fatalf("budget %d: error lost its cause: %v", budget, ferr)
		}

		// (a) Per-level agreement between the live tree and the durable
		// manifest: a failed commitEdits must leave no level half-moved.
		live, durable := runLevelNames(e), manifestLevelNames(t, fb)
		if !sameLevelNames(live, durable) {
			t.Fatalf("budget %d: live levels %v diverged from manifest %v (err=%v)",
				budget, live, durable, ferr)
		}

		// (b) Restart equivalence: recovery (manifest + WAL) serves exactly
		// the acknowledged points, and the recovered tree still satisfies
		// the per-level invariants.
		closeWithManualDrain(t, e)
		re, rerr := Open(Config{
			Policy: Conventional, MemBudget: 4, SSTablePoints: 4,
			Levels: 3, GrowthFactor: 2, Backend: fb, WAL: true,
		})
		if rerr != nil {
			t.Fatalf("budget %d: reopen: %v", budget, rerr)
		}
		re.mu.Lock()
		ok := re.checkLevelInvariantsLocked()
		re.mu.Unlock()
		if !ok {
			t.Fatalf("budget %d: recovered tree violates level invariants", budget)
		}
		pts, _, serr := re.Scan(math.MinInt64+1, math.MaxInt64)
		if serr != nil {
			t.Fatalf("budget %d: scan after restart: %v", budget, serr)
		}
		if len(pts) != len(acked) {
			t.Fatalf("budget %d: restart sees %d points, want %d", budget, len(pts), len(acked))
		}
		for _, p := range pts {
			if want, okk := acked[p.TG]; !okk || want != p.V {
				t.Fatalf("budget %d: restart point (%d,%g), want value %g", budget, p.TG, p.V, want)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatalf("budget %d: close reopened: %v", budget, err)
		}

		if ferr == nil {
			// The whole drain fit in the budget: every earlier iteration
			// crashed at a distinct backend write, so the sweep is complete.
			return
		}
	}
}
