package lsm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/storage"
)

// TestRestartOpensLazyReaders is the acceptance test for the block-addressed
// read path: recovering an engine must open lazy readers — header, index and
// Bloom filter only — and never materialize table points. Scans after the
// restart must be byte-identical to before, with every block request
// accounted in the shared cache (hits+misses == blocks requested).
func TestRestartOpensLazyReaders(t *testing.T) {
	backend := storage.NewMemBackend()
	cfg := Config{
		Policy:        Conventional,
		MemBudget:     64,
		SSTablePoints: 128,
		Backend:       backend,
		WAL:           true,
	}
	ps := genWorkload(6000, 50, dist.NewLognormal(4, 1.6), 7)

	e := mustOpen(t, cfg)
	ingest(t, e, ps)
	if err := e.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	want, _, err := e.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil {
		t.Fatalf("pre-restart scan: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c := cache.New(1 << 20)
	cfg.BlockCache = c
	e2 := mustOpen(t, cfg)
	defer e2.Close()

	// Recovery must not have decoded any block: zero resident points, zero
	// cache traffic (the header read does not pass through the cache).
	if n := e2.ResidentRunPoints(); n != 0 {
		t.Fatalf("after Open, run holds %d resident points, want 0", n)
	}
	if cs := c.Stats(); cs.Hits+cs.Misses != 0 || cs.Bytes != 0 {
		t.Fatalf("after Open, cache saw traffic: %+v", cs)
	}
	tables, points := e2.RunTables()
	if tables == 0 || points != len(want) {
		t.Fatalf("recovered run: %d tables, %d points, want %d points", tables, points, len(want))
	}

	got, st, err := e2.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil {
		t.Fatalf("post-restart scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("post-restart scan: %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("post-restart scan diverges at %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Every block the scan requested is accounted in the shared cache.
	cs := c.Stats()
	if requested := st.BlocksRead + st.BlocksCached; cs.Hits+cs.Misses != requested {
		t.Fatalf("cache hits+misses = %d, blocks requested = %d", cs.Hits+cs.Misses, requested)
	}
	if st.BlocksRead == 0 {
		t.Fatal("cold scan reported zero block reads")
	}
	// Even after reading, the handles themselves keep nothing resident:
	// decoded blocks live in the cache, not in the run.
	if n := e2.ResidentRunPoints(); n != 0 {
		t.Fatalf("after scan, run holds %d resident points, want 0", n)
	}

	// A warm re-scan is served from the cache.
	_, st2, err := e2.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil {
		t.Fatalf("warm scan: %v", err)
	}
	if st2.BlocksRead != 0 || st2.BlocksCached == 0 {
		t.Fatalf("warm scan: %d read / %d cached, want all cached", st2.BlocksRead, st2.BlocksCached)
	}
}

// TestScanSurvivesReadFaultSweep injects a block-read failure at every
// possible read op of a scan: for each budget k the k+1-th ranged read
// fails. The scan must surface the error (not panic, not return partial
// data as success), the engine lock must not wedge, and once the fault is
// disarmed the same engine — and the same shared cache — must serve exact
// results again.
func TestScanSurvivesReadFaultSweep(t *testing.T) {
	// Build a durable engine once, then reopen it per sweep step.
	inner := storage.NewMemBackend()
	baseCfg := Config{
		Policy:        Conventional,
		MemBudget:     32,
		SSTablePoints: 64,
		Backend:       inner,
		WAL:           true,
	}
	ps := genWorkload(2000, 50, dist.NewLognormal(4, 1.6), 11)
	e := mustOpen(t, baseCfg)
	ingest(t, e, ps)
	if err := e.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	want, _, err := e.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil {
		t.Fatalf("reference scan: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fb := storage.NewFaultBackend(inner)
	cfg := baseCfg
	cfg.Backend = fb

	// How many ranged reads does one cold full scan need? Measure on a
	// disposable engine, so the sweep below covers every read op of a cold
	// scan.
	probeCfg := cfg
	probeCfg.BlockCache = cache.New(1 << 20)
	probe := mustOpen(t, probeCfg)
	before := fb.ReadOps()
	if _, _, err := probe.Scan(math.MinInt64+1, math.MaxInt64); err != nil {
		t.Fatalf("probe scan: %v", err)
	}
	reads := fb.ReadOps() - before
	probe.Close()
	if reads == 0 {
		t.Fatal("cold scan performed no ranged reads")
	}

	for k := int64(0); k < reads; k++ {
		// Fresh cache per step so every scan is cold and read op k is
		// always a real block fetch.
		cfg.BlockCache = cache.New(1 << 20)
		step := mustOpen(t, cfg)

		fb.SetReadBudget(k)
		_, _, err := step.Scan(math.MinInt64+1, math.MaxInt64)
		if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("budget %d: scan err = %v, want ErrInjected", k, err)
		}
		fb.SetReadBudget(-1)

		// The engine is not wedged and the cache was not poisoned by the
		// failed scan: the retry returns exact results.
		got, _, err := step.Scan(math.MinInt64+1, math.MaxInt64)
		if err != nil {
			t.Fatalf("budget %d: retry scan: %v", k, err)
		}
		if len(got) != len(want) {
			t.Fatalf("budget %d: retry scan %d points, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("budget %d: retry diverges at %d: %+v != %+v", k, i, got[i], want[i])
			}
		}
		if err := step.Close(); err != nil {
			t.Fatalf("budget %d: Close: %v", k, err)
		}
	}

	// Short reads (torn ranged read) must also surface as an error, then
	// recover cleanly.
	cfg.BlockCache = cache.New(1 << 20)
	e3 := mustOpen(t, cfg)
	defer e3.Close()
	fb.SetShortReads(true)
	if _, _, err := e3.Scan(math.MinInt64+1, math.MaxInt64); err == nil {
		t.Fatal("scan under short reads succeeded")
	}
	fb.SetShortReads(false)
	got, _, err := e3.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil || len(got) != len(want) {
		t.Fatalf("scan after short reads: %d points, err %v", len(got), err)
	}

	// Get must surface injected faults too, without wedging. Cold engine:
	// e3's cache is warm by now and would absorb the read.
	cfg.BlockCache = cache.New(1 << 20)
	e4 := mustOpen(t, cfg)
	defer e4.Close()
	fb.SetReadBudget(0)
	if _, _, err := e4.Get(want[len(want)/2].TG); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Get under fault: err = %v, want ErrInjected", err)
	}
	fb.SetReadBudget(-1)
	if p, ok, err := e4.Get(want[len(want)/2].TG); err != nil || !ok || p != want[len(want)/2] {
		t.Fatalf("Get after disarm: %+v, %v, %v", p, ok, err)
	}
}
