package lsm

import (
	"errors"
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

func TestEngineSurfacesStorageFaults(t *testing.T) {
	// Exhaust the write budget at every possible point; the engine must
	// return an error (never panic, never silently drop) once the backend
	// dies.
	for budget := int64(0); budget < 40; budget += 3 {
		fb := storage.NewFaultBackend(storage.NewMemBackend())
		fb.SetBudget(budget)
		e, err := Open(Config{Policy: Conventional, MemBudget: 4, Backend: fb, WAL: true})
		if err != nil {
			// Opening may already fail for tiny budgets — acceptable.
			continue
		}
		var sawErr error
		for i := int64(0); i < 200; i++ {
			if err := e.Put(series.Point{TG: i, TA: i}); err != nil {
				sawErr = err
				break
			}
		}
		if sawErr == nil {
			t.Fatalf("budget %d: 200 puts with WAL never hit the injected fault", budget)
		}
		if !errors.Is(sawErr, storage.ErrInjected) {
			t.Fatalf("budget %d: error lost its cause: %v", budget, sawErr)
		}
		e.Close()
	}
}

func TestEngineFaultDuringCompactionKeepsMemoryConsistent(t *testing.T) {
	// A fault mid-compaction must not corrupt in-memory reads for the
	// points that were already durable.
	fb := storage.NewFaultBackend(storage.NewMemBackend())
	e, err := Open(Config{Policy: Conventional, MemBudget: 8, Backend: fb, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ingest enough to create several tables.
	var i int64
	for ; i < 64; i++ {
		if err := e.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the disk, then write an out-of-order point to force a merge.
	fb.SetBudget(0)
	for ; i < 128; i++ {
		if err := e.Put(series.Point{TG: i % 32, TA: i, V: -1}); err != nil {
			break
		}
	}
	// Whatever happened, previously durable points must still be readable.
	for k := int64(0); k < 8; k++ {
		if _, ok, _ := e.Get(k); !ok {
			t.Errorf("durable point %d lost after storage fault", k)
		}
	}
	e.Close()
}

func TestAsyncEngineSurfacesBackgroundFault(t *testing.T) {
	fb := storage.NewFaultBackend(storage.NewMemBackend())
	fb.SetBudget(6)
	e, err := Open(Config{Policy: Conventional, MemBudget: 4, Backend: fb, WAL: false, AsyncCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := int64(0); i < 10_000; i++ {
		if err := e.Put(series.Point{TG: i, TA: i}); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		// The error can also surface at FlushAll/Close.
		sawErr = e.FlushAll()
	}
	if sawErr == nil {
		t.Fatal("background fault never surfaced")
	}
	if !errors.Is(sawErr, storage.ErrInjected) {
		t.Fatalf("error lost its cause: %v", sawErr)
	}
	e.Close()
}

// TestCloseReleasesResourcesOnFlushError is the regression test for the
// compactor-goroutine leak: when the final flush fails (sticky background
// error, dead backend), Close must still stop the compactor, close the
// WAL, and mark the engine closed — while reporting the flush error.
func TestCloseReleasesResourcesOnFlushError(t *testing.T) {
	fb := storage.NewFaultBackend(storage.NewMemBackend())
	fb.SetBudget(6)
	e, err := Open(Config{Policy: Conventional, MemBudget: 4, Backend: fb, WAL: false, AsyncCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10_000; i++ {
		if err := e.Put(series.Point{TG: i, TA: i}); err != nil {
			break
		}
	}
	err = e.Close()
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Close should report the flush error, got: %v", err)
	}
	// The engine must actually be closed now...
	if perr := e.Put(series.Point{TG: 1, TA: 1}); !errors.Is(perr, ErrClosed) {
		t.Fatalf("Put after failed Close: %v (engine not closed)", perr)
	}
	// ...idempotently...
	if cerr := e.Close(); cerr != nil {
		t.Fatalf("second Close: %v", cerr)
	}
	// ...and the compactor goroutine must have exited. bgDone is closed by
	// the compactor loop itself, so a successful receive proves it ended.
	select {
	case <-e.bgDone:
	default:
		t.Fatal("compactor goroutine still running after Close")
	}
}

// TestPutBatchSingleWALAppend verifies a batch is logged as one framed
// backend append, not one per point, and that WALRecords still counts
// records (points).
func TestPutBatchSingleWALAppend(t *testing.T) {
	inner := storage.NewMemBackend()
	fb := storage.NewFaultBackend(inner)
	e, err := Open(Config{Policy: Conventional, MemBudget: 1024, Backend: fb, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := fb.Ops()
	ps := make([]series.Point, 100)
	for i := range ps {
		ps[i] = series.Point{TG: int64(i), TA: int64(i), V: float64(i)}
	}
	if err := e.PutBatch(ps); err != nil {
		t.Fatal(err)
	}
	// Nothing flushed (budget 1024), so the only backend op is the WAL
	// batch append.
	if got := fb.Ops() - before; got != 1 {
		t.Errorf("PutBatch of 100 points performed %d backend writes, want 1", got)
	}
	if got := e.Stats().WALRecords; got != 100 {
		t.Errorf("WALRecords = %d, want 100", got)
	}
}

// TestPutBatchTailSurvivesMidBatchFlush covers the pendingWAL invariant: a
// flush triggered partway through a batch rewrites the WAL, which must
// retain the batch's not-yet-inserted tail. Crash right after the batch is
// acknowledged; every batch point must recover.
func TestPutBatchTailSurvivesMidBatchFlush(t *testing.T) {
	b := storage.NewMemBackend()
	e, err := Open(Config{Policy: Conventional, MemBudget: 8, Backend: b, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	// 20 points with budget 8: flushes fire at points 8 and 16, mid-batch.
	ps := make([]series.Point, 20)
	for i := range ps {
		ps[i] = series.Point{TG: int64(i), TA: int64(i), V: float64(i)}
	}
	if err := e.PutBatch(ps); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close), reopen, everything acknowledged must be there.
	e2, err := Open(Config{Policy: Conventional, MemBudget: 8, Backend: b, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, _, _ := e2.Scan(0, 1<<40)
	if len(got) != len(ps) {
		t.Fatalf("recovered %d points after mid-batch flush crash, want %d", len(got), len(ps))
	}
	for i, p := range got {
		if p != ps[i] {
			t.Fatalf("point %d = %v, want %v", i, p, ps[i])
		}
	}
}
