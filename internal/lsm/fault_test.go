package lsm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

// faultBackend wraps a backend and starts failing all writes after a
// budget of successful operations, simulating a full or dying disk.
type faultBackend struct {
	inner storage.Backend
	mu    sync.Mutex
	left  int
}

var errInjected = errors.New("injected storage fault")

func (f *faultBackend) take() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.left <= 0 {
		return errInjected
	}
	f.left--
	return nil
}

func (f *faultBackend) Write(name string, data []byte) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.inner.Write(name, data)
}

func (f *faultBackend) Append(name string, data []byte) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.inner.Append(name, data)
}

func (f *faultBackend) Read(name string) ([]byte, error) { return f.inner.Read(name) }
func (f *faultBackend) Remove(name string) error         { return f.inner.Remove(name) }
func (f *faultBackend) List() ([]string, error)          { return f.inner.List() }
func (f *faultBackend) Size(name string) (int64, error)  { return f.inner.Size(name) }

func TestEngineSurfacesStorageFaults(t *testing.T) {
	// Exhaust the write budget at every possible point; the engine must
	// return an error (never panic, never silently drop) once the backend
	// dies.
	for budget := 0; budget < 40; budget += 3 {
		fb := &faultBackend{inner: storage.NewMemBackend(), left: budget}
		e, err := Open(Config{Policy: Conventional, MemBudget: 4, Backend: fb, WAL: true})
		if err != nil {
			// Opening may already fail for tiny budgets — acceptable.
			continue
		}
		var sawErr error
		for i := int64(0); i < 200; i++ {
			if err := e.Put(series.Point{TG: i, TA: i}); err != nil {
				sawErr = err
				break
			}
		}
		if sawErr == nil {
			t.Fatalf("budget %d: 200 puts with WAL never hit the injected fault", budget)
		}
		if !errors.Is(sawErr, errInjected) {
			t.Fatalf("budget %d: error lost its cause: %v", budget, sawErr)
		}
		e.Close()
	}
}

func TestEngineFaultDuringCompactionKeepsMemoryConsistent(t *testing.T) {
	// A fault mid-compaction must not corrupt in-memory reads for the
	// points that were already durable.
	fb := &faultBackend{inner: storage.NewMemBackend(), left: 1 << 30}
	e, err := Open(Config{Policy: Conventional, MemBudget: 8, Backend: fb, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ingest enough to create several tables.
	var i int64
	for ; i < 64; i++ {
		if err := e.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the disk, then write an out-of-order point to force a merge.
	fb.mu.Lock()
	fb.left = 0
	fb.mu.Unlock()
	for ; i < 128; i++ {
		if err := e.Put(series.Point{TG: i % 32, TA: i, V: -1}); err != nil {
			break
		}
	}
	// Whatever happened, previously durable points must still be readable.
	for k := int64(0); k < 8; k++ {
		if _, ok := e.Get(k); !ok {
			t.Errorf("durable point %d lost after storage fault", k)
		}
	}
	e.Close()
}

func TestAsyncEngineSurfacesBackgroundFault(t *testing.T) {
	fb := &faultBackend{inner: storage.NewMemBackend(), left: 6}
	e, err := Open(Config{Policy: Conventional, MemBudget: 4, Backend: fb, WAL: false, AsyncCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := int64(0); i < 10_000; i++ {
		if err := e.Put(series.Point{TG: i, TA: i}); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		// The error can also surface at FlushAll/Close.
		sawErr = e.FlushAll()
	}
	if sawErr == nil {
		t.Fatal("background fault never surfaced")
	}
	if !errors.Is(sawErr, errInjected) {
		t.Fatalf("error lost its cause: %v", sawErr)
	}
	e.Close()
}

func TestFaultBackendSelfTest(t *testing.T) {
	fb := &faultBackend{inner: storage.NewMemBackend(), left: 2}
	if err := fb.Write("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := fb.Append("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fb.Write("b", nil); !errors.Is(err, errInjected) {
		t.Fatalf("third write: %v", err)
	}
	if _, err := fb.Read("a"); err != nil {
		t.Errorf("reads should keep working: %v", err)
	}
	_ = fmt.Sprintf("%v", errInjected)
}
