package lsm

import (
	"container/heap"

	"repro/internal/series"
)

// Iterator streams points in generation-time order from a consistent
// snapshot of the engine, merging the memtables, pending L0 tables, and
// the run with a k-way heap. Unlike Scan it does not materialize the
// result, so callers can walk arbitrarily large ranges with O(sources)
// memory.
//
// The iterator holds no engine lock: it works on an immutable snapshot
// (SSTables are immutable; memtable contents are copied at creation), so
// writes that happen after NewIterator are not observed.
type Iterator struct {
	h       mergeHeap
	current series.Point
	valid   bool
	hi      int64
}

// source is one sorted input to the merge. Higher priority shadows lower
// on duplicate generation timestamps (memtables over L0 over run).
type source struct {
	points   []series.Point
	pos      int
	priority int
}

type mergeHeap []*source

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].points[h[i].pos], h[j].points[h[j].pos]
	if a.TG != b.TG {
		return a.TG < b.TG
	}
	// Equal keys: higher priority first so it wins and shadows the rest.
	return h[i].priority > h[j].priority
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*source)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// NewIterator returns an iterator over points with generation time in
// [lo, hi]. Call Next to advance; Point is valid after each true Next.
func (e *Engine) NewIterator(lo, hi int64) *Iterator {
	e.mu.Lock()
	defer e.mu.Unlock()

	it := &Iterator{hi: hi}
	add := func(pts []series.Point, priority int) {
		if len(pts) > 0 {
			it.h = append(it.h, &source{points: pts, priority: priority})
		}
	}
	// Run tables: non-overlapping, so they could be one concatenated
	// source; kept separate for simplicity (the heap handles it).
	i, j := e.run.overlapRange(lo, hi)
	for _, t := range e.run.tables[i:j] {
		add(t.Scan(lo, hi), 0)
	}
	// Pending L0 tables (async mode): newer tables shadow older.
	for k, t := range e.l0 {
		if t.Overlaps(lo, hi) {
			add(t.Scan(lo, hi), 1+k)
		}
	}
	// Memtables shadow everything on disk. Copy: memtables are mutable.
	base := 1 + len(e.l0)
	for k, mt := range []interface {
		Scan(lo, hi int64) []series.Point
	}{e.c0, e.cseq, e.cnonseq} {
		add(mt.Scan(lo, hi), base+k)
	}
	heap.Init(&it.h)
	return it
}

// Next advances to the next distinct generation timestamp; it returns
// false when the range is exhausted.
func (it *Iterator) Next() bool {
	for it.h.Len() > 0 {
		top := it.h[0]
		p := top.points[top.pos]
		it.advance(top)
		if it.valid && p.TG == it.current.TG {
			continue // shadowed duplicate (lower priority came later)
		}
		it.current = p
		it.valid = true
		return true
	}
	it.valid = false
	return false
}

// advance moves a source forward and restores the heap.
func (it *Iterator) advance(s *source) {
	s.pos++
	if s.pos >= len(s.points) {
		heap.Pop(&it.h)
		return
	}
	heap.Fix(&it.h, 0)
}

// Point returns the current point; only valid after a true Next.
func (it *Iterator) Point() series.Point { return it.current }
