package lsm

import (
	"container/heap"

	"repro/internal/series"
)

// MergeIterator streams points in generation-time order from a consistent
// Snapshot of the engine, merging the memtable images, pending L0 tables,
// and the run with a k-way heap. Unlike a materializing Scan it holds the
// whole result nowhere: each source is walked in place by a cursor, so
// callers can stream arbitrarily large ranges with O(#sources) memory and
// fold them (aggregation, network encoding) point by point.
//
// The iterator holds no engine lock at any time: it works on an immutable
// snapshot (SSTables are immutable, memtable images are frozen), so writes
// that happen after the snapshot was taken are not observed.
type MergeIterator struct {
	h       mergeHeap
	current series.Point
	valid   bool
	stats   ScanStats
	input   int // total in-range points across sources (duplicates included)
}

// Iterator is the former name of MergeIterator, kept as an alias.
type Iterator = MergeIterator

// source is one sorted input to the merge. Higher priority shadows lower
// on duplicate generation timestamps (memtables over L0 over run).
type source struct {
	points   []series.Point
	pos      int
	priority int
}

type mergeHeap []*source

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].points[h[i].pos], h[j].points[h[j].pos]
	if a.TG != b.TG {
		return a.TG < b.TG
	}
	// Equal keys: higher priority first so it wins and shadows the rest.
	return h[i].priority > h[j].priority
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*source)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// addSource registers one sorted, in-range input slice. Empty sources are
// skipped. Call init once all sources are added.
func (it *MergeIterator) addSource(pts []series.Point, priority int) {
	if len(pts) == 0 {
		return
	}
	it.input += len(pts)
	it.h = append(it.h, &source{points: pts, priority: priority})
}

// init establishes the heap invariant after all sources are added.
func (it *MergeIterator) init() { heap.Init(&it.h) }

// inputPoints returns the total number of in-range points across all
// sources, duplicates included — an upper bound on the merged result size,
// used as a capacity hint by materializing callers.
func (it *MergeIterator) inputPoints() int { return it.input }

// NewIterator takes a snapshot of the engine and returns a streaming
// iterator over points with generation time in [lo, hi]. Call Next to
// advance; Point is valid after each true Next. The engine lock is held
// only for the O(1) snapshot, never during iteration.
func (e *Engine) NewIterator(lo, hi int64) *MergeIterator {
	return e.Snapshot().NewIterator(lo, hi)
}

// Next advances to the next distinct generation timestamp; it returns
// false when the range is exhausted.
func (it *MergeIterator) Next() bool {
	for it.h.Len() > 0 {
		top := it.h[0]
		p := top.points[top.pos]
		it.advance(top)
		if it.valid && p.TG == it.current.TG {
			continue // shadowed duplicate (lower priority came later)
		}
		it.current = p
		it.valid = true
		it.stats.ResultPoints++
		return true
	}
	it.valid = false
	return false
}

// advance moves a source forward and restores the heap.
func (it *MergeIterator) advance(s *source) {
	s.pos++
	if s.pos >= len(s.points) {
		heap.Pop(&it.h)
		return
	}
	heap.Fix(&it.h, 0)
}

// Point returns the current point; only valid after a true Next.
func (it *MergeIterator) Point() series.Point { return it.current }

// Stats returns the read-cost accounting of this iteration: tables touched
// and their whole-table point counts are known from construction;
// MemPoints counts in-range memtable points; ResultPoints counts the
// distinct points yielded by Next so far (complete once Next has returned
// false).
func (it *MergeIterator) Stats() ScanStats { return it.stats }
