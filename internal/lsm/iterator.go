package lsm

import (
	"container/heap"

	"repro/internal/series"
	"repro/internal/sstable"
)

// MergeIterator streams points in generation-time order from a consistent
// Snapshot of the engine, merging the memtable images, pending L0 tables,
// and the run with a k-way heap. Unlike a materializing Scan it holds the
// whole result nowhere: each source is itself a streaming PointIterator
// (lazy tables decode one block at a time), so callers can stream
// arbitrarily large ranges with O(#sources) memory and fold them
// (aggregation, network encoding) point by point.
//
// The iterator holds no engine lock at any time: it works on an immutable
// snapshot (SSTables are immutable, memtable images are frozen), so writes
// that happen after the snapshot was taken are not observed.
//
// Because sources may perform storage reads, iteration can fail: Next
// returns false and Err reports the source's error. A successful drain
// (Next false, Err nil) means the range was exhausted.
type MergeIterator struct {
	h       mergeHeap
	current series.Point
	valid   bool
	err     error
	stats   ScanStats
	blocks  sstable.BlockStats // shared collector for all table sources
}

// Iterator is the former name of MergeIterator, kept as an alias.
type Iterator = MergeIterator

// source is one sorted input to the merge, advanced one point ahead so the
// heap can order sources by their current point. Higher priority shadows
// lower on duplicate generation timestamps (memtables over L0 over run).
type source struct {
	it       sstable.PointIterator
	cur      series.Point
	priority int
}

type mergeHeap []*source

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].cur, h[j].cur
	if a.TG != b.TG {
		return a.TG < b.TG
	}
	// Equal keys: higher priority first so it wins and shadows the rest.
	return h[i].priority > h[j].priority
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*source)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// addSource registers one sorted input iterator. Sources that are empty at
// the first advance are dropped; a source that fails immediately records
// the iterator's error. Call init once all sources are added.
func (it *MergeIterator) addSource(src sstable.PointIterator, priority int) {
	if !src.Next() {
		if err := src.Err(); err != nil && it.err == nil {
			it.err = err
		}
		return
	}
	it.h = append(it.h, &source{it: src, cur: src.Point(), priority: priority})
}

// init establishes the heap invariant after all sources are added.
func (it *MergeIterator) init() { heap.Init(&it.h) }

// capacityHint returns an upper bound on the merged result size — whole
// touched tables plus in-range memtable points — used as an allocation
// hint by materializing callers. (The exact in-range count is unknowable
// without reading the lazy tables.)
func (it *MergeIterator) capacityHint() int { return it.stats.TablePoints + it.stats.MemPoints }

// NewIterator takes a snapshot of the engine and returns a streaming
// iterator over points with generation time in [lo, hi]. Call Next to
// advance; Point is valid after each true Next. The engine lock is held
// only for the O(1) snapshot, never during iteration.
func (e *Engine) NewIterator(lo, hi int64) *MergeIterator {
	return e.Snapshot().NewIterator(lo, hi)
}

// Next advances to the next distinct generation timestamp; it returns
// false when the range is exhausted or a source failed (see Err).
func (it *MergeIterator) Next() bool {
	if it.err != nil {
		it.valid = false
		return false
	}
	for it.h.Len() > 0 {
		top := it.h[0]
		p := top.cur
		if !it.advance(top) {
			it.valid = false
			return false
		}
		if it.valid && p.TG == it.current.TG {
			continue // shadowed duplicate (lower priority came later)
		}
		it.current = p
		it.valid = true
		it.stats.ResultPoints++
		return true
	}
	it.valid = false
	return false
}

// advance moves a source forward and restores the heap. It returns false
// when the source's iterator failed, recording the error.
func (it *MergeIterator) advance(s *source) bool {
	if s.it.Next() {
		s.cur = s.it.Point()
		heap.Fix(&it.h, 0)
		return true
	}
	if err := s.it.Err(); err != nil {
		it.err = err
		return false
	}
	heap.Pop(&it.h)
	return true
}

// Point returns the current point; only valid after a true Next.
func (it *MergeIterator) Point() series.Point { return it.current }

// Err reports the storage or decode error that terminated iteration, nil
// after a clean drain.
func (it *MergeIterator) Err() error { return it.err }

// Stats returns the read-cost accounting of this iteration: tables touched
// and their whole-table point counts are known from construction;
// MemPoints counts in-range memtable points; ResultPoints counts the
// distinct points yielded by Next so far; BlocksRead/BlocksCached count
// block fetches by the lazy table sources so far (complete once Next has
// returned false).
func (it *MergeIterator) Stats() ScanStats {
	st := it.stats
	st.BlocksRead = it.blocks.BlocksRead
	st.BlocksCached = it.blocks.BlocksCached
	return st
}
