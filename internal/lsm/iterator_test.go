package lsm

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/series"
)

// drain collects all points from an iterator.
func drain(it *Iterator) []series.Point {
	var out []series.Point
	for it.Next() {
		out = append(out, it.Point())
	}
	return out
}

func TestIteratorMatchesScan(t *testing.T) {
	for _, pol := range []PolicyKind{Conventional, Separation} {
		ps := genWorkload(5000, 50, dist.NewLognormal(4, 1.75), 50)
		e := mustOpen(t, Config{Policy: pol, MemBudget: 64, SeqCapacity: 32, SSTablePoints: 64})
		ingest(t, e, ps)
		for _, rg := range [][2]int64{
			{math.MinInt64 + 1, math.MaxInt64},
			{50 * 1000, 50 * 2000},
			{0, 0},
			{-100, -1},
		} {
			want, _, _ := e.Scan(rg[0], rg[1])
			got := drain(e.NewIterator(rg[0], rg[1]))
			if len(got) != len(want) {
				t.Fatalf("%v range %v: iterator %d vs scan %d points", pol, rg, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v range %v: point %d: %v vs %v", pol, rg, i, got[i], want[i])
				}
			}
		}
		e.Close()
	}
}

func TestIteratorShadowsDuplicates(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 4})
	defer e.Close()
	// Flush v=1 for keys 0..3, then overwrite key 2 in the memtable.
	for i := int64(0); i < 4; i++ {
		e.Put(series.Point{TG: i, TA: i, V: 1})
	}
	e.Put(series.Point{TG: 2, TA: 10, V: 99})
	got := drain(e.NewIterator(0, 10))
	if len(got) != 4 {
		t.Fatalf("%d points", len(got))
	}
	if got[2].TG != 2 || got[2].V != 99 {
		t.Errorf("memtable should shadow disk: %+v", got[2])
	}
}

func TestIteratorEmptyEngine(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 4})
	defer e.Close()
	it := e.NewIterator(0, 1000)
	if it.Next() {
		t.Error("empty engine iterator yielded a point")
	}
	if it.Next() {
		t.Error("Next after exhaustion should stay false")
	}
}

func TestIteratorSnapshotSemantics(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 100})
	defer e.Close()
	e.Put(series.Point{TG: 1, TA: 1})
	it := e.NewIterator(0, 1000)
	// Writes after iterator creation must not appear.
	e.Put(series.Point{TG: 2, TA: 2})
	got := drain(it)
	if len(got) != 1 || got[0].TG != 1 {
		t.Errorf("snapshot broken: %v", got)
	}
}

func TestIteratorAsyncMode(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, AsyncCompaction: true})
	defer e.Close()
	for i := int64(0); i < 95; i++ {
		e.Put(series.Point{TG: i, TA: i, V: float64(i)})
	}
	got := drain(e.NewIterator(0, 1000))
	if len(got) != 95 {
		t.Fatalf("async iterator: %d points, want 95", len(got))
	}
	if !series.IsSortedByTG(got) {
		t.Error("async iterator unsorted")
	}
}

func BenchmarkIterator(b *testing.B) {
	e, err := Open(Config{Policy: Conventional, MemBudget: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ps := genWorkloadB(200_000, 50)
	if err := e.PutBatch(ps); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := e.NewIterator(0, math.MaxInt64)
		n := 0
		for it.Next() {
			n++
		}
		if n == 0 {
			b.Fatal("no points")
		}
	}
}

// genWorkloadB is a bench variant without *testing.T.
func genWorkloadB(n int, dt int64) []series.Point {
	ps := make([]series.Point, n)
	for i := range ps {
		tg := int64(i+1) * dt
		ps[i] = series.Point{TG: tg, TA: tg, V: float64(i)}
	}
	return ps
}
