package lsm_test

import (
	"fmt"

	"repro/internal/lsm"
	"repro/internal/series"
)

// Example shows the basic engine lifecycle: open with the separation
// policy, ingest points (one arrives out of order), and read them back
// sorted by generation time.
func Example() {
	engine, err := lsm.Open(lsm.Config{
		Policy:      lsm.Separation,
		MemBudget:   4,
		SeqCapacity: 2,
	})
	if err != nil {
		panic(err)
	}
	defer engine.Close()

	// C_seq holds 2 points, so 10,20 flush first and 40,50 flush next,
	// advancing LAST(R) to 50. Generation time 30 then arrives late: it is
	// older than the on-disk frontier (Definition 3), so it is classified
	// out-of-order and buffered in C_nonseq.
	for _, p := range []series.Point{
		{TG: 10, TA: 11, V: 1},
		{TG: 20, TA: 21, V: 2},
		{TG: 40, TA: 41, V: 4},
		{TG: 50, TA: 51, V: 5},
		{TG: 30, TA: 52, V: 3},
	} {
		if err := engine.Put(p); err != nil {
			panic(err)
		}
	}

	points, _, _ := engine.Scan(0, 100)
	for _, p := range points {
		fmt.Printf("t_g=%d v=%.0f\n", p.TG, p.V)
	}
	st := engine.Stats()
	fmt.Printf("out-of-order points: %d\n", st.OutOfOrderPoints)
	// Output:
	// t_g=10 v=1
	// t_g=20 v=2
	// t_g=30 v=3
	// t_g=40 v=4
	// t_g=50 v=5
	// out-of-order points: 1
}

// ExampleEngine_NewIterator streams a range without materializing it.
func ExampleEngine_NewIterator() {
	engine, _ := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: 8})
	defer engine.Close()
	for i := int64(1); i <= 5; i++ {
		engine.Put(series.Point{TG: i * 10, TA: i * 10, V: float64(i)})
	}
	it := engine.NewIterator(20, 40)
	for it.Next() {
		fmt.Println(it.Point().TG)
	}
	// Output:
	// 20
	// 30
	// 40
}

// ExampleEngine_DropBefore applies retention.
func ExampleEngine_DropBefore() {
	engine, _ := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: 2})
	defer engine.Close()
	for i := int64(0); i < 10; i++ {
		engine.Put(series.Point{TG: i, TA: i})
	}
	removed, _ := engine.DropBefore(6)
	points, _, _ := engine.Scan(0, 100)
	fmt.Printf("removed %d, kept %d, first remaining t_g=%d\n",
		removed, len(points), points[0].TG)
	// Output:
	// removed 6, kept 4, first remaining t_g=6
}
