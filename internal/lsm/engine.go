// Package lsm implements the leveled LSM-Tree engine the paper builds on:
// in-memory MemTables that flush into on-disk levels L1..Lk of sorted,
// non-overlapping SSTables, with two interchangeable write policies.
//
// Conventional policy π_c: one MemTable C0 buffers all points; when full it
// merges with every L1 SSTable whose generation-time range overlaps it.
//
// Separation policy π_s: Cseq buffers in-order points and flushes without
// merging (its range always lies beyond everything on disk); Cnonseq
// buffers out-of-order points and merges with overlapping SSTables when
// full (Definition 3 classifies a point against LAST(R).t_g, the latest
// generation time on disk).
//
// With Config.Levels > 1, levels beyond L1 are maintained by partial
// compactions chosen by a pluggable CompactionPolicy (see levels.go and
// DESIGN.md §7.7); Levels <= 1 reproduces the paper's single-run model
// exactly.
//
// Every point physically written to an SSTable — first flush or rewrite —
// is counted, so Stats.WriteAmplification reports exactly the paper's WA
// metric.
package lsm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/memtable"
	"repro/internal/series"
	"repro/internal/sstable"
	"repro/internal/storage"
	"repro/internal/wal"
)

// PolicyKind selects the write policy.
type PolicyKind int

const (
	// Conventional is π_c: a single MemTable.
	Conventional PolicyKind = iota
	// Separation is π_s: in-order and out-of-order MemTables.
	Separation
)

// String returns the paper's notation for the policy.
func (p PolicyKind) String() string {
	switch p {
	case Conventional:
		return "pi_c"
	case Separation:
		return "pi_s"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// DefaultSSTablePoints is the compaction output SSTable size used by the
// paper's experiments ("the size of SSTables is 512 points").
const DefaultSSTablePoints = 512

// Config parameterizes an Engine.
type Config struct {
	// Policy selects π_c or π_s.
	Policy PolicyKind
	// MemBudget is n, the total number of points that may be buffered in
	// memory. Must be >= 2 for the separation policy, >= 1 otherwise.
	MemBudget int
	// SeqCapacity is n_seq, the capacity of Cseq under π_s. Zero selects
	// the IoTDB default n/2. Ignored under π_c.
	SeqCapacity int
	// SSTablePoints is the output SSTable size for compactions. Zero
	// selects DefaultSSTablePoints.
	SSTablePoints int
	// Levels is k, the number of on-disk levels L1..Lk. Zero or one selects
	// the single-run layout of the paper's model sections; k > 1 enables
	// partial level compactions with geometric size targets (see levels.go).
	// Reopening a backend that persisted more levels than configured keeps
	// the persisted depth.
	Levels int
	// GrowthFactor is T, the per-level size ratio: level Li targets
	// SSTablePoints × T^i points, the last level is unbounded. Zero selects
	// DefaultGrowthFactor. Ignored when Levels <= 1.
	GrowthFactor int
	// Compaction selects which slice of which level a compaction pushes
	// down (leveling, tiering, lazy-leveling — see CompactionPolicyByName).
	// Nil selects leveling. Ignored when Levels <= 1.
	Compaction CompactionPolicy
	// Backend, when non-nil, persists SSTables and the manifest. Persisted
	// tables are served by lazy block-addressed readers: only each table's
	// block index and Bloom filter stay in memory, and point blocks are
	// decoded on demand (through BlockCache when one is configured).
	Backend storage.Backend
	// BlockCache, when non-nil, caches decoded SSTable blocks. It is
	// typically shared across every engine of a database so one byte
	// budget bounds all paged reads. Ignored without a Backend.
	BlockCache *cache.Cache
	// WAL enables write-ahead logging of buffered points (requires
	// Backend).
	WAL bool
	// Log, when non-nil together with WAL, is an externally provided
	// write-ahead log — typically a per-series handle into a shared
	// group-commit log (internal/wal/groupwal), so thousands of engines
	// share a few fsync streams. When nil, the engine opens a private
	// per-series wal.Log under its Backend. The engine closes the handle
	// on Close but does not own the underlying shared log.
	Log SeriesWAL
	// RollupWindow, when positive, maintains a downsampled rollup sidecar
	// for every table the engine persists: one count/min/max/sum/first/last
	// bucket per epoch-aligned window of this width (see
	// internal/sstable/rollup.go). Compaction already streams every point
	// through the merger, so the summaries cost no extra reads; eligible
	// aggregate queries are then answered from O(buckets) rollup entries
	// instead of O(points) raw blocks. Zero disables rollups. Changing the
	// window on an existing database affects only newly written tables —
	// the manifest records each table's own window.
	RollupWindow int64
	// Seed makes memtable skiplist shapes deterministic.
	Seed int64
	// AsyncCompaction moves merging into a background goroutine: Put
	// enqueues full memtables as L0 tables and returns. Used by the
	// throughput experiments (Table III); write amplification accounting
	// then includes the extra L0 write, as in the paper's Section V-C
	// implementation note.
	AsyncCompaction bool
	// Scheduler, when non-nil together with AsyncCompaction, hands
	// background merges to a shared scheduler (see internal/lsm/scheduler):
	// the engine runs no private compactor goroutine and instead reports
	// its L0 backlog through Notify; the scheduler calls CompactOnce from
	// its bounded worker pool. Ignored without AsyncCompaction.
	Scheduler CompactionScheduler
}

// SeriesWAL is the write-ahead-log surface the engine depends on. The
// private per-series wal.Log implements it, and so does a groupwal
// per-series handle; the engine cannot tell them apart — same append-
// before-ack, rewrite-after-commit, idempotent-replay contract.
type SeriesWAL interface {
	// Append durably records one point before it is acknowledged.
	Append(p series.Point) error
	// AppendBatch durably records several points as one logical append.
	AppendBatch(ps []series.Point) error
	// Rewrite atomically supersedes the log's contents with exactly ps —
	// called after a flush/compaction made previously logged points
	// durable in SSTables.
	Rewrite(ps []series.Point) error
	// Replay returns the points whose only durable copy is the log.
	Replay() ([]series.Point, wal.ReplayReport, error)
	// Close detaches the log from this engine.
	Close()
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("lsm: engine is closed")

// Engine is a single-series leveled LSM-Tree store.
type Engine struct {
	mu  sync.Mutex
	cfg Config

	c0      *memtable.MemTable // π_c
	cseq    *memtable.MemTable // π_s in-order
	cnonseq *memtable.MemTable // π_s out-of-order

	// levels holds the on-disk levels, levels[0] = L1 (flush target)
	// through levels[k-1] = Lk (unbounded). Each level's table slice is
	// published copy-on-write to lock-free snapshot readers.
	levels        []run
	levelCounters []levelCounterSet
	nextID        uint64

	// fastAppends counts flushes installed through the appendTable fast
	// path (no overlap, strictly beyond L1's tail). Observability for
	// tests; the fallback to the replace path is the correctness contract.
	fastAppends int64

	stats    Stats
	recovery RecoveryStats
	log      SeriesWAL // nil when WAL is disabled

	// pendingWAL is the tail of a PutBatch whose points are already framed
	// in the WAL but not yet inserted into memtables. A flush triggered
	// mid-batch rewrites the WAL from live state; without this the tail
	// would be dropped from the log while the caller is still owed an ack.
	pendingWAL []series.Point

	closed bool

	// OnCompaction, when set before ingestion starts, is invoked (with the
	// engine lock held) for every compaction. Used by model-validation
	// experiments.
	OnCompaction func(CompactionInfo)

	// async state; see async.go.
	l0     []*sstable.Table
	l0Cond *sync.Cond
	// inflight is true while a CompactOnce unit is in its unlocked persist
	// window; drains (DropBefore, SetPolicy, FlushAll) wait for it so the
	// compactor stays the sole level mutator across that window.
	inflight bool
	bgErr    error
	bgDone   chan struct{}
	started  bool
	// compacting guards the "one CompactOnce at a time" contract; see
	// CompactOnce.
	compacting atomic.Bool
}

// Open creates an engine. When cfg.Backend holds a previous instance's
// state (manifest, SSTables, WAL), it is recovered.
func Open(cfg Config) (*Engine, error) {
	if cfg.MemBudget < 1 {
		return nil, errors.New("lsm: MemBudget must be >= 1")
	}
	if cfg.SSTablePoints == 0 {
		cfg.SSTablePoints = DefaultSSTablePoints
	}
	if cfg.SSTablePoints < 1 {
		return nil, errors.New("lsm: SSTablePoints must be >= 1")
	}
	if cfg.Levels < 0 {
		return nil, errors.New("lsm: Levels must be >= 0")
	}
	if cfg.Levels == 0 {
		cfg.Levels = 1
	}
	if cfg.GrowthFactor == 0 {
		cfg.GrowthFactor = DefaultGrowthFactor
	}
	if cfg.GrowthFactor < 2 {
		return nil, errors.New("lsm: GrowthFactor must be >= 2")
	}
	if cfg.Compaction == nil {
		cfg.Compaction = NewLevelingPolicy()
	}
	if cfg.Policy == Separation {
		if cfg.MemBudget < 2 {
			return nil, errors.New("lsm: separation policy requires MemBudget >= 2")
		}
		if cfg.SeqCapacity == 0 {
			cfg.SeqCapacity = cfg.MemBudget / 2
		}
		if cfg.SeqCapacity < 1 || cfg.SeqCapacity >= cfg.MemBudget {
			return nil, fmt.Errorf("lsm: SeqCapacity must be in [1, MemBudget-1], got %d", cfg.SeqCapacity)
		}
	}
	if cfg.WAL && cfg.Backend == nil {
		return nil, errors.New("lsm: WAL requires a Backend")
	}
	if cfg.RollupWindow < 0 {
		return nil, errors.New("lsm: RollupWindow must be >= 0")
	}
	if cfg.Log != nil && !cfg.WAL {
		return nil, errors.New("lsm: Config.Log requires WAL")
	}
	e := &Engine{
		cfg:           cfg,
		c0:            memtable.New(cfg.Seed),
		cseq:          memtable.New(cfg.Seed + 1),
		cnonseq:       memtable.New(cfg.Seed + 2),
		levels:        make([]run, cfg.Levels),
		levelCounters: make([]levelCounterSet, cfg.Levels),
	}
	e.l0Cond = sync.NewCond(&e.mu)
	if cfg.Backend != nil {
		// recover deepens e.levels (and levelCounters) in lockstep when the
		// persisted manifest records more levels than configured.
		if err := e.recover(); err != nil {
			return nil, err
		}
	}
	if cfg.AsyncCompaction {
		if cfg.Scheduler != nil {
			// Shared-scheduler mode: no private goroutine. started gates
			// scheduler notifications; any L0 backlog recovery left behind
			// is reported when the scheduler registers the engine (it
			// reads L0Backlog then), not here.
			e.started = true
		} else {
			e.startCompactor()
		}
	}
	return e, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// RecoveryInfo returns what Open recovered from the backend (zero value
// for an engine opened without one).
func (e *Engine) RecoveryInfo() RecoveryStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.recovery
}

// BufferedPoints returns the number of points whose only durable copy is
// the WAL: the memtables plus, in async mode, the pending L0 queue. The
// memory arbiter uses it to estimate each engine's volatile footprint.
func (e *Engine) BufferedPoints() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.c0.Len() + e.cseq.Len() + e.cnonseq.Len()
	for _, t := range e.l0 {
		n += t.Len()
	}
	return n
}

// nonseqCapacity returns n_nonseq = n − n_seq.
func (e *Engine) nonseqCapacity() int { return e.cfg.MemBudget - e.cfg.SeqCapacity }

// LastTG returns LAST(R).t_g — the latest generation time across every
// on-disk level — and whether any level is non-empty.
func (e *Engine) LastTG() (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.levelsLastTGLocked()
}

// levelsLastTGLocked returns the max MaxTG over all levels. Caller holds
// the lock.
func (e *Engine) levelsLastTGLocked() (int64, bool) {
	var best int64
	var ok bool
	for d := range e.levels {
		if last, has := e.levels[d].lastTG(); has && (!ok || last > best) {
			best, ok = last, true
		}
	}
	return best, ok
}

// RunTables returns the number of SSTables across all levels and their
// total point count.
func (e *Engine) RunTables() (tables, points int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for d := range e.levels {
		tables += e.levels[d].lenTables()
		points += e.levels[d].totalPoints()
	}
	return tables, points
}

// ResidentRunPoints returns the number of decoded points held in memory by
// the run's table handles. With a storage backend the run is made of lazy
// block-addressed readers, so this is 0 until a query decodes blocks — and
// stays 0 even then, since decoded blocks live in the shared cache, not in
// the handle. Memory-only engines report the full run size.
func (e *Engine) ResidentRunPoints() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var n int
	for d := range e.levels {
		for _, t := range e.levels[d].tables {
			n += t.ResidentPoints()
		}
	}
	return n
}

// TableSpans returns the (MinTG, MaxTG, Len) of every SSTable currently in
// the run (including L0 tables in async mode), for analyses like the
// paper's Fig. 15.
func (e *Engine) TableSpans() []TableSpan {
	e.mu.Lock()
	defer e.mu.Unlock()
	var spans []TableSpan
	for d := range e.levels {
		for _, t := range e.levels[d].tables {
			spans = append(spans, TableSpan{MinTG: t.MinTG(), MaxTG: t.MaxTG(), Points: t.Len()})
		}
	}
	for _, t := range e.l0 {
		spans = append(spans, TableSpan{MinTG: t.MinTG(), MaxTG: t.MaxTG(), Points: t.Len()})
	}
	return spans
}

// TableSpan describes one SSTable's generation-time coverage.
type TableSpan struct {
	MinTG, MaxTG int64
	Points       int
}

// Put ingests one point. Points are classified in-order/out-of-order
// against LAST(R) per Definition 3; full memtables flush or compact
// synchronously (or enqueue for the background compactor when
// AsyncCompaction is enabled).
func (e *Engine) Put(p series.Point) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.putLocked(p, true)
}

// PutBatch ingests points in order, holding the lock once. With the WAL
// enabled the whole batch is logged as one framed backend append before any
// point is inserted, so a batch costs one backend write instead of one per
// point.
func (e *Engine) PutBatch(ps []series.Point) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.bgErr != nil {
		return e.bgErr
	}
	logged := false
	if e.log != nil && len(ps) > 0 {
		if err := e.log.AppendBatch(ps); err != nil {
			return fmt.Errorf("lsm: wal append batch: %w", err)
		}
		e.stats.WALRecords += int64(len(ps))
		logged = true
	}
	defer func() { e.pendingWAL = nil }()
	for i, p := range ps {
		if logged {
			e.pendingWAL = ps[i+1:]
		}
		if err := e.putLocked(p, false); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) putLocked(p series.Point, logIt bool) error {
	if e.closed {
		return ErrClosed
	}
	if e.bgErr != nil {
		return e.bgErr
	}
	if logIt && e.log != nil {
		if err := e.log.Append(p); err != nil {
			return fmt.Errorf("lsm: wal append: %w", err)
		}
		e.stats.WALRecords++
	}
	e.stats.PointsIngested++

	last, hasDisk := e.diskLastTG()
	inOrder := !hasDisk || p.TG > last
	if inOrder {
		e.stats.InOrderPoints++
	} else {
		e.stats.OutOfOrderPoints++
	}

	switch e.cfg.Policy {
	case Conventional:
		e.c0.Put(p)
		if e.c0.Len() >= e.cfg.MemBudget {
			return e.handleFullMemtable(e.c0)
		}
	case Separation:
		if inOrder {
			e.cseq.Put(p)
			if e.cseq.Len() >= e.cfg.SeqCapacity {
				return e.handleFullMemtable(e.cseq)
			}
		} else {
			e.cnonseq.Put(p)
			if e.cnonseq.Len() >= e.nonseqCapacity() {
				return e.handleFullMemtable(e.cnonseq)
			}
		}
	default:
		return fmt.Errorf("lsm: unknown policy %v", e.cfg.Policy)
	}
	return nil
}

// diskLastTG returns the latest generation time durable on disk: every
// level plus, in async mode, any pending L0 tables (they are already
// flushed). This is the classification frontier of Definition 3.
func (e *Engine) diskLastTG() (int64, bool) {
	last, ok := e.levelsLastTGLocked()
	for _, t := range e.l0 {
		if !ok || t.MaxTG() > last {
			last = t.MaxTG()
			ok = true
		}
	}
	return last, ok
}

// handleFullMemtable routes a full memtable to the synchronous merge path
// or the async L0 queue. An empty memtable is a no-op: both downstream
// paths index the first and last point of the flush, and callers like
// SetPolicy route just-drained memtables through here.
func (e *Engine) handleFullMemtable(mt *memtable.MemTable) error {
	if mt.Empty() {
		return nil
	}
	if e.cfg.AsyncCompaction {
		return e.enqueueL0(mt)
	}
	return e.mergeMemtable(mt)
}

// mergeMemtable writes the memtable's points into L1, merging with
// overlapping SSTables, then clears the memtable and runs any level
// compactions the policy now wants (the synchronous engine maintains its
// levels inline; the async engine does it in CompactOnce units). Caller
// holds the lock.
func (e *Engine) mergeMemtable(mt *memtable.MemTable) error {
	if mt.Empty() {
		return nil
	}
	pts := mt.Points()
	if err := e.mergePoints(pts); err != nil {
		return err
	}
	mt.Reset()
	if err := e.maintainLevelsLocked(); err != nil {
		return err
	}
	return e.rewriteWAL()
}

// errAppendOutOfOrder reports that the appendTable fast path refused a
// table because it would overlap or precede L1's current tail; the caller
// must route the flush through the general merge path instead of dropping
// the table. Never escapes the engine.
var errAppendOutOfOrder = errors.New("lsm: append fast path refused out-of-order table")

// appendAndCommit installs newTables at the tail of L1 through the
// run.appendTable fast path and commits the manifest. appendTable re-checks
// the ordering invariant and returns false when a table would overlap or
// tie the level's last generation time (e.g. a boundary duplicate at
// LAST(R)); ignoring that result would silently violate the run invariant,
// so a refusal rolls L1 back and returns errAppendOutOfOrder for the caller
// to fall back on the replace path. Caller holds the lock.
func (e *Engine) appendAndCommit(newTables []sstable.TableHandle) (committed bool, err error) {
	lvl := &e.levels[0]
	prev := lvl.tables
	for _, t := range newTables {
		if !lvl.appendTable(t) {
			lvl.tables = prev
			return false, errAppendOutOfOrder
		}
	}
	if err := e.commitRun(); err != nil {
		lvl.tables = prev
		retireHandles(newTables)
		return false, err
	}
	e.fastAppends++
	return true, nil
}

// mergePoints merges sorted unique points into L1, streaming the
// overlapped tables' blocks through a bounded buffer: old points are never
// materialized whole, and each output table is persisted the moment it is
// cut. Ordering follows the crash invariants (DESIGN.md §7.2): objects are
// written first (a crash leaves orphans), the manifest commit in
// replaceAndCommit is the commit point (levels and manifest move together —
// a failed commit rolls the in-memory replace back), and retired objects
// are removed after it. Caller holds the lock.
func (e *Engine) mergePoints(pts []series.Point) error {
	if len(pts) == 0 {
		return nil
	}
	lo, hi := pts[0].TG, pts[len(pts)-1].TG
	lvl := &e.levels[0]
	i, j := lvl.overlapRange(lo, hi)
	overlapping := lvl.tables[i:j]

	var subsequent int
	if e.OnCompaction != nil {
		subsequent = pointsGreaterThan(e.allTablesLocked(), lo)
	}
	var rewritten int
	for _, t := range overlapping {
		rewritten += t.Len()
	}

	newTables, merged, err := streamMerge(overlapping, pts, e.cfg.SSTablePoints,
		func() uint64 { id := e.nextID; e.nextID++; return id },
		e.persistTable)
	if err != nil {
		return err
	}
	nRetired := j - i
	var committed bool
	if nRetired == 0 && i == lvl.lenTables() {
		// Seq-flush fast path: the flush lies strictly beyond L1's tail
		// (the common case for in-order data under π_s), so the new tables
		// append without disturbing the rest of the level. appendAndCommit
		// verifies the invariant per table; a refusal — possible only at a
		// boundary tie the overlap computation did not see — falls through
		// to the general replace path below rather than being ignored.
		committed, err = e.appendAndCommit(newTables)
		if !committed && errors.Is(err, errAppendOutOfOrder) {
			committed, err = e.replaceAndCommit(i, j, newTables)
		}
	} else {
		committed, err = e.replaceAndCommit(i, j, newTables)
	}
	if !committed {
		return err
	}

	e.stats.PointsWritten += int64(merged)
	e.levelCounters[0].PointsIn += int64(merged)
	if nRetired == 0 {
		e.stats.Flushes++
	} else {
		e.stats.Compactions++
		e.stats.PointsRewritten += int64(rewritten)
		e.stats.TablesRewritten += int64(nRetired)
		e.levelCounters[0].Compactions++
		e.levelCounters[0].PointsRewritten += int64(rewritten)
		if e.OnCompaction != nil {
			e.OnCompaction(CompactionInfo{
				MemPoints:        len(pts),
				SubsequentPoints: subsequent,
				RewrittenPoints:  rewritten,
				OutputPoints:     merged,
				TablesIn:         nRetired,
				TablesOut:        len(newTables),
			})
		}
	}
	// A non-nil err past the commit point is retired-object cleanup only;
	// the merge itself is durable.
	return err
}

// FlushAll forces every buffered point to disk. In async mode it also
// drains the background compactor.
func (e *Engine) FlushAll() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	for _, mt := range []*memtable.MemTable{e.c0, e.cseq, e.cnonseq} {
		if mt.Empty() {
			continue
		}
		if e.cfg.AsyncCompaction {
			if err := e.enqueueL0(mt); err != nil {
				return err
			}
		} else if err := e.mergeMemtable(mt); err != nil {
			return err
		}
	}
	if e.cfg.AsyncCompaction {
		e.drainLocked()
	}
	return e.bgErr
}

// SetPolicy switches the live engine to a new policy and capacity split,
// flushing buffered data first so classification state stays consistent.
// The adaptive controller (π_adaptive) calls this when the delay
// distribution drifts. seqCapacity is interpreted as for Config.
func (e *Engine) SetPolicy(kind PolicyKind, seqCapacity int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	for _, mt := range []*memtable.MemTable{e.c0, e.cseq, e.cnonseq} {
		if !mt.Empty() {
			// In async mode, route through the L0 queue: the compactor must
			// remain the only run mutator while the queue is non-empty (its
			// merge snapshot is taken before, and installed after, an
			// unlocked persist section).
			if err := e.handleFullMemtable(mt); err != nil {
				return err
			}
		}
	}
	if e.cfg.AsyncCompaction {
		e.drainLocked()
		if e.bgErr != nil {
			return e.bgErr
		}
	}
	if kind == Separation {
		if seqCapacity == 0 {
			seqCapacity = e.cfg.MemBudget / 2
		}
		if seqCapacity < 1 || seqCapacity >= e.cfg.MemBudget {
			return fmt.Errorf("lsm: SeqCapacity must be in [1, MemBudget-1], got %d", seqCapacity)
		}
		e.cfg.SeqCapacity = seqCapacity
	}
	e.cfg.Policy = kind
	return nil
}

// Close flushes buffered data and shuts the engine down. Even when the
// final flush fails (a dead backend, a sticky background-compaction error),
// the engine is still marked closed, the compactor goroutine is stopped,
// and the WAL is detached — Close never leaks resources; it only reports
// the flush error.
func (e *Engine) Close() error {
	flushErr := e.FlushAll()
	if errors.Is(flushErr, ErrClosed) {
		// Already closed: idempotent, and everything was released then.
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return flushErr
	}
	e.closed = true
	// Evict this engine's blocks from the shared cache: a dropped or
	// closed series must not keep occupying a budget shared with live
	// engines. In-flight snapshot readers still work (their storage
	// objects stay open); they just stop caching.
	for d := range e.levels {
		retireHandles(e.levels[d].tables)
	}
	if e.log != nil {
		e.log.Close()
	}
	stop := e.started
	e.l0Cond.Broadcast()
	done := e.bgDone
	e.mu.Unlock()
	if stop && done != nil {
		<-done
	}
	return flushErr
}
