package lsm

import (
	"fmt"
	"math"

	"repro/internal/arena"
	"repro/internal/series"
	"repro/internal/sstable"
)

// chainIter streams the points of a sequence of disjoint, ascending table
// handles in order, one handle (and, for lazy readers, one block) at a
// time. It is the compaction path's replacement for materializing every
// overlapped table up front.
type chainIter struct {
	handles []sstable.TableHandle
	cur     sstable.PointIterator
	err     error
}

// Next advances to the next point, opening handles as needed.
func (c *chainIter) Next() bool {
	for {
		if c.cur != nil {
			if c.cur.Next() {
				return true
			}
			if err := c.cur.Err(); err != nil {
				c.err = err
				return false
			}
			c.cur = nil
		}
		if len(c.handles) == 0 {
			return false
		}
		h := c.handles[0]
		c.handles = c.handles[1:]
		c.cur = h.Iter(math.MinInt64, math.MaxInt64, nil)
	}
}

// Point returns the current point; valid only after a true Next.
func (c *chainIter) Point() series.Point { return c.cur.Point() }

// streamMerge merges the points of the old handles (sorted, disjoint —
// their concatenation is ascending) with pts (sorted, unique; new points
// shadow old ones on duplicate generation times, as series.MergeByTG),
// cutting the result into tables of at most chunk points. Each completed
// table is passed to emit — which persists it and returns the handle to
// install — before the next chunk is accumulated, so the whole merge holds
// at most chunk output points plus one input block in memory.
//
// nextID allocates output table identifiers. It returns the emitted
// handles and the total number of merged output points.
func streamMerge(
	old []sstable.TableHandle,
	pts []series.Point,
	chunk int,
	nextID func() uint64,
	emit func(*sstable.Table) (sstable.TableHandle, error),
) ([]sstable.TableHandle, int, error) {
	var (
		handles []sstable.TableHandle
		merged  int
	)
	// The chunk buffer is arena-pooled. Build takes ownership of buf, but
	// when emit persists the table and installs a lazy reader handle the
	// built Table — and with it buf — is dead the moment flush returns, so
	// the same backing array is reused for the next chunk and released at
	// the end. Only when emit returns the Table itself (memory-only
	// engines) do the points live on; then ownership truly transfers and a
	// fresh buffer is taken.
	buf := arena.GetPoints(chunk)[:0]
	bufPooled := true
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		t, err := sstable.Build(nextID(), buf)
		if err != nil {
			return fmt.Errorf("lsm: build sstable: %w", err)
		}
		h, err := emit(t)
		if err != nil {
			return err
		}
		handles = append(handles, h)
		if h == sstable.TableHandle(t) {
			// The run now references t.points == buf: hand it off.
			buf = make([]series.Point, 0, chunk)
			bufPooled = false
		} else {
			buf = buf[:0]
		}
		return nil
	}

	// On every exit the current buf is either the reusable pooled buffer
	// (contents, if any, already encoded and persisted — or abandoned on
	// error, where the caller discards the handles) or a handed-off
	// GC-owned slice; release the former.
	defer func() {
		if bufPooled {
			arena.PutPoints(buf)
		}
	}()

	oldIt := &chainIter{handles: old}
	oldOK := oldIt.Next()
	i := 0
	for oldOK || i < len(pts) {
		if !oldOK && oldIt.err != nil {
			return nil, merged, fmt.Errorf("lsm: compaction read: %w", oldIt.err)
		}
		var p series.Point
		switch {
		case !oldOK:
			p = pts[i]
			i++
		case i >= len(pts):
			p = oldIt.Point()
			oldOK = oldIt.Next()
		case pts[i].TG < oldIt.Point().TG:
			p = pts[i]
			i++
		case pts[i].TG > oldIt.Point().TG:
			p = oldIt.Point()
			oldOK = oldIt.Next()
		default: // equal: the new point shadows the old
			p = pts[i]
			i++
			oldOK = oldIt.Next()
		}
		buf = append(buf, p)
		merged++
		if len(buf) == chunk {
			if err := flush(); err != nil {
				return nil, merged, err
			}
		}
	}
	if oldIt.err != nil {
		return nil, merged, fmt.Errorf("lsm: compaction read: %w", oldIt.err)
	}
	if err := flush(); err != nil {
		return nil, merged, err
	}
	return handles, merged, nil
}
