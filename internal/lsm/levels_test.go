package lsm

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/series"
	"repro/internal/sstable"
	"repro/internal/storage"
)

// buildTable makes an in-memory SSTable holding one point per generation
// time in [lo, hi], for policy unit tests.
func buildTable(t *testing.T, id uint64, lo, hi int64) *sstable.Table {
	t.Helper()
	var pts []series.Point
	for tg := lo; tg <= hi; tg++ {
		pts = append(pts, series.Point{TG: tg, TA: tg, V: float64(tg)})
	}
	tbl, err := sstable.Build(id, pts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tbl
}

func TestCompactionPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"":              "leveling",
		"leveling":      "leveling",
		"tiering":       "tiering",
		"lazy":          "lazy-leveling",
		"lazy-leveling": "lazy-leveling",
	} {
		p, err := CompactionPolicyByName(name)
		if err != nil {
			t.Fatalf("CompactionPolicyByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("CompactionPolicyByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := CompactionPolicyByName("nope"); err == nil {
		t.Error("unknown policy name should fail")
	}
}

func TestLeastOverlapSourcePicksCheapestSlice(t *testing.T) {
	// src[0] (0..9) overlaps both dst tables (20 points of overlap);
	// src[1] (100..109) overlaps nothing. The least-write-amp pick is 1.
	src := []sstable.TableHandle{
		buildTable(t, 1, 0, 9),
		buildTable(t, 2, 100, 109),
	}
	dst := []sstable.TableHandle{
		buildTable(t, 3, 0, 4),
		buildTable(t, 4, 5, 9),
	}
	if got := leastOverlapSource(src, dst); got != 1 {
		t.Errorf("leastOverlapSource = %d, want 1 (the non-overlapping table)", got)
	}
	// Ties prefer the leftmost (oldest) table so the level drains in order.
	src2 := []sstable.TableHandle{
		buildTable(t, 5, 200, 209),
		buildTable(t, 6, 300, 309),
	}
	if got := leastOverlapSource(src2, dst); got != 0 {
		t.Errorf("tie broke to %d, want 0 (leftmost)", got)
	}
}

// syntheticViews builds a 3-level view set with the given per-level point
// counts; targets are 100 for L1 and 1000 for L2 (growth 10), L3 unbounded.
func syntheticViews(t *testing.T, l1, l2, l3 int) []LevelView {
	t.Helper()
	mk := func(level, pts int, base int64) LevelView {
		v := LevelView{Level: level, Points: pts}
		if level < 3 {
			v.Target = 100
			if level == 2 {
				v.Target = 1000
			}
		}
		if pts > 0 {
			v.Tables = []sstable.TableHandle{buildTable(t, uint64(level*100), base, base+int64(pts)-1)}
		}
		return v
	}
	return []LevelView{mk(1, l1, 0), mk(2, l2, 2000), mk(3, l3, 4000)}
}

func TestLevelingPolicyPicksDeepestOverflow(t *testing.T) {
	p := NewLevelingPolicy()
	if _, ok := p.Pick(syntheticViews(t, 100, 1000, 50), 10); ok {
		t.Error("leveling picked a task with every level at or under target")
	}
	task, ok := p.Pick(syntheticViews(t, 101, 1001, 0), 10)
	if !ok || task.Src != 2 {
		t.Errorf("leveling picked %+v (ok=%v), want deepest overflowing level 2", task, ok)
	}
	if task.J-task.I != 1 {
		t.Errorf("leveling moved %d tables, want a single least-overlap table", task.J-task.I)
	}
}

func TestTieringPolicyWaitsForGrowthFactor(t *testing.T) {
	p := NewTieringPolicy()
	// 101 > target but below T×target: tiering delays where leveling acts.
	if _, ok := p.Pick(syntheticViews(t, 101, 0, 0), 10); ok {
		t.Error("tiering compacted below T x target")
	}
	task, ok := p.Pick(syntheticViews(t, 1001, 0, 0), 10)
	if !ok || task.Src != 1 {
		t.Fatalf("tiering pick = %+v (ok=%v), want level 1", task, ok)
	}
	if task.I != 0 || task.J != 1 {
		t.Errorf("tiering task %+v, want the whole level [0,1)", task)
	}
}

func TestLazyLevelingMixesBoth(t *testing.T) {
	p := NewLazyLevelingPolicy()
	// L2 feeds the last level: leveling there (eager at 1x target).
	task, ok := p.Pick(syntheticViews(t, 0, 1001, 0), 10)
	if !ok || task.Src != 2 {
		t.Errorf("lazy-leveling pick = %+v (ok=%v), want eager pick at level 2", task, ok)
	}
	// L1 is an upper level: tiering there (delay until T x target).
	if _, ok := p.Pick(syntheticViews(t, 101, 0, 0), 10); ok {
		t.Error("lazy-leveling compacted upper level below T x target")
	}
	task, ok = p.Pick(syntheticViews(t, 1001, 0, 0), 10)
	if !ok || task.Src != 1 || task.J-task.I != 1 {
		t.Errorf("lazy-leveling upper-level pick = %+v (ok=%v), want whole-level push from 1", task, ok)
	}
}

// TestMultiLevelEngineAgreesWithReference drives a backfill-heavy stream
// (the workload multi-level leveling exists for) through k=3 engines under
// each policy and checks full content agreement with a map, per-level
// invariants, and that data actually reached the deeper levels.
func TestMultiLevelEngineAgreesWithReference(t *testing.T) {
	for _, policy := range []string{"leveling", "tiering", "lazy-leveling"} {
		t.Run(policy, func(t *testing.T) {
			cp, err := CompactionPolicyByName(policy)
			if err != nil {
				t.Fatal(err)
			}
			e := mustOpen(t, Config{
				Policy: Conventional, MemBudget: 16, SSTablePoints: 8,
				Levels: 3, GrowthFactor: 2, Compaction: cp,
			})
			defer e.Close()

			rng := rand.New(rand.NewSource(7))
			ref := make(map[int64]float64)
			for i := 0; i < 4000; i++ {
				tg := rng.Int63n(1500) // heavy overwrites and out-of-order arrivals
				v := rng.Float64()
				if err := e.Put(series.Point{TG: tg, TA: int64(i), V: v}); err != nil {
					t.Fatalf("Put: %v", err)
				}
				ref[tg] = v
			}
			if err := e.FlushAll(); err != nil {
				t.Fatalf("FlushAll: %v", err)
			}

			e.mu.Lock()
			ok := e.checkLevelInvariantsLocked()
			e.mu.Unlock()
			if !ok {
				t.Fatal("level invariant violated")
			}
			ls := e.LevelStats()
			if len(ls) != 3 {
				t.Fatalf("LevelStats reported %d levels, want 3", len(ls))
			}
			deeper := 0
			for _, l := range ls[1:] {
				deeper += l.Points
			}
			if deeper == 0 {
				t.Fatalf("no points reached L2/L3 under %s: %+v", policy, ls)
			}

			got, _, err := e.Scan(math.MinInt64+1, math.MaxInt64)
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if len(got) != len(ref) {
				t.Fatalf("scan returned %d points, want %d", len(got), len(ref))
			}
			var keys []int64
			for k := range ref {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for i, k := range keys {
				if got[i].TG != k || got[i].V != ref[k] {
					t.Fatalf("point %d = %+v, want TG=%d V=%v", i, got[i], k, ref[k])
				}
			}
		})
	}
}

// TestMultiLevelAsyncMatchesSync runs the same stream through a sync and an
// async k=3 engine and checks they converge to identical content, pinning
// the CompactOnce level-task dispatch against the in-line maintenance loop.
func TestMultiLevelAsyncMatchesSync(t *testing.T) {
	mk := func(async bool) Config {
		return Config{
			Policy: Separation, MemBudget: 16, SSTablePoints: 8,
			Levels: 3, GrowthFactor: 2, AsyncCompaction: async,
		}
	}
	ps := genBackfillStream(3000, 40)
	sync1 := mustOpen(t, mk(false))
	async1 := mustOpen(t, mk(true))
	ingest(t, sync1, ps)
	ingest(t, async1, ps)
	if err := sync1.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := async1.FlushAll(); err != nil {
		t.Fatal(err)
	}
	a, _, err := sync1.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := async1.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sync %d points, async %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: sync %+v async %+v", i, a[i], b[i])
		}
	}
	if err := sync1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := async1.Close(); err != nil {
		t.Fatal(err)
	}
}

// genBackfillStream makes a deterministic stream of n points where pct% of
// arrivals are backfill to an arbitrary earlier (or later) generation time.
func genBackfillStream(n int, pct int64) []series.Point {
	rng := rand.New(rand.NewSource(99))
	ps := make([]series.Point, n)
	for i := range ps {
		tg := int64(i)
		if rng.Int63n(100) < pct {
			tg = rng.Int63n(int64(n)) // arbitrary backfill
		}
		ps[i] = series.Point{TG: tg, TA: int64(i), V: float64(i)}
	}
	return ps
}

// TestManifestV1MigrationFoldsRunIntoL1 pins the one-time migration: a
// version-1 single-run manifest (the pre-multi-level format) opens into L1
// of a deeper engine, is flagged in RecoveryStats, serves the same data,
// and the next commit persists version 2.
func TestManifestV1MigrationFoldsRunIntoL1(t *testing.T) {
	backend := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 8, SSTablePoints: 8, Backend: backend, WAL: true})
	for i := int64(0); i < 48; i++ {
		if err := e.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the manifest in the legacy v1 shape: a flat table list, no
	// version, no levels.
	data, err := backend.Read(manifestName)
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != manifestVersion || len(m.Levels) == 0 {
		t.Fatalf("setup wrote manifest %+v, want current version with levels", m)
	}
	v1 := struct {
		Tables []string `json:"tables"`
		NextID uint64   `json:"next_id"`
	}{Tables: m.Levels[0], NextID: m.NextID}
	v1data, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Write(manifestName, v1data); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Config{Policy: Conventional, MemBudget: 8, SSTablePoints: 8,
		Levels: 3, GrowthFactor: 4, Backend: backend, WAL: true})
	info := re.RecoveryInfo()
	if !info.ManifestMigrated {
		t.Error("v1 manifest not flagged as migrated")
	}
	if info.TablesLoaded == 0 {
		t.Error("migration loaded no tables")
	}
	pts, _, err := re.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil || len(pts) != 48 {
		t.Fatalf("scan after migration: %d points, err %v; want 48", len(pts), err)
	}
	// Force a commit and confirm the durable manifest is now v2 per-level.
	for i := int64(48); i < 64; i++ {
		if err := re.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.FlushAll(); err != nil {
		t.Fatal(err)
	}
	data, err = backend.Read(manifestName)
	if err != nil {
		t.Fatal(err)
	}
	var m2 manifest
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if m2.Version != manifestVersion || len(m2.Levels) != 3 {
		t.Fatalf("post-migration commit wrote %+v, want version %d with 3 levels", m2, manifestVersion)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenKeepsPersistedDepth: a backend that persisted k=3 levels must
// not be silently squashed by reopening with a shallower (or default)
// config — the persisted depth wins.
func TestReopenKeepsPersistedDepth(t *testing.T) {
	backend := storage.NewMemBackend()
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 16, SSTablePoints: 8,
		Levels: 3, GrowthFactor: 2, Backend: backend, WAL: true})
	rng := rand.New(rand.NewSource(11))
	distinct := make(map[int64]bool)
	for i := 0; i < 2000; i++ {
		tg := rng.Int63n(800)
		distinct[tg] = true
		if err := e.Put(series.Point{TG: tg, TA: int64(i), V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Config{Policy: Conventional, MemBudget: 16, SSTablePoints: 8, Backend: backend, WAL: true})
	defer re.Close()
	if got := re.Config().Levels; got != 3 {
		t.Fatalf("reopened engine reports %d levels, want persisted depth 3", got)
	}
	if got := len(re.LevelStats()); got != 3 {
		t.Fatalf("LevelStats reports %d levels, want 3", got)
	}
	pts, _, err := re.Scan(math.MinInt64+1, math.MaxInt64)
	if err != nil || len(pts) != len(distinct) {
		t.Fatalf("scan after deep reopen: %d points, err %v; want %d", len(pts), err, len(distinct))
	}
}

// TestLevelStatsReportsStructureAndCounters checks the observability
// surface the API/metrics layers consume.
func TestLevelStatsReportsStructureAndCounters(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 16, SSTablePoints: 8,
		Levels: 3, GrowthFactor: 2})
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		if err := e.Put(series.Point{TG: rng.Int63n(1000), TA: int64(i), V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ls := e.LevelStats()
	if len(ls) != 3 {
		t.Fatalf("got %d levels, want 3", len(ls))
	}
	if ls[0].Level != 1 || ls[1].Level != 2 || ls[2].Level != 3 {
		t.Fatalf("levels misnumbered: %+v", ls)
	}
	if ls[0].TargetPoints != 8*2 || ls[1].TargetPoints != 8*2*2 || ls[2].TargetPoints != 0 {
		t.Fatalf("targets wrong: %+v", ls)
	}
	if ls[0].PointsIn == 0 {
		t.Error("L1 saw no PointsIn despite flushes")
	}
	var pushDowns int64
	for _, l := range ls[1:] {
		pushDowns += l.Compactions
	}
	if pushDowns == 0 {
		t.Errorf("no push-down compactions recorded on deeper levels: %+v", ls)
	}
	// Structure agrees with the engine's own accounting.
	tables, points := e.RunTables()
	var st, sp int
	for _, l := range ls {
		st += l.Tables
		sp += l.Points
	}
	if st != tables || sp != points {
		t.Errorf("LevelStats totals (%d tables, %d points) disagree with RunTables (%d, %d)", st, sp, tables, points)
	}
}

// TestAppendAndCommitRefusesOutOfOrderTable is the regression test for the
// ignored appendTable result: the fast path used to drop the boolean on the
// floor, so a table overlapping or tying L1's tail would have been silently
// appended past the invariant check (or lost). The fixed appendAndCommit
// must refuse with errAppendOutOfOrder, roll L1 back untouched, and leave
// the refusal to the caller's merge-path fallback. Before the fix this test
// fails: the refusal was invisible and the level ended malformed.
func TestAppendAndCommitRefusesOutOfOrderTable(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 8, SSTablePoints: 8})
	defer e.Close()
	for i := int64(0); i < 16; i++ {
		if err := e.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}

	e.mu.Lock()
	before := make([]sstable.TableHandle, len(e.levels[0].tables))
	copy(before, e.levels[0].tables)
	// A table whose MinTG ties LAST(R): appending it would break the
	// non-overlap invariant, so the fast path must refuse.
	bad := buildTable(t, 9999, 15, 20)
	committed, err := e.appendAndCommit([]sstable.TableHandle{bad})
	after := e.levels[0].tables
	ok := e.checkLevelInvariantsLocked()
	e.mu.Unlock()

	if committed {
		t.Fatal("appendAndCommit committed a boundary-tying table")
	}
	if !errors.Is(err, errAppendOutOfOrder) {
		t.Fatalf("err = %v, want errAppendOutOfOrder", err)
	}
	if len(after) != len(before) {
		t.Fatalf("refusal left %d tables, want %d (rollback)", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("refusal mutated L1 at %d", i)
		}
	}
	if !ok {
		t.Fatal("level invariant violated after refusal")
	}

	// The general merge path handles the same points fine — the fallback the
	// production caller routes through.
	for tg := int64(15); tg <= 20; tg++ {
		if err := e.Put(series.Point{TG: tg, TA: 100 + tg, V: -float64(tg)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pts, _, err := e.Scan(0, 100)
	if err != nil || len(pts) != 21 {
		t.Fatalf("scan: %d points, err %v; want 21", len(pts), err)
	}
	if pts[15].V != -15 {
		t.Fatalf("boundary overwrite lost: %+v", pts[15])
	}
}

// TestSeqFlushTakesAppendFastPath pins the fast path itself: an in-order
// stream under the separation policy appends its seq flushes without
// rewriting the level, and the engine counts them.
func TestSeqFlushTakesAppendFastPath(t *testing.T) {
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 8, SeqCapacity: 4, SSTablePoints: 4})
	defer e.Close()
	for i := int64(0); i < 64; i++ {
		if err := e.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	fast := e.fastAppends
	ok := e.checkLevelInvariantsLocked()
	e.mu.Unlock()
	if fast == 0 {
		t.Error("in-order seq flushes never took the append fast path")
	}
	if !ok {
		t.Fatal("level invariant violated")
	}
	if st := e.Stats(); st.WriteAmplification() != 1 {
		t.Errorf("in-order stream WA = %v, want exactly 1", st.WriteAmplification())
	}
	pts, _, err := e.Scan(0, 100)
	if err != nil || len(pts) != 64 {
		t.Fatalf("scan: %d points, err %v; want 64", len(pts), err)
	}
}
