package lsm

import (
	"sort"

	"repro/internal/series"
	"repro/internal/sstable"
)

// DropBefore removes every point with generation time strictly below
// cutoff — the TTL/retention operation of a time-series store (IoTDB's
// per-storage-group TTL works the same way). Whole SSTables below the
// cutoff are unlinked without being read; the single table straddling the
// cutoff (if any) is rewritten truncated; buffered points below the cutoff
// are discarded from the memtables. It returns the number of points
// removed.
//
// Dropping history does not move LAST(R) backwards: the classification
// frontier (Definition 3) only ever advances, so retention cannot turn
// future arrivals from out-of-order into in-order.
//
// The count is an accounting contract: points are reported removed only
// once the removal is durable. Every failure before the manifest commit —
// reading the straddling table, rebuilding it, persisting the replacement,
// the commit itself — returns (0, err) with the run untouched, so a caller
// that retries (or sums counts across series) never double-counts. A
// non-nil error alongside a nonzero count means only post-commit cleanup
// (retired-object removal, WAL shrink) failed; the drop itself held.
func (e *Engine) DropBefore(cutoff int64) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	if e.cfg.AsyncCompaction {
		e.drainLocked()
		if e.bgErr != nil {
			return 0, e.bgErr
		}
	}

	removed := 0

	// Tables entirely below the cutoff: unlink whole.
	idx := sort.Search(len(e.run.tables), func(i int) bool {
		return e.run.tables[i].MaxTG() >= cutoff
	})
	dropped := e.run.tables[:idx]
	for _, t := range dropped {
		removed += t.Len()
	}

	// A table straddling the cutoff is rewritten truncated. The surviving
	// points are read through the normal (possibly lazy) scan path, then
	// rebuilt and persisted before the manifest commit below.
	var replacement []sstable.TableHandle
	replaceTo := idx
	if idx < len(e.run.tables) && e.run.tables[idx].MinTG() < cutoff {
		// Any failure from here until the commit leaves the run exactly as
		// it was, so nothing may be reported removed: return 0, not the
		// whole-table tally above.
		t := e.run.tables[idx]
		keep, err := t.Scan(cutoff, t.MaxTG())
		if err != nil {
			return 0, err
		}
		removed += t.Len() - len(keep)
		if len(keep) > 0 {
			kept := make([]series.Point, len(keep))
			copy(kept, keep)
			nt, err := sstable.Build(e.nextID, kept)
			if err != nil {
				return 0, err
			}
			e.nextID++
			h, err := e.persistTable(nt)
			if err != nil {
				return 0, err
			}
			replacement = []sstable.TableHandle{h}
			e.stats.PointsWritten += int64(len(kept))
		}
		replaceTo = idx + 1
	}
	var cleanupErr error
	if replaceTo > 0 || len(replacement) > 0 {
		committed, err := e.replaceAndCommit(0, replaceTo, replacement)
		if !committed {
			return 0, err
		}
		cleanupErr = err
	}

	// Purge buffered points below the cutoff.
	for _, mt := range []*memtableRef{{e.c0}, {e.cseq}, {e.cnonseq}} {
		removed += mt.purgeBelow(cutoff)
	}
	if err := e.rewriteWAL(); err != nil && cleanupErr == nil {
		cleanupErr = err
	}
	return removed, cleanupErr
}

// memtableRef wraps a memtable for the purge helper (keeps retention logic
// in one place without widening the memtable API surface).
type memtableRef struct {
	mt interface {
		Empty() bool
		Points() []series.Point
		Reset()
		Put(series.Point) bool
	}
}

// purgeBelow drops points with TG < cutoff, returning how many were
// removed.
func (r *memtableRef) purgeBelow(cutoff int64) int {
	if r.mt.Empty() {
		return 0
	}
	pts := r.mt.Points()
	keep := pts[:0]
	for _, p := range pts {
		if p.TG >= cutoff {
			keep = append(keep, p)
		}
	}
	removed := len(pts) - len(keep)
	if removed == 0 {
		return 0
	}
	r.mt.Reset()
	for _, p := range keep {
		r.mt.Put(p)
	}
	return removed
}
