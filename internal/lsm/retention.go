package lsm

import (
	"sort"

	"repro/internal/series"
	"repro/internal/sstable"
)

// DropBefore removes every point with generation time strictly below
// cutoff — the TTL/retention operation of a time-series store (IoTDB's
// per-storage-group TTL works the same way). On each level, whole SSTables
// below the cutoff are unlinked without being read and the single table
// straddling the cutoff (if any) is rewritten truncated; all levels' edits
// commit under one manifest write, so a crash exposes either the old or
// the new tree, never a half-dropped one. Buffered points below the cutoff
// are discarded from the memtables. It returns the number of points
// removed — physical points: a generation time duplicated across levels
// (an old version awaiting compaction) counts once per copy.
//
// Dropping history does not move LAST(R) backwards: the classification
// frontier (Definition 3) only ever advances, so retention cannot turn
// future arrivals from out-of-order into in-order.
//
// The count is an accounting contract: points are reported removed only
// once the removal is durable. Every failure before the manifest commit —
// reading a straddling table, rebuilding it, persisting the replacement,
// the commit itself — returns (0, err) with every level untouched, so a
// caller that retries (or sums counts across series) never double-counts.
// A non-nil error alongside a nonzero count means only post-commit cleanup
// (retired-object removal, WAL shrink) failed; the drop itself held.
//
// Snapshot isolation: levels are edited through commitEdits (copy-on-write
// slice installs) and the memtable purge rebuilds each memtable from a
// fresh copy of its points, so a Snapshot taken before DropBefore keeps
// seeing every pre-drop point — including the dropped ones — for its whole
// lifetime.
func (e *Engine) DropBefore(cutoff int64) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	if e.cfg.AsyncCompaction {
		e.drainLocked()
		if e.bgErr != nil {
			return 0, e.bgErr
		}
	}

	removed := 0
	written := 0
	var edits []levelEdit
	for d := range e.levels {
		tables := e.levels[d].tables

		// Tables entirely below the cutoff: unlink whole.
		idx := sort.Search(len(tables), func(i int) bool {
			return tables[i].MaxTG() >= cutoff
		})
		for _, t := range tables[:idx] {
			removed += t.Len()
		}

		// A table straddling the cutoff is rewritten truncated. The
		// surviving points are read through the normal (possibly lazy) scan
		// path, then rebuilt and persisted before the manifest commit
		// below. Any failure from here until the commit leaves every level
		// exactly as it was, so nothing may be reported removed: return 0,
		// not the whole-table tally above.
		var replacement []sstable.TableHandle
		replaceTo := idx
		if idx < len(tables) && tables[idx].MinTG() < cutoff {
			t := tables[idx]
			keep, err := t.Scan(cutoff, t.MaxTG())
			if err != nil {
				return 0, err
			}
			removed += t.Len() - len(keep)
			if len(keep) > 0 {
				kept := make([]series.Point, len(keep))
				copy(kept, keep)
				nt, err := sstable.Build(e.nextID, kept)
				if err != nil {
					return 0, err
				}
				e.nextID++
				h, err := e.persistTable(nt)
				if err != nil {
					return 0, err
				}
				replacement = []sstable.TableHandle{h}
				written += len(kept)
			}
			replaceTo = idx + 1
		}
		if replaceTo > 0 || len(replacement) > 0 {
			edits = append(edits, levelEdit{level: d, i: 0, j: replaceTo, newTables: replacement})
		}
	}

	var cleanupErr error
	if len(edits) > 0 {
		committed, err := e.commitEdits(edits)
		if !committed {
			return 0, err
		}
		cleanupErr = err
		// Truncated-table rewrites became durable at the commit; count them
		// only now so a failed commit never inflates the WA numerator.
		e.stats.PointsWritten += int64(written)
	}

	// Purge buffered points below the cutoff.
	for _, mt := range []*memtableRef{{e.c0}, {e.cseq}, {e.cnonseq}} {
		removed += mt.purgeBelow(cutoff)
	}
	if err := e.rewriteWAL(); err != nil && cleanupErr == nil {
		cleanupErr = err
	}
	return removed, cleanupErr
}

// memtableRef wraps a memtable for the purge helper (keeps retention logic
// in one place without widening the memtable API surface).
type memtableRef struct {
	mt interface {
		Empty() bool
		Points() []series.Point
		Reset()
		Put(series.Point) bool
	}
}

// purgeBelow drops points with TG < cutoff, returning how many were
// removed. Points() returns a freshly allocated copy (and Snapshot images
// are cached separately and invalidated by Reset/Put), so rebuilding the
// memtable in place never mutates a frozen image a live Snapshot holds —
// the copy-on-write discipline the concurrent-retention race test pins
// down.
func (r *memtableRef) purgeBelow(cutoff int64) int {
	if r.mt.Empty() {
		return 0
	}
	pts := r.mt.Points()
	keep := pts[:0]
	for _, p := range pts {
		if p.TG >= cutoff {
			keep = append(keep, p)
		}
	}
	removed := len(pts) - len(keep)
	if removed == 0 {
		return 0
	}
	r.mt.Reset()
	for _, p := range keep {
		r.mt.Put(p)
	}
	return removed
}
