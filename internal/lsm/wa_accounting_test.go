package lsm

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/sstable"
	"repro/internal/storage"
)

// pointCountingBackend wraps a Backend and independently counts every point
// physically written into an SSTable object, by decoding each sst-*.tbl
// write. It is the ground truth Stats.PointsWritten must reconcile with.
type pointCountingBackend struct {
	storage.Backend
	mu     sync.Mutex
	points int64
}

func (b *pointCountingBackend) Write(name string, data []byte) error {
	if err := b.Backend.Write(name, data); err != nil {
		return err
	}
	if strings.HasPrefix(name, "sst-") {
		t, err := sstable.Decode(data)
		if err == nil {
			b.mu.Lock()
			b.points += int64(t.Len())
			b.mu.Unlock()
		}
	}
	return nil
}

func (b *pointCountingBackend) Points() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.points
}

// TestWriteAmplificationMatchesPhysicalWrites is the regression test for
// the async double-count: enqueueing an L0 table used to bump PointsWritten
// even though the L0 queue is memory-resident (its durable copy is the
// WAL), so every async point was counted once at enqueue and again at the
// merge — inflating WA against the paper's Eq. 3/Eq. 5 predictions and
// making sync/async runs of the same workload incomparable. The fixed
// accounting counts a point exactly when an SSTable object containing it is
// written to storage, which this test checks against an independent decode
// of every backend write — sync and async, single- and multi-level.
func TestWriteAmplificationMatchesPhysicalWrites(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"sync-single", Config{Policy: Conventional, MemBudget: 16, SSTablePoints: 8}},
		{"sync-multilevel", Config{Policy: Conventional, MemBudget: 16, SSTablePoints: 8, Levels: 3, GrowthFactor: 2}},
		{"async-single", Config{Policy: Conventional, MemBudget: 16, SSTablePoints: 8, AsyncCompaction: true}},
		{"async-multilevel", Config{Policy: Separation, MemBudget: 16, SSTablePoints: 8, Levels: 3, GrowthFactor: 2, AsyncCompaction: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			backend := &pointCountingBackend{Backend: storage.NewMemBackend()}
			cfg := tc.cfg
			cfg.Backend = backend
			cfg.WAL = true
			e := mustOpen(t, cfg)

			ps := genWorkload(3000, 10, dist.NewLognormal(4, 1.6), 17)
			ingest(t, e, ps)
			if err := e.FlushAll(); err != nil {
				t.Fatalf("FlushAll: %v", err)
			}
			// Retention rewrites a straddling table; its write must be
			// counted exactly once too (and only after the commit).
			if _, err := e.DropBefore(500); err != nil {
				t.Fatalf("DropBefore: %v", err)
			}
			if err := e.FlushAll(); err != nil {
				t.Fatalf("FlushAll: %v", err)
			}

			st := e.Stats()
			if got, want := st.PointsWritten, backend.Points(); got != want {
				t.Fatalf("Stats.PointsWritten = %d, but the backend saw %d points written into SSTable objects (Δ=%d)",
					got, want, got-want)
			}
			if cfg.AsyncCompaction && st.L0Points == 0 {
				// Pre-fix, PointsWritten exceeded the physical count by
				// exactly the L0 enqueue traffic; the equality above only
				// has teeth if that traffic actually happened.
				t.Error("async engine recorded no L0 enqueues — double-count regression not exercised")
			}
			if err := e.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// Close's final flush may write more; reconcile once more.
			if got, want := e.Stats().PointsWritten, backend.Points(); got != want {
				t.Fatalf("after Close: Stats.PointsWritten = %d, backend saw %d", got, want)
			}
		})
	}
}
