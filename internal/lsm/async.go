package lsm

import (
	"fmt"

	"repro/internal/memtable"
	"repro/internal/sstable"
)

// Async compaction mode (Section V-C of the paper): "when a MemTable is
// full, the data will be flushed to a file on the disk on level 1. A
// compaction thread consumed the SSTables on level 1, and organized them to
// new SSTables on level 2 in the background. [...] So, the writing will not
// be blocked to wait for compaction."
//
// Here L0 is the queue of flushed memtable images (they may overlap each
// other and the run) and a background compactor merges them into the run in
// FIFO order. Write amplification accounting counts both the L0 flush write
// and the merge write, matching that two-level implementation.
//
// Who runs the compactor is pluggable: with no Config.Scheduler the engine
// owns a private goroutine (compactorLoop); with one, the engine only
// reports its L0 backlog via Notify and a shared, bounded worker pool (see
// internal/lsm/scheduler) calls CompactOnce. Either way exactly one
// compactor drives an engine at a time — CompactOnce enforces that.

// maxL0Backlog bounds the L0 queue; producers wait when it is full so an
// ingest burst cannot exhaust memory.
const maxL0Backlog = 64

// CompactionScheduler coordinates background compaction across many
// engines. Notify is called with the engine lock held every time the
// engine's L0 backlog changes; implementations must only record the new
// depth and return — no blocking, and no calls back into the engine (the
// lock is not reentrant). The scheduler owes the engine serialized
// CompactOnce calls in exchange.
type CompactionScheduler interface {
	Notify(e *Engine, depth int)
}

// enqueueL0 flushes mt to an L0 table and hands it to the compactor.
// Caller holds the lock. The queue is published copy-on-write: e.l0 is
// handed to lock-free snapshots, so a new slice is installed rather than
// appending through the shared backing array.
func (e *Engine) enqueueL0(mt *memtable.MemTable) error {
	for len(e.l0) >= maxL0Backlog && e.bgErr == nil && !e.closed {
		e.l0Cond.Wait()
	}
	if e.bgErr != nil {
		return e.bgErr
	}
	if e.closed {
		return ErrClosed
	}
	pts := mt.Points()
	if len(pts) == 0 {
		return nil
	}
	t, err := sstable.Build(e.nextID, pts)
	if err != nil {
		return fmt.Errorf("lsm: build L0 table: %w", err)
	}
	e.nextID++
	l0 := make([]*sstable.Table, len(e.l0), len(e.l0)+1)
	copy(l0, e.l0)
	e.l0 = append(l0, t)
	e.stats.PointsWritten += int64(len(pts)) // the L0 flush write
	e.stats.Flushes++
	mt.Reset()
	// An L0 table lives only in memory until the compactor merges it into
	// the run, so its points stay in the WAL: rewriteWAL covers the L0
	// queue. The compactor drops them from the log only after the merge's
	// manifest commit makes them durable.
	if err := e.rewriteWAL(); err != nil {
		return err
	}
	e.notifySchedulerLocked()
	e.l0Cond.Broadcast()
	return nil
}

// notifySchedulerLocked reports the current L0 depth to the shared
// scheduler, if any. Caller holds the lock. Suppressed until the engine is
// fully open: WAL replay may enqueue L0 tables while the engine is still
// private to Open (recover runs without the lock), and the scheduler learns
// that initial backlog when the engine is registered instead.
func (e *Engine) notifySchedulerLocked() {
	if e.cfg.Scheduler != nil && e.started {
		e.cfg.Scheduler.Notify(e, len(e.l0))
	}
}

// startCompactor launches the per-engine background merge goroutine (used
// when no shared scheduler is configured).
func (e *Engine) startCompactor() {
	e.bgDone = make(chan struct{})
	e.started = true
	go e.compactorLoop()
}

// compactorLoop drives CompactOnce for a single engine until the engine
// closes. A sticky background error parks the loop — no further merge can
// succeed, and Close (whose FlushAll drains or observes the error first)
// wakes it to exit.
func (e *Engine) compactorLoop() {
	defer close(e.bgDone)
	for {
		e.mu.Lock()
		for !e.closed && (len(e.l0) == 0 || e.bgErr != nil) {
			e.l0Cond.Wait()
		}
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		e.CompactOnce()
	}
}

// CompactOnce merges the L0 queue head into the run — the unit of work a
// compaction worker executes. The block reads of the overlapped tables, the
// streaming merge, and the backend I/O for the new SSTable objects all run
// outside the engine lock (see the lock discipline below), so ingestion is
// stalled by neither disk reads, CPU merging, nor disk writes.
//
// It returns the number of L0 tables still pending, so a scheduler can
// requeue the engine without polling it. On a closed engine, an empty
// queue, or a previously failed engine it is a no-op reporting 0. On a
// merge error the engine fail-stops: the error is recorded as the sticky
// background error (surfaced by the next Put/FlushAll), the head table
// stays at the queue front so readers keep seeing its acknowledged points,
// and remaining is reported as 0 since retrying cannot succeed.
//
// Callers must serialize CompactOnce per engine — the private compactor
// goroutine and the shared scheduler's one-worker-per-engine rule both do.
// The merge snapshot taken in the first critical section stays valid across
// the unlocked persist precisely because the compactor is the engine's sole
// run mutator while the L0 queue is non-empty (every other mutator drains
// the queue under the lock first); a second concurrent call would break
// that invariant, so it panics instead of corrupting the run.
//
// Lock discipline per call (see DESIGN.md §7.2 invariant 2 and §7.3):
//
//	lock:    snapshot the head table and its overlap window in the run;
//	         reserve output table IDs.
//	unlock:  stream-merge the overlapped tables' blocks with the head
//	         table's points and write each output SSTable object as it is
//	         cut (the "persist" step — a crash here leaves orphans that
//	         recovery removes; nothing references them yet).
//	lock:    install the new tables in the run (copy-on-write), commit
//	         the manifest (the commit point — rolled back in memory if the
//	         commit fails), retire old objects, pop the queue head, and
//	         shrink the WAL — all ordered behind the commit.
func (e *Engine) CompactOnce() (remaining int, err error) {
	if !e.compacting.CompareAndSwap(false, true) {
		panic("lsm: concurrent CompactOnce calls on one engine")
	}
	defer e.compacting.Store(false)

	e.mu.Lock()
	if e.closed || e.bgErr != nil || len(e.l0) == 0 {
		e.mu.Unlock()
		return 0, nil
	}
	// Keep the table at the queue head until installed so Scan/Get
	// continue to see its points.
	t := e.l0[0]
	pts := t.Points()
	if len(pts) == 0 {
		// Nothing to merge; drop the empty table rather than index pts[0].
		e.popL0Locked()
		remaining = len(e.l0)
		e.l0Cond.Broadcast()
		e.mu.Unlock()
		return remaining, nil
	}
	lo, hi := pts[0].TG, pts[len(pts)-1].TG
	i, j := e.run.overlapRange(lo, hi)
	overlapping := make([]sstable.TableHandle, j-i)
	copy(overlapping, e.run.tables[i:j])
	var oldCount int
	for _, h := range overlapping {
		oldCount += h.Len()
	}
	runSnapshot := e.run.tables
	// Reserve IDs for the merge output now so the tables can be built
	// and persisted without the lock. oldCount+len(pts) bounds the
	// merged size; duplicate collapses may leave ID gaps, which are
	// harmless (IDs only need to be unique and monotone).
	chunk := e.cfg.SSTablePoints
	idBase := e.nextID
	e.nextID += uint64((oldCount+len(pts))/chunk) + 1
	e.mu.Unlock()

	var subsequent int
	if e.OnCompaction != nil {
		// Counting reads table blocks; do it off-lock on the immutable
		// run snapshot (valid: the compactor is the sole run mutator).
		subsequent = pointsGreaterThan(runSnapshot, lo)
	}
	nextID := idBase
	newTables, merged, err := streamMerge(overlapping, pts, chunk,
		func() uint64 { id := nextID; nextID++; return id },
		e.persistTable)

	e.mu.Lock()
	committed := false
	if err == nil {
		committed, err = e.replaceAndCommit(i, j, newTables)
	}
	if committed {
		e.popL0Locked()
		e.stats.PointsWritten += int64(merged)
		if oldCount == 0 {
			e.stats.Flushes++
		} else {
			e.stats.Compactions++
			e.stats.PointsRewritten += int64(oldCount)
			e.stats.TablesRewritten += int64(len(overlapping))
			if e.OnCompaction != nil {
				e.OnCompaction(CompactionInfo{
					MemPoints:        len(pts),
					SubsequentPoints: subsequent,
					RewrittenPoints:  oldCount,
					OutputPoints:     merged,
					TablesIn:         len(overlapping),
					TablesOut:        len(newTables),
				})
			}
		}
		// The merged table's points are durable in the run; shrink the
		// WAL to the remaining queue + memtables (invariant 3). On
		// failure the old WAL — which still covers everything — stays in
		// place for recovery.
		if werr := e.rewriteWAL(); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		if e.bgErr == nil {
			e.bgErr = fmt.Errorf("lsm: background compaction: %w", err)
		}
		remaining = 0
	} else {
		remaining = len(e.l0)
	}
	e.l0Cond.Broadcast()
	e.mu.Unlock()
	return remaining, err
}

// popL0Locked removes the queue head. Caller holds the lock. Re-slicing
// leaves the shared backing array intact, so snapshots holding the old
// slice header are unaffected.
func (e *Engine) popL0Locked() {
	e.l0 = e.l0[1:]
}

// drainLocked waits until the L0 queue is empty. Caller holds the lock.
func (e *Engine) drainLocked() {
	for len(e.l0) > 0 && e.bgErr == nil {
		e.l0Cond.Broadcast()
		e.l0Cond.Wait()
	}
}

// L0Backlog returns the current number of pending L0 tables.
func (e *Engine) L0Backlog() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.l0)
}
