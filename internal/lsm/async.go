package lsm

import (
	"fmt"

	"repro/internal/memtable"
	"repro/internal/sstable"
)

// Async compaction mode (Section V-C of the paper): "when a MemTable is
// full, the data will be flushed to a file on the disk on level 1. A
// compaction thread consumed the SSTables on level 1, and organized them to
// new SSTables on level 2 in the background. [...] So, the writing will not
// be blocked to wait for compaction."
//
// Here L0 is the queue of flushed memtable images (they may overlap each
// other and every level) and a background compactor merges them into L1 in
// FIFO order. With Config.Levels > 1 the compactor additionally executes
// policy-picked level push-downs (see levels.go); either kind is one
// CompactOnce unit.
//
// Write-amplification accounting counts only points physically written to
// SSTable objects. An L0 table is a memory-resident image whose durable
// copy is the WAL — enqueueing one moves no bytes to SSTable storage, so it
// counts under Stats.L0Points/L0Flushes, not PointsWritten/Flushes; the
// write into the run is counted when the merge commits. (Earlier versions
// counted the enqueue as a write too, double-counting every async point
// against the paper's Eq. 3/Eq. 5 predictions.)
//
// Who runs the compactor is pluggable: with no Config.Scheduler the engine
// owns a private goroutine (compactorLoop); with one, the engine only
// reports its backlog via Notify and a shared, bounded worker pool (see
// internal/lsm/scheduler) calls CompactOnce. Either way exactly one
// compactor drives an engine at a time — CompactOnce enforces that.

// maxL0Backlog bounds the L0 queue; producers wait when it is full so an
// ingest burst cannot exhaust memory.
const maxL0Backlog = 64

// CompactionScheduler coordinates background compaction across many
// engines. Notify is called with the engine lock held every time the
// engine's compaction backlog (queued L0 tables + level-overflow units)
// changes; implementations must only record the new depth and return — no
// blocking, and no calls back into the engine (the lock is not reentrant).
// The scheduler owes the engine serialized CompactOnce calls in exchange.
type CompactionScheduler interface {
	Notify(e *Engine, depth int)
}

// enqueueL0 flushes mt to an L0 table and hands it to the compactor.
// Caller holds the lock. The queue is published copy-on-write: e.l0 is
// handed to lock-free snapshots, so a new slice is installed rather than
// appending through the shared backing array.
func (e *Engine) enqueueL0(mt *memtable.MemTable) error {
	for len(e.l0) >= maxL0Backlog && e.bgErr == nil && !e.closed {
		e.l0Cond.Wait()
	}
	if e.bgErr != nil {
		return e.bgErr
	}
	if e.closed {
		return ErrClosed
	}
	pts := mt.Points()
	if len(pts) == 0 {
		return nil
	}
	t, err := sstable.Build(e.nextID, pts)
	if err != nil {
		return fmt.Errorf("lsm: build L0 table: %w", err)
	}
	e.nextID++
	l0 := make([]*sstable.Table, len(e.l0), len(e.l0)+1)
	copy(l0, e.l0)
	e.l0 = append(l0, t)
	// Not a physical SSTable write: the table lives in memory and its
	// durable copy is the WAL, so it does not enter PointsWritten (the WA
	// numerator counts storage writes only — see stats.go).
	e.stats.L0Points += int64(len(pts))
	e.stats.L0Flushes++
	mt.Reset()
	// An L0 table lives only in memory until the compactor merges it into
	// the run, so its points stay in the WAL: rewriteWAL covers the L0
	// queue. The compactor drops them from the log only after the merge's
	// manifest commit makes them durable.
	if err := e.rewriteWAL(); err != nil {
		return err
	}
	e.notifySchedulerLocked()
	e.l0Cond.Broadcast()
	return nil
}

// notifySchedulerLocked reports the current compaction backlog to the
// shared scheduler, if any. Caller holds the lock. Suppressed until the
// engine is fully open: WAL replay may enqueue L0 tables while the engine
// is still private to Open (recover runs without the lock), and the
// scheduler learns that initial backlog when the engine is registered
// instead.
func (e *Engine) notifySchedulerLocked() {
	if e.cfg.Scheduler != nil && e.started {
		e.cfg.Scheduler.Notify(e, e.compactionBacklogLocked())
	}
}

// startCompactor launches the per-engine background merge goroutine (used
// when no shared scheduler is configured).
func (e *Engine) startCompactor() {
	e.bgDone = make(chan struct{})
	e.started = true
	go e.compactorLoop()
}

// compactorLoop drives CompactOnce for a single engine until the engine
// closes. A sticky background error parks the loop — no further merge can
// succeed, and Close (whose FlushAll drains or observes the error first)
// wakes it to exit.
func (e *Engine) compactorLoop() {
	defer close(e.bgDone)
	for {
		e.mu.Lock()
		for !e.closed && (e.compactionBacklogLocked() == 0 || e.bgErr != nil) {
			e.l0Cond.Wait()
		}
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		e.CompactOnce()
	}
}

// CompactOnce executes one unit of background compaction work: merging the
// L0 queue head into L1 when the queue is non-empty, otherwise one
// policy-picked level push-down. The block reads of the overlapped tables,
// the streaming merge, and the backend I/O for the new SSTable objects all
// run outside the engine lock (see the lock discipline below), so
// ingestion is stalled by neither disk reads, CPU merging, nor disk
// writes. L0 merges take priority — they free WAL-covered memory and feed
// the levels the policy then rebalances.
//
// It returns the remaining backlog (queued L0 tables + level-overflow
// units), so a scheduler can requeue the engine without polling it. On a
// closed engine, an empty backlog, or a previously failed engine it is a
// no-op reporting 0. On a merge error the engine fail-stops: the error is
// recorded as the sticky background error (surfaced by the next
// Put/FlushAll), the head table stays at the queue front so readers keep
// seeing its acknowledged points, and remaining is reported as 0 since
// retrying cannot succeed.
//
// Callers must serialize CompactOnce per engine — the private compactor
// goroutine and the shared scheduler's one-worker-per-engine rule both do.
// The merge snapshot taken in the first critical section stays valid
// across the unlocked persist because the compactor is the engine's sole
// level mutator while its e.inflight flag is set (every other mutator —
// DropBefore, SetPolicy, FlushAll — drains the queue AND waits for
// inflight under the lock first); a second concurrent call would break
// that invariant, so it panics instead of corrupting a level.
//
// Lock discipline per call (see DESIGN.md §7.2 invariant 2 and §7.3):
//
//	lock:    choose the unit (L0 head or level task); snapshot the source
//	         and its overlap window; reserve output table IDs; set
//	         inflight.
//	unlock:  stream-merge the overlapped tables' blocks with the source
//	         points and write each output SSTable object as it is cut
//	         (the "persist" step — a crash here leaves orphans that
//	         recovery removes; nothing references them yet).
//	lock:    install the new tables (copy-on-write), commit the manifest
//	         (the commit point — rolled back in memory if the commit
//	         fails), retire old objects, pop the queue head / update level
//	         counters, shrink the WAL, clear inflight — all ordered behind
//	         the commit.
func (e *Engine) CompactOnce() (remaining int, err error) {
	if !e.compacting.CompareAndSwap(false, true) {
		panic("lsm: concurrent CompactOnce calls on one engine")
	}
	defer e.compacting.Store(false)

	e.mu.Lock()
	if e.closed || e.bgErr != nil {
		e.mu.Unlock()
		return 0, nil
	}
	if len(e.l0) > 0 {
		return e.compactL0HeadLocked() // unlocks
	}
	task, ok, perr := e.pickLevelCompactionLocked()
	if perr != nil {
		e.failCompactionLocked(perr)
		e.mu.Unlock()
		return 0, perr
	}
	if !ok {
		e.mu.Unlock()
		return 0, nil
	}
	return e.compactLevelLocked(task) // unlocks
}

// compactL0HeadLocked merges the L0 queue head into L1. Called by
// CompactOnce with the lock held; unlocks before returning.
func (e *Engine) compactL0HeadLocked() (remaining int, err error) {
	// Keep the table at the queue head until installed so Scan/Get
	// continue to see its points.
	t := e.l0[0]
	pts := t.Points()
	if len(pts) == 0 {
		// Nothing to merge; drop the empty table rather than index pts[0].
		e.popL0Locked()
		remaining = e.compactionBacklogLocked()
		e.l0Cond.Broadcast()
		e.mu.Unlock()
		return remaining, nil
	}
	lo, hi := pts[0].TG, pts[len(pts)-1].TG
	lvl := &e.levels[0]
	i, j := lvl.overlapRange(lo, hi)
	overlapping := make([]sstable.TableHandle, j-i)
	copy(overlapping, lvl.tables[i:j])
	var oldCount int
	for _, h := range overlapping {
		oldCount += h.Len()
	}
	var treeSnapshot []sstable.TableHandle
	if e.OnCompaction != nil {
		treeSnapshot = e.allTablesLocked()
	}
	// Reserve IDs for the merge output now so the tables can be built
	// and persisted without the lock. oldCount+len(pts) bounds the
	// merged size; duplicate collapses may leave ID gaps, which are
	// harmless (IDs only need to be unique and monotone).
	chunk := e.cfg.SSTablePoints
	idBase := e.nextID
	e.nextID += uint64((oldCount+len(pts))/chunk) + 1
	e.inflight = true
	e.mu.Unlock()

	var subsequent int
	if e.OnCompaction != nil {
		// Counting reads table blocks; do it off-lock on the immutable
		// snapshot (valid: the compactor is the sole level mutator while
		// inflight).
		subsequent = pointsGreaterThan(treeSnapshot, lo)
	}
	nextID := idBase
	newTables, merged, err := streamMerge(overlapping, pts, chunk,
		func() uint64 { id := nextID; nextID++; return id },
		e.persistTable)

	e.mu.Lock()
	e.inflight = false
	committed := false
	if err == nil {
		committed, err = e.replaceAndCommit(i, j, newTables)
	}
	if committed {
		e.popL0Locked()
		e.stats.PointsWritten += int64(merged)
		e.levelCounters[0].PointsIn += int64(merged)
		if oldCount == 0 {
			e.stats.Flushes++
		} else {
			e.stats.Compactions++
			e.stats.PointsRewritten += int64(oldCount)
			e.stats.TablesRewritten += int64(len(overlapping))
			e.levelCounters[0].Compactions++
			e.levelCounters[0].PointsRewritten += int64(oldCount)
			if e.OnCompaction != nil {
				e.OnCompaction(CompactionInfo{
					MemPoints:        len(pts),
					SubsequentPoints: subsequent,
					RewrittenPoints:  oldCount,
					OutputPoints:     merged,
					TablesIn:         len(overlapping),
					TablesOut:        len(newTables),
				})
			}
		}
		// The merged table's points are durable in the run; shrink the
		// WAL to the remaining queue + memtables (invariant 3). On
		// failure the old WAL — which still covers everything — stays in
		// place for recovery.
		if werr := e.rewriteWAL(); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		e.failCompactionLocked(err)
		remaining = 0
	} else {
		remaining = e.compactionBacklogLocked()
	}
	e.l0Cond.Broadcast()
	e.mu.Unlock()
	return remaining, err
}

// compactLevelLocked executes one level push-down with the persist window
// unlocked. Called by CompactOnce with the lock held; unlocks before
// returning. The task was validated against the current levels under this
// same lock hold, and stays valid across the unlocked window because
// inflight blocks every other level mutator.
func (e *Engine) compactLevelLocked(task CompactionTask) (remaining int, err error) {
	src, dst := task.Src-1, task.Src
	srcTables := make([]sstable.TableHandle, task.J-task.I)
	copy(srcTables, e.levels[src].tables[task.I:task.J])
	a, b, dstOverlap := e.levelOverlapLocked(dst, srcTables)
	var srcCount, dstCount int
	for _, t := range srcTables {
		srcCount += t.Len()
	}
	for _, t := range dstOverlap {
		dstCount += t.Len()
	}
	chunk := e.cfg.SSTablePoints
	idBase := e.nextID
	e.nextID += uint64((srcCount+dstCount)/chunk) + 1
	e.inflight = true
	e.mu.Unlock()

	newTables, merged, err := e.mergeLevelSlices(srcTables, dstOverlap, chunk, idBase)

	e.mu.Lock()
	e.inflight = false
	committed := false
	if err == nil {
		committed, err = e.commitEdits([]levelEdit{
			{level: src, i: task.I, j: task.J},
			{level: dst, i: a, j: b, newTables: newTables},
		})
	}
	if committed {
		e.noteLevelCompactionLocked(dst, merged, srcCount, dstCount, len(srcTables)+len(dstOverlap))
	}
	if err != nil {
		e.failCompactionLocked(err)
		remaining = 0
	} else {
		remaining = e.compactionBacklogLocked()
	}
	e.l0Cond.Broadcast()
	e.mu.Unlock()
	return remaining, err
}

// failCompactionLocked records a sticky background error. Caller holds the
// lock.
func (e *Engine) failCompactionLocked(err error) {
	if e.bgErr == nil {
		e.bgErr = fmt.Errorf("lsm: background compaction: %w", err)
	}
}

// popL0Locked removes the queue head. Caller holds the lock. Re-slicing
// leaves the shared backing array intact, so snapshots holding the old
// slice header are unaffected.
func (e *Engine) popL0Locked() {
	e.l0 = e.l0[1:]
}

// drainLocked waits until the L0 queue is empty and no compaction unit is
// in its unlocked persist window. Caller holds the lock. Level-overflow
// backlog may remain — those points are already durable; drains only need
// the WAL-covered queue gone and exclusive ownership of the levels.
func (e *Engine) drainLocked() {
	for (len(e.l0) > 0 || e.inflight) && e.bgErr == nil {
		e.l0Cond.Broadcast()
		e.l0Cond.Wait()
	}
}

// L0Backlog returns the engine's pending background work: queued L0 tables
// plus level-overflow units (the name predates multi-level; schedulers
// treat it as an abstract depth).
func (e *Engine) L0Backlog() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compactionBacklogLocked()
}
