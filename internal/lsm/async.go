package lsm

import (
	"fmt"

	"repro/internal/memtable"
	"repro/internal/sstable"
)

// Async compaction mode (Section V-C of the paper): "when a MemTable is
// full, the data will be flushed to a file on the disk on level 1. A
// compaction thread consumed the SSTables on level 1, and organized them to
// new SSTables on level 2 in the background. [...] So, the writing will not
// be blocked to wait for compaction."
//
// Here L0 is the queue of flushed memtable images (they may overlap each
// other and the run) and the background compactor merges them into the run
// in FIFO order. Write amplification accounting counts both the L0 flush
// write and the merge write, matching that two-level implementation.

// maxL0Backlog bounds the L0 queue; producers wait when it is full so an
// ingest burst cannot exhaust memory.
const maxL0Backlog = 64

// enqueueL0 flushes mt to an L0 table and hands it to the compactor.
// Caller holds the lock. The queue is published copy-on-write: e.l0 is
// handed to lock-free snapshots, so a new slice is installed rather than
// appending through the shared backing array.
func (e *Engine) enqueueL0(mt *memtable.MemTable) error {
	for len(e.l0) >= maxL0Backlog && e.bgErr == nil && !e.closed {
		e.l0Cond.Wait()
	}
	if e.bgErr != nil {
		return e.bgErr
	}
	if e.closed {
		return ErrClosed
	}
	pts := mt.Points()
	if len(pts) == 0 {
		return nil
	}
	t, err := sstable.Build(e.nextID, pts)
	if err != nil {
		return fmt.Errorf("lsm: build L0 table: %w", err)
	}
	e.nextID++
	l0 := make([]*sstable.Table, len(e.l0), len(e.l0)+1)
	copy(l0, e.l0)
	e.l0 = append(l0, t)
	e.stats.PointsWritten += int64(len(pts)) // the L0 flush write
	e.stats.Flushes++
	mt.Reset()
	// An L0 table lives only in memory until the compactor merges it into
	// the run, so its points stay in the WAL: rewriteWAL covers the L0
	// queue. The compactor drops them from the log only after the merge's
	// manifest commit makes them durable.
	if err := e.rewriteWAL(); err != nil {
		return err
	}
	e.l0Cond.Broadcast()
	return nil
}

// startCompactor launches the background merge goroutine.
func (e *Engine) startCompactor() {
	e.bgDone = make(chan struct{})
	e.started = true
	go e.compactorLoop()
}

// compactorLoop consumes L0 tables in FIFO order, merging each into the
// run as the synchronous path would — but the block reads of the
// overlapped tables, the streaming merge, AND the backend I/O for the new
// SSTable objects all run outside the engine lock, so ingestion is stalled
// by neither disk reads, CPU merging, nor disk writes.
//
// Lock discipline per iteration (see DESIGN.md §7.2 invariant 2 and §7.3):
//
//	lock:    snapshot the head table and its overlap window in the run;
//	         reserve output table IDs.
//	unlock:  stream-merge the overlapped tables' blocks with the head
//	         table's points and write each output SSTable object as it is
//	         cut (the "persist" step — a crash here leaves orphans that
//	         recovery removes; nothing references them yet).
//	lock:    install the new tables in the run (copy-on-write), commit
//	         the manifest (the commit point), retire old objects, and
//	         shrink the WAL — all ordered behind the commit.
//
// The overlap window snapshot stays valid across the unlocked section
// because the compactor is the only run mutator while the L0 queue is
// non-empty: every other mutator (FlushAll, SetPolicy, DropBefore) drains
// the queue under the lock before touching the run. The overlapped handles
// themselves are immutable, so reading their blocks off-lock is safe.
func (e *Engine) compactorLoop() {
	defer close(e.bgDone)
	for {
		e.mu.Lock()
		for len(e.l0) == 0 && !e.closed {
			e.l0Cond.Wait()
		}
		if len(e.l0) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		// Keep the table at the queue head until installed so Scan/Get
		// continue to see its points.
		t := e.l0[0]
		pts := t.Points()
		lo, hi := pts[0].TG, pts[len(pts)-1].TG
		i, j := e.run.overlapRange(lo, hi)
		overlapping := make([]sstable.TableHandle, j-i)
		copy(overlapping, e.run.tables[i:j])
		var oldCount int
		for _, h := range overlapping {
			oldCount += h.Len()
		}
		runSnapshot := e.run.tables
		// Reserve IDs for the merge output now so the tables can be built
		// and persisted without the lock. oldCount+len(pts) bounds the
		// merged size; duplicate collapses may leave ID gaps, which are
		// harmless (IDs only need to be unique and monotone).
		chunk := e.cfg.SSTablePoints
		idBase := e.nextID
		e.nextID += uint64((oldCount+len(pts))/chunk) + 1
		e.mu.Unlock()

		var subsequent int
		if e.OnCompaction != nil {
			// Counting reads table blocks; do it off-lock on the immutable
			// run snapshot (valid: the compactor is the sole run mutator).
			subsequent = pointsGreaterThan(runSnapshot, lo)
		}
		nextID := idBase
		newTables, merged, err := streamMerge(overlapping, pts, chunk,
			func() uint64 { id := nextID; nextID++; return id },
			e.persistTable)

		e.mu.Lock()
		if err == nil {
			e.run.replace(i, j, newTables)
			err = e.commitReplace(overlapping)
			retireHandles(overlapping)
			e.stats.PointsWritten += int64(merged)
			if oldCount == 0 {
				e.stats.Flushes++
			} else {
				e.stats.Compactions++
				e.stats.PointsRewritten += int64(oldCount)
				e.stats.TablesRewritten += int64(len(overlapping))
				if e.OnCompaction != nil {
					e.OnCompaction(CompactionInfo{
						MemPoints:        len(pts),
						SubsequentPoints: subsequent,
						RewrittenPoints:  oldCount,
						OutputPoints:     merged,
						TablesIn:         len(overlapping),
						TablesOut:        len(newTables),
					})
				}
			}
		}
		if err != nil && e.bgErr == nil {
			e.bgErr = fmt.Errorf("lsm: background compaction: %w", err)
		}
		e.l0 = e.l0[1:]
		if err == nil {
			// The merged table's points are durable in the run (manifest
			// committed inside commitReplace); shrink the WAL to the
			// remaining queue + memtables. On error the old WAL — which
			// still covers the dropped table — is left in place for
			// recovery.
			if werr := e.rewriteWAL(); werr != nil && e.bgErr == nil {
				e.bgErr = fmt.Errorf("lsm: background compaction: %w", werr)
			}
		}
		e.l0Cond.Broadcast()
		e.mu.Unlock()
	}
}

// drainLocked waits until the L0 queue is empty. Caller holds the lock.
func (e *Engine) drainLocked() {
	for len(e.l0) > 0 && e.bgErr == nil {
		e.l0Cond.Broadcast()
		e.l0Cond.Wait()
	}
}

// L0Backlog returns the current number of pending L0 tables.
func (e *Engine) L0Backlog() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.l0)
}
