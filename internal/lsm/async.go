package lsm

import (
	"fmt"

	"repro/internal/memtable"
	"repro/internal/series"
	"repro/internal/sstable"
)

// Async compaction mode (Section V-C of the paper): "when a MemTable is
// full, the data will be flushed to a file on the disk on level 1. A
// compaction thread consumed the SSTables on level 1, and organized them to
// new SSTables on level 2 in the background. [...] So, the writing will not
// be blocked to wait for compaction."
//
// Here L0 is the queue of flushed memtable images (they may overlap each
// other and the run) and the background compactor merges them into the run
// in FIFO order. Write amplification accounting counts both the L0 flush
// write and the merge write, matching that two-level implementation.

// maxL0Backlog bounds the L0 queue; producers wait when it is full so an
// ingest burst cannot exhaust memory.
const maxL0Backlog = 64

// enqueueL0 flushes mt to an L0 table and hands it to the compactor.
// Caller holds the lock.
func (e *Engine) enqueueL0(mt *memtable.MemTable) error {
	for len(e.l0) >= maxL0Backlog && e.bgErr == nil && !e.closed {
		e.l0Cond.Wait()
	}
	if e.bgErr != nil {
		return e.bgErr
	}
	if e.closed {
		return ErrClosed
	}
	pts := mt.Points()
	if len(pts) == 0 {
		return nil
	}
	t, err := sstable.Build(e.nextID, pts)
	if err != nil {
		return fmt.Errorf("lsm: build L0 table: %w", err)
	}
	e.nextID++
	e.l0 = append(e.l0, t)
	e.stats.PointsWritten += int64(len(pts)) // the L0 flush write
	e.stats.Flushes++
	mt.Reset()
	// An L0 table lives only in memory until the compactor merges it into
	// the run, so its points stay in the WAL: rewriteWAL covers the L0
	// queue. The compactor drops them from the log only after the merge's
	// manifest commit makes them durable.
	if err := e.rewriteWAL(); err != nil {
		return err
	}
	e.l0Cond.Broadcast()
	return nil
}

// startCompactor launches the background merge goroutine.
func (e *Engine) startCompactor() {
	e.bgDone = make(chan struct{})
	e.started = true
	go e.compactorLoop()
}

// compactorLoop consumes L0 tables in FIFO order, merging each into the
// run as the synchronous path would — but the expensive merge runs outside
// the engine lock so ingestion is never blocked behind a compaction. The
// compactor is the only run mutator in async mode, so the overlap snapshot
// taken under the lock stays valid while merging.
func (e *Engine) compactorLoop() {
	defer close(e.bgDone)
	for {
		e.mu.Lock()
		for len(e.l0) == 0 && !e.closed {
			e.l0Cond.Wait()
		}
		if len(e.l0) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		// Keep the table at the queue head until installed so Scan/Get
		// continue to see its points.
		t := e.l0[0]
		pts := t.Points()
		lo, hi := pts[0].TG, pts[len(pts)-1].TG
		i, j := e.run.overlapRange(lo, hi)
		old := e.run.collectPoints(i, j)
		var subsequent int
		if e.OnCompaction != nil {
			subsequent = e.run.pointsGreaterThan(lo)
		}
		e.mu.Unlock()

		merged := pts
		if len(old) > 0 {
			merged = series.MergeByTG(old, pts)
		}

		e.mu.Lock()
		newTables, err := e.buildTables(merged, e.cfg.SSTablePoints)
		if err == nil {
			overlapping := make([]*sstable.Table, j-i)
			copy(overlapping, e.run.tables[i:j])
			e.run.replace(i, j, newTables)
			err = e.persistReplace(overlapping, newTables)
			e.stats.PointsWritten += int64(len(merged))
			if len(old) == 0 {
				e.stats.Flushes++
			} else {
				e.stats.Compactions++
				e.stats.PointsRewritten += int64(len(old))
				e.stats.TablesRewritten += int64(len(overlapping))
				if e.OnCompaction != nil {
					e.OnCompaction(CompactionInfo{
						MemPoints:        len(pts),
						SubsequentPoints: subsequent,
						RewrittenPoints:  len(old),
						OutputPoints:     len(merged),
						TablesIn:         len(overlapping),
						TablesOut:        len(newTables),
					})
				}
			}
		}
		if err != nil && e.bgErr == nil {
			e.bgErr = fmt.Errorf("lsm: background compaction: %w", err)
		}
		e.l0 = e.l0[1:]
		if err == nil {
			// The merged table's points are durable in the run (manifest
			// committed inside persistReplace); shrink the WAL to the
			// remaining queue + memtables. On error the old WAL — which
			// still covers the dropped table — is left in place for
			// recovery.
			if werr := e.rewriteWAL(); werr != nil && e.bgErr == nil {
				e.bgErr = fmt.Errorf("lsm: background compaction: %w", werr)
			}
		}
		e.l0Cond.Broadcast()
		e.mu.Unlock()
	}
}

// drainLocked waits until the L0 queue is empty. Caller holds the lock.
func (e *Engine) drainLocked() {
	for len(e.l0) > 0 && e.bgErr == nil {
		e.l0Cond.Broadcast()
		e.l0Cond.Wait()
	}
}

// L0Backlog returns the current number of pending L0 tables.
func (e *Engine) L0Backlog() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.l0)
}
