package lsm

import (
	"fmt"

	"repro/internal/memtable"
	"repro/internal/series"
	"repro/internal/sstable"
)

// Async compaction mode (Section V-C of the paper): "when a MemTable is
// full, the data will be flushed to a file on the disk on level 1. A
// compaction thread consumed the SSTables on level 1, and organized them to
// new SSTables on level 2 in the background. [...] So, the writing will not
// be blocked to wait for compaction."
//
// Here L0 is the queue of flushed memtable images (they may overlap each
// other and the run) and the background compactor merges them into the run
// in FIFO order. Write amplification accounting counts both the L0 flush
// write and the merge write, matching that two-level implementation.

// maxL0Backlog bounds the L0 queue; producers wait when it is full so an
// ingest burst cannot exhaust memory.
const maxL0Backlog = 64

// enqueueL0 flushes mt to an L0 table and hands it to the compactor.
// Caller holds the lock. The queue is published copy-on-write: e.l0 is
// handed to lock-free snapshots, so a new slice is installed rather than
// appending through the shared backing array.
func (e *Engine) enqueueL0(mt *memtable.MemTable) error {
	for len(e.l0) >= maxL0Backlog && e.bgErr == nil && !e.closed {
		e.l0Cond.Wait()
	}
	if e.bgErr != nil {
		return e.bgErr
	}
	if e.closed {
		return ErrClosed
	}
	pts := mt.Points()
	if len(pts) == 0 {
		return nil
	}
	t, err := sstable.Build(e.nextID, pts)
	if err != nil {
		return fmt.Errorf("lsm: build L0 table: %w", err)
	}
	e.nextID++
	l0 := make([]*sstable.Table, len(e.l0), len(e.l0)+1)
	copy(l0, e.l0)
	e.l0 = append(l0, t)
	e.stats.PointsWritten += int64(len(pts)) // the L0 flush write
	e.stats.Flushes++
	mt.Reset()
	// An L0 table lives only in memory until the compactor merges it into
	// the run, so its points stay in the WAL: rewriteWAL covers the L0
	// queue. The compactor drops them from the log only after the merge's
	// manifest commit makes them durable.
	if err := e.rewriteWAL(); err != nil {
		return err
	}
	e.l0Cond.Broadcast()
	return nil
}

// startCompactor launches the background merge goroutine.
func (e *Engine) startCompactor() {
	e.bgDone = make(chan struct{})
	e.started = true
	go e.compactorLoop()
}

// compactorLoop consumes L0 tables in FIFO order, merging each into the
// run as the synchronous path would — but both the expensive k-way merge
// AND the backend I/O for the new SSTable objects run outside the engine
// lock, so ingestion is stalled by neither CPU merging nor disk writes.
//
// Lock discipline per iteration (see DESIGN.md §7.2 invariant 2 and §7.3):
//
//	lock:    snapshot the head table, its overlap window in the run, and
//	         the overlapped points; reserve output table IDs.
//	unlock:  merge the points and write the new SSTable objects to the
//	         backend (the "persist" step — a crash here leaves orphans
//	         that recovery removes; nothing references them yet).
//	lock:    install the new tables in the run (copy-on-write), commit
//	         the manifest (the commit point), retire old objects, and
//	         shrink the WAL — all ordered behind the commit.
//
// The overlap window snapshot stays valid across the unlocked section
// because the compactor is the only run mutator while the L0 queue is
// non-empty: every other mutator (FlushAll, SetPolicy, DropBefore) drains
// the queue under the lock before touching the run.
func (e *Engine) compactorLoop() {
	defer close(e.bgDone)
	for {
		e.mu.Lock()
		for len(e.l0) == 0 && !e.closed {
			e.l0Cond.Wait()
		}
		if len(e.l0) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		// Keep the table at the queue head until installed so Scan/Get
		// continue to see its points.
		t := e.l0[0]
		pts := t.Points()
		lo, hi := pts[0].TG, pts[len(pts)-1].TG
		i, j := e.run.overlapRange(lo, hi)
		old := e.run.collectPoints(i, j)
		var subsequent int
		if e.OnCompaction != nil {
			subsequent = e.run.pointsGreaterThan(lo)
		}
		// Reserve IDs for the merge output now so the tables can be built
		// and persisted without the lock. len(old)+len(pts) bounds the
		// merged size; duplicate collapses may leave ID gaps, which are
		// harmless (IDs only need to be unique and monotone).
		chunk := e.cfg.SSTablePoints
		idBase := e.nextID
		e.nextID += uint64((len(old)+len(pts))/chunk) + 1
		e.mu.Unlock()

		merged := pts
		if len(old) > 0 {
			merged = series.MergeByTG(old, pts)
		}
		newTables, err := buildTablesFrom(merged, chunk, idBase)
		if err == nil {
			// Persist step of invariant 2, off the lock: object writes are
			// the bulk of a compaction's I/O, and until the manifest commit
			// below nothing references them.
			err = e.persistTables(newTables)
		}

		e.mu.Lock()
		if err == nil {
			overlapping := make([]*sstable.Table, j-i)
			copy(overlapping, e.run.tables[i:j])
			e.run.replace(i, j, newTables)
			err = e.commitReplace(overlapping)
			e.stats.PointsWritten += int64(len(merged))
			if len(old) == 0 {
				e.stats.Flushes++
			} else {
				e.stats.Compactions++
				e.stats.PointsRewritten += int64(len(old))
				e.stats.TablesRewritten += int64(len(overlapping))
				if e.OnCompaction != nil {
					e.OnCompaction(CompactionInfo{
						MemPoints:        len(pts),
						SubsequentPoints: subsequent,
						RewrittenPoints:  len(old),
						OutputPoints:     len(merged),
						TablesIn:         len(overlapping),
						TablesOut:        len(newTables),
					})
				}
			}
		}
		if err != nil && e.bgErr == nil {
			e.bgErr = fmt.Errorf("lsm: background compaction: %w", err)
		}
		e.l0 = e.l0[1:]
		if err == nil {
			// The merged table's points are durable in the run (manifest
			// committed inside commitReplace); shrink the WAL to the
			// remaining queue + memtables. On error the old WAL — which
			// still covers the dropped table — is left in place for
			// recovery.
			if werr := e.rewriteWAL(); werr != nil && e.bgErr == nil {
				e.bgErr = fmt.Errorf("lsm: background compaction: %w", werr)
			}
		}
		e.l0Cond.Broadcast()
		e.mu.Unlock()
	}
}

// drainLocked waits until the L0 queue is empty. Caller holds the lock.
func (e *Engine) drainLocked() {
	for len(e.l0) > 0 && e.bgErr == nil {
		e.l0Cond.Broadcast()
		e.l0Cond.Wait()
	}
}

// L0Backlog returns the current number of pending L0 tables.
func (e *Engine) L0Backlog() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.l0)
}
