package lsm

import (
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/series"
)

func TestAsyncPreservesAllPoints(t *testing.T) {
	ps := genWorkload(5000, 50, dist.NewLognormal(4, 1.75), 30)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, AsyncCompaction: true})
	ingest(t, e, ps)
	if err := e.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	got := scanAll(e)
	if len(got) != len(ps) {
		t.Fatalf("async engine holds %d points, want %d", len(got), len(ps))
	}
	if !series.IsSortedByTG(got) {
		t.Fatal("async scan not sorted")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAsyncSeparationPreservesAllPoints(t *testing.T) {
	ps := genWorkload(5000, 10, dist.NewLognormal(5, 2), 31)
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 64, SeqCapacity: 32, AsyncCompaction: true})
	ingest(t, e, ps)
	if err := e.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	got := scanAll(e)
	if len(got) != len(ps) {
		t.Fatalf("async pi_s holds %d points, want %d", len(got), len(ps))
	}
	e.Close()
}

func TestAsyncMatchesSyncContent(t *testing.T) {
	ps := genWorkload(3000, 50, dist.NewLognormal(5, 1.5), 32)
	sync1 := mustOpen(t, Config{Policy: Conventional, MemBudget: 32})
	async1 := mustOpen(t, Config{Policy: Conventional, MemBudget: 32, AsyncCompaction: true})
	ingest(t, sync1, ps)
	ingest(t, async1, ps)
	sync1.FlushAll()
	async1.FlushAll()
	a, b := scanAll(sync1), scanAll(async1)
	if len(a) != len(b) {
		t.Fatalf("sync %d vs async %d points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: sync %v vs async %v", i, a[i], b[i])
		}
	}
	sync1.Close()
	async1.Close()
}

func TestAsyncWAIncludesL0Writes(t *testing.T) {
	// In async (two-level) mode every point is written at least twice:
	// once to L0 and once when merged into the run, as in the paper's
	// Section V-C implementation. So WA >= ~2 after a drain.
	ps := genWorkload(2000, 50, dist.NewLognormal(4, 1.5), 33)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, AsyncCompaction: true})
	ingest(t, e, ps)
	e.FlushAll()
	st := e.Stats()
	if wa := st.WriteAmplification(); wa < 1.9 {
		t.Errorf("async WA = %v, want >= ~2 (L0 + L1 writes)", wa)
	}
	e.Close()
}

func TestAsyncScanSeesPendingL0(t *testing.T) {
	// Without draining, points sitting in the L0 queue must be visible.
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 10, AsyncCompaction: true})
	defer e.Close()
	for i := int64(0); i < 95; i++ {
		e.Put(series.Point{TG: i, TA: i, V: float64(i)})
	}
	got, _, _ := e.Scan(0, 100)
	if len(got) != 95 {
		t.Fatalf("scan during async ingest: %d points, want 95", len(got))
	}
	for i, p := range got {
		if p.TG != int64(i) {
			t.Fatalf("point %d = %v", i, p)
		}
	}
}

func TestAsyncGetDuringIngest(t *testing.T) {
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 16, SeqCapacity: 8, AsyncCompaction: true})
	defer e.Close()
	ps := genWorkload(1000, 50, dist.NewLognormal(4, 1.5), 34)
	for _, p := range ps {
		if err := e.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range ps[:100] {
		if got, ok, _ := e.Get(p.TG); !ok || got.V != p.V {
			t.Fatalf("Get(%d) during async = %v, %v", p.TG, got, ok)
		}
	}
}

func TestAsyncConcurrentReaders(t *testing.T) {
	// Writers and readers race; the engine must stay consistent (run under
	// -race in CI).
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 32, AsyncCompaction: true})
	ps := genWorkload(3000, 10, dist.NewLognormal(4, 1.75), 35)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range ps {
			e.Put(p)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pts, _, _ := e.Scan(0, 1<<40)
				if !series.IsSortedByTG(pts) {
					t.Error("unsorted scan under concurrency")
					return
				}
				e.MaxTG()
				e.Stats()
			}
		}()
	}
	wg.Wait()
	e.FlushAll()
	if got := scanAll(e); len(got) != len(ps) {
		t.Fatalf("after concurrent ingest: %d points, want %d", len(got), len(ps))
	}
	e.Close()
}

func TestAsyncCloseDrains(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 8, AsyncCompaction: true})
	for i := int64(0); i < 100; i++ {
		e.Put(series.Point{TG: i, TA: i})
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if e.L0Backlog() != 0 {
		t.Errorf("L0 backlog %d after Close", e.L0Backlog())
	}
}
