package lsm

import (
	"repro/internal/series"
)

// ScanStats reports the read-path cost of one Scan, the inputs to the
// read-amplification and latency analyses (Fig. 12–14). The read model is
// the paper's HDD one: touching an SSTable costs a seek, and a touched
// table is read whole ("as long as an SSTable contains [queried] data
// points, all of the points inside would be read").
type ScanStats struct {
	// TablesTouched is the number of SSTables overlapping the query range —
	// the number of file seeks.
	TablesTouched int
	// TablePoints is the total number of points in the touched SSTables,
	// counting whole tables (points read from disk).
	TablePoints int
	// MemPoints is the number of points served from memtables.
	MemPoints int
	// ResultPoints is the number of points returned.
	ResultPoints int
}

// ReadAmplification returns points read divided by points returned, the
// paper's read-amplification metric. Returns 0 when nothing was returned.
func (s ScanStats) ReadAmplification() float64 {
	if s.ResultPoints == 0 {
		return 0
	}
	return float64(s.TablePoints+s.MemPoints) / float64(s.ResultPoints)
}

// Scan returns all points with generation time in [lo, hi], merged across
// memtables and the run, sorted by generation time, with read-cost
// accounting.
func (e *Engine) Scan(lo, hi int64) ([]series.Point, ScanStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st ScanStats

	var disk []series.Point
	i, j := e.run.overlapRange(lo, hi)
	for _, t := range e.run.tables[i:j] {
		st.TablesTouched++
		st.TablePoints += t.Len()
		disk = append(disk, t.Scan(lo, hi)...)
	}
	// Async mode: pending L0 tables may overlap the range (and each other);
	// merge them in table order so later tables shadow earlier ones.
	for _, t := range e.l0 {
		if !t.Overlaps(lo, hi) {
			continue
		}
		st.TablesTouched++
		st.TablePoints += t.Len()
		disk = series.MergeByTG(disk, t.Scan(lo, hi))
	}

	var mem []series.Point
	for _, mt := range []interface {
		Scan(lo, hi int64) []series.Point
	}{e.c0, e.cseq, e.cnonseq} {
		pts := mt.Scan(lo, hi)
		st.MemPoints += len(pts)
		if len(pts) > 0 {
			mem = series.MergeByTG(mem, pts)
		}
	}

	out := series.MergeByTG(disk, mem)
	st.ResultPoints = len(out)
	return out, st
}

// Get returns the point with generation time tg, looking in memtables
// first, then in the run (at most one table can contain tg).
func (e *Engine) Get(tg int64) (series.Point, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.c0.Get(tg); ok {
		return p, true
	}
	if p, ok := e.cseq.Get(tg); ok {
		return p, true
	}
	if p, ok := e.cnonseq.Get(tg); ok {
		return p, true
	}
	// Newest L0 tables shadow older ones and the run.
	for k := len(e.l0) - 1; k >= 0; k-- {
		if t := e.l0[k]; t.Overlaps(tg, tg) {
			if p, ok := t.Get(tg); ok {
				return p, true
			}
		}
	}
	i, j := e.run.overlapRange(tg, tg)
	for _, t := range e.run.tables[i:j] {
		if p, ok := t.Get(tg); ok {
			return p, true
		}
	}
	return series.Point{}, false
}

// MaxTG returns the largest generation time visible anywhere in the engine
// (memtables, L0, run) and whether any point exists. Query workload
// generators use it to anchor "recent data" windows.
func (e *Engine) MaxTG() (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	best, ok := e.diskLastTG()
	if !e.c0.Empty() && (!ok || e.c0.MaxTG() > best) {
		best, ok = e.c0.MaxTG(), true
	}
	if !e.cseq.Empty() && (!ok || e.cseq.MaxTG() > best) {
		best, ok = e.cseq.MaxTG(), true
	}
	if !e.cnonseq.Empty() && (!ok || e.cnonseq.MaxTG() > best) {
		best, ok = e.cnonseq.MaxTG(), true
	}
	return best, ok
}
