package lsm

import (
	"repro/internal/series"
)

// ScanStats reports the read-path cost of one Scan, the inputs to the
// read-amplification and latency analyses (Fig. 12–14). The read model is
// the paper's HDD one: touching an SSTable costs a seek, and a touched
// table is read whole ("as long as an SSTable contains [queried] data
// points, all of the points inside would be read"). BlocksRead and
// BlocksCached additionally report what the block-addressed read path
// actually fetched, which is how the block cache's effect is measured.
type ScanStats struct {
	// TablesTouched is the number of SSTables overlapping the query range —
	// the number of file seeks.
	TablesTouched int
	// TablePoints is the total number of points in the touched SSTables,
	// counting whole tables (points read from disk in the paper's model).
	TablePoints int
	// MemPoints is the number of points served from memtables.
	MemPoints int
	// ResultPoints is the number of points returned.
	ResultPoints int
	// BlocksRead is the number of SSTable blocks fetched from storage and
	// decoded for this scan.
	BlocksRead int64
	// BlocksCached is the number of block requests served by the shared
	// block cache for this scan.
	BlocksCached int64
	// LevelTablesTouched breaks TablesTouched down by on-disk level
	// (index 0 = L1). L0 and memtable sources are not included — they are
	// already reported separately above. Nil when the engine has no
	// levels snapshotted.
	LevelTablesTouched []int
	// RollupBuckets is the number of precomputed rollup buckets folded
	// into an aggregate's answer instead of raw points (0 for plain
	// scans). When positive, the raw-read fields above cover only the
	// residual raw work: range-edge partial windows and sources without
	// an eligible rollup.
	RollupBuckets int
}

// ReadAmplification returns points read divided by points returned, the
// paper's read-amplification metric. Returns 0 when nothing was returned.
func (s ScanStats) ReadAmplification() float64 {
	if s.ResultPoints == 0 {
		return 0
	}
	return float64(s.TablePoints+s.MemPoints) / float64(s.ResultPoints)
}

// Scan returns all points with generation time in [lo, hi], merged across
// memtables and the run, sorted by generation time, with read-cost
// accounting. The engine lock is held only for the O(1) snapshot: the
// k-way merge itself runs lock-free, so a scan of an arbitrarily large
// range never stalls Put/PutBatch or the background compactor. A failed
// block read (backend fault, corrupt block) is returned as an error.
func (e *Engine) Scan(lo, hi int64) ([]series.Point, ScanStats, error) {
	return e.Snapshot().Scan(lo, hi)
}

// Get returns the point with generation time tg, looking in memtables
// first, then L0 (newest first), then the run (at most one table can
// contain tg). Like Scan, the lookup runs on a snapshot outside the lock.
func (e *Engine) Get(tg int64) (series.Point, bool, error) {
	return e.Snapshot().Get(tg)
}

// MaxTG returns the largest generation time visible anywhere in the engine
// (memtables, L0, run) and whether any point exists. Query workload
// generators use it to anchor "recent data" windows.
func (e *Engine) MaxTG() (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	best, ok := e.diskLastTG()
	if !e.c0.Empty() && (!ok || e.c0.MaxTG() > best) {
		best, ok = e.c0.MaxTG(), true
	}
	if !e.cseq.Empty() && (!ok || e.cseq.MaxTG() > best) {
		best, ok = e.cseq.MaxTG(), true
	}
	if !e.cnonseq.Empty() && (!ok || e.cnonseq.MaxTG() > best) {
		best, ok = e.cnonseq.MaxTG(), true
	}
	return best, ok
}
