package lsm

import (
	"sort"

	"repro/internal/series"
	"repro/internal/sstable"
)

// run is the L1 level of the engine: SSTables sorted by MinTG with
// non-overlapping generation-time ranges. The paper treats the whole level
// as a single sorted run R.
type run struct {
	tables []*sstable.Table
}

// len returns the number of tables in the run.
func (r *run) lenTables() int { return len(r.tables) }

// totalPoints returns the number of points across all tables.
func (r *run) totalPoints() int {
	var n int
	for _, t := range r.tables {
		n += t.Len()
	}
	return n
}

// lastTG returns LAST(R).t_g, the latest generation time in the run, and
// whether the run is non-empty.
func (r *run) lastTG() (int64, bool) {
	if len(r.tables) == 0 {
		return 0, false
	}
	return r.tables[len(r.tables)-1].MaxTG(), true
}

// overlapRange returns the half-open index interval [i, j) of tables whose
// ranges intersect [lo, hi].
func (r *run) overlapRange(lo, hi int64) (int, int) {
	return overlapTables(r.tables, lo, hi)
}

// Immutability rule: r.tables is published to lock-free readers via
// Engine.Snapshot, so every mutation below installs a freshly allocated
// slice instead of writing through the existing backing array. A snapshot
// holding the old header keeps seeing the old, fully consistent run.

// replace substitutes tables[i:j] with newTables, which must be sorted and
// must preserve the run's non-overlap invariant.
func (r *run) replace(i, j int, newTables []*sstable.Table) {
	out := make([]*sstable.Table, 0, len(r.tables)-(j-i)+len(newTables))
	out = append(out, r.tables[:i]...)
	out = append(out, newTables...)
	out = append(out, r.tables[j:]...)
	r.tables = out
}

// append adds a table whose range must lie entirely after the current last
// table; it returns false if the invariant would break.
func (r *run) appendTable(t *sstable.Table) bool {
	if last, ok := r.lastTG(); ok && t.MinTG() <= last {
		return false
	}
	out := make([]*sstable.Table, len(r.tables), len(r.tables)+1)
	copy(out, r.tables)
	r.tables = append(out, t)
	return true
}

// checkInvariant verifies ordering and non-overlap; used by tests and
// recovery.
func (r *run) checkInvariant() bool {
	for i := 1; i < len(r.tables); i++ {
		if r.tables[i].MinTG() <= r.tables[i-1].MaxTG() {
			return false
		}
	}
	return true
}

// pointsGreaterThan counts points in the run with generation time strictly
// greater than tg. These are exactly the paper's subsequent data points
// when tg is the minimum generation time buffered in memory (Definition 4).
func (r *run) pointsGreaterThan(tg int64) int {
	var count int
	for _, t := range r.tables {
		switch {
		case t.MinTG() > tg:
			count += t.Len()
		case t.MaxTG() > tg:
			pts := t.Points()
			idx := sort.Search(len(pts), func(i int) bool { return pts[i].TG > tg })
			count += len(pts) - idx
		}
	}
	return count
}

// collectPoints concatenates the points of tables[i:j] (already sorted and
// disjoint, so the concatenation is sorted).
func (r *run) collectPoints(i, j int) []series.Point {
	var n int
	for _, t := range r.tables[i:j] {
		n += t.Len()
	}
	out := make([]series.Point, 0, n)
	for _, t := range r.tables[i:j] {
		out = append(out, t.Points()...)
	}
	return out
}
