package lsm

import (
	"repro/internal/sstable"
)

// run is one on-disk level of the engine: SSTables sorted by MinTG with
// non-overlapping generation-time ranges — the paper's single sorted run R
// when the engine runs one level, one of L1..Lk when it runs several
// (ranges may overlap *across* levels; shallower levels shadow deeper ones
// on reads). Tables are held behind sstable.TableHandle: with a storage
// backend they are lazy block-addressed readers whose points live on disk
// (and transiently in the shared block cache), without one they are
// resident tables.
type run struct {
	tables []sstable.TableHandle
}

// len returns the number of tables in the run.
func (r *run) lenTables() int { return len(r.tables) }

// totalPoints returns the number of points across all tables.
func (r *run) totalPoints() int {
	var n int
	for _, t := range r.tables {
		n += t.Len()
	}
	return n
}

// lastTG returns LAST(R).t_g, the latest generation time in the run, and
// whether the run is non-empty.
func (r *run) lastTG() (int64, bool) {
	if len(r.tables) == 0 {
		return 0, false
	}
	return r.tables[len(r.tables)-1].MaxTG(), true
}

// overlapRange returns the half-open index interval [i, j) of tables whose
// ranges intersect [lo, hi].
func (r *run) overlapRange(lo, hi int64) (int, int) {
	return overlapTables(r.tables, lo, hi)
}

// Immutability rule: r.tables is published to lock-free readers via
// Engine.Snapshot, so every mutation below installs a freshly allocated
// slice instead of writing through the existing backing array. A snapshot
// holding the old header keeps seeing the old, fully consistent run.

// replace substitutes tables[i:j] with newTables, which must be sorted and
// must preserve the run's non-overlap invariant.
func (r *run) replace(i, j int, newTables []sstable.TableHandle) {
	out := make([]sstable.TableHandle, 0, len(r.tables)-(j-i)+len(newTables))
	out = append(out, r.tables[:i]...)
	out = append(out, newTables...)
	out = append(out, r.tables[j:]...)
	r.tables = out
}

// append adds a table whose range must lie entirely after the current last
// table; it returns false if the invariant would break.
func (r *run) appendTable(t sstable.TableHandle) bool {
	if last, ok := r.lastTG(); ok && t.MinTG() <= last {
		return false
	}
	out := make([]sstable.TableHandle, len(r.tables), len(r.tables)+1)
	copy(out, r.tables)
	r.tables = append(out, t)
	return true
}

// checkInvariant verifies ordering and non-overlap; used by tests and
// recovery.
func (r *run) checkInvariant() bool {
	for i := 1; i < len(r.tables); i++ {
		if r.tables[i].MinTG() <= r.tables[i-1].MaxTG() {
			return false
		}
	}
	return true
}

// pointsGreaterThan counts points in tables with generation time strictly
// greater than tg. These are exactly the paper's subsequent data points
// when tg is the minimum generation time buffered in memory (Definition 4).
// The count is informational (model-validation experiments); a failed block
// read under-counts rather than failing the compaction it describes.
func pointsGreaterThan(tables []sstable.TableHandle, tg int64) int {
	var count int
	for _, t := range tables {
		switch {
		case t.MinTG() > tg:
			count += t.Len()
		case t.MaxTG() > tg:
			pts, err := t.Scan(tg+1, t.MaxTG())
			if err == nil {
				count += len(pts)
			}
		}
	}
	return count
}

// retireHandles marks lazily read tables as retired, evicting their blocks
// from the shared cache so dead tables cannot occupy cache capacity.
// Resident tables need no retirement. Called after the manifest commit
// that removed the tables from the run.
func retireHandles(hs []sstable.TableHandle) {
	for _, h := range hs {
		if r, ok := h.(*sstable.Reader); ok {
			r.Retire()
		}
	}
}
