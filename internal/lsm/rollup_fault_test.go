package lsm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/series"
	"repro/internal/sstable"
	"repro/internal/storage"
)

// verifyRollupsMatchTables asserts the core retention invariant: every
// live level table's rollup is exactly the rollup of the table's own
// points — no bucket ever summarizes data the table no longer holds, so
// a stale rollup can never resurrect retention-dropped points into an
// aggregate.
func verifyRollupsMatchTables(t *testing.T, e *Engine, window int64, ctx string) {
	t.Helper()
	s := e.Snapshot()
	for d, tables := range s.levels {
		for _, tbl := range tables {
			rp, ok := tbl.(sstable.RollupProvider)
			if !ok || rp.RollupWindow() != window {
				t.Fatalf("%s: L%d table %d lost its rollup (window %d)", ctx, d+1, tbl.ID(), window)
			}
			ru, err := rp.Rollup()
			if err != nil {
				t.Fatalf("%s: L%d table %d rollup load: %v", ctx, d+1, tbl.ID(), err)
			}
			pts, err := tbl.Scan(math.MinInt64+1, math.MaxInt64)
			if err != nil {
				t.Fatalf("%s: L%d table %d scan: %v", ctx, d+1, tbl.ID(), err)
			}
			want := sstable.BuildRollup(pts, window)
			if ru == nil || want == nil {
				t.Fatalf("%s: L%d table %d: nil rollup (got %v, want %v)", ctx, d+1, tbl.ID(), ru, want)
			}
			if ru.Window != want.Window || len(ru.Buckets) != len(want.Buckets) {
				t.Fatalf("%s: L%d table %d rollup shape: got %d buckets window %d, want %d window %d",
					ctx, d+1, tbl.ID(), len(ru.Buckets), ru.Window, len(want.Buckets), want.Window)
			}
			for i := range ru.Buckets {
				if ru.Buckets[i] != want.Buckets[i] {
					t.Fatalf("%s: L%d table %d bucket %d stale: got %+v, want %+v",
						ctx, d+1, tbl.ID(), i, ru.Buckets[i], want.Buckets[i])
				}
			}
		}
	}
}

// TestRollupRetentionDropFaultSweep crashes a retention pass
// (DropBefore) at every backend write in turn — straddle-table rewrite,
// rollup sidecar write, manifest commit, WAL rewrite, object removals —
// on an engine that maintains rollup sidecars, and asserts after every
// failure point that live rollups exactly match their tables (stale
// buckets could otherwise resurrect dropped points into aggregates),
// that a restart recovers a consistent tree whose rollups also match,
// and that recovery leaves no orphan sidecar objects behind.
func TestRollupRetentionDropFaultSweep(t *testing.T) {
	const window = int64(8)
	const cutoff = int64(30)
	for budget := int64(0); ; budget++ {
		if budget > 1024 {
			t.Fatal("retention drop never succeeded within the budget sweep")
		}
		fb := storage.NewFaultBackend(storage.NewMemBackend())
		cfg := Config{
			Policy: Conventional, MemBudget: 16, SSTablePoints: 8,
			Backend: fb, WAL: true, RollupWindow: window,
		}
		e, err := Open(cfg)
		if err != nil {
			t.Fatalf("budget %d: open: %v", budget, err)
		}
		for i := int64(0); i < 64; i++ {
			if err := e.Put(series.Point{TG: i, TA: i, V: float64(i) * 0.5}); err != nil {
				t.Fatalf("budget %d: put %d: %v", budget, i, err)
			}
		}
		if err := e.FlushAll(); err != nil {
			t.Fatalf("budget %d: flush: %v", budget, err)
		}

		fb.SetBudget(budget)
		removed, derr := e.DropBefore(cutoff)
		fb.SetBudget(-1)
		if derr != nil && !errors.Is(derr, storage.ErrInjected) {
			t.Fatalf("budget %d: error lost its cause: %v", budget, derr)
		}

		// Whether the drop committed or rolled back, no live table may
		// carry a rollup bucket its points don't back.
		verifyRollupsMatchTables(t, e, window, "after drop")

		if removed > 0 {
			// A nonzero count is the durability contract: the commit held
			// (any error was post-commit cleanup), so nothing below the
			// cutoff may survive anywhere.
			pts, _, serr := e.Scan(math.MinInt64+1, math.MaxInt64)
			if serr != nil {
				t.Fatalf("budget %d: scan: %v", budget, serr)
			}
			for _, p := range pts {
				if p.TG < cutoff {
					t.Fatalf("budget %d: point %d survived DropBefore(%d)", budget, p.TG, cutoff)
				}
			}
		}

		if err := e.Close(); err != nil {
			t.Fatalf("budget %d: close: %v", budget, err)
		}

		// Restart: recovery must serve a tree whose rollups are exact and
		// must have garbage-collected any sidecar the crash orphaned.
		re, rerr := Open(cfg)
		if rerr != nil {
			t.Fatalf("budget %d: reopen: %v", budget, rerr)
		}
		verifyRollupsMatchTables(t, re, window, "after restart")
		live := make(map[string]bool)
		re.mu.Lock()
		for d := range re.levels {
			for _, h := range re.levels[d].tables {
				live[rollupObjectName(h.ID())] = true
			}
		}
		re.mu.Unlock()
		names, lerr := fb.List()
		if lerr != nil {
			t.Fatalf("budget %d: list: %v", budget, lerr)
		}
		for _, n := range names {
			if strings.HasSuffix(n, ".rlp") && !live[n] {
				t.Fatalf("budget %d: orphan rollup sidecar %s survived recovery", budget, n)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatalf("budget %d: close reopened: %v", budget, err)
		}

		if derr == nil {
			// The whole retention pass fit in the budget: every earlier
			// iteration crashed at a distinct write, so the sweep is done.
			return
		}
	}
}
