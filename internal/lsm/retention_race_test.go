package lsm

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/series"
)

// TestDropBeforeConcurrentSnapshotIsolation is the copy-on-write regression
// test for retention: purgeBelow rebuilds memtables and DropBefore edits
// levels while snapshots taken earlier are still being read. A snapshot
// must keep returning exactly the points it saw at acquisition — including
// points the concurrent DropBefore removed — for its whole lifetime, and
// the race detector must see no write to any array a snapshot holds.
// (Run with -race; a purge that mutated a frozen memtable image or a level
// edit that wrote through a shared table slice fails here.)
func TestDropBeforeConcurrentSnapshotIsolation(t *testing.T) {
	e := mustOpen(t, Config{
		Policy: Conventional, MemBudget: 16, SSTablePoints: 8,
		Levels: 3, GrowthFactor: 2,
	})
	defer e.Close()

	// Preload a multi-level tree plus a partially filled memtable.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		if err := e.Put(series.Point{TG: rng.Int63n(4000), TA: int64(i), V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	var bg, readers sync.WaitGroup
	stop := make(chan struct{})

	// Writer: keeps flushing fresh points through the memtable so purges
	// and level edits have live structures to contend with.
	bg.Add(1)
	go func() {
		defer bg.Done()
		wrng := rand.New(rand.NewSource(6))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Put(series.Point{TG: wrng.Int63n(4000), TA: int64(10000 + i), V: 1}); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()

	// Retention: advancing cutoffs, exercising whole-table unlinks,
	// straddler rewrites, and memtable purges.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for cutoff := int64(100); cutoff <= 3000; cutoff += 150 {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.DropBefore(cutoff); err != nil {
				t.Errorf("DropBefore(%d): %v", cutoff, err)
				return
			}
		}
	}()

	// Readers: each takes a snapshot and re-reads it repeatedly; the result
	// must be frozen.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for iter := 0; iter < 40; iter++ {
				snap := e.Snapshot()
				first, _, err := snap.Scan(math.MinInt64+1, math.MaxInt64)
				if err != nil {
					t.Errorf("reader %d: scan: %v", r, err)
					return
				}
				for rep := 0; rep < 3; rep++ {
					again, _, err := snap.Scan(math.MinInt64+1, math.MaxInt64)
					if err != nil {
						t.Errorf("reader %d: rescan: %v", r, err)
						return
					}
					if len(again) != len(first) {
						t.Errorf("reader %d iter %d: snapshot drifted from %d to %d points under concurrent retention",
							r, iter, len(first), len(again))
						return
					}
					for i := range again {
						if again[i] != first[i] {
							t.Errorf("reader %d iter %d: snapshot point %d drifted from %+v to %+v",
								r, iter, i, first[i], again[i])
							return
						}
					}
				}
			}
		}(r)
	}

	readers.Wait()
	close(stop)
	bg.Wait()

	e.mu.Lock()
	ok := e.checkLevelInvariantsLocked()
	e.mu.Unlock()
	if !ok {
		t.Fatal("level invariant violated after concurrent retention")
	}
}
