package lsm

import (
	"fmt"

	"repro/internal/series"
	"repro/internal/sstable"
)

// Multi-level leveling (DESIGN.md §7.7). The engine's on-disk state is k
// levels L1..Lk, each a partitioned sorted run of non-overlapping SSTables
// (the run invariant holds per level; ranges MAY overlap across levels, and
// a shallower level shadows every deeper one on reads). Memtable flushes
// and L0 merges land in L1; when a level outgrows its size target, a
// *partial* compaction pushes a slice of it into the next level, merging
// only the overlapping slice of the target level instead of rewriting a
// whole run. Level size targets grow geometrically:
//
//	target(L1) = SSTablePoints × T,  target(Li) = target(L1) × T^(i−1)
//
// with T = Config.GrowthFactor; the last level Lk is unbounded. k = 1
// degenerates to the single-run engine of the paper's model sections.
//
// Which slice moves when is the compaction policy — a second design axis,
// orthogonal to the paper's memtable write-policy axis (π_c vs π_s). The
// CompactionPolicy interface makes that axis pluggable; leveling, tiering,
// and lazy-leveling below are the classic points of the space (Sarkar et
// al.'s compaction design space), all expressed over the same partitioned
// level structure.

// DefaultGrowthFactor is the per-level size ratio T used when
// Config.GrowthFactor is zero. 10 is the classic leveled-LSM ratio.
const DefaultGrowthFactor = 10

// LevelView is a policy's read-only view of one level.
type LevelView struct {
	// Level is the 1-based level number (1 = the level flushes land in).
	Level int
	// Tables are the level's handles in run order. Policies may read
	// MinTG/MaxTG/Len but must not retain the slice.
	Tables []sstable.TableHandle
	// Points is the level's total point count.
	Points int
	// Target is the leveling size target in points; 0 means unbounded
	// (the last level).
	Target int
}

// CompactionTask names one unit of level-compaction work: merge
// tables[I:J) of level Src down into level Src+1.
type CompactionTask struct {
	// Src is the 1-based source level; 1 <= Src < k.
	Src int
	// I, J bound the half-open index range of source tables to push down.
	I, J int
}

// CompactionPolicy decides which slice of which level to push down next.
// Implementations must be stateless or internally synchronized: Pick is
// called with the engine lock held and must only inspect the views.
type CompactionPolicy interface {
	// Name identifies the policy (flag value, stats, logs).
	Name() string
	// Pick returns the next level compaction to run, if any. levels holds
	// k views, L1 first; growth is the configured size ratio T. A returned
	// task must satisfy 1 <= Src < k and 0 <= I < J <= len(levels[Src-1].Tables).
	Pick(levels []LevelView, growth int) (CompactionTask, bool)
}

// leastOverlapSource returns the index of the single table in src whose
// push-down rewrites the fewest target-level points per source point — the
// least-write-amp slice. Ties prefer the oldest (leftmost) table so the
// level drains in order.
func leastOverlapSource(src, dst []sstable.TableHandle) int {
	best, bestCost := 0, -1.0
	for i, t := range src {
		a, b := overlapTables(dst, t.MinTG(), t.MaxTG())
		var overlapPts int
		for _, o := range dst[a:b] {
			overlapPts += o.Len()
		}
		srcPts := t.Len()
		if srcPts == 0 {
			return i // free to drop down
		}
		cost := float64(overlapPts) / float64(srcPts)
		if bestCost < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// levelingPolicy compacts eagerly: as soon as a level exceeds its target it
// pushes the least-overlap table down. Deepest overflowing level first, so
// backlog drains toward the unbounded last level and upper levels never
// wait behind a full lower one.
type levelingPolicy struct{}

// NewLevelingPolicy returns the classic leveled-compaction policy (the
// default).
func NewLevelingPolicy() CompactionPolicy { return levelingPolicy{} }

func (levelingPolicy) Name() string { return "leveling" }

func (levelingPolicy) Pick(levels []LevelView, growth int) (CompactionTask, bool) {
	for d := len(levels) - 2; d >= 0; d-- {
		v := levels[d]
		if v.Target > 0 && v.Points > v.Target && len(v.Tables) > 0 {
			i := leastOverlapSource(v.Tables, levels[d+1].Tables)
			return CompactionTask{Src: v.Level, I: i, J: i + 1}, true
		}
	}
	return CompactionTask{}, false
}

// tieringPolicy delays merging: a level is left to accumulate up to T times
// its leveling target, then the whole level is pushed down at once. Within
// this engine's partitioned-level structure (each level is always one
// sorted run) this captures tiering's merge-rarely operating point: fewer,
// larger merges, lower write amplification, more tables for reads to touch.
type tieringPolicy struct{}

// NewTieringPolicy returns the merge-rarely policy.
func NewTieringPolicy() CompactionPolicy { return tieringPolicy{} }

func (tieringPolicy) Name() string { return "tiering" }

func (tieringPolicy) Pick(levels []LevelView, growth int) (CompactionTask, bool) {
	for d := len(levels) - 2; d >= 0; d-- {
		v := levels[d]
		if v.Target > 0 && v.Points > v.Target*growth && len(v.Tables) > 0 {
			return CompactionTask{Src: v.Level, I: 0, J: len(v.Tables)}, true
		}
	}
	return CompactionTask{}, false
}

// lazyLevelingPolicy is Dostoevsky's hybrid: tiering at the upper levels
// (merge rarely while data is hot and likely to be superseded), leveling at
// the level feeding Lk (keep the biggest level cheap to read and bounded to
// merge into).
type lazyLevelingPolicy struct{}

// NewLazyLevelingPolicy returns the tiering-above/leveling-below hybrid.
func NewLazyLevelingPolicy() CompactionPolicy { return lazyLevelingPolicy{} }

func (lazyLevelingPolicy) Name() string { return "lazy-leveling" }

func (lazyLevelingPolicy) Pick(levels []LevelView, growth int) (CompactionTask, bool) {
	for d := len(levels) - 2; d >= 0; d-- {
		v := levels[d]
		if v.Target <= 0 || len(v.Tables) == 0 {
			continue
		}
		if d == len(levels)-2 {
			// Feeding the last level: leveling (eager, least-overlap slice).
			if v.Points > v.Target {
				i := leastOverlapSource(v.Tables, levels[d+1].Tables)
				return CompactionTask{Src: v.Level, I: i, J: i + 1}, true
			}
			continue
		}
		if v.Points > v.Target*growth {
			return CompactionTask{Src: v.Level, I: 0, J: len(v.Tables)}, true
		}
	}
	return CompactionTask{}, false
}

// CompactionPolicyByName resolves a policy flag value.
func CompactionPolicyByName(name string) (CompactionPolicy, error) {
	switch name {
	case "", "leveling":
		return NewLevelingPolicy(), nil
	case "tiering":
		return NewTieringPolicy(), nil
	case "lazy", "lazy-leveling":
		return NewLazyLevelingPolicy(), nil
	default:
		return nil, fmt.Errorf("lsm: unknown compaction policy %q (want leveling, tiering, or lazy-leveling)", name)
	}
}

// levelTargetPoints returns the size target of 0-based level d, or 0 for
// the unbounded last level.
func (e *Engine) levelTargetPoints(d int) int {
	if d >= len(e.levels)-1 {
		return 0
	}
	target := e.cfg.SSTablePoints * e.cfg.GrowthFactor
	for i := 0; i < d; i++ {
		target *= e.cfg.GrowthFactor
	}
	return target
}

// levelViewsLocked builds the policy's view of the levels. Caller holds
// the lock.
func (e *Engine) levelViewsLocked() []LevelView {
	views := make([]LevelView, len(e.levels))
	for d := range e.levels {
		views[d] = LevelView{
			Level:  d + 1,
			Tables: e.levels[d].tables,
			Points: e.levels[d].totalPoints(),
			Target: e.levelTargetPoints(d),
		}
	}
	return views
}

// pickLevelCompactionLocked asks the policy for the next push-down and
// validates it. Caller holds the lock.
func (e *Engine) pickLevelCompactionLocked() (CompactionTask, bool, error) {
	if len(e.levels) < 2 {
		return CompactionTask{}, false, nil
	}
	task, ok := e.cfg.Compaction.Pick(e.levelViewsLocked(), e.cfg.GrowthFactor)
	if !ok {
		return CompactionTask{}, false, nil
	}
	if task.Src < 1 || task.Src >= len(e.levels) ||
		task.I < 0 || task.J <= task.I || task.J > len(e.levels[task.Src-1].tables) {
		return CompactionTask{}, false, fmt.Errorf("lsm: policy %s returned invalid task %+v", e.cfg.Compaction.Name(), task)
	}
	return task, true, nil
}

// levelBacklogLocked counts pending level-compaction units. Whether any
// work exists at all is the policy's call (Pick is authoritative, so a
// policy that declines cannot leave the compactor spinning on a nonzero
// backlog it will never retire); the unit count itself is a heuristic —
// target-sized chunks of overflow per bounded level — that lets the
// scheduler rank a deeply overflowing engine above a marginal one.
// Together with the L0 queue depth this is the backlog the scheduler
// prioritizes by (one overflow unit weighs the same as one L0 table — both
// are one CompactOnce unit). Caller holds the lock.
func (e *Engine) levelBacklogLocked() int {
	if len(e.levels) < 2 {
		return 0
	}
	if _, ok, err := e.pickLevelCompactionLocked(); err != nil || !ok {
		return 0
	}
	units := 0
	for d := 0; d < len(e.levels)-1; d++ {
		target := e.levelTargetPoints(d)
		if target <= 0 {
			continue
		}
		if pts := e.levels[d].totalPoints(); pts > target {
			units += (pts - 1) / target
		}
	}
	if units < 1 {
		units = 1
	}
	return units
}

// compactionBacklogLocked is the engine's total pending background work:
// queued L0 tables plus level-overflow units. CompactOnce retires exactly
// one unit per call. Caller holds the lock.
func (e *Engine) compactionBacklogLocked() int {
	return len(e.l0) + e.levelBacklogLocked()
}

// maintainLevelsLocked runs policy-picked level compactions until the
// policy is satisfied — the synchronous engine's counterpart of the
// background CompactOnce units. Caller holds the lock; every merge,
// persist, and commit runs under it, which matches the synchronous write
// path's lock discipline (the caller is Put/PutBatch and owns the lock for
// the whole insert anyway, see §7.3).
func (e *Engine) maintainLevelsLocked() error {
	for {
		task, ok, err := e.pickLevelCompactionLocked()
		if err != nil || !ok {
			return err
		}
		if _, err := e.compactLevelTaskLocked(task); err != nil {
			return err
		}
	}
}

// compactLevelTaskLocked executes one level push-down entirely under the
// lock and returns the number of points written. The source tables
// tables[I:J) of level Src are materialized, merged with the overlapping
// slice of level Src+1 (source shadows target: the source level is the
// newer data), and both levels are edited under one manifest commit —
// partial compaction never touches tables outside the overlap.
func (e *Engine) compactLevelTaskLocked(task CompactionTask) (int, error) {
	src, dst := task.Src-1, task.Src
	srcTables := make([]sstable.TableHandle, task.J-task.I)
	copy(srcTables, e.levels[src].tables[task.I:task.J])
	a, b, dstOverlap := e.levelOverlapLocked(dst, srcTables)

	chunk := e.cfg.SSTablePoints
	var srcCount int
	for _, t := range srcTables {
		srcCount += t.Len()
	}
	var dstCount int
	for _, t := range dstOverlap {
		dstCount += t.Len()
	}
	idBase := e.nextID
	e.nextID += uint64((srcCount+dstCount)/chunk) + 1

	newTables, merged, err := e.mergeLevelSlices(srcTables, dstOverlap, chunk, idBase)
	if err != nil {
		return 0, err
	}
	committed, err := e.commitEdits([]levelEdit{
		{level: src, i: task.I, j: task.J},
		{level: dst, i: a, j: b, newTables: newTables},
	})
	if !committed {
		return 0, err
	}
	e.noteLevelCompactionLocked(dst, merged, srcCount, dstCount, len(srcTables)+len(dstOverlap))
	return merged, err
}

// levelOverlapLocked returns the overlap window [a, b) of 0-based level d
// against the hull of src, plus a copied slice of the overlapped handles.
// Caller holds the lock.
func (e *Engine) levelOverlapLocked(d int, src []sstable.TableHandle) (int, int, []sstable.TableHandle) {
	lo := src[0].MinTG()
	hi := src[len(src)-1].MaxTG()
	a, b := e.levels[d].overlapRange(lo, hi)
	overlap := make([]sstable.TableHandle, b-a)
	copy(overlap, e.levels[d].tables[a:b])
	return a, b, overlap
}

// mergeLevelSlices materializes the source slice (bounded: a leveling task
// is one SSTable, a tiering task one level) and streams it against the
// target level's overlapping tables, persisting each output table as it is
// cut. Source points shadow target points on equal t_g — the source level
// is strictly newer. It touches no mutable engine state besides the
// backend, so the async path calls it without the lock after reserving IDs.
func (e *Engine) mergeLevelSlices(srcTables, dstOverlap []sstable.TableHandle, chunk int, idBase uint64) ([]sstable.TableHandle, int, error) {
	var srcCount int
	for _, t := range srcTables {
		srcCount += t.Len()
	}
	srcPts := make([]series.Point, 0, srcCount)
	for _, t := range srcTables {
		pts, err := t.Scan(t.MinTG(), t.MaxTG())
		if err != nil {
			return nil, 0, fmt.Errorf("lsm: read level-compaction source: %w", err)
		}
		srcPts = append(srcPts, pts...)
	}
	nextID := idBase
	return streamMerge(dstOverlap, srcPts, chunk,
		func() uint64 { id := nextID; nextID++; return id },
		e.persistTable)
}

// noteLevelCompactionLocked updates global and per-level counters for a
// push-down into 0-based level dst. Caller holds the lock.
func (e *Engine) noteLevelCompactionLocked(dst, merged, srcCount, dstCount, tablesConsumed int) {
	e.stats.PointsWritten += int64(merged)
	e.stats.Compactions++
	// Push-downs re-write points that already lived in SSTables on both
	// sides of the merge.
	e.stats.PointsRewritten += int64(srcCount + dstCount)
	e.stats.TablesRewritten += int64(tablesConsumed)
	lc := &e.levelCounters[dst]
	lc.Compactions++
	lc.PointsIn += int64(merged)
	lc.PointsRewritten += int64(dstCount)
}

// LevelStats describes one on-disk level for observability surfaces
// (/stats, /series/{s}/stats, lsmd_level_* metrics).
type LevelStats struct {
	// Level is 1-based; 1 is the level memtable flushes land in.
	Level int
	// Tables and Points describe the level's current contents.
	Tables int
	Points int
	// TargetPoints is the leveling size target; 0 means unbounded (the
	// last level).
	TargetPoints int
	// Compactions counts merges that wrote into this level (memtable/L0
	// merges for L1, push-downs from above for deeper levels).
	Compactions int64
	// PointsIn counts points written into this level by those merges.
	PointsIn int64
	// PointsRewritten counts points of this level that a merge into it
	// read back and wrote again.
	PointsRewritten int64
}

// levelCounterSet holds the cumulative per-level counters.
type levelCounterSet struct {
	Compactions     int64
	PointsIn        int64
	PointsRewritten int64
}

// LevelStats returns a per-level snapshot: structure (tables, points,
// target) plus cumulative merge counters.
func (e *Engine) LevelStats() []LevelStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LevelStats, len(e.levels))
	for d := range e.levels {
		out[d] = LevelStats{
			Level:        d + 1,
			Tables:       e.levels[d].lenTables(),
			Points:       e.levels[d].totalPoints(),
			TargetPoints: e.levelTargetPoints(d),
		}
		if d < len(e.levelCounters) {
			out[d].Compactions = e.levelCounters[d].Compactions
			out[d].PointsIn = e.levelCounters[d].PointsIn
			out[d].PointsRewritten = e.levelCounters[d].PointsRewritten
		}
	}
	return out
}

// allTablesLocked returns every on-disk table, L1 first then deeper
// levels. Used for whole-tree accounting (subsequent-point counts, spans).
// Caller holds the lock.
func (e *Engine) allTablesLocked() []sstable.TableHandle {
	var n int
	for d := range e.levels {
		n += len(e.levels[d].tables)
	}
	out := make([]sstable.TableHandle, 0, n)
	for d := range e.levels {
		out = append(out, e.levels[d].tables...)
	}
	return out
}

// checkLevelInvariantsLocked verifies per-level ordering and non-overlap.
// Caller holds the lock (or owns the engine exclusively, as in recovery
// and tests).
func (e *Engine) checkLevelInvariantsLocked() bool {
	for d := range e.levels {
		if !e.levels[d].checkInvariant() {
			return false
		}
	}
	return true
}
