package lsm

import (
	"testing"

	"repro/internal/series"
	"repro/internal/sstable"
)

// mkTable builds a table with points at TGs [lo, hi] step.
func mkTable(t *testing.T, id uint64, lo, hi, step int64) *sstable.Table {
	t.Helper()
	var ps []series.Point
	for tg := lo; tg <= hi; tg += step {
		ps = append(ps, series.Point{TG: tg, TA: tg})
	}
	tbl, err := sstable.Build(id, ps)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tbl
}

// mkRun assembles a run from (lo, hi) ranges with step 1.
func mkRun(t *testing.T, ranges ...[2]int64) *run {
	t.Helper()
	r := &run{}
	for i, rg := range ranges {
		if !r.appendTable(mkTable(t, uint64(i), rg[0], rg[1], 1)) {
			t.Fatalf("appendTable %v failed", rg)
		}
	}
	return r
}

func TestRunOverlapRange(t *testing.T) {
	r := mkRun(t, [2]int64{0, 9}, [2]int64{20, 29}, [2]int64{40, 49})
	tests := []struct {
		lo, hi int64
		wi, wj int
	}{
		{0, 9, 0, 1},
		{5, 25, 0, 2},
		{10, 19, 1, 1}, // gap: empty interval
		{25, 45, 1, 3},
		{-5, 100, 0, 3},
		{50, 60, 3, 3},
		{-10, -1, 0, 0},
	}
	for _, tc := range tests {
		i, j := r.overlapRange(tc.lo, tc.hi)
		if i != tc.wi || j != tc.wj {
			t.Errorf("overlapRange(%d,%d) = [%d,%d), want [%d,%d)", tc.lo, tc.hi, i, j, tc.wi, tc.wj)
		}
	}
}

func TestRunLastTG(t *testing.T) {
	r := &run{}
	if _, ok := r.lastTG(); ok {
		t.Error("empty run has lastTG")
	}
	r = mkRun(t, [2]int64{0, 9}, [2]int64{20, 29})
	if last, ok := r.lastTG(); !ok || last != 29 {
		t.Errorf("lastTG = %d, %v", last, ok)
	}
}

func TestRunAppendRejectsOverlap(t *testing.T) {
	r := mkRun(t, [2]int64{0, 9})
	if r.appendTable(mkTable(t, 9, 9, 15, 1)) {
		t.Error("overlapping append accepted")
	}
	if r.appendTable(mkTable(t, 9, 5, 8, 1)) {
		t.Error("contained append accepted")
	}
	if !r.appendTable(mkTable(t, 9, 10, 15, 1)) {
		t.Error("valid append rejected")
	}
}

func TestRunReplace(t *testing.T) {
	r := mkRun(t, [2]int64{0, 9}, [2]int64{20, 29}, [2]int64{40, 49})
	// Replace the middle table with two new ones.
	nt1 := mkTable(t, 10, 15, 24, 1)
	nt2 := mkTable(t, 11, 25, 35, 1)
	r.replace(1, 2, []sstable.TableHandle{nt1, nt2})
	if r.lenTables() != 4 {
		t.Fatalf("lenTables = %d", r.lenTables())
	}
	if !r.checkInvariant() {
		t.Error("invariant broken after replace")
	}
	if r.totalPoints() != 10+10+11+10 {
		t.Errorf("totalPoints = %d", r.totalPoints())
	}
}

func TestRunReplaceWholeRun(t *testing.T) {
	r := mkRun(t, [2]int64{0, 9}, [2]int64{20, 29})
	nt := mkTable(t, 10, 0, 29, 1)
	r.replace(0, 2, []sstable.TableHandle{nt})
	if r.lenTables() != 1 || r.totalPoints() != 30 {
		t.Errorf("replace whole run: %d tables, %d points", r.lenTables(), r.totalPoints())
	}
}

func TestRunPointsGreaterThan(t *testing.T) {
	r := mkRun(t, [2]int64{0, 9}, [2]int64{20, 29})
	tests := []struct {
		tg   int64
		want int
	}{
		{-1, 20}, // everything
		{0, 19},
		{9, 10},
		{15, 10},
		{24, 5},
		{29, 0},
		{100, 0},
	}
	for _, tc := range tests {
		if got := pointsGreaterThan(r.tables, tc.tg); got != tc.want {
			t.Errorf("pointsGreaterThan(%d) = %d, want %d", tc.tg, got, tc.want)
		}
	}
}

func TestChainIterStreamsHandlesInOrder(t *testing.T) {
	r := mkRun(t, [2]int64{0, 4}, [2]int64{10, 14}, [2]int64{20, 24})
	it := &chainIter{handles: r.tables[0:2]}
	var pts []series.Point
	for it.Next() {
		pts = append(pts, it.Point())
	}
	if it.err != nil {
		t.Fatalf("chainIter error: %v", it.err)
	}
	if len(pts) != 10 {
		t.Fatalf("chainIter yielded %d points, want 10", len(pts))
	}
	if !series.IsSortedByTG(pts) {
		t.Error("chained points not sorted")
	}
	empty := &chainIter{}
	if empty.Next() {
		t.Error("empty chainIter yielded a point")
	}
}
