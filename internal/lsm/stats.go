package lsm

// Stats accumulates the write-path counters of the engine. All point counts
// are in data points (the paper measures write amplification in points, not
// bytes). Stats are read via Engine.Stats, which returns a copy taken under
// the engine lock.
type Stats struct {
	// PointsIngested counts Put calls accepted by the engine — the "amount
	// required by the user", the denominator of write amplification.
	PointsIngested int64
	// PointsWritten counts every point physically written into an SSTable
	// object, whether on first flush or on rewrite during compaction — the
	// numerator of write amplification. Enqueueing an L0 table in async
	// mode is NOT counted here: the L0 queue is memory-resident and its
	// durable copy is the WAL, so no SSTable write happens until the merge
	// into the run (counting both double-counted every async point against
	// the paper's Eq. 3/Eq. 5 predictions — see L0Points).
	PointsWritten int64
	// PointsRewritten counts points that were already in SSTables and were
	// read back and written again by a compaction (including level
	// push-downs, which rewrite their source slice too).
	PointsRewritten int64
	// TablesRewritten counts SSTables consumed (deleted) by compactions.
	TablesRewritten int64
	// Flushes counts memtable/L0 merges into L1 that did not overlap any
	// existing SSTable.
	Flushes int64
	// Compactions counts merges with overlapping SSTables: memtable and L0
	// merges into L1, plus level push-downs.
	Compactions int64
	// L0Points and L0Flushes count points and memtable images entering the
	// async L0 queue. These are memory movements covered by the WAL, not
	// SSTable writes; they are reported separately so async pipelines stay
	// observable without distorting WriteAmplification.
	L0Points  int64
	L0Flushes int64
	// InOrderPoints and OutOfOrderPoints classify ingested points per
	// Definition 3 against LAST(R) at insertion time. Under the
	// conventional policy the classification is still recorded (for
	// workload characterization) even though both kinds share C0.
	InOrderPoints    int64
	OutOfOrderPoints int64
	// WALRecords counts points appended to the write-ahead log.
	WALRecords int64
}

// WriteAmplification returns PointsWritten / PointsIngested, the paper's
// WA metric. It returns 0 before any ingestion.
func (s Stats) WriteAmplification() float64 {
	if s.PointsIngested == 0 {
		return 0
	}
	return float64(s.PointsWritten) / float64(s.PointsIngested)
}

// Sub returns the difference s − t, useful for windowed WA measurements
// (Fig. 10 plots WA over sliding windows of the write stream).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		PointsIngested:   s.PointsIngested - t.PointsIngested,
		PointsWritten:    s.PointsWritten - t.PointsWritten,
		PointsRewritten:  s.PointsRewritten - t.PointsRewritten,
		TablesRewritten:  s.TablesRewritten - t.TablesRewritten,
		Flushes:          s.Flushes - t.Flushes,
		Compactions:      s.Compactions - t.Compactions,
		L0Points:         s.L0Points - t.L0Points,
		L0Flushes:        s.L0Flushes - t.L0Flushes,
		InOrderPoints:    s.InOrderPoints - t.InOrderPoints,
		OutOfOrderPoints: s.OutOfOrderPoints - t.OutOfOrderPoints,
		WALRecords:       s.WALRecords - t.WALRecords,
	}
}

// CompactionInfo describes one compaction event, delivered to the
// Engine.OnCompaction hook. The Fig. 5 experiment uses SubsequentPoints to
// validate the ζ(n) model against measurement.
type CompactionInfo struct {
	// MemPoints is the number of points in the memtable being compacted.
	MemPoints int
	// SubsequentPoints is the number of on-disk points with generation time
	// greater than the minimum generation time in the memtable
	// (Definition 4), counted just before the merge.
	SubsequentPoints int
	// RewrittenPoints is the number of points in the SSTables consumed by
	// this compaction.
	RewrittenPoints int
	// OutputPoints is the number of points in the SSTables produced.
	OutputPoints int
	// TablesIn and TablesOut count SSTables consumed and produced.
	TablesIn, TablesOut int
}
