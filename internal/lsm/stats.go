package lsm

// Stats accumulates the write-path counters of the engine. All point counts
// are in data points (the paper measures write amplification in points, not
// bytes). Stats are read via Engine.Stats, which returns a copy taken under
// the engine lock.
type Stats struct {
	// PointsIngested counts Put calls accepted by the engine — the "amount
	// required by the user", the denominator of write amplification.
	PointsIngested int64
	// PointsWritten counts every point physically written into an SSTable,
	// whether on first flush or on rewrite during compaction — the
	// numerator of write amplification.
	PointsWritten int64
	// PointsRewritten counts points that were already in SSTables and were
	// read back and written again by a compaction.
	PointsRewritten int64
	// TablesRewritten counts SSTables consumed (deleted) by compactions.
	TablesRewritten int64
	// Flushes counts memtable flushes that did not need to merge with
	// existing SSTables.
	Flushes int64
	// Compactions counts merges of a memtable with overlapping SSTables.
	Compactions int64
	// InOrderPoints and OutOfOrderPoints classify ingested points per
	// Definition 3 against LAST(R) at insertion time. Under the
	// conventional policy the classification is still recorded (for
	// workload characterization) even though both kinds share C0.
	InOrderPoints    int64
	OutOfOrderPoints int64
	// WALRecords counts points appended to the write-ahead log.
	WALRecords int64
}

// WriteAmplification returns PointsWritten / PointsIngested, the paper's
// WA metric. It returns 0 before any ingestion.
func (s Stats) WriteAmplification() float64 {
	if s.PointsIngested == 0 {
		return 0
	}
	return float64(s.PointsWritten) / float64(s.PointsIngested)
}

// Sub returns the difference s − t, useful for windowed WA measurements
// (Fig. 10 plots WA over sliding windows of the write stream).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		PointsIngested:   s.PointsIngested - t.PointsIngested,
		PointsWritten:    s.PointsWritten - t.PointsWritten,
		PointsRewritten:  s.PointsRewritten - t.PointsRewritten,
		TablesRewritten:  s.TablesRewritten - t.TablesRewritten,
		Flushes:          s.Flushes - t.Flushes,
		Compactions:      s.Compactions - t.Compactions,
		InOrderPoints:    s.InOrderPoints - t.InOrderPoints,
		OutOfOrderPoints: s.OutOfOrderPoints - t.OutOfOrderPoints,
		WALRecords:       s.WALRecords - t.WALRecords,
	}
}

// CompactionInfo describes one compaction event, delivered to the
// Engine.OnCompaction hook. The Fig. 5 experiment uses SubsequentPoints to
// validate the ζ(n) model against measurement.
type CompactionInfo struct {
	// MemPoints is the number of points in the memtable being compacted.
	MemPoints int
	// SubsequentPoints is the number of on-disk points with generation time
	// greater than the minimum generation time in the memtable
	// (Definition 4), counted just before the merge.
	SubsequentPoints int
	// RewrittenPoints is the number of points in the SSTables consumed by
	// this compaction.
	RewrittenPoints int
	// OutputPoints is the number of points in the SSTables produced.
	OutputPoints int
	// TablesIn and TablesOut count SSTables consumed and produced.
	TablesIn, TablesOut int
}
