package lsm

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/series"
	"repro/internal/sstable"
	"repro/internal/storage"
)

// nopScheduler satisfies CompactionScheduler without scheduling anything,
// so tests drive CompactOnce by hand and every merge is deterministic.
type nopScheduler struct{}

func (nopScheduler) Notify(*Engine, int) {}

// runTableNames returns the object names of the live levels' tables,
// flattened L1-first — the same order manifestTableNames flattens the
// durable manifest in, so equality means run == manifest per level.
func runTableNames(e *Engine) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var names []string
	for d := range e.levels {
		for _, h := range e.levels[d].tables {
			names = append(names, tableObjectName(h.ID()))
		}
	}
	return names
}

// manifestTableNames decodes the durable manifest's table lists, flattened
// L1-first (handles both the v2 per-level format and a legacy v1 single
// run).
func manifestTableNames(t *testing.T, b storage.Backend) []string {
	t.Helper()
	data, err := b.Read(manifestName)
	if errors.Is(err, storage.ErrNotFound) {
		return nil
	}
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	if m.Levels == nil {
		return m.Tables
	}
	var names []string
	for _, lvl := range m.Levels {
		names = append(names, lvl...)
	}
	return names
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompactionCommitFaultKeepsRunAndManifestInAgreement is the
// regression test for the run/manifest divergence bug: when the manifest
// commit of a background merge failed, the in-memory replace used to stay
// installed, so live readers saw a run the durable manifest did not record
// — and a restart silently changed query results. The fixed
// replaceAndCommit rolls the replace back, making the live run and the
// committed manifest agree at every possible failure point.
//
// The test sweeps the fault budget so the merge dies at each backend
// operation in turn — first table persist, later persists, the manifest
// commit itself, retired-object removal, the WAL shrink — and asserts
// after every failure that (a) live run == durable manifest and (b) a
// restart from the backend serves exactly the acknowledged points.
func TestCompactionCommitFaultKeepsRunAndManifestInAgreement(t *testing.T) {
	for budget := int64(0); ; budget++ {
		if budget > 64 {
			t.Fatal("compaction never succeeded within the budget sweep")
		}
		fb := storage.NewFaultBackend(storage.NewMemBackend())
		e, err := Open(Config{
			Policy: Conventional, MemBudget: 4, SSTablePoints: 4,
			Backend: fb, WAL: true,
			AsyncCompaction: true, Scheduler: nopScheduler{},
		})
		if err != nil {
			t.Fatalf("budget %d: open: %v", budget, err)
		}

		// Build a committed run, tracking every acknowledged point.
		acked := make(map[int64]float64)
		for i := int64(0); i < 16; i++ {
			if err := e.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
				t.Fatalf("budget %d: put %d: %v", budget, i, err)
			}
			acked[i] = float64(i)
		}
		for e.L0Backlog() > 0 {
			if _, err := e.CompactOnce(); err != nil {
				t.Fatalf("budget %d: drain: %v", budget, err)
			}
		}

		// Queue one L0 table that overlaps the run, so the next merge
		// genuinely replaces committed tables.
		for i := int64(0); e.L0Backlog() == 0; i++ {
			tg := (i * 3) % 16
			if err := e.Put(series.Point{TG: tg, TA: 100 + i, V: -float64(tg)}); err != nil {
				t.Fatalf("budget %d: ooo put: %v", budget, err)
			}
			acked[tg] = -float64(tg)
		}

		fb.SetBudget(budget)
		remaining, err := e.CompactOnce()
		fb.SetBudget(-1)

		if err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("budget %d: error lost its cause: %v", budget, err)
			}
			if remaining != 0 {
				t.Fatalf("budget %d: failed merge reported %d remaining, want 0 (fail-stop)", budget, remaining)
			}
		}

		// (a) Live run and durable manifest must agree — the heart of the
		// regression: a failed commit must leave neither side half-moved.
		run, durable := runTableNames(e), manifestTableNames(t, fb)
		if !sameNames(run, durable) {
			t.Fatalf("budget %d: live run %v diverged from manifest %v (err=%v)",
				budget, run, durable, err)
		}

		// (b) Restart equivalence: a fresh instance recovered from the
		// backend (manifest + WAL) serves exactly the acknowledged points.
		closeWithManualDrain(t, e)
		re, rerr := Open(Config{Policy: Conventional, MemBudget: 4, SSTablePoints: 4, Backend: fb, WAL: true})
		if rerr != nil {
			t.Fatalf("budget %d: reopen: %v", budget, rerr)
		}
		pts, _, serr := re.Scan(0, 1<<40)
		if serr != nil {
			t.Fatalf("budget %d: scan after restart: %v", budget, serr)
		}
		if len(pts) != len(acked) {
			t.Fatalf("budget %d: restart sees %d points, want %d", budget, len(pts), len(acked))
		}
		for _, p := range pts {
			if want, ok := acked[p.TG]; !ok || want != p.V {
				t.Fatalf("budget %d: restart point (%d,%g), want value %g", budget, p.TG, p.V, want)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatalf("budget %d: close reopened: %v", budget, err)
		}

		if err == nil {
			// The whole merge (persists, commit, cleanup, WAL shrink) fit in
			// the budget: every earlier iteration failed at a distinct
			// operation, so the sweep is complete.
			return
		}
	}
}

// closeWithManualDrain closes an engine whose Config.Scheduler is the
// do-nothing test scheduler: Close's final flush parks in drainLocked
// waiting for "the scheduler", so the test stands in for it.
func closeWithManualDrain(t *testing.T, e *Engine) {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if e.L0Backlog() > 0 {
				e.CompactOnce()
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	e.Close() // error expected when a fault test left a sticky bgErr
	close(stop)
	wg.Wait()
}

// TestCompactOnceToleratesEmptyL0Table is the regression test for the
// unguarded pts[0] in the compactor: an empty L0 table at the queue head
// used to panic the merge before the guard. The empty table must be
// dropped as a no-op and the engine must keep working.
func TestCompactOnceToleratesEmptyL0Table(t *testing.T) {
	e, err := Open(Config{Policy: Conventional, MemBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	e.l0 = append(e.l0, new(sstable.Table))
	e.mu.Unlock()

	remaining, err := e.CompactOnce()
	if err != nil || remaining != 0 {
		t.Fatalf("CompactOnce on empty L0 table: remaining=%d err=%v, want 0, nil", remaining, err)
	}
	if n := e.L0Backlog(); n != 0 {
		t.Fatalf("empty L0 table not dropped: backlog %d", n)
	}

	for i := int64(0); i < 20; i++ {
		if err := e.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatalf("put after empty-table pop: %v", err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	pts, _, err := e.Scan(0, 1<<40)
	if err != nil || len(pts) != 20 {
		t.Fatalf("scan: %d points, err %v; want 20", len(pts), err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyFlushGuards pins the empty-input guards on the flush/merge
// path: FlushAll on an empty or drained engine, handleFullMemtable on an
// empty memtable, and mergePoints with no points are all no-ops — none may
// index into an empty point slice.
func TestEmptyFlushGuards(t *testing.T) {
	sync1, err := Open(Config{Policy: Conventional, MemBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sync1.FlushAll(); err != nil {
		t.Fatalf("FlushAll on empty sync engine: %v", err)
	}
	sync1.mu.Lock()
	if err := sync1.handleFullMemtable(sync1.c0); err != nil {
		sync1.mu.Unlock()
		t.Fatalf("handleFullMemtable on empty memtable: %v", err)
	}
	if err := sync1.mergePoints(nil); err != nil {
		sync1.mu.Unlock()
		t.Fatalf("mergePoints(nil): %v", err)
	}
	sync1.mu.Unlock()
	for i := int64(0); i < 8; i++ {
		if err := sync1.Put(series.Point{TG: i, TA: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sync1.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := sync1.FlushAll(); err != nil {
		t.Fatalf("FlushAll on drained engine: %v", err)
	}
	if err := sync1.Close(); err != nil {
		t.Fatal(err)
	}

	async1, err := Open(Config{Policy: Conventional, MemBudget: 4, AsyncCompaction: true, Scheduler: nopScheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := async1.FlushAll(); err != nil {
		t.Fatalf("FlushAll on empty async engine: %v", err)
	}
	async1.mu.Lock()
	if err := async1.handleFullMemtable(async1.c0); err != nil {
		async1.mu.Unlock()
		t.Fatalf("async handleFullMemtable on empty memtable: %v", err)
	}
	async1.mu.Unlock()
	if n := async1.L0Backlog(); n != 0 {
		t.Fatalf("empty flush enqueued %d L0 tables", n)
	}
	closeWithManualDrain(t, async1)
}

// dropBeforeEngine builds a durable sync engine holding points 0..15 in
// four 4-point tables, so DropBefore(6) unlinks one whole table and must
// rewrite the straddling table [4..7].
func dropBeforeEngine(t *testing.T) (*Engine, *storage.FaultBackend) {
	t.Helper()
	fb := storage.NewFaultBackend(storage.NewMemBackend())
	e, err := Open(Config{Policy: Conventional, MemBudget: 4, SSTablePoints: 4, Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		if err := e.Put(series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if n := len(runTableNames(e)); n != 4 {
		t.Fatalf("setup built %d tables, want 4", n)
	}
	return e, fb
}

// TestDropBeforeReadFaultReportsNothingRemoved is the regression test for
// the retention accounting bug: when reading the straddling table failed,
// DropBefore used to report the whole-table tally alongside the error even
// though nothing had been committed — a retrying caller double-counted.
// Every pre-commit failure must report (0, err) with the run untouched.
func TestDropBeforeReadFaultReportsNothingRemoved(t *testing.T) {
	e, fb := dropBeforeEngine(t)
	fb.SetReadBudget(0)
	removed, err := e.DropBefore(6)
	if err == nil {
		t.Fatal("DropBefore with dead reads succeeded")
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("error lost its cause: %v", err)
	}
	if removed != 0 {
		t.Fatalf("failed DropBefore reported %d removed, want 0", removed)
	}
	fb.SetReadBudget(-1)

	// Nothing was dropped: all 16 points still readable.
	if pts, _, err := e.Scan(0, 1<<40); err != nil || len(pts) != 16 {
		t.Fatalf("scan after failed drop: %d points, err %v; want 16", len(pts), err)
	}

	// The retry succeeds and reports exactly the durable removal.
	removed, err = e.DropBefore(6)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if removed != 6 {
		t.Fatalf("retry removed %d, want 6", removed)
	}
	pts, _, err := e.Scan(0, 1<<40)
	if err != nil || len(pts) != 10 || pts[0].TG != 6 {
		t.Fatalf("scan after drop: %d points (first %v), err %v; want 10 starting at 6",
			len(pts), pts, err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDropBeforeCommitFaultLeavesRunIntact drives the same contract
// through the commit point: the replacement table persists (budget 1) but
// the manifest commit fails, so replaceAndCommit must roll back and
// DropBefore must report (0, err) with every point still readable — live
// and across a restart.
func TestDropBeforeCommitFaultLeavesRunIntact(t *testing.T) {
	e, fb := dropBeforeEngine(t)
	fb.SetBudget(1) // one write: the straddle replacement; the commit dies
	removed, err := e.DropBefore(6)
	fb.SetBudget(-1)
	if err == nil || !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("DropBefore with dead manifest: removed=%d err=%v", removed, err)
	}
	if removed != 0 {
		t.Fatalf("uncommitted DropBefore reported %d removed, want 0", removed)
	}
	if run, durable := runTableNames(e), manifestTableNames(t, fb); !sameNames(run, durable) {
		t.Fatalf("live run %v diverged from manifest %v", run, durable)
	}
	if pts, _, err := e.Scan(0, 1<<40); err != nil || len(pts) != 16 {
		t.Fatalf("scan after failed drop: %d points, err %v; want 16", len(pts), err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart sees the orphaned replacement object cleaned up and the
	// full point set; retention can then be retried to completion.
	re, err := Open(Config{Policy: Conventional, MemBudget: 4, SSTablePoints: 4, Backend: fb})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.RecoveryInfo().OrphanTablesRemoved == 0 {
		t.Error("reopen found no orphan to remove after failed commit")
	}
	if pts, _, err := re.Scan(0, 1<<40); err != nil || len(pts) != 16 {
		t.Fatalf("restart scan: %d points, err %v; want 16", len(pts), err)
	}
	removed, err = re.DropBefore(6)
	if err != nil || removed != 6 {
		t.Fatalf("retry after restart: removed=%d err=%v, want 6, nil", removed, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
