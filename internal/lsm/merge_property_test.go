package lsm

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/series"
	"repro/internal/sstable"
)

// These are the equivalence properties the streaming merge must uphold: the
// k-way heap with priority shadowing yields byte-identical output (points
// and ScanStats) to the old materialize-then-MergeByTG algorithm it
// replaced, on arbitrary shadowing inputs and on real engine states.

// foldMergeByTG is the reference semantics: successively merge sources in
// ascending priority order with series.MergeByTG, whose second argument
// shadows the first on duplicate generation timestamps.
func foldMergeByTG(sources [][]series.Point) []series.Point {
	var acc []series.Point
	for _, src := range sources {
		acc = series.MergeByTG(acc, src)
	}
	return acc
}

// randSources builds k sorted sources with deliberately colliding TGs drawn
// from a small universe; the value encodes (source, tg) so shadowing
// mistakes are visible in V, not just in ordering.
func randSources(rng *rand.Rand, k, universe int) [][]series.Point {
	out := make([][]series.Point, k)
	for s := 0; s < k; s++ {
		var pts []series.Point
		for tg := 0; tg < universe; tg++ {
			if rng.Intn(3) == 0 { // ~1/3 density → heavy cross-source overlap
				pts = append(pts, series.Point{
					TG: int64(tg),
					TA: int64(s*universe + tg),
					V:  float64(s)*1e6 + float64(tg),
				})
			}
		}
		out[s] = pts
	}
	return out
}

func TestMergeIteratorMatchesMergeByTGFold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(6)
		sources := randSources(rng, k, 50+rng.Intn(100))

		want := foldMergeByTG(sources)

		it := &MergeIterator{}
		for prio, src := range sources {
			it.addSource(sstable.IterPoints(src), prio)
		}
		it.init()
		var got []series.Point
		for it.Next() {
			got = append(got, it.Point())
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d: iterator yielded %d points, MergeByTG fold %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: point %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
		if rp := it.Stats().ResultPoints; rp != len(want) {
			t.Fatalf("trial %d: ResultPoints = %d, want %d", trial, rp, len(want))
		}
	}
}

// referenceScan recomputes a snapshot scan with the pre-iterator algorithm:
// materialize the level slices (deepest first, shallower levels shadowing),
// then repeatedly MergeByTG in shadowing order (L0 oldest→newest, then c0,
// cseq, cnonseq), accounting costs identically.
func referenceScan(s *Snapshot, lo, hi int64) ([]series.Point, ScanStats) {
	var st ScanStats
	var acc []series.Point
	if len(s.levels) > 0 {
		st.LevelTablesTouched = make([]int, len(s.levels))
	}
	for d := len(s.levels) - 1; d >= 0; d-- {
		tables := s.levels[d]
		i, j := overlapTables(tables, lo, hi)
		var lvlPts []series.Point
		for _, t := range tables[i:j] {
			st.TablesTouched++
			st.TablePoints += t.Len()
			st.LevelTablesTouched[d]++
			sub, _ := t.Scan(lo, hi) // resident tables: no backend, cannot fail
			lvlPts = append(lvlPts, sub...)
		}
		acc = series.MergeByTG(acc, lvlPts)
	}
	for _, t := range s.l0 {
		if !t.Overlaps(lo, hi) {
			continue
		}
		st.TablesTouched++
		st.TablePoints += t.Len()
		sub, _ := t.Scan(lo, hi)
		acc = series.MergeByTG(acc, sub)
	}
	for _, mem := range s.mems {
		sub := rangeSlice(mem, lo, hi)
		st.MemPoints += len(sub)
		acc = series.MergeByTG(acc, sub)
	}
	st.ResultPoints = len(acc)
	return acc, st
}

func TestSnapshotScanMatchesReference(t *testing.T) {
	configs := []Config{
		{Policy: Conventional, MemBudget: 32, SSTablePoints: 64},
		{Policy: Separation, MemBudget: 48, SSTablePoints: 32},
		{Policy: Conventional, MemBudget: 64, SSTablePoints: 64, AsyncCompaction: true},
	}
	for ci, cfg := range configs {
		ps := genWorkload(4000, 20, dist.NewLognormal(4, 1.6), int64(100+ci))
		e := mustOpen(t, cfg)
		ingest(t, e, ps)

		rng := rand.New(rand.NewSource(int64(ci)))
		snap := e.Snapshot()
		ranges := [][2]int64{{math.MinInt64 + 1, math.MaxInt64}}
		for r := 0; r < 25; r++ {
			lo := rng.Int63n(4000 * 20)
			ranges = append(ranges, [2]int64{lo, lo + rng.Int63n(20000)})
		}
		for _, rr := range ranges {
			want, wantSt := referenceScan(snap, rr[0], rr[1])
			got, gotSt, err := snap.Scan(rr[0], rr[1])
			if err != nil {
				t.Fatalf("config %d range %v: Scan: %v", ci, rr, err)
			}
			if !reflect.DeepEqual(gotSt, wantSt) {
				t.Fatalf("config %d range %v: stats %+v, want %+v", ci, rr, gotSt, wantSt)
			}
			if len(got) != len(want) {
				t.Fatalf("config %d range %v: %d points, want %d", ci, rr, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("config %d range %v: point %d = %+v, want %+v", ci, rr, i, got[i], want[i])
				}
			}
		}
		if err := e.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}
