// Package scheduler provides the database-wide compaction scheduler: a
// bounded pool of workers that background-merge L0 backlogs across many
// LSM engines, replacing the one-compactor-goroutine-per-series model.
//
// With thousands of series, per-series goroutines give the OS thousands of
// uncoordinated merge loops competing for disk and CPU — the scaling wall
// that pushes real engines (RocksDB's compaction thread pool, IoTDB's
// merge scheduler) to a shared scheduler. Here every engine reports its L0
// queue depth through the lsm.CompactionScheduler interface; the pool keeps
// the engines in a max-heap by depth (deepest backlog first, FIFO among
// equals so no series starves) and its workers repeatedly pop the neediest
// engine and run one lsm.Engine.CompactOnce on it.
//
// Invariants the pool maintains:
//
//   - At most one worker compacts a given engine at any time (the engine's
//     "compactor is the sole run mutator" rule requires it; CompactOnce
//     panics if violated). An engine is either idle, queued, or running —
//     never queued twice, never popped while running.
//   - Depth accounting is reconciled against the engine's own report after
//     every merge, taking the maximum of the scheduler's view and the
//     engine's: overestimates self-correct (an empty CompactOnce is a
//     cheap no-op), while an underestimate would strand backlog and hang
//     drains.
//   - Engines must be registered after lsm.Open and unregistered after
//     engine Close; the pool itself closes only after every engine has,
//     since draining engines depend on pool workers for progress.
package scheduler

import (
	"container/heap"
	"runtime"
	"sync"
	"time"

	"repro/internal/lsm"
	"repro/internal/metrics"
)

// DefaultWorkers returns the default pool size: half the usable CPUs, at
// least one. Merges are CPU- and I/O-heavy; leaving headroom for ingest
// and queries matters more than merge parallelism.
func DefaultWorkers() int {
	if n := runtime.GOMAXPROCS(0) / 2; n > 1 {
		return n
	}
	return 1
}

// DefaultBackpressurePerWorker scales the default Overloaded threshold:
// with W workers, ingest backpressure engages once W×16 L0 tables are
// queued across all series — deep enough to ride out a burst, shallow
// enough that producers slow down long before per-engine queues hit their
// own hard limit and block.
const DefaultBackpressurePerWorker = 16

// Config parameterizes a Pool.
type Config struct {
	// Workers is the number of concurrent compaction workers. Zero selects
	// DefaultWorkers().
	Workers int
	// BackpressureDepth is the aggregate queued-L0-table count at which
	// Overloaded starts reporting true. Zero selects
	// Workers×DefaultBackpressurePerWorker; negative disables backpressure.
	BackpressureDepth int
}

// Pool is a shared compaction scheduler. Create with New, then Register
// every engine whose lsm.Config.Scheduler points at the pool.
type Pool struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	byEngine map[*lsm.Engine]*entry
	byName   map[string]*entry
	heap     entryHeap
	seq      uint64
	closed   bool
	wg       sync.WaitGroup

	running      int
	queuedTables int // Σ entry depth: L0 tables awaiting merge, DB-wide
	completed    int64
	failed       int64
	waitHist     *metrics.Histogram
	mergeHist    *metrics.Histogram
}

type entryState uint8

const (
	stateIdle    entryState = iota // no pending work known
	stateQueued                    // in the heap, awaiting a worker
	stateRunning                   // a worker is inside CompactOnce
)

// entry is the pool's view of one registered engine.
type entry struct {
	name      string
	eng       *lsm.Engine
	depth     int // last known L0 backlog
	state     entryState
	seq       uint64 // enqueue order, FIFO tie-break among equal depths
	heapIndex int
	queuedAt  time.Time
	// dirty marks a Notify that arrived while a worker was mid-merge on
	// this entry; see the reconciliation in worker.
	dirty bool

	merges       int64
	failed       int64
	waitSeconds  float64
	mergeSeconds float64
}

// New creates a pool and starts its workers.
func New(cfg Config) *Pool {
	p := newPool(cfg)
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// newPool builds the pool without starting workers — the scheduling-order
// tests drive it synchronously.
func newPool(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers()
	}
	if cfg.BackpressureDepth == 0 {
		cfg.BackpressureDepth = cfg.Workers * DefaultBackpressurePerWorker
	}
	p := &Pool{
		cfg:      cfg,
		byEngine: make(map[*lsm.Engine]*entry),
		byName:   make(map[string]*entry),
		// Wait can stretch under backlog and merges can be slow on cold
		// storage; [0,30s) in 10ms buckets keeps both tails visible.
		waitHist:  metrics.NewHistogram(0, 30, 3000),
		mergeHist: metrics.NewHistogram(0, 30, 3000),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Register adds an engine to the pool under a series name. The engine must
// already have been opened with its lsm.Config.Scheduler pointing at this
// pool. Any L0 backlog the engine recovered with is picked up here —
// recovery-time enqueues happen before the engine can notify — and queued
// immediately.
func (p *Pool) Register(name string, e *lsm.Engine) {
	depth := e.L0Backlog()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.byEngine[e] != nil {
		return
	}
	ent := &entry{name: name, eng: e, depth: depth}
	p.byEngine[e] = ent
	p.byName[name] = ent
	p.queuedTables += depth
	if depth > 0 {
		p.enqueueLocked(ent)
		p.cond.Signal()
	}
}

// Unregister removes an engine (after the engine has been closed — a
// dropped or shut-down series). Safe while a worker is mid-merge on the
// engine: CompactOnce on a closed engine is a no-op, and the worker's
// post-merge reconciliation sees the entry is gone and does not requeue it.
func (p *Pool) Unregister(e *lsm.Engine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ent := p.byEngine[e]
	if ent == nil {
		return
	}
	delete(p.byEngine, e)
	if p.byName[ent.name] == ent {
		delete(p.byName, ent.name)
	}
	p.queuedTables -= ent.depth
	ent.depth = 0
	if ent.state == stateQueued {
		heap.Remove(&p.heap, ent.heapIndex)
		ent.state = stateIdle
	}
}

// Notify implements lsm.CompactionScheduler: record the engine's new L0
// depth and (re)queue it. Called by the engine with its own lock held, so
// this must not call back into the engine — it only updates pool state.
// (Lock order is always engine→pool; workers take the pool lock first but
// release it before entering CompactOnce.)
func (p *Pool) Notify(e *lsm.Engine, depth int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	ent := p.byEngine[e]
	if ent == nil {
		return
	}
	p.setDepthLocked(ent, depth)
}

// setDepthLocked records a new depth for ent and fixes its queue position.
func (p *Pool) setDepthLocked(ent *entry, depth int) {
	p.queuedTables += depth - ent.depth
	ent.depth = depth
	switch ent.state {
	case stateIdle:
		if depth > 0 {
			p.enqueueLocked(ent)
			p.cond.Signal()
		}
	case stateQueued:
		if depth == 0 {
			heap.Remove(&p.heap, ent.heapIndex)
			ent.state = stateIdle
		} else {
			heap.Fix(&p.heap, ent.heapIndex)
		}
	case stateRunning:
		// The worker reconciles against the engine's report when the
		// in-flight merge finishes; requeueing now would put two workers
		// on one engine. Mark the entry so the worker knows this report
		// may postdate the count its merge returned.
		ent.dirty = true
	}
}

// enqueueLocked pushes an idle entry into the heap.
func (p *Pool) enqueueLocked(ent *entry) {
	ent.state = stateQueued
	ent.seq = p.seq
	p.seq++
	ent.queuedAt = time.Now()
	heap.Push(&p.heap, ent)
}

// worker pops the neediest engine and runs one merge at a time until the
// pool closes.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.heap) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		ent := heap.Pop(&p.heap).(*entry)
		ent.state = stateRunning
		ent.dirty = false
		p.running++
		wait := time.Since(ent.queuedAt).Seconds()
		ent.waitSeconds += wait
		p.waitHist.Observe(wait)
		p.mu.Unlock()

		start := time.Now()
		remaining, err := ent.eng.CompactOnce()
		dur := time.Since(start).Seconds()

		p.mu.Lock()
		p.running--
		ent.mergeSeconds += dur
		p.mergeHist.Observe(dur)
		if err != nil {
			p.failed++
			ent.failed++
		} else {
			p.completed++
			ent.merges++
		}
		ent.state = stateIdle
		// Reconcile the entry's depth. remaining is the engine's own count
		// at the end of the merge, newer than any Notify from before the
		// merge started — so it replaces the entry's depth outright. Only
		// a Notify that arrived mid-merge (dirty) can postdate it; those
		// two cannot be ordered from here, so take the maximum — an
		// overestimate self-corrects on the next (no-op) merge, while an
		// underestimate would strand backlog and hang drains.
		depth := remaining
		if p.byEngine[ent.eng] != ent {
			depth = 0 // unregistered while running; do not requeue
		} else if ent.dirty && ent.depth > depth {
			depth = ent.depth
		}
		p.setDepthLocked(ent, depth)
		p.mu.Unlock()
	}
}

// Overloaded reports whether the aggregate L0 backlog has crossed the
// backpressure threshold. The server's write path consults this to shed
// load (HTTP 429 + Retry-After) before memory-bounded per-engine queues
// fill up and start blocking ingest shards.
func (p *Pool) Overloaded() bool {
	if p.cfg.BackpressureDepth < 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queuedTables >= p.cfg.BackpressureDepth
}

// Stats is a point-in-time snapshot of pool-wide scheduler state.
type Stats struct {
	// Workers is the configured pool size.
	Workers int
	// BackpressureDepth is the Overloaded threshold (negative: disabled).
	BackpressureDepth int
	// QueuedTables is the number of L0 tables awaiting merge across all
	// registered series (including series currently being merged).
	QueuedTables int
	// QueuedSeries is the number of series waiting for a worker.
	QueuedSeries int
	// RunningSeries is the number of merges executing right now.
	RunningSeries int
	// Completed and Failed count finished CompactOnce calls.
	Completed, Failed int64
	// Overloaded mirrors Pool.Overloaded at snapshot time.
	Overloaded bool
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Workers:           p.cfg.Workers,
		BackpressureDepth: p.cfg.BackpressureDepth,
		QueuedTables:      p.queuedTables,
		QueuedSeries:      len(p.heap),
		RunningSeries:     p.running,
		Completed:         p.completed,
		Failed:            p.failed,
		Overloaded:        p.cfg.BackpressureDepth >= 0 && p.queuedTables >= p.cfg.BackpressureDepth,
	}
}

// SeriesStats is the scheduler's per-series view, surfaced on the
// /series/{series}/stats endpoint.
type SeriesStats struct {
	// Queued is the series' pending L0 table count as last reported.
	Queued int
	// Running is true while a worker is merging this series.
	Running bool
	// Merges and Failed count finished CompactOnce calls for the series.
	Merges, Failed int64
	// WaitSeconds and MergeSeconds accumulate time spent queued and time
	// spent merging.
	WaitSeconds, MergeSeconds float64
}

// SeriesStats returns the scheduler view of one registered series.
func (p *Pool) SeriesStats(name string) (SeriesStats, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ent := p.byName[name]
	if ent == nil {
		return SeriesStats{}, false
	}
	return SeriesStats{
		Queued:       ent.depth,
		Running:      ent.state == stateRunning,
		Merges:       ent.merges,
		Failed:       ent.failed,
		WaitSeconds:  ent.waitSeconds,
		MergeSeconds: ent.mergeSeconds,
	}, true
}

// HistSnapshot is a copied histogram for metric rendering: bucket edges,
// per-bucket counts, and the observation count/sum.
type HistSnapshot struct {
	Edges  []float64
	Counts []int64
	Count  int64
	Sum    float64
}

func snapshotHist(h *metrics.Histogram) HistSnapshot {
	edges, counts := h.Bins()
	n := h.Count()
	return HistSnapshot{Edges: edges, Counts: counts, Count: n, Sum: h.Mean() * float64(n)}
}

// WaitHist returns the queued-to-started latency histogram.
func (p *Pool) WaitHist() HistSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return snapshotHist(p.waitHist)
}

// MergeHist returns the CompactOnce duration histogram.
func (p *Pool) MergeHist() HistSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return snapshotHist(p.mergeHist)
}

// Close stops the workers and waits for in-flight merges to finish. Close
// the engines first: a draining engine depends on pool workers for
// progress, and work still queued when the pool closes is dropped.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// entryHeap is a max-heap: deepest L0 backlog first, FIFO (by enqueue
// sequence) among equals.
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	if h[a].depth != h[b].depth {
		return h[a].depth > h[b].depth
	}
	return h[a].seq < h[b].seq
}
func (h entryHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIndex = a
	h[b].heapIndex = b
}
func (h *entryHeap) Push(x any) {
	ent := x.(*entry)
	ent.heapIndex = len(*h)
	*h = append(*h, ent)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	ent := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ent.heapIndex = -1
	return ent
}
