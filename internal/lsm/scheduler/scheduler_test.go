package scheduler

import (
	"container/heap"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/series"
)

func mustEngine(t *testing.T, p *Pool) *lsm.Engine {
	t.Helper()
	e, err := lsm.Open(lsm.Config{
		Policy:          lsm.Conventional,
		MemBudget:       8,
		SSTablePoints:   8,
		AsyncCompaction: true,
		Scheduler:       p,
	})
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	return e
}

// popAll drains the heap under the pool lock, returning entry names in pop
// order.
func popAll(p *Pool) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var names []string
	for len(p.heap) > 0 {
		ent := heap.Pop(&p.heap).(*entry)
		ent.state = stateIdle
		names = append(names, ent.name)
	}
	return names
}

// TestDeepestBacklogFirst checks the scheduling order: deepest L0 queue
// first, FIFO among equal depths.
func TestDeepestBacklogFirst(t *testing.T) {
	p := newPool(Config{Workers: 1}) // no workers: we pop by hand
	engs := make(map[string]*lsm.Engine)
	for _, name := range []string{"a", "b", "c", "d"} {
		e := mustEngine(t, p)
		engs[name] = e
		p.Register(name, e)
		defer e.Close()
	}
	p.Notify(engs["a"], 2)
	p.Notify(engs["b"], 5)
	p.Notify(engs["c"], 3)
	p.Notify(engs["d"], 3) // same depth as c, notified later

	got := popAll(p)
	want := []string{"b", "c", "d", "a"}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if st := p.Stats(); st.QueuedTables != 13 {
		t.Fatalf("QueuedTables = %d, want 13", st.QueuedTables)
	}
}

// TestNotifyWhileQueuedReorders checks that a depth update moves an entry
// within the queue rather than duplicating it.
func TestNotifyWhileQueuedReorders(t *testing.T) {
	p := newPool(Config{Workers: 1})
	a, b := mustEngine(t, p), mustEngine(t, p)
	defer a.Close()
	defer b.Close()
	p.Register("a", a)
	p.Register("b", b)
	p.Notify(a, 1)
	p.Notify(b, 2)
	p.Notify(a, 9) // a overtakes b

	got := popAll(p)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("pop order %v, want [a b]", got)
	}
	// Dropping the depth to zero dequeues without a worker ever running.
	p.Notify(a, 4)
	p.Notify(a, 0)
	if got := popAll(p); len(got) != 0 {
		t.Fatalf("queue not empty after depth-0 notify: %v", got)
	}
	if st := p.Stats(); st.QueuedTables != 2 { // b's tables remain
		t.Fatalf("QueuedTables = %d, want 2", st.QueuedTables)
	}
}

// TestUnregisterRemovesQueuedWork checks that an unregistered engine
// leaves no queued entry and no depth accounting behind.
func TestUnregisterRemovesQueuedWork(t *testing.T) {
	p := newPool(Config{Workers: 1})
	a, b := mustEngine(t, p), mustEngine(t, p)
	defer a.Close()
	defer b.Close()
	p.Register("a", a)
	p.Register("b", b)
	p.Notify(a, 7)
	p.Notify(b, 1)
	p.Unregister(a)

	if _, ok := p.SeriesStats("a"); ok {
		t.Fatal("unregistered series still visible in SeriesStats")
	}
	if st := p.Stats(); st.QueuedTables != 1 || st.QueuedSeries != 1 {
		t.Fatalf("after unregister: %+v, want 1 queued table / 1 queued series", st)
	}
	if got := popAll(p); len(got) != 1 || got[0] != "b" {
		t.Fatalf("pop order %v, want [b]", got)
	}
}

// TestOverloadedThreshold checks the depth-based backpressure signal.
func TestOverloadedThreshold(t *testing.T) {
	p := newPool(Config{Workers: 1, BackpressureDepth: 4})
	a := mustEngine(t, p)
	defer a.Close()
	p.Register("a", a)

	if p.Overloaded() {
		t.Fatal("overloaded while empty")
	}
	p.Notify(a, 3)
	if p.Overloaded() {
		t.Fatal("overloaded below threshold")
	}
	p.Notify(a, 4)
	if !p.Overloaded() {
		t.Fatal("not overloaded at threshold")
	}
	p.Notify(a, 0)
	if p.Overloaded() {
		t.Fatal("overloaded after drain")
	}

	off := newPool(Config{Workers: 1, BackpressureDepth: -1})
	off.Register("a", a)
	off.Notify(a, 1000)
	if off.Overloaded() {
		t.Fatal("backpressure not disabled by negative threshold")
	}
}

// TestPoolDrainsEngine runs a real engine through the pool end to end:
// ingest past the memory budget, let pool workers merge the backlog, and
// verify the data and the counters.
func TestPoolDrainsEngine(t *testing.T) {
	p := New(Config{Workers: 2})
	defer p.Close()
	e := mustEngine(t, p)
	p.Register("s", e)

	const n = 512
	for i := 0; i < n; i++ {
		// Alternate ends of the keyspace so merges overlap existing tables.
		tg := int64(i)
		if i%3 == 0 {
			tg = int64(10000 + i)
		}
		if err := e.Put(series.Point{TG: tg, TA: tg, V: float64(i)}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got, _, err := e.Scan(0, 1<<40)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(got) != n {
		t.Fatalf("scanned %d points, want %d", len(got), n)
	}
	if e.L0Backlog() != 0 {
		t.Fatalf("L0 backlog %d after FlushAll", e.L0Backlog())
	}
	st := p.Stats()
	if st.Completed == 0 {
		t.Fatalf("pool completed no merges: %+v", st)
	}
	if st.QueuedTables != 0 || st.RunningSeries != 0 {
		t.Fatalf("pool not quiescent after drain: %+v", st)
	}
	ss, ok := p.SeriesStats("s")
	if !ok || ss.Merges == 0 || ss.Queued != 0 {
		t.Fatalf("series stats: %+v ok=%v", ss, ok)
	}
	if ws := p.WaitHist(); ws.Count != st.Completed+st.Failed {
		t.Fatalf("wait histogram count %d, want %d", ws.Count, st.Completed+st.Failed)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close engine: %v", err)
	}
	p.Unregister(e)
}

// TestCloseStopsWorkers verifies Close terminates the worker goroutines
// even with work still queued (engines gone, entries stale).
func TestCloseStopsWorkers(t *testing.T) {
	p := New(Config{Workers: 4})
	done := make(chan struct{})
	go func() {
		p.Close()
		p.Close() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool Close did not finish")
	}
}
