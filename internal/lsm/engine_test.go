package lsm

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/series"
)

// genWorkload builds a partially out-of-order stream: generation times at
// interval dt with delays from d, sorted by arrival.
func genWorkload(n int, dt int64, d dist.Distribution, seed int64) []series.Point {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]series.Point, n)
	for i := range ps {
		tg := int64(i+1) * dt
		delay := int64(d.Sample(rng))
		if delay < 0 {
			delay = 0
		}
		ps[i] = series.Point{TG: tg, TA: tg + delay, V: float64(i)}
	}
	series.SortByTA(ps)
	return ps
}

func mustOpen(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e
}

func ingest(t *testing.T, e *Engine, ps []series.Point) {
	t.Helper()
	for _, p := range ps {
		if err := e.Put(p); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	cases := []Config{
		{Policy: Conventional, MemBudget: 0},
		{Policy: Separation, MemBudget: 1},
		{Policy: Separation, MemBudget: 10, SeqCapacity: 10},
		{Policy: Separation, MemBudget: 10, SeqCapacity: -1},
		{Policy: Conventional, MemBudget: 4, SSTablePoints: -1},
		{Policy: Conventional, MemBudget: 4, Levels: -1},
		{Policy: Conventional, MemBudget: 4, GrowthFactor: 1},
		{Policy: Conventional, MemBudget: 4, WAL: true}, // WAL without backend
	}
	for i, cfg := range cases {
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d: Open(%+v) should fail", i, cfg)
		}
	}
}

func TestSeqCapacityDefaultsToHalf(t *testing.T) {
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 100})
	defer e.Close()
	if got := e.Config().SeqCapacity; got != 50 {
		t.Errorf("default SeqCapacity = %d, want 50", got)
	}
}

func TestPolicyString(t *testing.T) {
	if Conventional.String() != "pi_c" || Separation.String() != "pi_s" {
		t.Error("policy names wrong")
	}
	if PolicyKind(9).String() == "" {
		t.Error("unknown policy should still stringify")
	}
}

// scanAll is a helper returning every point in the engine.
func scanAll(e *Engine) []series.Point {
	pts, _, _ := e.Scan(math.MinInt64+1, math.MaxInt64)
	return pts
}

func TestConventionalPreservesAllPoints(t *testing.T) {
	ps := genWorkload(5000, 50, dist.NewLognormal(4, 1.5), 1)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64, SSTablePoints: 64})
	defer e.Close()
	ingest(t, e, ps)
	got := scanAll(e)
	if len(got) != len(ps) {
		t.Fatalf("scan returned %d points, want %d", len(got), len(ps))
	}
	if !series.IsSortedByTG(got) {
		t.Fatal("scan result not sorted")
	}
	// Every ingested point must be present with its value.
	want := make(map[int64]float64, len(ps))
	for _, p := range ps {
		want[p.TG] = p.V
	}
	for _, p := range got {
		if v, ok := want[p.TG]; !ok || v != p.V {
			t.Fatalf("point %v missing or wrong", p)
		}
	}
}

func TestSeparationPreservesAllPoints(t *testing.T) {
	ps := genWorkload(5000, 50, dist.NewLognormal(5, 2), 2)
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 64, SeqCapacity: 40, SSTablePoints: 64})
	defer e.Close()
	ingest(t, e, ps)
	got := scanAll(e)
	if len(got) != len(ps) {
		t.Fatalf("scan returned %d points, want %d", len(got), len(ps))
	}
	if !series.IsSortedByTG(got) {
		t.Fatal("scan result not sorted")
	}
}

func TestPoliciesAgreeOnContent(t *testing.T) {
	// Both policies must store exactly the same logical data.
	ps := genWorkload(3000, 10, dist.NewLognormal(4, 1.75), 3)
	ec := mustOpen(t, Config{Policy: Conventional, MemBudget: 32, SSTablePoints: 32})
	es := mustOpen(t, Config{Policy: Separation, MemBudget: 32, SeqCapacity: 16, SSTablePoints: 32})
	defer ec.Close()
	defer es.Close()
	ingest(t, ec, ps)
	ingest(t, es, ps)
	a, b := scanAll(ec), scanAll(es)
	if len(a) != len(b) {
		t.Fatalf("content mismatch: %d vs %d points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunInvariantMaintained(t *testing.T) {
	for _, pol := range []PolicyKind{Conventional, Separation} {
		ps := genWorkload(4000, 50, dist.NewLognormal(5, 2), 4)
		e := mustOpen(t, Config{Policy: pol, MemBudget: 32, SSTablePoints: 48})
		ingest(t, e, ps)
		e.mu.Lock()
		ok := e.checkLevelInvariantsLocked()
		e.mu.Unlock()
		if !ok {
			t.Errorf("%v: run overlap invariant violated", pol)
		}
		e.Close()
	}
}

func TestWAAtLeastOneAfterFlush(t *testing.T) {
	for _, pol := range []PolicyKind{Conventional, Separation} {
		ps := genWorkload(2000, 50, dist.NewExponential(0.01), 5)
		e := mustOpen(t, Config{Policy: pol, MemBudget: 64})
		ingest(t, e, ps)
		e.FlushAll()
		st := e.Stats()
		if wa := st.WriteAmplification(); wa < 1 {
			t.Errorf("%v: WA = %v < 1 after flush-all", pol, wa)
		}
		if st.PointsIngested != 2000 {
			t.Errorf("%v: ingested = %d", pol, st.PointsIngested)
		}
		e.Close()
	}
}

func TestInOrderStreamHasWAOne(t *testing.T) {
	// A perfectly ordered stream never triggers a merge: WA == 1 exactly
	// (after final flush) under both policies.
	ps := make([]series.Point, 1024)
	for i := range ps {
		ps[i] = series.Point{TG: int64(i), TA: int64(i)}
	}
	for _, pol := range []PolicyKind{Conventional, Separation} {
		e := mustOpen(t, Config{Policy: pol, MemBudget: 64})
		ingest(t, e, ps)
		e.FlushAll()
		st := e.Stats()
		if st.Compactions != 0 {
			t.Errorf("%v: %d compactions on ordered stream", pol, st.Compactions)
		}
		if wa := st.WriteAmplification(); wa != 1 {
			t.Errorf("%v: WA = %v, want exactly 1", pol, wa)
		}
		if st.OutOfOrderPoints != 0 {
			t.Errorf("%v: %d out-of-order points in ordered stream", pol, st.OutOfOrderPoints)
		}
		e.Close()
	}
}

func TestDisorderedStreamTriggersCompaction(t *testing.T) {
	ps := genWorkload(5000, 10, dist.NewLognormal(5, 2), 6)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64})
	defer e.Close()
	ingest(t, e, ps)
	st := e.Stats()
	if st.Compactions == 0 {
		t.Error("heavy disorder produced no compactions")
	}
	if st.OutOfOrderPoints == 0 {
		t.Error("no points classified out-of-order")
	}
	if st.WriteAmplification() <= 1 {
		t.Errorf("WA = %v, want > 1 under disorder", st.WriteAmplification())
	}
}

func TestSeparationFlushesSeqWithoutMerge(t *testing.T) {
	// In-order points under π_s must always flush, never compact.
	ps := make([]series.Point, 300)
	for i := range ps {
		ps[i] = series.Point{TG: int64(i), TA: int64(i)}
	}
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 20, SeqCapacity: 10})
	defer e.Close()
	ingest(t, e, ps)
	st := e.Stats()
	if st.Compactions != 0 {
		t.Errorf("in-order stream caused %d compactions under pi_s", st.Compactions)
	}
	if st.Flushes != 30 {
		t.Errorf("Flushes = %d, want 30 (300 points / 10 cap)", st.Flushes)
	}
}

func TestDefinition3Classification(t *testing.T) {
	// Build a run with max TG = 99, then check classification.
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 10, SeqCapacity: 5})
	defer e.Close()
	for i := int64(95); i < 100; i++ {
		e.Put(series.Point{TG: i, TA: i}) // fills Cseq (cap 5) -> flush
	}
	if last, ok := e.LastTG(); !ok || last != 99 {
		t.Fatalf("LastTG = %v, %v", last, ok)
	}
	st0 := e.Stats()
	e.Put(series.Point{TG: 99, TA: 200})  // == LAST(R): not strictly greater -> out-of-order
	e.Put(series.Point{TG: 50, TA: 201})  // out-of-order
	e.Put(series.Point{TG: 100, TA: 202}) // in-order
	d := e.Stats().Sub(st0)
	if d.OutOfOrderPoints != 2 || d.InOrderPoints != 1 {
		t.Errorf("classification: in=%d ooo=%d, want 1/2", d.InOrderPoints, d.OutOfOrderPoints)
	}
}

func TestGet(t *testing.T) {
	ps := genWorkload(2000, 50, dist.NewLognormal(4, 1.5), 7)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64})
	defer e.Close()
	ingest(t, e, ps)
	for _, p := range ps[:200] {
		got, ok, _ := e.Get(p.TG)
		if !ok || got.V != p.V {
			t.Fatalf("Get(%d) = %v, %v", p.TG, got, ok)
		}
	}
	if _, ok, _ := e.Get(-12345); ok {
		t.Error("Get of absent key returned a point")
	}
}

func TestScanRange(t *testing.T) {
	ps := genWorkload(3000, 50, dist.NewLognormal(4, 1.5), 8)
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 64, SeqCapacity: 32})
	defer e.Close()
	ingest(t, e, ps)
	lo, hi := int64(500*50), int64(1500*50)
	got, st, _ := e.Scan(lo, hi)
	var want int
	for _, p := range ps {
		if p.TG >= lo && p.TG <= hi {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Scan[%d,%d] = %d points, want %d", lo, hi, len(got), want)
	}
	if st.ResultPoints != want {
		t.Errorf("ScanStats.ResultPoints = %d", st.ResultPoints)
	}
	if st.TablesTouched == 0 {
		t.Error("no tables touched for a mid-range scan")
	}
	if st.ReadAmplification() < 1 {
		t.Errorf("read amplification %v < 1", st.ReadAmplification())
	}
}

func TestScanEmptyRange(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 8})
	defer e.Close()
	got, st, _ := e.Scan(0, 100)
	if len(got) != 0 || st.ResultPoints != 0 {
		t.Errorf("scan of empty engine: %v, %+v", got, st)
	}
	if st.ReadAmplification() != 0 {
		t.Errorf("RA of empty result should be 0")
	}
}

func TestMaxTG(t *testing.T) {
	e := mustOpen(t, Config{Policy: Separation, MemBudget: 100, SeqCapacity: 50})
	defer e.Close()
	if _, ok := e.MaxTG(); ok {
		t.Error("empty engine has MaxTG")
	}
	e.Put(series.Point{TG: 42, TA: 42})
	if got, ok := e.MaxTG(); !ok || got != 42 {
		t.Errorf("MaxTG = %v, %v (memtable only)", got, ok)
	}
	for i := int64(43); i < 200; i++ {
		e.Put(series.Point{TG: i, TA: i})
	}
	if got, ok := e.MaxTG(); !ok || got != 199 {
		t.Errorf("MaxTG = %v, %v", got, ok)
	}
}

func TestCompactionHookReportsSubsequentPoints(t *testing.T) {
	ps := genWorkload(4000, 10, dist.NewLognormal(5, 2), 9)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64})
	defer e.Close()
	var infos []CompactionInfo
	e.OnCompaction = func(ci CompactionInfo) { infos = append(infos, ci) }
	ingest(t, e, ps)
	if len(infos) == 0 {
		t.Fatal("no compaction events")
	}
	for _, ci := range infos {
		if ci.OutputPoints != ci.MemPoints+ci.RewrittenPoints {
			t.Errorf("output %d != mem %d + rewritten %d", ci.OutputPoints, ci.MemPoints, ci.RewrittenPoints)
		}
		if ci.SubsequentPoints < ci.RewrittenPoints-ci.MemPoints-e.Config().SSTablePoints {
			t.Errorf("subsequent %d implausibly below rewritten %d", ci.SubsequentPoints, ci.RewrittenPoints)
		}
		if ci.TablesIn == 0 {
			t.Error("compaction with zero input tables")
		}
	}
}

func TestSetPolicySwitchesLive(t *testing.T) {
	ps := genWorkload(2000, 50, dist.NewLognormal(4, 1.75), 10)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64})
	defer e.Close()
	ingest(t, e, ps[:1000])
	if err := e.SetPolicy(Separation, 40); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	ingest(t, e, ps[1000:])
	if got := scanAll(e); len(got) != 2000 {
		t.Fatalf("after policy switch: %d points", len(got))
	}
	if err := e.SetPolicy(Conventional, 0); err != nil {
		t.Fatalf("switch back: %v", err)
	}
	if err := e.SetPolicy(Separation, 9999); err == nil {
		t.Error("invalid seq capacity accepted")
	}
}

func TestCloseIdempotentAndRejectsPut(t *testing.T) {
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 8})
	e.Put(series.Point{TG: 1, TA: 1})
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := e.Put(series.Point{TG: 2, TA: 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if err := e.FlushAll(); !errors.Is(err, ErrClosed) {
		t.Errorf("FlushAll after close: %v", err)
	}
}

func TestTableSpans(t *testing.T) {
	ps := genWorkload(1000, 50, dist.NewLognormal(4, 1.5), 11)
	e := mustOpen(t, Config{Policy: Conventional, MemBudget: 64})
	defer e.Close()
	ingest(t, e, ps)
	spans := e.TableSpans()
	if len(spans) == 0 {
		t.Fatal("no table spans")
	}
	var total int
	for _, s := range spans {
		if s.MinTG > s.MaxTG || s.Points <= 0 {
			t.Errorf("bad span %+v", s)
		}
		total += s.Points
	}
	nt, np := e.RunTables()
	if nt != len(spans) || np != total {
		t.Errorf("RunTables (%d,%d) disagrees with spans (%d,%d)", nt, np, len(spans), total)
	}
}
