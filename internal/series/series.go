// Package series defines the time-series data point (Definition 1 of the
// paper) and slice helpers shared by the memtable, sstable, and engine
// layers.
package series

import "sort"

// Point is a time-series data point ⟨t_g, t_a, v⟩: the generation
// timestamp (unique; it identifies the point and is the LSM sort key), the
// arrival timestamp assigned by the database, and the carried value.
// Timestamps are integer time units (the paper uses milliseconds).
type Point struct {
	TG int64   // generation time
	TA int64   // arrival time
	V  float64 // value
}

// Delay returns t_a − t_g (Definition 2).
func (p Point) Delay() int64 { return p.TA - p.TG }

// SortByTG sorts points ascending by generation time in place.
func SortByTG(ps []Point) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].TG < ps[j].TG })
}

// SortByTA sorts points ascending by arrival time in place, breaking ties
// by generation time so ingestion order is deterministic.
func SortByTA(ps []Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].TA != ps[j].TA {
			return ps[i].TA < ps[j].TA
		}
		return ps[i].TG < ps[j].TG
	})
}

// IsSortedByTG reports whether ps is nondecreasing in generation time.
func IsSortedByTG(ps []Point) bool {
	for i := 1; i < len(ps); i++ {
		if ps[i].TG < ps[i-1].TG {
			return false
		}
	}
	return true
}

// MergeByTG merges two slices each sorted by generation time into one
// sorted slice. When both sides contain a point with the same generation
// time, the point from b (the newer data) wins, matching LSM upsert
// semantics where later writes shadow earlier ones.
func MergeByTG(a, b []Point) []Point {
	return MergeByTGInto(make([]Point, 0, len(a)+len(b)), a, b)
}

// MergeByTGInto merges a and b (as MergeByTG) appending into dst, which
// must not alias a or b. Callers that merge in a loop pass a slice with
// spare capacity to avoid re-allocating the output on every merge.
func MergeByTGInto(dst, a, b []Point) []Point {
	out := dst
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].TG < b[j].TG:
			out = append(out, a[i])
			i++
		case a[i].TG > b[j].TG:
			out = append(out, b[j])
			j++
		default:
			out = append(out, b[j]) // b shadows a
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// CountOutOfOrder returns, for points processed in arrival order, how many
// are out-of-order per Definition 3 against a run whose latest generation
// time starts at initialLast (use MinInt64-like sentinel for "empty") and
// advances as in-order points land. This is the paper's notion where the
// on-disk frontier moves forward with ingestion, used to characterize
// dataset disorder (e.g. "7.05% of S-9 is out-of-order").
//
// The model is the conventional single-buffer pipeline with buffer size
// bufCap: the frontier advances each time the buffer fills (all buffered
// points become part of the run).
func CountOutOfOrder(ps []Point, bufCap int, initialLast int64) int {
	if bufCap < 1 {
		bufCap = 1
	}
	last := initialLast
	var ooo int
	var buffered []Point
	for _, p := range ps {
		if p.TG < last {
			ooo++
		}
		buffered = append(buffered, p)
		if len(buffered) >= bufCap {
			for _, q := range buffered {
				if q.TG > last {
					last = q.TG
				}
			}
			buffered = buffered[:0]
		}
	}
	return ooo
}
