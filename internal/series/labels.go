package series

import (
	"errors"
	"fmt"
	"hash/fnv"
	"regexp"
	"sort"
	"strings"
)

// Labels is the tag model for series discovery: a series is addressed not
// only by its storage name but by a set of key=value pairs
// ("region=eu, device=d042, metric=engine_temp"). The set is kept sorted
// by name with unique names, and hashes to a canonical, storage-safe
// series ID — two Labels with the same pairs always resolve to the same
// underlying series, regardless of construction order.
//
// The paper's separation analysis is per-series; Labels is what lets the
// multi-series layer (internal/tsdb) serve the ROADMAP's
// millions-of-series fleet, where queries say "every engine_temp series
// in region eu" instead of naming engines one by one.

// Label is one key=value pair.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Labels is a sorted-by-name set of pairs with unique names. Build with
// NewLabels (or sort+validate by hand) so the canonical-ID and lookup
// invariants hold.
type Labels []Label

// MetaName is the reserved label under which a name-only series (created
// by name, no tags) is registered in the index, so matcher queries can
// still discover it: {__name__="root.dev042.temp"}.
const MetaName = "__name__"

// labelNameRE constrains label names to the usual identifier shape
// (Prometheus-compatible). MetaName is also accepted.
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// ErrBadLabels is the typed error family for invalid label sets.
var ErrBadLabels = errors.New("series: invalid labels")

const (
	// maxLabels bounds one series' label count.
	maxLabels = 32
	// maxLabelLen bounds one name or value's byte length.
	maxLabelLen = 256
)

// NewLabels builds a validated, sorted Labels from a map.
func NewLabels(m map[string]string) (Labels, error) {
	ls := make(Labels, 0, len(m))
	for k, v := range m {
		ls = append(ls, Label{Name: k, Value: v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	return ls, nil
}

// MustLabels is NewLabels for tests and examples; it panics on invalid
// input.
func MustLabels(m map[string]string) Labels {
	ls, err := NewLabels(m)
	if err != nil {
		panic(err)
	}
	return ls
}

// Validate checks sortedness, uniqueness, name shape, and size bounds.
func (ls Labels) Validate() error {
	if len(ls) == 0 {
		return fmt.Errorf("%w: empty label set", ErrBadLabels)
	}
	if len(ls) > maxLabels {
		return fmt.Errorf("%w: %d labels exceeds limit %d", ErrBadLabels, len(ls), maxLabels)
	}
	for i, l := range ls {
		if !labelNameRE.MatchString(l.Name) {
			return fmt.Errorf("%w: bad label name %q", ErrBadLabels, l.Name)
		}
		if l.Value == "" {
			return fmt.Errorf("%w: empty value for label %q", ErrBadLabels, l.Name)
		}
		if len(l.Name) > maxLabelLen || len(l.Value) > maxLabelLen {
			return fmt.Errorf("%w: label %q exceeds %d bytes", ErrBadLabels, l.Name, maxLabelLen)
		}
		if i > 0 {
			if ls[i-1].Name == l.Name {
				return fmt.Errorf("%w: duplicate label name %q", ErrBadLabels, l.Name)
			}
			if ls[i-1].Name > l.Name {
				return fmt.Errorf("%w: labels not sorted (%q after %q)", ErrBadLabels, l.Name, ls[i-1].Name)
			}
		}
	}
	return nil
}

// Get returns the value of the named label and whether it is present.
func (ls Labels) Get(name string) (string, bool) {
	i := sort.Search(len(ls), func(i int) bool { return ls[i].Name >= name })
	if i < len(ls) && ls[i].Name == name {
		return ls[i].Value, true
	}
	return "", false
}

// Map copies the pairs into a map (for JSON responses).
func (ls Labels) Map() map[string]string {
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Name] = l.Value
	}
	return m
}

// Equal reports pairwise equality.
func (ls Labels) Equal(other Labels) bool {
	if len(ls) != len(other) {
		return false
	}
	for i := range ls {
		if ls[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders {a="b",c="d"} for logs and errors.
func (ls Labels) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// ID returns the canonical series identifier for the label set: "t"
// followed by 32 hex digits of a 128-bit FNV-derived digest over the
// length-prefixed canonical encoding. The result always satisfies the
// tsdb series-name constraint, so labeled series reuse the entire
// name-addressed storage machinery (catalog, WAL, manifests) unchanged.
func (ls Labels) ID() string {
	// Two independent 64-bit FNV-1a streams over the same canonical
	// encoding, the second perturbed per-byte, give a 128-bit identifier:
	// collisions are out of reach for any realistic fleet, and the
	// construction needs nothing outside the standard library.
	h1 := fnv.New64a()
	h2 := fnv.New64a()
	var lenBuf [8]byte
	writeStr := func(s string) {
		n := len(s)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h1.Write(lenBuf[:])
		h1.Write([]byte(s))
		h2.Write(lenBuf[:])
		for i := 0; i < len(s); i++ {
			h2.Write([]byte{s[i] ^ 0xa5})
		}
	}
	for _, l := range ls {
		writeStr(l.Name)
		writeStr(l.Value)
	}
	return fmt.Sprintf("t%016x%016x", h1.Sum64(), h2.Sum64())
}
