package series

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDelay(t *testing.T) {
	p := Point{TG: 100, TA: 150}
	if p.Delay() != 50 {
		t.Errorf("Delay = %d", p.Delay())
	}
}

func TestSortByTG(t *testing.T) {
	ps := []Point{{TG: 3}, {TG: 1}, {TG: 2}}
	SortByTG(ps)
	if !IsSortedByTG(ps) {
		t.Errorf("not sorted: %v", ps)
	}
}

func TestSortByTATieBreak(t *testing.T) {
	ps := []Point{{TG: 5, TA: 10}, {TG: 2, TA: 10}, {TG: 9, TA: 5}}
	SortByTA(ps)
	want := []Point{{TG: 9, TA: 5}, {TG: 2, TA: 10}, {TG: 5, TA: 10}}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("got %v, want %v", ps, want)
		}
	}
}

func TestIsSortedByTG(t *testing.T) {
	if !IsSortedByTG(nil) {
		t.Error("nil should be sorted")
	}
	if !IsSortedByTG([]Point{{TG: 1}, {TG: 1}, {TG: 2}}) {
		t.Error("nondecreasing should be sorted")
	}
	if IsSortedByTG([]Point{{TG: 2}, {TG: 1}}) {
		t.Error("decreasing should not be sorted")
	}
}

func TestMergeByTGDisjoint(t *testing.T) {
	a := []Point{{TG: 1}, {TG: 3}}
	b := []Point{{TG: 2}, {TG: 4}}
	got := MergeByTG(a, b)
	if len(got) != 4 || !IsSortedByTG(got) {
		t.Fatalf("merge: %v", got)
	}
}

func TestMergeByTGShadowing(t *testing.T) {
	a := []Point{{TG: 1, V: 1}, {TG: 2, V: 1}}
	b := []Point{{TG: 2, V: 2}}
	got := MergeByTG(a, b)
	if len(got) != 2 {
		t.Fatalf("merge: %v", got)
	}
	if got[1].V != 2 {
		t.Errorf("duplicate key should take b's value, got %v", got[1])
	}
}

func TestMergeByTGEmptySides(t *testing.T) {
	a := []Point{{TG: 1}}
	if got := MergeByTG(a, nil); len(got) != 1 {
		t.Errorf("merge with nil b: %v", got)
	}
	if got := MergeByTG(nil, a); len(got) != 1 {
		t.Errorf("merge with nil a: %v", got)
	}
	if got := MergeByTG(nil, nil); len(got) != 0 {
		t.Errorf("merge of nils: %v", got)
	}
}

func TestMergePropertySortedAndComplete(t *testing.T) {
	prop := func(as, bs []int16) bool {
		a := make([]Point, len(as))
		for i, v := range as {
			a[i] = Point{TG: int64(v) * 2} // even keys
		}
		b := make([]Point, len(bs))
		for i, v := range bs {
			b[i] = Point{TG: int64(v)*2 + 1} // odd keys: disjoint from a
		}
		SortByTG(a)
		SortByTG(b)
		a = dedupe(a)
		b = dedupe(b)
		got := MergeByTG(a, b)
		if !IsSortedByTG(got) {
			return false
		}
		return len(got) == len(a)+len(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func dedupe(ps []Point) []Point {
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p.TG != ps[i-1].TG {
			out = append(out, p)
		}
	}
	return out
}

func TestCountOutOfOrderAllInOrder(t *testing.T) {
	ps := make([]Point, 100)
	for i := range ps {
		ps[i] = Point{TG: int64(i), TA: int64(i)}
	}
	if got := CountOutOfOrder(ps, 10, math.MinInt64); got != 0 {
		t.Errorf("in-order stream: %d out-of-order", got)
	}
}

func TestCountOutOfOrderSingleLatePoint(t *testing.T) {
	// Points 0..9 arrive, fill buffer of 10 (frontier -> 9), then an old
	// point with TG 5 arrives: exactly one out-of-order point.
	ps := make([]Point, 0, 11)
	for i := 0; i < 10; i++ {
		ps = append(ps, Point{TG: int64(i)})
	}
	ps = append(ps, Point{TG: 5})
	if got := CountOutOfOrder(ps, 10, math.MinInt64); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}

func TestCountOutOfOrderBufferedLateNotCounted(t *testing.T) {
	// A late point arriving before any flush is still in-order per
	// Definition 3 (the run on disk is empty).
	ps := []Point{{TG: 10}, {TG: 5}, {TG: 20}}
	if got := CountOutOfOrder(ps, 100, math.MinInt64); got != 0 {
		t.Errorf("got %d, want 0 before any flush", got)
	}
}

func TestCountOutOfOrderDegenerateBufCap(t *testing.T) {
	ps := []Point{{TG: 2}, {TG: 1}}
	// bufCap clamps to 1: frontier is 2 when TG=1 arrives.
	if got := CountOutOfOrder(ps, 0, math.MinInt64); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}

func TestCountOutOfOrderRandomizedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 200
		ps := make([]Point, n)
		for i := range ps {
			tg := int64(i * 10)
			ta := tg + rng.Int63n(300)
			ps[i] = Point{TG: tg, TA: ta}
		}
		SortByTA(ps)
		bufCap := 1 + rng.Intn(32)
		got := CountOutOfOrder(ps, bufCap, math.MinInt64)
		want := naiveCountOOO(ps, bufCap)
		if got != want {
			t.Fatalf("trial %d: got %d, want %d", trial, got, want)
		}
	}
}

// naiveCountOOO is an independent reimplementation used as a test oracle.
func naiveCountOOO(ps []Point, bufCap int) int {
	last := int64(math.MinInt64)
	count := 0
	var buf []Point
	for _, p := range ps {
		if p.TG < last {
			count++
		}
		buf = append(buf, p)
		if len(buf) == bufCap {
			sort.Slice(buf, func(i, j int) bool { return buf[i].TG < buf[j].TG })
			if buf[len(buf)-1].TG > last {
				last = buf[len(buf)-1].TG
			}
			buf = nil
		}
	}
	return count
}
