package tsdb

import (
	"testing"

	"repro/internal/index"
	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
)

// The fault-injection sweep: run a fixed workload (series creation, in- and
// out-of-order writes crossing flush boundaries, a drop, more writes)
// against a FaultBackend, crash it after the Nth backend write for every N,
// reopen on the undamaged inner backend, and require the recovered state to
// equal the acknowledged writes — nothing lost, nothing invented, no
// duplicates.

type faultOp struct {
	kind string // "create", "put", "drop"
	s    string
	p    series.Point
	ls   series.Labels // non-nil create: labeled registration (s = ls.ID())
}

func faultWorkload() []faultOp {
	var ops []faultOp
	ops = append(ops, faultOp{kind: "create", s: "alpha"})
	for i := int64(0); i < 12; i++ {
		tg := i
		if i%5 == 3 {
			tg = i - 2 // out-of-order upsert of an earlier point
		}
		ops = append(ops, faultOp{kind: "put", s: "alpha", p: series.Point{TG: tg, TA: i, V: float64(100 + i)}})
	}
	for i := int64(0); i < 6; i++ { // auto-created
		ops = append(ops, faultOp{kind: "put", s: "beta", p: series.Point{TG: i * 2, TA: i, V: float64(200 + i)}})
	}
	ops = append(ops, faultOp{kind: "drop", s: "beta"})
	for i := int64(0); i < 3; i++ { // stays WAL-only (3 < MemBudget)
		ops = append(ops, faultOp{kind: "put", s: "gamma", p: series.Point{TG: i, TA: i, V: float64(300 + i)}})
	}
	for i := int64(12); i < 18; i++ { // heavy out-of-order: forces merges
		ops = append(ops, faultOp{kind: "put", s: "alpha", p: series.Point{TG: i % 7, TA: i, V: float64(400 + i)}})
	}
	// Labeled registrations and a labeled drop: the crash sweep must keep
	// the tag index a subset of the catalog through every torn catalog
	// write, and recovery must rebuild matchable postings for survivors.
	lsEU := series.MustLabels(map[string]string{"region": "eu", "device": "d0"})
	lsUS := series.MustLabels(map[string]string{"region": "us", "device": "d1"})
	ops = append(ops, faultOp{kind: "create", s: lsEU.ID(), ls: lsEU})
	ops = append(ops, faultOp{kind: "create", s: lsUS.ID(), ls: lsUS})
	for i := int64(0); i < 4; i++ {
		ops = append(ops, faultOp{kind: "put", s: lsEU.ID(), p: series.Point{TG: i, TA: i, V: float64(500 + i)}})
	}
	ops = append(ops, faultOp{kind: "put", s: lsUS.ID(), p: series.Point{TG: 0, TA: 0, V: 600}})
	ops = append(ops, faultOp{kind: "drop", s: lsUS.ID()})
	ops = append(ops, faultOp{kind: "put", s: lsEU.ID(), p: series.Point{TG: 1, TA: 9, V: 501.5}}) // upsert after the drop
	return ops
}

// ackState tracks exactly what the DB acknowledged before the crash.
type ackState struct {
	acked       map[string]map[int64]float64 // series -> tg -> last acked value
	created     map[string]bool              // series acknowledged to exist
	attempted   map[string]bool              // series any op ever targeted
	dropped     map[string]bool              // DropSeries returned nil
	dropUnknown map[string]bool              // DropSeries errored: outcome unknown
	labels      map[string]series.Labels     // labels attempted per labeled series
	inflight    *faultOp                     // the op that failed, if any
}

func runFaultWorkload(db *DB) *ackState {
	st := &ackState{
		acked:       map[string]map[int64]float64{},
		created:     map[string]bool{},
		attempted:   map[string]bool{},
		dropped:     map[string]bool{},
		dropUnknown: map[string]bool{},
		labels:      map[string]series.Labels{},
	}
	for _, o := range faultWorkload() {
		o := o
		st.attempted[o.s] = true
		switch o.kind {
		case "create":
			if o.ls != nil {
				st.labels[o.s] = o.ls
				id, err := db.CreateSeriesLabeled(o.ls)
				if err != nil {
					st.inflight = &o
					return st
				}
				if id != o.s {
					panic("labeled create returned unexpected ID " + id)
				}
			} else if err := db.CreateSeries(o.s); err != nil {
				st.inflight = &o
				return st
			}
			st.created[o.s] = true
		case "put":
			if err := db.Put(o.s, o.p); err != nil {
				st.inflight = &o
				return st
			}
			st.created[o.s] = true
			if st.acked[o.s] == nil {
				st.acked[o.s] = map[int64]float64{}
			}
			st.acked[o.s][o.p.TG] = o.p.V
		case "drop":
			if err := db.DropSeries(o.s); err != nil {
				st.dropUnknown[o.s] = true
				st.inflight = &o
				return st
			}
			st.dropped[o.s] = true
		}
	}
	return st
}

// verifyRecovered asserts the reopened DB matches the acknowledged state.
func verifyRecovered(t *testing.T, budget int64, db *DB, st *ackState) {
	t.Helper()
	live := map[string]bool{}
	for _, s := range db.Series() {
		live[s] = true
		if !st.attempted[s] {
			t.Fatalf("budget %d: recovered series %q was never written by the workload", budget, s)
		}
		if st.dropped[s] {
			t.Fatalf("budget %d: series %q resurrected after acknowledged drop", budget, s)
		}
	}
	for s := range st.created {
		if st.dropped[s] || st.dropUnknown[s] {
			continue
		}
		if !live[s] {
			t.Fatalf("budget %d: acknowledged series %q lost after crash", budget, s)
		}
	}
	for s := range live {
		pts, _, err := db.Scan(s, -1<<40, 1<<40)
		if err != nil {
			t.Fatalf("budget %d: Scan(%s): %v", budget, s, err)
		}
		got := map[int64]float64{}
		for i, p := range pts {
			if i > 0 && pts[i-1].TG >= p.TG {
				t.Fatalf("budget %d: %s: duplicate/unsorted TG %d in scan", budget, s, p.TG)
			}
			got[p.TG] = p.V
		}
		want := st.acked[s]
		for tg, v := range want {
			gv, ok := got[tg]
			if !ok {
				t.Fatalf("budget %d: %s: acknowledged point tg=%d lost", budget, s, tg)
			}
			if gv != v {
				// The in-flight op may be an upsert of the same tg whose WAL
				// record made it down before the crash.
				if st.inflight != nil && st.inflight.kind == "put" &&
					st.inflight.s == s && st.inflight.p.TG == tg && gv == st.inflight.p.V {
					continue
				}
				t.Fatalf("budget %d: %s tg=%d: value %v, want %v", budget, s, tg, gv, v)
			}
		}
		for tg, v := range got {
			if _, ok := want[tg]; ok {
				continue
			}
			if st.inflight != nil && st.inflight.kind == "put" &&
				st.inflight.s == s && st.inflight.p.TG == tg && v == st.inflight.p.V {
				continue // unacknowledged in-flight point may legitimately survive
			}
			t.Fatalf("budget %d: %s: invented point tg=%d v=%v", budget, s, tg, v)
		}
	}
	verifyIndexConverged(t, budget, db, st, live)
}

// verifyIndexConverged asserts the rebuilt tag index covers exactly the
// recovered series: every survivor has a label set (explicit for labeled
// registrations, the implicit __name__ set otherwise), every survivor is
// matchable by its tags, no dropped or phantom series has postings, and
// the index holds nothing beyond the catalog.
func verifyIndexConverged(t *testing.T, budget int64, db *DB, st *ackState, live map[string]bool) {
	t.Helper()
	for s := range live {
		ls, ok := db.LabelsOf(s)
		if !ok {
			t.Fatalf("budget %d: recovered series %q missing from the tag index", budget, s)
		}
		if want, labeled := st.labels[s]; labeled {
			if !ls.Equal(want) {
				t.Fatalf("budget %d: %q recovered labels %s, want %s", budget, s, ls, want)
			}
		} else if !ls.Equal(series.Labels{{Name: series.MetaName, Value: s}}) {
			t.Fatalf("budget %d: name series %q has labels %s, want implicit __name__", budget, s, ls)
		}
		// Every label pair must lead back to the series.
		for _, l := range ls {
			m, err := index.NewMatcher(l.Name, index.OpEq, l.Value)
			if err != nil {
				t.Fatalf("budget %d: matcher %s=%s: %v", budget, l.Name, l.Value, err)
			}
			found := false
			for _, hit := range db.Match([]index.Matcher{m}) {
				if hit == s {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("budget %d: %q not matchable via %s=%q after recovery", budget, s, l.Name, l.Value)
			}
		}
	}
	// Index ⊆ catalog: same cardinality as the live set means no entry for
	// dropped or never-committed series survived the crash.
	if n := db.Index().Stats().Series; n != len(live) {
		t.Fatalf("budget %d: index holds %d series, catalog recovered %d", budget, n, len(live))
	}
}

func TestCrashAtEveryWrite(t *testing.T) {
	cfg := func(b storage.Backend) Config {
		return Config{
			Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 4, WAL: true},
			Backend:    b,
			AutoCreate: true,
		}
	}

	// Counting pass: how many backend mutations does the full workload need?
	counter := storage.NewFaultBackend(storage.NewMemBackend())
	db, err := Open(cfg(counter))
	if err != nil {
		t.Fatal(err)
	}
	if st := runFaultWorkload(db); st.inflight != nil {
		t.Fatalf("counting pass hit a fault: %+v", st.inflight)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 20 {
		t.Fatalf("workload only performed %d backend writes; too small to sweep", total)
	}

	// Sweep: crash after the k-th write, for every k. Odd budgets also tear
	// the failing append (half-written WAL record).
	for k := int64(0); k <= total; k++ {
		inner := storage.NewMemBackend()
		fb := storage.NewFaultBackend(inner)
		fb.SetBudget(k)
		fb.SetTear(k%2 == 1)
		db, err := Open(cfg(fb))
		if err != nil {
			// Crash during Open itself: the inner backend must still open
			// cleanly and be empty of user series.
			db2, err2 := Open(cfg(inner))
			if err2 != nil {
				t.Fatalf("budget %d: reopen after failed open: %v", k, err2)
			}
			if n := len(db2.Series()); n != 0 {
				t.Fatalf("budget %d: failed open left %d series behind", k, n)
			}
			db2.Close()
			continue
		}
		st := runFaultWorkload(db)
		// Crash: abandon db without Close (Close would try to flush).
		db2, err := Open(cfg(inner))
		if err != nil {
			t.Fatalf("budget %d (inflight %+v): reopen failed: %v", k, st.inflight, err)
		}
		verifyRecovered(t, k, db2, st)
		if err := db2.Close(); err != nil {
			t.Fatalf("budget %d: close recovered db: %v", k, err)
		}
	}
}
