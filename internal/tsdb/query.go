package tsdb

import (
	"sync"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/series"
)

// Multi-series query execution: QueryMatch resolves a matcher expression
// against the tag index and fans the per-series range reads across a
// bounded worker pool. Each matched series is an independent unit of work
// — its own engine, its own SSTable reads — so the fan-out overlaps their
// backend I/O; on a store with per-read latency the wall clock of an
// N-series query approaches max(series) instead of sum(series).

// QueryOptions parameterizes one QueryMatch call.
type QueryOptions struct {
	// Lo, Hi bound the generation-time range [Lo, Hi] read per series.
	Lo, Hi int64
	// Workers selects the fan-out concurrency: 0 uses the DB's shared
	// pool (Config.QueryWorkers), 1 executes sequentially in the calling
	// goroutine (the baseline the benchmark compares against), and n>1
	// runs an ephemeral pool of n workers for this query alone.
	Workers int
	// BucketWidth, when positive, downsamples each series into aggregate
	// buckets of that width (epoch-aligned: starts are multiples of the
	// width, independent of Lo) instead of returning raw points.
	BucketWidth int64
	// Limit, when positive, caps the number of matched series queried
	// (the match itself is not truncated: QueryStats.SeriesMatched still
	// reports the full set).
	Limit int
}

// SeriesResult is one matched series' slice of a QueryMatch response.
type SeriesResult struct {
	// ID is the series' canonical identifier (storage name).
	ID string
	// Labels is the label set the series is registered under.
	Labels series.Labels
	// Points holds the raw range read (nil in aggregate mode).
	Points []series.Point
	// Buckets holds the downsampled range (aggregate mode only).
	Buckets []query.Bucket
	// Stats carries the scan's read-amplification accounting.
	Stats lsm.ScanStats
	// Err records a per-series failure (e.g. the series was dropped
	// between match resolution and the read). One failing series does not
	// fail the query.
	Err error
}

// QueryStats summarizes one QueryMatch execution.
type QueryStats struct {
	// SeriesMatched is the size of the matcher resolution.
	SeriesMatched int
	// SeriesQueried is the number of series actually read (Limit may cap
	// it below SeriesMatched).
	SeriesQueried int
	// SeriesFailed counts per-series errors.
	SeriesFailed int
	// TablesTouched totals SSTables touched across all series reads.
	TablesTouched int
	// BlocksRead totals SSTable blocks fetched from storage.
	BlocksRead int64
	// PointsReturned totals result points (raw mode) across series.
	PointsReturned int
	// Workers is the fan-out concurrency the query ran with.
	Workers int
}

// fanoutCounters aggregate QueryMatch activity for the metrics endpoint.
type fanoutCounters struct {
	queries      atomic.Int64
	seriesFanned atomic.Int64
	seriesFailed atomic.Int64
}

// FanoutStats is a snapshot of the DB's QueryMatch counters.
type FanoutStats struct {
	// Queries counts QueryMatch calls served.
	Queries int64
	// SeriesFanned totals per-series read tasks executed.
	SeriesFanned int64
	// SeriesFailed totals per-series read tasks that returned an error.
	SeriesFailed int64
	// Workers is the shared pool's worker count.
	Workers int
}

// FanoutStats snapshots the QueryMatch counters.
func (db *DB) FanoutStats() FanoutStats {
	return FanoutStats{
		Queries:      db.fanout.queries.Load(),
		SeriesFanned: db.fanout.seriesFanned.Load(),
		SeriesFailed: db.fanout.seriesFailed.Load(),
		Workers:      db.qpool.Workers(),
	}
}

// QueryMatch resolves the matchers against the tag index and reads every
// matched series' range concurrently. Results arrive sorted by series ID
// (the index order), each carrying its labels, data, and scan stats;
// per-series failures are recorded in the result rather than failing the
// query, because a matcher query racing series churn is normal operation.
func (db *DB) QueryMatch(ms []index.Matcher, opts QueryOptions) ([]SeriesResult, QueryStats, error) {
	db.mu.Lock()
	closed := db.closed
	db.mu.Unlock()
	if closed {
		return nil, QueryStats{}, ErrClosed
	}
	db.fanout.queries.Add(1)

	ids := db.idx.Match(ms)
	stats := QueryStats{SeriesMatched: len(ids)}
	if opts.Limit > 0 && len(ids) > opts.Limit {
		ids = ids[:opts.Limit]
	}
	stats.SeriesQueried = len(ids)

	run, cleanup, workers := db.queryRunner(opts.Workers)
	defer cleanup()
	stats.Workers = workers

	results := make([]SeriesResult, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		i, id := i, id
		wg.Add(1)
		run(func() {
			defer wg.Done()
			results[i] = db.queryOne(id, opts)
		})
	}
	wg.Wait()

	for i := range results {
		db.fanout.seriesFanned.Add(1)
		r := &results[i]
		if r.Err != nil {
			db.fanout.seriesFailed.Add(1)
			stats.SeriesFailed++
			continue
		}
		stats.TablesTouched += r.Stats.TablesTouched
		stats.BlocksRead += r.Stats.BlocksRead
		stats.PointsReturned += r.Stats.ResultPoints
	}
	return results, stats, nil
}

// AggregateSeries downsamples one series' range [lo, hi] into
// epoch-aligned buckets of the given width. When the DB maintains
// rollups (Config.RollupWindow) and the width is a multiple of the
// rollup window, uncontested table ranges are answered from precomputed
// buckets; the stats report the split (RollupBuckets vs ResultPoints).
func (db *DB) AggregateSeries(name string, lo, hi, width int64) ([]query.Bucket, lsm.ScanStats, error) {
	var (
		bks []query.Bucket
		st  lsm.ScanStats
	)
	err := db.withSeries(name, false, func(ss *seriesState) error {
		var err error
		bks, st, err = query.Aggregate(ss.engine, lo, hi, width)
		return err
	})
	if err != nil {
		return nil, lsm.ScanStats{}, err
	}
	return bks, st, nil
}

// queryRunner picks the execution strategy for one query: inline for
// Workers==1, an ephemeral pool for an explicit count, the shared pool
// otherwise.
func (db *DB) queryRunner(workers int) (run func(func()), cleanup func(), n int) {
	switch {
	case workers == 1:
		return func(fn func()) { fn() }, func() {}, 1
	case workers > 1:
		p := query.NewPool(workers)
		return p.Run, p.Close, workers
	default:
		return db.qpool.Run, func() {}, db.qpool.Workers()
	}
}

// queryOne reads one matched series' range. It tolerates the series
// evaporating mid-query (dropped, or evicted and reopened by another
// task) via the usual withSeries retry.
func (db *DB) queryOne(id string, opts QueryOptions) SeriesResult {
	res := SeriesResult{ID: id}
	if ls, ok := db.idx.Labels(id); ok {
		res.Labels = ls
	}
	res.Err = db.withSeries(id, false, func(st *seriesState) error {
		if opts.BucketWidth > 0 {
			bks, sc, err := query.Aggregate(st.engine, opts.Lo, opts.Hi, opts.BucketWidth)
			if err != nil {
				return err
			}
			res.Buckets, res.Stats = bks, sc
			return nil
		}
		pts, sc, err := st.engine.Scan(opts.Lo, opts.Hi)
		if err != nil {
			return err
		}
		res.Points, res.Stats = pts, sc
		return nil
	})
	return res
}
