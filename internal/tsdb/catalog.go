package tsdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"repro/internal/series"
	"repro/internal/storage"
)

// The series catalog is the durable record of which series exist. Without
// it, restart discovery depended on per-series MANIFEST objects — which are
// first written on flush, so a series whose points lived only in its WAL
// did not exist after a crash and its durably-logged data was silently
// dropped. The catalog closes that hole:
//
//   - It is committed (atomic whole-object Write: temp-then-rename on the
//     disk backend) BEFORE a series' engine — and therefore its WAL — can
//     come into existence. Invariant: every series with any backend object
//     is in the catalog, so Open recovers manifest-backed, WAL-only, and
//     empty series alike.
//   - DropSeries removes the name from the catalog first (the commit
//     point), then deletes the series' objects. A crash in between leaves
//     orphaned objects that the next Open detects and finishes removing.
//   - The object is versioned and CRC-checked; a torn or corrupted catalog
//     fails Open loudly rather than silently serving a subset of the data.
//
// Layout of the CATALOG object:
//
//	magic "TSCATLG1" (8 bytes) | crc32(payload) u32 | payload
//
// where payload is JSON {"format":2,"version":N,"series":[...],
// "labels":{id:[{name,value},...]}} and N is a counter incremented on
// every update. Format 2 added the labels map carrying each labeled
// series' tag set; format-1 catalogs (and catalogs whose series carry no
// explicit labels) decode as name-only series, which register in the tag
// index under the implicit {__name__=<name>} label set.

const catalogName = "CATALOG"

// catalogFormat is the on-disk format generation, bumped on incompatible
// payload changes (the version field inside the payload counts updates).
// Decode accepts catalogFormatV1 too: the upgrade is additive, and the
// first catalog write after opening a v1 database migrates it forward.
const (
	catalogFormatV1 = 1
	catalogFormat   = 2
)

var catalogMagic = []byte("TSCATLG1")

// ErrCatalogCorrupt is returned by Open when the CATALOG object exists but
// fails its magic, CRC, or format checks.
var ErrCatalogCorrupt = errors.New("tsdb: catalog corrupt")

type catalogDoc struct {
	Format  int      `json:"format"`
	Version uint64   `json:"version"`
	Series  []string `json:"series"`
	// Labels maps a series ID to its tag set (format 2). Series without
	// an entry are name-only and get implicit {__name__=<name>} labels at
	// recovery; the implicit set is never persisted.
	Labels map[string]series.Labels `json:"labels,omitempty"`
}

// encodeCatalog frames doc with magic and CRC.
func encodeCatalog(doc catalogDoc) ([]byte, error) {
	payload, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("tsdb: marshal catalog: %w", err)
	}
	buf := make([]byte, 0, len(catalogMagic)+4+len(payload))
	buf = append(buf, catalogMagic...)
	crc := crc32.ChecksumIEEE(payload)
	buf = append(buf, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	return append(buf, payload...), nil
}

// decodeCatalog validates the frame and parses the payload.
func decodeCatalog(data []byte) (catalogDoc, error) {
	var doc catalogDoc
	if len(data) < len(catalogMagic)+4 {
		return doc, fmt.Errorf("%w: %d bytes", ErrCatalogCorrupt, len(data))
	}
	if !bytes.Equal(data[:len(catalogMagic)], catalogMagic) {
		return doc, fmt.Errorf("%w: bad magic", ErrCatalogCorrupt)
	}
	rest := data[len(catalogMagic):]
	wantCRC := uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24
	payload := rest[4:]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return doc, fmt.Errorf("%w: CRC mismatch", ErrCatalogCorrupt)
	}
	if err := json.Unmarshal(payload, &doc); err != nil {
		return doc, fmt.Errorf("%w: %v", ErrCatalogCorrupt, err)
	}
	switch doc.Format {
	case catalogFormatV1:
		if len(doc.Labels) > 0 {
			return doc, fmt.Errorf("%w: labels in format-1 catalog", ErrCatalogCorrupt)
		}
	case catalogFormat:
		// Every label entry must belong to a cataloged series and be a
		// valid label set — a violation means a torn or hand-damaged image
		// that CRC alone cannot catch, and admitting it would let the tag
		// index diverge from the series set it must stay a view of.
		inCatalog := make(map[string]bool, len(doc.Series))
		for _, n := range doc.Series {
			inCatalog[n] = true
		}
		for id, ls := range doc.Labels {
			if !inCatalog[id] {
				return doc, fmt.Errorf("%w: labels for uncataloged series %q", ErrCatalogCorrupt, id)
			}
			if err := ls.Validate(); err != nil {
				return doc, fmt.Errorf("%w: labels for %q: %v", ErrCatalogCorrupt, id, err)
			}
		}
	default:
		return doc, fmt.Errorf("%w: unsupported format %d", ErrCatalogCorrupt, doc.Format)
	}
	return doc, nil
}

// loadCatalog reads the catalog from the backend. found is false when no
// CATALOG object exists (a fresh or pre-catalog database).
func loadCatalog(b storage.Backend) (doc catalogDoc, found bool, err error) {
	data, err := b.Read(catalogName)
	if errors.Is(err, storage.ErrNotFound) {
		return doc, false, nil
	}
	if err != nil {
		return doc, false, fmt.Errorf("tsdb: read catalog: %w", err)
	}
	doc, err = decodeCatalog(data)
	if err != nil {
		return doc, true, err
	}
	return doc, true, nil
}

// saveCatalogLocked commits the current db.persisted set atomically,
// bumping the catalog version. Caller holds db.mu; on error the version is
// not consumed and nothing was committed (the backend Write is atomic).
func (db *DB) saveCatalogLocked() error {
	names := make([]string, 0, len(db.persisted))
	for n := range db.persisted {
		names = append(names, n)
	}
	sort.Strings(names)
	doc := catalogDoc{Format: catalogFormat, Version: db.catVersion + 1, Series: names}
	for _, n := range names {
		ls, ok := db.labels[n]
		if !ok || isImplicitLabels(n, ls) {
			// Implicit __name__ sets are derivable from the name; keep the
			// catalog minimal (and byte-identical to v1 content for pure
			// name-addressed databases).
			continue
		}
		if doc.Labels == nil {
			doc.Labels = make(map[string]series.Labels)
		}
		doc.Labels[n] = ls
	}
	data, err := encodeCatalog(doc)
	if err != nil {
		return err
	}
	if err := db.cfg.Backend.Write(catalogName, data); err != nil {
		return fmt.Errorf("tsdb: write catalog: %w", err)
	}
	db.catVersion++
	return nil
}

// seriesObjects returns the backend object names belonging to exactly the
// named series (its manifest, WAL, and table objects) — and nothing under
// any other series, including dot-nested names like name+".child".
func seriesObjects(b storage.Backend, name string) ([]string, error) {
	all, err := b.List()
	if err != nil {
		return nil, err
	}
	prefix := name + "."
	var out []string
	for _, n := range all {
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		rest := n[len(prefix):]
		if rest == "MANIFEST" || rest == "WAL" ||
			(strings.HasPrefix(rest, "sst-") && strings.HasSuffix(rest, ".tbl")) {
			out = append(out, n)
		}
	}
	return out, nil
}

// removeSeriesObjects deletes every object of the named series, returning
// the first error (remaining objects become orphans the next Open removes).
func removeSeriesObjects(b storage.Backend, name string) error {
	objs, err := seriesObjects(b, name)
	if err != nil {
		return err
	}
	for _, n := range objs {
		if err := b.Remove(n); err != nil {
			return err
		}
	}
	return nil
}

// RecoveryInfo describes what Open reconstructed from the backend — the
// restart must rebuild exactly the pre-crash acknowledged state, and this
// report makes every artifact of the crash observable.
type RecoveryInfo struct {
	// CatalogFound is false for a fresh or pre-catalog database.
	CatalogFound bool
	// CatalogVersion is the loaded catalog's update counter.
	CatalogVersion uint64
	// SeriesRecovered is the number of series reopened at Open.
	SeriesRecovered int
	// WALOnlySeries counts recovered series that had no manifest — their
	// data lived only in the WAL, the case the catalog exists to save.
	WALOnlySeries int
	// MigratedSeries lists series adopted by object discovery when no
	// catalog existed (upgrade from a pre-catalog database).
	MigratedSeries []string
	// OrphanSeriesRemoved lists series whose objects were present without
	// a catalog entry — an interrupted DropSeries, now completed.
	OrphanSeriesRemoved []string
	// WALPointsReplayed totals intact WAL records re-ingested across all
	// recovered series.
	WALPointsReplayed int64
	// TornWALs counts series whose WAL ended in a torn record (expected
	// after a crash mid-append).
	TornWALs int
	// OrphanTablesRemoved totals unreferenced SSTable objects removed by
	// the per-series engines during recovery.
	OrphanTablesRemoved int
}

// RecoveryInfo returns the report from this instance's Open. It is a
// snapshot: series created after Open do not appear.
func (db *DB) RecoveryInfo() RecoveryInfo {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.recovery
}

// recoverLocked rebuilds the series set from the backend. Called once from
// Open, before the DB is visible to any other goroutine.
func (db *DB) recoverLocked() error {
	doc, found, err := loadCatalog(db.cfg.Backend)
	if err != nil {
		return err
	}
	discovered, err := discoverSeries(db.cfg.Backend)
	if err != nil {
		return err
	}
	if db.gw != nil {
		// The shared log knows series that own no per-series objects at
		// all — a crash can leave a series' only trace as WAL records in a
		// group segment. Merge them so migration adopts them and orphan
		// detection sees them.
		discovered = mergeSorted(discovered, db.gw.SeriesNames())
	}
	db.recovery.CatalogFound = found

	if !found {
		// Pre-catalog (or fresh) database: adopt every series whose
		// objects we can see — manifest-backed, WAL-only, or known only to
		// the shared log — and write the first catalog so the next restart
		// does not depend on discovery. Migration instantiates every
		// engine even under an arbiter: each may hold a legacy private WAL
		// that must be folded into the shared log exactly once.
		for _, name := range discovered {
			db.persisted[name] = true
		}
		if len(discovered) > 0 {
			if err := db.saveCatalogLocked(); err != nil {
				return err
			}
			db.recovery.MigratedSeries = discovered
		}
		for _, name := range discovered {
			if _, err := db.createLocked(name); err != nil {
				return fmt.Errorf("tsdb: recover series %s: %w", name, err)
			}
		}
	} else {
		db.catVersion = doc.Version
		db.recovery.CatalogVersion = doc.Version
		for _, name := range doc.Series {
			db.persisted[name] = true
		}
		// Label sets must be registered before any engine instantiation so
		// createLocked indexes recovered series under their cataloged tags
		// rather than minting implicit ones.
		for id, ls := range doc.Labels {
			db.labels[id] = ls
		}
		if db.arb == nil {
			for _, name := range doc.Series {
				if _, err := db.createLocked(name); err != nil {
					return fmt.Errorf("tsdb: recover series %s: %w", name, err)
				}
			}
		}
		// With an arbiter every cataloged series stays cold: its data is
		// durable (SSTables plus shared-WAL pending) and its engine is
		// instantiated on first access, so Open's memory footprint does
		// not scale with series count.

		// Series objects without a catalog entry can only be leftovers of
		// an interrupted DropSeries (creation commits the catalog before
		// any object exists): finish the drop, loudly — including the
		// series' cursor and pending records in the shared log, which
		// would otherwise resurrect it.
		for _, name := range discovered {
			if db.persisted[name] {
				continue
			}
			if err := removeSeriesObjects(db.cfg.Backend, name); err != nil {
				return fmt.Errorf("tsdb: remove dropped series %s: %w", name, err)
			}
			if db.gw != nil {
				if err := db.gw.Forget(name); err != nil {
					return fmt.Errorf("tsdb: forget dropped series %s in wal: %w", name, err)
				}
			}
			db.recovery.OrphanSeriesRemoved = append(db.recovery.OrphanSeriesRemoved, name)
		}
	}

	// Rebuild the tag index from the recovered catalog: every persisted
	// series — resident or arbiter-cold — must be discoverable by matcher
	// queries, and the rebuilt index must answer exactly as the pre-crash
	// one did (the property test pins this parity).
	for name := range db.persisted {
		db.registerIndexLocked(name)
	}

	db.recovery.SeriesRecovered = len(db.persisted)
	for _, st := range db.series {
		rec := st.engine.RecoveryInfo()
		db.recovery.WALPointsReplayed += int64(rec.WALPointsReplayed)
		db.recovery.OrphanTablesRemoved += rec.OrphanTablesRemoved
		if rec.WALTorn {
			db.recovery.TornWALs++
		}
		if !rec.ManifestFound && rec.WALPointsReplayed > 0 {
			db.recovery.WALOnlySeries++
		}
	}
	if db.arb != nil && db.gw != nil {
		// Cold series were not replayed through an engine; account their
		// shared-log pending directly so the report still describes the
		// whole database.
		manifests, err := manifestSet(db.cfg.Backend)
		if err != nil {
			return err
		}
		for name := range db.persisted {
			if _, resident := db.series[name]; resident {
				continue
			}
			n := db.gw.PendingPoints(name)
			db.recovery.WALPointsReplayed += int64(n)
			if n > 0 && !manifests[name] {
				db.recovery.WALOnlySeries++
			}
		}
	}
	if db.gw != nil {
		// Per-series replay cannot see a torn group segment (the shared
		// log already clipped it); count tears at the log level instead.
		db.recovery.TornWALs += int(db.gw.Stats().TornTails)
	}
	return nil
}

// mergeSorted returns the sorted union of two sorted name slices.
func mergeSorted(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		set[n] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// manifestSet returns the names of series owning a MANIFEST object —
// i.e. series with at least one completed flush.
func manifestSet(b storage.Backend) (map[string]bool, error) {
	all, err := b.List()
	if err != nil {
		return nil, err
	}
	const suffix = ".MANIFEST"
	set := make(map[string]bool)
	for _, n := range all {
		if len(n) > len(suffix) && strings.HasSuffix(n, suffix) {
			set[n[:len(n)-len(suffix)]] = true
		}
	}
	return set, nil
}
