// Package tsdb is the multi-series layer over the LSM engine: the shape a
// downstream user actually deploys. An IoTDB-style instance stores
// thousands of time-series (Section VI: "for each vehicle, more than two
// thousand time-series are recorded"); each series here gets its own
// engine (its own MemTables, run, and policy) inside a shared storage
// backend, and can be tuned independently — the paper's analyzer decides
// separation-or-not per workload.
package tsdb

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/analyzer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lsm"
	"repro/internal/lsm/scheduler"
	"repro/internal/query"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/wal/groupwal"
)

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("tsdb: database is closed")

// ErrNoSeries is returned when the named series does not exist and
// auto-creation is disabled.
var ErrNoSeries = errors.New("tsdb: series does not exist")

// seriesNameRE constrains series names to storage-safe identifiers
// (IoTDB-style dotted paths work: "root.vehicle42.engine_temp").
var seriesNameRE = regexp.MustCompile(`^[A-Za-z0-9_.\-]{1,128}$`)

// Config parameterizes a DB.
type Config struct {
	// Engine is the template configuration applied to every series
	// (Policy, MemBudget, SeqCapacity, SSTablePoints, WAL). Its Backend
	// field is ignored — the DB namespaces its own Backend per series.
	Engine lsm.Config
	// Backend, when non-nil, persists every series under its own prefix.
	Backend storage.Backend
	// AutoCreate makes Put create unknown series on first write.
	AutoCreate bool
	// Adaptive attaches a per-series adaptive controller (π_adaptive)
	// that profiles delays and switches each series' policy on drift.
	Adaptive bool
	// AdaptiveCheckEvery is the drift-check cadence (points per series);
	// zero selects the analyzer default.
	AdaptiveCheckEvery int64
	// BlockCacheBytes sizes the block cache shared by every series' lazy
	// SSTable readers. Zero selects DefaultBlockCacheBytes; negative
	// disables the cache (each block read decodes from the backend). Only
	// meaningful with a Backend — a memory-only DB keeps tables resident.
	BlockCacheBytes int64
	// CompactWorkers sizes the shared compaction scheduler used when
	// Engine.AsyncCompaction is set: every series engine submits its L0
	// backlog to one bounded worker pool instead of running a private
	// compactor goroutine, so background-merge concurrency is O(workers),
	// not O(series). Zero selects scheduler.DefaultWorkers(); negative
	// falls back to the legacy per-series goroutines. Ignored without
	// AsyncCompaction.
	CompactWorkers int
	// CompactBacklog overrides the scheduler's ingest-backpressure
	// threshold: once this many L0 tables are queued DB-wide, the
	// scheduler reports Overloaded and the server sheds writes. Zero
	// selects the scheduler default (workers×16); negative disables the
	// signal. Ignored without a shared scheduler.
	CompactBacklog int
	// WALShards selects the WAL wiring for a durable DB with Engine.WAL:
	// zero shares one group-commit log (internal/wal/groupwal) with
	// groupwal.DefaultShards commit streams, positive values set the
	// stream count, and a negative value falls back to the legacy
	// per-series WAL objects. With the shared log, appends from many
	// series coalesce into one fsync per commit, so the fsync rate is
	// O(shards), not O(series). The shard count is persisted on first
	// open; later opens reuse the persisted value.
	WALShards int
	// CommitWindow is how long a groupwal shard waits after the first
	// pending append before committing, trading single-append latency for
	// larger commit batches. Zero commits immediately (concurrent appends
	// still coalesce behind an in-flight commit). Ignored with the legacy
	// per-series WAL.
	CommitWindow time.Duration
	// QueryWorkers sizes the shared fan-out pool QueryMatch uses when a
	// query does not pin its own worker count: zero selects
	// query.DefaultWorkers(). Fan-out tasks are I/O-bound range reads, so
	// the pool deliberately oversubscribes the CPUs.
	QueryWorkers int
	// RollupWindow, when positive, enables compaction-time rollups for
	// every series: each persisted SSTable carries a sidecar of
	// downsampled buckets of this width (epoch-aligned), and aggregate
	// queries whose bucket width is a multiple of it are served from the
	// precomputed buckets wherever a table's range is uncontested. It is
	// a convenience override of Engine.RollupWindow applied to every
	// series engine. Zero leaves Engine.RollupWindow as-is.
	RollupWindow int64
	// MemBudgetBytes, when positive on a durable DB, activates the memory
	// arbiter (see arbiter.go): engines are instantiated lazily and
	// evicted under pressure, and the budget is split dynamically between
	// aggregate memtable memory and the shared block cache based on
	// observed write/read pressure. Zero or negative disables arbitration
	// (every series' engine stays resident). Ignored without a Backend —
	// a memory-only DB cannot evict without losing data.
	MemBudgetBytes int64
}

// DefaultBlockCacheBytes is the shared block cache capacity used when
// Config.BlockCacheBytes is zero: 32 MiB, enough to keep the working set of
// a recent-data workload hot without dominating a small deployment's heap.
const DefaultBlockCacheBytes = 32 << 20

// DB is a multi-series time-series store.
type DB struct {
	mu     sync.Mutex
	cfg    Config
	series map[string]*seriesState
	closed bool

	// persisted is the set of names committed to the durable catalog
	// (always ⊇ the series that own backend objects; see catalog.go).
	persisted  map[string]bool
	catVersion uint64
	recovery   RecoveryInfo

	// labels maps a series ID to its registered label set — explicit tags
	// for CreateSeriesLabeled series, the implicit {__name__=<name>} set
	// for name-only series. Guarded by db.mu; the catalog persists the
	// explicit entries.
	labels map[string]series.Labels

	// idx is the inverted tag index over every existing series, resident
	// or cold. Mutations happen under db.mu AFTER the catalog commit, so
	// the index is always a subset of the durable catalog (index ⊆
	// catalog); it is rebuilt from the catalog at recovery.
	idx *index.Index

	// qpool is the shared fan-out worker pool QueryMatch uses unless a
	// query pins its own concurrency; fanout aggregates its counters for
	// the metrics endpoint.
	qpool  *query.Pool
	fanout fanoutCounters

	// blockCache is shared by every series engine's lazy SSTable readers,
	// so cache capacity is a single DB-wide knob rather than per-series.
	// Nil for memory-only or cache-disabled databases.
	blockCache *cache.Cache

	// sched is the shared compaction worker pool every async engine
	// reports its L0 backlog to. Nil when async compaction is off or
	// CompactWorkers is negative (legacy per-series goroutines).
	sched *scheduler.Pool

	// gw is the shared group-commit WAL every series engine appends
	// through. Nil for memory-only, WAL-disabled, or legacy-per-series-WAL
	// (WALShards < 0) databases.
	gw *groupwal.Log

	// arb is the memory arbiter; nil unless MemBudgetBytes is set on a
	// durable DB. With an arbiter, db.series holds only RESIDENT engines —
	// persisted series may be cold (engine released) and are reopened from
	// the catalog on access.
	arb *arbiter

	// evicting holds a wait channel per series whose engine is being
	// flushed out by the arbiter; get() blocks on it so a reopen can never
	// race a closing engine onto the same backend prefix.
	evicting map[string]chan struct{}

	// damaged records series whose eviction flush failed: the engine is
	// closed, the WAL still holds the acknowledged points, but serving the
	// series again in-process could miss them — fail stop until restart.
	damaged map[string]error

	// accessClock orders series touches for coldest-first eviction.
	accessClock int64
}

type seriesState struct {
	engine *lsm.Engine
	ctl    *analyzer.AdaptiveController // nil unless cfg.Adaptive
	// lastAccess is the db.accessClock value of the latest touch; guarded
	// by db.mu.
	lastAccess int64
}

// Open creates a database, recovering every series previously persisted in
// cfg.Backend. The durable series catalog (see catalog.go) is the source
// of truth, so manifest-backed, WAL-only, and empty series all come back,
// and each series' WAL is replayed before Open returns — a restart
// reconstructs exactly the pre-crash acknowledged state. Pre-catalog
// databases are migrated by object discovery on first open.
func Open(cfg Config) (*DB, error) {
	if cfg.Engine.MemBudget < 1 {
		return nil, errors.New("tsdb: Engine.MemBudget must be >= 1")
	}
	db := &DB{
		cfg:       cfg,
		series:    make(map[string]*seriesState),
		persisted: make(map[string]bool),
		labels:    make(map[string]series.Labels),
		idx:       index.New(),
		qpool:     query.NewPool(cfg.QueryWorkers),
		evicting:  make(map[string]chan struct{}),
		damaged:   make(map[string]error),
	}
	if cfg.Backend != nil && cfg.BlockCacheBytes >= 0 {
		capBytes := cfg.BlockCacheBytes
		if capBytes == 0 {
			capBytes = DefaultBlockCacheBytes
		}
		db.blockCache = cache.New(capBytes)
	}
	if cfg.Engine.AsyncCompaction && cfg.CompactWorkers >= 0 {
		// The pool must exist before recovery: recovered series register
		// with it (and may arrive with a pending L0 backlog to queue).
		db.sched = scheduler.New(scheduler.Config{
			Workers:           cfg.CompactWorkers,
			BackpressureDepth: cfg.CompactBacklog,
		})
	}
	fail := func(err error) (*DB, error) {
		if db.gw != nil {
			db.gw.Close()
		}
		if db.sched != nil {
			db.sched.Close()
		}
		db.qpool.Close()
		return nil, err
	}
	if cfg.Backend != nil && cfg.Engine.WAL && cfg.WALShards >= 0 {
		// The shared log must exist before recovery: engines replay their
		// pending slices out of it, and catalog migration consults it.
		gw, err := groupwal.Open(groupwal.Config{
			Backend:      cfg.Backend,
			Shards:       cfg.WALShards,
			CommitWindow: cfg.CommitWindow,
		})
		if err != nil {
			return fail(err)
		}
		db.gw = gw
	}
	if cfg.Backend != nil && cfg.MemBudgetBytes > 0 {
		db.arb = newArbiter(db, cfg.MemBudgetBytes)
	}
	if cfg.Backend != nil {
		if err := db.recoverLocked(); err != nil {
			return fail(err)
		}
	}
	if db.arb != nil {
		db.arb.start()
	}
	return db, nil
}

// discoverSeries lists series prefixes by their MANIFEST and WAL objects.
// Used to migrate pre-catalog databases and to detect leftovers of an
// interrupted drop; the catalog, not discovery, is the source of truth.
func discoverSeries(b storage.Backend) ([]string, error) {
	names, err := b.List()
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, n := range names {
		for _, suffix := range []string{".MANIFEST", ".WAL"} {
			if len(n) > len(suffix) && n[len(n)-len(suffix):] == suffix {
				set[n[:len(n)-len(suffix)]] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// createLocked instantiates the engine (and controller) for a series.
// Caller holds db.mu. For a durable DB, a series not yet in the catalog is
// committed there FIRST: the engine — and therefore its WAL — may only
// come into existence after the name is durable, so a crash at any point
// leaves either no trace or a recoverable series, never an orphaned WAL.
func (db *DB) createLocked(name string) (*seriesState, error) {
	if !seriesNameRE.MatchString(name) {
		return nil, fmt.Errorf("tsdb: invalid series name %q", name)
	}
	if st, ok := db.series[name]; ok {
		return st, nil
	}
	ecfg := db.cfg.Engine
	if db.sched != nil {
		ecfg.Scheduler = db.sched
	}
	if db.cfg.RollupWindow > 0 {
		ecfg.RollupWindow = db.cfg.RollupWindow
	}
	if db.cfg.Backend != nil {
		if !db.persisted[name] {
			db.persisted[name] = true
			if err := db.saveCatalogLocked(); err != nil {
				delete(db.persisted, name)
				return nil, fmt.Errorf("tsdb: create %s: %w", name, err)
			}
		}
		ecfg.Backend = storage.NewPrefixBackend(db.cfg.Backend, name)
		ecfg.BlockCache = db.blockCache
		if db.gw != nil && ecfg.WAL {
			ecfg.Log = db.gw.SeriesLog(name)
		}
	} else {
		ecfg.Backend = nil
		ecfg.WAL = false
	}
	e, err := lsm.Open(ecfg)
	if err != nil {
		return nil, err
	}
	db.accessClock++
	st := &seriesState{engine: e, lastAccess: db.accessClock}
	if db.cfg.Adaptive {
		ctl, err := analyzer.NewAdaptiveController(e, analyzer.AdaptiveConfig{
			MemBudget:  ecfg.MemBudget,
			CheckEvery: db.cfg.AdaptiveCheckEvery,
			Seed:       int64(len(db.series) + 1),
		})
		if err != nil {
			e.Close()
			return nil, err
		}
		st.ctl = ctl
	}
	if db.sched != nil {
		db.sched.Register(name, e)
	}
	db.series[name] = st
	db.registerIndexLocked(name)
	return st, nil
}

// registerIndexLocked makes the named series discoverable by matcher
// queries: series without an explicit label set (name-addressed) get the
// implicit {__name__=<name>} labels. Caller holds db.mu, and — for a
// durable DB — the series is already committed to the catalog, so the
// index never runs ahead of it.
func (db *DB) registerIndexLocked(name string) {
	ls, ok := db.labels[name]
	if !ok {
		ls = series.Labels{{Name: series.MetaName, Value: name}}
		db.labels[name] = ls
	}
	db.idx.Add(name, ls)
}

// isImplicitLabels reports whether ls is exactly the implicit label set a
// name-only series registers under.
func isImplicitLabels(name string, ls series.Labels) bool {
	return len(ls) == 1 && ls[0].Name == series.MetaName && ls[0].Value == name
}

// CreateSeries explicitly creates a series.
func (db *DB) CreateSeries(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	_, err := db.createLocked(name)
	return err
}

// CreateSeriesLabeled registers a series addressed by its label set and
// returns the canonical series ID the data lives under. The ID is a pure
// function of the labels, so creating the same set twice is idempotent
// and returns the same ID; the labels are committed to the catalog with
// the series, and matcher queries (Match, QueryMatch) discover the series
// by any subset of its tags.
func (db *DB) CreateSeriesLabeled(ls series.Labels) (string, error) {
	if err := ls.Validate(); err != nil {
		return "", err
	}
	id := ls.ID()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return "", ErrClosed
	}
	if prev, ok := db.labels[id]; ok {
		if !prev.Equal(ls) {
			// A 128-bit digest collision (or a hand-crafted name that
			// happens to equal a label hash). Refuse rather than silently
			// interleaving two series' points.
			return "", fmt.Errorf("tsdb: series ID %s already registered under %s", id, prev)
		}
		if _, err := db.createLocked(id); err != nil {
			return "", err
		}
		return id, nil
	}
	db.labels[id] = ls
	if _, err := db.createLocked(id); err != nil {
		// Roll the label registration back only if nothing durable or
		// resident exists — if the catalog committed but the engine open
		// failed, the series exists and keeps its labels.
		if !db.persisted[id] {
			if _, resident := db.series[id]; !resident {
				delete(db.labels, id)
			}
		}
		return "", err
	}
	return id, nil
}

// DropSeries removes a series and its data. The commit point is the
// catalog update: once DropSeries returns nil the series will not exist
// after a restart, even if deleting its objects was interrupted (the next
// Open detects and removes the leftovers). It returns ErrNoSeries when the
// series does not exist.
func (db *DB) DropSeries(name string) error {
	db.mu.Lock()
	for {
		if db.closed {
			db.mu.Unlock()
			return ErrClosed
		}
		ch, ok := db.evicting[name]
		if !ok {
			break
		}
		db.mu.Unlock()
		<-ch
		db.mu.Lock()
	}
	st, resident := db.series[name]
	if !resident && !db.persisted[name] {
		// With an arbiter a persisted series may be cold (no engine); it
		// still exists and must still be droppable.
		db.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSeries, name)
	}
	// Deregister from the tag index BEFORE the catalog commit and restore
	// on failure: the index must stay ⊆ the catalog at every instant, and
	// the label entry must leave the catalog image with the series (the
	// save below persists db.labels).
	droppedLabels, hadLabels := db.labels[name]
	if hadLabels {
		db.idx.Remove(name)
		delete(db.labels, name)
	}
	if db.cfg.Backend != nil && db.persisted[name] {
		delete(db.persisted, name)
		if err := db.saveCatalogLocked(); err != nil {
			db.persisted[name] = true
			if hadLabels {
				db.labels[name] = droppedLabels
				db.idx.Add(name, droppedLabels)
			}
			db.mu.Unlock()
			return fmt.Errorf("tsdb: drop %s: %w", name, err)
		}
	}
	delete(db.series, name)
	delete(db.damaged, name)
	db.mu.Unlock()
	// The drop is committed; what follows is cleanup. Close errors are
	// irrelevant (the data is being deleted — what matters is that Close
	// always stops the engine's goroutines and detaches its WAL), and
	// object-removal leftovers are finished by the next Open (which also
	// re-forgets the series in the shared WAL).
	if resident {
		st.engine.Close()
		if db.sched != nil {
			db.sched.Unregister(st.engine)
		}
	}
	if db.gw != nil {
		if err := db.gw.Forget(name); err != nil && !errors.Is(err, groupwal.ErrClosed) {
			return fmt.Errorf("tsdb: drop %s: forget in wal: %w", name, err)
		}
	}
	if db.cfg.Backend != nil {
		if err := removeSeriesObjects(db.cfg.Backend, name); err != nil {
			return fmt.Errorf("tsdb: drop %s: cleanup: %w", name, err)
		}
	}
	return nil
}

// get returns the series state, creating it when create is set. With the
// arbiter active, a persisted-but-cold series (engine evicted or never
// instantiated) is reopened here regardless of create — the catalog makes
// the reopen cheap — and a series mid-eviction is waited for first, so two
// engines can never serve the same backend prefix.
func (db *DB) get(name string, create bool) (*seriesState, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for {
		if db.closed {
			return nil, ErrClosed
		}
		if err, ok := db.damaged[name]; ok {
			return nil, fmt.Errorf("tsdb: series %s failed its eviction flush (restart to recover): %w", name, err)
		}
		if st, ok := db.series[name]; ok {
			db.accessClock++
			st.lastAccess = db.accessClock
			return st, nil
		}
		ch, ok := db.evicting[name]
		if !ok {
			break
		}
		db.mu.Unlock()
		<-ch
		db.mu.Lock()
	}
	if !create && !db.persisted[name] {
		return nil, fmt.Errorf("%w: %s", ErrNoSeries, name)
	}
	return db.createLocked(name)
}

// withSeries runs f against the named series' engine, retrying when the
// arbiter evicted the engine between the lookup and the call (the engine
// returns lsm.ErrClosed; the next get reopens it). Without an arbiter an
// ErrClosed engine is a real shutdown and surfaces as-is. The retry bound
// only guards against a pathological evict-reopen livelock.
func (db *DB) withSeries(name string, create bool, f func(*seriesState) error) error {
	for attempt := 0; ; attempt++ {
		st, err := db.get(name, create)
		if err != nil {
			return err
		}
		err = f(st)
		if err != nil && errors.Is(err, lsm.ErrClosed) && db.arb != nil && attempt < 8 {
			continue
		}
		return err
	}
}

// Put writes one point into the named series.
func (db *DB) Put(name string, p series.Point) error {
	return db.withSeries(name, db.cfg.AutoCreate, func(st *seriesState) error {
		if st.ctl != nil {
			return st.ctl.Put(p)
		}
		return st.engine.Put(p)
	})
}

// PutBatch writes points into the named series in order, amortizing lock
// acquisition and (with a WAL) logging the whole batch as one framed
// append. With an adaptive controller attached, points route through it
// one at a time so delay profiling stays exact.
func (db *DB) PutBatch(name string, ps []series.Point) error {
	return db.withSeries(name, db.cfg.AutoCreate, func(st *seriesState) error {
		if st.ctl != nil {
			for _, p := range ps {
				if err := st.ctl.Put(p); err != nil {
					return err
				}
			}
			return nil
		}
		return st.engine.PutBatch(ps)
	})
}

// Scan returns the named series' points in [lo, hi].
func (db *DB) Scan(name string, lo, hi int64) (pts []series.Point, stats lsm.ScanStats, err error) {
	err = db.withSeries(name, false, func(st *seriesState) error {
		var ierr error
		pts, stats, ierr = st.engine.Scan(lo, hi)
		return ierr
	})
	return pts, stats, err
}

// SeriesIterator returns a streaming k-way merge iterator over the named
// series' points in [lo, hi]. The iterator works on an immutable snapshot
// taken under an O(1) critical section, so callers can stream arbitrarily
// large ranges (network responses, aggregation folds) without holding any
// engine lock or materializing the result; its Stats() carry the same
// read-amplification accounting as Scan.
func (db *DB) SeriesIterator(name string, lo, hi int64) (*lsm.MergeIterator, error) {
	st, err := db.get(name, false)
	if err != nil {
		return nil, err
	}
	return st.engine.NewIterator(lo, hi), nil
}

// Get returns the point at generation time tg in the named series.
func (db *DB) Get(name string, tg int64) (p series.Point, ok bool, err error) {
	err = db.withSeries(name, false, func(st *seriesState) error {
		var ierr error
		p, ok, ierr = st.engine.Get(tg)
		return ierr
	})
	return p, ok, err
}

// BlockCache exposes the shared block cache, nil when disabled (memory-only
// DB or BlockCacheBytes < 0). Used by tests and the metrics endpoint.
func (db *DB) BlockCache() *cache.Cache { return db.blockCache }

// Index exposes the inverted tag index (never nil). The server reads its
// Stats for the lsmd_index_* metrics families.
func (db *DB) Index() *index.Index { return db.idx }

// Match resolves a conjunction of label matchers to the sorted IDs of the
// series whose label sets satisfy every predicate. Name-only series
// participate through their implicit __name__ label.
func (db *DB) Match(ms []index.Matcher) []string { return db.idx.Match(ms) }

// LabelsOf returns the label set a series is registered under — explicit
// tags or the implicit __name__ set — and whether the series exists.
func (db *DB) LabelsOf(name string) (series.Labels, bool) { return db.idx.Labels(name) }

// Compactions exposes the shared compaction scheduler, nil when async
// compaction is off or per-series legacy compactors are in use. The server
// consults it for ingest backpressure and scheduler metrics.
func (db *DB) Compactions() *scheduler.Pool { return db.sched }

// CacheStats returns the shared block cache's counters and whether a cache
// is attached at all.
func (db *DB) CacheStats() (cache.Stats, bool) {
	if db.blockCache == nil {
		return cache.Stats{}, false
	}
	return db.blockCache.Stats(), true
}

// Series returns the sorted series names — resident engines plus, with an
// arbiter, persisted series whose engines are currently cold. It returns
// nil once the database is closed.
func (db *DB) Series() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	set := make(map[string]bool, len(db.series)+len(db.persisted))
	for n := range db.series {
		set[n] = true
	}
	for n := range db.persisted {
		set[n] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SeriesStats describes one series' state for monitoring.
type SeriesStats struct {
	Name   string
	Policy lsm.PolicyKind
	SeqCap int
	Stats  lsm.Stats
	// Resident reports whether the series currently has a live engine.
	// Without an arbiter every series is resident; with one, a cold series
	// (engine evicted or never instantiated) reports the template policy
	// and zero counters — its data is on the backend, not in memory.
	Resident bool
	// Levels describes the engine's on-disk levels L1..Lk (structure plus
	// per-level compaction counters). Nil for cold series.
	Levels []lsm.LevelStats
	// Decision is the analyzer's current choice (Adaptive mode only).
	Decision *core.Decision
}

// Stats returns per-series statistics, sorted by name — resident engines
// plus cold persisted series. It returns nil once the database is closed
// (the engines' counters are no longer meaningful, and reading them would
// race with Close).
func (db *DB) Stats() []SeriesStats {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	set := make(map[string]bool, len(db.series)+len(db.persisted))
	for n := range db.series {
		set[n] = true
	}
	for n := range db.persisted {
		set[n] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	states := make([]*seriesState, len(names)) // nil entry = cold
	for i, n := range names {
		states[i] = db.series[n]
	}
	template := db.cfg.Engine
	db.mu.Unlock()

	out := make([]SeriesStats, len(names))
	for i, st := range states {
		if st == nil {
			out[i] = SeriesStats{
				Name:   names[i],
				Policy: template.Policy,
				SeqCap: template.SeqCapacity,
			}
			continue
		}
		cfg := st.engine.Config()
		s := SeriesStats{
			Name:     names[i],
			Policy:   cfg.Policy,
			SeqCap:   cfg.SeqCapacity,
			Stats:    st.engine.Stats(),
			Resident: true,
			Levels:   st.engine.LevelStats(),
		}
		if st.ctl != nil {
			if dec, ok := st.ctl.Current(); ok {
				s.Decision = &dec
			}
		}
		out[i] = s
	}
	return out
}

// TotalWA returns the database-wide write amplification (total points
// written across series over total ingested). It returns 0 once the
// database is closed.
func (db *DB) TotalWA() float64 {
	var ingested, written int64
	for _, s := range db.Stats() {
		ingested += s.Stats.PointsIngested
		written += s.Stats.PointsWritten
	}
	if ingested == 0 {
		return 0
	}
	return float64(written) / float64(ingested)
}

// SetPolicy switches one series' policy by hand (Adaptive mode manages
// this automatically).
func (db *DB) SetPolicy(name string, kind lsm.PolicyKind, seqCap int) error {
	return db.withSeries(name, false, func(st *seriesState) error {
		return st.engine.SetPolicy(kind, seqCap)
	})
}

// FlushAll flushes every resident series. Cold series (arbiter mode) have
// nothing buffered — their eviction flush already persisted everything.
func (db *DB) FlushAll() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	names := make([]string, 0, len(db.series))
	for n := range db.series {
		names = append(names, n)
	}
	sort.Strings(names)
	states := make([]*seriesState, len(names))
	for i, n := range names {
		states[i] = db.series[n]
	}
	db.mu.Unlock()
	for i, st := range states {
		if err := st.engine.FlushAll(); err != nil {
			return fmt.Errorf("tsdb: flush %s: %w", names[i], err)
		}
	}
	return nil
}

// Close flushes and closes every series. The database is unusable
// afterwards.
func (db *DB) Close() error {
	// The arbiter stops first, outside db.mu: its loop takes db.mu during
	// rebalance, and stop() joins the goroutine. After stop() no eviction
	// is in flight, so the resident snapshot below is complete.
	if db.arb != nil {
		db.arb.stop()
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	states := make([]*seriesState, 0, len(db.series))
	for _, st := range db.series {
		states = append(states, st)
	}
	db.mu.Unlock()
	var firstErr error
	for _, st := range states {
		if err := st.engine.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// After the engines: a draining engine depends on pool workers for
	// progress, so the pool must outlive every engine Close.
	if db.sched != nil {
		db.sched.Close()
	}
	// Last: every engine Close above checkpointed its cursor through the
	// shared log, so the log shuts down with nothing pending.
	if db.gw != nil {
		db.gw.Close()
	}
	// In-flight QueryMatch fan-outs see db.closed and finish fast; Close
	// joins the workers so no pool goroutine outlives the DB.
	db.qpool.Close()
	return firstErr
}

// EvictSeries releases one resident series' engine: buffered points are
// flushed to SSTables (advancing the series' WAL cursor), the engine is
// closed, and the series becomes cold — the next access reopens it from
// the catalog. The arbiter calls this under memory pressure; it is
// exported so tests can force the transition deterministically. Evicting
// an unknown, cold, or mid-eviction series is a no-op.
//
// If the eviction flush fails the series is marked damaged and every
// later access fails until the process restarts: the shared WAL still
// holds its acknowledged points, but serving a reopened engine that
// raced a half-flushed one could silently miss them. Fail-stop matches
// the engine's own sticky-background-error philosophy.
func (db *DB) EvictSeries(name string) error {
	db.mu.Lock()
	st, ok := db.series[name]
	if !ok || db.closed {
		db.mu.Unlock()
		return nil
	}
	if _, busy := db.evicting[name]; busy {
		db.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	db.evicting[name] = ch
	delete(db.series, name)
	db.mu.Unlock()

	err := st.engine.Close()
	if db.sched != nil {
		db.sched.Unregister(st.engine)
	}

	db.mu.Lock()
	if err != nil {
		db.damaged[name] = err
	}
	delete(db.evicting, name)
	close(ch)
	db.mu.Unlock()
	if err != nil {
		return fmt.Errorf("tsdb: evict %s: %w", name, err)
	}
	return nil
}

// GroupWAL exposes the shared group-commit log, nil when the DB is
// memory-only, WAL-disabled, or on the legacy per-series WAL.
func (db *DB) GroupWAL() *groupwal.Log { return db.gw }

// WALStats returns the shared group-commit log's counters and whether a
// shared log is attached at all.
func (db *DB) WALStats() (groupwal.Stats, bool) {
	if db.gw == nil {
		return groupwal.Stats{}, false
	}
	return db.gw.Stats(), true
}

// ArbiterStats returns the memory arbiter's state and whether an arbiter
// is active at all.
func (db *DB) ArbiterStats() (ArbiterStats, bool) {
	if db.arb == nil {
		return ArbiterStats{}, false
	}
	return db.arb.statsSnapshot(), true
}

// RebalanceNow runs one synchronous arbiter pass (a no-op without an
// arbiter). Tests use it to make pressure decisions deterministic instead
// of waiting out the ticker.
func (db *DB) RebalanceNow() {
	if db.arb != nil {
		db.arb.rebalance()
	}
}

// DropBefore applies retention to every series: points with generation
// time below cutoff are removed. It returns the total points removed.
func (db *DB) DropBefore(cutoff int64) (int, error) {
	total := 0
	for _, name := range db.Series() {
		st, err := db.get(name, false)
		if err != nil {
			return total, err
		}
		n, err := st.engine.DropBefore(cutoff)
		total += n
		if err != nil {
			return total, fmt.Errorf("tsdb: retention on %s: %w", name, err)
		}
	}
	return total, nil
}
