package tsdb

import (
	"errors"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
)

func parseMs(t *testing.T, expr string) []index.Matcher {
	t.Helper()
	ms, err := index.ParseMatchers(expr)
	if err != nil {
		t.Fatalf("ParseMatchers(%q): %v", expr, err)
	}
	return ms
}

// TestLabeledSeriesLifecycle walks the tentpole end to end on one DB:
// labeled registration is idempotent, matcher queries discover by tags,
// QueryMatch fans reads with correct data, and DropSeries removes the
// series from the index atomically with the catalog.
func TestLabeledSeriesLifecycle(t *testing.T) {
	b := storage.NewMemBackend()
	db, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var euIDs []string
	for i := 0; i < 4; i++ {
		ls := series.MustLabels(map[string]string{
			"region": "eu", "device": fmt.Sprintf("d%d", i), "metric": "temp",
		})
		id, err := db.CreateSeriesLabeled(ls)
		if err != nil {
			t.Fatal(err)
		}
		// Idempotent re-registration returns the same ID.
		id2, err := db.CreateSeriesLabeled(ls)
		if err != nil || id2 != id {
			t.Fatalf("re-create: id %s vs %s, err %v", id2, id, err)
		}
		euIDs = append(euIDs, id)
		for tg := int64(0); tg < 10; tg++ {
			if err := db.Put(id, series.Point{TG: tg, TA: tg, V: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	usID, err := db.CreateSeriesLabeled(series.MustLabels(map[string]string{
		"region": "us", "device": "d0", "metric": "temp",
	}))
	if err != nil {
		t.Fatal(err)
	}
	// A name-only series participates through its implicit __name__ label.
	if err := db.CreateSeries("root.legacy.temp"); err != nil {
		t.Fatal(err)
	}

	if got := db.Match(parseMs(t, "region=eu")); len(got) != 4 {
		t.Fatalf("region=eu matched %v", got)
	}
	if got := db.Match(parseMs(t, "metric=temp,region!=eu")); !reflect.DeepEqual(got, []string{usID}) {
		t.Fatalf("region!=eu matched %v, want [%s]", got, usID)
	}
	if got := db.Match(parseMs(t, "__name__=root.legacy.temp")); len(got) != 1 || got[0] != "root.legacy.temp" {
		t.Fatalf("__name__ match = %v", got)
	}

	results, qs, err := db.QueryMatch(parseMs(t, "region=eu,device=~d[0-9]"), QueryOptions{Lo: 0, Hi: 100})
	if err != nil {
		t.Fatal(err)
	}
	if qs.SeriesMatched != 4 || qs.SeriesQueried != 4 || qs.SeriesFailed != 0 {
		t.Fatalf("stats = %+v", qs)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("series %s: %v", r.ID, r.Err)
		}
		if len(r.Points) != 10 {
			t.Fatalf("series %s: %d points", r.ID, len(r.Points))
		}
		if v, _ := r.Labels.Get("region"); v != "eu" {
			t.Fatalf("series %s labels %s", r.ID, r.Labels)
		}
	}
	// Aggregate mode: 10 points in buckets of width 5 → 2 buckets of 5.
	results, _, err = db.QueryMatch(parseMs(t, "region=eu"), QueryOptions{Lo: 0, Hi: 100, BucketWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Buckets) != 2 || r.Buckets[0].Count != 5 {
			t.Fatalf("series %s buckets %+v", r.ID, r.Buckets)
		}
	}

	if err := db.DropSeries(euIDs[0]); err != nil {
		t.Fatal(err)
	}
	if got := db.Match(parseMs(t, "region=eu")); len(got) != 3 {
		t.Fatalf("after drop: region=eu matched %v", got)
	}
	if _, ok := db.LabelsOf(euIDs[0]); ok {
		t.Fatal("dropped series still has labels")
	}
}

// TestLabeledSeriesCrashReopenParity is the crash/reopen pin for the
// index: after an abrupt restart (no Close), the index rebuilt from the
// catalog must answer every matcher query exactly as before, and labeled
// data must be readable under the same IDs.
func TestLabeledSeriesCrashReopenParity(t *testing.T) {
	b := storage.NewMemBackend()
	db, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		id string
		ls series.Labels
	}
	var created []entry
	for r := 0; r < 3; r++ {
		for d := 0; d < 4; d++ {
			ls := series.MustLabels(map[string]string{
				"region": fmt.Sprintf("r%d", r), "device": fmt.Sprintf("d%d", d),
			})
			id, err := db.CreateSeriesLabeled(ls)
			if err != nil {
				t.Fatal(err)
			}
			created = append(created, entry{id, ls})
			if err := db.Put(id, series.Point{TG: 1, TA: 1, V: float64(r*10 + d)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.DropSeries(created[5].id); err != nil {
		t.Fatal(err)
	}
	exprs := []string{
		"region=r0", "region!=r1", "device=~d[02]", "region=r1,device=d1",
		"region=~r.*", "device!=d3", "region=",
	}
	before := make(map[string][]string)
	for _, e := range exprs {
		before[e] = db.Match(parseMs(t, e))
	}

	// Crash: reopen over the same backend without Close.
	db2, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, e := range exprs {
		if got := db2.Match(parseMs(t, e)); !reflect.DeepEqual(got, before[e]) {
			t.Fatalf("after reopen, Match(%q) = %v, want %v", e, got, before[e])
		}
	}
	for i, ent := range created {
		if i == 5 {
			continue
		}
		ls, ok := db2.LabelsOf(ent.id)
		if !ok || !ls.Equal(ent.ls) {
			t.Fatalf("labels of %s after reopen: %v (ok=%v), want %s", ent.id, ls, ok, ent.ls)
		}
		pts, _, err := db2.Scan(ent.id, 0, 10)
		if err != nil || len(pts) != 1 {
			t.Fatalf("scan %s after reopen: %d points, err %v", ent.id, len(pts), err)
		}
	}
	db.Close()
}

// TestCatalogV1Migration: a database whose CATALOG is still format 1
// (name-only) must open cleanly, expose every series through the implicit
// __name__ label, and move the catalog forward to format 2 on its next
// update without disturbing the series set.
func TestCatalogV1Migration(t *testing.T) {
	b := storage.NewMemBackend()
	v1 := catalogDoc{Format: catalogFormatV1, Version: 7, Series: []string{"root.a", "root.b"}}
	data, err := encodeCatalog(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(catalogName, data); err != nil {
		t.Fatal(err)
	}
	db, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Match(parseMs(t, "__name__=~root\\..")); len(got) != 2 {
		t.Fatalf("v1 series not indexed: %v", got)
	}
	id, err := db.CreateSeriesLabeled(series.MustLabels(map[string]string{"region": "eu"}))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	doc, found, err := loadCatalog(b)
	if err != nil || !found {
		t.Fatalf("reload catalog: found=%v err=%v", found, err)
	}
	if doc.Format != catalogFormat {
		t.Fatalf("catalog still format %d after update", doc.Format)
	}
	if len(doc.Series) != 3 || len(doc.Labels) != 1 || doc.Labels[id] == nil {
		t.Fatalf("migrated doc = %+v", doc)
	}

	db2, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Match(parseMs(t, "region=eu")); len(got) != 1 || got[0] != id {
		t.Fatalf("labeled series lost across migration reopen: %v", got)
	}
}

// TestCatalogRejectsBadLabels pins decode-side validation: label entries
// for uncataloged series, invalid label sets, and labels inside a
// format-1 image are all ErrCatalogCorrupt.
func TestCatalogRejectsBadLabels(t *testing.T) {
	enc := func(doc catalogDoc) []byte {
		data, err := encodeCatalog(doc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"labels for uncataloged series": enc(catalogDoc{
			Format: catalogFormat, Version: 1, Series: []string{"a"},
			Labels: map[string]series.Labels{"ghost": {{Name: "x", Value: "1"}}},
		}),
		"invalid label set": enc(catalogDoc{
			Format: catalogFormat, Version: 1, Series: []string{"a"},
			Labels: map[string]series.Labels{"a": {{Name: "bad name", Value: "1"}}},
		}),
		"labels in v1": enc(catalogDoc{
			Format: catalogFormatV1, Version: 1, Series: []string{"a"},
			Labels: map[string]series.Labels{"a": {{Name: "x", Value: "1"}}},
		}),
		"future format": enc(catalogDoc{Format: 3, Version: 1}),
	}
	for name, img := range cases {
		if _, err := decodeCatalog(img); !errors.Is(err, ErrCatalogCorrupt) {
			t.Errorf("%s: err = %v, want ErrCatalogCorrupt", name, err)
		}
	}
}

// FuzzIndexDecode throws corrupt catalog images at decodeCatalog: it must
// never panic, every rejection must be ErrCatalogCorrupt, and every
// accepted image must satisfy the invariants recovery relies on (format
// known, labels ⊆ series, label sets valid) — a decode that admits a
// violating image would poison the rebuilt index.
func FuzzIndexDecode(f *testing.F) {
	seed := func(doc catalogDoc) []byte {
		data, err := encodeCatalog(doc)
		if err != nil {
			panic(err)
		}
		return data
	}
	ls := series.MustLabels(map[string]string{"region": "eu", "device": "d1"})
	f.Add(seed(catalogDoc{Format: catalogFormatV1, Version: 1, Series: []string{"root.a"}}))
	f.Add(seed(catalogDoc{
		Format: catalogFormat, Version: 9, Series: []string{ls.ID(), "root.b"},
		Labels: map[string]series.Labels{ls.ID(): ls},
	}))
	f.Add(seed(catalogDoc{Format: catalogFormat, Version: 2}))
	f.Add([]byte("TSCATLG1"))
	f.Add([]byte("TSCATLG1\x00\x00\x00\x00{}"))
	f.Add([]byte("not a catalog at all"))
	f.Add([]byte{})
	// A valid frame with hostile payload bytes: CRC passes, JSON must not.
	hostile := []byte(`{"format":2,"series":["a"],"labels":{"a":[{"name":"x","value":`)
	f.Add(append(frameHeader(hostile), hostile...))

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := decodeCatalog(data)
		if err != nil {
			if !errors.Is(err, ErrCatalogCorrupt) {
				t.Fatalf("decodeCatalog: untyped error %v", err)
			}
			return
		}
		if doc.Format != catalogFormatV1 && doc.Format != catalogFormat {
			t.Fatalf("accepted unknown format %d", doc.Format)
		}
		inCatalog := make(map[string]bool, len(doc.Series))
		for _, n := range doc.Series {
			inCatalog[n] = true
		}
		for id, ls := range doc.Labels {
			if !inCatalog[id] {
				t.Fatalf("accepted labels for uncataloged %q", id)
			}
			if err := ls.Validate(); err != nil {
				t.Fatalf("accepted invalid labels for %q: %v", id, err)
			}
		}
	})
}

// frameHeader builds the magic+CRC prefix for an arbitrary payload, so
// the fuzz corpus can carry well-framed but hostile JSON.
func frameHeader(payload []byte) []byte {
	doc := append([]byte{}, catalogMagic...)
	crc := crc32.ChecksumIEEE(payload)
	return append(doc, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}
