package tsdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/workload"
)

func baseConfig() Config {
	return Config{
		Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 64},
		AutoCreate: true,
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("zero MemBudget accepted")
	}
}

func TestPutScanMultipleSeries(t *testing.T) {
	db, err := Open(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := int64(0); i < 500; i++ {
		if err := db.Put("root.v1.temp", series.Point{TG: i, TA: i, V: 1}); err != nil {
			t.Fatal(err)
		}
		if err := db.Put("root.v1.speed", series.Point{TG: i, TA: i, V: 2}); err != nil {
			t.Fatal(err)
		}
	}
	pts, _, err := db.Scan("root.v1.temp", 0, 1000)
	if err != nil || len(pts) != 500 {
		t.Fatalf("temp scan: %d, %v", len(pts), err)
	}
	for _, p := range pts {
		if p.V != 1 {
			t.Fatal("series data mixed up")
		}
	}
	if got := db.Series(); len(got) != 2 || got[0] != "root.v1.speed" {
		t.Errorf("Series = %v", got)
	}
	if p, ok, err := db.Get("root.v1.speed", 42); err != nil || !ok || p.V != 2 {
		t.Errorf("Get: %v %v %v", p, ok, err)
	}
}

func TestNoAutoCreate(t *testing.T) {
	cfg := baseConfig()
	cfg.AutoCreate = false
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put("nope", series.Point{TG: 1, TA: 1}); !errors.Is(err, ErrNoSeries) {
		t.Errorf("Put to missing series: %v", err)
	}
	if _, _, err := db.Scan("nope", 0, 1); !errors.Is(err, ErrNoSeries) {
		t.Errorf("Scan of missing series: %v", err)
	}
	if err := db.CreateSeries("yes"); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("yes", series.Point{TG: 1, TA: 1}); err != nil {
		t.Errorf("Put after CreateSeries: %v", err)
	}
}

func TestInvalidSeriesNames(t *testing.T) {
	db, _ := Open(baseConfig())
	defer db.Close()
	for _, bad := range []string{"", "a/b", "a b", "x\\y", string(make([]byte, 200))} {
		if err := db.CreateSeries(bad); err == nil {
			t.Errorf("CreateSeries(%q) accepted", bad)
		}
	}
}

func TestStatsAndTotalWA(t *testing.T) {
	db, _ := Open(baseConfig())
	defer db.Close()
	ps := workload.Synthetic(2000, 50, dist.NewLognormal(4, 1.5), 1)
	for _, p := range ps {
		db.Put("a", p)
		db.Put("b", p)
	}
	stats := db.Stats()
	if len(stats) != 2 {
		t.Fatalf("%d stats", len(stats))
	}
	for _, s := range stats {
		if s.Stats.PointsIngested != 2000 {
			t.Errorf("%s ingested %d", s.Name, s.Stats.PointsIngested)
		}
		if s.Policy != lsm.Conventional {
			t.Errorf("%s policy %v", s.Name, s.Policy)
		}
	}
	if wa := db.TotalWA(); wa < 1 {
		t.Errorf("TotalWA = %v", wa)
	}
}

func TestSetPolicyPerSeries(t *testing.T) {
	db, _ := Open(baseConfig())
	defer db.Close()
	db.CreateSeries("a")
	db.CreateSeries("b")
	if err := db.SetPolicy("a", lsm.Separation, 32); err != nil {
		t.Fatal(err)
	}
	stats := db.Stats()
	if stats[0].Policy != lsm.Separation || stats[1].Policy != lsm.Conventional {
		t.Errorf("per-series policy not independent: %+v", stats)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	backend := storage.NewMemBackend()
	cfg := baseConfig()
	cfg.Backend = backend
	cfg.Engine.WAL = true

	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := workload.Synthetic(1000, 50, dist.NewLognormal(4, 1.5), 2)
	for _, p := range ps {
		db.Put("root.a", p)
		db.Put("root.b", p)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Series(); len(got) != 2 {
		t.Fatalf("recovered series: %v", got)
	}
	pts, _, err := db2.Scan("root.a", 0, int64(1)<<40)
	if err != nil || len(pts) != 1000 {
		t.Fatalf("recovered scan: %d, %v", len(pts), err)
	}
}

func TestAdaptiveMode(t *testing.T) {
	cfg := Config{
		Engine:             lsm.Config{Policy: lsm.Conventional, MemBudget: 64},
		AutoCreate:         true,
		Adaptive:           true,
		AdaptiveCheckEvery: 2000,
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Heavy disorder: the adaptive controller should settle on pi_s.
	ps := workload.Synthetic(12000, 50, dist.NewLognormal(5, 2), 3)
	for _, p := range ps {
		if err := db.Put("s", p); err != nil {
			t.Fatal(err)
		}
	}
	stats := db.Stats()
	if stats[0].Decision == nil {
		t.Fatal("adaptive mode produced no decision")
	}
	if stats[0].Decision.Policy.String() != "pi_s" {
		t.Errorf("heavy disorder: decision %v", stats[0].Decision.Policy)
	}
	pts, _, _ := db.Scan("s", 0, int64(1)<<40)
	if len(pts) != len(ps) {
		t.Errorf("adaptive series holds %d points", len(pts))
	}
}

func TestClosedDB(t *testing.T) {
	db, _ := Open(baseConfig())
	db.Put("x", series.Point{TG: 1, TA: 1})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := db.Put("x", series.Point{TG: 2, TA: 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if err := db.CreateSeries("y"); !errors.Is(err, ErrClosed) {
		t.Errorf("CreateSeries after close: %v", err)
	}
	if got := db.Series(); got != nil {
		t.Errorf("Series after close: %v", got)
	}
	if got := db.Stats(); got != nil {
		t.Errorf("Stats after close: %v", got)
	}
	if wa := db.TotalWA(); wa != 0 {
		t.Errorf("TotalWA after close: %v", wa)
	}
}

// TestCloseRaces exercises readers racing Close (run under -race): the
// monitoring methods must observe either live data or the closed empty
// results, never a closed engine's internals.
func TestCloseRaces(t *testing.T) {
	db, _ := Open(baseConfig())
	for i := int64(0); i < 200; i++ {
		db.Put("a", series.Point{TG: i, TA: i})
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				db.Series()
				db.Stats()
				db.TotalWA()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		db.Close()
	}()
	close(start)
	wg.Wait()
}

// TestConcurrentMultiSeriesIngest drives N goroutines × M points through
// Put with AutoCreate on (run under -race): no point may be lost, and
// every per-series scan must return sorted, complete data.
func TestConcurrentMultiSeriesIngest(t *testing.T) {
	const (
		writers   = 8
		perWriter = 400
		nSeries   = 4
	)
	cfg := baseConfig()
	cfg.Engine.MemBudget = 32 // small budget: force flushes/compactions mid-race
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("root.load.s%d", g%nSeries)
			for i := 0; i < perWriter; i++ {
				// Unique TG per (writer, i); interleaved across the writers
				// sharing a series so ingestion is genuinely out of order.
				tg := int64(i)*int64(writers) + int64(g)
				if err := db.Put(name, series.Point{TG: tg, TA: tg + 5, V: float64(g)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := db.Series(); len(got) != nSeries {
		t.Fatalf("Series = %v, want %d names", got, nSeries)
	}
	perSeries := writers / nSeries * perWriter
	for s := 0; s < nSeries; s++ {
		name := fmt.Sprintf("root.load.s%d", s)
		pts, _, err := db.Scan(name, 0, int64(1)<<40)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != perSeries {
			t.Errorf("%s: %d points, want %d", name, len(pts), perSeries)
		}
		if !series.IsSortedByTG(pts) {
			t.Errorf("%s: scan not sorted by TG", name)
		}
		seen := make(map[int64]bool, len(pts))
		for _, p := range pts {
			seen[p.TG] = true
		}
		for i := 0; i < perWriter; i++ {
			for _, g := range []int{s, s + nSeries} {
				tg := int64(i)*int64(writers) + int64(g)
				if !seen[tg] {
					t.Fatalf("%s: point TG=%d lost", name, tg)
				}
			}
		}
	}
}

func TestFlushAll(t *testing.T) {
	db, _ := Open(baseConfig())
	defer db.Close()
	db.Put("a", series.Point{TG: 1, TA: 1})
	db.Put("b", series.Point{TG: 1, TA: 1})
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for _, s := range db.Stats() {
		if s.Stats.PointsWritten != 1 {
			t.Errorf("%s: %d written after FlushAll", s.Name, s.Stats.PointsWritten)
		}
	}
}

func TestDBDropBefore(t *testing.T) {
	db, _ := Open(baseConfig())
	defer db.Close()
	for i := int64(0); i < 100; i++ {
		db.Put("a", series.Point{TG: i, TA: i})
		db.Put("b", series.Point{TG: i, TA: i})
	}
	removed, err := db.DropBefore(40)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 80 {
		t.Errorf("removed %d, want 80 (40 from each series)", removed)
	}
	for _, name := range []string{"a", "b"} {
		pts, _, _ := db.Scan(name, 0, 1000)
		if len(pts) != 60 || pts[0].TG != 40 {
			t.Errorf("%s after retention: %d points", name, len(pts))
		}
	}
}
