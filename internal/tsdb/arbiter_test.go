package tsdb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
)

func arbiterConfig(b storage.Backend, budget int64) Config {
	return Config{
		Engine:         lsm.Config{Policy: lsm.Conventional, MemBudget: 4096, WAL: true},
		Backend:        b,
		AutoCreate:     true,
		MemBudgetBytes: budget,
	}
}

// TestArbiterEvictsUnderPressure: buffered points across many series exceed
// the memtable share of the budget; a rebalance pass must evict cold engines
// until the estimate fits, and the evicted series must stay readable (the
// next access reopens them from the catalog with all their data).
func TestArbiterEvictsUnderPressure(t *testing.T) {
	b := storage.NewMemBackend()
	// 64 KiB budget → memtable share at most 48 KiB → at most ~768 buffered
	// points DB-wide under the 64 B/point cost model.
	db, err := Open(arbiterConfig(b, 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const nSeries, perSeries = 8, 200 // 1600 points ≫ 768
	for s := 0; s < nSeries; s++ {
		name := fmt.Sprintf("s%d", s)
		for i := 0; i < perSeries; i++ {
			if err := db.Put(name, series.Point{TG: int64(i), TA: int64(i), V: float64(s*1000 + i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.RebalanceNow()
	db.RebalanceNow() // second pass: EWMAs settled, eviction enforced

	st, ok := db.ArbiterStats()
	if !ok {
		t.Fatal("arbiter not active")
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under %d buffered points with budget %d", nSeries*perSeries, st.BudgetBytes)
	}
	if st.ResidentSeries >= nSeries {
		t.Fatalf("all %d series still resident after eviction pass", nSeries)
	}
	if st.MemtableBytes > st.MemtableTargetBytes {
		t.Fatalf("memtable estimate %d still over target %d after rebalance", st.MemtableBytes, st.MemtableTargetBytes)
	}
	if got := st.MemtableTargetBytes + st.CacheTargetBytes; got != st.BudgetBytes {
		t.Fatalf("split %d does not sum to budget %d", got, st.BudgetBytes)
	}

	// Every series — evicted or resident — still serves all its points.
	for s := 0; s < nSeries; s++ {
		name := fmt.Sprintf("s%d", s)
		pts, _, err := db.Scan(name, 0, int64(perSeries))
		if err != nil {
			t.Fatalf("scan %s after eviction: %v", name, err)
		}
		if len(pts) != perSeries {
			t.Fatalf("%s: %d points after eviction, want %d", name, len(pts), perSeries)
		}
		for i, p := range pts {
			if p.V != float64(s*1000+i) {
				t.Fatalf("%s: point %d = %v, wrong value after cold reopen", name, i, p)
			}
		}
	}
	// Series listing still covers cold series.
	if got := len(db.Series()); got != nSeries {
		t.Fatalf("Series() lists %d names, want %d (cold series missing)", got, nSeries)
	}
}

// TestRestartEquivalenceAcrossEviction: a crash must be indistinguishable
// whether a series was flushed, WAL-only, or evicted when it hit. The
// abandoned instance's budget is cut to zero so it cannot mutate the inner
// backend after the "crash".
func TestRestartEquivalenceAcrossEviction(t *testing.T) {
	inner := storage.NewMemBackend()
	fb := storage.NewFaultBackend(inner)
	fb.SetBudget(1 << 30)
	db, err := Open(arbiterConfig(fb, 1<<20))
	if err != nil {
		t.Fatal(err)
	}

	want := map[string][]series.Point{}
	put := func(name string, n int) {
		for i := 0; i < n; i++ {
			p := series.Point{TG: int64(i), TA: int64(i), V: float64(len(name)*1000 + i)}
			if err := db.Put(name, p); err != nil {
				t.Fatalf("put %s: %v", name, err)
			}
			want[name] = append(want[name], p)
		}
	}
	put("walonly", 3)       // stays buffered: only the shared WAL has it
	put("evicted", 50)      // flushed by the eviction below
	put("flushed.big", 100) // flushed explicitly
	if err := db.EvictSeries("evicted"); err != nil {
		t.Fatalf("evict: %v", err)
	}
	st, _ := db.get("flushed.big", false)
	if err := st.engine.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Crash: freeze the old instance's backend and reopen the inner one.
	fb.SetBudget(0)
	db2, err := Open(arbiterConfig(inner, 1<<20))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	for name, pts := range want {
		got, _, err := db2.Scan(name, -1, 1<<40)
		if err != nil {
			t.Fatalf("scan %s after restart: %v", name, err)
		}
		if len(got) != len(pts) {
			t.Fatalf("%s: %d points after restart, want %d", name, len(got), len(pts))
		}
		for i := range got {
			if got[i].TG != pts[i].TG || got[i].V != pts[i].V {
				t.Fatalf("%s: point %d = %v, want %v", name, i, got[i], pts[i])
			}
		}
	}
	rec := db2.RecoveryInfo()
	if rec.SeriesRecovered != 3 {
		t.Fatalf("SeriesRecovered = %d, want 3", rec.SeriesRecovered)
	}
}

// TestArbiterEvictionRaceStress: writes and scans race engine eviction and
// reinstantiation. Run with -race in CI; functionally it asserts no write
// is lost across an evict/reopen cycle and no operation observes a closed
// engine (withSeries must absorb lsm.ErrClosed by reopening).
func TestArbiterEvictionRaceStress(t *testing.T) {
	b := storage.NewMemBackend()
	db, err := Open(arbiterConfig(b, 256<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const nSeries, perSeries = 4, 300
	for s := 0; s < nSeries; s++ {
		if err := db.CreateSeries(fmt.Sprintf("r%d", s)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, nSeries*2+1)

	for s := 0; s < nSeries; s++ {
		name := fmt.Sprintf("r%d", s)
		wg.Add(2)
		go func(name string, tag int) { // writer
			defer wg.Done()
			for i := 0; i < perSeries; i++ {
				p := series.Point{TG: int64(i), TA: int64(i), V: float64(tag*10000 + i)}
				if err := db.Put(name, p); err != nil {
					errCh <- fmt.Errorf("put %s: %w", name, err)
					return
				}
			}
		}(name, s)
		go func(name string) { // reader
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := db.Scan(name, 0, perSeries); err != nil {
					errCh <- fmt.Errorf("scan %s: %w", name, err)
					return
				}
			}
		}(name)
	}
	wg.Add(1)
	go func() { // evictor: force the cold/warm transition constantly
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := db.EvictSeries(fmt.Sprintf("r%d", i%nSeries)); err != nil {
				errCh <- fmt.Errorf("evict: %w", err)
				return
			}
			if i%10 == 0 {
				db.RebalanceNow()
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for s := 0; s < nSeries; s++ {
		name := fmt.Sprintf("r%d", s)
		pts, _, err := db.Scan(name, 0, perSeries)
		if err != nil {
			t.Fatalf("final scan %s: %v", name, err)
		}
		if len(pts) != perSeries {
			t.Fatalf("%s: %d points survived the stress, want %d", name, len(pts), perSeries)
		}
		for i, p := range pts {
			if p.V != float64(s*10000+i) {
				t.Fatalf("%s: point %d corrupted: %v", name, i, p)
			}
		}
	}
}
