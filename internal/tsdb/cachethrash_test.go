package tsdb

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/series"
	"repro/internal/storage"
)

// TestCacheThrashConcurrentReads hammers a deliberately tiny shared block
// cache — capacity of roughly one block — with concurrent Scan and Get
// traffic while the async compactor keeps retiring tables under the
// readers. Every read must stay exact under constant eviction churn (run
// with -race), and when the DB closes, every retired reader's blocks must
// be gone from the cache: no leak of dead owners.
func TestCacheThrashConcurrentReads(t *testing.T) {
	const (
		nPoints = 4000
		readers = 4
	)
	db, err := Open(Config{
		Engine: lsm.Config{
			Policy:          lsm.Conventional,
			MemBudget:       64,
			SSTablePoints:   64,
			AsyncCompaction: true,
			WAL:             false,
		},
		Backend:    storage.NewMemBackend(),
		AutoCreate: true,
		// ~one 64-point block (64*24+64 bytes) fits; everything else
		// evicts, so concurrent scans constantly thrash each other.
		BlockCacheBytes: 2048,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	c := db.BlockCache()
	if c == nil {
		t.Fatal("durable DB has no block cache")
	}
	if c.Capacity() != 2048 {
		t.Fatalf("cache capacity = %d, want 2048", c.Capacity())
	}

	var written atomic.Int64 // points 0..written-1 are acknowledged
	var stop atomic.Bool
	var readerErr atomic.Value
	fail := func(format string, args ...any) {
		if readerErr.Load() == nil {
			readerErr.Store("reader: " + fmt.Sprintf(format, args...))
		}
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				n := written.Load()
				if n == 0 {
					continue
				}
				if r%3 == 2 {
					// Aggregate leg: fold buckets off a streaming iterator.
					it, err := db.SeriesIterator("s", 0, math.MaxInt64)
					if err != nil {
						fail("SeriesIterator: %v", err)
						return
					}
					const width = 512
					buckets := query.AggregateIter(it, width)
					if err := it.Err(); err != nil {
						fail("aggregate iterator: %v", err)
						return
					}
					var total int64
					for _, b := range buckets {
						total += b.Count
						// V == TG in this workload, so every bucket's value
						// range must lie inside its window.
						if b.Min < float64(b.Start) || b.Max >= float64(b.Start+width) || b.Min > b.Max {
							fail("bucket %+v out of range", b)
							return
						}
					}
					if total < n {
						fail("aggregate saw %d points, %d acknowledged", total, n)
						return
					}
				} else if r%2 == 0 {
					pts, _, err := db.Scan("s", math.MinInt64+1, math.MaxInt64)
					if err != nil {
						fail("Scan: %v", err)
						return
					}
					// Points are written in TG order, so everything
					// acknowledged before the scan started must be present
					// and exact.
					if int64(len(pts)) < n {
						fail("scan saw %d points, %d acknowledged", len(pts), n)
						return
					}
					for i, p := range pts {
						if p.TG != int64(i) || p.V != float64(i) {
							fail("scan point %d = %+v", i, p)
							return
						}
					}
				} else {
					tg := n - 1
					p, ok, err := db.Get("s", tg)
					if err != nil {
						fail("Get(%d): %v", tg, err)
						return
					}
					if !ok || p.V != float64(tg) {
						fail("Get(%d) = %+v, %v", tg, p, ok)
						return
					}
				}
			}
		}(r)
	}

	for i := int64(0); i < nPoints && !stop.Load(); i++ {
		if err := db.Put("s", series.Point{TG: i, TA: i, V: float64(i)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		written.Store(i + 1)
	}
	stop.Store(true)
	wg.Wait()
	if msg := readerErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Final exactness after the churn settles.
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	pts, st, err := db.Scan("s", math.MinInt64+1, math.MaxInt64)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	if len(pts) != nPoints {
		t.Fatalf("final scan: %d points, want %d", len(pts), nPoints)
	}
	for i, p := range pts {
		if p.TG != int64(i) || p.V != float64(i) {
			t.Fatalf("final scan point %d = %+v", i, p)
		}
	}
	if st.BlocksRead+st.BlocksCached == 0 {
		t.Fatal("final scan touched no blocks — lazy read path not exercised")
	}
	// The cache respected its byte bound throughout; spot-check now.
	if cs := c.Stats(); cs.Bytes > c.Capacity() {
		t.Fatalf("cache over capacity: %d > %d", cs.Bytes, c.Capacity())
	}

	// Closing the DB retires every reader; their blocks must leave the
	// cache — a retired owner's blocks lingering would be a leak.
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if cs := c.Stats(); cs.Bytes != 0 || cs.Entries != 0 {
		t.Fatalf("cache not empty after Close: %+v", cs)
	}
	if owners := c.Owners(); len(owners) != 0 {
		t.Fatalf("cache still holds blocks for owners %v after Close", owners)
	}
}
