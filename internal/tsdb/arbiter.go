package tsdb

import (
	"sort"
	"sync"
	"time"
)

// The memory arbiter is the DB-wide answer to a question each engine
// cannot see alone: with thousands of series sharing one process, how
// much of the memory budget should hold write buffers (memtables) and
// how much should hold the read path (the shared block cache)? The
// arbiter measures both pressures, splits Config.MemBudgetBytes between
// them, resizes the cache, and evicts the coldest engines whenever the
// aggregate memtable footprint overruns its share. Evicted series stay
// in the catalog and reopen transparently on the next access.

// bytesPerBufferedPoint approximates the resident cost of one memtable
// point: 24 bytes of series.Point plus map-bucket, ordering-index, and
// allocator overhead across the engine's C0/Cseq/Cnonseq structures.
// Deliberately pessimistic — the arbiter must bound the heap, so
// overestimating cost errs toward staying under budget.
const bytesPerBufferedPoint = 64

// arbiterInterval is the background rebalance cadence. One second is slow
// enough to be invisible in profiles and fast enough that a write burst
// cannot overrun the budget by more than a flush's worth of points.
const arbiterInterval = time.Second

// ewmaAlpha weights the newest pressure observation. 0.5 reacts within a
// few passes without letting one burst monopolize the split.
const ewmaAlpha = 0.5

// Memtable-share clamp: neither side is ever starved completely, so a
// pure-write workload still keeps a warm cache slice for compaction reads
// and a pure-read workload can still absorb an ingest burst.
const (
	minMemShare = 0.25
	maxMemShare = 0.75
)

// ArbiterStats is a point-in-time snapshot of the arbiter for /stats and
// /metrics.
type ArbiterStats struct {
	// BudgetBytes is the fixed DB-wide budget being divided.
	BudgetBytes int64
	// MemtableBytes is the estimated aggregate memtable footprint at the
	// last pass (resident engines × buffered points × cost model).
	MemtableBytes int64
	// MemtableTargetBytes and CacheTargetBytes are the current split;
	// they sum to BudgetBytes.
	MemtableTargetBytes int64
	CacheTargetBytes    int64
	// WritePressure and ReadPressure are the EWMAs the split is derived
	// from (points ingested per pass vs cache lookups per pass).
	WritePressure float64
	ReadPressure  float64
	// ResidentSeries counts series with live engines right now.
	ResidentSeries int
	// ColdSeries counts persisted series currently without an engine.
	ColdSeries int
	// Evictions and Rebalances are lifetime counters.
	Evictions  int64
	Rebalances int64
}

type arbiter struct {
	db     *DB
	budget int64

	// mu guards the pressure model and counters. Lock order: a.mu may be
	// taken before db.mu (rebalance, statsSnapshot); never the reverse.
	mu           sync.Mutex
	writeEWMA    float64
	readEWMA     float64
	lastIngested int64
	lastLookups  int64
	memShare     float64
	memTarget    int64
	cacheTarget  int64
	memBytes     int64
	evictions    int64
	rebalances   int64

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

func newArbiter(db *DB, budget int64) *arbiter {
	a := &arbiter{
		db:       db,
		budget:   budget,
		memShare: 0.5, // even split until pressure says otherwise
		stopCh:   make(chan struct{}),
	}
	a.memTarget = int64(float64(budget) * a.memShare)
	a.cacheTarget = budget - a.memTarget
	return a
}

// start launches the background rebalance loop. Called once, after
// recovery, so the first pass sees the recovered resident set.
func (a *arbiter) start() {
	a.done = make(chan struct{})
	if a.db.blockCache != nil {
		a.db.blockCache.SetCapacity(a.cacheTarget)
	}
	go a.loop()
}

func (a *arbiter) loop() {
	defer close(a.done)
	t := time.NewTicker(arbiterInterval)
	defer t.Stop()
	for {
		select {
		case <-a.stopCh:
			return
		case <-t.C:
			a.rebalance()
		}
	}
}

// stop terminates and joins the loop. Idempotent; safe when start was
// never called (failed Open).
func (a *arbiter) stop() {
	a.stopOnce.Do(func() { close(a.stopCh) })
	if a.done != nil {
		<-a.done
	}
}

// residentSnapshot returns the resident series coldest-first, plus each
// one's buffered-point count. Engines are sampled outside db.mu — the
// counts are advisory, and BufferedPoints takes the engine's own lock.
type residency struct {
	name       string
	st         *seriesState
	lastAccess int64
	buffered   int
}

func (a *arbiter) residentSnapshot() []residency {
	a.db.mu.Lock()
	out := make([]residency, 0, len(a.db.series))
	for name, st := range a.db.series {
		out = append(out, residency{name: name, st: st, lastAccess: st.lastAccess})
	}
	a.db.mu.Unlock()
	for i := range out {
		out[i].buffered = out[i].st.engine.BufferedPoints()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lastAccess < out[j].lastAccess })
	return out
}

// rebalance runs one arbitration pass: refresh the pressure EWMAs, move
// the budget split, resize the cache, and evict coldest-first until the
// estimated memtable footprint fits its share. Exported to tests through
// DB.RebalanceNow; also the ticker body.
func (a *arbiter) rebalance() {
	a.mu.Lock()
	defer a.mu.Unlock()

	res := a.residentSnapshot()

	// Write pressure: points ingested since the last pass, summed over
	// resident engines. Eviction drops an engine's counters out of the
	// sum, so the raw delta can go negative — clamp, don't model it.
	var ingested int64
	var bufferedTotal int64
	for _, r := range res {
		ingested += r.st.engine.Stats().PointsIngested
		bufferedTotal += int64(r.buffered)
	}
	wDelta := float64(ingested - a.lastIngested)
	if wDelta < 0 {
		wDelta = 0
	}
	a.lastIngested = ingested

	// Read pressure: block-cache lookups (hits+misses) since the last
	// pass. The cache outlives evictions, so this delta is monotonic.
	var rDelta float64
	if a.db.blockCache != nil {
		cs := a.db.blockCache.Stats()
		lookups := cs.Hits + cs.Misses
		rDelta = float64(lookups - a.lastLookups)
		a.lastLookups = lookups
	}

	a.writeEWMA = ewmaAlpha*wDelta + (1-ewmaAlpha)*a.writeEWMA
	a.readEWMA = ewmaAlpha*rDelta + (1-ewmaAlpha)*a.readEWMA
	if tot := a.writeEWMA + a.readEWMA; tot > 0 {
		share := a.writeEWMA / tot
		if share < minMemShare {
			share = minMemShare
		}
		if share > maxMemShare {
			share = maxMemShare
		}
		a.memShare = share
	}
	a.memTarget = int64(float64(a.budget) * a.memShare)
	a.cacheTarget = a.budget - a.memTarget
	if a.db.blockCache != nil {
		a.db.blockCache.SetCapacity(a.cacheTarget)
	}

	// Enforce the memtable share: evict coldest engines until the
	// estimate fits. Eviction flushes buffered points to SSTables and
	// advances the series' WAL cursor, so the memory really is released.
	a.memBytes = bufferedTotal * bytesPerBufferedPoint
	for _, r := range res {
		if a.memBytes <= a.memTarget {
			break
		}
		if a.db.EvictSeries(r.name) == nil {
			a.evictions++
		}
		a.memBytes -= int64(r.buffered) * bytesPerBufferedPoint
	}
	a.rebalances++
}

func (a *arbiter) statsSnapshot() ArbiterStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := ArbiterStats{
		BudgetBytes:         a.budget,
		MemtableBytes:       a.memBytes,
		MemtableTargetBytes: a.memTarget,
		CacheTargetBytes:    a.cacheTarget,
		WritePressure:       a.writeEWMA,
		ReadPressure:        a.readEWMA,
		Evictions:           a.evictions,
		Rebalances:          a.rebalances,
	}
	a.db.mu.Lock()
	s.ResidentSeries = len(a.db.series)
	for n := range a.db.persisted {
		if _, ok := a.db.series[n]; !ok {
			s.ColdSeries++
		}
	}
	a.db.mu.Unlock()
	return s
}
