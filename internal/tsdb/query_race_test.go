package tsdb

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
)

// TestQueryMatchConcurrentStress hammers the fan-out read path from every
// direction at once — QueryMatch readers against PutBatch writers, a
// create/drop churn on short-lived labeled series, and forced arbiter
// eviction of the series being read — and pins three guarantees:
//
//   - acknowledged-prefix visibility: each writer appends strictly
//     sequential TGs, so a query that starts after n points were acked must
//     return at least those n points, in order, with the written values;
//   - per-series failures never poison a query: dropping a series between
//     index match and engine read surfaces as SeriesResult.Err, not as a
//     QueryMatch error or a panic;
//   - shutdown is clean: after Close the worker pool, compactors, and
//     arbiter are gone (no goroutine leak).
//
// Run it under -race; the interleavings are the point.
func TestQueryMatchConcurrentStress(t *testing.T) {
	const nStable = 6
	batches, batchSize := 30, 20
	churnRounds := 30
	if testing.Short() {
		batches, churnRounds = 12, 10
	}

	baseline := runtime.NumGoroutine()
	db, err := Open(Config{
		Engine:  lsm.Config{Policy: lsm.Conventional, MemBudget: 64, WAL: true},
		Backend: storage.NewMemBackend(),
		// Small budget so the arbiter is live and evictions are cheap to
		// force; the explicit EvictSeries loop below does the real churn.
		MemBudgetBytes: 96 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	stable := make([]string, nStable)
	for i := range stable {
		id, err := db.CreateSeriesLabeled(series.MustLabels(map[string]string{
			"role": "stable", "device": fmt.Sprintf("d%d", i),
		}))
		if err != nil {
			t.Fatal(err)
		}
		stable[i] = id
	}
	idOf := make(map[string]int, nStable)
	for i, id := range stable {
		idOf[id] = i
	}
	stableMs := parseMs(t, "role=stable")
	churnMs := parseMs(t, "role=churn")

	// acked[i] counts the points writer i has had acknowledged.
	acked := make([]atomic.Int64, nStable)
	writersDone := make(chan struct{})
	var writersLeft atomic.Int64
	writersLeft.Store(nStable)

	var wg sync.WaitGroup
	for i := 0; i < nStable; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if writersLeft.Add(-1) == 0 {
					close(writersDone)
				}
			}()
			for b := 0; b < batches; b++ {
				pts := make([]series.Point, batchSize)
				for k := range pts {
					j := b*batchSize + k
					pts[k] = series.Point{TG: int64(j), TA: int64(j), V: float64(i*1_000_000 + j)}
				}
				if err := db.PutBatch(stable[i], pts); err != nil {
					t.Errorf("writer %d batch %d: %v", i, b, err)
					return
				}
				acked[i].Add(int64(batchSize))
			}
		}(i)
	}

	// Queriers: verify the acked prefix of every stable series on every
	// pass, until the writers finish.
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for {
				select {
				case <-writersDone:
					return
				default:
				}
				before := make([]int64, nStable)
				for i := range before {
					before[i] = acked[i].Load()
				}
				res, qs, err := db.QueryMatch(stableMs, QueryOptions{Lo: -1 << 40, Hi: 1 << 40})
				if err != nil {
					t.Errorf("querier %d: QueryMatch: %v", q, err)
					return
				}
				if qs.SeriesMatched != nStable {
					t.Errorf("querier %d: matched %d stable series, want %d", q, qs.SeriesMatched, nStable)
					return
				}
				for _, row := range res {
					i, ok := idOf[row.ID]
					if !ok {
						t.Errorf("querier %d: row for unknown series %s", q, row.ID)
						return
					}
					if row.Err != nil {
						t.Errorf("querier %d: stable series %s failed: %v", q, row.ID, row.Err)
						return
					}
					// Writers append TG 0,1,2,... in order, so the visible
					// set is always a prefix and must cover the acked count
					// observed before the query started.
					if int64(len(row.Points)) < before[i] {
						t.Errorf("querier %d: series %d shows %d points, %d were acked before the query",
							q, i, len(row.Points), before[i])
						return
					}
					for j, p := range row.Points {
						if p.TG != int64(j) || p.V != float64(i*1_000_000+j) {
							t.Errorf("querier %d: series %d point %d = (tg=%d v=%g), want (tg=%d v=%d)",
								q, i, j, p.TG, p.V, j, i*1_000_000+j)
							return
						}
					}
				}
			}
		}(q)
	}

	// Churners: short-lived labeled series created, written, queried, and
	// dropped while the readers run. Per-series errors on these are fine
	// (a drop can land between index match and engine read); query-level
	// errors are not.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < churnRounds; r++ {
				id, err := db.CreateSeriesLabeled(series.MustLabels(map[string]string{
					"role": "churn", "worker": fmt.Sprintf("w%d", w), "round": fmt.Sprintf("r%d", r),
				}))
				if err != nil {
					t.Errorf("churner %d round %d: create: %v", w, r, err)
					return
				}
				if err := db.Put(id, series.Point{TG: 1, TA: 1, V: float64(r)}); err != nil {
					t.Errorf("churner %d round %d: put: %v", w, r, err)
					return
				}
				if _, _, err := db.QueryMatch(churnMs, QueryOptions{Lo: 0, Hi: 10}); err != nil {
					t.Errorf("churner %d round %d: query: %v", w, r, err)
					return
				}
				if err := db.DropSeries(id); err != nil {
					t.Errorf("churner %d round %d: drop: %v", w, r, err)
					return
				}
			}
		}(w)
	}

	// Evictor: force arbiter eviction of the series being read and written,
	// so QueryMatch's evict-reopen retry path actually runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-writersDone:
				return
			default:
			}
			if err := db.EvictSeries(stable[i%nStable]); err != nil {
				t.Errorf("evictor: %v", err)
				return
			}
			db.RebalanceNow()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	if t.Failed() {
		db.Close()
		return
	}

	// Quiesced parity: the fan-out result must now equal a direct scan of
	// every stable series, and every point must have survived the churn.
	res, qs, err := db.QueryMatch(stableMs, QueryOptions{Lo: -1 << 40, Hi: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	total := batches * batchSize
	if qs.SeriesQueried != nStable || qs.SeriesFailed != 0 || qs.PointsReturned != nStable*total {
		t.Fatalf("final stats = %+v, want %d series x %d points", qs, nStable, total)
	}
	for _, row := range res {
		i := idOf[row.ID]
		direct, _, err := db.Scan(row.ID, -1<<40, 1<<40)
		if err != nil {
			t.Fatalf("final scan %s: %v", row.ID, err)
		}
		if len(row.Points) != total || len(direct) != total {
			t.Fatalf("series %d: fan-out %d points, direct %d, want %d", i, len(row.Points), len(direct), total)
		}
		for j := range direct {
			if row.Points[j] != direct[j] {
				t.Fatalf("series %d point %d: fan-out %+v != direct %+v", i, j, row.Points[j], direct[j])
			}
		}
	}
	// All churn series were dropped; none may linger in index or catalog.
	if left := db.Match(churnMs); len(left) != 0 {
		t.Fatalf("churn series leaked past their drops: %v", left)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed DB degrades, it does not panic.
	if _, _, err := db.QueryMatch(stableMs, QueryOptions{}); err != ErrClosed {
		t.Fatalf("QueryMatch after Close = %v, want ErrClosed", err)
	}
	// No goroutine leak: fan-out pool, compactors, arbiter all joined.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueryMatchWorkerModes pins the three QueryOptions.Workers regimes —
// inline sequential, shared pool, ephemeral pool — to identical results.
func TestQueryMatchWorkerModes(t *testing.T) {
	db, err := Open(Config{
		Engine:       lsm.Config{Policy: lsm.Conventional, MemBudget: 32},
		AutoCreate:   true,
		QueryWorkers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for s := 0; s < 5; s++ {
		id, err := db.CreateSeriesLabeled(series.MustLabels(map[string]string{
			"fleet": "all", "n": fmt.Sprintf("%d", s),
		}))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			if err := db.Put(id, series.Point{TG: int64(j), TA: int64(j), V: float64(s*100 + j)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ms := parseMs(t, "fleet=all")

	type snap struct {
		res []SeriesResult
		qs  QueryStats
	}
	var runs []snap
	for _, workers := range []int{1, 0, 4} {
		res, qs, err := db.QueryMatch(ms, QueryOptions{Lo: 0, Hi: 1000, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		runs = append(runs, snap{res, qs})
	}
	if runs[0].qs.Workers != 1 || runs[1].qs.Workers != 3 || runs[2].qs.Workers != 4 {
		t.Fatalf("worker counts = %d/%d/%d, want 1/3/4",
			runs[0].qs.Workers, runs[1].qs.Workers, runs[2].qs.Workers)
	}
	for i := 1; i < len(runs); i++ {
		if len(runs[i].res) != len(runs[0].res) {
			t.Fatalf("run %d: %d rows, want %d", i, len(runs[i].res), len(runs[0].res))
		}
		for r := range runs[i].res {
			if runs[i].res[r].ID != runs[0].res[r].ID {
				t.Fatalf("run %d row %d: series %s, want %s", i, r, runs[i].res[r].ID, runs[0].res[r].ID)
			}
			if len(runs[i].res[r].Points) != len(runs[0].res[r].Points) {
				t.Fatalf("run %d row %d: %d points, want %d",
					i, r, len(runs[i].res[r].Points), len(runs[0].res[r].Points))
			}
			for p := range runs[i].res[r].Points {
				if runs[i].res[r].Points[p] != runs[0].res[r].Points[p] {
					t.Fatalf("run %d row %d point %d differs", i, r, p)
				}
			}
		}
	}
}
