package tsdb

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
)

func durableConfig(b storage.Backend) Config {
	return Config{
		Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 16, WAL: true},
		Backend:    b,
		AutoCreate: true,
	}
}

// TestWALOnlySeriesSurvivesCrashOnDisk is the acceptance test for the
// data-loss bug this catalog fixes: a series created and written but never
// flushed has no MANIFEST object, so pre-catalog discovery never saw it —
// after a crash its durably-logged points were silently dropped. It must
// now survive both a crash (no Close) and a clean close, on the disk
// backend.
func TestWALOnlySeriesSurvivesCrashOnDisk(t *testing.T) {
	dir := t.TempDir()
	d, err := storage.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(durableConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	var want []series.Point
	for i := int64(0); i < 5; i++ { // 5 points < MemBudget 16: never flushed
		p := series.Point{TG: i, TA: i + 1, V: float64(i) * 1.5}
		want = append(want, p)
		if err := db.Put("root.walonly", p); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon the DB without Close. Every acknowledged point is in
	// the WAL (appended before the ack), so reopen must reconstruct it.
	d2, err := storage.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(durableConfig(d2))
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Series(); len(got) != 1 || got[0] != "root.walonly" {
		t.Fatalf("after crash: Series() = %v, want [root.walonly]", got)
	}
	pts, _, err := db2.Scan("root.walonly", 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("after crash: Scan = %v, want %v", pts, want)
	}
	rec := db2.RecoveryInfo()
	if rec.WALOnlySeries != 1 || rec.WALPointsReplayed != 5 {
		t.Errorf("RecoveryInfo = %+v, want 1 WAL-only series with 5 replayed points", rec)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean close of an empty (never-written) series must also survive —
	// there is neither a manifest nor a WAL object, only the catalog.
	d3, _ := storage.NewDiskBackend(dir)
	db3, err := Open(durableConfig(d3))
	if err != nil {
		t.Fatal(err)
	}
	if err := db3.CreateSeries("root.empty"); err != nil {
		t.Fatal(err)
	}
	if err := db3.Close(); err != nil {
		t.Fatal(err)
	}
	d4, _ := storage.NewDiskBackend(dir)
	db4, err := Open(durableConfig(d4))
	if err != nil {
		t.Fatal(err)
	}
	defer db4.Close()
	if got := db4.Series(); !reflect.DeepEqual(got, []string{"root.empty", "root.walonly"}) {
		t.Fatalf("empty series lost: Series() = %v", got)
	}
}

// TestRestartEquivalence writes to series in three durability states —
// flushed (manifest + tables), WAL-only, and empty — then closes or
// crashes, reopens, and requires the visible state (Series, Scan, Stats
// coverage) to equal the acknowledged pre-crash state, on both backends.
func TestRestartEquivalence(t *testing.T) {
	for _, crash := range []bool{false, true} {
		for _, disk := range []bool{false, true} {
			name := fmt.Sprintf("crash=%v/disk=%v", crash, disk)
			t.Run(name, func(t *testing.T) {
				var backend storage.Backend
				var reopenBackend func() storage.Backend
				if disk {
					dir := t.TempDir()
					d, err := storage.NewDiskBackend(dir)
					if err != nil {
						t.Fatal(err)
					}
					backend = d
					reopenBackend = func() storage.Backend {
						d2, err := storage.NewDiskBackend(dir)
						if err != nil {
							t.Fatal(err)
						}
						return d2
					}
				} else {
					m := storage.NewMemBackend()
					backend = m
					reopenBackend = func() storage.Backend { return m }
				}

				db, err := Open(durableConfig(backend))
				if err != nil {
					t.Fatal(err)
				}
				acked := map[string][]series.Point{}
				put := func(s string, p series.Point) {
					if err := db.Put(s, p); err != nil {
						t.Fatalf("Put(%s, %v): %v", s, p, err)
					}
					acked[s] = append(acked[s], p)
				}
				// "flushed": 100 points incl. out-of-order rewrites (budget
				// 16 → several flushes and compactions).
				for i := int64(0); i < 100; i++ {
					tg := i
					if i%10 == 7 {
						tg = i - 5 // out-of-order: overwrite an older point
					}
					put("flushed", series.Point{TG: tg, TA: i, V: float64(i)})
				}
				// "walonly": buffered only.
				for i := int64(0); i < 6; i++ {
					put("walonly", series.Point{TG: i * 3, TA: i * 3, V: -float64(i)})
				}
				// "empty": exists, no data.
				if err := db.CreateSeries("empty"); err != nil {
					t.Fatal(err)
				}
				acked["empty"] = nil

				// Reference state = what the live DB acknowledges now.
				wantSeries := db.Series()
				wantScan := map[string][]series.Point{}
				for _, s := range wantSeries {
					pts, _, err := db.Scan(s, -1<<40, 1<<40)
					if err != nil {
						t.Fatal(err)
					}
					wantScan[s] = pts
				}

				if !crash {
					if err := db.Close(); err != nil {
						t.Fatal(err)
					}
				}
				db2, err := Open(durableConfig(reopenBackend()))
				if err != nil {
					t.Fatal(err)
				}
				defer db2.Close()
				if got := db2.Series(); !reflect.DeepEqual(got, wantSeries) {
					t.Fatalf("Series() = %v, want %v", got, wantSeries)
				}
				for _, s := range wantSeries {
					got, _, err := db2.Scan(s, -1<<40, 1<<40)
					if err != nil {
						t.Fatalf("Scan(%s): %v", s, err)
					}
					if !reflect.DeepEqual(got, wantScan[s]) {
						t.Fatalf("%s: recovered %d points, want %d (%v vs %v)", s, len(got), len(wantScan[s]), got, wantScan[s])
					}
				}
				stats := db2.Stats()
				if len(stats) != len(wantSeries) {
					t.Fatalf("Stats() has %d entries, want %d", len(stats), len(wantSeries))
				}
				for i, st := range stats {
					if st.Name != wantSeries[i] {
						t.Errorf("Stats[%d].Name = %s, want %s", i, st.Name, wantSeries[i])
					}
				}
				// The recovered DB must remain writable.
				if err := db2.Put("walonly", series.Point{TG: 1000, TA: 1000, V: 7}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestCatalogCorruptionFailsOpenLoudly(t *testing.T) {
	b := storage.NewMemBackend()
	db, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	db.Put("a", series.Point{TG: 1, TA: 1, V: 1})
	db.Close()

	data, err := b.Read("CATALOG")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the CRC must catch it.
	mut := append([]byte{}, data...)
	mut[len(mut)-2] ^= 0xff
	b.Write("CATALOG", mut)
	if _, err := Open(durableConfig(b)); !errors.Is(err, ErrCatalogCorrupt) {
		t.Errorf("corrupt catalog: Open = %v, want ErrCatalogCorrupt", err)
	}
	// Truncated object.
	b.Write("CATALOG", data[:5])
	if _, err := Open(durableConfig(b)); !errors.Is(err, ErrCatalogCorrupt) {
		t.Errorf("truncated catalog: Open = %v, want ErrCatalogCorrupt", err)
	}
	// Restore and reopen cleanly.
	b.Write("CATALOG", data)
	db2, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
}

// TestPreCatalogMigration: a database written before the catalog existed
// (no CATALOG object) is adopted via object discovery — including WAL-only
// series — and the first catalog is written so the next open no longer
// depends on discovery.
func TestPreCatalogMigration(t *testing.T) {
	b := storage.NewMemBackend()
	db, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ { // flushes: manifest exists
		db.Put("flushed", series.Point{TG: i, TA: i, V: 1})
	}
	for i := int64(0); i < 4; i++ { // WAL-only
		db.Put("walonly", series.Point{TG: i, TA: i, V: 2})
	}
	db.Close()
	// Simulate a pre-catalog database.
	if err := b.Remove("CATALOG"); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Series(); !reflect.DeepEqual(got, []string{"flushed", "walonly"}) {
		t.Fatalf("migration recovered %v", got)
	}
	rec := db2.RecoveryInfo()
	if rec.CatalogFound {
		t.Error("CatalogFound = true for pre-catalog database")
	}
	if !reflect.DeepEqual(rec.MigratedSeries, []string{"flushed", "walonly"}) {
		t.Errorf("MigratedSeries = %v", rec.MigratedSeries)
	}
	pts, _, _ := db2.Scan("walonly", -1<<40, 1<<40)
	if len(pts) != 4 {
		t.Errorf("migrated WAL-only series has %d points, want 4", len(pts))
	}
	db2.Close()

	// The migration wrote a catalog: reopening must no longer migrate.
	db3, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if rec := db3.RecoveryInfo(); !rec.CatalogFound || len(rec.MigratedSeries) != 0 {
		t.Errorf("second open after migration: %+v", rec)
	}
}

func TestDropSeriesDurable(t *testing.T) {
	b := storage.NewMemBackend()
	db, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		db.Put("keep", series.Point{TG: i, TA: i, V: 1})
		db.Put("drop", series.Point{TG: i, TA: i, V: 2})
	}
	if err := db.DropSeries("drop"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropSeries("drop"); !errors.Is(err, ErrNoSeries) {
		t.Errorf("second drop: %v", err)
	}
	if _, _, err := db.Scan("drop", 0, 1<<40); !errors.Is(err, ErrNoSeries) {
		t.Errorf("scan after drop: %v", err)
	}
	// Crash (no Close): the drop must hold across restart.
	db2, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Series(); !reflect.DeepEqual(got, []string{"keep"}) {
		t.Fatalf("after drop + crash: Series() = %v", got)
	}
	// No stray objects of the dropped series.
	names, _ := b.List()
	for _, n := range names {
		if len(n) > 5 && n[:5] == "drop." {
			t.Errorf("dropped series object survived: %s", n)
		}
	}
}

// TestDropSeriesInterruptedCleanup: the catalog commit happens first; if
// deleting the dropped series' objects is interrupted (crash), the next
// Open finishes the removal and reports it.
func TestDropSeriesInterruptedCleanup(t *testing.T) {
	b := storage.NewMemBackend()
	db, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		db.Put("keep", series.Point{TG: i, TA: i, V: 1})
		db.Put("zombie", series.Point{TG: i, TA: i, V: 2})
	}
	db.Close()

	// Simulate the crash window: rewrite the catalog without "zombie" but
	// leave all of its objects in place.
	doc, found, err := loadCatalog(b)
	if err != nil || !found {
		t.Fatalf("loadCatalog: %v found=%v", err, found)
	}
	doc.Series = []string{"keep"}
	doc.Version++
	data, err := encodeCatalog(doc)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(catalogName, data)

	db2, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Series(); !reflect.DeepEqual(got, []string{"keep"}) {
		t.Fatalf("zombie resurrected: Series() = %v", got)
	}
	rec := db2.RecoveryInfo()
	if !reflect.DeepEqual(rec.OrphanSeriesRemoved, []string{"zombie"}) {
		t.Errorf("OrphanSeriesRemoved = %v, want [zombie]", rec.OrphanSeriesRemoved)
	}
	names, _ := b.List()
	for _, n := range names {
		if len(n) > 7 && n[:7] == "zombie." {
			t.Errorf("zombie object survived cleanup: %s", n)
		}
	}
}

// TestNestedSeriesNamesUnaffectedByDrop guards the prefix subtlety:
// dropping "root.a" must not touch the dot-nested series "root.a.b".
func TestNestedSeriesNamesUnaffectedByDrop(t *testing.T) {
	b := storage.NewMemBackend()
	db, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		db.Put("root.a", series.Point{TG: i, TA: i, V: 1})
		db.Put("root.a.b", series.Point{TG: i, TA: i, V: 2})
	}
	if err := db.DropSeries("root.a"); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(durableConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Series(); !reflect.DeepEqual(got, []string{"root.a.b"}) {
		t.Fatalf("Series() = %v, want [root.a.b]", got)
	}
	pts, _, err := db2.Scan("root.a.b", -1<<40, 1<<40)
	if err != nil || len(pts) != 40 {
		t.Fatalf("nested series lost data: %d points, %v", len(pts), err)
	}
}
