package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/series"
)

// TestSharedSchedulerManySeriesStress is the scheduler stress test: 64
// series on a 2-worker pool under concurrent PutBatch/Scan/Aggregate
// traffic (run with -race). It asserts:
//
//   - background-merge goroutines are O(workers), not O(series);
//   - per-engine merges stay serialized (CompactOnce panics otherwise);
//   - every series reads back exactly what was written;
//   - the pool quiesces after FlushAll and leaks no goroutines after Close.
func TestSharedSchedulerManySeriesStress(t *testing.T) {
	const (
		nSeries   = 64
		perSeries = 1500
		batchSize = 100
		writers   = 8
		readers   = 4
	)

	baseline := runtime.NumGoroutine()
	db, err := Open(Config{
		Engine: lsm.Config{
			Policy:          lsm.Conventional,
			MemBudget:       48,
			SSTablePoints:   48,
			AsyncCompaction: true,
		},
		AutoCreate:     true,
		CompactWorkers: 2,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if db.Compactions() == nil {
		t.Fatal("async DB has no shared compaction scheduler")
	}

	names := make([]string, nSeries)
	expected := make([][]series.Point, nSeries)
	for i := range names {
		names[i] = fmt.Sprintf("root.dev%03d.v", i)
		if err := db.CreateSeries(names[i]); err != nil {
			t.Fatalf("create %s: %v", names[i], err)
		}
		// Deterministic per-series workload with out-of-order arrivals so
		// merges genuinely overlap existing tables.
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		pts := make([]series.Point, perSeries)
		for k := range pts {
			tg := int64(k * 10)
			if rng.Intn(4) == 0 && k > 0 {
				tg -= int64(rng.Intn(k*10)) + 1 // land behind the frontier
			}
			pts[k] = series.Point{TG: tg, TA: int64(k * 10), V: float64(i*perSeries + k)}
		}
		// Dedup by TG keeping the last write, as the engine upserts.
		expected[i] = dedupByTG(pts)
	}

	// All 64 async engines are open now; with per-series compactors this
	// would be ≥64 extra goroutines. Allow generous slack for the test
	// runtime and the 2 pool workers.
	if extra := runtime.NumGoroutine() - baseline; extra > 16 {
		t.Fatalf("goroutine count grew by %d after opening %d async series; want O(workers)", extra, nSeries)
	}

	var stop atomic.Bool
	var readerErr atomic.Value
	fail := func(format string, args ...any) {
		if readerErr.Load() == nil {
			readerErr.Store(fmt.Sprintf(format, args...))
		}
		stop.Store(true)
	}

	var wgWriters, wgReaders sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wgWriters.Add(1)
		go func() {
			defer wgWriters.Done()
			// Writer w owns series w, w+writers, w+2*writers, ... —
			// engine writes for one series stay single-producer, while
			// the pool sees concurrent backlogs from all of them.
			rng := rand.New(rand.NewSource(int64(w)))
			for base := 0; base < perSeries; base += batchSize {
				for s := w; s < nSeries; s += writers {
					end := base + batchSize
					if end > perSeries {
						end = perSeries
					}
					src := seriesPoints(s, base, end)
					if err := db.PutBatch(names[s], src); err != nil {
						fail("PutBatch(%s): %v", names[s], err)
						return
					}
				}
				if rng.Intn(3) == 0 {
					runtime.Gosched()
				}
			}
		}()
	}

	for r := 0; r < readers; r++ {
		r := r
		wgReaders.Add(1)
		go func() {
			defer wgReaders.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for !stop.Load() {
				name := names[rng.Intn(nSeries)]
				pts, _, err := db.Scan(name, 0, math.MaxInt64)
				if err != nil {
					fail("Scan(%s): %v", name, err)
					return
				}
				for k := 1; k < len(pts); k++ {
					if pts[k-1].TG >= pts[k].TG {
						fail("Scan(%s): unsorted/duplicate TG at %d", name, k)
						return
					}
				}
				it, err := db.SeriesIterator(name, 0, math.MaxInt64)
				if err != nil {
					fail("SeriesIterator(%s): %v", name, err)
					return
				}
				buckets := query.AggregateIter(it, 1000)
				var n int
				for _, b := range buckets {
					n += int(b.Count)
				}
				if n < len(pts)/2 && len(pts) > 0 {
					// The two snapshots differ (writes are in flight), but
					// aggregate can't see dramatically less than an
					// earlier scan did.
					fail("Aggregate(%s): %d points, scan saw %d", name, n, len(pts))
					return
				}
			}
		}()
	}

	wgWriters.Wait()
	stop.Store(true)
	wgReaders.Wait()
	if msg := readerErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}

	// Exactness: every series holds exactly its deduped expected set.
	for i, name := range names {
		got, _, err := db.Scan(name, 0, math.MaxInt64)
		if err != nil {
			t.Fatalf("final Scan(%s): %v", name, err)
		}
		want := expected[i]
		if len(got) != len(want) {
			t.Fatalf("%s: %d points, want %d", name, len(got), len(want))
		}
		for k := range want {
			if got[k].TG != want[k].TG || got[k].V != want[k].V {
				t.Fatalf("%s: point %d = (%d,%g), want (%d,%g)",
					name, k, got[k].TG, got[k].V, want[k].TG, want[k].V)
			}
		}
	}

	st := db.Compactions().Stats()
	if st.Completed == 0 {
		t.Fatal("shared pool completed no merges")
	}
	if st.Failed != 0 {
		t.Fatalf("%d merges failed", st.Failed)
	}
	if st.QueuedTables != 0 || st.RunningSeries != 0 {
		t.Fatalf("pool not quiescent after FlushAll: %+v", st)
	}
	if st.Workers != 2 {
		t.Fatalf("pool has %d workers, want 2", st.Workers)
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// No goroutine leak: pool workers and engine compactors must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// seriesPoints regenerates writer batches deterministically (same seeds as
// the expectation builder).
func seriesPoints(s, lo, hi int) []series.Point {
	rng := rand.New(rand.NewSource(int64(1000 + s)))
	pts := make([]series.Point, 0, hi-lo)
	for k := 0; ; k++ {
		tg := int64(k * 10)
		if rng.Intn(4) == 0 && k > 0 {
			tg -= int64(rng.Intn(k*10)) + 1
		}
		if k >= hi {
			break
		}
		if k >= lo {
			pts = append(pts, series.Point{TG: tg, TA: int64(k * 10), V: float64(s*1500 + k)})
		}
	}
	return pts
}

// dedupByTG sorts by TG keeping the last-written value per TG, mirroring
// the engine's upsert semantics for a single producer.
func dedupByTG(pts []series.Point) []series.Point {
	last := make(map[int64]series.Point, len(pts))
	for _, p := range pts {
		last[p.TG] = p
	}
	out := make([]series.Point, 0, len(last))
	for _, p := range last {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TG < out[j].TG })
	return out
}

// TestLegacyPerSeriesCompactors checks the CompactWorkers<0 escape hatch:
// no shared pool, per-engine goroutines, data still exact.
func TestLegacyPerSeriesCompactors(t *testing.T) {
	db, err := Open(Config{
		Engine: lsm.Config{
			Policy:          lsm.Conventional,
			MemBudget:       16,
			AsyncCompaction: true,
		},
		AutoCreate:     true,
		CompactWorkers: -1,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if db.Compactions() != nil {
		t.Fatal("legacy mode still created a shared scheduler")
	}
	for i := 0; i < 200; i++ {
		if err := db.Put("s", series.Point{TG: int64(i), TA: int64(i), V: float64(i)}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	pts, _, err := db.Scan("s", 0, math.MaxInt64)
	if err != nil || len(pts) != 200 {
		t.Fatalf("scan: %d points, err %v; want 200", len(pts), err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
