// Package benchmark is the unified scenario benchmark suite: end-to-end
// workload scenarios (IoT burst ingest, dashboard fan-out, historical
// backfill, series churn, mixed HTAP) run against the public tsdb API and
// measured with one shared harness — wall-clock ingest throughput,
// allocations per point, and scan latency percentiles.
//
// The suite exists to make the raw-speed work of DESIGN.md §7.8
// falsifiable: every scenario is deterministic (seeded generators, fixed
// batch schedules, synchronous compaction), uses only stable public API
// (tsdb.Open / PutBatch / Scan), and reports a schema-stable Result, so
// the same scenario code compiled at two commits yields directly
// comparable numbers. `lsmbench -scenario` drives it and BENCH_8.json
// records a run against its pre-optimization baseline.
package benchmark

import (
	"fmt"
	"sort"
)

// Config parameterizes a scenario run.
type Config struct {
	// Scale multiplies every scenario's point counts. 1.0 is the standard
	// matrix; the CI smoke run uses a small fraction. Scenario-declared
	// floors keep tiny scales from degenerating below one flush.
	Scale float64 `json:"scale"`
	// Seed drives every generator; equal seeds give identical workloads.
	Seed int64 `json:"seed"`
}

// Result is the schema-stable measurement of one scenario run. Fields are
// never renamed or repurposed: cross-commit comparisons (see Compare)
// depend on the schema staying put.
type Result struct {
	Scenario string `json:"scenario"`

	// Ingest phase.
	Points             int     `json:"points"`
	Batches            int     `json:"batches"`
	IngestSeconds      float64 `json:"ingest_seconds"`
	IngestPointsPerSec float64 `json:"ingest_points_per_sec"`
	AllocsPerPoint     float64 `json:"allocs_per_point"`
	BytesPerPoint      float64 `json:"bytes_per_point"`

	// Read phase (zero-valued for write-only scenarios).
	Scans           int     `json:"scans"`
	ScanPointsTotal int64   `json:"scan_points_total"`
	ScansPerSec     float64 `json:"scans_per_sec"`
	ScanP50Micros   float64 `json:"scan_p50_us"`
	ScanP95Micros   float64 `json:"scan_p95_us"`
	ScanP99Micros   float64 `json:"scan_p99_us"`
}

// Scenario is one named end-to-end workload.
type Scenario struct {
	Name        string
	Description string
	run         func(Config) (Result, error)
}

// registry holds the scenario matrix in presentation order.
var registry = []Scenario{
	{
		Name: "iot-burst",
		Description: "fleet ingest: many series, bursty batches, " +
			"near-in-order arrivals under the separation policy",
		run: runIoTBurst,
	},
	{
		Name: "dashboard",
		Description: "read fan-out: steady ingest then repeated " +
			"recent-window and random-window scans",
		run: runDashboard,
	},
	{
		Name: "dashboard-history",
		Description: "rollup fan-out: steady ingest with compaction-time " +
			"rollups, then wide historical aggregates served from buckets",
		run: runDashboardHistory,
	},
	{
		Name: "backfill",
		Description: "historical backfill: extreme out-of-order ingest " +
			"forcing continuous compaction, then range scans",
		run: runBackfill,
	},
	{
		Name: "churn",
		Description: "series churn: short-lived series created, filled, " +
			"scanned once and dropped",
		run: runChurn,
	},
	{
		Name: "htap",
		Description: "mixed HTAP: interleaved batched writes and " +
			"window scans over the same series",
		run: runHTAP,
	},
}

// Scenarios returns the full scenario matrix in run order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(registry))
	copy(out, registry)
	return out
}

// Names returns the scenario names in run order.
func Names() []string {
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = s.Name
	}
	return names
}

// Run executes the named scenario under cfg. Unknown names error rather
// than silently measuring nothing.
func Run(name string, cfg Config) (Result, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	for _, s := range registry {
		if s.Name == name {
			return s.run(cfg)
		}
	}
	return Result{}, fmt.Errorf("benchmark: unknown scenario %q (have %v)", name, Names())
}

// RunAll executes the named scenarios in registry order (so a shuffled
// name list still yields a stable report) and returns one Result each.
func RunAll(names []string, cfg Config) ([]Result, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	if len(want) != len(names) {
		return nil, fmt.Errorf("benchmark: duplicate scenario in %v", names)
	}
	var out []Result
	for _, s := range registry {
		if !want[s.Name] {
			continue
		}
		delete(want, s.Name)
		r, err := Run(s.Name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("benchmark: unknown scenarios %v (have %v)", unknown, Names())
	}
	return out, nil
}

// scalePts applies cfg.Scale to a base point count with a floor that keeps
// the scenario meaningful (at least a few memtable flushes) at smoke scale.
func scalePts(cfg Config, base, floor int) int {
	n := int(float64(base) * cfg.Scale)
	if n < floor {
		n = floor
	}
	return n
}
