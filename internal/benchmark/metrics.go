package benchmark

import (
	"runtime"
	"sort"
	"time"
)

// memSample is a point-in-time snapshot of the allocator counters the
// suite charges to a measured phase.
type memSample struct {
	mallocs    uint64
	totalAlloc uint64
}

// readMem snapshots the allocator counters. It does NOT force a GC:
// Mallocs and TotalAlloc are monotonic, so deltas are exact regardless of
// collection timing, and a forced collection would perturb the phase being
// measured far more than it stabilizes it.
func readMem() memSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memSample{mallocs: ms.Mallocs, totalAlloc: ms.TotalAlloc}
}

// phase measures one workload phase: wall time plus allocator deltas.
// Background work the phase triggers (synchronous compaction, flushes)
// is intentionally inside the measurement — those allocations are the
// cost of ingest, and pooling them is the point.
type phase struct {
	start time.Time
	mem   memSample
}

// startPhase begins a measured phase. A GC beforehand drains garbage
// inherited from setup so the phase's pause time reflects its own work;
// the allocator counters themselves are GC-independent.
func startPhase() phase {
	runtime.GC()
	return phase{start: time.Now(), mem: readMem()}
}

// finish returns the elapsed seconds and per-op allocator costs for n ops.
func (p phase) finish(n int) (seconds, allocsPerOp, bytesPerOp float64) {
	seconds = time.Since(p.start).Seconds()
	after := readMem()
	if n > 0 {
		allocsPerOp = float64(after.mallocs-p.mem.mallocs) / float64(n)
		bytesPerOp = float64(after.totalAlloc-p.mem.totalAlloc) / float64(n)
	}
	return seconds, allocsPerOp, bytesPerOp
}

// latencies accumulates per-operation latency samples and reports exact
// (not binned) quantiles, so a cross-commit p99 comparison never moves by
// histogram bucket resolution. Scenario scan counts are a few thousand at
// most; holding the raw samples is cheap.
type latencies struct {
	samples []float64 // microseconds
}

// observe records one operation's duration.
func (l *latencies) observe(d time.Duration) {
	l.samples = append(l.samples, float64(d.Nanoseconds())/1e3)
}

// quantile returns the exact p-quantile (0 <= p <= 1) of the samples by
// nearest-rank on the sorted data, or 0 with no samples.
func (l *latencies) quantile(p float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	s := make([]float64, len(l.samples))
	copy(s, l.samples)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// fill writes the read-phase fields of r from the recorded samples.
func (l *latencies) fill(r *Result, seconds float64, pointsScanned int64) {
	r.Scans = len(l.samples)
	r.ScanPointsTotal = pointsScanned
	if seconds > 0 {
		r.ScansPerSec = float64(len(l.samples)) / seconds
	}
	r.ScanP50Micros = l.quantile(0.50)
	r.ScanP95Micros = l.quantile(0.95)
	r.ScanP99Micros = l.quantile(0.99)
}
