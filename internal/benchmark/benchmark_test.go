package benchmark

import (
	"path/filepath"
	"testing"
	"time"
)

// tiny is the configuration unit tests run scenarios at: big enough to
// cross several memtable flushes, small enough for CI.
var tiny = Config{Scale: 0.02, Seed: 42}

func TestNamesMatchRegistry(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("scenario matrix has %d entries, want 6: %v", len(names), names)
	}
	want := map[string]bool{
		"iot-burst": true, "dashboard": true, "dashboard-history": true,
		"backfill": true, "churn": true, "htap": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected scenario %q", n)
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run("no-such", tiny); err == nil {
		t.Fatal("Run(no-such) succeeded, want error")
	}
	if _, err := RunAll([]string{"backfill", "no-such"}, tiny); err == nil {
		t.Fatal("RunAll with unknown name succeeded, want error")
	}
	if _, err := RunAll([]string{"backfill", "backfill"}, tiny); err == nil {
		t.Fatal("RunAll with duplicate name succeeded, want error")
	}
}

func TestRunAllOrderIsRegistryOrder(t *testing.T) {
	// Request out of order; results must come back in matrix order so
	// reports are stable regardless of flag spelling.
	res, err := RunAll([]string{"backfill", "iot-burst"}, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Scenario != "iot-burst" || res[1].Scenario != "backfill" {
		t.Fatalf("got order %v, want [iot-burst backfill]", []string{res[0].Scenario, res[1].Scenario})
	}
}

// TestScenariosProduceSaneResults runs every scenario at smoke scale and
// checks the measurements are internally consistent.
func TestScenariosProduceSaneResults(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			r, err := Run(s.Name, tiny)
			if err != nil {
				t.Fatal(err)
			}
			if r.Scenario != s.Name {
				t.Errorf("result labeled %q, want %q", r.Scenario, s.Name)
			}
			if r.Points <= 0 || r.Batches <= 0 {
				t.Errorf("no ingest recorded: %+v", r)
			}
			if r.IngestSeconds <= 0 || r.IngestPointsPerSec <= 0 {
				t.Errorf("no ingest timing: %+v", r)
			}
			if r.AllocsPerPoint < 0 || r.BytesPerPoint < 0 {
				t.Errorf("negative allocator cost: %+v", r)
			}
			if r.Scans > 0 {
				if r.ScanP50Micros > r.ScanP99Micros {
					t.Errorf("p50 %v > p99 %v", r.ScanP50Micros, r.ScanP99Micros)
				}
				if r.ScanPointsTotal <= 0 {
					t.Errorf("scans ran but returned no points: %+v", r)
				}
			}
		})
	}
}

// TestScenarioDeterminism re-runs a scenario with one seed and checks the
// workload-shape fields (not timings) are identical — the property that
// makes cross-commit comparison meaningful.
func TestScenarioDeterminism(t *testing.T) {
	a, err := Run("backfill", tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("backfill", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points != b.Points || a.Batches != b.Batches || a.Scans != b.Scans ||
		a.ScanPointsTotal != b.ScanPointsTotal {
		t.Fatalf("same seed, different workload:\n%+v\n%+v", a, b)
	}
}

func TestLatencyQuantiles(t *testing.T) {
	var l latencies
	if q := l.quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	for i := 100; i >= 1; i-- { // reversed: quantile must sort
		l.observe(time.Duration(i) * time.Microsecond)
	}
	if q := l.quantile(0); q != 1 {
		t.Errorf("p0 = %v, want 1", q)
	}
	if q := l.quantile(0.5); q < 49 || q > 52 {
		t.Errorf("p50 = %v, want ~50", q)
	}
	if q := l.quantile(1); q != 100 {
		t.Errorf("p100 = %v, want 100", q)
	}
}

func TestReportRoundTripAndCompare(t *testing.T) {
	cur := []Result{{
		Scenario: "backfill", Points: 1000, IngestPointsPerSec: 2e6,
		AllocsPerPoint: 1.0, ScanP99Micros: 80,
	}}
	base := &Baseline{Label: "abc1234", Scenarios: []Result{{
		Scenario: "backfill", Points: 1000, IngestPointsPerSec: 1e6,
		AllocsPerPoint: 2.0, ScanP99Micros: 100,
	}}}
	rep := NewReport(tiny, cur, base, "test")
	if len(rep.Compare) != 1 {
		t.Fatalf("got %d comparisons, want 1", len(rep.Compare))
	}
	c := rep.Compare[0]
	if c.IngestSpeedup < 1.99 || c.IngestSpeedup > 2.01 {
		t.Errorf("speedup %v, want 2.0", c.IngestSpeedup)
	}
	if c.AllocsReductionPct < 49.9 || c.AllocsReductionPct > 50.1 {
		t.Errorf("allocs reduction %v, want 50", c.AllocsReductionPct)
	}
	if c.ScanP99Ratio < 0.79 || c.ScanP99Ratio > 0.81 {
		t.Errorf("p99 ratio %v, want 0.8", c.ScanP99Ratio)
	}

	path := filepath.Join(t.TempDir(), "rep.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bench != "scenario-suite" || len(got.Scenarios) != 1 ||
		got.Baseline == nil || got.Baseline.Label != "abc1234" {
		t.Fatalf("round-trip mangled report: %+v", got)
	}
	if Table(got.Scenarios) == "" || CompareTable(got.Compare) == "" {
		t.Error("empty rendered tables")
	}
}

func TestCompareSkipsUnpaired(t *testing.T) {
	cmp := CompareResults(
		[]Result{{Scenario: "htap"}, {Scenario: "backfill", IngestPointsPerSec: 1}},
		[]Result{{Scenario: "backfill", IngestPointsPerSec: 1}},
	)
	if len(cmp) != 1 || cmp[0].Scenario != "backfill" {
		t.Fatalf("got %+v, want only backfill", cmp)
	}
}

// Benchmark* wrappers let `go test -bench . -benchtime=1x` run each
// scenario once as a CI smoke gate. Metrics are the suite's own (logged),
// not b.N-scaled.
func benchScenario(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := Run(name, tiny)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s: %.0f pts/s, %.2f allocs/pt, p99 %.0fµs",
				name, r.IngestPointsPerSec, r.AllocsPerPoint, r.ScanP99Micros)
		}
	}
}

func BenchmarkScenarioIoTBurst(b *testing.B)  { benchScenario(b, "iot-burst") }
func BenchmarkScenarioDashboard(b *testing.B) { benchScenario(b, "dashboard") }
func BenchmarkScenarioBackfill(b *testing.B)  { benchScenario(b, "backfill") }
func BenchmarkScenarioChurn(b *testing.B)     { benchScenario(b, "churn") }
func BenchmarkScenarioHTAP(b *testing.B)      { benchScenario(b, "htap") }
