package benchmark

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Report is the schema-stable JSON artifact a scenario run emits
// (BENCH_8.json). Baseline and Comparison are present only when the run
// was given an earlier report to compare against.
type Report struct {
	Bench     string       `json:"bench"` // always "scenario-suite"
	Generated string       `json:"generated,omitempty"`
	Config    Config       `json:"config"`
	Scenarios []Result     `json:"scenarios"`
	Baseline  *Baseline    `json:"baseline,omitempty"`
	Compare   []Comparison `json:"comparison,omitempty"`
}

// Baseline labels the earlier run a report is compared against —
// typically the same scenarios measured at a pre-optimization commit.
type Baseline struct {
	Label     string   `json:"label"`
	Scenarios []Result `json:"scenarios"`
}

// Comparison relates one scenario's current run to its baseline run.
type Comparison struct {
	Scenario string `json:"scenario"`
	// IngestSpeedup is current/baseline ingest throughput (>1 is faster).
	IngestSpeedup float64 `json:"ingest_speedup"`
	// AllocsReductionPct is the percent drop in allocations per point
	// (positive is fewer allocations).
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
	// ScanP99Ratio is current/baseline p99 scan latency (<1 is faster);
	// zero when either run had no read phase.
	ScanP99Ratio float64 `json:"scan_p99_ratio"`
}

// NewReport assembles a report, computing the comparison block when a
// baseline is supplied.
func NewReport(cfg Config, results []Result, base *Baseline, generated string) Report {
	rep := Report{
		Bench:     "scenario-suite",
		Generated: generated,
		Config:    cfg,
		Scenarios: results,
		Baseline:  base,
	}
	if base != nil {
		rep.Compare = CompareResults(results, base.Scenarios)
	}
	return rep
}

// CompareResults pairs current and baseline results by scenario name.
// Scenarios present on only one side are skipped — a baseline measured
// with a trimmed matrix still compares what it can.
func CompareResults(cur, base []Result) []Comparison {
	byName := make(map[string]Result, len(base))
	for _, b := range base {
		byName[b.Scenario] = b
	}
	var out []Comparison
	for _, c := range cur {
		b, ok := byName[c.Scenario]
		if !ok {
			continue
		}
		cmp := Comparison{Scenario: c.Scenario}
		if b.IngestPointsPerSec > 0 {
			cmp.IngestSpeedup = c.IngestPointsPerSec / b.IngestPointsPerSec
		}
		if b.AllocsPerPoint > 0 {
			cmp.AllocsReductionPct = (b.AllocsPerPoint - c.AllocsPerPoint) / b.AllocsPerPoint * 100
		}
		if b.ScanP99Micros > 0 && c.ScanP99Micros > 0 {
			cmp.ScanP99Ratio = c.ScanP99Micros / b.ScanP99Micros
		}
		out = append(out, cmp)
	}
	return out
}

// WriteJSON writes the report, indented, to path.
func (r Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a previously written report, e.g. to use as a
// baseline.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("benchmark: parse %s: %w", path, err)
	}
	return r, nil
}

// Table renders results as the paper-style fixed-width table lsmbench
// prints.
func Table(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %9s %8s %9s %9s %9s\n",
		"scenario", "points", "ingest pt/s", "allocs/pt", "B/pt", "scans", "p50 µs", "p95 µs", "p99 µs")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %10d %12.0f %10.2f %9.1f %8d %9.1f %9.1f %9.1f\n",
			r.Scenario, r.Points, r.IngestPointsPerSec, r.AllocsPerPoint, r.BytesPerPoint,
			r.Scans, r.ScanP50Micros, r.ScanP95Micros, r.ScanP99Micros)
	}
	return b.String()
}

// CompareTable renders the comparison block as a fixed-width table.
func CompareTable(cmp []Comparison) string {
	if len(cmp) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %16s %14s\n",
		"scenario", "ingest speedup", "allocs/pt drop %", "scan p99 ratio")
	for _, c := range cmp {
		fmt.Fprintf(&b, "%-10s %13.2fx %15.1f%% %14.2f\n",
			c.Scenario, c.IngestSpeedup, c.AllocsReductionPct, c.ScanP99Ratio)
	}
	return b.String()
}
