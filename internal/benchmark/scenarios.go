package benchmark

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

// Scenario construction notes.
//
// Every scenario opens a durable DB over an in-memory storage backend:
// durable so the full point pipeline runs (WAL-less flush → SSTable
// encode → lazy block reads through the shared cache → level
// compactions), in-memory so the numbers measure CPU and allocator work
// rather than disk scheduling. Compaction is synchronous (AsyncCompaction
// off) — merges happen inline under PutBatch, making runs deterministic
// and charging compaction cost to ingest throughput where it belongs.
// Only stable public API is used (tsdb.Open, PutBatch, Scan, CreateSeries,
// DropSeries), so this package compiles unchanged at older commits for
// baseline measurement.

// openBench opens a deterministic durable in-memory DB for a scenario.
func openBench(policy lsm.PolicyKind, memBudget int, seed int64) (*tsdb.DB, error) {
	return tsdb.Open(tsdb.Config{
		Engine: lsm.Config{
			Policy:        policy,
			MemBudget:     memBudget,
			SSTablePoints: 1024,
			Levels:        3,
			GrowthFactor:  4,
			Seed:          seed,
		},
		Backend:    storage.NewMemBackend(),
		AutoCreate: true,
	})
}

// seriesName returns the IoTDB-style dotted name for series i.
func seriesName(i int) string { return fmt.Sprintf("root.bench.dev%03d", i) }

// seqGen emits one series' in-order point stream: TG advances by dt, TA
// trails TG by a small seeded jitter, V is a smooth random walk (the
// Gorilla-friendly shape real sensors produce).
type seqGen struct {
	rng *rand.Rand
	tg  int64
	dt  int64
	v   float64
}

func newSeqGen(seed, dt int64) *seqGen {
	return &seqGen{rng: rand.New(rand.NewSource(seed)), dt: dt, v: 100}
}

func (g *seqGen) next() series.Point {
	g.tg += g.dt
	g.v += g.rng.NormFloat64()
	return series.Point{TG: g.tg, TA: g.tg + g.rng.Int63n(g.dt), V: g.v}
}

// batchOf fills dst with n fresh in-order points.
func (g *seqGen) batchOf(dst []series.Point, n int) []series.Point {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, g.next())
	}
	return dst
}

// jitter swaps a fraction of points a short distance backward, turning a
// sorted batch into the paper's near-in-order arrival sequence (a few
// stragglers, everything else sequential).
func jitter(rng *rand.Rand, pts []series.Point, frac float64, window int) {
	for i := range pts {
		if rng.Float64() >= frac {
			continue
		}
		j := i + 1 + rng.Intn(window)
		if j >= len(pts) {
			continue
		}
		pts[i], pts[j] = pts[j], pts[i]
	}
}

// runIoTBurst is fleet ingest: many series fed round-robin with bursty
// batches of near-in-order points under the separation policy — the
// workload the paper's π_s exists for. Write-only; the figure of merit is
// ingest throughput and allocations per point.
func runIoTBurst(cfg Config) (Result, error) {
	const (
		nSeries = 64
		batch   = 500
	)
	perSeries := scalePts(cfg, 320_000, 16_000) / nSeries
	db, err := openBench(lsm.Separation, 4096, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	gens := make([]*seqGen, nSeries)
	for i := range gens {
		gens[i] = newSeqGen(cfg.Seed+int64(i)*7919, 50)
	}
	jrng := rand.New(rand.NewSource(cfg.Seed ^ 0x1071))

	r := Result{Scenario: "iot-burst"}
	buf := make([]series.Point, 0, batch)
	p := startPhase()
	for done := 0; done < perSeries; done += batch {
		n := batch
		if perSeries-done < n {
			n = perSeries - done
		}
		for s := 0; s < nSeries; s++ {
			buf = gens[s].batchOf(buf, n)
			jitter(jrng, buf, 0.02, 16)
			if err := db.PutBatch(seriesName(s), buf); err != nil {
				return Result{}, err
			}
			r.Points += n
			r.Batches++
		}
	}
	r.IngestSeconds, r.AllocsPerPoint, r.BytesPerPoint = p.finish(r.Points)
	r.IngestPointsPerSec = float64(r.Points) / r.IngestSeconds
	return r, nil
}

// runDashboard is read fan-out: a moderate in-order dataset, then a storm
// of scans — mostly the recent window every dashboard tile asks for, with
// a tail of random historical windows. The figure of merit is scan
// latency percentiles.
func runDashboard(cfg Config) (Result, error) {
	const (
		nSeries = 16
		batch   = 500
		dt      = 50
	)
	perSeries := scalePts(cfg, 160_000, 8_000) / nSeries
	nScans := scalePts(cfg, 2_000, 64)
	db, err := openBench(lsm.Separation, 4096, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	r := Result{Scenario: "dashboard"}
	buf := make([]series.Point, 0, batch)
	p := startPhase()
	for s := 0; s < nSeries; s++ {
		g := newSeqGen(cfg.Seed+int64(s)*104729, dt)
		for done := 0; done < perSeries; done += batch {
			n := batch
			if perSeries-done < n {
				n = perSeries - done
			}
			buf = g.batchOf(buf, n)
			if err := db.PutBatch(seriesName(s), buf); err != nil {
				return Result{}, err
			}
			r.Points += n
			r.Batches++
		}
	}
	r.IngestSeconds, r.AllocsPerPoint, r.BytesPerPoint = p.finish(r.Points)
	r.IngestPointsPerSec = float64(r.Points) / r.IngestSeconds

	maxTG := int64(perSeries) * dt
	recent := maxTG / 20 // the dashboard's "last 5%" window
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9d2c))
	var lat latencies
	var scanned int64
	rp := startPhase()
	for i := 0; i < nScans; i++ {
		name := seriesName(rng.Intn(nSeries))
		lo, hi := maxTG-recent, maxTG
		if rng.Float64() < 0.2 { // historical tile: random window, same width
			lo = rng.Int63n(maxTG - recent)
			hi = lo + recent
		}
		t0 := time.Now()
		pts, _, err := db.Scan(name, lo, hi)
		lat.observe(time.Since(t0))
		if err != nil {
			return Result{}, err
		}
		scanned += int64(len(pts))
	}
	secs, _, _ := rp.finish(nScans)
	lat.fill(&r, secs, scanned)
	return r, nil
}

// runDashboardHistory is the rollup scenario: steady ingest into a store
// that maintains compaction-time rollups, then a storm of wide historical
// aggregates — the "utilization over the last month" tile that touches
// every level. Widths are multiples of the rollup window, so eligible
// table ranges are answered from precomputed buckets and only range edges
// and unflushed memtables are folded raw. The figure of merit is aggregate
// latency percentiles; ingest throughput guards the rollup maintenance
// cost on the write path.
func runDashboardHistory(cfg Config) (Result, error) {
	const (
		nSeries = 16
		batch   = 500
		dt      = 50
		window  = 64 * dt // rollup bucket width in t_g units
	)
	perSeries := scalePts(cfg, 160_000, 8_000) / nSeries
	nAggs := scalePts(cfg, 2_000, 64)
	db, err := tsdb.Open(tsdb.Config{
		Engine: lsm.Config{
			Policy:        lsm.Conventional,
			MemBudget:     4096,
			SSTablePoints: 1024,
			Levels:        3,
			GrowthFactor:  4,
			Seed:          cfg.Seed,
		},
		Backend:      storage.NewMemBackend(),
		AutoCreate:   true,
		RollupWindow: window,
	})
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	r := Result{Scenario: "dashboard-history"}
	buf := make([]series.Point, 0, batch)
	p := startPhase()
	for s := 0; s < nSeries; s++ {
		g := newSeqGen(cfg.Seed+int64(s)*104729, dt)
		for done := 0; done < perSeries; done += batch {
			n := batch
			if perSeries-done < n {
				n = perSeries - done
			}
			buf = g.batchOf(buf, n)
			if err := db.PutBatch(seriesName(s), buf); err != nil {
				return Result{}, err
			}
			r.Points += n
			r.Batches++
		}
	}
	r.IngestSeconds, r.AllocsPerPoint, r.BytesPerPoint = p.finish(r.Points)
	r.IngestPointsPerSec = float64(r.Points) / r.IngestSeconds

	maxTG := int64(perSeries) * dt
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5011))
	var lat latencies
	var returned int64
	rp := startPhase()
	for i := 0; i < nAggs; i++ {
		name := seriesName(rng.Intn(nSeries))
		// Wide historical range: a random half of the full history,
		// unaligned edges, bucket width a small multiple of the window.
		lo := rng.Int63n(maxTG / 2)
		hi := lo + maxTG/2
		width := int64(window) * (1 + rng.Int63n(3))
		t0 := time.Now()
		bks, _, err := db.AggregateSeries(name, lo, hi, width)
		lat.observe(time.Since(t0))
		if err != nil {
			return Result{}, err
		}
		returned += int64(len(bks))
	}
	secs, _, _ := rp.finish(nAggs)
	lat.fill(&r, secs, returned)
	return r, nil
}

// runBackfill is historical backfill, the paper's extreme out-of-order
// case: half of all arrivals carry uniform-random historical timestamps,
// so every flush overlaps the whole run and compaction churns
// continuously. This is the acceptance scenario for the raw-speed pass —
// it concentrates SSTable encode/decode, block reads, and merge traffic.
func runBackfill(cfg Config) (Result, error) {
	const (
		nSeries = 4
		batch   = 200
		dt      = 100
	)
	perSeries := scalePts(cfg, 160_000, 8_000) / nSeries
	nScans := scalePts(cfg, 200, 20)
	db, err := openBench(lsm.Conventional, 2048, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	r := Result{Scenario: "backfill"}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5bf0))
	buf := make([]series.Point, 0, batch)
	live := make([]int64, nSeries)
	p := startPhase()
	for done := 0; done < perSeries; done += batch {
		n := batch
		if perSeries-done < n {
			n = perSeries - done
		}
		for s := 0; s < nSeries; s++ {
			buf = buf[:0]
			for i := 0; i < n; i++ {
				live[s] += dt
				tg := live[s]
				if rng.Float64() < 0.5 && tg > dt {
					// Historical arrival: uniform over everything generated
					// so far — the delay distribution that defeats any
					// bounded sequential buffer.
					tg = 1 + rng.Int63n(tg)
				}
				buf = append(buf, series.Point{TG: tg, TA: live[s], V: float64(tg % 997)})
			}
			if err := db.PutBatch(seriesName(s), buf); err != nil {
				return Result{}, err
			}
			r.Points += n
			r.Batches++
		}
	}
	r.IngestSeconds, r.AllocsPerPoint, r.BytesPerPoint = p.finish(r.Points)
	r.IngestPointsPerSec = float64(r.Points) / r.IngestSeconds

	var lat latencies
	var scanned int64
	width := live[0] / 10
	rp := startPhase()
	for i := 0; i < nScans; i++ {
		name := seriesName(rng.Intn(nSeries))
		lo := rng.Int63n(live[0] - width)
		t0 := time.Now()
		pts, _, err := db.Scan(name, lo, lo+width)
		lat.observe(time.Since(t0))
		if err != nil {
			return Result{}, err
		}
		scanned += int64(len(pts))
	}
	secs, _, _ := rp.finish(nScans)
	lat.fill(&r, secs, scanned)
	return r, nil
}

// runChurn is series churn: short-lived series are created, filled with a
// slug of in-order points, scanned once, and dropped — the fleet-rotation
// pattern that stresses engine setup/teardown and the catalog rather than
// any one series' depth.
func runChurn(cfg Config) (Result, error) {
	const (
		perRound = 4
		perLife  = 1_500
		batch    = 300
		dt       = 50
	)
	rounds := scalePts(cfg, 24, 2)
	db, err := openBench(lsm.Conventional, 1024, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	r := Result{Scenario: "churn"}
	var lat latencies
	var scanned int64
	buf := make([]series.Point, 0, batch)
	p := startPhase()
	for round := 0; round < rounds; round++ {
		for s := 0; s < perRound; s++ {
			id := round*perRound + s
			name := seriesName(id)
			g := newSeqGen(cfg.Seed+int64(id)*6151, dt)
			for done := 0; done < perLife; done += batch {
				buf = g.batchOf(buf, batch)
				if err := db.PutBatch(name, buf); err != nil {
					return Result{}, err
				}
				r.Points += batch
				r.Batches++
			}
			t0 := time.Now()
			pts, _, err := db.Scan(name, 0, int64(perLife)*dt)
			lat.observe(time.Since(t0))
			if err != nil {
				return Result{}, err
			}
			if len(pts) != perLife {
				return Result{}, fmt.Errorf("churn: %s scanned %d points, want %d", name, len(pts), perLife)
			}
			scanned += int64(len(pts))
			if err := db.DropSeries(name); err != nil {
				return Result{}, err
			}
		}
	}
	secs, allocs, bytes := p.finish(r.Points)
	r.IngestSeconds, r.AllocsPerPoint, r.BytesPerPoint = secs, allocs, bytes
	r.IngestPointsPerSec = float64(r.Points) / secs
	lat.fill(&r, secs, scanned)
	return r, nil
}

// runHTAP is the mixed workload: batched writes interleaved with window
// scans over the same hot series, single-threaded so the interleaving is
// identical on every run. Throughput and allocations cover the combined
// phase; latencies cover the scans within it.
func runHTAP(cfg Config) (Result, error) {
	const (
		nSeries       = 8
		batch         = 500
		dt            = 50
		scanEvery     = 2 // full write rounds between scan bursts
		scansPerBurst = 8
	)
	total := scalePts(cfg, 100_000, 8_000)
	db, err := openBench(lsm.Separation, 4096, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	gens := make([]*seqGen, nSeries)
	for i := range gens {
		gens[i] = newSeqGen(cfg.Seed+int64(i)*31337, dt)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7a69))

	r := Result{Scenario: "htap"}
	var lat latencies
	var scanned int64
	buf := make([]series.Point, 0, batch)
	p := startPhase()
	for r.Points < total {
		for s := 0; s < nSeries && r.Points < total; s++ {
			buf = gens[s].batchOf(buf, batch)
			jitter(rng, buf, 0.05, 8)
			if err := db.PutBatch(seriesName(s), buf); err != nil {
				return Result{}, err
			}
			r.Points += batch
			r.Batches++
		}
		if r.Batches%(scanEvery*nSeries) != 0 {
			continue
		}
		for i := 0; i < scansPerBurst; i++ {
			s := rng.Intn(nSeries)
			hi := gens[s].tg
			lo := hi - hi/5
			if lo < 0 {
				lo = 0
			}
			t0 := time.Now()
			pts, _, err := db.Scan(seriesName(s), lo, hi)
			lat.observe(time.Since(t0))
			if err != nil {
				return Result{}, err
			}
			scanned += int64(len(pts))
		}
	}
	secs, allocs, bytes := p.finish(r.Points)
	r.IngestSeconds, r.AllocsPerPoint, r.BytesPerPoint = secs, allocs, bytes
	r.IngestPointsPerSec = float64(r.Points) / secs
	lat.fill(&r, secs, scanned)
	return r, nil
}
