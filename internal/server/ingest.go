package server

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/series"
	"repro/internal/tsdb"
)

// The ingest path: write requests are split by series hash across N shard
// queues, each drained by one worker goroutine, so concurrent requests
// batch into the engine without contending on a single lock while every
// series keeps a single writer (per-series application order is the
// arrival order the paper's t_a models). Queues are bounded; a full queue
// rejects the shard's batch and the request surfaces HTTP 429.

// entry is one point addressed to a series.
type entry struct {
	series string
	pt     series.Point
}

// writeReq is the shared completion state of one write request whose
// points were split across shards.
type writeReq struct {
	pending  atomic.Int32 // shard batches not yet applied
	done     chan struct{}
	errMu    sync.Mutex
	firstErr error
}

func newWriteReq(batches int) *writeReq {
	r := &writeReq{done: make(chan struct{})}
	r.pending.Store(int32(batches))
	return r
}

// finish retires one shard batch, recording its error (if any) and
// releasing the waiter when it is the last.
func (r *writeReq) finish(err error) {
	if err != nil {
		r.errMu.Lock()
		if r.firstErr == nil {
			r.firstErr = err
		}
		r.errMu.Unlock()
	}
	if r.pending.Add(-1) == 0 {
		close(r.done)
	}
}

func (r *writeReq) wait() error {
	<-r.done
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.firstErr
}

// ingestBatch is the unit queued on a shard: one request's points for
// that shard.
type ingestBatch struct {
	entries []entry
	req     *writeReq
}

type ingestShard struct {
	ch            chan *ingestBatch
	queuedBatches atomic.Int64
	queuedPoints  atomic.Int64
}

// ingestPool owns the shard queues and workers.
type ingestPool struct {
	db     *tsdb.DB
	shards []*ingestShard
	wg     sync.WaitGroup

	applied atomic.Int64 // points applied to the DB
	failed  atomic.Int64 // points whose Put errored

	// hookBeforeApply, when non-nil, runs in the worker before each batch
	// is applied. Tests use it to hold workers and fill queues
	// deterministically.
	hookBeforeApply func()
}

func newIngestPool(db *tsdb.DB, shards, queueLen int) *ingestPool {
	p := &ingestPool{db: db, shards: make([]*ingestShard, shards)}
	for i := range p.shards {
		p.shards[i] = &ingestShard{ch: make(chan *ingestBatch, queueLen)}
	}
	for i := range p.shards {
		p.wg.Add(1)
		go p.worker(p.shards[i])
	}
	return p
}

func (p *ingestPool) worker(sh *ingestShard) {
	defer p.wg.Done()
	for b := range sh.ch {
		if p.hookBeforeApply != nil {
			p.hookBeforeApply()
		}
		var err error
		for _, e := range b.entries {
			if perr := p.db.Put(e.series, e.pt); perr != nil {
				err = perr
				p.failed.Add(1)
			} else {
				p.applied.Add(1)
			}
		}
		sh.queuedBatches.Add(-1)
		sh.queuedPoints.Add(-int64(len(b.entries)))
		b.req.finish(err)
	}
}

func (p *ingestPool) shardFor(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(p.shards)))
}

// enqueue splits pts across shards and queues them without blocking.
// Batches whose shard queue is full are rejected. It returns the accepted
// and rejected point counts and — when anything was accepted — the request
// handle to wait on.
func (p *ingestPool) enqueue(pts []entry) (accepted, rejected int, req *writeReq) {
	if len(pts) == 0 {
		return 0, 0, nil
	}
	byShard := make(map[int][]entry)
	for _, e := range pts {
		i := p.shardFor(e.series)
		byShard[i] = append(byShard[i], e)
	}
	req = newWriteReq(len(byShard))
	for i, es := range byShard {
		sh := p.shards[i]
		b := &ingestBatch{entries: es, req: req}
		// Account the depth before offering so /metrics never under-reports
		// a queued batch; roll back on rejection.
		sh.queuedBatches.Add(1)
		sh.queuedPoints.Add(int64(len(es)))
		select {
		case sh.ch <- b:
			accepted += len(es)
		default:
			sh.queuedBatches.Add(-1)
			sh.queuedPoints.Add(-int64(len(es)))
			rejected += len(es)
			req.finish(nil)
		}
	}
	if accepted == 0 {
		return 0, rejected, nil
	}
	return accepted, rejected, req
}

// close drains every queue and stops the workers. Callers must have
// stopped producing first (the HTTP server is shut down before close).
func (p *ingestPool) close() {
	for _, sh := range p.shards {
		close(sh.ch)
	}
	p.wg.Wait()
}
