package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/server/api"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

// TestServerCrashRecovery drives the full stack: HTTP writes land on a
// fault-injected backend, the backend dies mid-stream, the server is torn
// down (its Close may fail — the dead backend cannot flush), and a fresh
// DB+server over the undamaged inner backend must serve exactly the
// acknowledged writes and report the recovery on /healthz.
func TestServerCrashRecovery(t *testing.T) {
	inner := storage.NewMemBackend()
	fb := storage.NewFaultBackend(inner)
	openDB := func(b storage.Backend) *tsdb.DB {
		db, err := tsdb.Open(tsdb.Config{
			Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 8, WAL: true},
			Backend:    b,
			AutoCreate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	db := openDB(fb)
	srv, url := startServer(t, Config{DB: db, Shards: 1, CloseDB: true})

	// Write one point per request so an HTTP 200 is an unambiguous ack of
	// exactly that point.
	type ack struct{ tg, ta int64 }
	var acked []ack
	fb.SetBudget(30)
	fb.SetTear(true)
	for i := int64(0); i < 500; i++ {
		line := fmt.Sprintf("srv.crash %d %d %g\n", i, i+1, float64(i)/2)
		resp, _ := post(t, url+"/write", "text/plain", line)
		if resp.StatusCode == http.StatusOK {
			acked = append(acked, ack{tg: i, ta: i + 1})
		} else {
			break // backend died; stop the workload
		}
	}
	if !fb.Tripped() {
		t.Fatal("workload never tripped the fault backend")
	}
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged before the fault")
	}

	// Tear the server down. Close flushes through the dead backend, so an
	// error is expected — what matters is that it returns (no goroutine
	// leak) and the inner backend was never corrupted.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Close(ctx)

	// Restart on the undamaged inner backend.
	db2 := openDB(inner)
	srv2, url2 := startServer(t, Config{DB: db2, Shards: 1, CloseDB: true})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv2.Close(ctx); err != nil {
			t.Errorf("close recovered server: %v", err)
		}
	}()

	// Every acknowledged point must come back, in order, without
	// duplicates; at most one trailing unacknowledged point may survive
	// (its WAL record landed before the failed response).
	resp, body := get(t, url2+"/scan?series=srv.crash")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/scan after recovery: %d %s", resp.StatusCode, body)
	}
	var scan api.ScanResponse
	if err := json.Unmarshal([]byte(body), &scan); err != nil {
		t.Fatal(err)
	}
	if len(scan.Points) < len(acked) || len(scan.Points) > len(acked)+1 {
		t.Fatalf("recovered %d points, acknowledged %d", len(scan.Points), len(acked))
	}
	for i, a := range acked {
		p := scan.Points[i]
		if p.TG != a.tg || p.TA != a.ta {
			t.Fatalf("point %d: recovered {tg=%d ta=%d}, acknowledged {tg=%d ta=%d}",
				i, p.TG, p.TA, a.tg, a.ta)
		}
	}
	for i := 1; i < len(scan.Points); i++ {
		if scan.Points[i-1].TG >= scan.Points[i].TG {
			t.Fatalf("duplicate TG %d in recovered scan", scan.Points[i].TG)
		}
	}

	// /healthz must expose the recovery: the catalog was found and the
	// series' WAL was replayed.
	resp, body = get(t, url2+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d %s", resp.StatusCode, body)
	}
	var health api.HealthResponse
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status = %q", health.Status)
	}
	if !health.Recovery.CatalogFound || health.Recovery.SeriesRecovered != 1 {
		t.Errorf("healthz recovery = %+v, want catalog found with 1 series", health.Recovery)
	}
	if health.Recovery.WALPointsReplayed == 0 {
		t.Errorf("healthz reports no WAL points replayed after crash recovery: %+v", health.Recovery)
	}
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}
