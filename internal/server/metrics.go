package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders Prometheus text exposition format (version 0.0.4):
// server-side ingest/read counters, per-shard queue depths, the write
// request latency histogram, and per-series engine counters (policy,
// write amplification) straight from db.Stats(). Everything is computed on
// scrape — there is no metrics registry to keep in sync.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	counter("lsmd_write_requests_total", "Write requests received.", s.writeRequests.Load())
	counter("lsmd_write_requests_rejected_total", "Write requests that saw backpressure (HTTP 429).", s.writesRejected.Load())
	counter("lsmd_ingest_points_applied_total", "Points applied to the storage engine.", s.pool.applied.Load())
	counter("lsmd_ingest_points_failed_total", "Accepted points whose engine write errored.", s.pool.failed.Load())
	counter("lsmd_scan_requests_total", "Scan requests received.", s.scanRequests.Load())
	counter("lsmd_aggregate_requests_total", "Aggregate requests received.", s.aggRequests.Load())
	counter("lsmd_query_requests_total", "Matcher query requests received.", s.queryRequests.Load())
	counter("lsmd_scanned_points_total", "Points returned by scan, aggregate, and query requests.", s.scannedPoints.Load())
	counter("lsmd_rollup_buckets_used_total", "Precomputed rollup buckets folded into aggregate answers instead of raw points.", s.rollupBuckets.Load())
	counter("lsmd_rollup_served_reads_total", "Reads answered at least partly from rollup buckets.", s.rollupServedAggs.Load())

	// Tag index shape and matcher-query fan-out accounting.
	ix := s.db.Index().Stats()
	fmt.Fprintf(&b, "# HELP lsmd_index_series Series registered in the tag index.\n# TYPE lsmd_index_series gauge\nlsmd_index_series %d\n", ix.Series)
	fmt.Fprintf(&b, "# HELP lsmd_index_label_names Distinct label names in the tag index.\n# TYPE lsmd_index_label_names gauge\nlsmd_index_label_names %d\n", ix.LabelNames)
	fmt.Fprintf(&b, "# HELP lsmd_index_label_pairs Distinct (name,value) pairs — posting lists held.\n# TYPE lsmd_index_label_pairs gauge\nlsmd_index_label_pairs %d\n", ix.LabelPairs)
	fmt.Fprintf(&b, "# HELP lsmd_index_postings Total posting-list entries across all label pairs.\n# TYPE lsmd_index_postings gauge\nlsmd_index_postings %d\n", ix.Postings)
	counter("lsmd_index_matches_total", "Matcher resolutions served by the tag index.", ix.Matches)
	fs := s.db.FanoutStats()
	fmt.Fprintf(&b, "# HELP lsmd_query_fanout_workers Shared query fan-out pool size.\n# TYPE lsmd_query_fanout_workers gauge\nlsmd_query_fanout_workers %d\n", fs.Workers)
	counter("lsmd_query_fanout_queries_total", "Multi-series matcher queries executed.", fs.Queries)
	counter("lsmd_query_fanout_series_total", "Per-series read tasks fanned out by matcher queries.", fs.SeriesFanned)
	counter("lsmd_query_fanout_series_failed_total", "Fanned per-series read tasks that errored.", fs.SeriesFailed)

	// Queue gauges: depth per shard plus the shared capacity.
	fmt.Fprintf(&b, "# HELP lsmd_ingest_queue_batches Queued or in-flight write batches per ingest shard.\n# TYPE lsmd_ingest_queue_batches gauge\n")
	for i, sh := range s.pool.shards {
		fmt.Fprintf(&b, "lsmd_ingest_queue_batches{shard=\"%d\"} %d\n", i, sh.queuedBatches.Load())
	}
	fmt.Fprintf(&b, "# HELP lsmd_ingest_queue_points Queued or in-flight points per ingest shard.\n# TYPE lsmd_ingest_queue_points gauge\n")
	for i, sh := range s.pool.shards {
		fmt.Fprintf(&b, "lsmd_ingest_queue_points{shard=\"%d\"} %d\n", i, sh.queuedPoints.Load())
	}
	fmt.Fprintf(&b, "# HELP lsmd_ingest_queue_capacity_batches Per-shard queue capacity in batches.\n# TYPE lsmd_ingest_queue_capacity_batches gauge\nlsmd_ingest_queue_capacity_batches %d\n", s.cfg.QueueLen)
	fmt.Fprintf(&b, "# HELP lsmd_ingest_shards Ingest worker shards.\n# TYPE lsmd_ingest_shards gauge\nlsmd_ingest_shards %d\n", len(s.pool.shards))

	// Write latency as a cumulative Prometheus histogram. The underlying
	// fixed-width histogram covers [0,10s) in 100ms buckets; observations
	// at or above 10s land in +Inf.
	s.latMu.Lock()
	edges, counts := s.writeLat.Bins()
	total := s.writeLat.Count()
	sum := s.writeLat.Mean() * float64(total)
	s.latMu.Unlock()
	fmt.Fprintf(&b, "# HELP lsmd_write_request_seconds Write request latency.\n# TYPE lsmd_write_request_seconds histogram\n")
	promHistogram(&b, "lsmd_write_request_seconds", edges, counts, total, sum)

	// Per-series read-path accounting: scan counters, tables touched,
	// read amplification, and the scan-latency histogram, all fed by
	// observeRead on every scan/aggregate. Snapshot the map under readMu,
	// then render without the lock.
	type readRow struct {
		name          string
		scans         int64
		tablesTouched int64
		readAmp       float64
		edges         []float64
		counts        []int64
		total         int64
		sum           float64
	}
	s.readMu.Lock()
	readRows := make([]readRow, 0, len(s.reads))
	for name, rs := range s.reads {
		edges, counts := rs.lat.Bins()
		readRows = append(readRows, readRow{
			name:          name,
			scans:         rs.scans,
			tablesTouched: rs.tablesTouched,
			readAmp:       rs.readAmplification(),
			edges:         edges,
			counts:        counts,
			total:         rs.lat.Count(),
			sum:           rs.lat.Mean() * float64(rs.lat.Count()),
		})
	}
	s.readMu.Unlock()
	sort.Slice(readRows, func(i, j int) bool { return readRows[i].name < readRows[j].name })
	fmt.Fprintf(&b, "# HELP lsmd_series_scans_total Scan and aggregate requests served per series.\n# TYPE lsmd_series_scans_total counter\n")
	for _, rr := range readRows {
		fmt.Fprintf(&b, "lsmd_series_scans_total{series=%q} %d\n", rr.name, rr.scans)
	}
	fmt.Fprintf(&b, "# HELP lsmd_series_scan_tables_touched_total SSTables overlapping scan ranges, summed over scans, per series.\n# TYPE lsmd_series_scan_tables_touched_total counter\n")
	for _, rr := range readRows {
		fmt.Fprintf(&b, "lsmd_series_scan_tables_touched_total{series=%q} %d\n", rr.name, rr.tablesTouched)
	}
	fmt.Fprintf(&b, "# HELP lsmd_series_read_amplification Points read over points returned, cumulative per series.\n# TYPE lsmd_series_read_amplification gauge\n")
	for _, rr := range readRows {
		fmt.Fprintf(&b, "lsmd_series_read_amplification{series=%q} %g\n", rr.name, rr.readAmp)
	}
	fmt.Fprintf(&b, "# HELP lsmd_series_scan_seconds Scan/aggregate latency per series.\n# TYPE lsmd_series_scan_seconds histogram\n")
	for _, rr := range readRows {
		var cum int64
		bw := 0.0
		if len(rr.edges) > 1 {
			bw = rr.edges[1] - rr.edges[0]
		}
		for i, c := range rr.counts {
			cum += c
			if c == 0 && i != 0 && i != len(rr.counts)-1 {
				continue
			}
			fmt.Fprintf(&b, "lsmd_series_scan_seconds_bucket{series=%q,le=\"%g\"} %d\n", rr.name, rr.edges[i]+bw, cum)
		}
		fmt.Fprintf(&b, "lsmd_series_scan_seconds_bucket{series=%q,le=\"+Inf\"} %d\n", rr.name, rr.total)
		fmt.Fprintf(&b, "lsmd_series_scan_seconds_sum{series=%q} %g\n", rr.name, rr.sum)
		fmt.Fprintf(&b, "lsmd_series_scan_seconds_count{series=%q} %d\n", rr.name, rr.total)
	}

	// Per-series engine counters from the tsdb layer.
	stats := s.db.Stats()
	fmt.Fprintf(&b, "# HELP lsmd_series_write_amplification Points written over points ingested, per series.\n# TYPE lsmd_series_write_amplification gauge\n")
	for _, st := range stats {
		fmt.Fprintf(&b, "lsmd_series_write_amplification{series=%q} %g\n", st.Name, st.Stats.WriteAmplification())
	}
	fmt.Fprintf(&b, "# HELP lsmd_series_policy Active write policy per series (value is always 1).\n# TYPE lsmd_series_policy gauge\n")
	for _, st := range stats {
		fmt.Fprintf(&b, "lsmd_series_policy{series=%q,policy=%q} 1\n", st.Name, st.Policy.String())
	}
	fmt.Fprintf(&b, "# HELP lsmd_series_points_ingested_total Points ingested per series.\n# TYPE lsmd_series_points_ingested_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(&b, "lsmd_series_points_ingested_total{series=%q} %d\n", st.Name, st.Stats.PointsIngested)
	}
	fmt.Fprintf(&b, "# HELP lsmd_series_points_written_total Points physically written per series (flushes plus compaction rewrites).\n# TYPE lsmd_series_points_written_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(&b, "lsmd_series_points_written_total{series=%q} %d\n", st.Name, st.Stats.PointsWritten)
	}
	fmt.Fprintf(&b, "# HELP lsmd_series_out_of_order_points_total Out-of-order points (Definition 3) per series.\n# TYPE lsmd_series_out_of_order_points_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(&b, "lsmd_series_out_of_order_points_total{series=%q} %d\n", st.Name, st.Stats.OutOfOrderPoints)
	}
	fmt.Fprintf(&b, "# HELP lsmd_db_series Number of series.\n# TYPE lsmd_db_series gauge\nlsmd_db_series %d\n", len(stats))
	fmt.Fprintf(&b, "# HELP lsmd_db_write_amplification Database-wide write amplification.\n# TYPE lsmd_db_write_amplification gauge\nlsmd_db_write_amplification %g\n", s.db.TotalWA())

	// Per-level structure and compaction counters, summed across series
	// (levels are per-engine; the fleet view aggregates the same level
	// number of every resident series).
	type levelAgg struct {
		tables, points, target           int64
		compactions, pointsIn, rewritten int64
	}
	var levels []levelAgg
	for _, st := range stats {
		for i, l := range st.Levels {
			if i >= len(levels) {
				levels = append(levels, levelAgg{})
			}
			levels[i].tables += int64(l.Tables)
			levels[i].points += int64(l.Points)
			levels[i].target += int64(l.TargetPoints)
			levels[i].compactions += l.Compactions
			levels[i].pointsIn += l.PointsIn
			levels[i].rewritten += l.PointsRewritten
		}
	}
	if len(levels) > 0 {
		fmt.Fprintf(&b, "# HELP lsmd_level_tables SSTables per on-disk level, summed across series.\n# TYPE lsmd_level_tables gauge\n")
		for i, l := range levels {
			fmt.Fprintf(&b, "lsmd_level_tables{level=\"%d\"} %d\n", i+1, l.tables)
		}
		fmt.Fprintf(&b, "# HELP lsmd_level_points Points per on-disk level, summed across series.\n# TYPE lsmd_level_points gauge\n")
		for i, l := range levels {
			fmt.Fprintf(&b, "lsmd_level_points{level=\"%d\"} %d\n", i+1, l.points)
		}
		fmt.Fprintf(&b, "# HELP lsmd_level_target_points Leveling size targets per level, summed across series (0 = unbounded last level).\n# TYPE lsmd_level_target_points gauge\n")
		for i, l := range levels {
			fmt.Fprintf(&b, "lsmd_level_target_points{level=\"%d\"} %d\n", i+1, l.target)
		}
		fmt.Fprintf(&b, "# HELP lsmd_level_compactions_total Merges that wrote into each level, summed across series.\n# TYPE lsmd_level_compactions_total counter\n")
		for i, l := range levels {
			fmt.Fprintf(&b, "lsmd_level_compactions_total{level=\"%d\"} %d\n", i+1, l.compactions)
		}
		fmt.Fprintf(&b, "# HELP lsmd_level_points_in_total Points written into each level by merges, summed across series.\n# TYPE lsmd_level_points_in_total counter\n")
		for i, l := range levels {
			fmt.Fprintf(&b, "lsmd_level_points_in_total{level=\"%d\"} %d\n", i+1, l.pointsIn)
		}
		fmt.Fprintf(&b, "# HELP lsmd_level_points_rewritten_total Points of each level re-read and rewritten by merges into it, summed across series.\n# TYPE lsmd_level_points_rewritten_total counter\n")
		for i, l := range levels {
			fmt.Fprintf(&b, "lsmd_level_points_rewritten_total{level=\"%d\"} %d\n", i+1, l.rewritten)
		}
	}

	// Shared compaction scheduler (absent with per-series compactors or
	// synchronous merging).
	if pool := s.db.Compactions(); pool != nil {
		cs := pool.Stats()
		fmt.Fprintf(&b, "# HELP lsmd_compaction_workers Compaction worker pool size.\n# TYPE lsmd_compaction_workers gauge\nlsmd_compaction_workers %d\n", cs.Workers)
		fmt.Fprintf(&b, "# HELP lsmd_compaction_queued L0 tables awaiting background merge, across all series.\n# TYPE lsmd_compaction_queued gauge\nlsmd_compaction_queued %d\n", cs.QueuedTables)
		fmt.Fprintf(&b, "# HELP lsmd_compaction_queued_series Series waiting for a compaction worker.\n# TYPE lsmd_compaction_queued_series gauge\nlsmd_compaction_queued_series %d\n", cs.QueuedSeries)
		fmt.Fprintf(&b, "# HELP lsmd_compaction_running Merges executing right now.\n# TYPE lsmd_compaction_running gauge\nlsmd_compaction_running %d\n", cs.RunningSeries)
		counter("lsmd_compaction_completed_total", "Background merges completed.", cs.Completed)
		counter("lsmd_compaction_failed_total", "Background merges that errored.", cs.Failed)
		counter("lsmd_write_requests_throttled_total", "Write requests shed by compaction backpressure (subset of rejected).", s.writesThrottled.Load())
		overloaded := 0
		if cs.Overloaded {
			overloaded = 1
		}
		fmt.Fprintf(&b, "# HELP lsmd_compaction_backpressure Whether the scheduler is shedding ingest (threshold %d queued tables).\n# TYPE lsmd_compaction_backpressure gauge\nlsmd_compaction_backpressure %d\n", cs.BackpressureDepth, overloaded)
		wait := pool.WaitHist()
		fmt.Fprintf(&b, "# HELP lsmd_compaction_wait_seconds Time series spend queued before a worker picks them up.\n# TYPE lsmd_compaction_wait_seconds histogram\n")
		promHistogram(&b, "lsmd_compaction_wait_seconds", wait.Edges, wait.Counts, wait.Count, wait.Sum)
		merge := pool.MergeHist()
		fmt.Fprintf(&b, "# HELP lsmd_compaction_merge_seconds Duration of one background merge (CompactOnce).\n# TYPE lsmd_compaction_merge_seconds histogram\n")
		promHistogram(&b, "lsmd_compaction_merge_seconds", merge.Edges, merge.Counts, merge.Count, merge.Sum)
	}

	// Shared group-commit WAL (absent for memory-only, WAL-disabled, or
	// legacy per-series-WAL databases).
	if ws, ok := s.db.WALStats(); ok {
		fmt.Fprintf(&b, "# HELP lsmd_wal_shards Group-commit WAL shard count (independent fsync streams).\n# TYPE lsmd_wal_shards gauge\nlsmd_wal_shards %d\n", ws.Shards)
		counter("lsmd_wal_fsyncs_total", "Group commits issued (one backend append — one fsync on disk — each).", ws.Commits)
		counter("lsmd_wal_records_total", "Framed records written to the shared WAL (data, cursor, forget).", ws.Records)
		counter("lsmd_wal_points_total", "Points appended through the shared WAL.", ws.Points)
		counter("lsmd_wal_checkpoints_total", "Cursor records written (per-series checkpoints).", ws.Checkpoints)
		counter("lsmd_wal_segments_removed_total", "Fully superseded WAL segments garbage-collected.", ws.SegmentsRemoved)
		fmt.Fprintf(&b, "# HELP lsmd_wal_segments Live WAL segment objects across shards.\n# TYPE lsmd_wal_segments gauge\nlsmd_wal_segments %d\n", ws.Segments)
		fmt.Fprintf(&b, "# HELP lsmd_wal_pending_points Points awaiting replay across series.\n# TYPE lsmd_wal_pending_points gauge\nlsmd_wal_pending_points %d\n", ws.PendingPoints)
		if gw := s.db.GroupWAL(); gw != nil {
			batch := gw.BatchHist()
			fmt.Fprintf(&b, "# HELP lsmd_wal_group_commit_batch_points Points coalesced into one group commit.\n# TYPE lsmd_wal_group_commit_batch_points histogram\n")
			promHistogram(&b, "lsmd_wal_group_commit_batch_points", batch.Edges, batch.Counts, batch.Count, batch.Sum)
			lat := gw.CommitLatencyHist()
			fmt.Fprintf(&b, "# HELP lsmd_wal_group_commit_seconds Backend append latency of one group commit.\n# TYPE lsmd_wal_group_commit_seconds histogram\n")
			promHistogram(&b, "lsmd_wal_group_commit_seconds", lat.Edges, lat.Counts, lat.Count, lat.Sum)
		}
	}

	// Memory arbiter (absent unless MemBudgetBytes is configured).
	if as, ok := s.db.ArbiterStats(); ok {
		fmt.Fprintf(&b, "# HELP lsmd_mem_arbiter_budget_bytes DB-wide memory budget being divided.\n# TYPE lsmd_mem_arbiter_budget_bytes gauge\nlsmd_mem_arbiter_budget_bytes %d\n", as.BudgetBytes)
		fmt.Fprintf(&b, "# HELP lsmd_mem_arbiter_memtable_bytes Estimated aggregate memtable footprint at the last pass.\n# TYPE lsmd_mem_arbiter_memtable_bytes gauge\nlsmd_mem_arbiter_memtable_bytes %d\n", as.MemtableBytes)
		fmt.Fprintf(&b, "# HELP lsmd_mem_arbiter_memtable_target_bytes Budget share currently granted to memtables.\n# TYPE lsmd_mem_arbiter_memtable_target_bytes gauge\nlsmd_mem_arbiter_memtable_target_bytes %d\n", as.MemtableTargetBytes)
		fmt.Fprintf(&b, "# HELP lsmd_mem_arbiter_cache_bytes Budget share currently granted to the block cache.\n# TYPE lsmd_mem_arbiter_cache_bytes gauge\nlsmd_mem_arbiter_cache_bytes %d\n", as.CacheTargetBytes)
		fmt.Fprintf(&b, "# HELP lsmd_mem_arbiter_write_pressure EWMA of points ingested per arbiter pass.\n# TYPE lsmd_mem_arbiter_write_pressure gauge\nlsmd_mem_arbiter_write_pressure %g\n", as.WritePressure)
		fmt.Fprintf(&b, "# HELP lsmd_mem_arbiter_read_pressure EWMA of block-cache lookups per arbiter pass.\n# TYPE lsmd_mem_arbiter_read_pressure gauge\nlsmd_mem_arbiter_read_pressure %g\n", as.ReadPressure)
		fmt.Fprintf(&b, "# HELP lsmd_mem_arbiter_resident_series Series with live engines.\n# TYPE lsmd_mem_arbiter_resident_series gauge\nlsmd_mem_arbiter_resident_series %d\n", as.ResidentSeries)
		fmt.Fprintf(&b, "# HELP lsmd_mem_arbiter_cold_series Persisted series currently without an engine.\n# TYPE lsmd_mem_arbiter_cold_series gauge\nlsmd_mem_arbiter_cold_series %d\n", as.ColdSeries)
		counter("lsmd_mem_arbiter_evictions_total", "Engines evicted under memory pressure.", as.Evictions)
		counter("lsmd_mem_arbiter_rebalances_total", "Arbiter passes completed.", as.Rebalances)
	}

	// Shared SSTable block cache (absent for memory-only databases).
	if cs, ok := s.db.CacheStats(); ok {
		counter("lsmd_block_cache_hits_total", "Block reads served by the shared block cache.", cs.Hits)
		counter("lsmd_block_cache_misses_total", "Block reads that went to storage.", cs.Misses)
		counter("lsmd_block_cache_evictions_total", "Blocks evicted from the shared block cache.", cs.Evictions)
		counter("lsmd_block_cache_inserts_total", "Blocks inserted into the shared block cache.", cs.Inserts)
		fmt.Fprintf(&b, "# HELP lsmd_block_cache_bytes Resident bytes charged to the shared block cache.\n# TYPE lsmd_block_cache_bytes gauge\nlsmd_block_cache_bytes %d\n", cs.Bytes)
		fmt.Fprintf(&b, "# HELP lsmd_block_cache_entries Resident entries in the shared block cache.\n# TYPE lsmd_block_cache_entries gauge\nlsmd_block_cache_entries %d\n", cs.Entries)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// promHistogram renders a fixed-width histogram's bins as cumulative
// Prometheus buckets. Sparse buckets (plus the first and last) keep
// scrapes small; cumulative counts stay correct because cum carries over.
func promHistogram(b *strings.Builder, name string, edges []float64, counts []int64, total int64, sum float64) {
	var cum int64
	binWidth := 0.0
	if len(edges) > 1 {
		binWidth = edges[1] - edges[0]
	}
	for i, c := range counts {
		cum += c
		if c == 0 && i != 0 && i != len(counts)-1 {
			continue
		}
		fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", name, edges[i]+binWidth, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(b, "%s_sum %g\n", name, sum)
	fmt.Fprintf(b, "%s_count %d\n", name, total)
}
