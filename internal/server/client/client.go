// Package client is the Go client for the internal/server HTTP API, used
// by the server's end-to-end tests and by cmd/lsmbench's load-generator
// mode. Writes use the text line protocol; reads decode the JSON bodies
// into the shared api types.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/series"
	"repro/internal/server/api"
)

// ErrBackpressure matches write errors caused by a full ingest queue
// (HTTP 429). Use errors.As with *BackpressureError for the
// accepted/rejected split and the server's Retry-After hint.
var ErrBackpressure = errors.New("client: server backpressure")

// BackpressureError carries the partial-acceptance split of a 429.
type BackpressureError struct {
	Accepted   int
	Rejected   int
	RetryAfter time.Duration
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("client: server backpressure (accepted %d, rejected %d, retry after %s)",
		e.Accepted, e.Rejected, e.RetryAfter)
}

// Is makes errors.Is(err, ErrBackpressure) work.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// Client talks to one server.
type Client struct {
	base string
	hc   *http.Client
}

// New creates a client for a base URL such as "http://127.0.0.1:8080".
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{Timeout: 30 * time.Second}}
}

// NewWithHTTPClient uses a caller-supplied http.Client (custom timeouts,
// transports).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Write sends points via the line protocol and waits until the server has
// applied them. It returns the number of accepted (applied) points. On
// backpressure the error is a *BackpressureError and accepted reports the
// applied subset.
func (c *Client) Write(ctx context.Context, pts []api.Point) (accepted int, err error) {
	var b bytes.Buffer
	for _, p := range pts {
		b.WriteString(api.FormatLine(p))
		b.WriteByte('\n')
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/write", &b)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var wr api.WriteResponse
	if derr := json.NewDecoder(resp.Body).Decode(&wr); derr != nil && resp.StatusCode == http.StatusOK {
		return 0, fmt.Errorf("client: bad write response: %w", derr)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return wr.Accepted, nil
	case http.StatusTooManyRequests:
		ra := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, perr := strconv.Atoi(v); perr == nil && secs >= 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		return wr.Accepted, &BackpressureError{Accepted: wr.Accepted, Rejected: wr.Rejected, RetryAfter: ra}
	default:
		msg := wr.Error
		if msg == "" {
			msg = resp.Status
		}
		return wr.Accepted, fmt.Errorf("client: write failed: %s", msg)
	}
}

// Scan fetches the series' points in [lo, hi].
func (c *Client) Scan(ctx context.Context, name string, lo, hi int64) ([]series.Point, api.ScanStatsJSON, error) {
	var resp api.ScanResponse
	q := url.Values{"series": {name}, "lo": {strconv.FormatInt(lo, 10)}, "hi": {strconv.FormatInt(hi, 10)}}
	if err := c.getJSON(ctx, "/scan", q, &resp); err != nil {
		return nil, api.ScanStatsJSON{}, err
	}
	pts := make([]series.Point, len(resp.Points))
	for i, p := range resp.Points {
		pts[i] = series.Point{TG: p.TG, TA: p.TA, V: p.V}
	}
	return pts, resp.Stats, nil
}

// Aggregate downsamples [lo, hi] into buckets of the given width.
func (c *Client) Aggregate(ctx context.Context, name string, lo, hi, width int64) ([]api.BucketJSON, error) {
	var resp api.AggregateResponse
	q := url.Values{
		"series": {name},
		"lo":     {strconv.FormatInt(lo, 10)},
		"hi":     {strconv.FormatInt(hi, 10)},
		"width":  {strconv.FormatInt(width, 10)},
	}
	if err := c.getJSON(ctx, "/aggregate", q, &resp); err != nil {
		return nil, err
	}
	return resp.Buckets, nil
}

// Series lists the server's series names.
func (c *Client) Series(ctx context.Context) ([]string, error) {
	var resp api.SeriesResponse
	if err := c.getJSON(ctx, "/series", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Series, nil
}

// SeriesMatch lists the series whose label sets satisfy the matcher
// expression (e.g. "region=eu,device=~d[0-9]+"), with each one's labels.
func (c *Client) SeriesMatch(ctx context.Context, match string) (api.SeriesResponse, error) {
	var resp api.SeriesResponse
	err := c.getJSON(ctx, "/series", url.Values{"match": {match}}, &resp)
	return resp, err
}

// CreateSeries registers a name-addressed series.
func (c *Client) CreateSeries(ctx context.Context, name string) error {
	_, err := c.postJSON(ctx, "/series", api.CreateSeriesRequest{Name: name})
	return err
}

// CreateSeriesLabeled registers a tag-addressed series and returns the
// canonical series ID that writes and scans must address.
func (c *Client) CreateSeriesLabeled(ctx context.Context, labels map[string]string) (string, error) {
	resp, err := c.postJSON(ctx, "/series", api.CreateSeriesRequest{Labels: labels})
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// QueryOptions refine a client Query beyond the matcher expression and
// range. Zero values mean server defaults.
type QueryOptions struct {
	// Width switches the query to aggregation with buckets of that width.
	Width int64
	// Workers pins the fan-out concurrency (1 = sequential).
	Workers int
	// Limit caps the number of matched series read.
	Limit int
}

// Query runs a matcher query: every series whose labels satisfy match is
// read over [lo, hi] concurrently on the server, and the response carries
// one result row per matched series plus query-wide fan-out statistics.
func (c *Client) Query(ctx context.Context, match string, lo, hi int64, opts QueryOptions) (api.QueryResponse, error) {
	q := url.Values{
		"match": {match},
		"lo":    {strconv.FormatInt(lo, 10)},
		"hi":    {strconv.FormatInt(hi, 10)},
	}
	if opts.Width > 0 {
		q.Set("width", strconv.FormatInt(opts.Width, 10))
	}
	if opts.Workers > 0 {
		q.Set("workers", strconv.Itoa(opts.Workers))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	var resp api.QueryResponse
	err := c.getJSON(ctx, "/query", q, &resp)
	return resp, err
}

func (c *Client) postJSON(ctx context.Context, path string, body any) (api.CreateSeriesResponse, error) {
	var out api.CreateSeriesResponse
	data, err := json.Marshal(body)
	if err != nil {
		return out, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e api.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return out, fmt.Errorf("client: %s: %s", path, e.Error)
		}
		return out, fmt.Errorf("client: %s: %s", path, resp.Status)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Stats fetches per-series engine statistics.
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var resp api.StatsResponse
	err := c.getJSON(ctx, "/stats", nil, &resp)
	return resp, err
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: health: %s", resp.Status)
	}
	return nil
}

func (c *Client) getJSON(ctx context.Context, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e api.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s: %s", path, e.Error)
		}
		return fmt.Errorf("client: %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
