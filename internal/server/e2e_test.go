package server_test

// End-to-end test: a real server on an ephemeral port, driven through the
// Go client by concurrent writers, then verified point-for-point with
// scans — the acceptance gate for the network ingestion path.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
	"repro/internal/tsdb"
)

func TestEndToEndConcurrentWriters(t *testing.T) {
	const (
		writers   = 8
		nSeries   = 4
		perWriter = 300
		batchSize = 50
	)
	db, err := tsdb.Open(tsdb.Config{
		Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 64},
		AutoCreate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db, CloseDB: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	cl := client.New("http://" + addr.String())
	ctx := context.Background()
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// writers goroutines, two per series, interleaved unique TGs so the
	// per-series streams are genuinely out of order across writers.
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("root.e2e.s%d", g%nSeries)
			for off := 0; off < perWriter; off += batchSize {
				batch := make([]api.Point, 0, batchSize)
				for i := off; i < off+batchSize; i++ {
					tg := int64(i)*int64(writers) + int64(g)
					batch = append(batch, api.Point{Series: name, TG: tg, TA: tg + 3, V: float64(g)})
				}
				for {
					accepted, err := cl.Write(ctx, batch)
					if err == nil {
						if accepted != len(batch) {
							errs <- fmt.Errorf("writer %d: accepted %d of %d", g, accepted, len(batch))
						}
						break
					}
					var bp *client.BackpressureError
					if errors.As(err, &bp) {
						// Honor the server's hint, then resend the whole
						// batch: engine writes are upserts by TG, so the
						// accepted prefix re-applying is harmless.
						time.Sleep(bp.RetryAfter)
						continue
					}
					errs <- fmt.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	names, err := cl.Series(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != nSeries {
		t.Fatalf("series = %v, want %d", names, nSeries)
	}

	perSeries := writers / nSeries * perWriter
	for s := 0; s < nSeries; s++ {
		name := fmt.Sprintf("root.e2e.s%d", s)
		pts, _, err := cl.Scan(ctx, name, 0, int64(1)<<40)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != perSeries {
			t.Fatalf("%s: %d points, want %d", name, len(pts), perSeries)
		}
		if !series.IsSortedByTG(pts) {
			t.Errorf("%s: scan not sorted", name)
		}
		seen := make(map[int64]bool, len(pts))
		for _, p := range pts {
			seen[p.TG] = true
		}
		for i := 0; i < perWriter; i++ {
			for _, g := range []int{s, s + nSeries} {
				tg := int64(i)*int64(writers) + int64(g)
				if !seen[tg] {
					t.Fatalf("%s: accepted point TG=%d not returned", name, tg)
				}
			}
		}
	}

	// Aggregate: bucket counts must cover every point exactly once.
	buckets, err := cl.Aggregate(ctx, "root.e2e.s0", 0, int64(1)<<40, 512)
	if err != nil {
		t.Fatal(err)
	}
	var agg int64
	for _, b := range buckets {
		agg += b.Count
	}
	if agg != int64(perSeries) {
		t.Errorf("aggregate covers %d points, want %d", agg, perSeries)
	}

	// Stats: every accepted point reached an engine.
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var ingested int64
	for _, st := range stats.Series {
		ingested += st.PointsIngested
		if st.Policy == "" {
			t.Errorf("%s: empty policy", st.Name)
		}
	}
	if ingested != int64(writers*perWriter) {
		t.Errorf("ingested %d, want %d", ingested, writers*perWriter)
	}
}

// TestEndToEndJSONWrite exercises the JSON write body through plain HTTP
// via the client-side types.
func TestEndToEndJSONWrite(t *testing.T) {
	db, err := tsdb.Open(tsdb.Config{
		Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 32},
		AutoCreate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db, CloseDB: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	cl := client.New("http://" + addr.String())
	ctx := context.Background()

	// The client writes line protocol; JSON goes through raw HTTP in the
	// in-package tests. Here just confirm client writes land and read back.
	pts := []api.Point{
		{Series: "j", TG: 10, TA: 11, V: 1},
		{Series: "j", TG: 5, TA: 12, V: 2}, // out of order
		{Series: "k", TG: 1, TA: 2, V: 3},
	}
	accepted, err := cl.Write(ctx, pts)
	if err != nil || accepted != 3 {
		t.Fatalf("write: %d, %v", accepted, err)
	}
	got, stats, err := cl.Scan(ctx, "j", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].TG != 5 || got[1].TG != 10 {
		t.Fatalf("scan j = %+v", got)
	}
	if stats.ResultPoints != 2 {
		t.Errorf("scan stats: %+v", stats)
	}
}
