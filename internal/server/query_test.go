package server

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server/api"
	"repro/internal/server/client"
)

// TestQueryEndToEnd drives the tag-query surface through the real HTTP
// stack with the real client: labeled registration via POST /series,
// writes addressed by the returned IDs, matcher discovery via
// /series?match=, parallel multi-series reads via /query (raw and
// aggregated), and the lsmd_index_* / lsmd_query_fanout_* metrics
// families.
func TestQueryEndToEnd(t *testing.T) {
	srv, base := startServer(t, Config{DB: testDB(t), CloseDB: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer srv.Close(context.Background())
	c := client.New(base)

	ids := make(map[string]string) // device -> id
	for _, dev := range []string{"d0", "d1", "d2"} {
		id, err := c.CreateSeriesLabeled(ctx, map[string]string{
			"region": "eu", "device": dev, "metric": "temp",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[dev] = id
	}
	usID, err := c.CreateSeriesLabeled(ctx, map[string]string{
		"region": "us", "device": "d0", "metric": "temp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSeries(ctx, "root.named"); err != nil {
		t.Fatal(err)
	}

	var pts []api.Point
	for dev, id := range ids {
		for tg := int64(0); tg < 20; tg++ {
			pts = append(pts, api.Point{Series: id, TG: tg, TA: tg, V: float64(len(dev))})
		}
	}
	pts = append(pts, api.Point{Series: usID, TG: 1, TA: 1, V: 9})
	if _, err := c.Write(ctx, pts); err != nil {
		t.Fatal(err)
	}

	// Matcher listing: /series?match= returns IDs plus labels.
	listing, err := c.SeriesMatch(ctx, "region=eu")
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Series) != 3 {
		t.Fatalf("match listing = %+v", listing)
	}
	for _, id := range listing.Series {
		if listing.Labels[id]["region"] != "eu" {
			t.Fatalf("labels for %s = %v", id, listing.Labels[id])
		}
	}

	// Raw query across the eu fleet.
	qr, err := c.Query(ctx, "region=eu,device=~d[0-9]", 0, 100, client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if qr.Stats.SeriesMatched != 3 || qr.Stats.SeriesQueried != 3 || qr.Stats.SeriesFailed != 0 {
		t.Fatalf("query stats = %+v", qr.Stats)
	}
	if qr.Stats.Workers < 1 {
		t.Fatalf("workers = %d", qr.Stats.Workers)
	}
	if len(qr.Results) != 3 {
		t.Fatalf("results = %d", len(qr.Results))
	}
	for _, row := range qr.Results {
		if row.Error != "" || row.Count != 20 || len(row.Points) != 20 {
			t.Fatalf("row %s: count=%d err=%q", row.ID, row.Count, row.Error)
		}
		if row.Labels["metric"] != "temp" {
			t.Fatalf("row %s labels %v", row.ID, row.Labels)
		}
	}
	if qr.Stats.PointsReturned != 60 {
		t.Fatalf("points returned = %d", qr.Stats.PointsReturned)
	}

	// Aggregated query with a pinned sequential baseline and a limit.
	qa, err := c.Query(ctx, "region=eu", 0, 100, client.QueryOptions{Width: 10, Workers: 1, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if qa.Stats.SeriesMatched != 3 || qa.Stats.SeriesQueried != 2 || qa.Stats.Workers != 1 {
		t.Fatalf("aggregate query stats = %+v", qa.Stats)
	}
	for _, row := range qa.Results {
		if len(row.Buckets) != 2 || row.Buckets[0].Count != 10 {
			t.Fatalf("row %s buckets %+v", row.ID, row.Buckets)
		}
	}

	// The implicit __name__ label reaches name-addressed series.
	qn, err := c.Query(ctx, "__name__=root.named", 0, 100, client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if qn.Stats.SeriesMatched != 1 || qn.Results[0].ID != "root.named" {
		t.Fatalf("__name__ query = %+v", qn.Stats)
	}

	// Bad matcher syntax is a 400 with a typed message, not a panic/500.
	resp, body := get(t, base+"/query?match="+`region%3D~%5B`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "bad matcher") {
		t.Fatalf("bad matcher: status %d body %s", resp.StatusCode, body)
	}

	// Metrics families exist and carry the activity.
	resp, body = get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"lsmd_index_series 5",
		"lsmd_index_label_names",
		"lsmd_index_postings",
		"lsmd_index_matches_total",
		"lsmd_query_fanout_workers",
		"lsmd_query_fanout_queries_total 3",
		"lsmd_query_fanout_series_total",
		"lsmd_query_requests_total 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCreateSeriesValidation pins the POST /series error envelope.
func TestCreateSeriesValidation(t *testing.T) {
	srv, base := startServer(t, Config{DB: testDB(t), CloseDB: true})
	defer srv.Close(context.Background())

	cases := []struct {
		body   string
		status int
	}{
		{`{"name":"ok.series"}`, http.StatusOK},
		{`{"labels":{"region":"eu"}}`, http.StatusOK},
		{`{"name":"x","labels":{"a":"b"}}`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"labels":{"bad name":"v"}}`, http.StatusBadRequest},
		{`{"labels":{"region":""}}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := post(t, base+"/series", "application/json", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("POST /series %s: status %d (want %d), body %s", tc.body, resp.StatusCode, tc.status, body)
		}
	}
}
