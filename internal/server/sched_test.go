package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

// blockingBackend wraps a MemBackend and parks every sstable write on a
// gate channel. Flushes stay in memory (enqueueL0 never touches the
// backend), so this wedges exactly one place: the pool worker inside
// CompactOnce's persist step — letting the test grow an L0 backlog
// deterministically while ingest keeps flowing.
type blockingBackend struct {
	*storage.MemBackend
	gate    chan struct{}
	entered chan string
}

func (b *blockingBackend) Write(name string, data []byte) error {
	if strings.Contains(name, "sst-") {
		select {
		case b.entered <- name:
		default:
		}
		<-b.gate
	}
	return b.MemBackend.Write(name, data)
}

// TestCompactionBackpressure drives the scheduler-based write throttle end
// to end: wedge the single pool worker in a merge, pile queued L0 tables
// past CompactBacklog, and assert POST /write sheds load with 429 +
// Retry-After before the per-engine queues are anywhere near full; after
// the backlog drains, writes flow again and the compaction metrics and
// per-series scheduler stats are visible over HTTP.
func TestCompactionBackpressure(t *testing.T) {
	bb := &blockingBackend{
		MemBackend: storage.NewMemBackend(),
		gate:       make(chan struct{}),
		entered:    make(chan string, 16),
	}
	db, err := tsdb.Open(tsdb.Config{
		Engine: lsm.Config{
			Policy:          lsm.Conventional,
			MemBudget:       4,
			AsyncCompaction: true,
		},
		Backend:        bb,
		AutoCreate:     true,
		CompactWorkers: 1,
		CompactBacklog: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, base := startServer(t, Config{DB: db, Shards: 1, CloseDB: true})

	// First flush: worker picks it up and wedges in persistTable.
	for i := 0; i < 4; i++ {
		if err := db.Put("s", series.Point{TG: int64(i), TA: int64(i), V: 1}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	select {
	case <-bb.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("pool worker never reached the backend")
	}

	// Two more flushes while the worker is stuck: aggregate queued depth
	// reaches CompactBacklog and the pool reports Overloaded.
	for i := 4; i < 12; i++ {
		if err := db.Put("s", series.Point{TG: int64(i), TA: int64(i), V: 1}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if !db.Compactions().Overloaded() {
		t.Fatalf("pool not overloaded: %+v", db.Compactions().Stats())
	}

	resp, body := post(t, base+"/write", "text/plain", "s 100 100 1.0")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(body, "compaction backlog") {
		t.Errorf("429 body: %s", body)
	}

	// The scheduler section is live on /metrics while throttled.
	_, metricsBody := get(t, base+"/metrics")
	for _, want := range []string{
		"lsmd_compaction_workers 1",
		"lsmd_compaction_backpressure 1",
		"lsmd_write_requests_throttled_total 1",
		"lsmd_compaction_wait_seconds_count",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Release the worker and let the backlog drain.
	close(bb.gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := db.Compactions().Stats()
		if st.QueuedTables == 0 && st.RunningSeries == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body = post(t, base+"/write", "text/plain", "s 100 100 1.0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain write: status %d, body %s", resp.StatusCode, body)
	}

	// Per-series scheduler stats ride on /series/{series}/stats.
	var detail struct {
		Compaction *struct {
			Queued  int   `json:"queued"`
			Running bool  `json:"running"`
			Merges  int64 `json:"merges"`
			Failed  int64 `json:"failed"`
		} `json:"compaction"`
	}
	_, statsBody := get(t, base+"/series/s/stats")
	if err := json.Unmarshal([]byte(statsBody), &detail); err != nil {
		t.Fatalf("series stats: %v", err)
	}
	if detail.Compaction == nil {
		t.Fatal("series stats missing compaction block")
	}
	if detail.Compaction.Merges == 0 || detail.Compaction.Failed != 0 {
		t.Fatalf("compaction stats: %+v", *detail.Compaction)
	}

	_, mb := get(t, base+"/metrics")
	if !strings.Contains(mb, "lsmd_compaction_backpressure 0") {
		t.Error("backpressure gauge still set after drain")
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestNoSchedulerNoCompactionMetrics pins the absence contract: a DB
// without a shared pool (sync compaction here) exposes no
// lsmd_compaction_* series and no compaction block in series stats.
func TestNoSchedulerNoCompactionMetrics(t *testing.T) {
	srv, base := startServer(t, Config{DB: testDB(t), CloseDB: true})
	if _, body := post(t, base+"/write", "text/plain", "s 1 1 1.0"); !strings.Contains(body, `"accepted":1`) {
		t.Fatalf("write: %s", body)
	}
	if _, mb := get(t, base+"/metrics"); strings.Contains(mb, "lsmd_compaction_") {
		t.Error("/metrics exposes compaction series without a scheduler")
	}
	if _, sb := get(t, base+"/series/s/stats"); strings.Contains(sb, `"compaction"`) {
		t.Errorf("series stats exposes compaction block without a scheduler: %s", sb)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
