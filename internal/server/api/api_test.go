package api

import (
	"math"
	"testing"
)

func TestLineRoundTrip(t *testing.T) {
	pts := []Point{
		{Series: "root.v1.temp", TG: 42, TA: 50, V: 3.25},
		{Series: "s", TG: -7, TA: 0, V: 0},
		{Series: "s", TG: 1, AssignTA: true, V: math.MaxFloat64},
		{Series: "s", TG: 1, TA: 2, V: -1e-300},
	}
	for _, p := range pts {
		got, err := ParseLine(FormatLine(p))
		if err != nil {
			t.Fatalf("ParseLine(FormatLine(%+v)): %v", p, err)
		}
		if got != p {
			t.Errorf("round trip %+v -> %q -> %+v", p, FormatLine(p), got)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"s 1 2",          // 3 fields
		"s 1 2 3 4",      // 5 fields
		"s x 2 3",        // bad t_g
		"s 1 y 3",        // bad t_a
		"s 1 2 notfloat", // bad value
	} {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) accepted", line)
		}
	}
}

func TestParseLineAssignTA(t *testing.T) {
	p, err := ParseLine("series.a 100 - 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if !p.AssignTA || p.TG != 100 || p.V != 2.5 {
		t.Errorf("got %+v", p)
	}
}
