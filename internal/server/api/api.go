// Package api defines the wire types and the text line protocol shared by
// the ingestion/query server (internal/server) and its Go client
// (internal/server/client). Keeping them in a leaf package lets the server
// tests drive the real client without an import cycle.
//
// The line protocol is newline-delimited, one point per line:
//
//	series t_g t_a value
//
// Fields are whitespace-separated. t_a may be "-" to let the server assign
// the arrival timestamp at receipt time (the paper's t_a is "assigned by
// the database"). Blank lines and lines starting with '#' are ignored.
package api

import (
	"fmt"
	"strconv"
	"strings"
)

// Point is one write in a batch, addressed to a series.
type Point struct {
	Series string  `json:"series"`
	TG     int64   `json:"tg"`
	TA     int64   `json:"ta"`
	V      float64 `json:"v"`
	// AssignTA requests a server-assigned arrival timestamp ("-" in the
	// line protocol; "assign_ta": true in JSON).
	AssignTA bool `json:"assign_ta,omitempty"`
}

// WriteRequest is the JSON write body. A bare JSON array of points is also
// accepted.
type WriteRequest struct {
	Points []Point `json:"points"`
}

// WriteResponse reports the outcome of a write: Accepted points were
// applied to the engine before the response was sent; Rejected points were
// refused because an ingest queue was full (HTTP 429).
type WriteResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
}

// PointJSON is one stored point in query responses.
type PointJSON struct {
	TG int64   `json:"tg"`
	TA int64   `json:"ta"`
	V  float64 `json:"v"`
}

// ScanStatsJSON mirrors lsm.ScanStats for cost accounting.
type ScanStatsJSON struct {
	TablesTouched     int     `json:"tables_touched"`
	TablePoints       int     `json:"table_points"`
	MemPoints         int     `json:"mem_points"`
	ResultPoints      int     `json:"result_points"`
	ReadAmplification float64 `json:"read_amplification"`
	// BlocksRead / BlocksCached report what the block-addressed read path
	// actually fetched: blocks decoded from storage vs. served by the
	// shared block cache. Both are zero for memory-only databases.
	BlocksRead   int64 `json:"blocks_read"`
	BlocksCached int64 `json:"blocks_cached"`
	// TablesTouchedPerLevel breaks tables_touched down by on-disk level
	// (element 0 = L1; L0 and memtable sources excluded). Omitted for
	// engines without level accounting.
	TablesTouchedPerLevel []int `json:"tables_touched_per_level,omitempty"`
	// RollupBucketsUsed is the number of precomputed rollup buckets an
	// aggregate folded instead of raw points (0 for plain scans and for
	// databases without a rollup window). RawPointsScanned is the residual
	// raw work: points decoded and folded the ordinary way (equal to
	// result_points; spelled out so dashboards can plot the rollup split
	// without knowing that equivalence).
	RollupBucketsUsed int `json:"rollup_buckets_used"`
	RawPointsScanned  int `json:"raw_points_scanned"`
}

// ScanResponse is the /scan body. Error, when set, reports a storage or
// decode fault that truncated the streamed point list.
type ScanResponse struct {
	Series string        `json:"series"`
	Count  int           `json:"count"`
	Points []PointJSON   `json:"points"`
	Stats  ScanStatsJSON `json:"stats"`
	Error  string        `json:"error,omitempty"`
}

// BucketJSON is one downsampled window in /aggregate responses.
type BucketJSON struct {
	Start int64   `json:"start"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Sum   float64 `json:"sum"`
	First float64 `json:"first"`
	Last  float64 `json:"last"`
}

// AggregateResponse is the /aggregate body. Stats carries the read-cost
// accounting of the underlying snapshot scan (the buckets are folded
// streaming off an iterator, so this is the only place the cost surfaces).
type AggregateResponse struct {
	Series  string        `json:"series"`
	Width   int64         `json:"width"`
	Buckets []BucketJSON  `json:"buckets"`
	Stats   ScanStatsJSON `json:"stats"`
}

// SeriesResponse is the /series body. With a ?match= filter, Series holds
// only the matching IDs and Labels carries each one's label set.
type SeriesResponse struct {
	Series []string `json:"series"`
	// Labels maps series ID → label pairs; present only for matcher
	// listings (plain /series stays byte-compatible with old clients).
	Labels map[string]map[string]string `json:"labels,omitempty"`
}

// CreateSeriesRequest is the POST /series body. Exactly one of Name
// (name-addressed series) or Labels (tag-addressed; the server derives
// the canonical ID) must be set.
type CreateSeriesRequest struct {
	Name   string            `json:"name,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
}

// CreateSeriesResponse reports the created (or pre-existing) series.
type CreateSeriesResponse struct {
	// ID is the series' canonical identifier — the name for
	// name-addressed series, the label-set hash for tagged ones. Writes
	// and scans address the series by this ID.
	ID     string            `json:"id"`
	Labels map[string]string `json:"labels,omitempty"`
}

// QuerySeriesJSON is one matched series' slice of a /query response.
type QuerySeriesJSON struct {
	ID      string            `json:"id"`
	Labels  map[string]string `json:"labels,omitempty"`
	Points  []PointJSON       `json:"points,omitempty"`
	Buckets []BucketJSON      `json:"buckets,omitempty"`
	Count   int               `json:"count"`
	Stats   ScanStatsJSON     `json:"stats"`
	// Error records a per-series failure (e.g. the series was dropped
	// mid-query); the query as a whole still succeeds.
	Error string `json:"error,omitempty"`
}

// QueryStatsJSON summarizes one /query execution.
type QueryStatsJSON struct {
	SeriesMatched  int   `json:"series_matched"`
	SeriesQueried  int   `json:"series_queried"`
	SeriesFailed   int   `json:"series_failed"`
	TablesTouched  int   `json:"tables_touched"`
	BlocksRead     int64 `json:"blocks_read"`
	PointsReturned int   `json:"points_returned"`
	Workers        int   `json:"workers"`
}

// QueryResponse is the /query body: the canonical form of the parsed
// matchers, one result per matched series (sorted by ID), and the
// query-wide fan-out statistics.
type QueryResponse struct {
	Matchers string            `json:"matchers"`
	Results  []QuerySeriesJSON `json:"results"`
	Stats    QueryStatsJSON    `json:"stats"`
}

// DecisionJSON reports the adaptive analyzer's current choice for a series.
type DecisionJSON struct {
	Policy string  `json:"policy"`
	NSeq   int     `json:"n_seq"`
	Rc     float64 `json:"r_c"`
	Rs     float64 `json:"r_s"`
}

// SeriesStatsJSON is one series' entry in /stats.
type SeriesStatsJSON struct {
	Name               string  `json:"name"`
	Policy             string  `json:"policy"`
	SeqCap             int     `json:"seq_cap"`
	PointsIngested     int64   `json:"points_ingested"`
	PointsWritten      int64   `json:"points_written"`
	PointsRewritten    int64   `json:"points_rewritten"`
	Flushes            int64   `json:"flushes"`
	Compactions        int64   `json:"compactions"`
	InOrderPoints      int64   `json:"in_order_points"`
	OutOfOrderPoints   int64   `json:"out_of_order_points"`
	WriteAmplification float64 `json:"write_amplification"`
	// Resident reports whether the series has a live engine right now;
	// false means the memory arbiter evicted it (or never instantiated it)
	// and its counters are zero until the next access warms it.
	Resident bool          `json:"resident"`
	Decision *DecisionJSON `json:"decision,omitempty"`
	// Levels describes the engine's on-disk levels L1..Lk, L1 first.
	// Omitted for cold series.
	Levels []LevelStatsJSON `json:"levels,omitempty"`
}

// LevelStatsJSON is one on-disk level's entry in /stats and
// /series/{series}/stats: current structure plus cumulative per-level
// compaction counters.
type LevelStatsJSON struct {
	Level  int `json:"level"`
	Tables int `json:"tables"`
	Points int `json:"points"`
	// TargetPoints is the leveling size target; 0 means unbounded (the
	// last level).
	TargetPoints int `json:"target_points"`
	// Compactions counts merges that wrote into this level; PointsIn the
	// points those merges wrote; PointsRewritten the level's own points
	// they read back and rewrote.
	Compactions     int64 `json:"compactions"`
	PointsIn        int64 `json:"points_in"`
	PointsRewritten int64 `json:"points_rewritten"`
}

// WALStatsJSON is the shared group-commit WAL's /stats block. Present only
// when the DB runs the shared log (durable, WAL on, non-legacy wiring).
type WALStatsJSON struct {
	Shards          int     `json:"shards"`
	Commits         int64   `json:"commits"`
	Records         int64   `json:"records"`
	Points          int64   `json:"points"`
	Checkpoints     int64   `json:"checkpoints"`
	Segments        int     `json:"segments"`
	SegmentsRemoved int64   `json:"segments_removed"`
	PendingSeries   int     `json:"pending_series"`
	PendingPoints   int64   `json:"pending_points"`
	BatchMeanPoints float64 `json:"batch_mean_points"`
	CommitP99Secs   float64 `json:"commit_p99_seconds"`
}

// ArbiterStatsJSON is the memory arbiter's /stats block. Present only when
// the DB was opened with a memory budget.
type ArbiterStatsJSON struct {
	BudgetBytes         int64   `json:"budget_bytes"`
	MemtableBytes       int64   `json:"memtable_bytes"`
	MemtableTargetBytes int64   `json:"memtable_target_bytes"`
	CacheTargetBytes    int64   `json:"cache_target_bytes"`
	WritePressure       float64 `json:"write_pressure"`
	ReadPressure        float64 `json:"read_pressure"`
	ResidentSeries      int     `json:"resident_series"`
	ColdSeries          int     `json:"cold_series"`
	Evictions           int64   `json:"evictions"`
	Rebalances          int64   `json:"rebalances"`
}

// StatsResponse is the /stats body.
type StatsResponse struct {
	TotalWA float64           `json:"total_wa"`
	Series  []SeriesStatsJSON `json:"series"`
	WAL     *WALStatsJSON     `json:"wal,omitempty"`
	Arbiter *ArbiterStatsJSON `json:"arbiter,omitempty"`
}

// ReadStatsJSON is the server-side read-path accounting for one series:
// cumulative ScanStats sums over every scan/aggregate served since start,
// the most recent scan's ScanStats, and latency quantiles from the
// per-series scan-latency histogram. The latency fields are pointers so a
// quantile that is undefined (NaN: no observations yet) is omitted from
// the wire instead of being misreported as 0 — encoding/json cannot
// represent NaN.
type ReadStatsJSON struct {
	Scans              int64          `json:"scans"`
	TablesTouched      int64          `json:"tables_touched"`
	TablePoints        int64          `json:"table_points"`
	MemPoints          int64          `json:"mem_points"`
	ResultPoints       int64          `json:"result_points"`
	ReadAmplification  float64        `json:"read_amplification"`
	LatencyP50Seconds  *float64       `json:"latency_p50_seconds,omitempty"`
	LatencyP99Seconds  *float64       `json:"latency_p99_seconds,omitempty"`
	LatencyMeanSeconds *float64       `json:"latency_mean_seconds,omitempty"`
	LastScan           *ScanStatsJSON `json:"last_scan,omitempty"`
}

// CompactionStatsJSON is the shared compaction scheduler's view of one
// series: its pending L0 backlog, whether a pool worker is merging it right
// now, and cumulative merge/wait accounting. Present only when the DB runs
// a shared scheduler.
type CompactionStatsJSON struct {
	Queued       int     `json:"queued"`
	Running      bool    `json:"running"`
	Merges       int64   `json:"merges"`
	Failed       int64   `json:"failed"`
	WaitSeconds  float64 `json:"wait_seconds"`
	MergeSeconds float64 `json:"merge_seconds"`
}

// SeriesDetailResponse is the /series/{series}/stats body: the same engine
// counters as one /stats entry plus the server's read-path accounting and,
// with a shared compaction scheduler, the scheduler's per-series view.
type SeriesDetailResponse struct {
	SeriesStatsJSON
	Read       ReadStatsJSON        `json:"read"`
	Compaction *CompactionStatsJSON `json:"compaction,omitempty"`
}

// ErrorResponse is the body of non-2xx responses (except 429, which uses
// WriteResponse so the caller learns the partial-acceptance split).
type ErrorResponse struct {
	Error string `json:"error"`
}

// RecoveryJSON is the /healthz recovery block: what the store rebuilt from
// its backend at startup.
type RecoveryJSON struct {
	CatalogFound        bool     `json:"catalog_found"`
	CatalogVersion      uint64   `json:"catalog_version"`
	SeriesRecovered     int      `json:"series_recovered"`
	WALOnlySeries       int      `json:"wal_only_series"`
	MigratedSeries      []string `json:"migrated_series,omitempty"`
	OrphanSeriesRemoved []string `json:"orphan_series_removed,omitempty"`
	WALPointsReplayed   int64    `json:"wal_points_replayed"`
	TornWALs            int      `json:"torn_wals"`
	OrphanTablesRemoved int      `json:"orphan_tables_removed"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status   string       `json:"status"`
	Recovery RecoveryJSON `json:"recovery"`
}

// FormatLine renders one point in the line protocol.
func FormatLine(p Point) string {
	ta := strconv.FormatInt(p.TA, 10)
	if p.AssignTA {
		ta = "-"
	}
	return fmt.Sprintf("%s %d %s %s", p.Series, p.TG, ta, strconv.FormatFloat(p.V, 'g', -1, 64))
}

// ParseLine parses one line-protocol line. Callers must skip blank and
// comment lines themselves (the server does so with line numbers intact).
func ParseLine(line string) (Point, error) {
	f := strings.Fields(line)
	if len(f) != 4 {
		return Point{}, fmt.Errorf("want 4 fields \"series t_g t_a value\", got %d", len(f))
	}
	var p Point
	p.Series = f[0]
	tg, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Point{}, fmt.Errorf("bad t_g %q", f[1])
	}
	p.TG = tg
	if f[2] == "-" {
		p.AssignTA = true
	} else {
		ta, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return Point{}, fmt.Errorf("bad t_a %q", f[2])
		}
		p.TA = ta
	}
	v, err := strconv.ParseFloat(f[3], 64)
	if err != nil {
		return Point{}, fmt.Errorf("bad value %q", f[3])
	}
	p.V = v
	return p, nil
}
