package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

func testDB(t *testing.T) *tsdb.DB {
	t.Helper()
	db, err := tsdb.Open(tsdb.Config{
		Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 64},
		AutoCreate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, "http://" + addr.String()
}

func post(t *testing.T, url, contentType, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestBackpressure fills the single-shard, single-slot ingest queue while
// the worker is held at a test hook, and asserts the next write is
// rejected with 429 + Retry-After; releasing the worker completes the
// queued writes.
func TestBackpressure(t *testing.T) {
	srv, err := New(Config{DB: testDB(t), Shards: 1, QueueLen: 1, CloseDB: true})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	srv.pool.hookBeforeApply = func() {
		entered <- struct{}{}
		<-gate
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	type result struct {
		status int
		body   string
	}
	send := func(line string) chan result {
		ch := make(chan result, 1)
		go func() {
			resp, err := http.Post(base+"/write", "text/plain", strings.NewReader(line))
			if err != nil {
				ch <- result{-1, err.Error()}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			ch <- result{resp.StatusCode, string(b)}
		}()
		return ch
	}

	// A: picked up by the worker, which now blocks at the gate.
	chA := send("s 1 1 1.0")
	<-entered
	// B: sits in the queue (capacity 1). Wait until it is visibly queued:
	// A (in-flight) + B (queued) = 2 accounted batches.
	chB := send("s 2 2 2.0")
	deadline := time.Now().Add(5 * time.Second)
	for srv.pool.shards[0].queuedBatches.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d batches", srv.pool.shards[0].queuedBatches.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// C: queue full -> immediate 429 with Retry-After.
	resp, body := post(t, base+"/write", "text/plain", "s 3 3 3.0")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(body, `"rejected":1`) || !strings.Contains(body, `"accepted":0`) {
		t.Errorf("429 body: %s", body)
	}

	// Release the worker: A and B complete successfully.
	close(gate)
	for _, ch := range []chan result{chA, chB} {
		r := <-ch
		if r.status != http.StatusOK {
			t.Fatalf("queued write finished with %d: %s", r.status, r.body)
		}
	}

	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPartialBackpressure checks the multi-shard split: with one shard
// blocked full, a request spanning a full and a free shard reports both
// accepted and rejected counts.
func TestPartialBackpressure(t *testing.T) {
	srv, err := New(Config{DB: testDB(t), Shards: 2, QueueLen: 1, CloseDB: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find two series names hashing to different shards.
	var s0, s1 string
	for i := 0; s0 == "" || s1 == ""; i++ {
		name := fmt.Sprintf("series%d", i)
		if srv.pool.shardFor(name) == 0 && s0 == "" {
			s0 = name
		}
		if srv.pool.shardFor(name) == 1 && s1 == "" {
			s1 = name
		}
	}
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	srv.pool.hookBeforeApply = func() {
		entered <- struct{}{}
		<-gate
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	// Hold both workers, then fill shard 0's queue.
	done := make(chan struct{}, 2)
	go func() {
		resp, _ := http.Post(base+"/write", "text/plain",
			strings.NewReader(s0+" 1 1 1\n"+s1+" 1 1 1\n"))
		resp.Body.Close()
		done <- struct{}{}
	}()
	<-entered
	<-entered
	go func() {
		resp, _ := http.Post(base+"/write", "text/plain", strings.NewReader(s0+" 2 2 2\n"))
		resp.Body.Close()
		done <- struct{}{}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.pool.shards[0].queuedBatches.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("shard 0 queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// Now a request spanning both shards: shard 0 part rejected, shard 1
	// part accepted (queued; completes after gate opens). Send async, then
	// release the gate so the accepted half can apply.
	type res struct {
		code int
		body string
	}
	ch := make(chan res, 1)
	go func() {
		resp, err := http.Post(base+"/write", "text/plain",
			strings.NewReader(s0+" 3 3 3\n"+s1+" 3 3 3\n"))
		if err != nil {
			ch <- res{-1, err.Error()}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ch <- res{resp.StatusCode, string(b)}
	}()
	// The spanning request must be waiting on its accepted half now; give
	// it a moment to enqueue, then release everything.
	deadline = time.Now().Add(5 * time.Second)
	for srv.pool.shards[1].queuedBatches.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("shard 1 never received the spanning request's batch")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	r := <-ch
	if r.code != http.StatusTooManyRequests {
		t.Fatalf("spanning write status = %d: %s", r.code, r.body)
	}
	if !strings.Contains(r.body, `"accepted":1`) || !strings.Contains(r.body, `"rejected":1`) {
		t.Errorf("spanning write body: %s", r.body)
	}
	<-done
	<-done
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestWriteValidation(t *testing.T) {
	srv, base := startServer(t, Config{DB: testDB(t), CloseDB: true})
	defer srv.Close(context.Background())

	resp, body := post(t, base+"/write", "text/plain", "only three fields\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed line: status %d body %s", resp.StatusCode, body)
	}
	resp, body = post(t, base+"/write", "text/plain", "s notanumber 1 1\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad t_g: status %d body %s", resp.StatusCode, body)
	}
	resp, body = post(t, base+"/write", "application/json", `{"points":[{"tg":1}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing series: status %d body %s", resp.StatusCode, body)
	}
	// Comments and blank lines are skipped; empty request is a no-op 200.
	resp, body = post(t, base+"/write", "text/plain", "# comment\n\n")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"accepted":0`) {
		t.Errorf("comment-only body: status %d body %s", resp.StatusCode, body)
	}
}

func TestServerAssignedArrival(t *testing.T) {
	db := testDB(t)
	srv, base := startServer(t, Config{DB: db, CloseDB: true, Now: func() int64 { return 777 }})
	defer srv.Close(context.Background())

	resp, body := post(t, base+"/write", "text/plain", "s 5 - 1.5\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write: %d %s", resp.StatusCode, body)
	}
	pts, _, err := db.Scan("s", 0, 100)
	if err != nil || len(pts) != 1 {
		t.Fatalf("scan: %v %v", pts, err)
	}
	if pts[0].TA != 777 {
		t.Errorf("server-assigned TA = %d, want 777", pts[0].TA)
	}
}

// TestAggregateRollupStats runs an aggregate whose width is a multiple of
// the store's rollup window against flushed data, and asserts the response
// reports rollup-served buckets; a non-multiple width must report zero.
func TestAggregateRollupStats(t *testing.T) {
	db, err := tsdb.Open(tsdb.Config{
		Engine:       lsm.Config{Policy: lsm.Conventional, MemBudget: 64},
		AutoCreate:   true,
		RollupWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, base := startServer(t, Config{DB: db, CloseDB: true})
	defer srv.Close(context.Background())

	var lines strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&lines, "s %d %d %d.25\n", i, i, i%9)
	}
	resp, body := post(t, base+"/write", "text/plain", lines.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write: %d %s", resp.StatusCode, body)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, r.StatusCode, b)
		}
		return string(b)
	}

	body = get("/aggregate?series=s&lo=0&hi=299&width=10")
	if !strings.Contains(body, `"rollup_buckets_used":`) || !strings.Contains(body, `"raw_points_scanned":`) {
		t.Fatalf("aggregate response missing rollup stats: %s", body)
	}
	if strings.Contains(body, `"rollup_buckets_used":0`) {
		t.Errorf("flushed width-multiple aggregate served no rollup buckets: %s", body)
	}

	// Width 7 is not a multiple of the window: must be all-raw.
	body = get("/aggregate?series=s&lo=0&hi=299&width=7")
	if !strings.Contains(body, `"rollup_buckets_used":0`) {
		t.Errorf("non-multiple width reported rollup buckets: %s", body)
	}

	// The Prometheus counters follow the served reads.
	body = get("/metrics")
	if !strings.Contains(body, "lsmd_rollup_buckets_used_total") ||
		!strings.Contains(body, "lsmd_rollup_served_reads_total") {
		t.Errorf("/metrics missing rollup counters:\n%s", body)
	}
}

func TestQueryErrors(t *testing.T) {
	srv, base := startServer(t, Config{DB: testDB(t), CloseDB: true})
	defer srv.Close(context.Background())

	for path, wantStatus := range map[string]int{
		"/scan?series=missing":              http.StatusNotFound,
		"/scan":                             http.StatusBadRequest,
		"/scan?series=s&lo=abc":             http.StatusBadRequest,
		"/aggregate?series=s&width=0":       http.StatusBadRequest,
		"/aggregate?series=nope&width=10":   http.StatusNotFound,
		"/scan?series=s&lo=1&hi=notanumber": http.StatusBadRequest,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
	}
}

// TestGracefulShutdownFlushes writes without WAL, closes the server, and
// reopens the backend: the drain-and-flush path must have persisted every
// buffered point.
func TestGracefulShutdownFlushes(t *testing.T) {
	backend := storage.NewMemBackend()
	cfg := tsdb.Config{
		Engine:     lsm.Config{Policy: lsm.Conventional, MemBudget: 256}, // large: points stay buffered
		Backend:    backend,
		AutoCreate: true,
	}
	db, err := tsdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, base := startServer(t, Config{DB: db, CloseDB: true})

	var lines strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&lines, "root.a %d %d %d\n", i, i, i)
	}
	resp, body := post(t, base+"/write", "text/plain", lines.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write: %d %s", resp.StatusCode, body)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	db2, err := tsdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	pts, _, err := db2.Scan("root.a", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 40 {
		t.Errorf("after shutdown+reopen: %d points, want 40 (flush-on-close lost data)", len(pts))
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, base := startServer(t, Config{DB: testDB(t), CloseDB: true})
	defer srv.Close(context.Background())

	post(t, base+"/write", "text/plain", "m1 1 1 1\nm1 2 2 2\nm2 1 1 1\n")
	http.Get(base + "/scan?series=m1")

	resp, body := func() (*http.Response, string) {
		r, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, string(b)
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"lsmd_write_requests_total 1",
		"lsmd_ingest_points_applied_total 3",
		"lsmd_scan_requests_total 1",
		"lsmd_ingest_queue_batches{shard=\"0\"}",
		"lsmd_write_request_seconds_count 1",
		"lsmd_series_write_amplification{series=\"m1\"}",
		"lsmd_series_policy{series=\"m2\",policy=\"pi_c\"} 1",
		"lsmd_db_series 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}
