package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/lsm"
	"repro/internal/server/api"
	"repro/internal/tsdb"
)

// TestLevelObservabilitySurfaces pins the multi-level additions across the
// HTTP surface: /stats carries per-level blocks, /series/{s}/stats carries
// the same plus the per-level scan breakdown, and /metrics exposes the
// lsmd_level_* families aggregated across series.
func TestLevelObservabilitySurfaces(t *testing.T) {
	db, err := tsdb.Open(tsdb.Config{
		Engine: lsm.Config{
			Policy: lsm.Conventional, MemBudget: 16, SSTablePoints: 8,
			Levels: 3, GrowthFactor: 2,
		},
		AutoCreate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, base := startServer(t, Config{DB: db, Shards: 1, CloseDB: true})
	defer srv.Close(context.Background())

	// Enough overwrites to push data into L2/L3.
	var body strings.Builder
	for i := 0; i < 1200; i++ {
		fmt.Fprintf(&body, "m %d %d %d\n", (i*7)%400, i, i)
	}
	if resp, rb := post(t, base+"/write", "text/plain", body.String()); resp.StatusCode != 200 {
		t.Fatalf("write: %d %s", resp.StatusCode, rb)
	}

	// /stats: the series reports 3 levels with data below L1.
	_, sb := get(t, base+"/stats")
	var stats api.StatsResponse
	if err := json.Unmarshal([]byte(sb), &stats); err != nil {
		t.Fatalf("parse /stats: %v", err)
	}
	if len(stats.Series) != 1 {
		t.Fatalf("want 1 series, got %d", len(stats.Series))
	}
	levels := stats.Series[0].Levels
	if len(levels) != 3 {
		t.Fatalf("/stats reports %d levels, want 3: %s", len(levels), sb)
	}
	if levels[0].Level != 1 || levels[2].TargetPoints != 0 {
		t.Errorf("level numbering/targets wrong: %+v", levels)
	}
	deeper := 0
	for _, l := range levels[1:] {
		deeper += l.Points
	}
	if deeper == 0 {
		t.Errorf("no points below L1 in /stats: %+v", levels)
	}

	// /series/m/stats: same levels plus the per-level scan breakdown.
	_, db2 := get(t, base+"/series/m/stats")
	var detail api.SeriesDetailResponse
	if err := json.Unmarshal([]byte(db2), &detail); err != nil {
		t.Fatalf("parse series stats: %v", err)
	}
	if len(detail.Levels) != 3 {
		t.Fatalf("/series/m/stats reports %d levels, want 3", len(detail.Levels))
	}
	if resp, scan := get(t, base+"/scan?series=m&lo=0&hi=1000"); resp.StatusCode != 200 {
		t.Fatalf("scan failed: %s", scan)
	} else {
		var sr api.ScanResponse
		if err := json.Unmarshal([]byte(scan), &sr); err != nil {
			t.Fatalf("parse scan: %v", err)
		}
		if len(sr.Stats.TablesTouchedPerLevel) != 3 {
			t.Fatalf("scan stats per-level breakdown %v, want 3 levels", sr.Stats.TablesTouchedPerLevel)
		}
		sum := 0
		for _, n := range sr.Stats.TablesTouchedPerLevel {
			sum += n
		}
		if sum != sr.Stats.TablesTouched {
			t.Errorf("per-level tables %v sum %d != tables_touched %d",
				sr.Stats.TablesTouchedPerLevel, sum, sr.Stats.TablesTouched)
		}
	}

	// /metrics: lsmd_level_* families present with level labels.
	_, mb := get(t, base+"/metrics")
	for _, want := range []string{
		`lsmd_level_tables{level="1"}`,
		`lsmd_level_points{level="3"}`,
		`lsmd_level_target_points{level="2"}`,
		`lsmd_level_compactions_total{level="1"}`,
		`lsmd_level_points_in_total{level="2"}`,
		`lsmd_level_points_rewritten_total{level="1"}`,
	} {
		if !strings.Contains(mb, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
