// Package server is the network front-end over the multi-series tsdb
// layer: an HTTP server exposing batched writes (text line protocol or
// JSON) and scan/aggregate/series/stats reads, with a sharded bounded
// ingest pipeline, explicit backpressure (429 + Retry-After), Prometheus
// metrics, and graceful drain-and-flush shutdown. It is the substrate the
// ROADMAP's scaling work (sharding, replication, admission control) plugs
// into.
//
// Endpoints:
//
//	POST /write      line protocol "series t_g t_a value" (or JSON)
//	GET  /scan       ?series=S&lo=&hi=
//	GET  /aggregate  ?series=S&lo=&hi=&width=
//	GET  /query      ?match=region=eu,device=~d[0-9]+&lo=&hi=[&width=&workers=&limit=]
//	GET  /series     [?match=...]
//	POST /series     {"name":...} or {"labels":{...}}
//	GET  /series/{series}/stats
//	GET  /stats
//	GET  /metrics    Prometheus text format
//	GET  /healthz
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/series"
	"repro/internal/server/api"
	"repro/internal/tsdb"
	"repro/internal/wal/groupwal"
)

// DefaultMaxBody bounds the size of one write request body.
const DefaultMaxBody = 32 << 20

// Config parameterizes a Server.
type Config struct {
	// DB is the underlying store. Required.
	DB *tsdb.DB
	// Shards is the number of ingest worker goroutines (series are hashed
	// across them). Zero selects GOMAXPROCS, capped at 16.
	Shards int
	// QueueLen is the per-shard queue capacity in request batches. Zero
	// selects 128. When a shard's queue is full, its part of a write is
	// rejected with 429.
	QueueLen int
	// MaxBody caps the write request body size in bytes (zero selects
	// DefaultMaxBody).
	MaxBody int64
	// RetryAfter is the Retry-After hint returned with 429 responses (zero
	// selects 1s).
	RetryAfter time.Duration
	// CloseDB makes Close also close the DB after draining and flushing.
	CloseDB bool
	// Now supplies server-assigned arrival timestamps (t_a fields written
	// as "-"); nil selects wall-clock Unix milliseconds.
	Now func() int64
}

// Server is the HTTP ingestion/query server.
type Server struct {
	cfg  Config
	db   *tsdb.DB
	pool *ingestPool
	mux  *http.ServeMux

	httpSrv  *http.Server
	listener net.Listener

	writeRequests   atomic.Int64
	writesRejected  atomic.Int64 // requests that saw any rejection
	writesThrottled atomic.Int64 // rejections caused by compaction backpressure
	scanRequests    atomic.Int64
	aggRequests     atomic.Int64
	queryRequests   atomic.Int64
	scannedPoints   atomic.Int64

	// Rollup-path accounting: precomputed buckets folded into aggregate
	// answers, and how many reads used at least one (the rest ran fully
	// raw — no eligible rollup, or widths that don't divide evenly).
	rollupBuckets    atomic.Int64
	rollupServedAggs atomic.Int64

	latMu    sync.Mutex
	writeLat *metrics.Histogram // write request latency, seconds

	// readMu guards reads, the per-series read-path accounting fed by every
	// scan/aggregate: cumulative ScanStats sums, the last scan's ScanStats,
	// and a scan-latency histogram. Exposed on /metrics and
	// /series/{series}/stats.
	readMu sync.Mutex
	reads  map[string]*seriesReadStats

	closed atomic.Bool
}

// seriesReadStats accumulates one series' server-side read accounting.
type seriesReadStats struct {
	scans         int64
	tablesTouched int64
	tablePoints   int64
	memPoints     int64
	resultPoints  int64
	last          lsm.ScanStats
	lat           *metrics.Histogram // seconds
}

// readAmplification returns the cumulative points-read / points-returned
// ratio across every scan served for the series.
func (rs *seriesReadStats) readAmplification() float64 {
	if rs.resultPoints == 0 {
		return 0
	}
	return float64(rs.tablePoints+rs.memPoints) / float64(rs.resultPoints)
}

// observeRead folds one scan/aggregate's cost into the per-series read
// accounting.
func (s *Server) observeRead(name string, st lsm.ScanStats, d time.Duration) {
	if st.RollupBuckets > 0 {
		s.rollupBuckets.Add(int64(st.RollupBuckets))
		s.rollupServedAggs.Add(1)
	}
	s.readMu.Lock()
	defer s.readMu.Unlock()
	rs := s.reads[name]
	if rs == nil {
		// 1ms bins over [0, 1s); slower scans land in the over-range tally
		// and quantiles saturate at 1s.
		rs = &seriesReadStats{lat: metrics.NewHistogram(0, 1, 1000)}
		s.reads[name] = rs
	}
	rs.scans++
	rs.tablesTouched += int64(st.TablesTouched)
	rs.tablePoints += int64(st.TablePoints)
	rs.memPoints += int64(st.MemPoints)
	rs.resultPoints += int64(st.ResultPoints)
	rs.last = st
	rs.lat.Observe(d.Seconds())
}

// New builds a server over db. Call Start (or mount Handler yourself),
// then Close to drain.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 16 {
			cfg.Shards = 16
		}
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 128
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixMilli() }
	}
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		pool:     newIngestPool(cfg.DB, cfg.Shards, cfg.QueueLen),
		writeLat: metrics.NewHistogram(0, 10, 100), // 100ms buckets over [0,10s)
		reads:    make(map[string]*seriesReadStats),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /write", s.handleWrite)
	mux.HandleFunc("GET /scan", s.handleScan)
	mux.HandleFunc("GET /aggregate", s.handleAggregate)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /series", s.handleSeries)
	mux.HandleFunc("POST /series", s.handleCreateSeries)
	mux.HandleFunc("GET /series/{series}/stats", s.handleSeriesStats)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s, nil
}

// Handler returns the route table (for tests or embedding behind another
// mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. ":8080", "127.0.0.1:0") and serves in a
// background goroutine. The bound address is returned (useful with port
// 0).
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr(), nil
}

// Close shuts down gracefully: stop accepting connections, wait for
// in-flight requests (bounded by ctx), drain the ingest queues, flush
// every series, and — when Config.CloseDB is set — close the DB.
func (s *Server) Close(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	var firstErr error
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			firstErr = err
		}
	}
	s.pool.close()
	if err := s.db.FlushAll(); err != nil && firstErr == nil {
		firstErr = err
	}
	if s.cfg.CloseDB {
		if err := s.db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---- write path ----

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.writeRequests.Add(1)

	// Depth-based compaction backpressure: when the shared scheduler's
	// aggregate L0 backlog crosses its threshold, shed the write before
	// even parsing the body. Accepting it would only push the backlog
	// toward the per-engine queue limits, where ingest shards block and
	// every series' latency collapses at once; a 429 here keeps the
	// slowdown explicit and client-visible instead.
	if pool := s.db.Compactions(); pool != nil && pool.Overloaded() {
		s.writesRejected.Add(1)
		s.writesThrottled.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		s.writeJSON(w, http.StatusTooManyRequests, api.WriteResponse{
			Error: "compaction backlog: retry later",
		})
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	defer body.Close()

	ct := r.Header.Get("Content-Type")
	var (
		entries []entry
		err     error
	)
	if strings.HasPrefix(ct, "application/json") {
		entries, err = s.parseJSONBody(body)
	} else {
		entries, err = s.parseLineBody(body)
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBody)
			return
		}
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(entries) == 0 {
		s.writeJSON(w, http.StatusOK, api.WriteResponse{})
		return
	}

	accepted, rejected, req := s.pool.enqueue(entries)
	var applyErr error
	if req != nil {
		applyErr = req.wait()
	}
	s.latMu.Lock()
	s.writeLat.Observe(time.Since(start).Seconds())
	s.latMu.Unlock()

	switch {
	case applyErr != nil:
		// Accepted points that failed to apply are an engine-side error,
		// not backpressure.
		s.writeJSON(w, http.StatusInternalServerError, api.WriteResponse{
			Accepted: accepted, Rejected: rejected, Error: applyErr.Error(),
		})
	case rejected > 0:
		s.writesRejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		s.writeJSON(w, http.StatusTooManyRequests, api.WriteResponse{
			Accepted: accepted, Rejected: rejected, Error: "ingest queue full",
		})
	default:
		s.writeJSON(w, http.StatusOK, api.WriteResponse{Accepted: accepted})
	}
}

func (s *Server) parseLineBody(body io.Reader) ([]entry, error) {
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	var out []entry
	now := s.cfg.Now()
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := api.ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		out = append(out, s.toEntry(p, now))
	}
	return out, nil
}

func (s *Server) parseJSONBody(body io.Reader) ([]entry, error) {
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	var req api.WriteRequest
	if err := json.Unmarshal(data, &req); err != nil {
		// Bare array form.
		var pts []api.Point
		if aerr := json.Unmarshal(data, &pts); aerr != nil {
			return nil, fmt.Errorf("bad JSON body: %v", err)
		}
		req.Points = pts
	}
	out := make([]entry, 0, len(req.Points))
	now := s.cfg.Now()
	for i, p := range req.Points {
		if p.Series == "" {
			return nil, fmt.Errorf("point %d: missing series", i)
		}
		out = append(out, s.toEntry(p, now))
	}
	return out, nil
}

func (s *Server) toEntry(p api.Point, now int64) entry {
	ta := p.TA
	if p.AssignTA {
		ta = now
	}
	return entry{series: p.Series, pt: series.Point{TG: p.TG, TA: ta, V: p.V}}
}

// ---- read path ----

// scanStatsJSON converts engine scan accounting to its wire form.
func scanStatsJSON(st lsm.ScanStats) api.ScanStatsJSON {
	return api.ScanStatsJSON{
		TablesTouched:         st.TablesTouched,
		TablePoints:           st.TablePoints,
		MemPoints:             st.MemPoints,
		ResultPoints:          st.ResultPoints,
		ReadAmplification:     st.ReadAmplification(),
		BlocksRead:            st.BlocksRead,
		BlocksCached:          st.BlocksCached,
		TablesTouchedPerLevel: st.LevelTablesTouched,
		RollupBucketsUsed:     st.RollupBuckets,
		RawPointsScanned:      st.ResultPoints,
	}
}

// handleScan streams the response straight off a snapshot merge iterator:
// the point set is encoded to the wire as it is merged, so the server never
// materializes a []series.Point for the range, and the engine lock is held
// only for the O(1) snapshot. The body is the same api.ScanResponse object
// as before, with "points" first and "count"/"stats" (only known at the
// end) trailing — JSON object field order is insignificant to decoders.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	s.scanRequests.Add(1)
	name, lo, hi, ok := s.rangeParams(w, r)
	if !ok {
		return
	}
	start := time.Now()
	it, err := s.db.SeriesIterator(name, lo, hi)
	if err != nil {
		s.queryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 32<<10)
	nameJSON, _ := json.Marshal(name)
	fmt.Fprintf(bw, `{"series":%s,"points":[`, nameJSON)
	n := 0
	for it.Next() {
		if n > 0 {
			bw.WriteByte(',')
		}
		p := it.Point()
		pj, _ := json.Marshal(api.PointJSON{TG: p.TG, TA: p.TA, V: p.V})
		bw.Write(pj)
		n++
	}
	st := it.Stats()
	stJSON, _ := json.Marshal(scanStatsJSON(st))
	if err := it.Err(); err != nil {
		// The 200 header and a prefix of the points are already on the
		// wire; all we can do is mark the body as truncated.
		errJSON, _ := json.Marshal(err.Error())
		fmt.Fprintf(bw, "],\"count\":%d,\"stats\":%s,\"error\":%s}\n", n, stJSON, errJSON)
	} else {
		fmt.Fprintf(bw, "],\"count\":%d,\"stats\":%s}\n", n, stJSON)
	}
	bw.Flush()
	s.scannedPoints.Add(int64(n))
	s.observeRead(name, st, time.Since(start))
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	s.aggRequests.Add(1)
	name, lo, hi, ok := s.rangeParams(w, r)
	if !ok {
		return
	}
	width, err := strconv.ParseInt(r.URL.Query().Get("width"), 10, 64)
	if err != nil || width <= 0 {
		s.writeError(w, http.StatusBadRequest, "width must be a positive integer")
		return
	}
	start := time.Now()
	// Aggregate through the DB so uncontested table ranges are served from
	// compaction-time rollup buckets when the width is a multiple of the
	// configured rollup window; everything else folds raw off a snapshot.
	buckets, st, err := s.db.AggregateSeries(name, lo, hi, width)
	if err != nil {
		s.queryError(w, err)
		return
	}
	s.scannedPoints.Add(int64(st.ResultPoints))
	s.observeRead(name, st, time.Since(start))
	resp := api.AggregateResponse{
		Series: name, Width: width,
		Buckets: make([]api.BucketJSON, len(buckets)),
		Stats:   scanStatsJSON(st),
	}
	for i, b := range buckets {
		resp.Buckets[i] = api.BucketJSON{
			Start: b.Start, Count: b.Count, Min: b.Min, Max: b.Max,
			Mean: b.Mean(), Sum: b.Sum, First: b.First, Last: b.Last,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if expr := r.URL.Query().Get("match"); expr != "" {
		ms, err := index.ParseMatchers(expr)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ids := s.db.Match(ms)
		resp := api.SeriesResponse{Series: ids, Labels: make(map[string]map[string]string, len(ids))}
		if resp.Series == nil {
			resp.Series = []string{}
		}
		for _, id := range ids {
			if ls, ok := s.db.LabelsOf(id); ok {
				resp.Labels[id] = ls.Map()
			}
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	names := s.db.Series()
	if names == nil {
		names = []string{}
	}
	s.writeJSON(w, http.StatusOK, api.SeriesResponse{Series: names})
}

// handleCreateSeries registers a series explicitly: by name, or by label
// set (the response carries the canonical ID writes must address).
func (s *Server) handleCreateSeries(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	defer body.Close()
	var req api.CreateSeriesRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	switch {
	case req.Name != "" && len(req.Labels) > 0:
		s.writeError(w, http.StatusBadRequest, "name and labels are mutually exclusive")
	case req.Name != "":
		if err := s.db.CreateSeries(req.Name); err != nil {
			s.createError(w, err)
			return
		}
		resp := api.CreateSeriesResponse{ID: req.Name}
		if ls, ok := s.db.LabelsOf(req.Name); ok {
			resp.Labels = ls.Map()
		}
		s.writeJSON(w, http.StatusOK, resp)
	case len(req.Labels) > 0:
		ls, err := series.NewLabels(req.Labels)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		id, err := s.db.CreateSeriesLabeled(ls)
		if err != nil {
			s.createError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, api.CreateSeriesResponse{ID: id, Labels: ls.Map()})
	default:
		s.writeError(w, http.StatusBadRequest, "one of name or labels is required")
	}
}

func (s *Server) createError(w http.ResponseWriter, err error) {
	if errors.Is(err, tsdb.ErrClosed) {
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.writeError(w, http.StatusBadRequest, "%v", err)
}

// handleQuery resolves a matcher expression against the tag index and
// fans the per-series reads across the DB's query worker pool. The
// response streams: each matched series' row is encoded to the wire as
// the result array is walked, so a wide fan-out never materializes one
// giant response value; the query-wide stats (series matched/queried,
// tables touched, fan-out width) trail the results.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.queryRequests.Add(1)
	q := r.URL.Query()
	expr := q.Get("match")
	if expr == "" {
		s.writeError(w, http.StatusBadRequest, "missing match parameter")
		return
	}
	ms, err := index.ParseMatchers(expr)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := tsdb.QueryOptions{Lo: int64(math.MinInt64 / 2), Hi: int64(math.MaxInt64 / 2)}
	intParam := func(key string, dst *int64, min int64) bool {
		v := q.Get(key)
		if v == "" {
			return true
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < min {
			s.writeError(w, http.StatusBadRequest, "bad %s %q", key, v)
			return false
		}
		*dst = n
		return true
	}
	var workers, limit int64
	if !intParam("lo", &opts.Lo, math.MinInt64/2) || !intParam("hi", &opts.Hi, math.MinInt64/2) ||
		!intParam("width", &opts.BucketWidth, 1) || !intParam("workers", &workers, 1) ||
		!intParam("limit", &limit, 1) {
		return
	}
	opts.Workers, opts.Limit = int(workers), int(limit)

	results, qs, err := s.db.QueryMatch(ms, opts)
	if err != nil {
		s.queryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 32<<10)
	mj, _ := json.Marshal(index.FormatMatchers(ms))
	fmt.Fprintf(bw, `{"matchers":%s,"results":[`, mj)
	for i := range results {
		if i > 0 {
			bw.WriteByte(',')
		}
		rj, _ := json.Marshal(querySeriesJSON(&results[i]))
		bw.Write(rj)
	}
	stJSON, _ := json.Marshal(api.QueryStatsJSON{
		SeriesMatched:  qs.SeriesMatched,
		SeriesQueried:  qs.SeriesQueried,
		SeriesFailed:   qs.SeriesFailed,
		TablesTouched:  qs.TablesTouched,
		BlocksRead:     qs.BlocksRead,
		PointsReturned: qs.PointsReturned,
		Workers:        qs.Workers,
	})
	fmt.Fprintf(bw, "],\"stats\":%s}\n", stJSON)
	bw.Flush()
	s.scannedPoints.Add(int64(qs.PointsReturned))
}

// querySeriesJSON converts one fan-out result to its wire row.
func querySeriesJSON(res *tsdb.SeriesResult) api.QuerySeriesJSON {
	row := api.QuerySeriesJSON{
		ID:     res.ID,
		Labels: res.Labels.Map(),
		Stats:  scanStatsJSON(res.Stats),
	}
	if res.Err != nil {
		row.Error = res.Err.Error()
		return row
	}
	if res.Buckets != nil {
		row.Buckets = make([]api.BucketJSON, len(res.Buckets))
		for i, b := range res.Buckets {
			row.Buckets[i] = api.BucketJSON{
				Start: b.Start, Count: b.Count, Min: b.Min, Max: b.Max,
				Mean: b.Mean(), Sum: b.Sum, First: b.First, Last: b.Last,
			}
		}
		row.Count = len(row.Buckets)
		return row
	}
	row.Points = make([]api.PointJSON, len(res.Points))
	for i, p := range res.Points {
		row.Points[i] = api.PointJSON{TG: p.TG, TA: p.TA, V: p.V}
	}
	row.Count = len(row.Points)
	return row
}

// seriesStatsJSON converts one series' engine counters to their wire form.
func seriesStatsJSON(st tsdb.SeriesStats) api.SeriesStatsJSON {
	e := api.SeriesStatsJSON{
		Name:               st.Name,
		Policy:             st.Policy.String(),
		SeqCap:             st.SeqCap,
		PointsIngested:     st.Stats.PointsIngested,
		PointsWritten:      st.Stats.PointsWritten,
		PointsRewritten:    st.Stats.PointsRewritten,
		Flushes:            st.Stats.Flushes,
		Compactions:        st.Stats.Compactions,
		InOrderPoints:      st.Stats.InOrderPoints,
		OutOfOrderPoints:   st.Stats.OutOfOrderPoints,
		WriteAmplification: st.Stats.WriteAmplification(),
		Resident:           st.Resident,
	}
	if st.Decision != nil {
		e.Decision = &api.DecisionJSON{
			Policy: st.Decision.Policy.String(),
			NSeq:   st.Decision.NSeq,
			Rc:     st.Decision.Rc,
			Rs:     st.Decision.Rs,
		}
	}
	for _, l := range st.Levels {
		e.Levels = append(e.Levels, api.LevelStatsJSON{
			Level:           l.Level,
			Tables:          l.Tables,
			Points:          l.Points,
			TargetPoints:    l.TargetPoints,
			Compactions:     l.Compactions,
			PointsIn:        l.PointsIn,
			PointsRewritten: l.PointsRewritten,
		})
	}
	return e
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := s.db.Stats()
	resp := api.StatsResponse{TotalWA: s.db.TotalWA(), Series: make([]api.SeriesStatsJSON, len(stats))}
	for i, st := range stats {
		resp.Series[i] = seriesStatsJSON(st)
	}
	if ws, ok := s.db.WALStats(); ok {
		wj := &api.WALStatsJSON{
			Shards:          ws.Shards,
			Commits:         ws.Commits,
			Records:         ws.Records,
			Points:          ws.Points,
			Checkpoints:     ws.Checkpoints,
			Segments:        ws.Segments,
			SegmentsRemoved: ws.SegmentsRemoved,
			PendingSeries:   ws.PendingSeries,
			PendingPoints:   ws.PendingPoints,
		}
		if gw := s.db.GroupWAL(); gw != nil {
			if batch := gw.BatchHist(); batch.Count > 0 {
				wj.BatchMeanPoints = batch.Sum / float64(batch.Count)
			}
			wj.CommitP99Secs = histQuantile(gw.CommitLatencyHist(), 0.99)
		}
		resp.WAL = wj
	}
	if as, ok := s.db.ArbiterStats(); ok {
		resp.Arbiter = &api.ArbiterStatsJSON{
			BudgetBytes:         as.BudgetBytes,
			MemtableBytes:       as.MemtableBytes,
			MemtableTargetBytes: as.MemtableTargetBytes,
			CacheTargetBytes:    as.CacheTargetBytes,
			WritePressure:       as.WritePressure,
			ReadPressure:        as.ReadPressure,
			ResidentSeries:      as.ResidentSeries,
			ColdSeries:          as.ColdSeries,
			Evictions:           as.Evictions,
			Rebalances:          as.Rebalances,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// histQuantile interpolates quantile q from a fixed-width histogram
// snapshot (upper-edge convention, like metrics.Histogram.Quantile).
func histQuantile(h groupwal.HistSnapshot, q float64) float64 {
	if h.Count == 0 || len(h.Edges) == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	var cum int64
	bw := 0.0
	if len(h.Edges) > 1 {
		bw = h.Edges[1] - h.Edges[0]
	}
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			return h.Edges[i] + bw
		}
	}
	return h.Edges[len(h.Edges)-1] + bw
}

// finiteOrNil boxes v for an omitempty wire field, dropping NaN/Inf —
// undefined statistics (e.g. a quantile of zero observations) are omitted
// from the response rather than misreported, and encoding/json cannot
// represent them anyway.
func finiteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// handleSeriesStats serves /series/{series}/stats: the series' engine
// counters (same shape as its /stats entry) plus the server-side read-path
// accounting — cumulative ScanStats, the last scan's ScanStats, and scan
// latency quantiles from the per-series histogram.
func (s *Server) handleSeriesStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("series")
	var found *tsdb.SeriesStats
	for _, st := range s.db.Stats() {
		if st.Name == name {
			st := st
			found = &st
			break
		}
	}
	if found == nil {
		s.writeError(w, http.StatusNotFound, "no such series %q", name)
		return
	}
	resp := api.SeriesDetailResponse{SeriesStatsJSON: seriesStatsJSON(*found)}
	s.readMu.Lock()
	if rs := s.reads[name]; rs != nil {
		last := scanStatsJSON(rs.last)
		resp.Read = api.ReadStatsJSON{
			Scans:              rs.scans,
			TablesTouched:      rs.tablesTouched,
			TablePoints:        rs.tablePoints,
			MemPoints:          rs.memPoints,
			ResultPoints:       rs.resultPoints,
			ReadAmplification:  rs.readAmplification(),
			LatencyP50Seconds:  finiteOrNil(rs.lat.Quantile(0.5)),
			LatencyP99Seconds:  finiteOrNil(rs.lat.Quantile(0.99)),
			LatencyMeanSeconds: finiteOrNil(rs.lat.Mean()),
			LastScan:           &last,
		}
	}
	s.readMu.Unlock()
	if pool := s.db.Compactions(); pool != nil {
		if cs, ok := pool.SeriesStats(name); ok {
			resp.Compaction = &api.CompactionStatsJSON{
				Queued:       cs.Queued,
				Running:      cs.Running,
				Merges:       cs.Merges,
				Failed:       cs.Failed,
				WaitSeconds:  cs.WaitSeconds,
				MergeSeconds: cs.MergeSeconds,
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rec := s.db.RecoveryInfo()
	s.writeJSON(w, http.StatusOK, api.HealthResponse{
		Status: "ok",
		Recovery: api.RecoveryJSON{
			CatalogFound:        rec.CatalogFound,
			CatalogVersion:      rec.CatalogVersion,
			SeriesRecovered:     rec.SeriesRecovered,
			WALOnlySeries:       rec.WALOnlySeries,
			MigratedSeries:      rec.MigratedSeries,
			OrphanSeriesRemoved: rec.OrphanSeriesRemoved,
			WALPointsReplayed:   rec.WALPointsReplayed,
			TornWALs:            rec.TornWALs,
			OrphanTablesRemoved: rec.OrphanTablesRemoved,
		},
	})
}

// rangeParams parses series/lo/hi query parameters. lo and hi default to
// the full generation-time range.
func (s *Server) rangeParams(w http.ResponseWriter, r *http.Request) (name string, lo, hi int64, ok bool) {
	q := r.URL.Query()
	name = q.Get("series")
	if name == "" {
		s.writeError(w, http.StatusBadRequest, "missing series parameter")
		return "", 0, 0, false
	}
	lo, hi = int64(math.MinInt64/2), int64(math.MaxInt64/2)
	var err error
	if v := q.Get("lo"); v != "" {
		if lo, err = strconv.ParseInt(v, 10, 64); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad lo %q", v)
			return "", 0, 0, false
		}
	}
	if v := q.Get("hi"); v != "" {
		if hi, err = strconv.ParseInt(v, 10, 64); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad hi %q", v)
			return "", 0, 0, false
		}
	}
	return name, lo, hi, true
}

func (s *Server) queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, tsdb.ErrNoSeries):
		s.writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, tsdb.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
