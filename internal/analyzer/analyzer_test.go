package analyzer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/workload"
)

func TestCollectorDelayProfile(t *testing.T) {
	c := NewCollector(2048, 1)
	src := dist.NewLognormal(4, 1.2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		tg := int64(i+1) * 50
		c.Observe(series.Point{TG: tg, TA: tg + int64(src.Sample(rng))})
	}
	if c.Seen() != 10000 {
		t.Errorf("Seen = %d", c.Seen())
	}
	prof, ok := c.Profile()
	if !ok {
		t.Fatal("no profile after 10k observations")
	}
	// The fitted profile should be close to the source at the median.
	med := src.Quantile(0.5)
	if got := prof.CDF(med); math.Abs(got-0.5) > 0.05 {
		t.Errorf("profile CDF at source median = %v", got)
	}
}

func TestCollectorGenerationInterval(t *testing.T) {
	c := NewCollector(128, 1)
	for i := 0; i < 100; i++ {
		tg := int64(i+1) * 50
		c.Observe(series.Point{TG: tg, TA: tg})
	}
	dt, ok := c.GenerationInterval()
	if !ok || math.Abs(dt-50) > 1e-9 {
		t.Errorf("dt = %v, %v", dt, ok)
	}
}

func TestCollectorIntervalRobustToDisorder(t *testing.T) {
	// The estimator is span/(n−1): arrival order and lateness are
	// irrelevant as long as the generation grid is regular.
	c := NewCollector(128, 1)
	c.Observe(series.Point{TG: 100, TA: 100})
	c.Observe(series.Point{TG: 150, TA: 151})
	c.Observe(series.Point{TG: 50, TA: 152}) // late point, still on the grid
	c.Observe(series.Point{TG: 200, TA: 201})
	dt, ok := c.GenerationInterval()
	if !ok || dt != 50 {
		t.Errorf("dt = %v, want 50", dt)
	}
}

func TestCollectorIntervalUnbiasedUnderHeavyDisorder(t *testing.T) {
	// Heavy disorder must not inflate the estimate (the old in-order-gap
	// estimator did exactly that).
	src := dist.NewLognormal(5, 2)
	rng := rand.New(rand.NewSource(8))
	c := NewCollector(1024, 1)
	ps := make([]series.Point, 20000)
	for i := range ps {
		tg := int64(i+1) * 50
		ps[i] = series.Point{TG: tg, TA: tg + int64(src.Sample(rng))}
	}
	series.SortByTA(ps)
	for _, p := range ps {
		c.Observe(p)
	}
	dt, ok := c.GenerationInterval()
	if !ok || math.Abs(dt-50) > 0.5 {
		t.Errorf("dt = %v under heavy disorder, want ≈50", dt)
	}
}

func TestCollectorRecentWindow(t *testing.T) {
	c := NewCollector(4, 1)
	for i := int64(1); i <= 6; i++ {
		c.Observe(series.Point{TG: i, TA: i + i}) // delays 1..6
	}
	got := c.Recent()
	want := []float64{3, 4, 5, 6}
	if len(got) != 4 {
		t.Fatalf("Recent = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Recent = %v, want %v", got, want)
			break
		}
	}
	// Partial fill returns only what exists.
	c2 := NewCollector(10, 1)
	c2.Observe(series.Point{TG: 1, TA: 3})
	if got := c2.Recent(); len(got) != 1 || got[0] != 2 {
		t.Errorf("partial Recent = %v", got)
	}
}

func TestCollectorTooFewPoints(t *testing.T) {
	c := NewCollector(128, 1)
	if _, ok := c.Profile(); ok {
		t.Error("profile from empty collector")
	}
	if _, ok := c.GenerationInterval(); ok {
		t.Error("interval from empty collector")
	}
	c.Observe(series.Point{TG: 1, TA: 1})
	if _, ok := c.GenerationInterval(); ok {
		t.Error("interval from single point")
	}
}

func TestCollectorReservoirBounded(t *testing.T) {
	c := NewCollector(100, 1)
	for i := 0; i < 100000; i++ {
		tg := int64(i + 1)
		c.Observe(series.Point{TG: tg, TA: tg + int64(i%1000)})
	}
	if got := len(c.Snapshot()); got != 100 {
		t.Errorf("reservoir size = %d, want 100", got)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(128, 1)
	for i := 0; i < 50; i++ {
		tg := int64(i+1) * 10
		c.Observe(series.Point{TG: tg, TA: tg + 5})
	}
	c.Reset()
	if c.Seen() != 0 || len(c.Snapshot()) != 0 {
		t.Error("Reset did not clear")
	}
	if _, ok := c.GenerationInterval(); ok {
		t.Error("interval survives Reset")
	}
}

func TestDriftDetector(t *testing.T) {
	d := NewDriftDetector(0.1)
	if d.HasReference() {
		t.Error("fresh detector has reference")
	}
	rng := rand.New(rand.NewSource(3))
	mk := func(scale float64) []float64 {
		xs := make([]float64, 1000)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * scale
		}
		return xs
	}
	ref := mk(100)
	d.SetReference(ref)
	if drifted, _ := d.Drifted(mk(100)); drifted {
		t.Error("same distribution flagged as drift")
	}
	if drifted, ks := d.Drifted(mk(300)); !drifted {
		t.Errorf("3x scale change not detected (ks=%v)", ks)
	}
}

func TestDriftDetectorSmallSamples(t *testing.T) {
	d := NewDriftDetector(0.1)
	d.SetReference([]float64{1, 2, 3})
	if drifted, _ := d.Drifted([]float64{100, 200, 300}); drifted {
		t.Error("tiny samples must not trigger")
	}
}

func TestKSTwoSampleExact(t *testing.T) {
	// Disjoint samples: KS = 1.
	if ks := ksTwoSample([]float64{1, 2, 3}, []float64{10, 11, 12}); ks != 1 {
		t.Errorf("disjoint KS = %v", ks)
	}
	// Identical samples: KS small.
	if ks := ksTwoSample([]float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}); ks > 0.26 {
		t.Errorf("identical KS = %v", ks)
	}
}

func TestRecommendOrderedWorkload(t *testing.T) {
	c := NewCollector(2048, 1)
	for i := 0; i < 5000; i++ {
		tg := int64(i+1) * 50
		c.Observe(series.Point{TG: tg, TA: tg + int64(i%3)})
	}
	rec, ok := Recommend(c, 64)
	if !ok {
		t.Fatal("no recommendation")
	}
	if rec.Decision.Policy != core.PolicyConventional {
		t.Errorf("ordered workload: recommended %v", rec.Decision.Policy)
	}
	if math.Abs(rec.Dt-50) > 1 {
		t.Errorf("dt estimate = %v", rec.Dt)
	}
}

func TestRecommendNotReady(t *testing.T) {
	c := NewCollector(2048, 1)
	if _, ok := Recommend(c, 64); ok {
		t.Error("recommendation from empty collector")
	}
}

func TestAdaptiveControllerSwitchesOnDrift(t *testing.T) {
	e, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ac, err := NewAdaptiveController(e, AdaptiveConfig{
		MemBudget:  64,
		CheckEvery: 2000,
		MinSample:  2000,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: heavy disorder (lognormal μ=5 σ=2) — expect π_s.
	// Phase 2: near order (tiny uniform delays) — expect π_c.
	ps := workload.Dynamic(50, 5,
		workload.Segment{Points: 12000, Dist: dist.NewLognormal(5, 2)},
		workload.Segment{Points: 12000, Dist: dist.NewUniform(0, 5)},
	)
	for _, p := range ps {
		if err := ac.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	sw := ac.Switches()
	if len(sw) < 2 {
		t.Fatalf("expected at least 2 policy decisions, got %d: %+v", len(sw), sw)
	}
	if sw[0].Decision.Policy != core.PolicySeparation {
		t.Errorf("first regime: chose %v, want pi_s", sw[0].Decision.Policy)
	}
	last := sw[len(sw)-1]
	if last.Decision.Policy != core.PolicyConventional {
		t.Errorf("final regime: chose %v, want pi_c", last.Decision.Policy)
	}
	if cur, ok := ac.Current(); !ok || cur.Policy != last.Decision.Policy {
		t.Errorf("Current() inconsistent: %+v, %v", cur, ok)
	}
	// All data must still be present.
	pts, _, _ := ac.Engine().Scan(0, int64(1)<<40)
	if len(pts) != len(ps) {
		t.Errorf("engine holds %d points, want %d", len(pts), len(ps))
	}
}

func TestAdaptiveControllerValidation(t *testing.T) {
	e, _ := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: 64})
	defer e.Close()
	if _, err := NewAdaptiveController(e, AdaptiveConfig{MemBudget: 1}); err == nil {
		t.Error("MemBudget 1 accepted")
	}
}

func TestRecommendParametric(t *testing.T) {
	src := dist.NewLognormal(5, 2)
	rng := rand.New(rand.NewSource(31))
	c := NewCollector(4096, 1)
	for i := 0; i < 20000; i++ {
		tg := int64(i+1) * 50
		c.Observe(series.Point{TG: tg, TA: tg + int64(src.Sample(rng))})
	}
	rec, profile, ok := RecommendParametric(c, 64, 0.05)
	if !ok {
		t.Fatal("no recommendation")
	}
	// Lognormal delays should be recognized and fitted parametrically.
	if _, isLognormal := profile.(dist.Lognormal); !isLognormal {
		t.Errorf("profile = %s, want a fitted lognormal", profile.Name())
	}
	if rec.Decision.Policy != core.PolicySeparation {
		t.Errorf("heavy disorder: %v", rec.Decision.Policy)
	}
	// With an impossible acceptance bar the empirical profile is used.
	_, profile, ok = RecommendParametric(c, 64, 0)
	if !ok {
		t.Fatal("no recommendation with strict bar")
	}
	if _, isEmp := profile.(*dist.Empirical); !isEmp {
		t.Errorf("strict bar should fall back to empirical, got %s", profile.Name())
	}
}

func TestRecommendParametricNotReady(t *testing.T) {
	c := NewCollector(128, 1)
	if _, _, ok := RecommendParametric(c, 64, 0.05); ok {
		t.Error("recommendation from empty collector")
	}
}
