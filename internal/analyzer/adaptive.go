package analyzer

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/series"
)

// AdaptiveController wires the analyzer to a live engine, implementing
// π_adaptive: it observes every ingested point, and when the delay
// distribution drifts (or on the first sufficient sample) it re-runs
// Algorithm 1 and switches the engine's policy/capacities. The paper's
// Fig. 10 and Fig. 17 evaluate exactly this loop.
// AdaptiveController is safe for concurrent use: its own state is guarded
// by mu (the engine has its own lock).
type AdaptiveController struct {
	mu        sync.Mutex
	engine    *lsm.Engine
	collector *Collector
	detector  *DriftDetector

	memBudget   int
	checkEvery  int64
	sinceCheck  int64
	seenTotal   int64
	minSample   int64
	switches    []Switch
	current     core.Decision
	haveCurrent bool
}

// Switch records one policy change for reporting.
type Switch struct {
	AtPoint  int64 // points ingested when the switch happened
	Decision core.Decision
	KS       float64 // drift statistic that triggered it (0 for the first)
}

// AdaptiveConfig parameterizes the controller.
type AdaptiveConfig struct {
	// MemBudget is n, passed to Algorithm 1 and the engine.
	MemBudget int
	// CheckEvery is how many points pass between drift checks (default
	// 4096).
	CheckEvery int64
	// MinSample is the number of points required before the first tuning
	// (default 2048).
	MinSample int64
	// KSThreshold is the drift threshold (default 0.1).
	KSThreshold float64
	// Seed feeds the collector's reservoir sampler.
	Seed int64
}

// NewAdaptiveController attaches a controller to an engine. The engine
// should have been opened with the same memory budget.
func NewAdaptiveController(e *lsm.Engine, cfg AdaptiveConfig) (*AdaptiveController, error) {
	if cfg.MemBudget < 2 {
		return nil, fmt.Errorf("analyzer: MemBudget must be >= 2, got %d", cfg.MemBudget)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 4096
	}
	if cfg.MinSample <= 0 {
		cfg.MinSample = 2048
	}
	return &AdaptiveController{
		engine:     e,
		collector:  NewCollector(4096, cfg.Seed),
		detector:   NewDriftDetector(cfg.KSThreshold),
		memBudget:  cfg.MemBudget,
		checkEvery: cfg.CheckEvery,
		minSample:  cfg.MinSample,
	}, nil
}

// Put ingests one point through the controller: the point is observed,
// drift checks run on schedule, and the point is written to the engine.
func (a *AdaptiveController) Put(p series.Point) error {
	a.mu.Lock()
	a.collector.Observe(p)
	a.seenTotal++
	a.sinceCheck++
	retune := a.sinceCheck >= a.checkEvery && a.collector.Seen() >= a.minSample
	if retune {
		a.sinceCheck = 0
		if err := a.maybeRetune(); err != nil {
			a.mu.Unlock()
			return err
		}
	}
	a.mu.Unlock()
	return a.engine.Put(p)
}

// maybeRetune re-runs Algorithm 1 when no policy has been chosen yet or
// when the delay distribution drifted from the reference profile. The
// drift comparison and the re-tuning profile both use the collector's
// recent-delay window, which reflects only the current regime (the
// long-run reservoir would dilute a drift with pre-drift samples).
func (a *AdaptiveController) maybeRetune() error {
	recent := a.collector.Recent()
	if len(recent) < 16 {
		return nil
	}
	var ks float64
	if a.haveCurrent {
		var drifted bool
		drifted, ks = a.detector.Drifted(recent)
		if !drifted {
			return nil
		}
	}
	dt, ok := a.collector.GenerationInterval()
	if !ok || dt <= 0 {
		return nil
	}
	prof := dist.NewEmpirical(recent)
	dec := core.Tune(prof, dt, a.memBudget)
	if err := a.apply(dec); err != nil {
		return err
	}
	a.detector.SetReference(recent)
	a.switches = append(a.switches, Switch{
		AtPoint:  a.seenTotal,
		Decision: dec,
		KS:       ks,
	})
	a.haveCurrent = true
	a.current = dec
	return nil
}

// apply pushes a decision into the engine.
func (a *AdaptiveController) apply(dec core.Decision) error {
	if dec.Policy == core.PolicySeparation {
		return a.engine.SetPolicy(lsm.Separation, dec.NSeq)
	}
	return a.engine.SetPolicy(lsm.Conventional, 0)
}

// Current returns the decision currently in force; ok is false before the
// first tuning.
func (a *AdaptiveController) Current() (core.Decision, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current, a.haveCurrent
}

// Switches returns the history of policy changes.
func (a *AdaptiveController) Switches() []Switch {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Switch, len(a.switches))
	copy(out, a.switches)
	return out
}

// Engine exposes the controlled engine (for stats and queries).
func (a *AdaptiveController) Engine() *lsm.Engine { return a.engine }
