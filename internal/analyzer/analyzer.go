// Package analyzer implements the paper's delay analyzer module
// (Section I-D and VI): it collects the delays of the writing workload,
// builds their statistical profile (empirical PDF/CDF), estimates the
// generation interval, detects changes in the delay distribution, and runs
// the Separation Policy Tuning Algorithm (Algorithm 1) to recommend — and,
// through the adaptive controller, apply — the policy with the lower
// predicted write amplification (π_adaptive in Fig. 10/17).
package analyzer

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/series"
)

// Collector accumulates delay observations in a bounded reservoir plus an
// estimate of the generation interval. It is the streaming front end of
// the analyzer: cheap per point, bounded memory.
type Collector struct {
	capacity int
	seen     int64
	res      []float64 // reservoir sample of delays
	rng      *rand.Rand

	// recent is a ring buffer of the latest delays, used by drift
	// detection: unlike the reservoir (which mixes the whole window since
	// the last reset), it always reflects the current regime.
	recent    []float64
	recentPos int
	recentN   int

	// Generation-interval estimation: the generation grid spans
	// (maxTG − minTG) over seenTG points, so the mean interval is
	// span/(n−1). This is robust to disorder, unlike averaging in-order
	// arrival gaps (which skips the out-of-order points and overestimates
	// Δt exactly when disorder is heavy).
	minTG, maxTG int64
	haveTG       bool
	tgCount      int64
}

// NewCollector creates a collector with the given reservoir capacity
// (default 4096 when non-positive).
func NewCollector(capacity int, seed int64) *Collector {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Collector{
		capacity: capacity,
		res:      make([]float64, 0, capacity),
		recent:   make([]float64, capacity),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Observe records one ingested point.
func (c *Collector) Observe(p series.Point) {
	delay := float64(p.Delay())
	if delay < 0 {
		delay = 0
	}
	c.seen++
	if len(c.res) < c.capacity {
		c.res = append(c.res, delay)
	} else if j := c.rng.Int63n(c.seen); j < int64(c.capacity) {
		c.res[j] = delay
	}
	c.recent[c.recentPos] = delay
	c.recentPos = (c.recentPos + 1) % len(c.recent)
	if c.recentN < len(c.recent) {
		c.recentN++
	}
	if !c.haveTG {
		c.minTG, c.maxTG = p.TG, p.TG
		c.haveTG = true
	} else {
		if p.TG < c.minTG {
			c.minTG = p.TG
		}
		if p.TG > c.maxTG {
			c.maxTG = p.TG
		}
	}
	c.tgCount++
}

// Seen returns the number of observed points.
func (c *Collector) Seen() int64 { return c.seen }

// GenerationInterval estimates Δt as the generation-time span divided by
// the number of gaps; ok is false until at least two points arrived.
func (c *Collector) GenerationInterval() (dt float64, ok bool) {
	if c.tgCount < 2 || c.maxTG <= c.minTG {
		return 0, false
	}
	return float64(c.maxTG-c.minTG) / float64(c.tgCount-1), true
}

// Recent returns the latest delays (up to the collector capacity), oldest
// first. Drift detection compares this window — which reflects only the
// current regime — against the reference profile.
func (c *Collector) Recent() []float64 {
	out := make([]float64, 0, c.recentN)
	if c.recentN < len(c.recent) {
		out = append(out, c.recent[:c.recentN]...)
		return out
	}
	out = append(out, c.recent[c.recentPos:]...)
	out = append(out, c.recent[:c.recentPos]...)
	return out
}

// Profile fits an empirical delay distribution to the reservoir; ok is
// false until enough observations exist (at least 16).
func (c *Collector) Profile() (*dist.Empirical, bool) {
	if len(c.res) < 16 {
		return nil, false
	}
	return dist.NewEmpirical(c.res), true
}

// Reset clears the reservoir and interval statistics but keeps
// configuration and the recent-delay ring (the current regime does not
// change just because a retune happened).
func (c *Collector) Reset() {
	c.res = c.res[:0]
	c.seen = 0
	c.haveTG = false
	c.tgCount = 0
}

// Snapshot returns a copy of the current reservoir, for drift comparisons.
func (c *Collector) Snapshot() []float64 {
	out := make([]float64, len(c.res))
	copy(out, c.res)
	return out
}

// DriftDetector decides whether the delay distribution has changed by
// comparing the empirical CDF of a recent window against the reference
// profile with the two-sample Kolmogorov–Smirnov statistic. The paper's
// auto-tuning program "finds that the distribution of delays changes" and
// re-triggers Algorithm 1; this is that trigger.
type DriftDetector struct {
	threshold float64
	reference []float64
}

// NewDriftDetector creates a detector; threshold is the KS distance above
// which drift is declared (default 0.1 when non-positive).
func NewDriftDetector(threshold float64) *DriftDetector {
	if threshold <= 0 {
		threshold = 0.1
	}
	return &DriftDetector{threshold: threshold}
}

// SetReference replaces the reference sample.
func (d *DriftDetector) SetReference(sample []float64) {
	d.reference = append(d.reference[:0], sample...)
}

// HasReference reports whether a reference sample is set.
func (d *DriftDetector) HasReference() bool { return len(d.reference) >= 16 }

// Drifted reports whether recent differs from the reference beyond the
// threshold, returning the measured KS distance. Without a usable
// reference it reports false.
func (d *DriftDetector) Drifted(recent []float64) (bool, float64) {
	if !d.HasReference() || len(recent) < 16 {
		return false, 0
	}
	ks := ksTwoSample(d.reference, recent)
	return ks > d.threshold, ks
}

// ksTwoSample computes the two-sample KS statistic.
func ksTwoSample(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// Recommendation is the analyzer's advice for the engine configuration.
type Recommendation struct {
	Decision core.Decision
	// Dt is the generation interval the decision was computed with.
	Dt float64
	// SampleSize is the number of delay observations behind the profile.
	SampleSize int
}

// Recommend profiles the collector's delays and runs Algorithm 1 for the
// given memory budget. ok is false when the collector has not yet seen
// enough data.
func Recommend(c *Collector, memBudget int) (Recommendation, bool) {
	prof, ok := c.Profile()
	if !ok {
		return Recommendation{}, false
	}
	dt, ok := c.GenerationInterval()
	if !ok || dt <= 0 {
		return Recommendation{}, false
	}
	dec := core.Tune(prof, dt, memBudget)
	return Recommendation{Decision: dec, Dt: dt, SampleSize: prof.N()}, true
}

// RecommendParametric is Recommend with a parametric delay profile: the
// collector's sample is fitted to the parametric families (dist.FitBest)
// and the best fit is used for the WA models when it matches the sample
// closely (KS below ksAccept, e.g. 0.05); otherwise the non-parametric
// empirical profile is used. A parametric profile extrapolates the delay
// tail beyond the largest observed value, which matters when the reservoir
// is small relative to the tail. The chosen profile is returned.
func RecommendParametric(c *Collector, memBudget int, ksAccept float64) (Recommendation, dist.Distribution, bool) {
	prof, ok := c.Profile()
	if !ok {
		return Recommendation{}, nil, false
	}
	dt, ok := c.GenerationInterval()
	if !ok || dt <= 0 {
		return Recommendation{}, nil, false
	}
	var chosen dist.Distribution = prof
	if fits, err := dist.FitBest(c.Snapshot()); err == nil && len(fits) > 0 && fits[0].KS <= ksAccept {
		chosen = fits[0].Dist
	}
	dec := core.Tune(chosen, dt, memBudget)
	return Recommendation{Decision: dec, Dt: dt, SampleSize: prof.N()}, chosen, true
}
