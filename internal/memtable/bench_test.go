package memtable

import (
	"math/rand"
	"testing"

	"repro/internal/series"
)

// TestPutAllocRegression pins Put's amortized allocation rate: nodes are
// bump-allocated from slabSize-node slabs, so the per-insert cost must
// stay near 1/slabSize (one slab Malloc per 256 points), not 1. The
// xorshift height draw and the tail fast path must stay allocation-free.
func TestPutAllocRegression(t *testing.T) {
	m := New(1)
	tg := int64(0)
	inOrder := testing.AllocsPerRun(1000, func() {
		tg += 50
		m.Put(series.Point{TG: tg, TA: tg, V: 1})
	})
	if inOrder > 0.1 {
		t.Errorf("in-order Put: %.3f allocs/op, want ~1/%d (slab-amortized)", inOrder, slabSize)
	}

	// Out-of-order inserts walk the skiplist but draw from the same
	// slabs. Pre-plan distinct keys so every run inserts (never updates).
	m2 := New(2)
	rng := rand.New(rand.NewSource(3))
	keys := rng.Perm(200_000)
	i := 0
	outOfOrder := testing.AllocsPerRun(1000, func() {
		m2.Put(series.Point{TG: int64(keys[i]), TA: 0, V: 1})
		i++
	})
	if outOfOrder > 0.1 {
		t.Errorf("out-of-order Put: %.3f allocs/op, want ~1/%d (slab-amortized)", outOfOrder, slabSize)
	}

	// A recycled memtable inserts into warm slabs: zero allocations.
	m.Reset()
	tg = 0
	recycled := testing.AllocsPerRun(1000, func() {
		tg += 50
		m.Put(series.Point{TG: tg, TA: tg, V: 1})
	})
	if recycled > 0 {
		t.Errorf("recycled Put: %.3f allocs/op, want 0 (warm slabs)", recycled)
	}
}

// TestResetRecyclesNodes checks correctness across the slab rewind: a
// reset-and-refilled memtable must not let stale tower pointers from the
// previous life leak into reads, and pre-reset snapshots must survive.
func TestResetRecyclesNodes(t *testing.T) {
	m := New(7)
	rng := rand.New(rand.NewSource(9))
	for _, tg := range rng.Perm(3000) {
		m.Put(series.Point{TG: int64(tg), TA: 1, V: 1})
	}
	before := m.Snapshot()
	m.Reset()
	// Refill with interleaved in-order and random keys over a shifted
	// range so every recycled node gets a different tower than before.
	for i := 0; i < 3000; i++ {
		var tg int64
		if i%2 == 0 {
			tg = 10_000 + int64(i)
		} else {
			tg = 10_000 + rng.Int63n(6000)
		}
		m.Put(series.Point{TG: tg, TA: 2, V: 2})
	}
	pts := m.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i-1].TG >= pts[i].TG {
			t.Fatalf("unsorted after recycle at %d: %d >= %d", i, pts[i-1].TG, pts[i].TG)
		}
	}
	for _, p := range pts {
		if p.TA != 2 {
			t.Fatalf("point %+v from the previous life leaked through Reset", p)
		}
	}
	if len(before) != 3000 || before[0].TA != 1 {
		t.Fatal("pre-reset snapshot corrupted by recycling")
	}
}

// TestSnapshotAllocRegression pins the quiescent-snapshot fast path at
// zero allocations: repeated Snapshot calls with no interleaved mutation
// must return the same cached slice.
func TestSnapshotAllocRegression(t *testing.T) {
	m := New(1)
	for tg := int64(1); tg <= 4096; tg++ {
		m.Put(series.Point{TG: tg * 10, TA: tg, V: float64(tg)})
	}
	m.Snapshot() // materialize the cached image
	allocs := testing.AllocsPerRun(100, func() {
		if len(m.Snapshot()) != 4096 {
			t.Fatal("snapshot lost points")
		}
	})
	if allocs > 0 {
		t.Fatalf("quiescent Snapshot: %.2f allocs/op, want 0", allocs)
	}
}

func BenchmarkPutInOrder(b *testing.B) {
	m := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Put(series.Point{TG: int64(i) * 50, TA: int64(i), V: 1})
	}
}

func BenchmarkPutOutOfOrder(b *testing.B) {
	m := New(1)
	rng := rand.New(rand.NewSource(5))
	keys := make([]int64, b.N)
	for i := range keys {
		keys[i] = rng.Int63n(int64(b.N)*100 + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(series.Point{TG: keys[i], TA: 0, V: 1})
	}
}

func BenchmarkSnapshot(b *testing.B) {
	m := New(1)
	for tg := int64(1); tg <= 16384; tg++ {
		m.Put(series.Point{TG: tg, TA: tg, V: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.Snapshot()) != 16384 {
			b.Fatal("snapshot lost points")
		}
	}
}
