// Package memtable implements the in-memory write buffer of the LSM
// engine: a probabilistic skiplist keyed by generation timestamp, the same
// structure LevelDB-lineage engines use. The paper's C0 (conventional
// policy), Cseq and Cnonseq (separation policy) are all instances of this
// type with different capacities.
package memtable

import (
	"math/rand"

	"repro/internal/series"
)

const (
	maxHeight    = 12
	branchFactor = 4 // P(level promote) = 1/branchFactor
)

type node struct {
	point series.Point
	next  [maxHeight]*node
}

// MemTable buffers points sorted by generation time. Inserting a point
// whose generation time already exists overwrites the stored value (upsert
// semantics). MemTable is not safe for concurrent use; the engine
// serializes access.
type MemTable struct {
	head   *node
	height int
	count  int
	rng    *rand.Rand
	minTG  int64
	maxTG  int64

	// snap caches the frozen image handed out by Snapshot. It is
	// invalidated by any mutation (Put, Reset), so repeated snapshots of a
	// quiescent memtable are O(1) and share one immutable slice.
	snap      []series.Point
	snapValid bool
}

// New returns an empty memtable. seed makes the skiplist shape
// deterministic for reproducible experiments.
func New(seed int64) *MemTable {
	return &MemTable{
		head:   &node{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of distinct points buffered.
func (m *MemTable) Len() int { return m.count }

// Empty reports whether the memtable holds no points.
func (m *MemTable) Empty() bool { return m.count == 0 }

// MinTG returns the earliest buffered generation time; valid only when
// non-empty.
func (m *MemTable) MinTG() int64 { return m.minTG }

// MaxTG returns the latest buffered generation time; valid only when
// non-empty.
func (m *MemTable) MaxTG() int64 { return m.maxTG }

// randomHeight draws a tower height with geometric distribution.
func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Intn(branchFactor) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with point.TG >= tg and fills
// prev with the rightmost node before it on every level.
func (m *MemTable) findGreaterOrEqual(tg int64, prev *[maxHeight]*node) *node {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && x.next[level].point.TG < tg {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Put inserts or overwrites the point keyed by p.TG. It returns true when a
// new key was inserted, false when an existing key was overwritten.
func (m *MemTable) Put(p series.Point) bool {
	m.invalidateSnap()
	var prev [maxHeight]*node
	x := m.findGreaterOrEqual(p.TG, &prev)
	if x != nil && x.point.TG == p.TG {
		x.point = p
		return false
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := &node{point: p}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	if m.count == 0 || p.TG < m.minTG {
		m.minTG = p.TG
	}
	if m.count == 0 || p.TG > m.maxTG {
		m.maxTG = p.TG
	}
	m.count++
	return true
}

// invalidateSnap drops the cached frozen image after any mutation. The
// previously returned slice stays valid and immutable — readers holding it
// simply see the pre-mutation state.
func (m *MemTable) invalidateSnap() {
	m.snap = nil
	m.snapValid = false
}

// Get returns the point with generation time tg.
func (m *MemTable) Get(tg int64) (series.Point, bool) {
	x := m.findGreaterOrEqual(tg, nil)
	if x != nil && x.point.TG == tg {
		return x.point, true
	}
	return series.Point{}, false
}

// Points returns all buffered points sorted ascending by generation time.
func (m *MemTable) Points() []series.Point {
	out := make([]series.Point, 0, m.count)
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, x.point)
	}
	return out
}

// Snapshot returns an immutable frozen image of the memtable's points,
// sorted ascending by generation time. The slice is cached: consecutive
// snapshots with no interleaved mutation return the same slice without
// copying, so an engine snapshot of a quiescent memtable is O(1). Callers
// must treat the result as read-only; it stays valid (showing the state at
// snapshot time) across later mutations.
func (m *MemTable) Snapshot() []series.Point {
	if !m.snapValid {
		m.snap = m.Points()
		m.snapValid = true
	}
	return m.snap
}

// Scan returns buffered points with generation time in [lo, hi].
func (m *MemTable) Scan(lo, hi int64) []series.Point {
	return m.AppendRange(nil, lo, hi)
}

// AppendRange appends the buffered points with generation time in [lo, hi]
// to dst and returns the extended slice. It lets callers that scan several
// memtables (or scan repeatedly) reuse one allocation instead of taking a
// fresh slice per memtable per scan.
func (m *MemTable) AppendRange(dst []series.Point, lo, hi int64) []series.Point {
	for x := m.findGreaterOrEqual(lo, nil); x != nil && x.point.TG <= hi; x = x.next[0] {
		dst = append(dst, x.point)
	}
	return dst
}

// Reset clears the memtable for reuse, keeping its allocated head node and
// RNG stream.
func (m *MemTable) Reset() {
	m.invalidateSnap()
	for i := range m.head.next {
		m.head.next[i] = nil
	}
	m.height = 1
	m.count = 0
	m.minTG = 0
	m.maxTG = 0
}
