// Package memtable implements the in-memory write buffer of the LSM
// engine: a probabilistic skiplist keyed by generation timestamp, the same
// structure LevelDB-lineage engines use. The paper's C0 (conventional
// policy), Cseq and Cnonseq (separation policy) are all instances of this
// type with different capacities.
package memtable

import (
	"repro/internal/series"
)

const (
	maxHeight    = 12
	branchFactor = 4 // P(level promote) = 1/branchFactor
)

type node struct {
	point series.Point
	next  [maxHeight]*node
}

// slabSize is how many nodes one slab allocation holds. Nodes are
// bump-allocated from slabs instead of one heap object per insert, so the
// allocator sees one Malloc per slabSize points — and Reset rewinds the
// bump pointer, so a recycled memtable (the engine reuses them across
// flushes) inserts into already-warm storage with no allocation at all.
const slabSize = 256

// MemTable buffers points sorted by generation time. Inserting a point
// whose generation time already exists overwrites the stored value (upsert
// semantics). MemTable is not safe for concurrent use; the engine
// serializes access.
type MemTable struct {
	head   *node
	height int
	count  int
	// rng is the inline xorshift64* state behind randomHeight. The former
	// per-memtable math/rand.Rand was a measurable slice of Put's cost
	// (and 5KiB of state per series); three shifts and a multiply draw the
	// same geometric tower heights.
	rng   uint64
	minTG int64
	maxTG int64

	// tail[level] is the rightmost node linked at that level (nil: none —
	// the level is empty and the predecessor is head). It gives in-order
	// arrival — the paper's sequential case, where every new generation
	// timestamp is beyond maxTG — an O(height) append that skips the
	// skiplist search entirely.
	tail [maxHeight]*node

	// slabs is the node storage: bump-allocated slabSize-node blocks.
	// slabIdx/slabUsed point at the next free node; Reset rewinds both to
	// zero and keeps the slabs, so node storage is allocated once per
	// high-water mark, not once per insert. Nodes never escape the
	// memtable (every read path copies point values out), so recycling
	// them cannot invalidate a snapshot or iterator.
	slabs    [][]node
	slabIdx  int
	slabUsed int

	// snap caches the frozen image handed out by Snapshot. It is
	// invalidated by any mutation (Put, Reset), so repeated snapshots of a
	// quiescent memtable are O(1) and share one immutable slice.
	snap      []series.Point
	snapValid bool
}

// New returns an empty memtable. seed makes the skiplist shape
// deterministic for reproducible experiments.
func New(seed int64) *MemTable {
	return &MemTable{
		head:   &node{},
		height: 1,
		// SplitMix64 finalizer spreads adjacent seeds (engines use
		// seed, seed+1, seed+2) into uncorrelated nonzero states.
		rng: mixSeed(uint64(seed)),
	}
}

// mixSeed maps an arbitrary seed to a nonzero xorshift state via the
// SplitMix64 finalizer.
func mixSeed(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// Len returns the number of distinct points buffered.
func (m *MemTable) Len() int { return m.count }

// Empty reports whether the memtable holds no points.
func (m *MemTable) Empty() bool { return m.count == 0 }

// MinTG returns the earliest buffered generation time; valid only when
// non-empty.
func (m *MemTable) MinTG() int64 { return m.minTG }

// MaxTG returns the latest buffered generation time; valid only when
// non-empty.
func (m *MemTable) MaxTG() int64 { return m.maxTG }

// randomHeight draws a tower height with geometric distribution
// (promotion probability 1/branchFactor per level) from one inline
// xorshift64* draw: two bits decide each promotion, and maxHeight caps the
// bits consumed at 24 of the 64 available.
func (m *MemTable) randomHeight() int {
	x := m.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.rng = x
	r := x * 0x2545F4914F6CDD1D
	h := 1
	for h < maxHeight && r&(branchFactor-1) == 0 {
		r >>= 2
		h++
	}
	return h
}

// newNode bump-allocates a node for a tower of height h. next[0:h] is
// cleared — a recycled node carries stale pointers from its previous life;
// levels >= h are never read for a node of height h, so they may stay
// stale.
func (m *MemTable) newNode(p series.Point, h int) *node {
	if m.slabIdx == len(m.slabs) {
		m.slabs = append(m.slabs, make([]node, slabSize))
	}
	n := &m.slabs[m.slabIdx][m.slabUsed]
	m.slabUsed++
	if m.slabUsed == slabSize {
		m.slabIdx++
		m.slabUsed = 0
	}
	n.point = p
	for i := 0; i < h; i++ {
		n.next[i] = nil
	}
	return n
}

// findGreaterOrEqual returns the first node with point.TG >= tg and fills
// prev with the rightmost node before it on every level.
func (m *MemTable) findGreaterOrEqual(tg int64, prev *[maxHeight]*node) *node {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && x.next[level].point.TG < tg {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Put inserts or overwrites the point keyed by p.TG. It returns true when a
// new key was inserted, false when an existing key was overwritten.
func (m *MemTable) Put(p series.Point) bool {
	m.invalidateSnap()
	if m.count > 0 && p.TG > m.maxTG {
		// In-order arrival (the paper's sequential case): the new key is
		// strictly beyond every buffered one, so its predecessor at every
		// level is the current tail — append without searching.
		m.putTail(p)
		return true
	}
	var prev [maxHeight]*node
	x := m.findGreaterOrEqual(p.TG, &prev)
	if x != nil && x.point.TG == p.TG {
		x.point = p
		return false
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := m.newNode(p, h)
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
		if n.next[level] == nil {
			m.tail[level] = n
		}
	}
	if m.count == 0 || p.TG < m.minTG {
		m.minTG = p.TG
	}
	if m.count == 0 || p.TG > m.maxTG {
		m.maxTG = p.TG
	}
	m.count++
	return true
}

// putTail appends a point whose key is strictly beyond maxTG: the
// predecessor at every level is tail[level] (head where the level is
// empty), so no comparison walk is needed.
func (m *MemTable) putTail(p series.Point) {
	h := m.randomHeight()
	if h > m.height {
		m.height = h
	}
	n := m.newNode(p, h)
	for level := 0; level < h; level++ {
		t := m.tail[level]
		if t == nil {
			t = m.head
		}
		t.next[level] = n
		m.tail[level] = n
	}
	m.maxTG = p.TG
	m.count++
}

// invalidateSnap drops the cached frozen image after any mutation. The
// previously returned slice stays valid and immutable — readers holding it
// simply see the pre-mutation state.
func (m *MemTable) invalidateSnap() {
	m.snap = nil
	m.snapValid = false
}

// Get returns the point with generation time tg.
func (m *MemTable) Get(tg int64) (series.Point, bool) {
	x := m.findGreaterOrEqual(tg, nil)
	if x != nil && x.point.TG == tg {
		return x.point, true
	}
	return series.Point{}, false
}

// Points returns all buffered points sorted ascending by generation time.
func (m *MemTable) Points() []series.Point {
	out := make([]series.Point, 0, m.count)
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, x.point)
	}
	return out
}

// Snapshot returns an immutable frozen image of the memtable's points,
// sorted ascending by generation time. The slice is cached: consecutive
// snapshots with no interleaved mutation return the same slice without
// copying, so an engine snapshot of a quiescent memtable is O(1). Callers
// must treat the result as read-only; it stays valid (showing the state at
// snapshot time) across later mutations.
func (m *MemTable) Snapshot() []series.Point {
	if !m.snapValid {
		m.snap = m.Points()
		m.snapValid = true
	}
	return m.snap
}

// Scan returns buffered points with generation time in [lo, hi].
func (m *MemTable) Scan(lo, hi int64) []series.Point {
	return m.AppendRange(nil, lo, hi)
}

// AppendRange appends the buffered points with generation time in [lo, hi]
// to dst and returns the extended slice. It lets callers that scan several
// memtables (or scan repeatedly) reuse one allocation instead of taking a
// fresh slice per memtable per scan.
func (m *MemTable) AppendRange(dst []series.Point, lo, hi int64) []series.Point {
	for x := m.findGreaterOrEqual(lo, nil); x != nil && x.point.TG <= hi; x = x.next[0] {
		dst = append(dst, x.point)
	}
	return dst
}

// Reset clears the memtable for reuse, keeping its allocated head node,
// node slabs, and RNG stream. Previously returned Snapshot slices stay
// valid: they hold copied points, not node references.
func (m *MemTable) Reset() {
	m.invalidateSnap()
	for i := range m.head.next {
		m.head.next[i] = nil
		m.tail[i] = nil
	}
	m.height = 1
	m.count = 0
	m.minTG = 0
	m.maxTG = 0
	m.slabIdx = 0
	m.slabUsed = 0
}
