package memtable

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/series"
)

func TestPutGet(t *testing.T) {
	m := New(1)
	if !m.Put(series.Point{TG: 10, V: 1}) {
		t.Error("first Put should report insert")
	}
	if m.Put(series.Point{TG: 10, V: 2}) {
		t.Error("second Put of same key should report overwrite")
	}
	p, ok := m.Get(10)
	if !ok || p.V != 2 {
		t.Errorf("Get(10) = %v, %v", p, ok)
	}
	if _, ok := m.Get(11); ok {
		t.Error("Get(11) should miss")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestPointsSorted(t *testing.T) {
	m := New(2)
	keys := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for _, k := range keys {
		m.Put(series.Point{TG: k})
	}
	ps := m.Points()
	if len(ps) != 10 {
		t.Fatalf("Points len = %d", len(ps))
	}
	if !series.IsSortedByTG(ps) {
		t.Errorf("not sorted: %v", ps)
	}
	for i, p := range ps {
		if p.TG != int64(i) {
			t.Errorf("point %d TG = %d", i, p.TG)
		}
	}
}

func TestMinMaxTG(t *testing.T) {
	m := New(3)
	m.Put(series.Point{TG: 50})
	m.Put(series.Point{TG: 10})
	m.Put(series.Point{TG: 90})
	if m.MinTG() != 10 || m.MaxTG() != 90 {
		t.Errorf("Min/Max = %d/%d", m.MinTG(), m.MaxTG())
	}
}

func TestScan(t *testing.T) {
	m := New(4)
	for i := int64(0); i < 100; i += 10 {
		m.Put(series.Point{TG: i})
	}
	got := m.Scan(25, 55)
	want := []int64{30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("Scan = %v", got)
	}
	for i, p := range got {
		if p.TG != want[i] {
			t.Errorf("Scan[%d] = %d, want %d", i, p.TG, want[i])
		}
	}
	if got := m.Scan(1000, 2000); len(got) != 0 {
		t.Errorf("out-of-range scan: %v", got)
	}
}

func TestEmptyAndReset(t *testing.T) {
	m := New(5)
	if !m.Empty() {
		t.Error("new memtable should be empty")
	}
	for i := int64(0); i < 50; i++ {
		m.Put(series.Point{TG: i})
	}
	if m.Empty() || m.Len() != 50 {
		t.Error("fill failed")
	}
	m.Reset()
	if !m.Empty() || m.Len() != 0 {
		t.Error("Reset did not clear")
	}
	if got := m.Points(); len(got) != 0 {
		t.Errorf("Points after Reset: %v", got)
	}
	// Reusable after reset.
	m.Put(series.Point{TG: 7})
	if p, ok := m.Get(7); !ok || p.TG != 7 {
		t.Error("Put after Reset failed")
	}
	if m.MinTG() != 7 || m.MaxTG() != 7 {
		t.Error("Min/Max after Reset wrong")
	}
}

func TestLargeRandomAgainstMap(t *testing.T) {
	m := New(6)
	ref := make(map[int64]float64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		tg := rng.Int63n(5000)
		v := rng.Float64()
		m.Put(series.Point{TG: tg, V: v})
		ref[tg] = v
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	keys := make([]int64, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ps := m.Points()
	for i, k := range keys {
		if ps[i].TG != k || ps[i].V != ref[k] {
			t.Fatalf("point %d = %v, want TG=%d V=%v", i, ps[i], k, ref[k])
		}
	}
}

func TestScanMatchesPointsFilter(t *testing.T) {
	prop := func(keys []int16, loRaw, hiRaw int16) bool {
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		m := New(7)
		for _, k := range keys {
			m.Put(series.Point{TG: int64(k)})
		}
		got := m.Scan(lo, hi)
		var want int
		for _, p := range m.Points() {
			if p.TG >= lo && p.TG <= hi {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		return series.IsSortedByTG(got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New(1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(series.Point{TG: rng.Int63()})
		if m.Len() >= 1<<16 {
			m.Reset()
		}
	}
}

func BenchmarkGet(b *testing.B) {
	m := New(1)
	for i := int64(0); i < 1<<14; i++ {
		m.Put(series.Point{TG: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(int64(i) & (1<<14 - 1))
	}
}

func TestAppendRange(t *testing.T) {
	m := New(1)
	for _, tg := range []int64{5, 1, 9, 3, 7} {
		m.Put(series.Point{TG: tg, V: float64(tg)})
	}
	// Appends onto dst without disturbing existing elements.
	dst := []series.Point{{TG: -1}}
	dst = m.AppendRange(dst, 3, 7)
	want := []int64{-1, 3, 5, 7}
	if len(dst) != len(want) {
		t.Fatalf("AppendRange len = %d, want %d", len(dst), len(want))
	}
	for i, tg := range want {
		if dst[i].TG != tg {
			t.Errorf("dst[%d].TG = %d, want %d", i, dst[i].TG, tg)
		}
	}
	// Empty range appends nothing and preserves dst.
	if got := m.AppendRange(dst[:1], 100, 200); len(got) != 1 {
		t.Errorf("empty-range AppendRange len = %d, want 1", len(got))
	}
}

func TestSnapshotFrozenAcrossMutation(t *testing.T) {
	m := New(1)
	for tg := int64(0); tg < 10; tg += 2 {
		m.Put(series.Point{TG: tg, V: float64(tg)})
	}
	snap := m.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("Snapshot len = %d, want 5", len(snap))
	}
	// Cached: a second call without mutation returns the same image.
	if again := m.Snapshot(); &again[0] != &snap[0] {
		t.Error("Snapshot should be cached while the memtable is unchanged")
	}
	// Mutations (insert and overwrite) must not alter the taken image.
	m.Put(series.Point{TG: 1, V: 100})
	m.Put(series.Point{TG: 0, V: 100})
	for i, p := range snap {
		if p.TG != int64(2*i) || p.V != float64(2*i) {
			t.Fatalf("frozen image changed at %d: %+v", i, p)
		}
	}
	if next := m.Snapshot(); len(next) != 6 {
		t.Errorf("post-mutation Snapshot len = %d, want 6", len(next))
	}
	m.Reset()
	if len(m.Snapshot()) != 0 {
		t.Error("Snapshot after Reset should be empty")
	}
}
