package sstable

import (
	"errors"
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

// decodeErrAllowed reports whether err belongs to the package's declared
// error family. Hostile images must fail with one of these — never with a
// panic, an unwrapped codec error, or a runtime fault.
func decodeErrAllowed(err error) bool {
	for _, e := range []error{
		ErrBadMagic, ErrBadVersion, ErrCorrupt, ErrChecksum,
		ErrUnsorted, ErrEmptyTable, ErrDupTimstamp,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// FuzzDecode feeds arbitrary bytes to both the eager and lazy decode
// paths. Invariants: no panics and no unbounded allocations (enforced by
// the parse-layer plausibility checks — a hostile header claiming 2^40
// points is rejected before any allocation sized from it); failures are
// wrapped in the package's error family; successes agree between Decode
// and OpenReader and re-encode losslessly.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x53, 0x53, 0x54})
	small, _ := Build(3, []series.Point{{TG: 1, TA: 2, V: 3}})
	big, _ := Build(9, func() []series.Point {
		ps := make([]series.Point, 300)
		for i := range ps {
			ps[i] = series.Point{TG: int64(i) * 7, TA: int64(i)*7 + 2, V: float64(i) * 0.5}
		}
		return ps
	}())
	for _, tbl := range []*Table{small, big} {
		for _, version := range []byte{1, 2} {
			img := tbl.EncodeVersion(16, version)
			f.Add(img)
			f.Add(img[:len(img)/2])
			f.Add(img[:len(img)-3])
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Decode(data)
		if err != nil {
			if !decodeErrAllowed(err) {
				t.Fatalf("Decode returned an error outside the package family: %v", err)
			}
		} else {
			if tbl.Len() == 0 {
				t.Fatal("Decode accepted an empty table")
			}
			pts := tbl.Points()
			for i := 1; i < len(pts); i++ {
				if pts[i].TG <= pts[i-1].TG {
					t.Fatal("Decode accepted unsorted or duplicate timestamps")
				}
			}
			// A decoded table must survive a round trip.
			if _, rerr := Decode(tbl.Encode(16)); rerr != nil {
				t.Fatalf("re-encode of accepted image failed to decode: %v", rerr)
			}
		}

		// The lazy path must agree on acceptance and obey the same error
		// discipline; block damage it cannot see at open time surfaces as
		// wrapped errors from reads.
		b := storage.NewMemBackend()
		if werr := b.Write("f.tbl", data); werr != nil {
			t.Fatal(werr)
		}
		r, oerr := OpenReader(b, "f.tbl", nil)
		if oerr != nil {
			if !decodeErrAllowed(oerr) && !errors.Is(oerr, storage.ErrNotFound) {
				t.Fatalf("OpenReader returned an error outside the package family: %v", oerr)
			}
			if err == nil {
				t.Fatalf("Decode accepted but OpenReader rejected: %v", oerr)
			}
			return
		}
		got, serr := r.Scan(r.MinTG(), r.MaxTG())
		if serr != nil {
			if !decodeErrAllowed(serr) {
				t.Fatalf("Reader.Scan returned an error outside the package family: %v", serr)
			}
			if err == nil {
				t.Fatalf("Decode accepted but Reader.Scan rejected: %v", serr)
			}
			return
		}
		if err != nil {
			t.Fatalf("Decode rejected (%v) but the lazy path read the whole table", err)
		}
		if len(got) != tbl.Len() {
			t.Fatalf("lazy full scan returned %d points, eager decode %d", len(got), tbl.Len())
		}
		for i := range got {
			if got[i] != tbl.Points()[i] {
				t.Fatalf("lazy point %d = %v, eager %v", i, got[i], tbl.Points()[i])
			}
		}
	})
}
