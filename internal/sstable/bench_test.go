package sstable

import (
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/cache"
	"repro/internal/series"
	"repro/internal/storage"
)

// buildBenchTable returns an n-point table plus its encoded image and
// parsed header, for tests that drive decodeBlock directly.
func buildBenchTable(t testing.TB, n, blockPoints int) (*Table, []byte, *tableHeader) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	tbl, err := Build(1, randomPoints(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	img := tbl.EncodeVersion(blockPoints, FormatVersion)
	h, err := parseHeader(img, int64(len(img)))
	if err != nil {
		t.Fatal(err)
	}
	return tbl, img, h
}

// blockRaw extracts block e's raw bytes from the encoded image into a
// fresh slice the caller may scribble on.
func blockRaw(img []byte, h *tableHeader, e blockIndexEntry) []byte {
	raw := make([]byte, e.length)
	copy(raw, img[h.blocksOff+int64(e.offset):])
	return raw
}

// TestDecodeBlockNoAliasing is the regression pin for the arena fast
// path: decodeBlock's result must never alias the raw block bytes, in
// either the pooled or the GC-owned mode — the reader returns raw to the
// arena the moment decodeBlock returns, so any alias would be overwritten
// by the next block read that recycles the buffer.
func TestDecodeBlockNoAliasing(t *testing.T) {
	tbl, img, h := buildBenchTable(t, 1000, 128)
	for _, pooled := range []bool{false, true} {
		got := 0
		for i, e := range h.index {
			raw := blockRaw(img, h, e)
			pts, err := decodeBlock(h.version, raw, e, pooled)
			if err != nil {
				t.Fatalf("pooled=%v block %d: %v", pooled, i, err)
			}
			// Simulate the arena recycling the buffer mid-lifetime.
			for j := range raw {
				raw[j] = 0xFF
			}
			for _, p := range pts {
				if p != tbl.points[got] {
					t.Fatalf("pooled=%v block %d: point %d corrupted after raw scribble: %+v want %+v",
						pooled, i, got, p, tbl.points[got])
				}
				got++
			}
			if pooled {
				arena.PutPoints(pts)
			}
		}
		if got != len(tbl.points) {
			t.Fatalf("pooled=%v decoded %d points, want %d", pooled, got, len(tbl.points))
		}
	}
}

// TestLoadBlockNoAliasingIntoCache pins the loadBlock contract referenced
// in reader.go: cache-published blocks are GC-owned and share nothing
// with arena buffers, so poisoning the arena between a cold scan (which
// populates the cache) and a warm scan (which serves from it) must not
// change the bytes the warm scan returns.
func TestLoadBlockNoAliasingIntoCache(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tbl, err := Build(1, randomPoints(rng, 2000))
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(1 << 20)
	r := openTestReader(t, tbl, 128, FormatVersion, c)

	lo, hi := tbl.MinTG(), tbl.MaxTG()
	cold, err := r.Scan(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := tbl.points
	if !equalPoints(cold, want) {
		t.Fatal("cold scan disagrees with table")
	}

	// Poison the arena classes the reader draws from: pull a spread of
	// buffer sizes, scribble, and return them. If any cache-resident
	// block aliased an arena slice, the recycled garbage would show up in
	// the warm scan below.
	for sz := 1 << 6; sz <= 1<<16; sz <<= 1 {
		b := arena.GetBytes(sz)
		for i := range b {
			b[i] = 0xAA
		}
		arena.PutBytes(b)
		p := arena.GetPoints(sz / 24)
		for i := range p {
			p[i] = series.Point{TG: -1, TA: -1, V: -1}
		}
		arena.PutPoints(p)
	}

	var bs BlockStats
	warm := make([]series.Point, 0, len(want))
	it := r.Iter(lo, hi, &bs)
	for it.Next() {
		warm = append(warm, it.Point())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if bs.BlocksCached == 0 {
		t.Fatal("warm scan hit no cached blocks; test is not exercising the cache path")
	}
	if !equalPoints(warm, want) {
		t.Fatal("warm (cached) scan corrupted by arena poisoning: cached block aliases a pooled buffer")
	}
}

// TestReaderOwnedBlocksReleased checks the cache-less reader path (every
// block owned) still yields correct results across Get, Scan, and Iter
// while returning blocks to a poisoned arena between operations.
func TestReaderOwnedBlocksReleased(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tbl, err := Build(1, randomPoints(rng, 1500))
	if err != nil {
		t.Fatal(err)
	}
	r := openTestReader(t, tbl, 100, FormatVersion, nil)

	for i := 0; i < len(tbl.points); i += 7 {
		p := tbl.points[i]
		got, ok, err := r.Get(p.TG)
		if err != nil || !ok || got != p {
			t.Fatalf("Get(%d) = %+v %v %v, want %+v", p.TG, got, ok, err, p)
		}
	}
	out, err := r.Scan(tbl.MinTG(), tbl.MaxTG())
	if err != nil {
		t.Fatal(err)
	}
	if !equalPoints(out, tbl.points) {
		t.Fatal("cache-less Scan disagrees with table")
	}
}

func BenchmarkReaderScanCold(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	tbl, err := Build(1, randomPoints(rng, 8192))
	if err != nil {
		b.Fatal(err)
	}
	backend := storage.NewMemBackend()
	if err := backend.Write("t.tbl", tbl.Encode(256)); err != nil {
		b.Fatal(err)
	}
	r, err := OpenReader(backend, "t.tbl", nil) // no cache: every scan decodes
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := tbl.MinTG(), tbl.MaxTG()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := r.Scan(lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 8192 {
			b.Fatal("short scan")
		}
	}
}

func BenchmarkReaderIterWarm(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	tbl, err := Build(1, randomPoints(rng, 8192))
	if err != nil {
		b.Fatal(err)
	}
	backend := storage.NewMemBackend()
	if err := backend.Write("t.tbl", tbl.Encode(256)); err != nil {
		b.Fatal(err)
	}
	c := cache.New(8 << 20)
	r, err := OpenReader(backend, "t.tbl", c)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := tbl.MinTG(), tbl.MaxTG()
	if _, err := r.Scan(lo, hi); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		it := r.Iter(lo, hi, nil)
		for it.Next() {
			n++
		}
		if it.Err() != nil || n != 8192 {
			b.Fatalf("iter: n=%d err=%v", n, it.Err())
		}
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	_, img, h := buildBenchTable(b, 4096, 256)
	e := h.index[0]
	raw := blockRaw(img, h, e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := decodeBlock(h.version, raw, e, true)
		if err != nil {
			b.Fatal(err)
		}
		arena.PutPoints(pts)
	}
	b.SetBytes(int64(e.length))
}
