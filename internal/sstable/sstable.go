// Package sstable implements the immutable sorted string table that holds
// time-series points on disk. Points inside a table are sorted by
// generation time (the paper: "In an SSTable, the entries are sorted by the
// generation time").
//
// Two representations implement the TableHandle read interface: Table keeps
// its points decoded in memory (the write path builds tables this way
// before persisting them), while Reader keeps only the footer — block
// index and Bloom filter — resident and pages individual blocks in on
// demand through a shared LRU cache. Encode/Decode provide the durable
// image with delta-compressed timestamp blocks, per-block CRC32 checksums,
// a block index, and a Bloom filter over generation timestamps.
package sstable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/arena"
	"repro/internal/bloom"
	"repro/internal/encoding"
	"repro/internal/series"
)

// Magic identifies encoded SSTable images.
const Magic uint32 = 0x54535354 // "TSST"

// FormatVersion is the current encoding version. Version 1 stores values
// as raw IEEE-754; version 2 compresses them with the Gorilla XOR codec.
// Decode accepts both.
const FormatVersion = 2

// DefaultBlockPoints is the number of points per encoded block.
const DefaultBlockPoints = 128

// Errors returned by Decode and OpenReader.
var (
	ErrBadMagic    = errors.New("sstable: bad magic")
	ErrBadVersion  = errors.New("sstable: unsupported format version")
	ErrCorrupt     = errors.New("sstable: corrupt data")
	ErrChecksum    = errors.New("sstable: block checksum mismatch")
	ErrUnsorted    = errors.New("sstable: points not sorted by generation time")
	ErrEmptyTable  = errors.New("sstable: table must contain at least one point")
	ErrDupTimstamp = errors.New("sstable: duplicate generation timestamp")
)

// errShortHeader is an internal sentinel: the supplied prefix of the image
// ends inside the header, and a longer prefix would let the parse proceed.
// It is never returned to callers of Decode or OpenReader.
var errShortHeader = errors.New("sstable: header extends past prefix")

// TableHandle is the uniform read interface over one immutable table,
// whether its points are resident (Table) or paged in lazily (Reader).
// Get, Scan, and Iter may perform storage reads and can therefore fail;
// resident tables never return errors.
type TableHandle interface {
	// ID returns the table's unique identifier.
	ID() uint64
	// Len returns the number of points in the table.
	Len() int
	// MinTG returns the earliest generation time in the table.
	MinTG() int64
	// MaxTG returns the latest generation time in the table.
	MaxTG() int64
	// Overlaps reports whether the table's range intersects [lo, hi].
	Overlaps(lo, hi int64) bool
	// Get returns the point with generation time tg, if present.
	Get(tg int64) (series.Point, bool, error)
	// Scan returns the points with generation time in [lo, hi], in order.
	// An inverted range (lo > hi) yields an empty result, not an error.
	Scan(lo, hi int64) ([]series.Point, error)
	// Iter streams the points with generation time in [lo, hi] without
	// materializing them all; block-level read accounting is added to bs
	// when bs is non-nil. A failed storage read surfaces through the
	// iterator's Err after Next returns false.
	Iter(lo, hi int64, bs *BlockStats) PointIterator
	// ResidentPoints returns how many decoded points the handle itself
	// keeps in memory: Len() for a resident Table, 0 for a lazy Reader
	// (whose decoded blocks live in the shared cache, not the handle).
	ResidentPoints() int
}

// PointIterator streams points in ascending generation-time order. After
// Next returns false, Err reports whether iteration ended by exhaustion
// (nil) or by a failed read.
type PointIterator interface {
	Next() bool
	Point() series.Point
	Err() error
}

// BlockStats accumulates block-level read accounting for one operation.
// The same collector is shared by every table iterator feeding one scan,
// so a scan's totals are in one place.
type BlockStats struct {
	// BlocksRead counts blocks fetched from storage and decoded.
	BlocksRead int64
	// BlocksCached counts block requests served by the shared cache.
	BlocksCached int64
}

// Table is an immutable run of points sorted ascending by generation time,
// fully resident in memory.
type Table struct {
	id     uint64
	points []series.Point
	filter *bloom.Filter
	rollup *Rollup // optional precomputed summary; see rollup.go
}

var _ TableHandle = (*Table)(nil)

// Build constructs a table with the given id from points that must be
// sorted strictly ascending by generation time. Build takes ownership of
// the slice.
func Build(id uint64, points []series.Point) (*Table, error) {
	if len(points) == 0 {
		return nil, ErrEmptyTable
	}
	for i := 1; i < len(points); i++ {
		if points[i].TG < points[i-1].TG {
			return nil, ErrUnsorted
		}
		if points[i].TG == points[i-1].TG {
			return nil, ErrDupTimstamp
		}
	}
	f := bloom.New(len(points), 0.01)
	for _, p := range points {
		f.Add(uint64(p.TG))
	}
	return &Table{id: id, points: points, filter: f}, nil
}

// ID returns the table's unique identifier.
func (t *Table) ID() uint64 { return t.id }

// Len returns the number of points.
func (t *Table) Len() int { return len(t.points) }

// MinTG returns the earliest generation time in the table.
func (t *Table) MinTG() int64 { return t.points[0].TG }

// MaxTG returns the latest generation time in the table.
func (t *Table) MaxTG() int64 { return t.points[len(t.points)-1].TG }

// Points returns the backing point slice. Callers must not modify it.
func (t *Table) Points() []series.Point { return t.points }

// ResidentPoints implements TableHandle: every point is in memory.
func (t *Table) ResidentPoints() int { return len(t.points) }

// Overlaps reports whether the table's generation-time range intersects
// [lo, hi] (inclusive).
func (t *Table) Overlaps(lo, hi int64) bool {
	return t.MinTG() <= hi && t.MaxTG() >= lo
}

// Get returns the point with generation time tg, consulting the Bloom
// filter first. The second result reports whether the point exists; the
// error is always nil for a resident table.
func (t *Table) Get(tg int64) (series.Point, bool, error) {
	if !t.filter.MayContain(uint64(tg)) {
		return series.Point{}, false, nil
	}
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].TG >= tg })
	if i < len(t.points) && t.points[i].TG == tg {
		return t.points[i], true, nil
	}
	return series.Point{}, false, nil
}

// Scan returns the sub-slice of points with generation time in [lo, hi]
// (inclusive). The returned slice aliases the table and must not be
// modified. An inverted range yields an empty result.
func (t *Table) Scan(lo, hi int64) ([]series.Point, error) {
	if lo > hi {
		return nil, nil
	}
	return clampRange(t.points, lo, hi), nil
}

// clampRange returns the sub-slice of the sorted slice pts whose
// generation times fall in [lo, hi]. The result aliases pts.
func clampRange(pts []series.Point, lo, hi int64) []series.Point {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].TG >= lo })
	j := sort.Search(len(pts), func(j int) bool { return pts[j].TG > hi })
	if j < i {
		j = i
	}
	return pts[i:j]
}

// Iterator walks a sorted point slice in generation-time order. It
// implements PointIterator; Err is always nil because no reads occur.
type Iterator struct {
	points []series.Point
	pos    int
}

var _ PointIterator = (*Iterator)(nil)

// Iter implements TableHandle, streaming the in-range points. The bs
// collector is unused: resident tables read no blocks.
func (t *Table) Iter(lo, hi int64, bs *BlockStats) PointIterator {
	pts, _ := t.Scan(lo, hi)
	return &Iterator{points: pts}
}

// IterPoints returns a PointIterator over a slice already sorted by
// generation time; the LSM layer uses it to feed memtable snapshots into
// the same merge machinery as table blocks.
func IterPoints(pts []series.Point) *Iterator { return &Iterator{points: pts} }

// Next advances and reports whether a point is available.
func (it *Iterator) Next() bool {
	if it.pos >= len(it.points) {
		return false
	}
	it.pos++
	return true
}

// Point returns the current point; valid only after a true Next.
func (it *Iterator) Point() series.Point { return it.points[it.pos-1] }

// Err implements PointIterator; slice iteration cannot fail.
func (it *Iterator) Err() error { return nil }

// blockIndexEntry locates one block inside the encoded image.
type blockIndexEntry struct {
	minTG  int64
	maxTG  int64
	count  int
	offset int // from start of blocks region
	length int
}

// tableHeader is everything before the blocks region of an encoded image:
// identity, the block index, and the Bloom filter. It is what a lazy
// Reader keeps resident.
type tableHeader struct {
	version     byte
	id          uint64
	count       int
	blockPoints int
	index       []blockIndexEntry
	filter      *bloom.Filter
	blocksOff   int64 // offset of the blocks region from the image start
}

// Encode serializes the table at the current FormatVersion. Layout:
//
//	magic u32 | version u8 | id uvarint | count uvarint | blockPoints uvarint
//	| numBlocks uvarint | index entries | bloomLen uvarint | bloom
//	| blocks region
//
// Each index entry: minTG varint, maxTG varint, count uvarint,
// offset uvarint, length uvarint. Each block: payload (delta-encoded TGs,
// delta-encoded TAs, then values — raw float64 in v1, Gorilla-compressed
// in v2) followed by CRC32-IEEE of the payload.
func (t *Table) Encode(blockPoints int) []byte {
	return t.EncodeVersion(blockPoints, FormatVersion)
}

// EncodeVersion serializes with an explicit format version (1 or 2); it
// exists so tests and migration tools can produce older images.
func (t *Table) EncodeVersion(blockPoints int, version byte) []byte {
	if version != 1 && version != 2 {
		panic("sstable: unsupported encode version")
	}
	if blockPoints <= 0 {
		blockPoints = DefaultBlockPoints
	}
	n := len(t.points)
	numBlocks := (n + blockPoints - 1) / blockPoints

	// Encode blocks first to learn offsets. Per-block scratch — the
	// column slices and the payload staging buffer — comes from the
	// arena and is reused across blocks, so encoding a table costs O(1)
	// scratch allocations regardless of block count.
	var blocks []byte
	index := make([]blockIndexEntry, 0, numBlocks)
	tgs := arena.GetInt64s(blockPoints)[:0]
	tas := arena.GetInt64s(blockPoints)[:0]
	vs := arena.GetFloat64s(blockPoints)[:0]
	payload := arena.GetBytes(18 * blockPoints)[:0]
	defer func() {
		arena.PutInt64s(tgs)
		arena.PutInt64s(tas)
		arena.PutFloat64s(vs)
		arena.PutBytes(payload)
	}()
	for b := 0; b < numBlocks; b++ {
		lo := b * blockPoints
		hi := lo + blockPoints
		if hi > n {
			hi = n
		}
		tgs, tas, vs = tgs[:0], tas[:0], vs[:0]
		for _, p := range t.points[lo:hi] {
			tgs = append(tgs, p.TG)
			tas = append(tas, p.TA)
			vs = append(vs, p.V)
		}
		payload = payload[:0]
		payload = encoding.EncodeDeltas(payload, tgs)
		payload = encoding.EncodeDeltas(payload, tas)
		if version >= 2 {
			payload = encoding.EncodeGorilla(payload, vs)
		} else {
			payload = encoding.EncodeFloats(payload, vs)
		}
		crc := crc32.ChecksumIEEE(payload)
		start := len(blocks)
		blocks = append(blocks, payload...)
		blocks = encoding.PutUint32(blocks, crc)
		index = append(index, blockIndexEntry{
			minTG:  t.points[lo].TG,
			maxTG:  t.points[hi-1].TG,
			count:  hi - lo,
			offset: start,
			length: len(blocks) - start,
		})
	}

	out := encoding.PutUint32(nil, Magic)
	out = append(out, version)
	out = encoding.PutUvarint(out, t.id)
	out = encoding.PutUvarint(out, uint64(n))
	out = encoding.PutUvarint(out, uint64(blockPoints))
	out = encoding.PutUvarint(out, uint64(numBlocks))
	for _, e := range index {
		out = encoding.PutVarint(out, e.minTG)
		out = encoding.PutVarint(out, e.maxTG)
		out = encoding.PutUvarint(out, uint64(e.count))
		out = encoding.PutUvarint(out, uint64(e.offset))
		out = encoding.PutUvarint(out, uint64(e.length))
	}
	bl := t.filter.Encode(nil)
	out = encoding.PutUvarint(out, uint64(len(bl)))
	out = append(out, bl...)
	out = append(out, blocks...)
	return out
}

// parseHeader parses and validates the header region of an encoded image.
// src is a prefix of the image; total is the full image size. When src
// ends inside the header (and a longer prefix exists), errShortHeader is
// returned so callers reading the header incrementally can fetch more.
//
// Validation here is what makes lazy reads safe against hostile images:
// every count, offset, and length is bounded by the image size before any
// allocation sized from it, and the block index must describe disjoint,
// ascending, exhaustive blocks. Per-block payloads are checked separately
// by decodeBlock when they are actually read.
func parseHeader(src []byte, total int64) (*tableHeader, error) {
	short := int64(len(src)) < total
	corrupt := func(context string, err error) error {
		if errors.Is(err, encoding.ErrShortBuffer) && short {
			return errShortHeader
		}
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, context, err)
	}

	off := 0
	magic, n, err := encoding.Uint32(src)
	if err != nil {
		return nil, corrupt("magic", err)
	}
	off += n
	if magic != Magic {
		return nil, ErrBadMagic
	}
	if off >= len(src) {
		if short {
			return nil, errShortHeader
		}
		return nil, fmt.Errorf("%w: missing version byte", ErrCorrupt)
	}
	version := src[off]
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	off++

	readUvarint := func(context string) (uint64, error) {
		v, n, err := encoding.Uvarint(src[off:])
		if err != nil {
			return 0, corrupt(context, err)
		}
		off += n
		return v, nil
	}
	readVarint := func(context string) (int64, error) {
		v, n, err := encoding.Varint(src[off:])
		if err != nil {
			return 0, corrupt(context, err)
		}
		off += n
		return v, nil
	}

	id, err := readUvarint("id")
	if err != nil {
		return nil, err
	}
	count, err := readUvarint("count")
	if err != nil {
		return nil, err
	}
	blockPoints, err := readUvarint("blockPoints")
	if err != nil {
		return nil, err
	}
	numBlocks, err := readUvarint("numBlocks")
	if err != nil {
		return nil, err
	}
	// Every point occupies at least two bytes in the blocks region (one
	// byte per timestamp delta), so a count claiming more points than the
	// image could hold is corrupt — and, crucially, rejected before any
	// count-sized allocation.
	if count == 0 || numBlocks == 0 || numBlocks > count || count*2 > uint64(total) {
		return nil, fmt.Errorf("%w: implausible point/block counts (%d/%d in %d bytes)", ErrCorrupt, count, numBlocks, total)
	}

	index := make([]blockIndexEntry, numBlocks)
	var sum uint64
	for i := range index {
		minTG, err := readVarint("index minTG")
		if err != nil {
			return nil, err
		}
		maxTG, err := readVarint("index maxTG")
		if err != nil {
			return nil, err
		}
		c, err := readUvarint("index count")
		if err != nil {
			return nil, err
		}
		o, err := readUvarint("index offset")
		if err != nil {
			return nil, err
		}
		l, err := readUvarint("index length")
		if err != nil {
			return nil, err
		}
		// Bound before converting to int: offsets/lengths beyond the image
		// are corrupt, and the check keeps conversions safe on 32-bit.
		if c == 0 || c > count || o > uint64(total) || l > uint64(total) {
			return nil, fmt.Errorf("%w: index entry %d out of bounds", ErrCorrupt, i)
		}
		// A block holds c points (≥2 bytes each) plus a 4-byte checksum.
		if c*2+4 > l {
			return nil, fmt.Errorf("%w: index entry %d: %d points cannot fit in %d bytes", ErrCorrupt, i, c, l)
		}
		if minTG > maxTG {
			return nil, fmt.Errorf("%w: index entry %d: inverted range", ErrCorrupt, i)
		}
		if i > 0 && minTG <= index[i-1].maxTG {
			return nil, fmt.Errorf("%w: index entries overlap or regress at %d", ErrUnsorted, i)
		}
		sum += c
		index[i] = blockIndexEntry{minTG: minTG, maxTG: maxTG, count: int(c), offset: int(o), length: int(l)}
	}
	if sum != count {
		return nil, fmt.Errorf("%w: index counts sum to %d, header says %d", ErrCorrupt, sum, count)
	}

	bloomLen, err := readUvarint("bloom length")
	if err != nil {
		return nil, err
	}
	if bloomLen > uint64(total) || int64(off)+int64(bloomLen) > total {
		return nil, fmt.Errorf("%w: bloom filter extends past image", ErrCorrupt)
	}
	if off+int(bloomLen) > len(src) {
		return nil, errShortHeader // short is implied: bloom fits in total
	}
	filter, _, err := bloom.Decode(src[off : off+int(bloomLen)])
	if err != nil {
		return nil, fmt.Errorf("%w: bloom: %v", ErrCorrupt, err)
	}
	off += int(bloomLen)

	h := &tableHeader{
		version:     version,
		id:          id,
		count:       int(count),
		blockPoints: int(blockPoints),
		index:       index,
		filter:      filter,
		blocksOff:   int64(off),
	}
	blocksLen := total - h.blocksOff
	for i, e := range index {
		if int64(e.offset)+int64(e.length) > blocksLen {
			return nil, fmt.Errorf("%w: block %d extends past image", ErrCorrupt, i)
		}
	}
	return h, nil
}

// decodeBlock verifies and decodes one block. raw is exactly the block's
// e.length bytes (payload + CRC32). The decoded points are validated
// against the index entry — sorted strictly ascending, first and last
// matching the entry's range — because the index itself is not covered by
// the block checksum.
//
// The returned points never alias raw: every value is rebuilt from arena
// scratch columns, so callers may recycle (or keep reusing) raw the moment
// decodeBlock returns. With pooled set, the point slice itself also comes
// from the arena — callers use it only when they know the result will NOT
// outlive their own release (in particular, it must never enter the block
// cache), and must arena.PutPoints it when done.
func decodeBlock(version byte, raw []byte, e blockIndexEntry, pooled bool) (_ []series.Point, err error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: block shorter than checksum", ErrCorrupt)
	}
	payload := raw[:len(raw)-4]
	wantCRC, _, err := encoding.Uint32(raw[len(raw)-4:])
	if err != nil {
		return nil, fmt.Errorf("%w: block checksum: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, ErrChecksum
	}
	// Column scratch is pooled unconditionally: it never escapes this
	// function. (e.count is bounded against the image size by parseHeader
	// before any of these allocations are sized from it.)
	tgs := arena.GetInt64s(e.count)
	defer arena.PutInt64s(tgs)
	consumed, err := encoding.DecodeDeltasBuf(tgs, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: tg deltas: %v", ErrCorrupt, err)
	}
	payload = payload[consumed:]
	tas := arena.GetInt64s(e.count)
	defer arena.PutInt64s(tas)
	consumed, err = encoding.DecodeDeltasBuf(tas, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: ta deltas: %v", ErrCorrupt, err)
	}
	payload = payload[consumed:]
	vs := arena.GetFloat64s(e.count)
	defer arena.PutFloat64s(vs)
	if version >= 2 {
		_, err = encoding.DecodeGorillaBuf(vs, payload)
	} else {
		_, err = encoding.DecodeFloatsBuf(vs, payload)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: values: %v", ErrCorrupt, err)
	}
	var pts []series.Point
	if pooled {
		pts = arena.GetPoints(e.count)
		defer func() {
			if err != nil {
				arena.PutPoints(pts)
			}
		}()
	} else {
		pts = make([]series.Point, e.count)
	}
	for i := range pts {
		pts[i] = series.Point{TG: tgs[i], TA: tas[i], V: vs[i]}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TG < pts[i-1].TG {
			return nil, ErrUnsorted
		}
		if pts[i].TG == pts[i-1].TG {
			return nil, ErrDupTimstamp
		}
	}
	if pts[0].TG != e.minTG || pts[len(pts)-1].TG != e.maxTG {
		return nil, fmt.Errorf("%w: block contents disagree with index range", ErrCorrupt)
	}
	return pts, nil
}

// Decode reconstructs a fully resident table from an encoded image,
// verifying magic, version, header consistency, and every block checksum.
func Decode(src []byte) (*Table, error) {
	h, err := parseHeader(src, int64(len(src)))
	if err != nil {
		if errors.Is(err, errShortHeader) {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		return nil, err
	}
	blocks := src[h.blocksOff:]
	points := make([]series.Point, 0, h.count)
	for i := range h.index {
		e := h.index[i]
		pts, err := decodeBlock(h.version, blocks[e.offset:e.offset+e.length], e, false)
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
		points = append(points, pts...)
	}
	// Cross-block ordering is implied by the index checks in parseHeader
	// plus the per-block range checks in decodeBlock.
	return &Table{id: h.id, points: points, filter: h.filter}, nil
}
