// Package sstable implements the immutable sorted string table that holds
// time-series points on disk. Points inside a table are sorted by
// generation time (the paper: "In an SSTable, the entries are sorted by the
// generation time").
//
// A Table keeps its points decoded in memory for fast merging and scanning
// — the experiments are simulation-scale — while Encode/Decode provide a
// durable on-disk image with delta-compressed timestamp blocks, per-block
// CRC32 checksums, a block index, and a Bloom filter over generation
// timestamps for point lookups.
package sstable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/bloom"
	"repro/internal/encoding"
	"repro/internal/series"
)

// Magic identifies encoded SSTable images.
const Magic uint32 = 0x54535354 // "TSST"

// FormatVersion is the current encoding version. Version 1 stores values
// as raw IEEE-754; version 2 compresses them with the Gorilla XOR codec.
// Decode accepts both.
const FormatVersion = 2

// DefaultBlockPoints is the number of points per encoded block.
const DefaultBlockPoints = 128

// Errors returned by Decode.
var (
	ErrBadMagic    = errors.New("sstable: bad magic")
	ErrBadVersion  = errors.New("sstable: unsupported format version")
	ErrCorrupt     = errors.New("sstable: corrupt data")
	ErrChecksum    = errors.New("sstable: block checksum mismatch")
	ErrUnsorted    = errors.New("sstable: points not sorted by generation time")
	ErrEmptyTable  = errors.New("sstable: table must contain at least one point")
	ErrDupTimstamp = errors.New("sstable: duplicate generation timestamp")
)

// Table is an immutable run of points sorted ascending by generation time.
type Table struct {
	id     uint64
	points []series.Point
	filter *bloom.Filter
}

// Build constructs a table with the given id from points that must be
// sorted strictly ascending by generation time. Build takes ownership of
// the slice.
func Build(id uint64, points []series.Point) (*Table, error) {
	if len(points) == 0 {
		return nil, ErrEmptyTable
	}
	for i := 1; i < len(points); i++ {
		if points[i].TG < points[i-1].TG {
			return nil, ErrUnsorted
		}
		if points[i].TG == points[i-1].TG {
			return nil, ErrDupTimstamp
		}
	}
	f := bloom.New(len(points), 0.01)
	for _, p := range points {
		f.Add(uint64(p.TG))
	}
	return &Table{id: id, points: points, filter: f}, nil
}

// ID returns the table's unique identifier.
func (t *Table) ID() uint64 { return t.id }

// Len returns the number of points.
func (t *Table) Len() int { return len(t.points) }

// MinTG returns the earliest generation time in the table.
func (t *Table) MinTG() int64 { return t.points[0].TG }

// MaxTG returns the latest generation time in the table.
func (t *Table) MaxTG() int64 { return t.points[len(t.points)-1].TG }

// Points returns the backing point slice. Callers must not modify it.
func (t *Table) Points() []series.Point { return t.points }

// Overlaps reports whether the table's generation-time range intersects
// [lo, hi] (inclusive).
func (t *Table) Overlaps(lo, hi int64) bool {
	return t.MinTG() <= hi && t.MaxTG() >= lo
}

// Get returns the point with generation time tg, consulting the Bloom
// filter first. The second result reports whether the point exists.
func (t *Table) Get(tg int64) (series.Point, bool) {
	if !t.filter.MayContain(uint64(tg)) {
		return series.Point{}, false
	}
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].TG >= tg })
	if i < len(t.points) && t.points[i].TG == tg {
		return t.points[i], true
	}
	return series.Point{}, false
}

// Scan returns the sub-slice of points with generation time in [lo, hi]
// (inclusive). The returned slice aliases the table and must not be
// modified.
func (t *Table) Scan(lo, hi int64) []series.Point {
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].TG >= lo })
	j := sort.Search(len(t.points), func(j int) bool { return t.points[j].TG > hi })
	return t.points[i:j]
}

// Iterator walks the table's points in generation-time order.
type Iterator struct {
	points []series.Point
	pos    int
}

// Iter returns an iterator positioned before the first point.
func (t *Table) Iter() *Iterator { return &Iterator{points: t.points} }

// Next advances and reports whether a point is available.
func (it *Iterator) Next() bool {
	if it.pos >= len(it.points) {
		return false
	}
	it.pos++
	return it.pos <= len(it.points)
}

// Point returns the current point; valid only after a true Next.
func (it *Iterator) Point() series.Point { return it.points[it.pos-1] }

// blockIndexEntry locates one block inside the encoded image.
type blockIndexEntry struct {
	minTG  int64
	maxTG  int64
	count  int
	offset int // from start of blocks region
	length int
}

// Encode serializes the table at the current FormatVersion. Layout:
//
//	magic u32 | version u8 | id uvarint | count uvarint | blockPoints uvarint
//	| numBlocks uvarint | index entries | bloomLen uvarint | bloom
//	| blocks region
//
// Each index entry: minTG varint, maxTG varint, count uvarint,
// offset uvarint, length uvarint. Each block: payload (delta-encoded TGs,
// delta-encoded TAs, then values — raw float64 in v1, Gorilla-compressed
// in v2) followed by CRC32-IEEE of the payload.
func (t *Table) Encode(blockPoints int) []byte {
	return t.EncodeVersion(blockPoints, FormatVersion)
}

// EncodeVersion serializes with an explicit format version (1 or 2); it
// exists so tests and migration tools can produce older images.
func (t *Table) EncodeVersion(blockPoints int, version byte) []byte {
	if version != 1 && version != 2 {
		panic("sstable: unsupported encode version")
	}
	if blockPoints <= 0 {
		blockPoints = DefaultBlockPoints
	}
	n := len(t.points)
	numBlocks := (n + blockPoints - 1) / blockPoints

	// Encode blocks first to learn offsets.
	var blocks []byte
	index := make([]blockIndexEntry, 0, numBlocks)
	tgs := make([]int64, 0, blockPoints)
	tas := make([]int64, 0, blockPoints)
	vs := make([]float64, 0, blockPoints)
	for b := 0; b < numBlocks; b++ {
		lo := b * blockPoints
		hi := lo + blockPoints
		if hi > n {
			hi = n
		}
		tgs, tas, vs = tgs[:0], tas[:0], vs[:0]
		for _, p := range t.points[lo:hi] {
			tgs = append(tgs, p.TG)
			tas = append(tas, p.TA)
			vs = append(vs, p.V)
		}
		var payload []byte
		payload = encoding.EncodeDeltas(payload, tgs)
		payload = encoding.EncodeDeltas(payload, tas)
		if version >= 2 {
			payload = encoding.EncodeGorilla(payload, vs)
		} else {
			payload = encoding.EncodeFloats(payload, vs)
		}
		crc := crc32.ChecksumIEEE(payload)
		start := len(blocks)
		blocks = append(blocks, payload...)
		blocks = encoding.PutUint32(blocks, crc)
		index = append(index, blockIndexEntry{
			minTG:  t.points[lo].TG,
			maxTG:  t.points[hi-1].TG,
			count:  hi - lo,
			offset: start,
			length: len(blocks) - start,
		})
	}

	out := encoding.PutUint32(nil, Magic)
	out = append(out, version)
	out = encoding.PutUvarint(out, t.id)
	out = encoding.PutUvarint(out, uint64(n))
	out = encoding.PutUvarint(out, uint64(blockPoints))
	out = encoding.PutUvarint(out, uint64(numBlocks))
	for _, e := range index {
		out = encoding.PutVarint(out, e.minTG)
		out = encoding.PutVarint(out, e.maxTG)
		out = encoding.PutUvarint(out, uint64(e.count))
		out = encoding.PutUvarint(out, uint64(e.offset))
		out = encoding.PutUvarint(out, uint64(e.length))
	}
	bl := t.filter.Encode(nil)
	out = encoding.PutUvarint(out, uint64(len(bl)))
	out = append(out, bl...)
	out = append(out, blocks...)
	return out
}

// Decode reconstructs a table from an encoded image, verifying magic,
// version, and every block checksum.
func Decode(src []byte) (*Table, error) {
	off := 0
	magic, n, err := encoding.Uint32(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	off += n
	if magic != Magic {
		return nil, ErrBadMagic
	}
	if off >= len(src) {
		return nil, ErrCorrupt
	}
	version := src[off]
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	off++

	readUvarint := func() (uint64, error) {
		v, n, err := encoding.Uvarint(src[off:])
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		off += n
		return v, nil
	}
	readVarint := func() (int64, error) {
		v, n, err := encoding.Varint(src[off:])
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		off += n
		return v, nil
	}

	id, err := readUvarint()
	if err != nil {
		return nil, err
	}
	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if _, err := readUvarint(); err != nil { // blockPoints (informational)
		return nil, err
	}
	numBlocks, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 || numBlocks == 0 || count > 1<<40 || numBlocks > count {
		return nil, ErrCorrupt
	}
	index := make([]blockIndexEntry, numBlocks)
	for i := range index {
		minTG, err := readVarint()
		if err != nil {
			return nil, err
		}
		maxTG, err := readVarint()
		if err != nil {
			return nil, err
		}
		c, err := readUvarint()
		if err != nil {
			return nil, err
		}
		o, err := readUvarint()
		if err != nil {
			return nil, err
		}
		l, err := readUvarint()
		if err != nil {
			return nil, err
		}
		index[i] = blockIndexEntry{minTG: minTG, maxTG: maxTG, count: int(c), offset: int(o), length: int(l)}
	}
	bloomLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if off+int(bloomLen) > len(src) {
		return nil, ErrCorrupt
	}
	filter, _, err := bloom.Decode(src[off : off+int(bloomLen)])
	if err != nil {
		return nil, fmt.Errorf("%w: bloom: %v", ErrCorrupt, err)
	}
	off += int(bloomLen)
	blocks := src[off:]

	points := make([]series.Point, 0, count)
	for _, e := range index {
		if e.offset < 0 || e.length < 4 || e.offset+e.length > len(blocks) {
			return nil, ErrCorrupt
		}
		raw := blocks[e.offset : e.offset+e.length]
		payload := raw[:len(raw)-4]
		wantCRC, _, err := encoding.Uint32(raw[len(raw)-4:])
		if err != nil {
			return nil, ErrCorrupt
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil, ErrChecksum
		}
		tgs, consumed, err := encoding.DecodeDeltas(payload, e.count)
		if err != nil {
			return nil, fmt.Errorf("%w: tg deltas: %v", ErrCorrupt, err)
		}
		payload = payload[consumed:]
		tas, consumed, err := encoding.DecodeDeltas(payload, e.count)
		if err != nil {
			return nil, fmt.Errorf("%w: ta deltas: %v", ErrCorrupt, err)
		}
		payload = payload[consumed:]
		var vs []float64
		if version >= 2 {
			vs, _, err = encoding.DecodeGorilla(payload, e.count)
		} else {
			vs, _, err = encoding.DecodeFloats(payload, e.count)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: values: %v", ErrCorrupt, err)
		}
		for i := 0; i < e.count; i++ {
			points = append(points, series.Point{TG: tgs[i], TA: tas[i], V: vs[i]})
		}
	}
	if uint64(len(points)) != count {
		return nil, ErrCorrupt
	}
	if !series.IsSortedByTG(points) {
		return nil, ErrUnsorted
	}
	return &Table{id: id, points: points, filter: filter}, nil
}
