package sstable

import (
	"errors"
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

func TestBucketStart(t *testing.T) {
	cases := []struct{ tg, window, want int64 }{
		{0, 10, 0},
		{9, 10, 0},
		{10, 10, 10},
		{15, 10, 10},
		{-1, 10, -10},
		{-10, 10, -10},
		{-11, 10, -20},
		{7, 1, 7},
		{-7, 1, -7},
	}
	for _, c := range cases {
		if got := BucketStart(c.tg, c.window); got != c.want {
			t.Errorf("BucketStart(%d, %d) = %d, want %d", c.tg, c.window, got, c.want)
		}
	}
}

func TestBuildRollup(t *testing.T) {
	pts := []series.Point{
		{TG: -5, V: 4},                // window [-10, 0)
		{TG: 2, V: 1}, {TG: 7, V: -3}, // window [0, 10)
		{TG: 25, V: 9}, {TG: 29, V: 9}, // window [20, 30)
	}
	ru := BuildRollup(pts, 10)
	if ru == nil || ru.Window != 10 || len(ru.Buckets) != 3 {
		t.Fatalf("rollup: %+v", ru)
	}
	b0 := ru.Buckets[0]
	if b0.Start != -10 || b0.Count != 1 || b0.Min != 4 || b0.Max != 4 || b0.Sum != 4 ||
		b0.First != 4 || b0.Last != 4 || b0.FirstTG != -5 || b0.LastTG != -5 {
		t.Errorf("bucket 0: %+v", b0)
	}
	b1 := ru.Buckets[1]
	if b1.Start != 0 || b1.Count != 2 || b1.Min != -3 || b1.Max != 1 || b1.Sum != -2 ||
		b1.First != 1 || b1.Last != -3 || b1.FirstTG != 2 || b1.LastTG != 7 {
		t.Errorf("bucket 1: %+v", b1)
	}
	if ru.Buckets[2].Start != 20 || ru.Buckets[2].Sum != 18 {
		t.Errorf("bucket 2: %+v", ru.Buckets[2])
	}
	if got := BuildRollup(nil, 10); got != nil {
		t.Errorf("empty rollup: %+v", got)
	}
}

func TestRollupEncodeDecodeRoundTrip(t *testing.T) {
	pts := make([]series.Point, 0, 100)
	for i := int64(-50); i < 50; i++ {
		pts = append(pts, series.Point{TG: i * 3, V: float64(i) * 0.25})
	}
	for _, window := range []int64{1, 7, 10, 1000} {
		ru := BuildRollup(pts, window)
		got, err := DecodeRollup(EncodeRollup(ru))
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if got.Window != ru.Window || len(got.Buckets) != len(ru.Buckets) {
			t.Fatalf("window %d: got %d buckets want %d", window, len(got.Buckets), len(ru.Buckets))
		}
		for i := range got.Buckets {
			if got.Buckets[i] != ru.Buckets[i] {
				t.Fatalf("window %d bucket %d: %+v != %+v", window, i, got.Buckets[i], ru.Buckets[i])
			}
		}
	}
}

func TestRollupDecodeCorrupt(t *testing.T) {
	ru := BuildRollup([]series.Point{{TG: 5, V: 1}, {TG: 15, V: 2}}, 10)
	img := EncodeRollup(ru)

	if _, err := DecodeRollup(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty image: %v", err)
	}
	bad := append([]byte{}, img...)
	bad[0] ^= 0xFF
	if _, err := DecodeRollup(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	bad = append([]byte{}, img...)
	bad[4] = 99
	if _, err := DecodeRollup(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Any flipped body bit must be caught by the CRC.
	for i := 5; i < len(img)-4; i++ {
		bad = append([]byte{}, img...)
		bad[i] ^= 0x40
		if _, err := DecodeRollup(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: %v", i, err)
		}
	}
	if _, err := DecodeRollup(img[:len(img)-1]); err == nil || !rollupErrAllowed(err) {
		t.Errorf("truncated: %v", err)
	}
}

// rollupErrAllowed mirrors decodeErrAllowed for the sidecar format.
func rollupErrAllowed(err error) bool {
	for _, e := range []error{ErrBadMagic, ErrBadVersion, ErrChecksum, ErrCorrupt} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

func TestReaderRollupLazyLoad(t *testing.T) {
	pts := make([]series.Point, 64)
	for i := range pts {
		pts[i] = series.Point{TG: int64(i) * 5, TA: int64(i) * 5, V: float64(i)}
	}
	tbl, err := Build(1, pts)
	if err != nil {
		t.Fatal(err)
	}
	ru := BuildRollup(pts, 50)
	b := storage.NewMemBackend()
	if err := b.Write("t.tbl", tbl.Encode(16)); err != nil {
		t.Fatal(err)
	}
	if err := b.Write("t.rlp", EncodeRollup(ru)); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(b, "t.tbl", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.RollupWindow() != 0 {
		t.Fatalf("window before attach: %d", r.RollupWindow())
	}
	r.AttachRollup(b, "t.rlp", 50)
	if r.RollupWindow() != 50 {
		t.Fatalf("window after attach: %d", r.RollupWindow())
	}
	got, err := r.Rollup()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Buckets) != len(ru.Buckets) {
		t.Fatalf("%d buckets, want %d", len(got.Buckets), len(ru.Buckets))
	}
	// Window mismatch against the manifest-recorded value must fail, and
	// the failure must not be cached (a retry with nothing changed fails
	// the same way rather than succeeding spuriously).
	r2, err := OpenReader(b, "t.tbl", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.AttachRollup(b, "t.rlp", 60)
	if _, err := r2.Rollup(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("window mismatch: %v", err)
	}
	if _, err := r2.Rollup(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("window mismatch on retry: %v", err)
	}
}

// FuzzRollupDecode feeds arbitrary bytes to the rollup sidecar decoder.
// Invariants: no panics, no allocations sized from unvalidated headers
// (the bucket count is bounded by the image size first), failures stay in
// the package error family, and accepted images round-trip losslessly.
func FuzzRollupDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x4C, 0x52, 0x53, 0x54})
	pts := make([]series.Point, 40)
	for i := range pts {
		pts[i] = series.Point{TG: int64(i)*7 - 70, V: float64(i) * 0.5}
	}
	for _, window := range []int64{1, 10, 1000} {
		img := EncodeRollup(BuildRollup(pts, window))
		f.Add(img)
		f.Add(img[:len(img)/2])
		f.Add(img[:len(img)-3])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		ru, err := DecodeRollup(data)
		if err != nil {
			if !rollupErrAllowed(err) {
				t.Fatalf("DecodeRollup error outside the package family: %v", err)
			}
			return
		}
		if ru.Window <= 0 {
			t.Fatalf("accepted non-positive window %d", ru.Window)
		}
		var prev int64
		for i, bk := range ru.Buckets {
			if BucketStart(bk.Start, ru.Window) != bk.Start {
				t.Fatalf("accepted unaligned start %d (window %d)", bk.Start, ru.Window)
			}
			if i > 0 && bk.Start <= prev {
				t.Fatalf("accepted regressing starts %d after %d", bk.Start, prev)
			}
			prev = bk.Start
			if bk.FirstTG < bk.Start || bk.LastTG < bk.FirstTG ||
				bk.FirstTG >= bk.Start+ru.Window || bk.LastTG >= bk.Start+ru.Window {
				t.Fatalf("accepted edge times outside window: %+v", bk)
			}
			if bk.Count < 1 || bk.Count > bk.LastTG-bk.FirstTG+1 {
				t.Fatalf("accepted impossible count: %+v", bk)
			}
		}
		got, rerr := DecodeRollup(EncodeRollup(ru))
		if rerr != nil {
			t.Fatalf("re-encode of accepted image failed: %v", rerr)
		}
		if got.Window != ru.Window || len(got.Buckets) != len(ru.Buckets) {
			t.Fatalf("round trip changed shape")
		}
		for i := range got.Buckets {
			if got.Buckets[i] != ru.Buckets[i] {
				t.Fatalf("round trip changed bucket %d", i)
			}
		}
	})
}
