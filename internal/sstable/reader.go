package sstable

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/cache"
	"repro/internal/series"
	"repro/internal/storage"
)

// Reader is the lazy, block-addressed counterpart of Table: it keeps only
// the table header — block index and Bloom filter — in memory and decodes
// individual blocks on demand, verifying each block's CRC32 on load.
// Decoded blocks are published to a shared cache.Cache keyed by an owner
// id unique to this reader, so a whole database's paged reads fit one
// configurable memory budget.
//
// A Reader holds its storage.RangeReader open for its lifetime; the
// OpenRange contract (snapshot-at-open, readable after Remove) is what
// lets in-flight scans keep reading a table that a concurrent compaction
// has already retired and unlinked.
type Reader struct {
	name  string
	src   storage.RangeReader
	h     *tableHeader
	cache *cache.Cache
	owner uint64

	// rollup points at the table's lazily-loaded rollup sidecar, nil
	// when none is attached. See AttachRollup in rollup.go.
	rollup *rollupRef

	// retired flips once the table leaves the live set (compaction,
	// retention, or engine close). Block loads still work — in-flight
	// scans need them — but stop populating the cache, so a dead table
	// cannot occupy cache capacity. See loadBlock for the re-check that
	// closes the race with an in-flight Put.
	retired atomic.Bool
}

var _ TableHandle = (*Reader)(nil)

// openReaderHeaderBytes is the initial header read size. Headers are
// typically a few hundred bytes (index + bloom); when one is larger the
// read length doubles until the parse succeeds.
const openReaderHeaderBytes = 4096

// OpenReader opens the named encoded table for lazy reads, fetching and
// validating only the header. c may be nil to bypass caching (every block
// access then decodes from storage). No point data is read or decoded
// here — recovery over a large manifest touches only headers.
func OpenReader(b storage.Backend, name string, c *cache.Cache) (*Reader, error) {
	src, err := b.OpenRange(name)
	if err != nil {
		return nil, fmt.Errorf("sstable: open %s: %w", name, err)
	}
	total := src.Size()
	readLen := int64(openReaderHeaderBytes)
	var h *tableHeader
	for {
		if readLen > total {
			readLen = total
		}
		// parseHeader copies everything it keeps (index entries are parsed
		// values, the Bloom filter's bits are rebuilt), so the read buffer
		// can go back to the arena regardless of outcome.
		buf := arena.GetBytes(int(readLen))
		if _, err := src.ReadAt(buf, 0); err != nil {
			arena.PutBytes(buf)
			return nil, fmt.Errorf("sstable: read header of %s: %w", name, err)
		}
		h, err = parseHeader(buf, total)
		arena.PutBytes(buf)
		if err == nil {
			break
		}
		if errors.Is(err, errShortHeader) && readLen < total {
			readLen *= 2
			continue
		}
		if errors.Is(err, errShortHeader) {
			err = fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		return nil, fmt.Errorf("sstable: open %s: %w", name, err)
	}
	r := &Reader{name: name, src: src, h: h}
	if c != nil {
		r.cache = c
		r.owner = c.NewOwner()
	}
	return r, nil
}

// ID returns the table's unique identifier.
func (r *Reader) ID() uint64 { return r.h.id }

// Len returns the number of points in the table.
func (r *Reader) Len() int { return r.h.count }

// MinTG returns the earliest generation time in the table.
func (r *Reader) MinTG() int64 { return r.h.index[0].minTG }

// MaxTG returns the latest generation time in the table.
func (r *Reader) MaxTG() int64 { return r.h.index[len(r.h.index)-1].maxTG }

// NumBlocks returns how many blocks the table encodes.
func (r *Reader) NumBlocks() int { return len(r.h.index) }

// Name returns the storage object name the reader was opened from.
func (r *Reader) Name() string { return r.name }

// ResidentPoints implements TableHandle: a lazy reader keeps no decoded
// points of its own (its blocks live in the shared cache, if anywhere).
func (r *Reader) ResidentPoints() int { return 0 }

// Overlaps reports whether the table's generation-time range intersects
// [lo, hi] (inclusive).
func (r *Reader) Overlaps(lo, hi int64) bool {
	return r.MinTG() <= hi && r.MaxTG() >= lo
}

// Retire marks the table as removed from the live set and evicts its
// blocks from the shared cache. In-flight iterators keep working (the
// underlying RangeReader stays open) but no longer populate the cache.
func (r *Reader) Retire() {
	r.retired.Store(true)
	if r.cache != nil {
		r.cache.EvictOwner(r.owner)
	}
}

// blockCharge approximates the heap footprint of a decoded block for
// cache accounting: 24 bytes per point plus slice and entry overhead.
func blockCharge(n int) int64 { return int64(n)*24 + 64 }

// loadBlock returns block i's decoded points, from the cache when
// possible. Cache hits and storage reads are recorded in bs when non-nil.
//
// The second result reports ownership: true means the points were decoded
// into an arena slice that was NOT published to the shared cache — the
// caller has exclusive use and must arena.PutPoints it after its last
// access (dropping it instead is safe, just a missed reuse). False means
// the slice is shared (cache-resident or published this call) and must
// never be released.
func (r *Reader) loadBlock(i int, bs *BlockStats) ([]series.Point, bool, error) {
	key := cache.Key{Owner: r.owner, Block: uint32(i)}
	if r.cache != nil {
		if v, ok := r.cache.Get(key); ok {
			if bs != nil {
				bs.BlocksCached++
			}
			return v.([]series.Point), false, nil
		}
	}
	e := r.h.index[i]
	// The raw block bytes live only for the duration of the decode:
	// decodeBlock rebuilds every point value from scratch columns, so the
	// read buffer goes straight back to the arena (pinned by
	// TestLoadBlockNoAliasingIntoCache).
	raw := arena.GetBytes(e.length)
	if _, err := r.src.ReadAt(raw, r.h.blocksOff+int64(e.offset)); err != nil {
		arena.PutBytes(raw)
		return nil, false, fmt.Errorf("sstable: read block %d of %s: %w", i, r.name, err)
	}
	// Blocks headed for the shared cache outlive this call indefinitely
	// and are GC-owned; blocks that will stay private decode into a
	// pooled slice the caller releases.
	publish := r.cache != nil && !r.retired.Load()
	pts, err := decodeBlock(r.h.version, raw, e, !publish)
	arena.PutBytes(raw)
	if err != nil {
		return nil, false, fmt.Errorf("sstable: %s block %d: %w", r.name, i, err)
	}
	if bs != nil {
		bs.BlocksRead++
	}
	if publish {
		r.cache.Put(key, pts, blockCharge(len(pts)))
		// Retire may have run between the check and the Put, leaving our
		// entry behind after its EvictOwner. Re-check and evict again so a
		// retired table's blocks never linger.
		if r.retired.Load() {
			r.cache.EvictOwner(r.owner)
		}
		return pts, false, nil
	}
	return pts, true, nil
}

// blockRange returns the half-open range [bi, bj) of block indexes whose
// [minTG, maxTG] ranges intersect [lo, hi].
func (r *Reader) blockRange(lo, hi int64) (int, int) {
	idx := r.h.index
	bi := sort.Search(len(idx), func(i int) bool { return idx[i].maxTG >= lo })
	bj := sort.Search(len(idx), func(i int) bool { return idx[i].minTG > hi })
	if bj < bi {
		bj = bi
	}
	return bi, bj
}

// Get returns the point with generation time tg, consulting the Bloom
// filter before touching any block; at most one block is read.
func (r *Reader) Get(tg int64) (series.Point, bool, error) {
	if !r.h.filter.MayContain(uint64(tg)) {
		return series.Point{}, false, nil
	}
	idx := r.h.index
	i := sort.Search(len(idx), func(i int) bool { return idx[i].maxTG >= tg })
	if i == len(idx) || idx[i].minTG > tg {
		return series.Point{}, false, nil
	}
	pts, owned, err := r.loadBlock(i, nil)
	if err != nil {
		return series.Point{}, false, err
	}
	j := sort.Search(len(pts), func(j int) bool { return pts[j].TG >= tg })
	var p series.Point
	var ok bool
	if j < len(pts) && pts[j].TG == tg {
		p, ok = pts[j], true
	}
	if owned {
		arena.PutPoints(pts) // p is a value copy; nothing aliases pts
	}
	return p, ok, nil
}

// Scan returns the points with generation time in [lo, hi], decoding only
// the overlapping blocks. An inverted range yields an empty result.
func (r *Reader) Scan(lo, hi int64) ([]series.Point, error) {
	if lo > hi {
		return nil, nil
	}
	bi, bj := r.blockRange(lo, hi)
	var out []series.Point
	for b := bi; b < bj; b++ {
		pts, owned, err := r.loadBlock(b, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, clampRange(pts, lo, hi)...)
		if owned {
			arena.PutPoints(pts) // append copied the in-range values out
		}
	}
	return out, nil
}

// Iter implements TableHandle, streaming in-range points one block at a
// time so a scan holds at most one decoded block per table beyond what
// the cache retains.
func (r *Reader) Iter(lo, hi int64, bs *BlockStats) PointIterator {
	if lo > hi {
		return &Iterator{}
	}
	bi, bj := r.blockRange(lo, hi)
	return &readerIter{r: r, bs: bs, lo: lo, hi: hi, b: bi, bj: bj}
}

// readerIter streams one reader's blocks through clampRange. Blocks the
// iterator owns (decoded but not published to the shared cache) are
// returned to the arena as soon as the iteration moves past them — the
// zero-copy handoff contract: Point hands out value copies, so nothing
// downstream can alias a released block.
type readerIter struct {
	r      *Reader
	bs     *BlockStats
	lo, hi int64
	b, bj  int
	cur    []series.Point // in-range window, aliases full
	full   []series.Point // whole decoded block, release unit
	owned  bool           // full is arena-owned by this iterator
	pos    int
	err    error
}

var _ PointIterator = (*readerIter)(nil)

// releaseCur returns the current block to the arena when this iterator
// owns it. Callers must be done with every point in the block: Point
// returns value copies, so a consumer that followed the PointIterator
// contract holds no alias.
func (it *readerIter) releaseCur() {
	if it.owned {
		arena.PutPoints(it.full)
		it.owned = false
	}
	it.full = nil
	it.cur = nil
	it.pos = 0
}

// Next advances to the next in-range point, loading blocks as needed. A
// failed block read stops iteration; see Err.
func (it *readerIter) Next() bool {
	if it.err != nil {
		return false
	}
	for {
		if it.pos < len(it.cur) {
			it.pos++
			return true
		}
		if it.full != nil || it.cur != nil {
			it.releaseCur()
		}
		if it.b >= it.bj {
			return false
		}
		pts, owned, err := it.r.loadBlock(it.b, it.bs)
		it.b++
		if err != nil {
			it.err = err
			return false
		}
		it.full, it.owned = pts, owned
		it.cur = clampRange(pts, it.lo, it.hi)
		it.pos = 0
	}
}

// Point returns the current point; valid only after a true Next.
func (it *readerIter) Point() series.Point { return it.cur[it.pos-1] }

// Err reports the block-read error that terminated iteration, if any.
func (it *readerIter) Err() error { return it.err }
