package sstable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/series"
)

// mkPoints returns n points with TG = base + i*step, TA = TG + 5.
func mkPoints(n int, base, step int64) []series.Point {
	ps := make([]series.Point, n)
	for i := range ps {
		tg := base + int64(i)*step
		ps[i] = series.Point{TG: tg, TA: tg + 5, V: float64(i)}
	}
	return ps
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(1, nil); !errors.Is(err, ErrEmptyTable) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Build(1, []series.Point{{TG: 2}, {TG: 1}}); !errors.Is(err, ErrUnsorted) {
		t.Errorf("unsorted: %v", err)
	}
	if _, err := Build(1, []series.Point{{TG: 1}, {TG: 1}}); !errors.Is(err, ErrDupTimstamp) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestTableMetadata(t *testing.T) {
	tbl, err := Build(7, mkPoints(100, 1000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID() != 7 {
		t.Errorf("ID = %d", tbl.ID())
	}
	if tbl.Len() != 100 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if tbl.MinTG() != 1000 || tbl.MaxTG() != 1990 {
		t.Errorf("range = [%d,%d]", tbl.MinTG(), tbl.MaxTG())
	}
}

func TestOverlaps(t *testing.T) {
	tbl, _ := Build(1, mkPoints(10, 100, 10)) // [100,190]
	tests := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 99, false},
		{0, 100, true},
		{150, 160, true},
		{190, 300, true},
		{191, 300, false},
		{100, 190, true},
	}
	for _, tc := range tests {
		if got := tbl.Overlaps(tc.lo, tc.hi); got != tc.want {
			t.Errorf("Overlaps(%d,%d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestGet(t *testing.T) {
	tbl, _ := Build(1, mkPoints(50, 0, 7))
	for i := 0; i < 50; i++ {
		p, ok, err := tbl.Get(int64(i) * 7)
		if err != nil {
			t.Fatalf("Get(%d): %v", i*7, err)
		}
		if !ok {
			t.Fatalf("Get(%d) missing", i*7)
		}
		if p.V != float64(i) {
			t.Errorf("Get(%d).V = %v", i*7, p.V)
		}
	}
	if _, ok, _ := tbl.Get(3); ok {
		t.Error("Get(3) should miss")
	}
	if _, ok, _ := tbl.Get(-100); ok {
		t.Error("Get(-100) should miss")
	}
}

func TestScan(t *testing.T) {
	tbl, _ := Build(1, mkPoints(10, 0, 10)) // TGs 0,10,...,90
	tests := []struct {
		lo, hi int64
		want   int
	}{
		{0, 90, 10},
		{5, 15, 1},
		{10, 10, 1},
		{91, 200, 0},
		{-50, -1, 0},
		{85, 200, 1},
		{60, 40, 0}, // inverted range must be empty, not a panic
	}
	for _, tc := range tests {
		got, err := tbl.Scan(tc.lo, tc.hi)
		if err != nil {
			t.Fatalf("Scan(%d,%d): %v", tc.lo, tc.hi, err)
		}
		if len(got) != tc.want {
			t.Errorf("Scan(%d,%d) = %d points, want %d", tc.lo, tc.hi, len(got), tc.want)
		}
		for _, p := range got {
			if p.TG < tc.lo || p.TG > tc.hi {
				t.Errorf("Scan(%d,%d) returned out-of-range point %v", tc.lo, tc.hi, p)
			}
		}
	}
}

func TestIterator(t *testing.T) {
	tbl, _ := Build(1, mkPoints(5, 0, 1))
	it := tbl.Iter(tbl.MinTG(), tbl.MaxTG(), nil)
	var n int
	var last int64 = -1
	for it.Next() {
		p := it.Point()
		if p.TG <= last {
			t.Fatal("iterator not ascending")
		}
		last = p.TG
		n++
	}
	if n != 5 {
		t.Errorf("iterated %d points", n)
	}
	if it.Next() {
		t.Error("Next after exhaustion should stay false")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, blockPoints := range []int{1, 7, 128, 1000} {
		tbl, _ := Build(42, mkPoints(333, 5000, 13))
		img := tbl.Encode(blockPoints)
		got, err := Decode(img)
		if err != nil {
			t.Fatalf("blockPoints=%d: Decode: %v", blockPoints, err)
		}
		if got.ID() != 42 || got.Len() != 333 {
			t.Fatalf("blockPoints=%d: id=%d len=%d", blockPoints, got.ID(), got.Len())
		}
		for i, p := range got.Points() {
			if p != tbl.Points()[i] {
				t.Fatalf("blockPoints=%d: point %d = %v, want %v", blockPoints, i, p, tbl.Points()[i])
			}
		}
		// Bloom filter must work after decode.
		if _, ok, _ := got.Get(5000); !ok {
			t.Error("decoded table lost Get")
		}
	}
}

func TestEncodeDefaultBlockSize(t *testing.T) {
	tbl, _ := Build(1, mkPoints(300, 0, 1))
	img := tbl.Encode(0) // 0 selects DefaultBlockPoints
	if _, err := Decode(img); err != nil {
		t.Fatalf("Decode: %v", err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	tbl, _ := Build(1, mkPoints(10, 0, 1))
	img := tbl.Encode(4)
	img[0] ^= 0xff
	if _, err := Decode(img); !errors.Is(err, ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	tbl, _ := Build(1, mkPoints(10, 0, 1))
	img := tbl.Encode(4)
	img[4] = 99
	if _, err := Decode(img); !errors.Is(err, ErrBadVersion) {
		t.Errorf("want ErrBadVersion, got %v", err)
	}
}

func TestDecodeDetectsCorruptBlock(t *testing.T) {
	tbl, _ := Build(1, mkPoints(100, 0, 3))
	img := tbl.Encode(32)
	// Flip a byte near the end (inside the blocks region).
	img[len(img)-10] ^= 0x55
	_, err := Decode(img)
	if err == nil {
		t.Fatal("corrupted image decoded without error")
	}
	if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
		t.Errorf("want checksum/corrupt error, got %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	tbl, _ := Build(1, mkPoints(64, 0, 2))
	img := tbl.Encode(16)
	for _, cut := range []int{0, 3, 4, 5, 10, len(img) / 2, len(img) - 1} {
		if _, err := Decode(img[:cut]); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestEncodeCompression(t *testing.T) {
	// Regular timestamps: encoded size should be far below the raw 24
	// bytes/point.
	tbl, _ := Build(1, mkPoints(10000, 1_600_000_000_000, 50))
	img := tbl.Encode(DefaultBlockPoints)
	rawSize := 24 * 10000
	if len(img) > rawSize/2 {
		t.Errorf("encoded %d bytes for raw %d; expected >2x compression", len(img), rawSize)
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	prop := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)%200 + 1
		r := rand.New(rand.NewSource(seed))
		ps := make([]series.Point, n)
		tg := int64(0)
		for i := range ps {
			tg += 1 + r.Int63n(1000)
			ps[i] = series.Point{TG: tg, TA: tg + r.Int63n(500), V: r.NormFloat64()}
		}
		tbl, err := Build(uint64(seed), ps)
		if err != nil {
			return false
		}
		bp := 1 + rng.Intn(64)
		got, err := Decode(tbl.Encode(bp))
		if err != nil || got.Len() != n {
			return false
		}
		for i := range ps {
			if got.Points()[i] != ps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncodeVersion1StillDecodes(t *testing.T) {
	tbl, _ := Build(5, mkPoints(200, 100, 7))
	img := tbl.EncodeVersion(64, 1)
	got, err := Decode(img)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	for i, p := range got.Points() {
		if p != tbl.Points()[i] {
			t.Fatalf("v1 point %d mismatch", i)
		}
	}
}

func TestEncodeVersionsAgree(t *testing.T) {
	tbl, _ := Build(5, mkPoints(500, 100, 7))
	v1, err := Decode(tbl.EncodeVersion(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Decode(tbl.EncodeVersion(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1.Points() {
		if v1.Points()[i] != v2.Points()[i] {
			t.Fatalf("point %d differs across versions", i)
		}
	}
}

func TestEncodeVersionPanicsOnUnknown(t *testing.T) {
	tbl, _ := Build(5, mkPoints(10, 0, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tbl.EncodeVersion(64, 9)
}

func TestV2SmallerForSmoothValues(t *testing.T) {
	// Smooth sensor-like values: the v2 (Gorilla) image should be smaller
	// than v1.
	ps := make([]series.Point, 5000)
	for i := range ps {
		tg := int64(i) * 50
		ps[i] = series.Point{TG: tg, TA: tg + 5, V: float64(i/100) * 0.25}
	}
	tbl, err := Build(1, ps)
	if err != nil {
		t.Fatal(err)
	}
	v1 := len(tbl.EncodeVersion(DefaultBlockPoints, 1))
	v2 := len(tbl.EncodeVersion(DefaultBlockPoints, 2))
	if v2 >= v1 {
		t.Errorf("v2 %d bytes >= v1 %d bytes on smooth values", v2, v1)
	}
}
