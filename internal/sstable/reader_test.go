package sstable

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/series"
	"repro/internal/storage"
)

// openTestReader encodes tbl, stores it, and opens a lazy reader over it.
func openTestReader(t *testing.T, tbl *Table, blockPoints int, version byte, c *cache.Cache) *Reader {
	t.Helper()
	b := storage.NewMemBackend()
	if err := b.Write("t.tbl", tbl.EncodeVersion(blockPoints, version)); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(b, "t.tbl", c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// randomPoints returns n points with random strictly ascending TGs.
func randomPoints(r *rand.Rand, n int) []series.Point {
	ps := make([]series.Point, n)
	tg := int64(r.Intn(1000))
	for i := range ps {
		tg += 1 + r.Int63n(97)
		ps[i] = series.Point{TG: tg, TA: tg + r.Int63n(500), V: r.NormFloat64()}
	}
	return ps
}

// collect drains a PointIterator, failing the test on an iterator error.
func collect(t *testing.T, it PointIterator) []series.Point {
	t.Helper()
	var out []series.Point
	for it.Next() {
		out = append(out, it.Point())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

func equalPoints(a, b []series.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReaderMatchesTableProperty is the read-path equivalence property:
// for random tables, block sizes, format versions, and cache
// configurations, every Get, Scan, and Iter against the lazy Reader must
// agree exactly with the resident Table. Ranges include empty, inverted,
// point, and block-boundary-straddling cases.
func TestReaderMatchesTableProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(400)
		pts := randomPoints(rng, n)
		tbl, err := Build(uint64(trial), append([]series.Point(nil), pts...))
		if err != nil {
			t.Fatal(err)
		}
		version := byte(1 + trial%2)
		blockPoints := 1 + rng.Intn(32)
		var c *cache.Cache
		switch trial % 3 {
		case 0: // no cache
		case 1:
			c = cache.New(1 << 20) // everything fits
		case 2:
			c = cache.New(1) // nothing fits: every load decodes
		}
		r := openTestReader(t, tbl, blockPoints, version, c)

		if r.ID() != tbl.ID() || r.Len() != tbl.Len() || r.MinTG() != tbl.MinTG() || r.MaxTG() != tbl.MaxTG() {
			t.Fatalf("trial %d: metadata mismatch: reader id=%d len=%d [%d,%d]",
				trial, r.ID(), r.Len(), r.MinTG(), r.MaxTG())
		}
		if r.ResidentPoints() != 0 {
			t.Fatalf("trial %d: lazy reader claims %d resident points", trial, r.ResidentPoints())
		}

		// Point lookups: every present TG, plus misses around them.
		for i := 0; i < 30; i++ {
			var tg int64
			if i%2 == 0 {
				tg = pts[rng.Intn(n)].TG
			} else {
				tg = pts[rng.Intn(n)].TG + int64(rng.Intn(5)) - 2
			}
			wp, wok, _ := tbl.Get(tg)
			gp, gok, err := r.Get(tg)
			if err != nil {
				t.Fatalf("trial %d: reader Get(%d): %v", trial, tg, err)
			}
			if wok != gok || wp != gp {
				t.Fatalf("trial %d: Get(%d) = (%v,%v), table says (%v,%v)", trial, tg, gp, gok, wp, wok)
			}
		}

		// Range scans: random ranges, block-boundary straddles, empty,
		// inverted, and the full range.
		ranges := [][2]int64{
			{tbl.MinTG(), tbl.MaxTG()},
			{tbl.MinTG() - 100, tbl.MaxTG() + 100},
			{tbl.MaxTG() + 1, tbl.MaxTG() + 50}, // empty, past the end
			{tbl.MinTG() - 50, tbl.MinTG() - 1}, // empty, before the start
			{tbl.MaxTG(), tbl.MinTG()},          // inverted
		}
		for i := 0; i < 10; i++ {
			a := pts[rng.Intn(n)].TG + int64(rng.Intn(3)) - 1
			b := pts[rng.Intn(n)].TG + int64(rng.Intn(3)) - 1
			ranges = append(ranges, [2]int64{a, b})
		}
		if n > blockPoints {
			// Straddle the first block boundary exactly.
			ranges = append(ranges, [2]int64{pts[blockPoints-1].TG, pts[blockPoints].TG})
		}
		for _, rg := range ranges {
			want, _ := tbl.Scan(rg[0], rg[1])
			got, err := r.Scan(rg[0], rg[1])
			if err != nil {
				t.Fatalf("trial %d: reader Scan(%d,%d): %v", trial, rg[0], rg[1], err)
			}
			if !equalPoints(want, got) {
				t.Fatalf("trial %d: Scan(%d,%d): reader %d points, table %d", trial, rg[0], rg[1], len(got), len(want))
			}
			var bs BlockStats
			gotIter := collect(t, r.Iter(rg[0], rg[1], &bs))
			if !equalPoints(want, gotIter) {
				t.Fatalf("trial %d: Iter(%d,%d): reader %d points, table %d", trial, rg[0], rg[1], len(gotIter), len(want))
			}
			wantIter := collect(t, tbl.Iter(rg[0], rg[1], nil))
			if !equalPoints(want, wantIter) {
				t.Fatalf("trial %d: table Iter(%d,%d) disagrees with Scan", trial, rg[0], rg[1])
			}
		}
	}
}

// TestReaderBlockStatsAccounting checks that one full iteration reads
// each overlapping block exactly once, and that a second pass with a warm
// cache is served entirely from it.
func TestReaderBlockStatsAccounting(t *testing.T) {
	tbl, _ := Build(1, mkPoints(256, 0, 2))
	c := cache.New(1 << 20)
	r := openTestReader(t, tbl, 16, FormatVersion, c)

	var cold BlockStats
	got := collect(t, r.Iter(r.MinTG(), r.MaxTG(), &cold))
	if len(got) != 256 {
		t.Fatalf("iterated %d points", len(got))
	}
	if cold.BlocksRead != int64(r.NumBlocks()) || cold.BlocksCached != 0 {
		t.Fatalf("cold pass: read=%d cached=%d, want %d/0", cold.BlocksRead, cold.BlocksCached, r.NumBlocks())
	}
	var warm BlockStats
	collect(t, r.Iter(r.MinTG(), r.MaxTG(), &warm))
	if warm.BlocksRead != 0 || warm.BlocksCached != int64(r.NumBlocks()) {
		t.Fatalf("warm pass: read=%d cached=%d, want 0/%d", warm.BlocksRead, warm.BlocksCached, r.NumBlocks())
	}
	st := c.Stats()
	if st.Hits+st.Misses != cold.BlocksRead+cold.BlocksCached+warm.BlocksRead+warm.BlocksCached {
		t.Fatalf("cache hits+misses = %d, want %d blocks requested",
			st.Hits+st.Misses, cold.BlocksRead+warm.BlocksCached+int64(2*r.NumBlocks()))
	}
}

// TestReaderRetireEvictsCache checks Retire removes the reader's blocks
// from the shared cache, and that a load racing with Retire cannot leave
// entries behind.
func TestReaderRetireEvictsCache(t *testing.T) {
	tbl, _ := Build(1, mkPoints(64, 0, 1))
	c := cache.New(1 << 20)
	r := openTestReader(t, tbl, 8, FormatVersion, c)
	if _, err := r.Scan(r.MinTG(), r.MaxTG()); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries == 0 {
		t.Fatal("scan populated nothing")
	}
	r.Retire()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("cache not empty after Retire: %+v", st)
	}
	// Reads still work after retire (in-flight scan semantics) but must
	// not repopulate the cache.
	if _, err := r.Scan(r.MinTG(), r.MaxTG()); err != nil {
		t.Fatalf("scan after retire: %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("retired reader repopulated cache: %+v", st)
	}
}

// TestOpenReaderLargeHeader forces the header past the initial 4 KiB read
// so the doubling retry path is exercised.
func TestOpenReaderLargeHeader(t *testing.T) {
	tbl, _ := Build(9, mkPoints(4000, 0, 3))
	r := openTestReader(t, tbl, 1, FormatVersion, nil) // 4000 index entries
	if r.NumBlocks() != 4000 {
		t.Fatalf("NumBlocks = %d", r.NumBlocks())
	}
	got, err := r.Scan(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tbl.Scan(10, 50)
	if !equalPoints(want, got) {
		t.Fatal("scan mismatch after large-header open")
	}
}

// TestOpenReaderRejectsCorruptImages mirrors Decode's validation through
// the lazy open path.
func TestOpenReaderRejectsCorruptImages(t *testing.T) {
	tbl, _ := Build(1, mkPoints(64, 0, 2))
	img := tbl.Encode(16)
	b := storage.NewMemBackend()

	for name, mut := range map[string]func([]byte) []byte{
		"bad magic":    func(d []byte) []byte { d[0] ^= 0xff; return d },
		"bad version":  func(d []byte) []byte { d[4] = 77; return d },
		"truncated":    func(d []byte) []byte { return d[:len(d)/3] },
		"header noise": func(d []byte) []byte { d[7] ^= 0xa5; return d },
	} {
		data := mut(append([]byte(nil), img...))
		if err := b.Write("x.tbl", data); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenReader(b, "x.tbl", nil); err == nil {
			t.Errorf("%s: OpenReader succeeded", name)
		}
	}
	if _, err := OpenReader(b, "missing.tbl", nil); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("missing object: %v", err)
	}
}

// TestReaderDetectsCorruptBlockLazily corrupts one block's bytes: the
// header parses fine, reads of other blocks succeed, and only touching
// the damaged block fails.
func TestReaderDetectsCorruptBlockLazily(t *testing.T) {
	tbl, _ := Build(1, mkPoints(64, 0, 2))
	img := tbl.Encode(16) // 4 blocks
	img[len(img)-6] ^= 0x55
	b := storage.NewMemBackend()
	if err := b.Write("t.tbl", img); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(b, "t.tbl", nil)
	if err != nil {
		t.Fatalf("open should only touch the header: %v", err)
	}
	// First block is intact.
	if _, ok, err := r.Get(0); err != nil || !ok {
		t.Fatalf("Get(0) = ok=%v err=%v", ok, err)
	}
	// Last block is damaged.
	if _, err := r.Scan(r.MaxTG(), r.MaxTG()); err == nil {
		t.Fatal("read of corrupted block succeeded")
	} else if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want checksum/corrupt error, got %v", err)
	}
	// The same failure must surface through the iterator's Err.
	it := r.Iter(r.MinTG(), r.MaxTG(), nil)
	for it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("iterator over corrupted block reported no error")
	}
}
