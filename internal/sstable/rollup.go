package sstable

import (
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"repro/internal/encoding"
	"repro/internal/series"
	"repro/internal/storage"
)

// Rollup is a table's downsampled summary: one bucket per fixed,
// epoch-aligned window of generation time that contains at least one
// point. Buckets are exact aggregates of the table's own points — the
// query planner serves wide-range aggregates from them instead of
// decoding raw blocks, merging partial buckets from other sources at
// range edges (FirstTG/LastTG make that merge exact; see RollupBucket).
//
// A rollup is persisted as a sidecar object next to its table image
// (see rollupObjectName in internal/lsm) so the raw table format — and
// everything fuzzing it — is untouched.
type Rollup struct {
	// Window is the bucket width. Every bucket's Start is an integer
	// multiple of Window (floored toward −∞ for negative times).
	Window int64
	// Buckets holds the non-empty buckets in ascending Start order.
	Buckets []RollupBucket
}

// RollupBucket aggregates the points of one epoch-aligned window.
// Count, Min, Max, and Sum are order-independent; First/Last carry the
// values at FirstTG/LastTG, the earliest and latest generation times the
// bucket actually saw. Keeping the edge times (not just the values) lets
// two partial buckets for the same window — from time-disjoint sources —
// merge exactly: the merged First belongs to the smaller FirstTG.
type RollupBucket struct {
	Start   int64
	Count   int64
	Min     float64
	Max     float64
	Sum     float64
	First   float64
	Last    float64
	FirstTG int64
	LastTG  int64
}

// BucketStart returns the epoch-aligned start of the window containing
// tg: floor(tg/window)*window, flooring toward −∞ so negative times land
// in the window below zero rather than sharing bucket 0.
func BucketStart(tg, window int64) int64 {
	q := tg / window
	if tg%window != 0 && tg < 0 {
		q--
	}
	return q * window
}

// RollupBuilder accumulates a Rollup from points fed in ascending
// generation-time order (the order streamMerge emits and Build
// validates).
type RollupBuilder struct {
	window int64
	// end is the exclusive end of the open (last) bucket, maintained so
	// the sorted common case — the next point landing in the same window —
	// folds with two comparisons instead of a floor division per point.
	// Valid only while buckets is non-empty.
	end     int64
	buckets []RollupBucket
}

// NewRollupBuilder returns a builder for the given window; window must
// be positive.
func NewRollupBuilder(window int64) *RollupBuilder {
	if window <= 0 {
		panic("sstable: rollup window must be positive")
	}
	return &RollupBuilder{window: window}
}

// Add folds one point into the builder. Points must arrive in strictly
// ascending generation-time order.
func (b *RollupBuilder) Add(p series.Point) {
	if n := len(b.buckets); n > 0 && p.TG < b.end && p.TG >= b.end-b.window {
		bk := &b.buckets[n-1]
		bk.Count++
		if p.V < bk.Min {
			bk.Min = p.V
		}
		if p.V > bk.Max {
			bk.Max = p.V
		}
		bk.Sum += p.V
		bk.Last = p.V
		bk.LastTG = p.TG
		return
	}
	start := BucketStart(p.TG, b.window)
	b.end = start + b.window
	b.buckets = append(b.buckets, RollupBucket{
		Start: start, Count: 1,
		Min: p.V, Max: p.V, Sum: p.V, First: p.V, Last: p.V,
		FirstTG: p.TG, LastTG: p.TG,
	})
}

// Rollup finalizes the builder. It returns nil when no points were
// added.
func (b *RollupBuilder) Rollup() *Rollup {
	if len(b.buckets) == 0 {
		return nil
	}
	return &Rollup{Window: b.window, Buckets: b.buckets}
}

// BuildRollup computes the rollup of points (sorted strictly ascending
// by generation time) at the given window. Returns nil for no points.
func BuildRollup(points []series.Point, window int64) *Rollup {
	b := NewRollupBuilder(window)
	for _, p := range points {
		b.Add(p)
	}
	return b.Rollup()
}

// RollupMagic identifies an encoded rollup sidecar ("TSRL").
const RollupMagic uint32 = 0x5453524C

// RollupFormatVersion is the current rollup encoding version.
const RollupFormatVersion = 1

// rollupMinBucketBytes is the smallest possible encoded bucket: three
// one-byte varints (start, count, first offset, last delta — four, see
// layout) plus five 8-byte floats. Used to bound the declared bucket
// count against the image size before any allocation.
const rollupMinBucketBytes = 4 + 5*8

// EncodeRollup serializes r:
//
//	magic u32 | version u8 | window varint | numBuckets uvarint |
//	buckets... | crc32(everything before) u32
//
// Each bucket is: start varint (absolute) | count uvarint |
// firstOff uvarint (FirstTG−Start) | lastDelta uvarint (LastTG−FirstTG) |
// min, max, sum, first, last float64.
func EncodeRollup(r *Rollup) []byte {
	out := make([]byte, 0, 16+len(r.Buckets)*(12+5*8))
	out = encoding.PutUint32(out, RollupMagic)
	out = append(out, RollupFormatVersion)
	out = encoding.PutVarint(out, r.Window)
	out = encoding.PutUvarint(out, uint64(len(r.Buckets)))
	for i := range r.Buckets {
		bk := &r.Buckets[i]
		out = encoding.PutVarint(out, bk.Start)
		out = encoding.PutUvarint(out, uint64(bk.Count))
		out = encoding.PutUvarint(out, uint64(bk.FirstTG-bk.Start))
		out = encoding.PutUvarint(out, uint64(bk.LastTG-bk.FirstTG))
		out = encoding.PutFloat64(out, bk.Min)
		out = encoding.PutFloat64(out, bk.Max)
		out = encoding.PutFloat64(out, bk.Sum)
		out = encoding.PutFloat64(out, bk.First)
		out = encoding.PutFloat64(out, bk.Last)
	}
	return encoding.PutUint32(out, crc32.ChecksumIEEE(out))
}

// DecodeRollup parses an encoded rollup sidecar, validating the CRC and
// every structural invariant (aligned, strictly ascending starts; edge
// times inside their window; plausible counts) before trusting anything.
// Corrupt images return ErrCorrupt-family errors; the declared bucket
// count is bounded by the image size before allocation.
func DecodeRollup(src []byte) (*Rollup, error) {
	const fixed = 4 + 1 + 4 // magic + version + trailing crc
	if len(src) < fixed {
		return nil, fmt.Errorf("%w: rollup image too short (%d bytes)", ErrCorrupt, len(src))
	}
	magic, _, _ := encoding.Uint32(src)
	if magic != RollupMagic {
		return nil, fmt.Errorf("rollup: %w", ErrBadMagic)
	}
	if src[4] != RollupFormatVersion {
		return nil, fmt.Errorf("rollup: %w: got %d", ErrBadVersion, src[4])
	}
	body, tail := src[:len(src)-4], src[len(src)-4:]
	wantCRC, _, _ := encoding.Uint32(tail)
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("rollup: %w", ErrChecksum)
	}
	off := 5
	readUvarint := func(context string) (uint64, error) {
		v, n, err := encoding.Uvarint(body[off:])
		if err != nil {
			return 0, fmt.Errorf("%w: rollup %s: %v", ErrCorrupt, context, err)
		}
		off += n
		return v, nil
	}
	readVarint := func(context string) (int64, error) {
		v, n, err := encoding.Varint(body[off:])
		if err != nil {
			return 0, fmt.Errorf("%w: rollup %s: %v", ErrCorrupt, context, err)
		}
		off += n
		return v, nil
	}
	window, err := readVarint("window")
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		return nil, fmt.Errorf("%w: rollup window %d not positive", ErrCorrupt, window)
	}
	numBuckets, err := readUvarint("bucket count")
	if err != nil {
		return nil, err
	}
	// Bound the allocation by what the image could possibly hold.
	if numBuckets > uint64(len(body)-off)/rollupMinBucketBytes {
		return nil, fmt.Errorf("%w: rollup declares %d buckets in %d bytes", ErrCorrupt, numBuckets, len(body)-off)
	}
	buckets := make([]RollupBucket, 0, numBuckets)
	var prevStart int64
	for i := uint64(0); i < numBuckets; i++ {
		start, err := readVarint("bucket start")
		if err != nil {
			return nil, err
		}
		if BucketStart(start, window) != start {
			return nil, fmt.Errorf("%w: rollup bucket start %d not aligned to window %d", ErrCorrupt, start, window)
		}
		if i > 0 && start <= prevStart {
			return nil, fmt.Errorf("%w: rollup bucket starts regress (%d after %d)", ErrCorrupt, start, prevStart)
		}
		prevStart = start
		count, err := readUvarint("bucket point count")
		if err != nil {
			return nil, err
		}
		firstOff, err := readUvarint("bucket first offset")
		if err != nil {
			return nil, err
		}
		lastDelta, err := readUvarint("bucket last delta")
		if err != nil {
			return nil, err
		}
		if firstOff >= uint64(window) || lastDelta >= uint64(window)-firstOff {
			return nil, fmt.Errorf("%w: rollup bucket edge times escape window", ErrCorrupt)
		}
		// Reject edge times that would wrap past MaxInt64.
		if start > 0 && firstOff+lastDelta > uint64(math.MaxInt64-start) {
			return nil, fmt.Errorf("%w: rollup bucket edge times overflow", ErrCorrupt)
		}
		// Generation times are unique, so a bucket cannot hold more
		// points than distinct times between its edges.
		if count < 1 || count > lastDelta+1 {
			return nil, fmt.Errorf("%w: rollup bucket count %d impossible for span %d", ErrCorrupt, count, lastDelta+1)
		}
		var vals [5]float64
		for j := range vals {
			v, n, err := encoding.Float64(body[off:])
			if err != nil {
				return nil, fmt.Errorf("%w: rollup bucket values: %v", ErrCorrupt, err)
			}
			vals[j] = v
			off += n
		}
		buckets = append(buckets, RollupBucket{
			Start:   start,
			Count:   int64(count),
			Min:     vals[0],
			Max:     vals[1],
			Sum:     vals[2],
			First:   vals[3],
			Last:    vals[4],
			FirstTG: start + int64(firstOff),
			LastTG:  start + int64(firstOff) + int64(lastDelta),
		})
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after rollup buckets", ErrCorrupt, len(body)-off)
	}
	return &Rollup{Window: window, Buckets: buckets}, nil
}

// RollupProvider is implemented by table handles that can serve a
// precomputed rollup. RollupWindow returns 0 when no rollup is attached;
// Rollup returns the summary, loading it lazily for paged readers (a
// load failure means the caller falls back to raw blocks).
type RollupProvider interface {
	RollupWindow() int64
	Rollup() (*Rollup, error)
}

// SetRollup attaches a precomputed rollup to a resident table. Passing
// nil detaches.
func (t *Table) SetRollup(r *Rollup) { t.rollup = r }

// RollupWindow implements RollupProvider.
func (t *Table) RollupWindow() int64 {
	if t.rollup == nil {
		return 0
	}
	return t.rollup.Window
}

// Rollup implements RollupProvider; resident tables never fail.
func (t *Table) Rollup() (*Rollup, error) { return t.rollup, nil }

// rollupRef is a Reader's lazily-loaded rollup sidecar.
type rollupRef struct {
	backend storage.Backend
	name    string
	window  int64

	mu     sync.Mutex
	loaded *Rollup
}

// AttachRollup records the sidecar object holding this table's rollup;
// the image is read and decoded on first use. window must match the
// window the sidecar was encoded with (the manifest records it).
func (r *Reader) AttachRollup(b storage.Backend, name string, window int64) {
	if window <= 0 {
		r.rollup = nil
		return
	}
	r.rollup = &rollupRef{backend: b, name: name, window: window}
}

// RollupWindow implements RollupProvider.
func (r *Reader) RollupWindow() int64 {
	if r.rollup == nil {
		return 0
	}
	return r.rollup.window
}

// Rollup implements RollupProvider, loading and caching the sidecar on
// first call. Errors are not cached: a transient read failure retries on
// the next call, and the caller falls back to raw blocks meanwhile.
func (r *Reader) Rollup() (*Rollup, error) {
	ref := r.rollup
	if ref == nil {
		return nil, nil
	}
	ref.mu.Lock()
	defer ref.mu.Unlock()
	if ref.loaded != nil {
		return ref.loaded, nil
	}
	img, err := ref.backend.Read(ref.name)
	if err != nil {
		return nil, fmt.Errorf("sstable: read rollup %s: %w", ref.name, err)
	}
	ru, err := DecodeRollup(img)
	if err != nil {
		return nil, fmt.Errorf("sstable: rollup %s: %w", ref.name, err)
	}
	if ru.Window != ref.window {
		return nil, fmt.Errorf("%w: rollup %s window %d, manifest says %d", ErrCorrupt, ref.name, ru.Window, ref.window)
	}
	ref.loaded = ru
	return ru, nil
}
